package inaudible_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"inaudible"
	"inaudible/internal/asr"
	"inaudible/internal/audio"
	"inaudible/internal/defense"
)

// asrMFCC adapts the internal MFCC for the benchmark file.
func asrMFCC(sig *audio.Signal) [][]float64 { return asr.MFCC(sig) }

// defenseDemoDetector is the training-free detector for serving tests.
func defenseDemoDetector() inaudible.Detector { return defense.DemoThresholds() }

func TestFacadeSynthesize(t *testing.T) {
	s, err := inaudible.Synthesize("alexa, play music")
	if err != nil {
		t.Fatal(err)
	}
	if s.Rate != 48000 || s.Len() == 0 {
		t.Fatalf("facade synthesis: %v", s)
	}
	if _, err := inaudible.Synthesize("gibberishword"); err == nil {
		t.Fatal("expected lexicon error")
	}
}

func TestFacadeVocabulary(t *testing.T) {
	v := inaudible.Vocabulary()
	if len(v) < 8 {
		t.Fatalf("vocabulary size %d", len(v))
	}
}

func TestFacadeAttackDesign(t *testing.T) {
	cmd := inaudible.MustSynthesize("alexa, play music")
	atk, err := inaudible.BaselineAttack(cmd)
	if err != nil {
		t.Fatal(err)
	}
	if atk.Rate != 192000 {
		t.Fatalf("attack rate %v", atk.Rate)
	}
	plan, err := inaudible.LongRangeAttack(cmd, 50)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ElementCount() < 5 {
		t.Fatalf("plan elements %d", plan.ElementCount())
	}
}

func TestFacadeDevices(t *testing.T) {
	if inaudible.AndroidPhone().Name != "android-phone" {
		t.Fatal("phone profile")
	}
	if inaudible.AmazonEcho().ADCRate != 44100 {
		t.Fatal("echo profile")
	}
	if inaudible.ReferenceMic().NL.Order() != 1 {
		t.Fatal("reference mic should be linear")
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := inaudible.Experiments()
	if len(ids) != 13 || ids[0] != "E1" || ids[12] != "E13" {
		t.Fatalf("experiment ids: %v", ids)
	}
	var sink noopWriter
	if err := inaudible.RunExperiment("E99", sink, inaudible.ExperimentOptions{Quick: true}); err == nil {
		t.Fatal("expected unknown-experiment error")
	}
	s := inaudible.NewExperimentSuite(inaudible.ExperimentOptions{Quick: true, Parallel: 4})
	if s.Runner().Workers() != 4 {
		t.Fatalf("suite runner workers = %d, want 4", s.Runner().Workers())
	}
}

type noopWriter struct{}

func (noopWriter) Write(p []byte) (int, error) { return len(p), nil }

func TestFacadeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation")
	}
	cmd := inaudible.MustSynthesize("alexa, play music")
	s := inaudible.NewScenario()
	e, run, err := s.Simulate(cmd, inaudible.KindBaseline, 18.7, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e.Elements != 1 {
		t.Fatalf("elements %d", e.Elements)
	}
	f := inaudible.ExtractFeatures(run.Recording)
	if f.TraceSNR <= -6 && f.HighSNR <= -6 {
		t.Fatalf("no traces in attack recording: %v", f)
	}
	rec := inaudible.NewRecognizer()
	if !rec.InjectionSuccess(run.Recording, "music") {
		t.Fatalf("injection failed: %+v", rec.Recognize(run.Recording))
	}
}

func TestFacadeStreamingGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation")
	}
	cmd := inaudible.MustSynthesize("alexa, play music")
	s := inaudible.NewScenario()
	_, atkRun, err := s.Simulate(cmd, inaudible.KindBaseline, 18.7, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	legitRun := s.Deliver(s.EmitVoice(cmd, 66), 2, 2)

	// Streaming features reproduce the batch extractor on a real
	// simulated recording (spectral features near-exactly, correlation
	// within the documented 0.15).
	batch := inaudible.ExtractFeatures(atkRun.Recording)
	streamed := inaudible.ExtractFeaturesStreaming(atkRun.Recording)
	if d := streamed.Sub50LogRatio - batch.Sub50LogRatio; d > 1e-9 || d < -1e-9 {
		t.Fatalf("streaming Sub50LogRatio %v != batch %v", streamed.Sub50LogRatio, batch.Sub50LogRatio)
	}
	if d := streamed.LowEnvCorr - batch.LowEnvCorr; d > 0.15 || d < -0.15 {
		t.Fatalf("streaming LowEnvCorr %v vs batch %v", streamed.LowEnvCorr, batch.LowEnvCorr)
	}

	// A guard calibrated on the pair separates the sessions online.
	samples := []struct {
		rec    *inaudible.Signal
		attack bool
	}{{atkRun.Recording, true}, {legitRun.Recording, false}}
	det, err := inaudible.TrainDetector("threshold", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, sm := range samples {
		g := inaudible.NewStreamGuard(det, sm.rec.Rate)
		frame := g.FrameSamples()
		for off := 0; off < sm.rec.Len(); off += frame {
			end := off + frame
			if end > sm.rec.Len() {
				end = sm.rec.Len()
			}
			g.Push(sm.rec.Samples[off:end])
		}
		v := g.Finalize()
		if v.Attack != sm.attack {
			t.Errorf("guard verdict attack=%v, want %v (%v)", v.Attack, sm.attack, v)
		}
		if v.Latency.Frames == 0 {
			t.Errorf("guard reported no latency frames")
		}
	}
}

func TestFacadeGuardFleet(t *testing.T) {
	// The serving core through the facade: metrics registry wired into
	// a fleet, one session pushed frame-by-frame, verdict events out,
	// instruments populated, graceful close.
	reg := inaudible.NewMetricsRegistry()
	fl := inaudible.NewGuardFleet(inaudible.GuardServerConfig{
		Detector:    defenseDemoDetector(),
		MaxSessions: -1,
		Shards:      1,
		Metrics:     reg,
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := fl.Close(ctx); err != nil {
			t.Fatalf("fleet close: %v", err)
		}
	}()

	const rate = 48000.0
	sess, err := fl.Open(rate)
	if err != nil {
		t.Fatal(err)
	}
	sig := inaudible.MustSynthesize("alexa, play music")
	off := 0
	for frames := 0; frames < 50; frames++ {
		buf, err := sess.NextFrame()
		if err != nil {
			t.Fatal(err)
		}
		if off+len(buf) > sig.Len() {
			off = 0
		}
		copy(buf, sig.Samples[off:off+len(buf)])
		off += len(buf)
		sess.Publish(len(buf))
	}
	if err := sess.CloseSend(); err != nil {
		t.Fatal(err)
	}
	sawFinal := false
	for ev := range sess.Events() {
		if v := ev.(*inaudible.GuardVerdict); v.Final {
			sawFinal = true
			if v.Samples != 50*sess.FrameSamples() {
				t.Fatalf("final verdict samples = %d, want %d", v.Samples, 50*sess.FrameSamples())
			}
		}
	}
	if !sawFinal {
		t.Fatal("no final verdict event")
	}

	snap := reg.Snapshot()
	if snap["fleet_frames_total"].(uint64) != 50 {
		t.Fatalf("fleet_frames_total = %v, want 50", snap["fleet_frames_total"])
	}
	var prom bytes.Buffer
	reg.WritePrometheus(&prom)
	if !bytes.Contains(prom.Bytes(), []byte("fleet_sessions_finished_total 1")) {
		t.Fatalf("prometheus exposition missing session counter:\n%s", prom.String())
	}
}

func TestFacadeSweepParsing(t *testing.T) {
	axis, err := inaudible.ParseSweepAxis("distance=1:3:1")
	if err != nil || axis.Name != "distance" || axis.Len() != 3 {
		t.Fatalf("ParseSweepAxis: %+v err=%v", axis, err)
	}
	if _, err := inaudible.ParseSweepAxis("bogus=1:3:1"); err == nil {
		t.Fatal("unknown sweep field accepted")
	}
	// A sweep over a broken spec must surface the cell error, not panic.
	sp := &inaudible.SimSpec{Text: "ok google, take a picture",
		Attack: inaudible.SimAttackSpec{Kind: "nope"},
		Path:   inaudible.SimPathSpec{DistanceM: 2}}
	var sink noopWriter
	if err := inaudible.RunSweep(sp, sink, inaudible.SweepOptions{
		Axes: []inaudible.SweepAxis{axis}, Parallel: 1,
	}); err == nil {
		t.Fatal("sweep over unknown attack kind should fail")
	}
}
