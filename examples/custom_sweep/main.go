// Custom sweep: experiments as data. Any declarative scenario
// (inaudible.SimSpec) plus a sweep definition becomes a runnable
// experiment — no new run function required. This example defines a
// baseline ultrasound attack in code, sweeps it over delivery distance
// and over attacker power via the same engine that drives E1-E13, and
// renders the per-cell outcomes (SPL at the victim device, guard
// verdict, detector score) as tables.
//
// Run with: go run ./examples/custom_sweep [-spec path.json] [-sweep def]
//
// The equivalent from the command line:
//
//	go run ./cmd/experiments -spec examples/specs/baseline_driveby.json -sweep distance=2:6:2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"inaudible"
)

func main() {
	specPath := flag.String("spec", "", "scenario spec to sweep (default: a built-in baseline attack)")
	var defs sweepDefs
	flag.Var(&defs, "sweep", "axis definition, e.g. distance=2:6:2 or power=10,40 (repeatable)")
	flag.Parse()

	sp := builtinSpec()
	if *specPath != "" {
		loaded, err := inaudible.LoadSimSpec(*specPath)
		if err != nil {
			log.Fatal(err)
		}
		sp = loaded
	}
	if len(defs) == 0 {
		defs = sweepDefs{"distance=2:6:2", "power=10,40"}
	}

	fmt.Println("== custom spec-driven sweeps ==")
	for _, def := range defs {
		axis, err := inaudible.ParseSweepAxis(def)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n-- sweeping %s --\n", def)
		if err := inaudible.RunSweep(sp, os.Stdout, inaudible.SweepOptions{
			Axes: []inaudible.SweepAxis{axis},
		}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\n(cells ran concurrently on the trial pool; rows are in grid order)")
}

// builtinSpec is the demo scenario: the paper's single-speaker baseline
// rig aimed at a phone in a quiet room.
func builtinSpec() *inaudible.SimSpec {
	return &inaudible.SimSpec{
		Name: "baseline rig vs phone (built-in)",
		Text: "ok google, take a picture",
		Attack: inaudible.SimAttackSpec{
			Kind:   "baseline",
			PowerW: 18.7,
		},
		Device:     "phone",
		AmbientSPL: 40,
		Seed:       1,
		Path:       inaudible.SimPathSpec{DistanceM: 3},
	}
}

// sweepDefs accumulates repeated -sweep flags.
type sweepDefs []string

func (s *sweepDefs) String() string { return fmt.Sprint(*s) }
func (s *sweepDefs) Set(v string) error {
	*s = append(*s, v)
	return nil
}
