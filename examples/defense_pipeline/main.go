// Defense pipeline: build a labelled corpus of legitimate and attacked
// recordings through the full physical simulation, train the trace
// classifier from scratch, and evaluate it on held-out recordings —
// the paper's defensive contribution, end to end.
package main

import (
	"fmt"
	"log"

	"inaudible"
	"inaudible/internal/core"
	"inaudible/internal/defense"
	"inaudible/internal/experiment"
	"inaudible/internal/voice"
)

func main() {
	scenario := core.DefaultScenario()

	fmt.Println("building corpus (full physical simulation; ~1-2 min)...")
	cfg := experiment.DefaultCorpusConfig(scenario)
	cfg.CommandIDs = []string{"photo"}
	cfg.Profiles = voice.Profiles()[:2]
	cfg.LegitSPLs = []float64{66, 72}
	legit, err := experiment.BuildLegit(cfg)
	if err != nil {
		log.Fatal(err)
	}
	attacks, err := experiment.BuildAttacks(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d legitimate + %d attack recordings\n", len(legit), len(attacks))

	train, test := experiment.SplitTrainTest(append(legit, attacks...))
	toSamples := func(recs []experiment.Recording) []defense.Sample {
		var out []defense.Sample
		for _, r := range recs {
			out = append(out, defense.Sample{
				X:      inaudible.ExtractFeatures(r.Signal).Vector(),
				Attack: r.Attack,
			})
		}
		return out
	}
	trainS, testS := toSamples(train), toSamples(test)

	svm, err := defense.TrainSVM(trainS, 0.01, 60, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained linear SVM on %d samples; weights per feature:\n", len(trainS))
	for i, name := range defense.FeatureNames() {
		fmt.Printf("  %-18s %+0.3f\n", name, svm.W[i])
	}

	var pred, truth []bool
	var scores []float64
	for _, s := range testS {
		pred = append(pred, svm.Predict(s.X))
		truth = append(truth, s.Attack)
		scores = append(scores, svm.Score(s.X))
	}
	m := defense.Evaluate(pred, truth)
	auc := defense.AUC(defense.ROC(scores, truth))
	fmt.Printf("held-out: accuracy %.3f  precision %.3f  recall %.3f  AUC %.3f\n",
		m.Accuracy, m.Precision, m.Recall, auc)
	fmt.Printf("confusion: TP=%d FP=%d TN=%d FN=%d\n", m.TP, m.FP, m.TN, m.FN)
}
