// Long-range attack walkthrough: why the single-speaker attack cannot go
// far, and how splitting the spectrum across an ultrasonic array removes
// the audibility cap — the NSDI 2018 paper's offensive contribution.
package main

import (
	"fmt"
	"log"

	"inaudible"
)

func main() {
	cmd := inaudible.MustSynthesize("ok google, turn on airplane mode")
	scenario := inaudible.NewScenario()
	rec := inaudible.NewRecognizer()

	fmt.Println("--- single speaker: the range/audibility dilemma ---")
	for _, powerW := range []float64{0.5, 18.7} {
		e, _, err := scenario.Simulate(cmd, inaudible.KindBaseline, powerW, 3, 1)
		if err != nil {
			log.Fatal(err)
		}
		ok := rec.InjectionSuccess(scenario.Deliver(e, 3, 1).Recording, "airplane")
		fmt.Printf("%5.1f W: works@3m=%-5v audible-to-bystander=%v (margin %+.1f dB)\n",
			powerW, ok, e.LeakageAudible, e.LeakageMargin)
	}
	fmt.Println("-> quiet enough to hide OR strong enough to work. Never both.")

	fmt.Println()
	fmt.Println("--- the long-range design: spectrum slices on separate elements ---")
	plan, err := inaudible.LongRangeAttack(cmd, 300)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %d driven elements, slice width %.1f Hz, carrier %.1f of %.1f W\n",
		plan.ElementCount(), plan.Options.SliceWidthHz(), plan.CarrierPowerW, plan.TotalPowerW())

	e, _, err := scenario.Simulate(cmd, inaudible.KindLongRange, 300, 7.6, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rig: %d elements at %.0f W total — leakage %.1f dB SPL(A), audible=%v\n",
		e.Elements, e.TotalPowerW, e.LeakageSPL, e.LeakageAudible)

	for _, d := range []float64{3, 5, 7.6} {
		r := scenario.Deliver(e, d, 1)
		ok := rec.InjectionSuccess(r.Recording, "airplane")
		fmt.Printf("  at %.1f m: injection success=%v (ASR distance %.2f)\n",
			d, ok, rec.Recognize(r.Recording).Distance)
	}
	fmt.Println("-> 16x the power of the audible baseline, inaudible, 25 ft of range.")
}
