// Live attack simulation: a declarative scenario — a long-range
// ultrasound attack in a reverberant meeting room, with the attacker
// walking toward the victim while ramping power — compiled into one
// block-streaming chain (per-element speaker physics, image-source
// multipath, ambient noise, mic capture) and piped straight into
// streaming defense guard sessions, one per microphone tap, in bounded
// memory. Interim verdicts print as the simulated session unfolds.
//
// Run with: go run ./examples/live_attack_sim [-spec path.json] [-train]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"inaudible"
	"inaudible/internal/defense"
)

func main() {
	specPath := flag.String("spec", "examples/specs/longrange_room.json", "scenario spec to run")
	train := flag.Bool("train", false, "train a threshold detector on a quick corpus (slower start-up)")
	flag.Parse()

	fmt.Println("== live attack simulation -> streaming guard ==")
	sp, err := inaudible.LoadSimSpec(*specPath)
	if err != nil {
		log.Fatal(err)
	}
	var det inaudible.Detector = defense.DemoThresholds()
	if *train {
		fmt.Println("training a threshold detector on a quick simulated corpus...")
		if det, err = inaudible.TrainDetector("threshold", 1, true); err != nil {
			log.Fatal(err)
		}
	}

	s, err := sp.Build(det)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario: %s\ncommand:  %q\n\n", sp.Name, sp.Text)
	s.RunVerbose(os.Stdout)
}
