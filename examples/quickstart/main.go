// Quickstart: design an inaudible attack for "OK Google, take a picture",
// fire it at a simulated Android phone 3 m away, and check three things —
// did the phone obey, could a bystander hear anything, and would the
// defense have caught it?
package main

import (
	"fmt"
	"log"

	"inaudible"
)

func main() {
	// 1. The command the attacker wants the phone to execute.
	cmd := inaudible.MustSynthesize("ok google, take a picture")
	fmt.Printf("voice command: %v\n", cmd)

	// 2. The environment: phone victim, quiet meeting room, a human
	//    bystander 1.5 m from the attacker's speaker.
	scenario := inaudible.NewScenario()

	// 3. Build and deliver the single-speaker attack at the paper's
	//    18.7 W from 3 m (Song-Mittal Table 1 operating point).
	emission, run, err := scenario.Simulate(cmd, inaudible.KindBaseline, 18.7, 3, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ultrasound at the phone: %.1f dB SPL, recording RMS %.4f\n",
		run.SPLAtDevice, run.Recording.RMS())

	// 4. Did the assistant act?
	rec := inaudible.NewRecognizer()
	res := rec.Recognize(run.Recording)
	fmt.Printf("assistant heard: %q (distance %.2f, accepted=%v)\n",
		res.CommandID, res.Distance, res.Accepted)

	// 5. Would anyone have noticed? (The single-speaker attack at this
	//    power leaks audibly — the paper's motivation for going
	//    multi-speaker.)
	fmt.Printf("bystander: leakage %.1f dB SPL(A), audible=%v (margin %+.1f dB)\n",
		emission.LeakageSPL, emission.LeakageAudible, emission.LeakageMargin)

	// 6. Would the defense have caught it? Inspect the non-linearity
	//    traces in the recording.
	f := inaudible.ExtractFeatures(run.Recording)
	fmt.Printf("defense features: %v\n", f)
	fmt.Println("(trace-snr and high-snr of legitimate speech sit near -4..-6;")
	fmt.Println(" values above ~-3 betray non-linear demodulation)")
}
