// Streaming guard demo: train a detector on a quick simulated corpus,
// then watch two live sessions — one ultrasound-injected command, one
// legitimate speaker — flow frame by frame through concurrent
// stream.Guard sessions sharing that detector, with interim verdicts
// and per-frame latency statistics.
//
// Run with: go run ./examples/streaming_guard
package main

import (
	"fmt"
	"log"
	"sync"

	"inaudible"
	"inaudible/internal/stream"
)

func main() {
	fmt.Println("== streaming defense guard ==")
	fmt.Println("training a threshold detector on a quick simulated corpus...")
	det, err := inaudible.TrainDetector("threshold", 1, true)
	if err != nil {
		log.Fatal(err)
	}

	// Build the two sessions: an injected command delivered through the
	// microphone non-linearity, and the same command spoken normally.
	cmd := inaudible.MustSynthesize("alexa, play music")
	sc := inaudible.NewScenario()
	_, atkRun, err := sc.Simulate(cmd, inaudible.KindBaseline, 18.7, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	legitRun := sc.Deliver(sc.EmitVoice(cmd, 66), 2, 2)

	sessions := []struct {
		name string
		rec  *inaudible.Signal
	}{
		{"attack", atkRun.Recording},
		{"legit ", legitRun.Recording},
	}

	// One detector, many concurrent guards: each session streams its
	// audio in 20 ms frames with an interim verdict every ~0.5 s.
	var wg sync.WaitGroup
	var mu sync.Mutex // serialise printing only
	for _, s := range sessions {
		wg.Add(1)
		go func(name string, rec *inaudible.Signal) {
			defer wg.Done()
			g := stream.NewGuard(stream.GuardConfig{
				Rate:      rec.Rate,
				Detector:  det,
				EmitEvery: 25, // ~0.5 s of 20 ms frames
			})
			frame := g.FrameSamples()
			for off := 0; off < rec.Len(); off += frame {
				end := off + frame
				if end > rec.Len() {
					end = rec.Len()
				}
				if v := g.Push(rec.Samples[off:end]); v != nil {
					mu.Lock()
					fmt.Printf("[%s] %v\n", name, v)
					mu.Unlock()
				}
			}
			v := g.Finalize()
			mu.Lock()
			fmt.Printf("[%s] %v\n", name, v)
			fmt.Printf("[%s] %v\n", name, v.Latency)
			mu.Unlock()
		}(s.name, s.rec)
	}
	wg.Wait()
	fmt.Println("\nFor the network service, run: go run ./cmd/guardd -quick -detector threshold < session.wav")
}
