// Adaptive attacker: can an attacker who knows the defense cancel the
// non-linearity traces out of its own attack? This example reproduces the
// paper's counter-defense analysis: pre-distorting the baseband cancels
// (part of) the infra-voice trace, but the m^2 residue above the speech
// band cannot be removed without becoming audible — detection survives.
package main

import (
	"fmt"
	"log"

	"inaudible"
	"inaudible/internal/attack"
	"inaudible/internal/core"
	"inaudible/internal/speaker"
)

func main() {
	cmd := inaudible.MustSynthesize("ok google, take a picture")
	scenario := core.DefaultScenario()

	fmt.Println("attacker estimation error -> residual traces in the recording")
	fmt.Printf("%-10s %-10s %-10s %-10s\n", "est_err", "trace_snr", "high_snr", "env_corr")
	for _, eps := range []float64{1.0, 0.5, 0.25, 0.1, 0.0} {
		o := attack.DefaultAdaptiveOptions()
		o.EstimationError = eps
		drive, err := attack.AdaptiveBaseline(cmd, o)
		if err != nil {
			log.Fatal(err)
		}
		em := speaker.FostexTweeter().Emit(drive, 18.7)
		e := &core.Emission{Field: em}
		r := scenario.Deliver(e, 2, 1)
		f := inaudible.ExtractFeatures(r.Recording)
		fmt.Printf("%-10.2f %-10.2f %-10.2f %-10.2f\n", eps, f.TraceSNR, f.HighSNR, f.LowEnvCorr)
	}
	fmt.Println()
	fmt.Println("reading the table: est_err=1.0 is the non-adaptive attack; est_err=0")
	fmt.Println("is an oracle attacker with perfect channel knowledge. The infra-voice")
	fmt.Println("trace (trace_snr) shrinks with better estimates, but high_snr — the")
	fmt.Println("upper half of the m^2 spectrum — does not move: cancelling it would")
	fmt.Println("require transmitting audible-band energy, defeating the attack's")
	fmt.Println("entire purpose. A classifier using both features keeps detecting.")
}
