// Command guardd is the always-on streaming defense service: it trains
// a detector on a simulated corpus once at start-up, then guards audio
// sessions delivered over stdin or TCP, emitting JSON verdict lines.
//
// Each session is either a mono 16-bit PCM WAV stream (decoded
// incrementally, never buffered whole) or length-prefixed PCM frames:
// "GRD1" magic, uint32 LE sample rate, then [uint32 LE byte length |
// int16 LE samples] chunks with a zero length ending the session. See
// the protocol note in internal/stream/serve.go and the README's
// "Streaming guard" section.
//
// Usage:
//
//	guardd < session.wav                 # one stdin session
//	guardd -listen :7654                 # one session per TCP connection
//	guardd -detector threshold -quick    # fast start-up, threshold rule
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"inaudible"
	"inaudible/internal/experiment"
	"inaudible/internal/stream"
)

func main() {
	var (
		listen    = flag.String("listen", "", "TCP address to serve (empty: one session on stdin)")
		detector  = flag.String("detector", "svm", "detector kind: "+strings.Join(experiment.DetectorKinds(), ", "))
		quick     = flag.Bool("quick", false, "train on the Quick-suite corpus (faster start-up, smaller grid)")
		seed      = flag.Int64("seed", 1, "corpus and training seed")
		workers   = flag.Int("workers", 0, "max concurrent sessions (0: GOMAXPROCS)")
		emitEvery = flag.Int("emit-every", 0, "interim verdict every N frames (0: final only)")
		corrCap   = flag.Float64("corr-seconds", 0, "correlation memory cap per session in seconds (0: 60)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: guardd [-listen addr] [-detector kind] [-quick] < session")
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "guardd: training %s detector on simulated corpus (one-time)...\n", *detector)
	start := time.Now()
	det, err := inaudible.TrainDetector(*detector, *seed, *quick)
	if err != nil {
		fatal("training: %v", err)
	}
	fmt.Fprintf(os.Stderr, "guardd: detector ready in %s\n", time.Since(start).Round(time.Millisecond))

	srv := stream.NewServer(stream.ServerConfig{
		Detector:       det,
		Workers:        *workers,
		EmitEvery:      *emitEvery,
		MaxCorrSeconds: *corrCap,
	})

	if *listen == "" {
		if err := srv.ServeSession(os.Stdin, os.Stdout); err != nil {
			fatal("session: %v", err)
		}
		return
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal("listen: %v", err)
	}
	fmt.Fprintf(os.Stderr, "guardd: serving on %s with %d session slots\n", l.Addr(), srv.Workers())
	if err := srv.ServeListener(l); err != nil {
		fatal("serve: %v", err)
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "guardd: "+format+"\n", args...)
	os.Exit(1)
}
