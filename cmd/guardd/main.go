// Command guardd is the always-on streaming defense service: it trains
// a detector on a simulated corpus once at start-up, then guards audio
// sessions delivered over stdin or TCP, emitting JSON verdict lines.
// Sessions are served by the sharded fleet core (internal/fleet):
// admission control with backpressure or graceful degradation, shard
// workers with session affinity, and zero-alloc per-frame processing.
//
// Each session is either a mono 16-bit PCM WAV stream (decoded
// incrementally, never buffered whole) or length-prefixed PCM frames:
// "GRD1" magic, uint32 LE sample rate, then [uint32 LE byte length |
// int16 LE samples] chunks with a zero length ending the session. See
// the protocol note in internal/stream/serve.go and the README's
// "Serving at scale" section.
//
// The -metrics port is also the introspection plane: alongside
// /metrics, /varz and /healthz it serves the flight recorder
// (/sessions, /sessions/{id}), the fleet snapshot (/shards, /fleet) and
// drift telemetry (/drift); -pprof additionally mounts net/http/pprof
// under /debug/pprof/. See the README's "Observability" section and
// cmd/guardctl for the matching CLI.
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: it stops
// accepting connections, drains in-flight sessions (up to -drain),
// flushes their final verdicts, and exits 0. A second signal, or the
// drain deadline, force-aborts what remains.
//
// guardd also scales horizontally (see internal/cluster and the
// README's "Serving at scale"): -cluster-node additionally serves the
// inter-node transport so a router can forward sessions here, and
// -route turns the process into a pure front-end router (no detector,
// no training) that rendezvous-routes each client session to one of a
// static backend list and relays verdict bytes untouched. The router's
// metrics port serves the /cluster control plane (per-node occupancy,
// health, drain) driven by guardctl cluster / drain / undrain.
//
// Usage:
//
//	guardd < session.wav                    # one stdin session
//	guardd -listen :7654                    # one session per TCP connection
//	guardd -listen :7654 -metrics :8080     # + metrics and introspection
//	guardd -detector threshold -quick       # fast start-up, threshold rule
//	guardd -detector demo                   # no training at all (smoke runs)
//	guardd -listen :7654 -max-sessions 64 -degrade
//	guardd -listen :7654 -cascade                # two-tier triage cascade
//	guardd -listen :7654 -metrics :8080 -pprof   # + /debug/pprof/
//	guardd -listen :7654 -cluster-node :7700 -node n1   # routable backend
//	guardd -listen :7654 -route n1:7700,n2:7700         # front-end router
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"runtime/debug"

	"inaudible/internal/cluster"
	"inaudible/internal/core"
	"inaudible/internal/defense"
	"inaudible/internal/experiment"
	"inaudible/internal/journal"
	"inaudible/internal/stream"
	"inaudible/internal/telemetry"
	"inaudible/internal/trace"
)

func main() {
	var (
		listen      = flag.String("listen", "", "TCP address to serve (empty: one session on stdin)")
		metricsAddr = flag.String("metrics", "", "HTTP address for metrics and introspection (empty: no exposition)")
		detector    = flag.String("detector", "svm", "detector kind: "+strings.Join(experiment.DetectorKinds(), ", ")+", or demo (hand-calibrated thresholds, no training)")
		quick       = flag.Bool("quick", false, "train on the Quick-suite corpus (faster start-up, smaller grid)")
		seed        = flag.Int64("seed", 1, "corpus and training seed")
		workers     = flag.Int("workers", 0, "deprecated alias of -max-sessions (0: GOMAXPROCS)")
		maxSessions = flag.Int("max-sessions", 0, "full-service session cap (0: -workers/GOMAXPROCS, -1: unlimited)")
		shards      = flag.Int("shards", 0, "serving shards / worker goroutines (0: GOMAXPROCS)")
		degrade     = flag.Bool("degrade", false, "beyond the cap, serve sessions degraded (VAD + trace band) instead of queueing")
		cascade     = flag.Bool("cascade", false, "serve through the two-tier cascade: cheap triage always on, full analysis only around suspicious energy")
		cascadeHot  = flag.Int("cascade-hot", 0, "hot-frame heat that engages the full analyzer (0: 3)")
		cascadeCold = flag.Int("cascade-cold", 0, "consecutive cold frames that release it (0: 25, ~0.5s)")
		cascadeDB   = flag.String("cascade-floor-db", "0", "frame-energy hot floor in dBFS (0: -55), or \"auto\" to tune it from the fleet's energy-margin distribution")
		cascadePre  = flag.Int("cascade-preroll", 0, "frames replayed into the analyzer on escalation (0: 16)")
		cascadeT05  = flag.Bool("cascade-tier05", false, "tier-0.5 coarse spectral triage: demote energy-hot frames whose in-band share still sits below the floor")
		ringFrames  = flag.Int("ring-frames", 0, "per-session frame ring depth (0: 16)")
		emitEvery   = flag.Int("emit-every", 0, "interim verdict every N frames (0: final only)")
		corrCap     = flag.Float64("corr-seconds", 0, "correlation memory cap per session in seconds (0: 60)")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline for in-flight sessions")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the metrics port")
		traceExempl = flag.Int("trace-exemplars", 64, "completed sessions retained by the flight recorder (0: tracing off)")
		sloMS       = flag.Int("slo-ms", 500, "final-verdict latency SLO; violating sessions are retained as notable (0: no SLO)")
		nodeName    = flag.String("node", "", "cluster identity of this process (labels /fleet, traces and fleet_build_info)")
		journalDir  = flag.String("journal", "", "directory for the durable session journal (empty: journaling off)")
		journalSeg  = flag.Int("journal-segment-mb", 4, "journal segment size in MiB before rotation")
		journalMax  = flag.Int("journal-max-mb", 256, "journal byte-retention cap in MiB (oldest segments deleted)")
		journalAge  = flag.Duration("journal-max-age", 0, "journal age-retention cap (0: unlimited)")
		journalFeat = flag.Int("journal-features", 32, "feature frames captured per session for replay (0: privacy mode, verdicts only)")
		clusterNode = flag.String("cluster-node", "", "also serve the inter-node transport on this TCP address (backend mode, routable by -route)")
		route       = flag.String("route", "", "comma-separated backend transport addresses: run as a front-end router (no detector)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: guardd [-listen addr] [-detector kind] [-quick] < session")
		os.Exit(2)
	}

	if *route != "" {
		if *clusterNode != "" {
			fatal("-route and -cluster-node are mutually exclusive (a process is a router or a backend)")
		}
		runRouter(*listen, *metricsAddr, *route, *nodeName, *drain)
		return
	}

	floorDB, floorAuto := 0.0, false
	if *cascadeDB == "auto" {
		floorAuto = true
	} else if _, err := fmt.Sscanf(*cascadeDB, "%g", &floorDB); err != nil {
		fatal("-cascade-floor-db: %q is neither a dBFS value nor \"auto\"", *cascadeDB)
	}

	det, trainVecs, err := buildDetector(*detector, *seed, *quick)
	if err != nil {
		fatal("training: %v", err)
	}

	reg := telemetry.NewRegistry()
	telemetry.RegisterBuildInfo(reg, *nodeName, "node")

	var rec *trace.Recorder
	if *traceExempl > 0 {
		feat := *journalFeat
		if feat <= 0 {
			feat = -1 // privacy mode: record verdicts, never vectors
		}
		rec = trace.NewRecorder(trace.Config{
			Exemplars:     *traceExempl,
			SLO:           time.Duration(*sloMS) * time.Millisecond,
			Node:          *nodeName,
			FeatureFrames: feat,
			Evicted: reg.NewCounterVec("fleet_trace_evicted_total",
				"Flight-recorder exemplars lost to retention pressure by ring.",
				"ring", "recent", "notable"),
		})
	}

	var jnl *journal.Journal
	if *journalDir != "" {
		if rec == nil {
			fatal("-journal records sealed session traces: it needs the flight recorder (-trace-exemplars > 0)")
		}
		var err error
		jnl, err = journal.Open(journal.Config{
			Dir:          *journalDir,
			SegmentBytes: int64(*journalSeg) << 20,
			MaxBytes:     int64(*journalMax) << 20,
			MaxAge:       *journalAge,
			Node:         *nodeName,
			Model:        modelString(*detector, *seed, *quick),
			Build:        buildString(),
			Metrics:      reg,
		})
		if err != nil {
			fatal("journal: %v", err)
		}
		defer jnl.Close()
		fmt.Fprintf(os.Stderr, "guardd: journaling sessions to %s (%d recovered)\n", *journalDir, jnl.Stats().Recovered)
	}
	drift := trace.NewDriftMonitor(reg)
	if trainVecs != nil {
		drift.SetReference(trace.ReferenceFromVectors(trainVecs))
	} else {
		// Demo mode trains nothing; pin the quick-corpus reference so
		// /drift still has a baseline to diverge from.
		drift.SetReference(trace.DemoReference())
	}

	srv := stream.NewServer(stream.ServerConfig{
		Detector:          det,
		Workers:           *workers,
		MaxSessions:       *maxSessions,
		Shards:            *shards,
		Degrade:           *degrade,
		Cascade:           *cascade,
		CascadeHotFrames:  *cascadeHot,
		CascadeColdFrames: *cascadeCold,
		CascadeFloorDB:    floorDB,
		CascadePreroll:    *cascadePre,
		CascadeTier05:     *cascadeT05,
		CascadeFloorAuto:  floorAuto,
		RingFrames:        *ringFrames,
		EmitEvery:         *emitEvery,
		MaxCorrSeconds:    *corrCap,
		Metrics:           reg,
		Trace:             rec,
		Drift:             drift,
		Journal:           jnl,
		Node:              *nodeName,
	})

	if *metricsAddr != "" {
		mux := telemetry.Mux(reg)
		srv.MountIntrospection(mux)
		if *pprofOn {
			mountPprof(mux)
		}
		ml, _, err := telemetry.ListenAndServeHandler(*metricsAddr, mux)
		if err != nil {
			fatal("metrics: %v", err)
		}
		extra := ""
		if *pprofOn {
			extra = ", /debug/pprof/"
		}
		fmt.Fprintf(os.Stderr, "guardd: metrics on http://%s/metrics (also /varz, /healthz, /sessions, /shards, /fleet, /drift, /journal%s)\n", ml.Addr(), extra)
	}

	if *listen == "" && *clusterNode == "" {
		if err := srv.ServeSession(os.Stdin, os.Stdout); err != nil {
			jnl.Close()
			fatal("session: %v", err)
		}
		jnl.Close()
		return
	}

	// Backend mode: the inter-node transport listener, alongside (or
	// instead of) the direct client listener.
	var backend *cluster.Backend
	var bl net.Listener
	if *clusterNode != "" {
		var err error
		bl, err = net.Listen("tcp", *clusterNode)
		if err != nil {
			fatal("cluster-node listen: %v", err)
		}
		backend = cluster.NewBackend(srv, 0)
		go backend.Serve(bl)
		fmt.Fprintf(os.Stderr, "guardd: cluster transport on %s (node %q)\n", bl.Addr(), *nodeName)
	}

	var l net.Listener
	serveDone := make(chan error, 1)
	if *listen != "" {
		var err error
		l, err = net.Listen("tcp", *listen)
		if err != nil {
			fatal("listen: %v", err)
		}
		fmt.Fprintf(os.Stderr, "guardd: serving on %s (%d shards, cap %s, degrade %v)\n",
			l.Addr(), srv.Fleet().Shards(), capString(srv.Workers()), *degrade)
		go func() { serveDone <- srv.ServeListener(l) }()
	}

	// Graceful shutdown: the first signal closes the listeners (and, in
	// backend mode, flips the fleet to draining so routers' new opens
	// refuse explicitly), after which in-flight sessions drain and
	// flush their final verdicts. The drain deadline, or a second
	// signal, force-aborts what remains (fleet sessions cut, stalled
	// connections closed) so the daemon always exits promptly.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	forceAbort := func() {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // already expired: Shutdown force-aborts immediately
		srv.Shutdown(ctx)
		if backend != nil {
			backend.Close()
		}
	}
	go func() {
		sig := <-sigc
		fmt.Fprintf(os.Stderr, "guardd: %s — draining in-flight sessions (deadline %s)...\n", sig, *drain)
		if l != nil {
			l.Close()
		} else {
			serveDone <- nil
		}
		if bl != nil {
			bl.Close()
			srv.SetDraining(true)
		}
		timer := time.AfterFunc(*drain, forceAbort)
		defer timer.Stop()
		sig = <-sigc
		fmt.Fprintf(os.Stderr, "guardd: %s again — aborting remaining sessions\n", sig)
		forceAbort()
	}()

	if err := <-serveDone; err != nil {
		fatal("serve: %v", err)
	}
	// Normal path: direct sessions drained while ServeListener waited;
	// Shutdown additionally drains transport-fed sessions up to the
	// deadline, then stops the shard workers (idempotent after a
	// force-abort).
	shutdownWait := time.Second
	if backend != nil {
		shutdownWait = *drain
	}
	ctx, cancel := context.WithTimeout(context.Background(), shutdownWait)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "guardd: drain incomplete: %v\n", err)
	}
	if backend != nil {
		backend.Close()
	}
	// After Shutdown every shard has finished its sessions; closing the
	// journal drains the handoff rings so the last verdicts are durable
	// before exit.
	jnl.Close()
	fmt.Fprintf(os.Stderr, "guardd: served %d sessions — bye\n", srv.Sessions())
}

// modelString stamps journal records with enough detector provenance
// to tell replays apart: kind, training seed and corpus tier.
func modelString(kind string, seed int64, quick bool) string {
	if kind == "demo" {
		return "demo"
	}
	tier := "full"
	if quick {
		tier = "quick"
	}
	return fmt.Sprintf("%s/seed=%d/%s", kind, seed, tier)
}

// buildString stamps journal records with the serving binary's version
// (module version or VCS revision when the build recorded one).
func buildString() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	rev := ""
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" {
			rev = kv.Value
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev != "" {
		return rev
	}
	return bi.Main.Version
}

// runRouter is -route: the process fronts a static backend list,
// owning client connections and relaying sessions over the inter-node
// transport. No detector, no training — start-up is instant.
func runRouter(listen, metricsAddr, nodesCSV, nodeName string, drain time.Duration) {
	var nodes []string
	for _, n := range strings.Split(nodesCSV, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodes = append(nodes, n)
		}
	}
	if listen == "" {
		fatal("-route needs -listen (the client-facing address)")
	}

	reg := telemetry.NewRegistry()
	telemetry.RegisterBuildInfo(reg, nodeName, "router")
	rt, err := cluster.NewRouter(cluster.RouterConfig{Nodes: nodes, Node: nodeName, Metrics: reg})
	if err != nil {
		fatal("router: %v", err)
	}

	if metricsAddr != "" {
		mux := telemetry.Mux(reg)
		rt.MountControl(mux)
		ml, _, err := telemetry.ListenAndServeHandler(metricsAddr, mux)
		if err != nil {
			fatal("metrics: %v", err)
		}
		fmt.Fprintf(os.Stderr, "guardd: router metrics on http://%s/metrics (also /varz, /healthz, /cluster)\n", ml.Addr())
	}

	l, err := net.Listen("tcp", listen)
	if err != nil {
		fatal("listen: %v", err)
	}
	fmt.Fprintf(os.Stderr, "guardd: routing sessions on %s across %d nodes: %s\n",
		l.Addr(), len(nodes), strings.Join(nodes, ", "))

	serveDone := make(chan error, 1)
	go func() { serveDone <- rt.ServeListener(l) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		fmt.Fprintf(os.Stderr, "guardd: %s — draining in-flight relays (deadline %s)...\n", sig, drain)
		l.Close()
	}()

	if err := <-serveDone; err != nil {
		fatal("serve: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "guardd: signal again — aborting remaining relays")
		cancel()
	}()
	if err := rt.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "guardd: relay drain incomplete: %v\n", err)
	}
	v := rt.View()
	fmt.Fprintf(os.Stderr, "guardd: routed %d sessions — bye\n", v.SessionsTotal)
}

// buildDetector resolves -detector: "demo" returns the hand-calibrated
// thresholds instantly (no corpus, no training — smoke tests and CI);
// anything else simulates the corpus and trains, returning the training
// feature vectors so the caller can pin them as the drift reference.
func buildDetector(kind string, seed int64, quick bool) (defense.Detector, [][]float64, error) {
	if kind == "demo" {
		fmt.Fprintln(os.Stderr, "guardd: demo detector (hand-calibrated thresholds, no training)")
		return defense.DemoThresholds(), nil, nil
	}
	fmt.Fprintf(os.Stderr, "guardd: training %s detector on simulated corpus (one-time)...\n", kind)
	start := time.Now()
	sc := core.DefaultScenario()
	sc.Seed = seed
	cfg := experiment.DefaultCorpusConfig(sc)
	if quick {
		cfg = experiment.QuickCorpusConfig(cfg)
	}
	cfg.Runner = experiment.NewRunner(0)
	det, samples, err := experiment.TrainDetectorWithSamples(kind, cfg, seed)
	if err != nil {
		return nil, nil, err
	}
	vecs := make([][]float64, len(samples))
	for i, s := range samples {
		vecs[i] = s.X
	}
	fmt.Fprintf(os.Stderr, "guardd: detector ready in %s (%d training samples pinned as drift reference)\n",
		time.Since(start).Round(time.Millisecond), len(samples))
	return det, vecs, nil
}

// mountPprof wires the net/http/pprof handlers explicitly: guardd never
// serves http.DefaultServeMux, so the package's init-time registrations
// must be re-homed onto the telemetry mux.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

func capString(n int) string {
	if n == 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%d sessions", n)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "guardd: "+format+"\n", args...)
	os.Exit(1)
}
