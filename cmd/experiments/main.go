// Command experiments regenerates every table and figure series of the
// paper's evaluation (experiment ids E1-E13, see DESIGN.md), and runs
// custom spec-driven sweeps over arbitrary scenarios.
//
// Usage:
//
//	experiments -list
//	experiments -id E6            # one experiment
//	experiments -id E5,E7         # a comma list
//	experiments -all [-quick] [-parallel N] [-cache DIR] [-csv|-json] [-v]
//	experiments -spec scenario.json -sweep distance=1:15:1 [-sweep power=100,300]
//
// Trials fan out across a worker pool (default: all cores) and flow
// through a content-addressed trial cache, so cells shared between
// experiments are delivered once per run — and once ever with -cache.
// Output is byte-identical for any -parallel value at a fixed -seed,
// cache cold or warm; -parallel 1 recovers the fully serial engine.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"inaudible/internal/experiment"
	"inaudible/internal/sim"
)

func main() {
	var (
		id       = flag.String("id", "", "run one or more experiments (E1..E13, comma-separated)")
		all      = flag.Bool("all", false, "run every experiment")
		quick    = flag.Bool("quick", false, "smaller grids and trial counts")
		list     = flag.Bool("list", false, "list experiment ids")
		seed     = flag.Int64("seed", 1, "simulation seed")
		parallel = flag.Int("parallel", 0, "trial-engine workers (0 = all cores, 1 = serial)")
		cacheDir = flag.String("cache", "", "on-disk trial cache directory (reused across runs)")
		csvOut   = flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
		jsonOut  = flag.Bool("json", false, "emit reports as one JSON document")
		verbose  = flag.Bool("v", false, "print per-experiment timing and cache hit/miss stats to stderr")
		specPath = flag.String("spec", "", "declarative scenario (JSON) for a custom sweep")
	)
	var sweeps sweepFlags
	flag.Var(&sweeps, "sweep", "sweep axis over a -spec field: name=start:stop:step or name=v1,v2 (repeatable)")
	flag.Parse()

	if *list {
		for _, eid := range experiment.IDs() {
			fmt.Printf("%-4s %s\n", eid, experiment.Describe(eid))
		}
		return
	}
	if *csvOut && *jsonOut {
		fatalf("pick one of -csv and -json")
	}

	if *specPath != "" {
		if *quick || *cacheDir != "" {
			fatalf("-quick and -cache apply to the E1-E13 suite, not -spec sweeps")
		}
		// -seed overrides the spec's embedded seed only when given
		// explicitly (the default would silently shadow the file's).
		seedSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "seed" {
				seedSet = true
			}
		})
		runSpecSweep(*specPath, sweeps, specSweepOpts{
			parallel: *parallel, csv: *csvOut, json: *jsonOut, verbose: *verbose,
			seedSet: seedSet, seed: *seed,
		})
		return
	}
	if len(sweeps) > 0 {
		fatalf("-sweep needs -spec (the scenario to sweep)")
	}

	var ids []string
	switch {
	case *all:
		ids = experiment.IDs()
	case *id != "":
		for _, one := range strings.Split(*id, ",") {
			if one = strings.TrimSpace(one); one != "" {
				ids = append(ids, one)
			}
		}
	}
	if len(ids) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	s := experiment.NewSuite(experiment.Options{
		Quick: *quick, Seed: *seed, Parallel: *parallel, CacheDir: *cacheDir,
	})
	text := !*jsonOut && !*csvOut
	var reports []*experiment.Report
	for _, eid := range ids {
		if text {
			// Before evaluating, so long runs show which experiment is
			// in flight.
			fmt.Printf("\n######## %s — %s\n", eid, experiment.Describe(eid))
		}
		start := time.Now()
		rep, err := s.Report(eid)
		if err != nil {
			fatalf("experiment %s: %v", eid, err)
		}
		switch {
		case *jsonOut:
			reports = append(reports, rep)
		case *csvOut:
			rep.CSV(os.Stdout)
		default:
			rep.Render(os.Stdout)
			fmt.Printf("(%s finished in %.1fs)\n", eid, time.Since(start).Seconds())
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "[%s] %.1fs, cache: %d hits, %d misses\n",
				eid, time.Since(start).Seconds(), rep.CacheHits, rep.CacheMisses)
		}
	}
	if *jsonOut {
		emitJSON(reports)
	}
}

// specSweepOpts carries the CLI flags a spec sweep honors.
type specSweepOpts struct {
	parallel  int
	csv, json bool
	verbose   bool
	seedSet   bool
	seed      int64
}

// runSpecSweep loads a declarative scenario and sweeps it over the
// requested axes — any sim.Spec becomes a runnable experiment.
func runSpecSweep(path string, defs []string, opt specSweepOpts) {
	sp, err := sim.LoadSpec(path)
	if err != nil {
		fatalf("%v", err)
	}
	if opt.seedSet {
		sp.Seed = opt.seed
	}
	axes, err := experiment.ParseSweepAxes(defs)
	if err != nil {
		fatalf("%v", err)
	}
	start := time.Now()
	rep, err := experiment.SpecSweepReport(sp, axes, nil, opt.parallel)
	if err != nil {
		fatalf("sweep: %v", err)
	}
	switch {
	case opt.json:
		emitJSON([]*experiment.Report{rep})
	case opt.csv:
		rep.CSV(os.Stdout)
	default:
		rep.Render(os.Stdout)
	}
	if opt.verbose {
		fmt.Fprintf(os.Stderr, "[sweep] %.1fs, %d axes\n", time.Since(start).Seconds(), len(axes))
	}
}

// emitJSON writes the collected reports as one indented JSON document.
func emitJSON(reports []*experiment.Report) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(reports); err != nil {
		fatalf("encoding json: %v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// sweepFlags accumulates repeated -sweep definitions.
type sweepFlags []string

func (s *sweepFlags) String() string { return strings.Join(*s, " ") }
func (s *sweepFlags) Set(v string) error {
	*s = append(*s, v)
	return nil
}
