// Command experiments regenerates every table and figure series of the
// paper's evaluation (experiment ids E1-E13, see DESIGN.md).
//
// Usage:
//
//	experiments -list
//	experiments -id E6
//	experiments -all [-quick] [-parallel N]
//
// Trials fan out across a worker pool (default: all cores). Output is
// byte-identical for any -parallel value at a fixed -seed; -parallel 1
// recovers the fully serial engine.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"inaudible/internal/experiment"
)

func main() {
	var (
		id       = flag.String("id", "", "run a single experiment (E1..E13)")
		all      = flag.Bool("all", false, "run every experiment")
		quick    = flag.Bool("quick", false, "smaller grids and trial counts")
		list     = flag.Bool("list", false, "list experiment ids")
		seed     = flag.Int64("seed", 1, "simulation seed")
		parallel = flag.Int("parallel", 0, "trial-engine workers (0 = all cores, 1 = serial)")
	)
	flag.Parse()

	if *list {
		for _, eid := range experiment.IDs() {
			fmt.Printf("%-4s %s\n", eid, experiment.Describe(eid))
		}
		return
	}

	s := experiment.NewSuite(experiment.Options{Quick: *quick, Seed: *seed, Parallel: *parallel})
	run := func(eid string) {
		start := time.Now()
		fmt.Printf("\n######## %s — %s\n", eid, experiment.Describe(eid))
		if err := s.Run(eid, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", eid, err)
			os.Exit(1)
		}
		fmt.Printf("(%s finished in %.1fs)\n", eid, time.Since(start).Seconds())
	}

	switch {
	case *all:
		for _, eid := range experiment.IDs() {
			run(eid)
		}
	case *id != "":
		run(*id)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
