// Command guardctl is the operator CLI for a running guardd: it talks
// to the daemon's metrics/introspection port and prints the JSON the
// introspection plane serves, or validates the whole plane in one shot.
//
// Usage:
//
//	guardctl [-base http://127.0.0.1:8080] <command>
//
//	fleet          fleet-wide snapshot (admission, wire, recorder)
//	shards         per-shard worker counters
//	sessions       flight-recorder listing (live + retained exemplars)
//	session <id>   one session's full event trace
//	drift          per-feature divergence vs the training distribution
//	check          validate the plane: strict Prometheus conformance on
//	               /metrics, JSON decode of every introspection endpoint
//
// check exits non-zero on the first violation, which makes it the CI
// smoke gate: start guardd, push a burst of sessions, `guardctl check`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"inaudible/internal/telemetry"
)

func main() {
	base := flag.String("base", "http://127.0.0.1:8080", "guardd metrics/introspection base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	c := &client{base: strings.TrimRight(*base, "/"), http: &http.Client{Timeout: 10 * time.Second}}

	var err error
	switch args[0] {
	case "fleet":
		err = c.printJSON("/fleet")
	case "shards":
		err = c.printJSON("/shards")
	case "sessions":
		err = c.printJSON("/sessions")
	case "session":
		if len(args) != 2 {
			usage()
		}
		err = c.printJSON("/sessions/" + args[1])
	case "drift":
		err = c.printJSON("/drift")
	case "check":
		err = c.check()
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "guardctl: %v\n", err)
		os.Exit(1)
	}
}

type client struct {
	base string
	http *http.Client
}

func (c *client) get(path string) (*http.Response, error) {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		return nil, fmt.Errorf("GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return resp, nil
}

// printJSON relays an endpoint's body to stdout (already indented by
// the server's encoder).
func (c *client) printJSON(path string) error {
	resp, err := c.get(path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

// check validates the whole observability plane: /metrics passes the
// strict Prometheus exposition checker, and every introspection
// endpoint both answers 200 and decodes as JSON. One line per probe; an
// error on any probe fails the run.
func (c *client) check() error {
	resp, err := c.get("/metrics")
	if err != nil {
		return err
	}
	err = telemetry.CheckExposition(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("/metrics: %w", err)
	}
	fmt.Println("ok /metrics (strict exposition conformance)")

	for _, path := range []string{"/varz", "/fleet", "/shards", "/sessions", "/drift"} {
		resp, err := c.get(path)
		if err != nil {
			return err
		}
		var v interface{}
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("%s: not valid JSON: %w", path, err)
		}
		fmt.Printf("ok %s\n", path)
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: guardctl [-base url] fleet|shards|sessions|session <id>|drift|check")
	os.Exit(2)
}
