// Command guardctl is the operator CLI for a running guardd: it talks
// to the daemon's metrics/introspection port and prints the JSON the
// introspection plane serves, or validates the whole plane in one shot.
//
// Usage:
//
//	guardctl [-base http://127.0.0.1:8080] <command>
//
//	fleet           fleet-wide snapshot (admission, wire, recorder)
//	shards          per-shard worker counters
//	sessions        flight-recorder listing (live + retained exemplars)
//	session <id>    one session's full event trace
//	drift           per-feature divergence vs the training distribution
//	journal         durable-journal listing + WAL health stats
//	journal <seq>   one journaled session: events + feature frames
//	cluster         router control plane: per-node occupancy, health, drain
//	drain <node>    take a backend out of the routing rotation
//	undrain <node>  return it to the rotation
//	check           validate the plane: strict Prometheus conformance on
//	                /metrics, JSON decode of every introspection endpoint,
//	                and journal integrity (zero corrupt records, sampled
//	                record decode) when the target journals
//
// check exits non-zero on the first violation, which makes it the CI
// smoke gate: start guardd, push a burst of sessions, `guardctl check`.
// It adapts to the target's role: endpoints the process does not mount
// (404) are skipped, but the target must serve at least one of /fleet
// (a serving node) or /cluster (a router).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"inaudible/internal/telemetry"
)

func main() {
	base := flag.String("base", "http://127.0.0.1:8080", "guardd metrics/introspection base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	c := &client{base: strings.TrimRight(*base, "/"), http: &http.Client{Timeout: 10 * time.Second}}

	var err error
	switch args[0] {
	case "fleet":
		err = c.printJSON("/fleet")
	case "shards":
		err = c.printJSON("/shards")
	case "sessions":
		err = c.printJSON("/sessions")
	case "session":
		if len(args) != 2 {
			usage()
		}
		err = c.printJSON("/sessions/" + args[1])
	case "drift":
		err = c.printJSON("/drift")
	case "journal":
		if len(args) > 2 {
			usage()
		}
		if len(args) == 2 {
			err = c.printJSON("/journal/" + args[1])
		} else {
			err = c.printJSON("/journal")
		}
	case "cluster":
		err = c.printJSON("/cluster")
	case "drain", "undrain":
		if len(args) != 2 {
			usage()
		}
		err = c.setDrain(args[0], args[1])
	case "check":
		err = c.check()
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "guardctl: %v\n", err)
		os.Exit(1)
	}
}

type client struct {
	base string
	http *http.Client
}

func (c *client) get(path string) (*http.Response, error) {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		return nil, fmt.Errorf("GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return resp, nil
}

// printJSON relays an endpoint's body to stdout (already indented by
// the server's encoder).
func (c *client) printJSON(path string) error {
	resp, err := c.get(path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

// setDrain drives the router's drain control for one backend node and
// echoes the resulting cluster view.
func (c *client) setDrain(verb, node string) error {
	resp, err := c.http.Post(c.base+"/cluster/"+verb+"?node="+url.QueryEscape(node), "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s %s: %s: %s", verb, node, resp.Status, strings.TrimSpace(string(body)))
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

// check validates the whole observability plane: /metrics passes the
// strict Prometheus exposition checker, and every introspection
// endpoint the target mounts answers 200 and decodes as JSON (a 404
// means the endpoint is not part of this role's plane and is skipped —
// routers have no /fleet, nodes no /cluster — but at least one of the
// two must answer). One line per probe; an error on any probe fails
// the run.
func (c *client) check() error {
	resp, err := c.get("/metrics")
	if err != nil {
		return err
	}
	err = telemetry.CheckExposition(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("/metrics: %w", err)
	}
	fmt.Println("ok /metrics (strict exposition conformance)")

	served := map[string]bool{}
	for _, path := range []string{"/varz", "/fleet", "/shards", "/sessions", "/drift", "/journal", "/cluster"} {
		resp, err := c.http.Get(c.base + path)
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusNotFound {
			resp.Body.Close()
			fmt.Printf("skip %s (not mounted on this role)\n", path)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			return fmt.Errorf("GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
		}
		var v interface{}
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("%s: not valid JSON: %w", path, err)
		}
		served[path] = true
		fmt.Printf("ok %s\n", path)
	}
	if !served["/fleet"] && !served["/cluster"] {
		return fmt.Errorf("target serves neither /fleet (node) nor /cluster (router)")
	}
	if served["/journal"] {
		if err := c.checkJournal(); err != nil {
			return err
		}
	}
	return nil
}

// checkJournal is the durability leg of check: the /journal stats must
// report zero corrupt records, and a sample of the newest records must
// fetch and decode — each /journal/{seq} GET CRC-verifies the record
// on the daemon side, so a decode failure here means WAL damage.
func (c *client) checkJournal() error {
	resp, err := c.get("/journal")
	if err != nil {
		return err
	}
	var list struct {
		Stats struct {
			Corrupt   uint64 `json:"corrupt_records_total"`
			TornTails uint64 `json:"torn_tails_truncated_total"`
			Retained  int    `json:"retained"`
		} `json:"stats"`
		Sessions []struct {
			Seq uint64 `json:"seq"`
		} `json:"sessions"`
	}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("/journal: not valid JSON: %w", err)
	}
	if list.Stats.Corrupt != 0 {
		return fmt.Errorf("/journal: %d corrupt records (WAL integrity violated)", list.Stats.Corrupt)
	}
	sample := len(list.Sessions)
	if sample > 3 {
		sample = 3
	}
	for i := 0; i < sample; i++ {
		path := fmt.Sprintf("/journal/%d", list.Sessions[i].Seq)
		resp, err := c.get(path)
		if err != nil {
			return err
		}
		var entry struct {
			Seq    uint64        `json:"seq"`
			Events []interface{} `json:"events"`
		}
		err = json.NewDecoder(resp.Body).Decode(&entry)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("%s: not valid JSON: %w", path, err)
		}
		if entry.Seq != list.Sessions[i].Seq || len(entry.Events) == 0 {
			return fmt.Errorf("%s: record incomplete (seq %d, %d events)", path, entry.Seq, len(entry.Events))
		}
	}
	fmt.Printf("ok /journal integrity (%d retained, 0 corrupt, %d records decoded)\n", list.Stats.Retained, sample)
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: guardctl [-base url] fleet|shards|sessions|session <id>|drift|journal [seq]|cluster|drain <node>|undrain <node>|check")
	os.Exit(2)
}
