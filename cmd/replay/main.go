// Command replay is the regression-replay harness for the durable
// session journal (see internal/journal and guardd's -journal flag):
// it opens a journal directory read-only, re-serves every stored
// feature frame through a detector, and diffs the detector's verdicts
// against the ones guardd recorded live.
//
// Two modes:
//
//   - Parity check (-verify): replay with the SAME detector
//     configuration that served the traffic. Scores are stored as raw
//     IEEE-754 bits and the detectors are deterministic, so the replay
//     must reproduce every recorded verdict bit-for-bit; any
//     divergence exits non-zero. This is the CI gate that proves the
//     journal is a faithful record.
//
//   - Candidate diff: replay with a DIFFERENT detector (new kind, new
//     seed, retrained corpus) and read the structured report — how
//     many verdicts flip, the worst score delta, and an itemized diff
//     of the first divergent sessions. This answers "what would the
//     new model have said about last week's traffic" without
//     re-serving a single byte of audio.
//
// The journal is opened read-only: a live guardd can keep appending to
// the same directory while replay runs (the torn tail, if any, is
// skipped, never truncated).
//
// Usage:
//
//	replay -journal /var/lib/guardd/journal -detector demo -verify
//	replay -journal ./j -detector svm -seed 2 -quick        # candidate diff
//	replay -journal ./j -detector logistic -json | jq .
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"inaudible/internal/core"
	"inaudible/internal/defense"
	"inaudible/internal/experiment"
	"inaudible/internal/journal"
)

func main() {
	var (
		dir      = flag.String("journal", "", "journal directory to replay (required)")
		detector = flag.String("detector", "demo", "candidate detector kind: demo, or one of the trained kinds")
		seed     = flag.Int64("seed", 1, "corpus and training seed for trained detectors")
		quick    = flag.Bool("quick", false, "train the candidate on the Quick-suite corpus")
		limit    = flag.Int("limit", 0, "replay only the newest N sessions (0: all retained)")
		jsonOut  = flag.Bool("json", false, "print the full report as JSON (default: summary lines)")
		verify   = flag.Bool("verify", false, "parity mode: exit non-zero unless replay is bit-identical to the recording")
	)
	flag.Parse()
	if *dir == "" || flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: replay -journal DIR [-detector kind] [-seed n] [-quick] [-limit n] [-json] [-verify]")
		os.Exit(2)
	}

	det, err := buildDetector(*detector, *seed, *quick)
	if err != nil {
		fatal("detector: %v", err)
	}

	j, err := journal.Open(journal.Config{Dir: *dir, ReadOnly: true})
	if err != nil {
		fatal("open: %v", err)
	}
	defer j.Close()
	st := j.Stats()
	fmt.Fprintf(os.Stderr, "replay: %d sessions retained in %s (%d segments, %d corrupt skipped)\n",
		st.Retained, *dir, st.Segments, st.Corrupt)

	rep, err := j.Replay(det, journal.ReplayOptions{Limit: *limit})
	if err != nil {
		fatal("replay: %v", err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal("encoding report: %v", err)
		}
	} else {
		printSummary(rep)
	}

	if *verify && !rep.Identical {
		fmt.Fprintf(os.Stderr, "replay: FAIL — %d score mismatches, %d attack flips (max score delta %g)\n",
			rep.ScoreMismatch, rep.AttackFlips, rep.MaxScoreDelta)
		os.Exit(1)
	}
	if *verify {
		fmt.Fprintf(os.Stderr, "replay: PASS — %d verdicts across %d sessions reproduced bit-identically\n",
			rep.Verdicts, rep.Replayed)
	}
}

// printSummary renders the report for humans: the aggregate counters,
// then one line per itemized diff.
func printSummary(rep *journal.Report) {
	fmt.Printf("sessions %d  replayed %d  skipped-no-features %d  read-errors %d\n",
		rep.Sessions, rep.Replayed, rep.SkippedNoFrame, rep.ReadErrors)
	fmt.Printf("verdicts %d (%d final)  score-mismatches %d  attack-flips %d (%d final)  max-score-delta %g\n",
		rep.Verdicts, rep.FinalVerdicts, rep.ScoreMismatch, rep.AttackFlips, rep.FinalFlips, rep.MaxScoreDelta)
	if rep.Identical {
		fmt.Println("identical: candidate reproduces the recording bit-for-bit")
		return
	}
	for _, d := range rep.Diffs {
		kind := "interim"
		if d.Final {
			kind = "final"
		}
		fmt.Printf("diff seq=%d session=%d %s verdict#%d: recorded score=%g attack=%v, replay score=%g attack=%v\n",
			d.Seq, d.Session, kind, d.Verdict, d.RecordedScore, d.RecordedAttack, d.ReplayScore, d.ReplayAttack)
	}
}

// buildDetector mirrors guardd's -detector resolution so a parity run
// can reconstruct exactly the detector that served the traffic.
func buildDetector(kind string, seed int64, quick bool) (defense.Detector, error) {
	if kind == "demo" {
		return defense.DemoThresholds(), nil
	}
	fmt.Fprintf(os.Stderr, "replay: training candidate %s detector (seed %d)...\n", kind, seed)
	start := time.Now()
	sc := core.DefaultScenario()
	sc.Seed = seed
	cfg := experiment.DefaultCorpusConfig(sc)
	if quick {
		cfg = experiment.QuickCorpusConfig(cfg)
	}
	cfg.Runner = experiment.NewRunner(0)
	det, _, err := experiment.TrainDetectorWithSamples(kind, cfg, seed)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "replay: candidate ready in %s\n", time.Since(start).Round(time.Millisecond))
	return det, nil
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "replay: "+format+"\n", args...)
	os.Exit(1)
}
