// Command loadgen is the closed-loop workload driver for the guard
// service: it synthesizes benign/attack session mixes with the
// simulation chain, replays them over the real GRD1/WAV wire protocols
// against a running guardd (-addr) or an in-process fleet server, and
// measures verdict latency, throughput and classification outcomes. In
// -capacity mode it searches for the maximum sustained concurrency
// whose p99 final-verdict latency stays inside the SLO and reports
// sessions/sec (total and per core) at that point.
//
// Workload shape:
//
//   - -attack sets the attack fraction of the session mix;
//   - -session-seconds sets the audio length per session (payloads are
//     tiled from simulated recordings);
//   - -synth sim renders payloads through the PR 3 simulation chain
//     (speaker drive -> air -> mic capture); -synth cheap uses fast
//     closed-form signatures for smoke runs;
//   - -sessions N drives N closed-loop clients back-to-back;
//     -poisson R switches to open-loop Poisson arrivals at R/sec.
//
// Examples:
//
//	loadgen -synth cheap -detector demo -sessions 4 -duration 3s
//	loadgen -addr 127.0.0.1:7654 -sessions 8 -attack 0.3
//	loadgen -capacity -slo-ms 250 -json report.json
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"inaudible/internal/audio"
	"inaudible/internal/cluster"
	"inaudible/internal/core"
	"inaudible/internal/defense"
	"inaudible/internal/experiment"
	"inaudible/internal/stream"
	"inaudible/internal/telemetry"
	"inaudible/internal/trace"
	"inaudible/internal/voice"
)

func main() {
	var (
		addr        = flag.String("addr", "", "guardd TCP address (empty: serve in-process)")
		detector    = flag.String("detector", "threshold", "in-process detector: demo (untrained), "+strings.Join(experiment.DetectorKinds(), ", "))
		quick       = flag.Bool("quick", true, "train the in-process detector on the Quick corpus")
		seed        = flag.Int64("seed", 1, "synthesis and mix seed")
		synth       = flag.String("synth", "sim", "payload synthesis: sim (PR 3 chain) or cheap (closed-form)")
		attackFrac  = flag.Float64("attack", 0.5, "attack fraction of the session mix [0, 1]")
		sessionSecs = flag.Float64("session-seconds", 2, "audio seconds per session")
		proto       = flag.String("proto", "grd1", "wire protocol: grd1, wav, or mixed")
		sessions    = flag.Int("sessions", 4, "closed-loop client concurrency")
		poisson     = flag.Float64("poisson", 0, "open-loop Poisson arrivals per second (0: closed loop)")
		duration    = flag.Duration("duration", 5*time.Second, "measurement epoch length")
		emitEvery   = flag.Int("emit-every", 0, "in-process server: interim verdict every N frames")
		shards      = flag.Int("shards", 0, "in-process server: fleet shards (0: GOMAXPROCS)")
		maxSess     = flag.Int("max-sessions", -1, "in-process server: full-service cap (-1: unlimited)")
		degrade     = flag.Bool("degrade", false, "in-process server: degrade beyond the cap instead of queueing")
		cascade     = flag.Bool("cascade", false, "in-process server: serve through the two-tier detection cascade")
		duty        = flag.Float64("duty", 1, "active-audio fraction per session (rest exact-zero silence; <1 exercises the cascade's cheap tier)")
		capacity    = flag.Bool("capacity", false, "search max concurrency meeting the p99 SLO, then report capacity")
		sloMS       = flag.Float64("slo-ms", 500, "p99 final-verdict latency SLO in milliseconds")
		jsonPath    = flag.String("json", "", "write the JSON report to this path (\"-\": stdout)")
		quiet       = flag.Bool("quiet", false, "suppress progress logging")
	)
	flag.Parse()
	if *duty <= 0 || *duty > 1 {
		*duty = 1
	}

	logf := func(format string, args ...interface{}) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
		}
	}

	logf("synthesizing %s payloads (%.1fs sessions, %.0f%% attack, %.0f%% duty)...", *synth, *sessionSecs, 100**attackFrac, 100**duty)
	start := time.Now()
	payloads, err := buildPayloads(*synth, *seed, *sessionSecs, *attackFrac, *duty)
	if err != nil {
		fatal("synthesis: %v", err)
	}
	logf("%d payloads ready in %s", len(payloads), time.Since(start).Round(time.Millisecond))

	target := *addr
	var srv *stream.Server
	var reg *telemetry.Registry
	var rec *trace.Recorder
	if target == "" {
		reg = telemetry.NewRegistry()
		det, err := buildDetector(*detector, *seed, *quick, logf)
		if err != nil {
			fatal("detector: %v", err)
		}
		rec = trace.NewRecorder(trace.Config{SLO: time.Duration(*sloMS * float64(time.Millisecond))})
		srv = stream.NewServer(stream.ServerConfig{
			Detector:    det,
			MaxSessions: *maxSess,
			Shards:      *shards,
			Degrade:     *degrade,
			Cascade:     *cascade,
			EmitEvery:   *emitEvery,
			Metrics:     reg,
			Trace:       rec,
			Drift:       trace.NewDriftMonitor(reg),
		})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal("listen: %v", err)
		}
		go srv.ServeListener(l)
		defer func() {
			l.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
		target = l.Addr().String()
		logf("in-process server on %s (%d shards)", target, srv.Fleet().Shards())
	}

	gen := &generator{
		target:      target,
		payloads:    payloads,
		proto:       *proto,
		seed:        *seed,
		attackFrac:  *attackFrac,
		sessionSecs: *sessionSecs,
	}
	gen.buildPools()

	report := Report{
		Config: RunConfig{
			Target:         *addr,
			Synth:          *synth,
			Proto:          *proto,
			AttackFraction: *attackFrac,
			SessionSeconds: *sessionSecs,
			Duty:           *duty,
			Cascade:        *cascade,
			SLOP99MS:       *sloMS,
			GOMAXPROCS:     runtime.GOMAXPROCS(0),
		},
	}

	if *capacity {
		report.Capacity = searchCapacity(gen, *duration, *sloMS, logf)
	} else {
		var ep Epoch
		if *poisson > 0 {
			ep = gen.runOpenLoop(*poisson, *duration)
			logf("open loop %.1f/s for %s", *poisson, *duration)
		} else {
			ep = gen.runClosedLoop(*sessions, *duration)
			logf("closed loop %d clients for %s", *sessions, *duration)
		}
		report.Epochs = append(report.Epochs, ep)
	}

	if srv != nil && reg != nil {
		report.ServerMetrics = reg.Snapshot()
	}
	if rec != nil {
		st := rec.Stats()
		report.Recorder = &st
	}
	renderText(os.Stdout, &report)
	if *jsonPath != "" {
		out, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fatal("encoding report: %v", err)
		}
		out = append(out, '\n')
		if *jsonPath == "-" {
			os.Stdout.Write(out)
		} else if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
			fatal("writing report: %v", err)
		}
	}
}

// ---------------------------------------------------------------------
// Payload synthesis

// payload is one replayable session: wire bytes per protocol plus its
// ground-truth label.
type payload struct {
	attack bool
	grd1   []byte
	wav    []byte
}

// buildPayloads renders the benign/attack session mix. In sim mode the
// attack payloads are full baseline-attack deliveries (ultrasound
// emission, air propagation, non-linear capture) and the benign ones
// are voice deliveries over the same chain; cheap mode uses the
// closed-form demodulation signature for fast smoke runs.
func buildPayloads(synth string, seed int64, sessionSecs, attackFrac, duty float64) ([]payload, error) {
	const rate = 48000.0
	const variants = 2 // distinct recordings per class
	var attacks, benigns []*audio.Signal
	switch synth {
	case "sim":
		sc := core.DefaultScenario()
		sc.Seed = seed
		cmd := voice.MustSynthesize("ok google, take a picture", voice.DefaultVoice(), 48000)
		for i := 0; i < variants; i++ {
			_, run, err := sc.Simulate(cmd, core.KindBaseline, 20, 2, int64(i))
			if err != nil {
				return nil, fmt.Errorf("baseline attack: %w", err)
			}
			attacks = append(attacks, run.Recording)
			em := sc.EmitVoice(cmd, 65)
			benigns = append(benigns, sc.Deliver(em, 2, int64(100+i)).Recording)
		}
	case "cheap":
		for i := int64(0); i < variants; i++ {
			attacks = append(attacks, cheapSignal(rate, 1.0, seed+i, true))
			benigns = append(benigns, cheapSignal(rate, 1.0, seed+100+i, false))
		}
	default:
		return nil, fmt.Errorf("unknown -synth %q (want sim or cheap)", synth)
	}

	build := func(sig *audio.Signal, attack bool) (payload, error) {
		tiled := dutyCycle(tile(sig, sessionSecs*duty), sessionSecs, duty)
		var wav bytes.Buffer
		if err := audio.WriteWAV(&wav, tiled); err != nil {
			return payload{}, err
		}
		return payload{attack: attack, grd1: encodeGRD1(tiled), wav: wav.Bytes()}, nil
	}
	var out []payload
	for _, sig := range attacks {
		if attackFrac <= 0 {
			break
		}
		p, err := build(sig, true)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	for _, sig := range benigns {
		if attackFrac >= 1 {
			break
		}
		p, err := build(sig, false)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// cheapSignal is the closed-form session generator: speech-band bursts,
// with (attack) or without (benign) the quadratic demodulation copy the
// defense detects.
func cheapSignal(rate, seconds float64, seed int64, attack bool) *audio.Signal {
	rng := rand.New(rand.NewSource(seed))
	n := int(rate * seconds)
	x := make([]float64, n)
	for i := range x {
		t := float64(i) / rate
		gate := 0.0
		if math.Sin(2*math.Pi*3*t) > -0.3 {
			gate = 1
		}
		env := gate * (0.6 + 0.4*math.Sin(2*math.Pi*5*t))
		m := env * (math.Sin(2*math.Pi*300*t) + 0.5*math.Sin(2*math.Pi*1100*t))
		if attack {
			x[i] = 0.5*m + 0.25*m*m + 0.002*(rng.Float64()*2-1)
		} else {
			x[i] = 0.6*m + 0.004*(rng.Float64()*2-1)
		}
	}
	return audio.FromSamples(rate, x)
}

// tile repeats sig to the requested duration.
func tile(sig *audio.Signal, seconds float64) *audio.Signal {
	want := int(sig.Rate * seconds)
	if want <= 0 || sig.Len() == 0 {
		return sig
	}
	out := make([]float64, want)
	for off := 0; off < want; off += sig.Len() {
		copy(out[off:], sig.Samples)
	}
	return audio.FromSamples(sig.Rate, out)
}

// dutyCycle embeds the active audio in an exact-zero session of the
// full length, starting about a third of the way in — silence before
// and after, like a command spoken mid-session. Exact zeros keep the
// cascade's triage tier cold (no VAD peak, no trace-band energy), so
// sub-unit duty measures the two-tier capacity win. duty 1 is a no-op.
//
// Caveat: the misclass column is not meaningful under sub-unit duty —
// the detector was trained on undiluted recordings, so zero-padding
// shifts the feature distribution for cascade and non-cascade servers
// alike (verdict parity between them is what the corpus FN gate pins).
func dutyCycle(sig *audio.Signal, sessionSecs, duty float64) *audio.Signal {
	if duty >= 1 {
		return sig
	}
	total := int(sig.Rate * sessionSecs)
	active := sig.Samples
	if len(active) > total {
		active = active[:total]
	}
	out := make([]float64, total)
	copy(out[(total-len(active))/3:], active)
	return audio.FromSamples(sig.Rate, out)
}

// encodeGRD1 frames sig in the length-prefixed PCM protocol, 960-sample
// chunks.
func encodeGRD1(sig *audio.Signal) []byte {
	var b bytes.Buffer
	b.WriteString(stream.Magic)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(sig.Rate))
	b.Write(u32[:])
	const chunk = 960
	for off := 0; off < len(sig.Samples); off += chunk {
		end := off + chunk
		if end > len(sig.Samples) {
			end = len(sig.Samples)
		}
		part := sig.Samples[off:end]
		binary.LittleEndian.PutUint32(u32[:], uint32(2*len(part)))
		b.Write(u32[:])
		for _, v := range part {
			if v > 1 {
				v = 1
			} else if v < -1 {
				v = -1
			}
			var s [2]byte
			binary.LittleEndian.PutUint16(s[:], uint16(int16(v*32767)))
			b.Write(s[:])
		}
	}
	binary.LittleEndian.PutUint32(u32[:], 0)
	b.Write(u32[:])
	return b.Bytes()
}

func buildDetector(kind string, seed int64, quick bool, logf func(string, ...interface{})) (defense.Detector, error) {
	if kind == "demo" {
		return defense.DemoThresholds(), nil
	}
	logf("training %s detector (one-time)...", kind)
	start := time.Now()
	sc := core.DefaultScenario()
	sc.Seed = seed
	cfg := experiment.DefaultCorpusConfig(sc)
	if quick {
		cfg = experiment.QuickCorpusConfig(cfg)
	}
	cfg.Runner = experiment.NewRunner(0)
	det, err := experiment.TrainDetector(kind, cfg, seed)
	if err == nil {
		logf("detector ready in %s", time.Since(start).Round(time.Millisecond))
	}
	return det, err
}

// ---------------------------------------------------------------------
// Load loops

// generator drives sessions against one target.
type generator struct {
	target      string
	payloads    []payload
	proto       string
	seed        int64
	attackFrac  float64
	sessionSecs float64

	// class pools split by buildPools, read-only during load loops
	attackPool, benignPool []payload
}

// buildPools splits the payload set by class for weighted picking.
func (g *generator) buildPools() {
	for _, p := range g.payloads {
		if p.attack {
			g.attackPool = append(g.attackPool, p)
		} else {
			g.benignPool = append(g.benignPool, p)
		}
	}
}

// pick draws a payload honouring the attack fraction: the class is
// chosen by attackFrac, the variant uniformly within the class.
func (g *generator) pick(rng *rand.Rand) payload {
	pool := g.benignPool
	if rng.Float64() < g.attackFrac {
		pool = g.attackPool
	}
	if len(pool) == 0 {
		pool = g.payloads // single-class mixes (attack 0 or 1)
	}
	return pool[rng.Intn(len(pool))]
}

// Epoch is one measured load interval.
type Epoch struct {
	Mode           string  `json:"mode"`
	Concurrency    int     `json:"concurrency,omitempty"`
	ArrivalRate    float64 `json:"arrival_rate_per_sec,omitempty"`
	DurationS      float64 `json:"duration_s"`
	Completed      int64   `json:"completed"`
	Errors         int64   `json:"errors"`
	Rejected       int64   `json:"rejected"`
	DialRetries    int64   `json:"dial_retries,omitempty"`
	Shed           int64   `json:"shed,omitempty"`
	Degraded       int64   `json:"degraded"`
	Misclassified  int64   `json:"misclassified"`
	SessionsPerSec float64 `json:"sessions_per_sec"`
	VerdictP50MS   float64 `json:"verdict_p50_ms"`
	VerdictP95MS   float64 `json:"verdict_p95_ms"`
	VerdictP99MS   float64 `json:"verdict_p99_ms"`
	VerdictMaxMS   float64 `json:"verdict_max_ms"`
	// VerdictHistogramUS is the full final-verdict latency distribution
	// in microseconds — bucket bounds and per-bucket counts, so report
	// consumers can recompute any quantile or overlay runs, rather than
	// being limited to the point quantiles above.
	VerdictHistogramUS *telemetry.HistogramDump `json:"verdict_histogram_us,omitempty"`
}

// session result counters shared across clients.
type tally struct {
	completed, errors, rejected, shed, degraded, misclassified atomic.Int64
	dialRetries                                                atomic.Int64
	verdictUS                                                  *telemetry.Histogram
}

func newTally() *tally {
	// 10 µs .. ~80 s in geometric steps.
	return &tally{verdictUS: telemetry.NewHistogram(telemetry.ExpBuckets(10, 1.8, 27))}
}

// dialRetryAttempts bounds the per-session dial retry loop: enough to
// ride out a router or node restart (~2s of backoff), small enough
// that a dead target still fails the session promptly.
const dialRetryAttempts = 4

// dial connects to the target, retrying transient dial failures with
// the same jittered exponential backoff the cluster transport uses to
// redial its nodes (cluster.BackoffDelay). Retries are tallied into
// the report so a run that leaned on them says so.
func (g *generator) dial(t *tally) (net.Conn, error) {
	var err error
	for attempt := 0; ; attempt++ {
		var conn net.Conn
		conn, err = net.Dial("tcp", g.target)
		if err == nil {
			return conn, nil
		}
		if attempt == dialRetryAttempts {
			return nil, err
		}
		t.dialRetries.Add(1)
		time.Sleep(cluster.BackoffDelay(attempt, rand.Float64()))
	}
}

// runOne plays a single session and records its outcome. Verdict
// latency is measured from send-complete (half-close) to the final
// verdict line.
func (g *generator) runOne(t *tally, p payload, useWAV bool) {
	conn, err := g.dial(t)
	if err != nil {
		t.errors.Add(1)
		return
	}
	defer conn.Close()
	body := p.grd1
	if useWAV {
		body = p.wav
	}
	// A rejected session's error line arrives while we are still
	// writing (the server closes its end right after it) — on a write
	// failure, fall through and read whatever the server answered
	// instead of guessing.
	_, werr := conn.Write(body)
	sent := time.Now()
	if tc, ok := conn.(*net.TCPConn); ok && werr == nil {
		tc.CloseWrite()
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var last string
	for sc.Scan() {
		last = sc.Text()
	}
	if err := sc.Err(); err != nil && last == "" {
		t.errors.Add(1)
		return
	}
	var v struct {
		Attack   bool    `json:"attack"`
		Final    bool    `json:"final"`
		Degraded bool    `json:"degraded"`
		Error    *string `json:"error"`
	}
	if err := json.Unmarshal([]byte(last), &v); err != nil {
		t.errors.Add(1)
		return
	}
	if v.Error != nil {
		// Explicit admission refusals (overload, shutdown, node drain,
		// routerless cluster) are rejections — an accounted outcome, not
		// a failure of the harness.
		if strings.Contains(*v.Error, "overloaded") || strings.Contains(*v.Error, "closed") ||
			strings.Contains(*v.Error, "draining") || strings.Contains(*v.Error, "no backend") {
			t.rejected.Add(1)
		} else {
			t.errors.Add(1)
		}
		return
	}
	if !v.Final {
		t.errors.Add(1)
		return
	}
	t.verdictUS.Observe(float64(time.Since(sent).Microseconds()))
	t.completed.Add(1)
	if v.Degraded {
		t.degraded.Add(1)
		return // no classification promise in degraded mode
	}
	if v.Attack != p.attack {
		t.misclassified.Add(1)
	}
}

// runClosedLoop drives n clients back-to-back for d.
func (g *generator) runClosedLoop(n int, d time.Duration) Epoch {
	t := newTally()
	deadline := time.Now().Add(d)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(g.seed + int64(c)))
			for time.Now().Before(deadline) {
				g.runOne(t, g.pick(rng), g.useWAV(rng))
			}
		}(c)
	}
	wg.Wait()
	ep := t.epoch(time.Since(start))
	ep.Mode = "closed"
	ep.Concurrency = n
	return ep
}

// runOpenLoop spawns sessions at Poisson arrivals of rate/sec for d.
// In-flight sessions are capped at 4x the expected concurrency at the
// configured session length; beyond it arrivals are shed client-side
// and counted separately from server rejections (an explicit outcome,
// not a silent drop).
func (g *generator) runOpenLoop(rate float64, d time.Duration) Epoch {
	t := newTally()
	rng := rand.New(rand.NewSource(g.seed))
	deadline := time.Now().Add(d)
	// Little's law: expected in-flight = rate * service time; the
	// session's audio length bounds service time from below.
	limit := int64(4 * rate * g.sessionSecs)
	if limit < 16 {
		limit = 16
	}
	var inflight atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for now := time.Now(); now.Before(deadline); now = time.Now() {
		wait := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		time.Sleep(wait)
		if inflight.Load() >= limit {
			t.shed.Add(1)
			continue
		}
		p := g.pick(rng)
		useWAV := g.useWAV(rng)
		inflight.Add(1)
		wg.Add(1)
		go func() {
			defer func() { inflight.Add(-1); wg.Done() }()
			g.runOne(t, p, useWAV)
		}()
	}
	wg.Wait()
	ep := t.epoch(time.Since(start))
	ep.Mode = "open"
	ep.ArrivalRate = rate
	return ep
}

func (g *generator) useWAV(rng *rand.Rand) bool {
	switch g.proto {
	case "wav":
		return true
	case "mixed":
		return rng.Intn(2) == 1
	default:
		return false
	}
}

func (t *tally) epoch(elapsed time.Duration) Epoch {
	dump := t.verdictUS.Dump()
	return Epoch{
		VerdictHistogramUS: &dump,
		DurationS:          elapsed.Seconds(),
		Completed:          t.completed.Load(),
		Errors:             t.errors.Load(),
		Rejected:           t.rejected.Load(),
		DialRetries:        t.dialRetries.Load(),
		Shed:               t.shed.Load(),
		Degraded:           t.degraded.Load(),
		Misclassified:      t.misclassified.Load(),
		SessionsPerSec:     float64(t.completed.Load()) / elapsed.Seconds(),
		VerdictP50MS:       t.verdictUS.Quantile(0.50) / 1000,
		VerdictP95MS:       t.verdictUS.Quantile(0.95) / 1000,
		VerdictP99MS:       t.verdictUS.Quantile(0.99) / 1000,
		VerdictMaxMS:       t.verdictUS.Max() / 1000,
	}
}

// ---------------------------------------------------------------------
// Capacity search

// CapacityResult is the headline number: the largest sustained
// closed-loop concurrency whose p99 verdict latency meets the SLO.
type CapacityResult struct {
	SLOP99MS           float64 `json:"slo_p99_ms"`
	MaxSessions        int     `json:"max_sessions_at_slo"`
	SessionsPerSec     float64 `json:"sessions_per_sec_at_slo"`
	SessionsPerCoreSec float64 `json:"sessions_per_core_sec_at_slo"`
	P99AtCapacityMS    float64 `json:"p99_at_capacity_ms"`
	Probes             []Epoch `json:"probes"`
}

// searchCapacity doubles concurrency until the SLO breaks, then binary
// searches the boundary. Each probe is a fresh closed-loop epoch.
func searchCapacity(g *generator, epoch time.Duration, sloMS float64, logf func(string, ...interface{})) *CapacityResult {
	res := &CapacityResult{SLOP99MS: sloMS, MaxSessions: 0}
	meets := func(ep Epoch) bool {
		if ep.Completed == 0 {
			return false
		}
		failRate := float64(ep.Errors) / float64(ep.Completed+ep.Errors)
		return ep.VerdictP99MS <= sloMS && failRate < 0.01
	}
	probe := func(n int) Epoch {
		ep := g.runClosedLoop(n, epoch)
		res.Probes = append(res.Probes, ep)
		logf("probe %3d clients: %6.1f sessions/s, p99 %7.1fms (SLO %.0fms) errors=%d degraded=%d",
			n, ep.SessionsPerSec, ep.VerdictP99MS, sloMS, ep.Errors, ep.Degraded)
		return ep
	}

	var best Epoch
	lo, hi := 0, 0
	for n := 1; n <= 4096; n *= 2 {
		ep := probe(n)
		if meets(ep) {
			lo = n
			best = ep
		} else {
			hi = n
			break
		}
	}
	if lo == 0 {
		return res // SLO unreachable even at 1 client
	}
	if hi == 0 {
		hi = 8192 // never broke within the doubling range
	}
	for hi-lo > 1 && hi-lo > lo/8 { // stop at ~12% resolution
		mid := (lo + hi) / 2
		ep := probe(mid)
		if meets(ep) {
			lo = mid
			best = ep
		} else {
			hi = mid
		}
	}
	res.MaxSessions = lo
	res.SessionsPerSec = best.SessionsPerSec
	res.SessionsPerCoreSec = best.SessionsPerSec / float64(runtime.GOMAXPROCS(0))
	res.P99AtCapacityMS = best.VerdictP99MS
	return res
}

// ---------------------------------------------------------------------
// Reporting

// RunConfig echoes the workload parameters into the report.
type RunConfig struct {
	Target         string  `json:"target,omitempty"`
	Synth          string  `json:"synth"`
	Proto          string  `json:"proto"`
	AttackFraction float64 `json:"attack_fraction"`
	SessionSeconds float64 `json:"session_seconds"`
	Duty           float64 `json:"duty,omitempty"`
	Cascade        bool    `json:"cascade,omitempty"`
	SLOP99MS       float64 `json:"slo_p99_ms"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
}

// Report is the loadgen output.
type Report struct {
	Config        RunConfig              `json:"config"`
	Epochs        []Epoch                `json:"epochs,omitempty"`
	Capacity      *CapacityResult        `json:"capacity,omitempty"`
	ServerMetrics map[string]interface{} `json:"server_metrics,omitempty"`
	// Recorder summarizes the in-process server's flight recorder after
	// the run: how many sessions completed, aborted, were rejected, and
	// how many were retained as notable exemplars.
	Recorder *trace.Stats `json:"recorder,omitempty"`
}

func renderText(w io.Writer, r *Report) {
	fmt.Fprintf(w, "loadgen report (%s payloads, %s wire, %.0f%% attack, %.1fs sessions)\n",
		r.Config.Synth, r.Config.Proto, 100*r.Config.AttackFraction, r.Config.SessionSeconds)
	for _, ep := range r.Epochs {
		printEpoch(w, ep)
	}
	if c := r.Capacity; c != nil {
		fmt.Fprintf(w, "capacity search (p99 SLO %.0f ms):\n", c.SLOP99MS)
		for _, ep := range c.Probes {
			printEpoch(w, ep)
		}
		if c.MaxSessions == 0 {
			fmt.Fprintf(w, "  SLO not met at any probed concurrency\n")
		} else {
			fmt.Fprintf(w, "  => capacity: %d concurrent sessions, %.1f sessions/s (%.1f per core), p99 %.1f ms\n",
				c.MaxSessions, c.SessionsPerSec, c.SessionsPerCoreSec, c.P99AtCapacityMS)
		}
	}
	if r.Recorder != nil {
		fmt.Fprintf(w, "flight recorder: %d completed, %d aborted, %d rejected; %d exemplars retained (%d notable)\n",
			r.Recorder.Completed, r.Recorder.Aborted, r.Recorder.Rejected, r.Recorder.Retained, r.Recorder.Notable)
	}
	if len(r.ServerMetrics) > 0 {
		keys := make([]string, 0, len(r.ServerMetrics))
		for k := range r.ServerMetrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "server metrics:\n")
		for _, k := range keys {
			b, _ := json.Marshal(r.ServerMetrics[k])
			fmt.Fprintf(w, "  %-42s %s\n", k, b)
		}
	}
}

func printEpoch(w io.Writer, ep Epoch) {
	head := fmt.Sprintf("closed x%d", ep.Concurrency)
	if ep.Mode == "open" {
		head = fmt.Sprintf("open %.1f/s", ep.ArrivalRate)
	}
	shed := ""
	if ep.Shed > 0 {
		shed = fmt.Sprintf(" shed=%d", ep.Shed)
	}
	if ep.DialRetries > 0 {
		shed += fmt.Sprintf(" redial=%d", ep.DialRetries)
	}
	fmt.Fprintf(w, "  %-12s %6.1fs: %5d ok (%6.1f/s) err=%d rej=%d%s degraded=%d misclass=%d | verdict p50 %.1f p95 %.1f p99 %.1f max %.1f ms\n",
		head, ep.DurationS, ep.Completed, ep.SessionsPerSec, ep.Errors, ep.Rejected, shed, ep.Degraded,
		ep.Misclassified, ep.VerdictP50MS, ep.VerdictP95MS, ep.VerdictP99MS, ep.VerdictMaxMS)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
	os.Exit(1)
}
