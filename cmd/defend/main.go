// Command defend classifies recordings (WAV files) as legitimate voice
// commands or ultrasound-injected ones, using the non-linearity trace
// features and a detector trained on a freshly simulated corpus.
//
// Files are decoded and analysed incrementally (audio.WAVReader feeding
// stream.Analyzer), so arbitrarily long recordings are classified in
// bounded memory; -batch switches to the original whole-file extractor
// (defense.Extract), whose features the streaming path reproduces
// within the tolerance documented in internal/stream.
//
// Usage:
//
//	defend recording.wav [more.wav ...]
//	defend -detector threshold recording.wav
//	defend -features-only recording.wav
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"inaudible"
	"inaudible/internal/audio"
	"inaudible/internal/defense"
	"inaudible/internal/experiment"
	"inaudible/internal/stream"
)

func main() {
	var (
		featuresOnly = flag.Bool("features-only", false, "print features without classifying")
		detector     = flag.String("detector", "svm", "detector kind: "+strings.Join(experiment.DetectorKinds(), ", "))
		batch        = flag.Bool("batch", false, "buffer whole files and use the batch extractor")
		seed         = flag.Int64("seed", 1, "corpus seed")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: defend [-features-only] [-detector kind] [-batch] file.wav ...")
		os.Exit(2)
	}

	var det defense.Detector
	if !*featuresOnly {
		fmt.Fprintf(os.Stderr, "defend: training %s detector on simulated corpus (one-time, ~minutes)...\n", *detector)
		var err error
		det, err = inaudible.TrainDetector(*detector, *seed, false)
		if err != nil {
			fatal("training: %v", err)
		}
	}

	for _, path := range flag.Args() {
		f, err := extract(path, *batch)
		if err != nil {
			fatal("%v", err)
		}
		if *featuresOnly {
			fmt.Printf("%s: %v\n", path, f)
			continue
		}
		score := det.Score(f.Vector())
		verdict := "LEGITIMATE"
		if det.Predict(f.Vector()) {
			verdict = "ATTACK"
		}
		fmt.Printf("%s: %s (score %+.2f)  %v\n", path, verdict, score, f)
	}
}

// extract computes the recording's features, streaming by default.
func extract(path string, batch bool) (defense.Features, error) {
	if batch {
		sig, err := audio.ReadWAVFile(path)
		if err != nil {
			return defense.Features{}, fmt.Errorf("reading %s: %w", path, err)
		}
		return defense.Extract(sig), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return defense.Features{}, fmt.Errorf("opening %s: %w", path, err)
	}
	defer f.Close()
	wr, err := audio.NewWAVReader(f)
	if err != nil {
		return defense.Features{}, fmt.Errorf("decoding %s: %w", path, err)
	}
	an := stream.NewAnalyzer(stream.AnalyzerConfig{Rate: wr.Rate()})
	buf := make([]float64, 4096)
	for {
		n, err := wr.Read(buf)
		if n > 0 {
			an.Push(buf[:n])
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return defense.Features{}, fmt.Errorf("reading %s: %w", path, err)
		}
	}
	return an.Finalize(), nil
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "defend: "+format+"\n", args...)
	os.Exit(1)
}
