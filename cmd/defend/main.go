// Command defend classifies a recording (WAV file) as a legitimate voice
// command or an ultrasound-injected one, using the non-linearity trace
// features and a classifier trained on a freshly simulated corpus.
//
// Usage:
//
//	defend recording.wav [more.wav ...]
//	defend -features-only recording.wav
package main

import (
	"flag"
	"fmt"
	"os"

	"inaudible/internal/core"
	"inaudible/internal/defense"
	"inaudible/internal/experiment"

	"inaudible/internal/audio"
)

func main() {
	var (
		featuresOnly = flag.Bool("features-only", false, "print features without classifying")
		seed         = flag.Int64("seed", 1, "corpus seed")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: defend [-features-only] file.wav ...")
		os.Exit(2)
	}

	var svm *defense.LinearSVM
	if !*featuresOnly {
		fmt.Fprintln(os.Stderr, "defend: training detector on simulated corpus (one-time, ~minutes)...")
		sc := core.DefaultScenario()
		sc.Seed = *seed
		cfg := experiment.DefaultCorpusConfig(sc)
		legit, err := experiment.BuildLegit(cfg)
		if err != nil {
			fatal("building corpus: %v", err)
		}
		attacks, err := experiment.BuildAttacks(cfg)
		if err != nil {
			fatal("building corpus: %v", err)
		}
		var samples []defense.Sample
		for _, r := range append(legit, attacks...) {
			samples = append(samples, defense.Sample{
				X:      defense.Extract(r.Signal).Vector(),
				Attack: r.Attack,
			})
		}
		svm, err = defense.TrainSVM(samples, 0.01, 60, *seed)
		if err != nil {
			fatal("training: %v", err)
		}
	}

	for _, path := range flag.Args() {
		sig, err := audio.ReadWAVFile(path)
		if err != nil {
			fatal("reading %s: %v", path, err)
		}
		f := defense.Extract(sig)
		if *featuresOnly {
			fmt.Printf("%s: %v\n", path, f)
			continue
		}
		score := svm.Score(f.Vector())
		verdict := "LEGITIMATE"
		if score > 0 {
			verdict = "ATTACK"
		}
		fmt.Printf("%s: %s (margin %+.2f)  %v\n", path, verdict, score, f)
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "defend: "+format+"\n", args...)
	os.Exit(1)
}
