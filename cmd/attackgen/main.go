// Command attackgen synthesises a voice command and converts it into
// inaudible attack waveforms, written as WAV files: the single-speaker
// baseline waveform and, optionally, the per-element drives of the
// long-range multi-speaker plan.
//
// Usage:
//
//	attackgen -command photo -out attack.wav
//	attackgen -command milk -longrange -segments 60 -outdir plan/
//	attackgen -text "alexa, play music" -carrier 32000 -out atk.wav
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"inaudible/internal/attack"
	"inaudible/internal/audio"
	"inaudible/internal/voice"
)

func main() {
	var (
		cmdID     = flag.String("command", "photo", "vocabulary command id (see -listcmds)")
		text      = flag.String("text", "", "free text to synthesise instead of -command (lexicon words only)")
		carrier   = flag.Float64("carrier", 30000, "carrier frequency, Hz")
		depth     = flag.Float64("depth", 0.8, "AM modulation depth (baseline)")
		rate      = flag.Float64("rate", 192000, "output sample rate, Hz")
		longrange = flag.Bool("longrange", false, "emit the multi-speaker plan instead of the baseline waveform")
		segments  = flag.Int("segments", 60, "spectrum slices for -longrange")
		power     = flag.Float64("power", 20, "total power (W) for the long-range power split")
		out       = flag.String("out", "attack.wav", "output WAV (baseline)")
		outdir    = flag.String("outdir", "plan", "output directory (long-range)")
		listCmds  = flag.Bool("listcmds", false, "list the command vocabulary")
		voiceName = flag.String("voice", "male-1", "talker profile name")
	)
	flag.Parse()

	if *listCmds {
		for _, c := range voice.Vocabulary() {
			fmt.Printf("%-10s %q\n", c.ID, c.Text)
		}
		return
	}

	profile := voice.DefaultVoice()
	for _, p := range voice.Profiles() {
		if p.Name == *voiceName {
			profile = p
		}
	}

	cmdText := *text
	if cmdText == "" {
		c, ok := voice.FindCommand(*cmdID)
		if !ok {
			fatal("unknown command id %q (try -listcmds)", *cmdID)
		}
		cmdText = c.Text
	}
	sig, err := voice.Synthesize(cmdText, profile, 48000)
	if err != nil {
		fatal("synthesis: %v", err)
	}

	if !*longrange {
		o := attack.DefaultBaselineOptions()
		o.CarrierHz = *carrier
		o.Depth = *depth
		o.Rate = *rate
		atk, err := attack.Baseline(sig, o)
		if err != nil {
			fatal("attack design: %v", err)
		}
		if err := audio.WriteWAVFile(*out, atk); err != nil {
			fatal("writing %s: %v", *out, err)
		}
		fmt.Printf("wrote %s: %v, spectrum %g-%g Hz\n",
			*out, atk, o.CarrierHz-o.LowPassHz, o.CarrierHz+o.LowPassHz)
		return
	}

	o := attack.DefaultLongRangeOptions()
	o.CarrierHz = *carrier
	o.Rate = *rate
	o.NumSegments = *segments
	plan, err := attack.LongRange(sig, *power, o)
	if err != nil {
		fatal("long-range plan: %v", err)
	}
	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		fatal("mkdir: %v", err)
	}
	written := 0
	for i, seg := range plan.Segments {
		if seg == nil {
			continue
		}
		path := filepath.Join(*outdir, fmt.Sprintf("segment_%03d.wav", i))
		norm := seg.Clone().Normalize(0.9)
		if err := audio.WriteWAVFile(path, norm); err != nil {
			fatal("writing %s: %v", path, err)
		}
		written++
	}
	carrierPath := filepath.Join(*outdir, "carrier.wav")
	if err := audio.WriteWAVFile(carrierPath, plan.Carrier.Clone().Normalize(0.9)); err != nil {
		fatal("writing %s: %v", carrierPath, err)
	}
	fmt.Printf("wrote %d segment drives + carrier to %s (slice width %.1f Hz, carrier %.1f W of %.1f W)\n",
		written, *outdir, o.SliceWidthHz(), plan.CarrierPowerW, plan.TotalPowerW())
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "attackgen: "+format+"\n", args...)
	os.Exit(1)
}
