// Command simulate runs one end-to-end attack through the full physical
// chain — attack design, speaker(s), air, victim microphone — and reports
// what the voice assistant heard, whether it acted, and whether a
// bystander would have noticed.
//
// With -spec, the scenario comes from a declarative JSON file instead of
// flags: the compiled streaming chain (multipath room, moving source,
// power schedule, multiple mic taps) runs end to end into the streaming
// defense guard and prints its verdicts.
//
// Usage:
//
//	simulate -command photo -kind baseline -power 18.7 -distance 3
//	simulate -command milk -device echo -kind longrange -power 300 -distance 7.6
//	simulate -spec examples/specs/longrange_room.json
//	simulate -spec examples/specs/baseline_driveby.json -train
package main

import (
	"flag"
	"fmt"
	"os"

	"inaudible"
	"inaudible/internal/audio"
	"inaudible/internal/core"
	"inaudible/internal/defense"
	"inaudible/internal/mic"
	"inaudible/internal/voice"
)

func main() {
	var (
		cmdID    = flag.String("command", "photo", "vocabulary command id")
		kind     = flag.String("kind", "baseline", "attack kind: baseline | longrange")
		device   = flag.String("device", "phone", "victim device: phone | echo | reference")
		power    = flag.Float64("power", 18.7, "electrical power, W (total for longrange)")
		distance = flag.Float64("distance", 3, "attacker-to-device distance, m")
		ambient  = flag.Float64("ambient", 40, "room noise, dB SPL")
		seed     = flag.Int64("seed", 1, "noise seed")
		saveWAV  = flag.String("save", "", "save the victim recording to this WAV path")
		specPath = flag.String("spec", "", "run a declarative JSON scenario through the streaming chain + guard")
		train    = flag.Bool("train", false, "with -spec: train a threshold detector on a quick corpus instead of the demo thresholds")
	)
	flag.Parse()

	if *specPath != "" {
		runSpec(*specPath, *train)
		return
	}

	cmd, ok := voice.FindCommand(*cmdID)
	if !ok {
		fatal("unknown command %q", *cmdID)
	}
	sig := voice.MustSynthesize(cmd.Text, voice.DefaultVoice(), 48000)

	s := core.DefaultScenario()
	s.AmbientSPL = *ambient
	s.Seed = *seed
	switch *device {
	case "phone":
		s.Device = mic.AndroidPhone()
	case "echo":
		s.Device = mic.AmazonEcho()
	case "reference":
		s.Device = mic.ReferenceMic()
	default:
		fatal("unknown device %q", *device)
	}

	var k core.AttackKind
	switch *kind {
	case "baseline":
		k = core.KindBaseline
	case "longrange":
		k = core.KindLongRange
	default:
		fatal("unknown kind %q", *kind)
	}

	fmt.Printf("command: %q  device: %s  attack: %s  power: %.1f W  distance: %.2f m\n",
		cmd.Text, s.Device.Name, k, *power, *distance)
	e, run, err := s.Simulate(sig, k, *power, *distance, 1)
	if err != nil {
		fatal("%v", err)
	}

	fmt.Printf("attacker rig: %d element(s), %.1f W total\n", e.Elements, e.TotalPowerW)
	fmt.Printf("bystander @ %.1f m: leakage %.1f dB SPL(A), audible=%v (margin %+.1f dB)\n",
		s.BystanderDistance, e.LeakageSPL, e.LeakageAudible, e.LeakageMargin)
	fmt.Printf("at device: %.1f dB SPL, recording RMS %.5f\n", run.SPLAtDevice, run.Recording.RMS())

	rec := core.NewRecognizer(voice.DefaultVoice())
	res := rec.Recognize(run.Recording)
	fmt.Printf("ASR: best=%q distance=%.2f accepted=%v (runner-up %q at %.2f)\n",
		res.CommandID, res.Distance, res.Accepted, res.Runner, res.RunnerUp)
	fmt.Printf("injection success: %v\n", res.Accepted && res.CommandID == cmd.ID)
	wacc := rec.WordAccuracy(run.Recording, cmd.ID)
	fmt.Printf("word accuracy: %.2f\n", wacc)

	f := defense.Extract(run.Recording)
	fmt.Printf("defense features: %v\n", f)

	if *saveWAV != "" {
		norm := run.Recording.Clone().Normalize(0.9)
		if err := audio.WriteWAVFile(*saveWAV, norm); err != nil {
			fatal("saving %s: %v", *saveWAV, err)
		}
		fmt.Printf("recording saved to %s\n", *saveWAV)
	}
}

// runSpec executes a declarative scenario: the compiled streaming chain
// pipes the simulated attack straight into one guard session per capture
// tap, printing interim verdicts live and the final verdicts at the end.
func runSpec(path string, train bool) {
	sp, err := inaudible.LoadSimSpec(path)
	if err != nil {
		fatal("%v", err)
	}
	var det inaudible.Detector = defense.DemoThresholds()
	if train {
		fmt.Println("training a threshold detector on a quick simulated corpus...")
		det, err = inaudible.TrainDetector("threshold", 1, true)
		if err != nil {
			fatal("training detector: %v", err)
		}
	}
	s, err := sp.Build(det)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("spec: %s (%q)\n", sp.Name, sp.Text)
	s.RunVerbose(os.Stdout)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "simulate: "+format+"\n", args...)
	os.Exit(1)
}
