package inaudible_test

// The benchmark harness regenerates every experiment table/figure series
// (E1-E13, DESIGN.md §4) under the testing.B clock, plus micro-benchmarks
// for the hot signal-processing kernels. Experiment benches run the Quick
// grids; run `go run ./cmd/experiments -all` for the full-size tables.

import (
	"io"
	"testing"

	"inaudible"
	"inaudible/internal/attack"
	"inaudible/internal/audio"
	"inaudible/internal/core"
	"inaudible/internal/defense"
	"inaudible/internal/dsp"
	"inaudible/internal/experiment"
	"inaudible/internal/mic"
	"inaudible/internal/speaker"
	"inaudible/internal/stream"
	"inaudible/internal/voice"
)

// benchSuite is shared across the experiment benchmarks so the expensive
// fixtures (recogniser templates, defense corpus) are built once, exactly
// as `cmd/experiments -all` amortises them. The first benchmark touching
// a fixture pays its construction cost.
var benchSuite = experiment.NewSuite(experiment.Options{Quick: true, Seed: 1})

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := benchSuite.Run(id, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1DemoPipeline(b *testing.B)       { benchExperiment(b, "E1") }
func BenchmarkE2LeakageVsPower(b *testing.B)     { benchExperiment(b, "E2") }
func BenchmarkE3LeakageVsSpeakers(b *testing.B)  { benchExperiment(b, "E3") }
func BenchmarkE4AccuracyVsDistance(b *testing.B) { benchExperiment(b, "E4") }
func BenchmarkE5SuccessVsDistance(b *testing.B)  { benchExperiment(b, "E5") }
func BenchmarkE6RangeVsPower(b *testing.B)       { benchExperiment(b, "E6") }
func BenchmarkE7FixedRangeSuccess(b *testing.B)  { benchExperiment(b, "E7") }
func BenchmarkE8Ablation(b *testing.B)           { benchExperiment(b, "E8") }
func BenchmarkE9Sub50Power(b *testing.B)         { benchExperiment(b, "E9") }
func BenchmarkE10Correlation(b *testing.B)       { benchExperiment(b, "E10") }
func BenchmarkE11Classifier(b *testing.B)        { benchExperiment(b, "E11") }
func BenchmarkE12Robustness(b *testing.B)        { benchExperiment(b, "E12") }
func BenchmarkE13Adaptive(b *testing.B)          { benchExperiment(b, "E13") }

// ---- pipeline-stage benchmarks ----

func BenchmarkVoiceSynthesis(b *testing.B) {
	p := voice.DefaultVoice()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		voice.MustSynthesize("ok google, take a picture", p, 48000)
	}
}

func BenchmarkBaselineAttackDesign(b *testing.B) {
	cmd := inaudible.MustSynthesize("ok google, take a picture")
	o := attack.DefaultBaselineOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := attack.Baseline(cmd, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLongRangePlanDesign(b *testing.B) {
	cmd := inaudible.MustSynthesize("ok google, take a picture")
	o := attack.DefaultLongRangeOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := attack.LongRange(cmd, 20, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpeakerEmit(b *testing.B) {
	cmd := inaudible.MustSynthesize("alexa, play music")
	atk, err := attack.Baseline(cmd, attack.DefaultBaselineOptions())
	if err != nil {
		b.Fatal(err)
	}
	sp := speaker.FostexTweeter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Emit(atk, 18.7)
	}
}

func BenchmarkMicRecord(b *testing.B) {
	cmd := inaudible.MustSynthesize("alexa, play music")
	atk, err := attack.Baseline(cmd, attack.DefaultBaselineOptions())
	if err != nil {
		b.Fatal(err)
	}
	field := speaker.FostexTweeter().Emit(atk, 18.7)
	dev := mic.AndroidPhone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev.Record(field, nil)
	}
}

func BenchmarkEndToEndDelivery(b *testing.B) {
	cmd := inaudible.MustSynthesize("alexa, play music")
	s := core.DefaultScenario()
	e, _, err := s.Simulate(cmd, core.KindBaseline, 18.7, 3, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Deliver(e, 3, int64(i))
	}
}

func BenchmarkDefenseExtract(b *testing.B) {
	cmd := inaudible.MustSynthesize("alexa, play music")
	s := core.DefaultScenario()
	_, run, err := s.Simulate(cmd, core.KindBaseline, 18.7, 3, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		defense.Extract(run.Recording)
	}
}

// ---- streaming guard benchmarks ----

// benchGuardDetector is a hand-calibrated threshold detector so the
// guard benchmarks measure the streaming pipeline, not corpus training.
func benchGuardDetector() defense.Detector {
	return &defense.ThresholdDetector{
		Thresholds: []float64{-1.5, -2.5, 0.5, -2.0, -3.0},
		AttackHigh: []bool{true, true, true, true, true},
		Valid:      []bool{true, true, true, true, true},
	}
}

// BenchmarkStreamGuard measures the guard's steady-state hop loop:
// 20 ms frames through VAD + streaming analyzer + band tracker. The
// acceptance target is 0 allocs/op (one op = one frame) and the
// frames/sec metric is the per-core session throughput (x50 real time
// per 20 ms frame at 48 kHz means 1 core sustains ~50 live sessions).
func BenchmarkStreamGuard(b *testing.B) {
	const rate = 48000.0
	g := stream.NewGuard(stream.GuardConfig{Rate: rate, Detector: benchGuardDetector()})
	frame := inaudible.MustSynthesize("alexa, play music").Samples[:g.FrameSamples()]
	for i := 0; i < 200; i++ { // warm all chain stagings to steady state
		g.Push(frame)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Push(frame)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/sec")
	secPerFrame := float64(len(frame)) / rate
	b.ReportMetric(secPerFrame*float64(b.N)/b.Elapsed().Seconds(), "x-realtime")
}

// BenchmarkStreamAnalyzerFinalize measures the end-of-session cost
// (chain flush + feature assembly + lag-searched correlation).
func BenchmarkStreamAnalyzerFinalize(b *testing.B) {
	const rate = 48000.0
	sig := inaudible.MustSynthesize("alexa, play music")
	a := stream.NewAnalyzer(stream.AnalyzerConfig{Rate: rate})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Push(sig.Samples)
		a.Finalize()
		b.StopTimer()
		a.Reset()
		b.StartTimer()
	}
}

// BenchmarkStreamFIRPush isolates the overlap-save convolution hop.
func BenchmarkStreamFIRPush(b *testing.B) {
	f := dsp.BandPassFIR(4095, 0.0003, 0.00125)
	s := dsp.NewStreamFIR(f, 8192)
	frame := audio.Tone(48000, 1000, 0.5, 0.02).Samples
	for i := 0; i < 64; i++ {
		s.Push(frame)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Push(frame)
	}
}

// ---- kernel micro-benchmarks ----

func BenchmarkFFT4096(b *testing.B) {
	x := make([]complex128, 4096)
	for i := range x {
		x[i] = complex(float64(i%17)-8, 0)
	}
	buf := make([]complex128, len(x))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		dsp.FFT(buf)
	}
}

func BenchmarkFFT524288(b *testing.B) {
	x := make([]complex128, 1<<19)
	for i := range x {
		x[i] = complex(float64(i%31)-15, 0)
	}
	buf := make([]complex128, len(x))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		dsp.FFT(buf)
	}
}

func BenchmarkFIRApply(b *testing.B) {
	lp := dsp.LowPassFIR(511, 0.1)
	x := audio.Tone(192000, 5000, 1, 1).Samples
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lp.Apply(x)
	}
}

func BenchmarkResample48to192(b *testing.B) {
	x := audio.Tone(48000, 5000, 1, 1).Samples
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsp.Resample(x, 48000, 192000)
	}
}

func BenchmarkWelchPSD(b *testing.B) {
	x := audio.Tone(48000, 1000, 1, 2).Samples
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsp.Welch(x, 8192)
	}
}

func BenchmarkMFCC(b *testing.B) {
	sig := inaudible.MustSynthesize("alexa, play music")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchMFCC(sig)
	}
}

func benchMFCC(sig *audio.Signal) int {
	f := asrMFCC(sig)
	return len(f)
}
