module inaudible

go 1.22
