// Package asr is the speech-recognition substrate standing in for the
// paper's Google/Alexa recognisers: an MFCC front-end with cepstral mean
// normalisation and a DTW template matcher over the closed command
// vocabulary. Attack success in every experiment is defined through this
// package: the attack works iff the demodulated recording is recognised
// as the intended command.
package asr

import (
	"math"

	"inaudible/internal/audio"
	"inaudible/internal/dsp"
)

// Feature extraction parameters (fixed across the repository so templates
// and probes are always comparable).
const (
	// FeatureRate is the canonical analysis sample rate; inputs are
	// resampled to it first.
	FeatureRate = 16000.0
	frameLen    = 400 // 25 ms at 16 kHz
	frameHop    = 160 // 10 ms at 16 kHz
	fftSize     = 512
	numFilters  = 26
	// NumCoeffs is the number of cepstral coefficients per frame (c1..c13).
	NumCoeffs = 13
	melLowHz  = 60.0
	melHighHz = 7600.0
)

// MFCC computes the cepstral feature matrix (frames x NumCoeffs) of a
// signal, with pre-emphasis, Hann windowing, a mel filter bank, log
// compression, DCT-II and cepstral mean normalisation. Signals shorter
// than one frame yield nil.
func MFCC(s *audio.Signal) [][]float64 {
	x := s.Samples
	if s.Rate != FeatureRate {
		x = dsp.Resample(s.Samples, s.Rate, FeatureRate)
	}
	if len(x) < frameLen {
		return nil
	}
	// Pre-emphasis boosts formant-carrying high frequencies.
	pre := make([]float64, len(x))
	pre[0] = x[0]
	for i := 1; i < len(x); i++ {
		pre[i] = x[i] - 0.97*x[i-1]
	}

	bank := melBank()
	win := dsp.Hann(frameLen)
	nFrames := 1 + (len(pre)-frameLen)/frameHop
	mel := make([][]float64, nFrames)
	buf := make([]complex128, fftSize)
	maxE := 0.0
	for f := 0; f < nFrames; f++ {
		off := f * frameHop
		for i := 0; i < fftSize; i++ {
			if i < frameLen {
				buf[i] = complex(pre[off+i]*win[i], 0)
			} else {
				buf[i] = 0
			}
		}
		dsp.FFT(buf)
		power := make([]float64, fftSize/2+1)
		for k := range power {
			re, im := real(buf[k]), imag(buf[k])
			power[k] = re*re + im*im
		}
		row := make([]float64, numFilters)
		for m, filt := range bank {
			var e float64
			for _, tap := range filt {
				e += power[tap.bin] * tap.w
			}
			row[m] = e
			if e > maxE {
				maxE = e
			}
		}
		mel[f] = row
	}
	// Dynamic-range flooring: energies more than dynamicRangeDB below the
	// utterance's loudest mel energy are compressed to a common floor.
	// This keeps silence/closure frames and low-level ambient noise from
	// dominating the cepstral distance — the robustness a commercial
	// recogniser gets from training data, expressed as a front-end prior.
	floor := maxE * math.Pow(10, -dynamicRangeDB/10)
	if floor <= 0 {
		floor = 1e-12
	}
	feats := make([][]float64, nFrames)
	for f, row := range mel {
		logMel := make([]float64, numFilters)
		for m, e := range row {
			logMel[m] = math.Log(e + floor)
		}
		feats[f] = dct2(logMel, NumCoeffs)
	}
	cepstralMeanNormalize(feats)
	return feats
}

// dynamicRangeDB is the mel-energy dynamic range kept below the utterance
// peak before log compression.
const dynamicRangeDB = 45.0

// melTap is one weighted FFT bin of a mel filter.
type melTap struct {
	bin int
	w   float64
}

func hzToMel(f float64) float64 { return 2595 * math.Log10(1+f/700) }
func melToHz(m float64) float64 { return 700 * (math.Pow(10, m/2595) - 1) }

// melBank builds the triangular mel filter bank as sparse bin/weight
// lists.
func melBank() [][]melTap {
	lo, hi := hzToMel(melLowHz), hzToMel(melHighHz)
	centers := make([]float64, numFilters+2)
	for i := range centers {
		centers[i] = melToHz(lo + (hi-lo)*float64(i)/float64(numFilters+1))
	}
	binHz := FeatureRate / fftSize
	bank := make([][]melTap, numFilters)
	for m := 0; m < numFilters; m++ {
		fl, fc, fr := centers[m], centers[m+1], centers[m+2]
		var taps []melTap
		for k := 0; k <= fftSize/2; k++ {
			f := float64(k) * binHz
			var w float64
			switch {
			case f <= fl || f >= fr:
				continue
			case f <= fc:
				w = (f - fl) / (fc - fl)
			default:
				w = (fr - f) / (fr - fc)
			}
			if w > 0 {
				taps = append(taps, melTap{bin: k, w: w})
			}
		}
		bank[m] = taps
	}
	return bank
}

// dct2 computes the first n coefficients (skipping c0) of the DCT-II of x.
func dct2(x []float64, n int) []float64 {
	out := make([]float64, n)
	den := float64(len(x))
	for k := 1; k <= n; k++ {
		var s float64
		for i, v := range x {
			s += v * math.Cos(math.Pi*float64(k)*(float64(i)+0.5)/den)
		}
		out[k-1] = s * math.Sqrt(2/den)
	}
	return out
}

// cepstralMeanNormalize subtracts each coefficient's temporal mean,
// removing convolutional channel effects (spectral tilt through speakers,
// air and the demodulating microphone).
func cepstralMeanNormalize(feats [][]float64) {
	if len(feats) == 0 {
		return
	}
	mean := make([]float64, len(feats[0]))
	for _, f := range feats {
		for i, v := range f {
			mean[i] += v
		}
	}
	for i := range mean {
		mean[i] /= float64(len(feats))
	}
	for _, f := range feats {
		for i := range f {
			f[i] -= mean[i]
		}
	}
}
