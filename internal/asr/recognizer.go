package asr

import (
	"fmt"
	"math"
	"sort"

	"inaudible/internal/audio"
	"inaudible/internal/voice"
)

// Augmenter transforms a clean template utterance into an additional
// enrolment variant — the stand-in for the channel diversity a commercial
// recogniser's training data provides. The paper's victim assistants
// (Google, Alexa) recognise demodulated commands because they are robust
// to channel distortion; passing an ideal-demodulation augmenter (see
// package core) reproduces that robustness in this template matcher.
type Augmenter func(*audio.Signal) *audio.Signal

// Recognizer is a template-based command recogniser over the closed
// vocabulary, plus keyword spotting for wake words and per-word scoring.
// Build one with NewRecognizer; it is safe for concurrent reads.
type Recognizer struct {
	// AcceptThreshold is the maximum path-normalised DTW distance at
	// which a command is accepted (the assistant "acts"). Calibrated so
	// clean same-voice recordings score far below it and cross-command
	// confusions score above it.
	AcceptThreshold float64
	// WordThreshold is the keyword-spotting acceptance distance.
	WordThreshold float64

	commands []voice.Command
	features map[string][][][]float64            // command id -> template variants
	words    map[string]map[string][][][]float64 // command id -> word -> variants
	wakes    map[string][][][]float64            // wake phrase -> variants
}

// Result is one recognition outcome.
type Result struct {
	CommandID string  // best-matching vocabulary entry ("" if rejected)
	Distance  float64 // its path-normalised DTW distance
	Accepted  bool    // Distance <= AcceptThreshold
	Runner    string  // second-best command id (diagnostics)
	RunnerUp  float64 // second-best distance
}

// NewRecognizer builds templates by synthesising the vocabulary with the
// given talker profile — the enrolled "assistant" voice model. Each
// augmenter contributes one extra template variant per utterance.
func NewRecognizer(vocab []voice.Command, p voice.Profile, augmenters ...Augmenter) *Recognizer {
	r := &Recognizer{
		// Calibrated on the synthetic vocabulary: clean correct commands
		// score ~0, the nearest wrong command ~2.1, broadband noise ~4.8.
		AcceptThreshold: 2.0,
		// Calibrated against range degradation: words in a close-range
		// demodulated recording score ~3.6-5.4 and drift past ~6-8 as the
		// recording degrades with distance.
		WordThreshold: 5.5,
		commands:      vocab,
		features:      make(map[string][][][]float64),
		words:         make(map[string]map[string][][][]float64),
		wakes:         make(map[string][][][]float64),
	}
	variants := func(sig *audio.Signal) [][][]float64 {
		out := [][][]float64{MFCC(voice.TrimSilence(sig, 35))}
		for _, aug := range augmenters {
			v := aug(sig.Clone())
			if v != nil && v.Len() > 0 {
				out = append(out, MFCC(voice.TrimSilence(v, 35)))
			}
		}
		return out
	}
	for _, c := range vocab {
		clean := voice.MustSynthesize(c.Text, p, 48000)
		r.features[c.ID] = variants(clean)
		r.words[c.ID] = make(map[string][][][]float64)
		for _, w := range c.Words() {
			ws := voice.MustSynthesize(w, p, 48000)
			r.words[c.ID][w] = variants(ws)
		}
		if _, ok := r.wakes[c.Wake]; !ok {
			wk := voice.MustSynthesize(c.Wake, p, 48000)
			r.wakes[c.Wake] = variants(wk)
		}
	}
	return r
}

// Commands returns the vocabulary the recogniser was built over.
func (r *Recognizer) Commands() []voice.Command { return r.commands }

// minDTW returns the smallest DTW distance between probe and any variant.
func minDTW(probe [][]float64, variants [][][]float64) float64 {
	best := math.Inf(1)
	for _, v := range variants {
		if d := DTW(probe, v); d < best {
			best = d
		}
	}
	return best
}

// minSubsequence returns the smallest subsequence-DTW distance between any
// variant (as query) and the probe (as reference).
func minSubsequence(variants [][][]float64, probe [][]float64) float64 {
	best := math.Inf(1)
	for _, v := range variants {
		if d, _ := SubsequenceDTW(v, probe); d < best {
			best = d
		}
	}
	return best
}

// Recognize classifies a recording against the vocabulary.
func (r *Recognizer) Recognize(rec *audio.Signal) Result {
	probe := MFCC(voice.TrimSilence(rec, 30))
	if len(probe) == 0 {
		return Result{Distance: math.Inf(1)}
	}
	type scored struct {
		id string
		d  float64
	}
	var all []scored
	for id, vars := range r.features {
		all = append(all, scored{id, minDTW(probe, vars)})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
	res := Result{CommandID: all[0].id, Distance: all[0].d}
	if len(all) > 1 {
		res.Runner, res.RunnerUp = all[1].id, all[1].d
	}
	res.Accepted = res.Distance <= r.AcceptThreshold
	if !res.Accepted {
		res.CommandID = ""
	}
	return res
}

// InjectionSuccess reports whether a recording achieves the attacker's
// goal for the given command: recognised as exactly that command and
// accepted.
func (r *Recognizer) InjectionSuccess(rec *audio.Signal, want string) bool {
	res := r.Recognize(rec)
	return res.Accepted && res.CommandID == want
}

// WakeDetected reports whether the wake phrase is spotted anywhere in the
// recording (subsequence DTW under WordThreshold).
func (r *Recognizer) WakeDetected(rec *audio.Signal, wake string) (bool, error) {
	vars, ok := r.wakes[wake]
	if !ok {
		return false, fmt.Errorf("asr: unknown wake phrase %q", wake)
	}
	probe := MFCC(voice.TrimSilence(rec, 30))
	if len(probe) == 0 {
		return false, nil
	}
	return minSubsequence(vars, probe) <= r.WordThreshold, nil
}

// WordAccuracy spots each word of the command in the recording and
// returns the recognised fraction in [0, 1] — the paper's
// word-recognition-accuracy metric for the range experiments.
func (r *Recognizer) WordAccuracy(rec *audio.Signal, commandID string) float64 {
	tmpls, ok := r.words[commandID]
	if !ok || len(tmpls) == 0 {
		return 0
	}
	probe := MFCC(voice.TrimSilence(rec, 30))
	if len(probe) == 0 {
		return 0
	}
	hits := 0
	for _, vars := range tmpls {
		if minSubsequence(vars, probe) <= r.WordThreshold {
			hits++
		}
	}
	return float64(hits) / float64(len(tmpls))
}
