package asr

import "math"

// euclidean returns the Euclidean distance between two feature vectors.
func euclidean(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// DTW computes the dynamic-time-warping distance between two feature
// sequences, normalised by the warping path length, with the standard
// (diagonal, up, left) step pattern. Empty inputs return +Inf.
func DTW(a, b [][]float64) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	inf := math.Inf(1)
	// Rolling two-row DP over cost and path length.
	prevC := make([]float64, m+1)
	curC := make([]float64, m+1)
	prevL := make([]int, m+1)
	curL := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prevC[j] = inf
	}
	prevC[0] = 0
	for i := 1; i <= n; i++ {
		curC[0] = inf
		for j := 1; j <= m; j++ {
			d := euclidean(a[i-1], b[j-1])
			// Choose the cheapest predecessor.
			bc, bl := prevC[j-1], prevL[j-1] // diagonal
			if prevC[j] < bc {
				bc, bl = prevC[j], prevL[j] // up
			}
			if curC[j-1] < bc {
				bc, bl = curC[j-1], curL[j-1] // left
			}
			curC[j] = bc + d
			curL[j] = bl + 1
		}
		prevC, curC = curC, prevC
		prevL, curL = curL, prevL
		curC[0] = inf
	}
	if math.IsInf(prevC[m], 1) {
		return inf
	}
	return prevC[m] / float64(prevL[m])
}

// SubsequenceDTW finds the best match of the (short) query inside the
// (long) reference, allowing the alignment to start and end anywhere in
// the reference. It returns the path-normalised distance of the best
// match and the reference frame at which it ends. Used for keyword
// spotting (wake words, per-word accuracy).
func SubsequenceDTW(query, ref [][]float64) (dist float64, endFrame int) {
	n, m := len(query), len(ref)
	if n == 0 || m == 0 {
		return math.Inf(1), -1
	}
	inf := math.Inf(1)
	prevC := make([]float64, m+1)
	curC := make([]float64, m+1)
	prevL := make([]int, m+1)
	curL := make([]int, m+1)
	// Free start: row 0 costs nothing anywhere in the reference.
	for j := 0; j <= m; j++ {
		prevC[j] = 0
		prevL[j] = 0
	}
	for i := 1; i <= n; i++ {
		curC[0] = inf
		curL[0] = 0
		for j := 1; j <= m; j++ {
			d := euclidean(query[i-1], ref[j-1])
			bc, bl := prevC[j-1], prevL[j-1]
			if prevC[j] < bc {
				bc, bl = prevC[j], prevL[j]
			}
			if curC[j-1] < bc {
				bc, bl = curC[j-1], curL[j-1]
			}
			curC[j] = bc + d
			curL[j] = bl + 1
		}
		prevC, curC = curC, prevC
		prevL, curL = curL, prevL
	}
	best, bestJ := inf, -1
	for j := 1; j <= m; j++ {
		if prevL[j] == 0 {
			continue
		}
		nd := prevC[j] / float64(prevL[j])
		if nd < best {
			best, bestJ = nd, j
		}
	}
	return best, bestJ
}
