package asr

import (
	"math"
	"math/rand"
	"testing"

	"inaudible/internal/audio"
	"inaudible/internal/voice"
)

func TestMFCCShape(t *testing.T) {
	s := voice.MustSynthesize("alexa, play music", voice.DefaultVoice(), 48000)
	f := MFCC(s)
	if len(f) == 0 {
		t.Fatal("no frames")
	}
	for _, row := range f {
		if len(row) != NumCoeffs {
			t.Fatalf("frame width %d", len(row))
		}
	}
	// CMN: every coefficient's temporal mean is ~0.
	for c := 0; c < NumCoeffs; c++ {
		var m float64
		for _, row := range f {
			m += row[c]
		}
		m /= float64(len(f))
		if math.Abs(m) > 1e-9 {
			t.Fatalf("coeff %d mean %v after CMN", c, m)
		}
	}
}

func TestMFCCShortSignal(t *testing.T) {
	if f := MFCC(audio.Silence(16000, 0.01)); f != nil {
		t.Fatal("sub-frame signal should yield nil")
	}
}

func TestMFCCRateInvariance(t *testing.T) {
	// The same utterance at 44.1 kHz and 48 kHz must produce similar
	// features (both resampled to 16 kHz internally).
	s48 := voice.MustSynthesize("alexa, what time is it", voice.DefaultVoice(), 48000)
	s44 := s48.Resampled(44100)
	d := DTW(MFCC(s48), MFCC(s44))
	if d > 1.0 {
		t.Fatalf("rate-variant features: DTW distance %v", d)
	}
}

func TestDTWIdentityAndSymmetryish(t *testing.T) {
	s := voice.MustSynthesize("alexa, play music", voice.DefaultVoice(), 48000)
	f := MFCC(s)
	if d := DTW(f, f); d > 1e-9 {
		t.Fatalf("self distance %v", d)
	}
	if !math.IsInf(DTW(nil, f), 1) || !math.IsInf(DTW(f, nil), 1) {
		t.Fatal("empty input must give +Inf")
	}
}

func TestDTWTimeWarpTolerance(t *testing.T) {
	// The same text spoken 20% faster must remain far closer to its own
	// template than a different command is.
	p := voice.DefaultVoice()
	fast := p
	fast.RateScale = 0.8
	a := MFCC(voice.MustSynthesize("ok google, take a picture", p, 48000))
	b := MFCC(voice.MustSynthesize("ok google, take a picture", fast, 48000))
	c := MFCC(voice.MustSynthesize("alexa, add milk to my shopping list", p, 48000))
	same := DTW(a, b)
	diff := DTW(a, c)
	if same >= diff {
		t.Fatalf("warped self %v >= other command %v", same, diff)
	}
}

func TestSubsequenceDTWFindsEmbeddedWord(t *testing.T) {
	p := voice.DefaultVoice()
	word := MFCC(voice.TrimSilence(voice.MustSynthesize("picture", p, 48000), 35))
	sent := MFCC(voice.MustSynthesize("ok google, take a picture", p, 48000))
	dIn, end := SubsequenceDTW(word, sent)
	if end < 0 {
		t.Fatal("no match position")
	}
	other := MFCC(voice.MustSynthesize("alexa, play music", p, 48000))
	dOut, _ := SubsequenceDTW(word, other)
	if dIn >= dOut {
		t.Fatalf("embedded word not closer: in %v out %v", dIn, dOut)
	}
}

func newTestRecognizer() *Recognizer {
	return NewRecognizer(voice.Vocabulary(), voice.DefaultVoice())
}

func TestRecognizerCleanCommands(t *testing.T) {
	r := newTestRecognizer()
	p := voice.DefaultVoice()
	for _, c := range voice.Vocabulary() {
		rec := voice.MustSynthesize(c.Text, p, 48000)
		res := r.Recognize(rec)
		if !res.Accepted || res.CommandID != c.ID {
			t.Errorf("command %q: got %+v", c.ID, res)
		}
		if res.Distance > 1.0 {
			t.Errorf("command %q: clean self-distance %v suspiciously high", c.ID, res.Distance)
		}
	}
}

func TestRecognizerSeparation(t *testing.T) {
	// The margin between the correct command and the runner-up must be
	// comfortably wide on clean audio.
	r := newTestRecognizer()
	p := voice.DefaultVoice()
	for _, c := range voice.Vocabulary() {
		rec := voice.MustSynthesize(c.Text, p, 48000)
		res := r.Recognize(rec)
		if res.RunnerUp < res.Distance+0.5 {
			t.Errorf("command %q: runner-up %q at %v vs %v — weak separation",
				c.ID, res.Runner, res.RunnerUp, res.Distance)
		}
	}
}

func TestRecognizerRejectsNoise(t *testing.T) {
	r := newTestRecognizer()
	rng := rand.New(rand.NewSource(9))
	noise := audio.WhiteNoise(rng, 48000, 0.3, 2)
	res := r.Recognize(noise)
	if res.Accepted {
		t.Fatalf("noise accepted as %q (d=%v)", res.CommandID, res.Distance)
	}
}

func TestRecognizerRejectsSilence(t *testing.T) {
	r := newTestRecognizer()
	res := r.Recognize(audio.Silence(48000, 1))
	if res.Accepted {
		t.Fatal("silence accepted")
	}
}

func TestInjectionSuccess(t *testing.T) {
	r := newTestRecognizer()
	p := voice.DefaultVoice()
	rec := voice.MustSynthesize("alexa, play music", p, 48000)
	if !r.InjectionSuccess(rec, "music") {
		t.Fatal("clean injection should succeed")
	}
	if r.InjectionSuccess(rec, "photo") {
		t.Fatal("wrong target should fail")
	}
}

func TestWakeDetection(t *testing.T) {
	r := newTestRecognizer()
	p := voice.DefaultVoice()
	rec := voice.MustSynthesize("alexa, add milk to my shopping list", p, 48000)
	ok, err := r.WakeDetected(rec, "alexa")
	if err != nil || !ok {
		t.Fatalf("wake not detected: %v %v", ok, err)
	}
	if _, err := r.WakeDetected(rec, "computer"); err == nil {
		t.Fatal("unknown wake should error")
	}
	// A command without the wake word must not trigger it... all our
	// commands have wakes, so test against a different wake.
	ok, err = r.WakeDetected(rec, "ok google")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("'ok google' spotted inside an alexa command")
	}
}

func TestWordAccuracyCleanIsHigh(t *testing.T) {
	r := newTestRecognizer()
	p := voice.DefaultVoice()
	rec := voice.MustSynthesize("ok google, turn on airplane mode", p, 48000)
	if acc := r.WordAccuracy(rec, "airplane"); acc < 0.8 {
		t.Fatalf("clean word accuracy %v", acc)
	}
	if acc := r.WordAccuracy(audio.Silence(48000, 1), "airplane"); acc != 0 {
		t.Fatalf("silence word accuracy %v", acc)
	}
	if acc := r.WordAccuracy(rec, "not-a-command"); acc != 0 {
		t.Fatalf("unknown command word accuracy %v", acc)
	}
}

func TestWordAccuracyDegradesWithNoise(t *testing.T) {
	r := newTestRecognizer()
	p := voice.DefaultVoice()
	clean := voice.MustSynthesize("ok google, turn on airplane mode", p, 48000)
	rng := rand.New(rand.NewSource(4))
	noisy := clean.Clone()
	// Drown it: SNR ~ -12 dB.
	noise := audio.WhiteNoise(rng, 48000, clean.RMS()*4, noisy.Duration())
	noisy.MixInto(noise, 0)
	accClean := r.WordAccuracy(clean, "airplane")
	accNoisy := r.WordAccuracy(noisy, "airplane")
	if accNoisy >= accClean {
		t.Fatalf("accuracy did not degrade: clean %v noisy %v", accClean, accNoisy)
	}
}
