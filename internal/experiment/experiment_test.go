package experiment

import (
	"bytes"
	"strings"
	"testing"

	"inaudible/internal/core"
	"inaudible/internal/voice"
)

func TestTableRenderAndCSV(t *testing.T) {
	tb := &Table{Title: "demo", Columns: []string{"a", "bb"}}
	tb.AddRow(1.23456, "x")
	tb.AddRow(2, "longer")
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "== demo ==") || !strings.Contains(out, "1.235") {
		t.Fatalf("render output:\n%s", out)
	}
	buf.Reset()
	tb.CSV(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || lines[0] != "a,bb" {
		t.Fatalf("csv output:\n%s", buf.String())
	}
}

func TestBuildLegitSmall(t *testing.T) {
	s := core.DefaultScenario()
	cfg := CorpusConfig{
		Scenario:       s,
		CommandIDs:     []string{"music"},
		Profiles:       voice.Profiles()[:1],
		LegitDistances: []float64{2},
		LegitSPLs:      []float64{66},
		Trials:         2,
	}
	recs, err := BuildLegit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d recordings", len(recs))
	}
	for _, r := range recs {
		if r.Attack {
			t.Fatal("legit recording labelled attack")
		}
		if r.Signal.RMS() == 0 {
			t.Fatal("silent legit recording")
		}
		if !strings.HasPrefix(r.Label, "legit/") {
			t.Fatalf("label %q", r.Label)
		}
	}
}

func TestBuildLegitUnknownCommand(t *testing.T) {
	cfg := DefaultCorpusConfig(core.DefaultScenario())
	cfg.CommandIDs = []string{"nope"}
	if _, err := BuildLegit(cfg); err == nil {
		t.Fatal("expected error")
	}
	if _, err := BuildAttacks(cfg); err == nil {
		t.Fatal("expected error")
	}
}

func TestBuildAttacksSmall(t *testing.T) {
	s := core.DefaultScenario()
	cfg := CorpusConfig{
		Scenario:        s,
		CommandIDs:      []string{"music"},
		AttackPowers:    []float64{18.7},
		AttackDistances: []float64{2},
		Trials:          2,
	}
	recs, err := BuildAttacks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d recordings", len(recs))
	}
	for _, r := range recs {
		if !r.Attack || !strings.HasPrefix(r.Label, "attack/") {
			t.Fatalf("bad attack recording %q", r.Label)
		}
	}
}

func TestSplitTrainTest(t *testing.T) {
	recs := []Recording{{Label: "0"}, {Label: "1"}, {Label: "2"}, {Label: "3"}, {Label: "4"}}
	train, test := SplitTrainTest(recs)
	if len(train) != 3 || len(test) != 2 {
		t.Fatalf("split %d/%d", len(train), len(test))
	}
	if train[0].Label != "0" || test[0].Label != "1" {
		t.Fatal("interleave order")
	}
}

func TestSuccessRateAndMaxRange(t *testing.T) {
	s := core.DefaultScenario()
	rec := core.NewRecognizer(voice.DefaultVoice())
	sig := voice.MustSynthesize("alexa, play music", voice.DefaultVoice(), 48000)
	e, _, err := s.Simulate(sig, core.KindBaseline, 18.7, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	near := SuccessRate(s, rec, e, 1.5, "music", 3)
	if near < 0.99 {
		t.Fatalf("near success rate %v", near)
	}
	far := SuccessRate(s, rec, e, 10, "music", 3)
	if far > near-0.5 {
		t.Fatalf("far success rate %v vs near %v", far, near)
	}
	grid := []float64{1, 2, 8, 10}
	r := MaxRange(s, rec, e, "music", grid, 2, 0.5)
	if r < 2 || r >= 10 {
		t.Fatalf("max range %v", r)
	}
}
