package experiment

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"inaudible/internal/core"
)

// Cache is a content-addressed store of trial-cell results: the metric
// values of one delivery, keyed by a canonical hash of everything the
// delivery and its evaluation depend on — the scenario's capture
// parameters, the emission's waveform content, the delivery distance,
// the derived trial seed and the metric identity. Trial cells shared
// across experiments (E4/E5/E6/E7 all sweep success-vs-distance on
// overlapping grids) are therefore delivered once per `-all` run, and an
// optional on-disk layer carries them across runs of cmd/experiments.
//
// A Cache is safe for concurrent use by every worker of a Runner pool.
// Because cached values are exactly the deterministic metrics a cold
// evaluation produces, output is byte-identical cache cold or warm.
type Cache struct {
	dir string

	mem sync.Map // hex key -> []float64
	// emissions memoizes the content hash of emission waveforms by
	// pointer, so each emission is hashed once no matter how many cells
	// deliver it.
	emissions sync.Map // *core.Emission -> string

	hits   atomic.Int64
	misses atomic.Int64
}

// NewCache returns a trial cache. dir, when non-empty, adds an on-disk
// layer under that directory (created on first write): misses consult
// disk before computing, stores write through.
func NewCache(dir string) *Cache {
	return &Cache{dir: dir}
}

// Stats reports the hit and miss counts since construction.
func (c *Cache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// EmissionKey returns the content hash of the emission's reference
// waveform — the emission identity of every trial key. Hashes are
// memoized per emission, relying on the delivery contract that emission
// fields are immutable once built.
func (c *Cache) EmissionKey(e *core.Emission) string {
	if k, ok := c.emissions.Load(e); ok {
		return k.(string)
	}
	h := sha256.New()
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(e.Field.Rate))
	h.Write(scratch[:])
	buf := make([]byte, 0, 1<<16)
	for _, v := range e.Field.Samples {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
		buf = append(buf, scratch[:]...)
		if len(buf) >= 1<<16 {
			h.Write(buf)
			buf = buf[:0]
		}
	}
	h.Write(buf)
	key := hex.EncodeToString(h.Sum(nil))
	c.emissions.Store(e, key)
	return key
}

// TrialKey builds the canonical cache key of one trial cell: a hash over
// the scenario's capture parameters (device, air, ambient level), the
// emission content, the delivery distance, the derived trial seed and
// the metric identity. evalKey must name everything the metric depends
// on beyond the recording itself (e.g. the wanted command id).
func (c *Cache) TrialKey(spec TrialSpec, evalKey string) string {
	sc := spec.Scenario
	canonical := fmt.Sprintf("v1|dev=%s|air=%g,%g,%g|amb=%g|em=%s|d=%g|seed=%d|eval=%s",
		sc.Device.Name,
		sc.Air.TempC, sc.Air.RelHumidity, sc.Air.PressureKPa,
		sc.AmbientSPL,
		c.EmissionKey(spec.Emission),
		spec.Distance,
		sc.TrialSeed(spec.Trial),
		evalKey)
	sum := sha256.Sum256([]byte(canonical))
	return hex.EncodeToString(sum[:])
}

// Get returns the cached values for key, consulting memory first and
// then the on-disk layer.
func (c *Cache) Get(key string) ([]float64, bool) {
	if v, ok := c.mem.Load(key); ok {
		c.hits.Add(1)
		return v.([]float64), true
	}
	if c.dir != "" {
		if data, err := os.ReadFile(c.path(key)); err == nil {
			var vals []float64
			if json.Unmarshal(data, &vals) == nil {
				c.mem.Store(key, vals)
				c.hits.Add(1)
				return vals, true
			}
		}
	}
	c.misses.Add(1)
	return nil, false
}

// Put stores the values for key in memory and, when configured, on disk
// (written atomically via a temp file so concurrent runs never observe a
// torn entry).
func (c *Cache) Put(key string, vals []float64) {
	c.mem.Store(key, vals)
	if c.dir == "" {
		return
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	data, err := json.Marshal(vals)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, "."+key+"-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err == nil {
		tmp.Close()
		os.Rename(tmp.Name(), c.path(key))
		return
	}
	tmp.Close()
	os.Remove(tmp.Name())
}

// path maps a key to its on-disk entry.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}
