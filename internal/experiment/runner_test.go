package experiment

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"inaudible/internal/audio"
	"inaudible/internal/core"
	"inaudible/internal/defense"
	"inaudible/internal/voice"
)

// TestRunnerEachOrderAndCoverage checks that Each visits every index
// exactly once and that per-index writes land at their own slot, for
// pool sizes spanning serial to oversubscribed.
func TestRunnerEachOrderAndCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		r := NewRunner(workers)
		const n = 100
		out := make([]int, n)
		r.Each(n, func(i int) { out[i] = i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestRunnerNestedDoesNotDeadlock drives nested Each calls deeper than
// the pool size; inner calls must degrade to the caller's goroutine
// instead of blocking on pool tokens.
func TestRunnerNestedDoesNotDeadlock(t *testing.T) {
	r := NewRunner(4)
	var mu sync.Mutex
	seen := make(map[[3]int]bool)
	r.Each(6, func(i int) {
		r.Each(6, func(j int) {
			r.Each(3, func(k int) {
				mu.Lock()
				seen[[3]int{i, j, k}] = true
				mu.Unlock()
			})
		})
	})
	if len(seen) != 6*6*3 {
		t.Fatalf("nested Each covered %d of %d cells", len(seen), 6*6*3)
	}
}

// TestNilRunnerIsSerial pins the zero-value contract: a Suite built
// without NewSuite has a nil runner, and every pool entry point must
// degrade to serial instead of panicking (the seed's zero-value Suite
// was usable; see the facade's ExperimentSuite re-export).
func TestNilRunnerIsSerial(t *testing.T) {
	var r *Runner
	if r.Workers() != 1 {
		t.Fatalf("nil runner Workers() = %d, want 1", r.Workers())
	}
	out := make([]int, 5)
	r.Each(5, func(i int) { out[i] = i + 1 })
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("nil runner Each: out[%d] = %d", i, v)
		}
	}
	var s Suite
	sw := Sweep{
		Title:   "zero-value",
		Columns: []string{"i", "2i"},
		Axes:    []Axis{IntAxis("i", 0, 1, 2)},
		Cell: func(p Point) (Row, error) {
			return Row{p.Int("i"), p.Int("i") * 2}, nil
		},
	}
	tb, err := sw.Table(s.Runner())
	if err != nil || len(tb.Rows) != 3 || tb.Rows[2][1] != "4" {
		t.Fatalf("zero-value suite sweep: rows=%v err=%v", tb.Rows, err)
	}
}

// TestRunnerZeroAndOne covers the degenerate batch sizes.
func TestRunnerZeroAndOne(t *testing.T) {
	r := NewRunner(8)
	r.Each(0, func(int) { t.Fatal("fn called for empty batch") })
	called := 0
	r.Each(1, func(i int) { called++ })
	if called != 1 {
		t.Fatalf("Each(1) called fn %d times", called)
	}
	if NewRunner(0).Workers() < 1 {
		t.Fatal("NewRunner(0) must select at least one worker")
	}
}

// TestRunnerSuccessRateMatchesSerial checks the pool-backed helpers
// against the package-level serial ones on a real emission.
func TestRunnerSuccessRateMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a full emission build")
	}
	s := core.DefaultScenario()
	rec := core.NewRecognizer(voice.DefaultVoice())
	sig := voice.MustSynthesize("alexa, play music", voice.DefaultVoice(), 48000)
	e, _, err := s.Simulate(sig, core.KindBaseline, 18.7, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(8)
	serial := SuccessRate(s, rec, e, 1.5, "music", 3)
	parallel := r.SuccessRate(s, rec, e, 1.5, "music", 3)
	if serial != parallel {
		t.Errorf("SuccessRate: serial %v != parallel %v", serial, parallel)
	}
	grid := []float64{1.5, 8, 10}
	if sr, pr := MaxRange(s, rec, e, "music", grid, 1, 0.5), r.MaxRange(s, rec, e, "music", grid, 1, 0.5); sr != pr {
		t.Errorf("MaxRange serial %v != parallel %v", sr, pr)
	}
}

// TestRunnerRaceSharedSuite drives the Runner with >= 8 workers whose
// concurrent trials share one Suite's cached corpus and classifier —
// the shared-asset access pattern every parallel experiment has. Run
// under -race this is the suite's race-coverage test. A synthetic
// mini-corpus is injected in place of the physics-heavy real one so the
// test stays cheap enough for short mode even with the race detector's
// overhead; the sharing pattern (read-only corpus/classifier hit from
// every worker) is identical.
func TestRunnerRaceSharedSuite(t *testing.T) {
	s := NewSuite(Options{Quick: true, Seed: 3, Parallel: 8})
	if s.Runner().Workers() < 8 {
		t.Fatalf("runner has %d workers, want >= 8", s.Runner().Workers())
	}
	// Inject the synthetic corpus by burning the build-once guard.
	tone := audio.Tone(48000, 440, 0.05, 0.1)
	s.corpusOnce.Do(func() {
		for i := 0; i < 8; i++ {
			attackLabel := i%2 == 1
			rec := Recording{Signal: tone, Attack: attackLabel}
			s.testRecs = append(s.testRecs, rec)
			x := defense.Extract(tone).Vector()
			x[0] += float64(i) // separate the classes a little
			if attackLabel {
				x[0] += 100
			}
			s.train = append(s.train, defense.Sample{X: x, Attack: attackLabel})
			s.test = append(s.test, defense.Sample{X: x, Attack: attackLabel})
		}
	})
	svm, err := s.classifier() // trains once on the injected corpus
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent trials: one cheap voice emission delivered 16 times on
	// 8 workers, every eval touching the shared suite assets.
	sc := s.scenario()
	e := sc.EmitVoice(tone, 60)
	specs := make([]TrialSpec, 16)
	for i := range specs {
		specs[i] = TrialSpec{Scenario: sc, Emission: e, Distance: 1.5, Trial: int64(i + 1)}
	}
	eval := func(_ TrialSpec, run *core.RunResult) float64 {
		if err := s.corpus(); err != nil { // idempotent shared access
			t.Error(err)
			return -1
		}
		v := defense.Extract(run.Recording).Vector()
		n := 0.0
		if svm.Predict(v) {
			n = 1
		}
		return n + float64(len(s.testRecs))
	}
	parallel := s.Runner().Run(specs, eval)
	serial := serialRunner.Run(specs, eval)
	for i := range specs {
		if parallel[i].Value != serial[i].Value {
			t.Fatalf("trial %d: parallel value %v != serial value %v",
				i, parallel[i].Value, serial[i].Value)
		}
		if parallel[i].Seed != sc.TrialSeed(specs[i].Trial) {
			t.Fatalf("trial %d: seed %d, want %d", i, parallel[i].Seed, sc.TrialSeed(specs[i].Trial))
		}
	}
}

// BenchmarkE5Serial and BenchmarkE5Parallel quantify the trial engine:
// the acceptance bar is >= 2x wall-clock speedup with all cores on the
// E5 success-rate grid. Run with:
//
//	go test ./internal/experiment -bench 'E5Serial|E5Parallel' -benchtime 1x
func benchmarkE5(b *testing.B, parallel int) {
	s := NewSuite(Options{Quick: true, Seed: 1, Parallel: parallel})
	var buf bytes.Buffer
	if err := s.Run("E5", &buf); err != nil { // warm fixtures outside the timer
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Run("E5", io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5Serial(b *testing.B)   { benchmarkE5(b, 1) }
func BenchmarkE5Parallel(b *testing.B) { benchmarkE5(b, 0) }
