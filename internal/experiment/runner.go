package experiment

import (
	"runtime"
	"sync"
	"sync/atomic"

	"inaudible/internal/asr"
	"inaudible/internal/core"
)

// Runner fans independent units of work — experiment trials, grid cells,
// corpus recordings — across a fixed pool of workers. Every unit is
// seed-isolated (core.Scenario.TrialSeed) and writes only to its own
// output slot, so results are bit-for-bit identical to a serial run no
// matter how the scheduler interleaves workers; only the wall clock
// changes. The experiment suite routes all its per-trial and per-grid
// loops through one shared Runner.
//
// The pool is a counting semaphore of workers-1 tokens shared by every
// call on the same Runner. The calling goroutine always participates in
// its own batch, so nested calls (a parallel grid whose cells run
// parallel trials) can never deadlock: when the pool is exhausted the
// inner call simply degrades to serial on its caller's goroutine, and
// total concurrency stays bounded by the worker count instead of
// multiplying at each nesting level.
type Runner struct {
	workers int
	sem     chan struct{}
	// cache, when set, memoizes trial-cell metrics content-addressed by
	// (scenario, emission, distance, trial seed, metric): see RunCached.
	cache *Cache
}

// NewRunner returns a Runner with the given pool size. workers <= 0
// selects GOMAXPROCS; workers == 1 yields a fully serial runner that
// never spawns a goroutine.
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	r := &Runner{workers: workers}
	if workers > 1 {
		r.sem = make(chan struct{}, workers-1)
	}
	return r
}

// WithCache attaches a trial cache to the pool and returns the runner.
// All cache-keyed entry points (RunCached, Trial, SuccessRate, MaxRange)
// consult it; a nil cache disables memoization.
func (r *Runner) WithCache(c *Cache) *Runner {
	r.cache = c
	return r
}

// Cache returns the attached trial cache (nil when memoization is off or
// the runner is nil).
func (r *Runner) Cache() *Cache {
	if r == nil {
		return nil
	}
	return r.cache
}

// Workers reports the pool size. A nil Runner is a serial pool of one.
func (r *Runner) Workers() int {
	if r == nil {
		return 1
	}
	return r.workers
}

// Each runs fn(i) for every i in [0, n), fanned across the pool. fn must
// confine its writes to per-index state (out[i] = ...); under that
// contract the result is identical to the serial loop `for i := 0; i < n;
// i++ { fn(i) }`. Each returns when every index has completed. A nil
// Runner runs serially, so a zero-value Suite (whose runner was never
// built by NewSuite) still works.
func (r *Runner) Each(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if r == nil || r.sem == nil || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	// Borrow helpers from the pool while tokens are available; stop at
	// the first refusal. The caller works regardless, so a batch always
	// makes progress even with zero tokens (nested call on a saturated
	// pool).
	var wg sync.WaitGroup
	for spawned := 0; spawned < n-1; spawned++ {
		select {
		case r.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() { <-r.sem; wg.Done() }()
				work()
			}()
			continue
		default:
		}
		break
	}
	work()
	wg.Wait()
}

// TrialSpec names one delivery in a batch: which scenario and cached
// emission, the delivery distance, and the trial index whose derived
// sub-seed (Scenario.TrialSeed) isolates this trial's noise realisation
// from every other.
type TrialSpec struct {
	Scenario *core.Scenario
	Emission *core.Emission
	Distance float64
	// Trial is the per-trial index fed to Scenario.TrialSeed.
	Trial int64
}

// TrialResult is the outcome of one TrialSpec, returned at the spec's
// position in the input batch.
type TrialResult struct {
	// Index is the spec's position in the batch.
	Index int
	// Seed is the derived sub-seed the trial ran under.
	Seed int64
	// Run is the delivery outcome.
	Run *core.RunResult
	// Value carries the eval hook's metric (0 when no hook was given).
	Value float64
}

// Run delivers every spec across the pool and returns the results in
// input order. The optional eval hook runs inside the worker — use it to
// fold the expensive post-processing (recognition, feature extraction)
// into the parallel section instead of serialising it on the collector.
func (r *Runner) Run(specs []TrialSpec, eval func(TrialSpec, *core.RunResult) float64) []TrialResult {
	out := make([]TrialResult, len(specs))
	r.Each(len(specs), func(i int) {
		spec := specs[i]
		run := spec.Scenario.Deliver(spec.Emission, spec.Distance, spec.Trial)
		res := TrialResult{Index: i, Seed: spec.Scenario.TrialSeed(spec.Trial), Run: run}
		if eval != nil {
			res.Value = eval(spec, run)
		}
		out[i] = res
	})
	return out
}

// RunCached delivers every spec across the pool and returns each spec's
// metric values in input order, consulting the runner's trial cache.
// evalKey canonically names the metric computation ("success:photo");
// it must capture everything eval depends on beyond the recording.
// width is the number of values eval returns: a cached entry of any
// other length (a corrupt or stale on-disk file) is treated as a miss
// and recomputed instead of trusted. A cache hit returns the stored
// values without delivering; a miss delivers, evaluates inside the
// worker and stores the values. Because eval must be a deterministic
// function of the recording (which is itself a deterministic function
// of the trial key), results are byte-identical cache cold or warm, at
// any pool size. An empty evalKey or a cache-less runner disables
// memoization for the batch.
func (r *Runner) RunCached(specs []TrialSpec, evalKey string, width int, eval func(TrialSpec, *core.RunResult) []float64) [][]float64 {
	c := r.Cache()
	if evalKey == "" {
		c = nil
	}
	out := make([][]float64, len(specs))
	r.Each(len(specs), func(i int) {
		spec := specs[i]
		var key string
		if c != nil {
			key = c.TrialKey(spec, evalKey)
			if vals, ok := c.Get(key); ok && len(vals) == width {
				out[i] = vals
				return
			}
		}
		run := spec.Scenario.Deliver(spec.Emission, spec.Distance, spec.Trial)
		vals := eval(spec, run)
		if c != nil {
			c.Put(key, vals)
		}
		out[i] = vals
	})
	return out
}

// Trial is the single-spec convenience of RunCached: one delivery's
// metrics, through the cache, without fanning out.
func (r *Runner) Trial(spec TrialSpec, evalKey string, width int, eval func(*core.RunResult) []float64) []float64 {
	return r.RunCached([]TrialSpec{spec}, evalKey, width, func(_ TrialSpec, run *core.RunResult) []float64 {
		return eval(run)
	})[0]
}

// SuccessRate is the pool-backed twin of the package-level SuccessRate:
// it delivers the emission over trials distinct noise realisations
// (trial indices 1..trials, matching the serial helper exactly) and
// returns the fraction recognised as the wanted command. Each trial is
// one cache cell, so overlapping success grids across experiments (and
// across runs, with an on-disk cache) deliver each cell exactly once.
func (r *Runner) SuccessRate(s *core.Scenario, rec *asr.Recognizer, e *core.Emission, distance float64, want string, trials int) float64 {
	specs := make([]TrialSpec, trials)
	for i := range specs {
		specs[i] = TrialSpec{Scenario: s, Emission: e, Distance: distance, Trial: int64(i + 1)}
	}
	ok := 0
	for _, vals := range r.RunCached(specs, "success:"+want, 1, func(_ TrialSpec, run *core.RunResult) []float64 {
		if rec.InjectionSuccess(run.Recording, want) {
			return []float64{1}
		}
		return []float64{0}
	}) {
		if vals[0] > 0 {
			ok++
		}
	}
	return float64(ok) / float64(trials)
}

// MaxRange is the pool-backed twin of the package-level MaxRange. Grid
// points are probed in blocks of the pool size; after each block the
// serial scan (largest distance sustaining minRate before the first
// post-success failure) decides whether to keep probing. The answer
// matches the serial early-exit probe exactly, and a one-worker runner
// degenerates to precisely the serial algorithm including its early
// exit.
func (r *Runner) MaxRange(s *core.Scenario, rec *asr.Recognizer, e *core.Emission, want string, grid []float64, trials int, minRate float64) float64 {
	rates := make([]float64, len(grid))
	best := 0.0
	block := r.Workers()
	for start := 0; start < len(grid); start += block {
		end := start + block
		if end > len(grid) {
			end = len(grid)
		}
		r.Each(end-start, func(j int) {
			rates[start+j] = r.SuccessRate(s, rec, e, grid[start+j], want, trials)
		})
		for i := start; i < end; i++ {
			if rates[i] >= minRate {
				if grid[i] > best {
					best = grid[i]
				}
			} else if best > 0 {
				return best // monotone assumption, as in the serial probe
			}
		}
	}
	return best
}
