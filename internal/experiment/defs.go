package experiment

import (
	"fmt"

	"inaudible/internal/attack"
	"inaudible/internal/audio"
	"inaudible/internal/core"
	"inaudible/internal/defense"
	"inaudible/internal/dsp"
	"inaudible/internal/mic"
	"inaudible/internal/speaker"
	"inaudible/internal/voice"
)

// This file holds the paper's thirteen evaluation experiments as data:
// each definition declares its grids (Axis), its per-cell physics
// (Cell), and how cells assemble into tables (Reduce) — the sweep
// engine in sweep.go owns all fan-out, caching and rendering. Outputs
// are pinned byte-identical to the pre-sweep hand-rolled bodies by the
// goldens under testdata/.

var registry = map[string]entry{
	"E1":  {"demo: normal voice vs attack ultrasound vs recording", defE1},
	"E2":  {"single-speaker leakage and audibility vs input power", defE2},
	"E3":  {"leakage vs number of array elements at fixed power", defE3},
	"E4":  {"word accuracy vs distance: baseline vs long-range", defE4},
	"E5":  {"activation/injection success rate vs distance per device", defE5},
	"E6":  {"baseline attack range vs input power (Song-Mittal Table 1)", defE6},
	"E7":  {"success at fixed range (phone@3m, echo@2m, long-range@7.6m)", defE7},
	"E8":  {"ablation: carrier frequency, segment count, carrier power fraction", defE8},
	"E9":  {"defense trace feature distributions (legit vs attack)", defE9},
	"E10": {"defense correlation feature distributions", defE10},
	"E11": {"defense classifier accuracy / ROC / AUC", defE11},
	"E12": {"defense robustness: false positives across benign conditions", defE12},
	"E13": {"adaptive attacker: residual trace and detection vs estimation error", defE13},
}

// deviceChoice names a victim device profile on an axis.
type deviceChoice struct {
	fn func() *mic.Device
}

var (
	phoneDevice = deviceChoice{mic.AndroidPhone}
	echoDevice  = deviceChoice{mic.AmazonEcho}
)

// attackPower is the paper's nominal input power per attack kind.
func attackPower(kind core.AttackKind) float64 {
	if kind == core.KindLongRange {
		return 300
	}
	return 18.7
}

// ---- E1 ----

func defE1(s *Suite) ([]Section, error) {
	s.fixtures()
	sc := s.scenario()
	atk, err := attack.Baseline(s.cmdSig, attack.DefaultBaselineOptions())
	if err != nil {
		return nil, err
	}
	e, run, err := sc.Simulate(s.cmdSig, core.KindBaseline, 18.7, 2, 1)
	if err != nil {
		return nil, err
	}
	bandShare := func(sig *audio.Signal, lo, hi float64) float64 {
		psd := dsp.Welch(sig.Samples, 8192)
		in := dsp.BandPower(psd, sig.Rate, 8192, lo, hi)
		tot := dsp.BandPower(psd, sig.Rate, 8192, 0, sig.Rate/2)
		if tot == 0 {
			return 0
		}
		return in / tot
	}
	type namedSignal struct {
		name string
		sig  *audio.Signal
	}
	signals := Sweep{
		Title:   "E1 demo: 'ok google, take a picture' at 2 m, 18.7 W, fc=30 kHz",
		Columns: []string{"signal", "rate_hz", "dur_s", "share<20kHz", "share>20kHz", "peak"},
		Axes: []Axis{ValueAxis("signal",
			namedSignal{"normal voice", s.cmdSig},
			namedSignal{"attack ultrasound", atk},
			namedSignal{"mic recording", run.Recording})},
		Cell: func(p Point) (Row, error) {
			ns := p.Value("signal").(namedSignal)
			return Row{ns.name, ns.sig.Rate, ns.sig.Duration(),
				bandShare(ns.sig, 0, 20000), bandShare(ns.sig, 20000, ns.sig.Rate/2), ns.sig.Peak()}, nil
		},
	}
	// Does the recording carry the command? Envelope correlation + ASR.
	// The two verdicts are independent grid cells sharing the pool.
	verdicts := Sweep{
		Title:   "E1 verdicts",
		Columns: []string{"metric", "value"},
		Axes:    []Axis{StrAxis("verdict", "envelope", "asr")},
		Cell: func(p Point) (Row, error) {
			if p.Str("verdict") == "envelope" {
				ref := s.cmdSig.Clone()
				ref.Samples = dsp.LowPassFIR(511, 8000/ref.Rate).Apply(ref.Samples)
				envA := dsp.SmoothedEnvelope(ref.Samples, ref.Rate, 24)
				recAt48 := run.Recording.Resampled(48000)
				envB := dsp.SmoothedEnvelope(recAt48.Samples, 48000, 24)
				corr, _ := dsp.MaxCorrelationLag(envA, envB, 4800)
				return Row{corr}, nil
			}
			res := s.rec.Recognize(run.Recording)
			return Row{res.CommandID, res.Distance, res.Accepted}, nil
		},
		Reduce: func(cells []Row) ([]Row, error) {
			corr, res := cells[0], cells[1]
			cmdID := res[0].(string)
			return []Row{
				{"envelope correlation (recording vs voice)", corr[0]},
				{"ASR recognised as", cmdID},
				{"ASR distance", res[1]},
				{"leakage at bystander (dB SPL, A-wt)", e.LeakageSPL},
				{"phone activated (injection success)", res[2].(bool) && cmdID == "photo"},
			}, nil
		},
	}
	return []Section{signals, verdicts}, nil
}

// ---- E2 ----

func defE2(s *Suite) ([]Section, error) {
	s.fixtures()
	sc := s.scenario()
	powers := s.quickFloats(
		[]float64{0.25, 0.5, 1, 2, 4, 9.2, 18.7, 23.7, 40},
		[]float64{0.5, 2, 18.7, 40})
	trials := s.trials(5)
	return []Section{
		Sweep{
			Title: fmt.Sprintf("E2 single-speaker leakage vs power (bystander at %.1f m)",
				sc.BystanderDistance),
			Columns: []string{"power_w", "leak_spl_dba", "margin_db", "audible", "success@3m"},
			Axes:    []Axis{FloatAxis("power_w", powers...)},
			Cell: func(p Point) (Row, error) {
				pw := p.Float("power_w")
				e, err := s.attackEmission(core.KindBaseline, pw)
				if err != nil {
					return nil, err
				}
				sr := s.runner.SuccessRate(sc, s.rec, e, 3, s.command.ID, trials)
				return Row{pw, e.LeakageSPL, e.LeakageMargin, e.LeakageAudible, sr}, nil
			},
			Notes: []string{
				"shape check: leakage grows ~2 dB per dB of power and crosses the",
				"hearing threshold near ~1 W, far below the power needed for range.",
			},
		},
	}, nil
}

// ---- E3 ----

func defE3(s *Suite) ([]Section, error) {
	s.fixtures()
	sc := s.scenario()
	const power = 40.0
	segs := s.quickInts([]int{2, 6, 15, 60, 160, 320}, []int{2, 15, 60})
	return []Section{
		Sweep{
			Title:   "E3 leakage vs array segmentation at 40 W total",
			Columns: []string{"elements", "slice_width_hz", "leak_spl_dba", "margin_db", "audible"},
			// Single-speaker reference row ahead of the grid.
			Prologue: func() ([]Row, error) {
				eb, err := s.attackEmission(core.KindBaseline, power)
				if err != nil {
					return nil, err
				}
				return []Row{{1, 16000.0, eb.LeakageSPL, eb.LeakageMargin, eb.LeakageAudible}}, nil
			},
			Axes: []Axis{IntAxis("elements", segs...)},
			Cell: func(p Point) (Row, error) {
				o := attack.DefaultLongRangeOptions()
				o.NumSegments = p.Int("elements")
				e, err := sc.EmitLongRange(s.cmdSig, power, o, speaker.UltrasonicElement)
				if err != nil {
					return nil, err
				}
				return Row{e.Elements, o.SliceWidthHz(), e.LeakageSPL, e.LeakageMargin, e.LeakageAudible}, nil
			},
			Notes: []string{
				"shape check: splitting the spectrum drives leakage below the hearing",
				"threshold; slice widths under ~50 Hz confine residue to the infrasonic band.",
			},
		},
	}, nil
}

// ---- E4 ----

func defE4(s *Suite) ([]Section, error) {
	s.fixtures()
	sc := s.scenario()
	eb, err := s.attackEmission(core.KindBaseline, 18.7)
	if err != nil {
		return nil, err
	}
	el, err := s.attackEmission(core.KindLongRange, 300)
	if err != nil {
		return nil, err
	}
	dists := s.quickFloats([]float64{1, 2, 3, 4, 5, 6, 8, 10}, []float64{1, 3, 6, 10})
	return []Section{
		Sweep{
			Title:   "E4 word accuracy vs distance (baseline 18.7 W vs long-range 300 W)",
			Columns: []string{"distance_m", "baseline_wordacc", "longrange_wordacc", "baseline_dist", "longrange_dist"},
			Axes: []Axis{
				FloatAxis("distance_m", dists...),
				ValueAxis("kind", core.KindBaseline, core.KindLongRange),
			},
			Cell: func(p Point) (Row, error) {
				e := eb
				if p.Value("kind").(core.AttackKind) == core.KindLongRange {
					e = el
				}
				vals := s.runner.Trial(
					TrialSpec{Scenario: sc, Emission: e, Distance: p.Float("distance_m"), Trial: 1},
					"wordacc+dist:"+s.command.ID, 2,
					func(run *core.RunResult) []float64 {
						return []float64{
							s.rec.WordAccuracy(run.Recording, s.command.ID),
							s.rec.Recognize(run.Recording).Distance,
						}
					})
				return Row{vals[0], vals[1]}, nil
			},
			// Interleave: both kinds' word accuracies, then both distances.
			Reduce: func(cells []Row) ([]Row, error) {
				rows := make([]Row, 0, len(dists))
				for i, d := range dists {
					b, l := cells[2*i], cells[2*i+1]
					rows = append(rows, Row{d, b[0], l[0], b[1], l[1]})
				}
				return rows, nil
			},
			Notes: []string{
				"shape check: the long-range attack sustains accuracy several times",
				"farther than the single-speaker baseline at audibility-equivalent settings.",
			},
		},
	}, nil
}

// ---- E5 ----

func defE5(s *Suite) ([]Section, error) {
	s.fixtures()
	dists := s.quickFloats([]float64{1, 1.5, 2, 2.5, 3, 3.5, 4, 5}, []float64{1, 2, 3, 4})
	trials := s.trials(20)
	axes := []Axis{
		FloatAxis("distance_m", dists...),
		ValueAxis("kind", core.KindBaseline, core.KindLongRange),
		ValueAxis("device", phoneDevice, echoDevice),
	}
	return []Section{
		Sweep{
			Title:   fmt.Sprintf("E5 injection success rate vs distance (%d trials/point)", trials),
			Columns: []string{"distance_m", "phone_baseline", "echo_baseline", "phone_longrange", "echo_longrange"},
			Axes:    axes,
			Cell: func(p Point) (Row, error) {
				kind := p.Value("kind").(core.AttackKind)
				e, err := s.attackEmission(kind, attackPower(kind))
				if err != nil {
					return nil, err
				}
				sc := s.scenario()
				sc.Device = p.Value("device").(deviceChoice).fn()
				return Row{s.runner.SuccessRate(sc, s.rec, e, p.Float("distance_m"), s.command.ID, trials)}, nil
			},
			Reduce: PivotFirst(axes, nil),
			Notes: []string{
				"shape check: Echo curves sit below phone curves (plastic grille);",
				"long-range curves extend far beyond baseline curves.",
			},
		},
	}, nil
}

// ---- E6 ----

func defE6(s *Suite) ([]Section, error) {
	s.fixtures()
	powers := s.quickFloats([]float64{9.2, 11.8, 14.8, 18.7, 23.7}, []float64{9.2, 18.7, 23.7})
	grid := dsp.Linspace(0.5, 6, 23) // 0.25 m steps
	if s.Opt.Quick {
		grid = dsp.Linspace(0.5, 6, 12)
	}
	trials := s.trials(3)
	paperPhone := map[float64]float64{9.2: 222, 11.8: 255, 14.8: 277, 18.7: 313, 23.7: 354}
	paperEcho := map[float64]float64{9.2: 145, 11.8: 168, 14.8: 187, 18.7: 213, 23.7: 239}
	axes := []Axis{
		FloatAxis("power_w", powers...),
		ValueAxis("device", phoneDevice, echoDevice),
	}
	return []Section{
		Sweep{
			Title:   "E6 baseline attack range vs input power (cf. Song-Mittal Table 1)",
			Columns: []string{"power_w", "phone_range_cm", "echo_range_cm", "paper_phone_cm", "paper_echo_cm"},
			Axes:    axes,
			Cell: func(p Point) (Row, error) {
				e, err := s.attackEmission(core.KindBaseline, p.Float("power_w"))
				if err != nil {
					return nil, err
				}
				sc := s.scenario()
				sc.Device = p.Value("device").(deviceChoice).fn()
				return Row{s.runner.MaxRange(sc, s.rec, e, s.command.ID, grid, trials, 0.5) * 100}, nil
			},
			Reduce: PivotFirst(axes, func(rowVal interface{}) Row {
				pw := rowVal.(float64)
				return Row{paperPhone[pw], paperEcho[pw]}
			}),
			Notes: []string{
				"shape check: range grows monotonically with power; Echo < phone at",
				"every power (its grille attenuates ultrasound ~8 dB more).",
			},
		},
	}, nil
}

// ---- E7 ----

func defE7(s *Suite) ([]Section, error) {
	s.fixtures()
	trials := s.trials(50)
	// The three rigs of the paper's headline results. The Echo command in
	// the paper is the milk command; use it for fidelity.
	type setup struct {
		name     string
		distance float64
		paper    string
		run      func() (float64, error)
	}
	setups := []interface{}{
		setup{"phone/baseline/18.7W", 3.0, "1.00", func() (float64, error) {
			// Phone @ 3 m, baseline 18.7 W (paper: 100%).
			e, err := s.attackEmission(core.KindBaseline, 18.7)
			if err != nil {
				return 0, err
			}
			return s.runner.SuccessRate(s.scenario(), s.rec, e, 3, s.command.ID, trials), nil
		}},
		setup{"echo/baseline/18.7W", 2.0, "0.80", func() (float64, error) {
			// Echo @ 2 m, baseline 18.7 W (paper: 80%).
			milk, _ := voice.FindCommand("milk")
			milkSig := voice.MustSynthesize(milk.Text, voice.DefaultVoice(), 48000)
			e, err := s.emission(core.KindBaseline, 18.7, milk.ID, milkSig)
			if err != nil {
				return 0, err
			}
			sc := s.scenario()
			sc.Device = mic.AmazonEcho()
			return s.runner.SuccessRate(sc, s.rec, e, 2, milk.ID, trials), nil
		}},
		setup{"phone/long-range/300W", 7.6, "high", func() (float64, error) {
			// Long-range @ 7.6 m (25 ft), phone (NSDI headline).
			e, err := s.attackEmission(core.KindLongRange, 300)
			if err != nil {
				return 0, err
			}
			return s.runner.SuccessRate(s.scenario(), s.rec, e, 7.6, s.command.ID, trials), nil
		}},
	}
	return []Section{
		Sweep{
			Title:   fmt.Sprintf("E7 success at fixed range (%d trials)", trials),
			Columns: []string{"setup", "distance_m", "success_rate", "paper"},
			Axes:    []Axis{ValueAxis("setup", setups...)},
			Cell: func(p Point) (Row, error) {
				st := p.Value("setup").(setup)
				rate, err := st.run()
				if err != nil {
					return nil, err
				}
				return Row{st.name, st.distance, rate, st.paper}, nil
			},
		},
	}, nil
}

// ---- E8 ----

func defE8(s *Suite) ([]Section, error) {
	s.fixtures()
	sc := s.scenario()
	freqs := s.quickFloats([]float64{28000, 30000, 34000, 38000, 44000}, []float64{28000, 34000, 44000})
	segs := s.quickInts([]int{6, 15, 60, 160}, []int{15, 60})
	fracs := []float64{0, 0.3, 0.7, 0.95}
	return []Section{
		Sweep{
			Title:   "E8a carrier frequency ablation (baseline, 18.7 W, 3 m)",
			Columns: []string{"carrier_hz", "asr_dist@3m", "wordacc@3m", "leak_margin_db"},
			Axes:    []Axis{FloatAxis("carrier_hz", freqs...)},
			Cell: func(p Point) (Row, error) {
				fc := p.Float("carrier_hz")
				o := attack.DefaultBaselineOptions()
				o.CarrierHz = fc
				e, err := sc.EmitBaseline(s.cmdSig, 18.7, o, speaker.FostexTweeter())
				if err != nil {
					return nil, err
				}
				vals := s.runner.Trial(
					TrialSpec{Scenario: sc, Emission: e, Distance: 3, Trial: 1},
					"dist+wordacc:"+s.command.ID, 2,
					func(run *core.RunResult) []float64 {
						return []float64{
							s.rec.Recognize(run.Recording).Distance,
							s.rec.WordAccuracy(run.Recording, s.command.ID),
						}
					})
				return Row{fc, vals[0], vals[1], e.LeakageMargin}, nil
			},
			Notes: []string{
				"shape check: higher carriers suffer more atmospheric absorption and",
				"transducer rolloff — recovered quality degrades with fc.",
			},
		},
		Sweep{
			Title:   "E8b segment-count ablation (long-range, 300 W, 5 m)",
			Columns: []string{"segments", "slice_width_hz", "asr_dist@5m", "leak_margin_db"},
			Axes:    []Axis{IntAxis("segments", segs...)},
			Cell: func(p Point) (Row, error) {
				o := attack.DefaultLongRangeOptions()
				o.NumSegments = p.Int("segments")
				e, err := sc.EmitLongRange(s.cmdSig, 300, o, speaker.UltrasonicElement)
				if err != nil {
					return nil, err
				}
				vals := s.runner.Trial(
					TrialSpec{Scenario: sc, Emission: e, Distance: 5, Trial: 1},
					"dist", 1,
					func(run *core.RunResult) []float64 {
						return []float64{s.rec.Recognize(run.Recording).Distance}
					})
				return Row{p.Int("segments"), o.SliceWidthHz(), vals[0], e.LeakageMargin}, nil
			},
		},
		Sweep{
			Title:   "E8c carrier power fraction ablation (long-range, 300 W, 5 m; 0 = auto)",
			Columns: []string{"carrier_frac", "asr_dist@5m", "recording_rms"},
			Axes:    []Axis{FloatAxis("carrier_frac", fracs...)},
			Cell: func(p Point) (Row, error) {
				o := attack.DefaultLongRangeOptions()
				o.CarrierPowerFraction = p.Float("carrier_frac")
				e, err := sc.EmitLongRange(s.cmdSig, 300, o, speaker.UltrasonicElement)
				if err != nil {
					return nil, err
				}
				vals := s.runner.Trial(
					TrialSpec{Scenario: sc, Emission: e, Distance: 5, Trial: 1},
					"dist+rms", 2,
					func(run *core.RunResult) []float64 {
						return []float64{s.rec.Recognize(run.Recording).Distance, run.Recording.RMS()}
					})
				return Row{p.Float("carrier_frac"), vals[0], vals[1]}, nil
			},
		},
	}, nil
}

// ---- E9 / E10 ----

func defE9(s *Suite) ([]Section, error) {
	return []Section{
		s.featureTable("E9 trace-band (16-60 Hz) noise-subtracted SNR feature",
			func(f defense.Features) float64 { return f.TraceSNR }),
		s.featureTable("E9b high-band (>8.5 kHz) noise-subtracted SNR feature",
			func(f defense.Features) float64 { return f.HighSNR }),
		Note("shape check: attack distributions sit decades above legitimate ones."),
	}, nil
}

func defE10(s *Suite) ([]Section, error) {
	return []Section{
		s.featureTable("E10 low-band / squared-envelope correlation feature",
			func(f defense.Features) float64 { return f.LowEnvCorr }),
		Note("shape check: attack recordings correlate with their own squared envelope."),
	}, nil
}

// ---- E11 ----

func defE11(s *Suite) ([]Section, error) {
	svm, err := s.classifier()
	if err != nil {
		return nil, err
	}
	lr, err := defense.TrainLogistic(s.train, 0.5, 400)
	if err != nil {
		return nil, err
	}
	// Feature ablation: how discriminative is each feature alone? AUC of
	// the raw feature value as a score over all corpus recordings
	// (orientation-corrected, so 0.5 = useless, 1.0 = perfect).
	names := defense.FeatureNames()
	all := append(append([]defense.Sample{}, s.train...), s.test...)
	ablation := Sweep{
		Title:   "E11b single-feature AUC (ablation)",
		Columns: []string{"feature", "auc"},
		Axes:    []Axis{StrAxis("feature", names...)},
		Cell: func(p Point) (Row, error) {
			i := p.Ordinal("feature")
			var scores []float64
			var truth []bool
			for _, smp := range all {
				scores = append(scores, smp.X[i])
				truth = append(truth, smp.Attack)
			}
			auc := defense.AUC(defense.ROC(scores, truth))
			if auc < 0.5 {
				auc = 1 - auc
			}
			return Row{p.Str("feature"), auc}, nil
		},
	}
	return []Section{
		s.modelTable("linear SVM", svm.Predict, svm.Score),
		s.modelTable("logistic regression", lr.Predict, lr.Probability),
		ablation,
		Note("shape check: near-perfect separation (paper reports ~99% accuracy);"),
		Note("the noise-subtracted trace/high-band features carry most of the signal."),
	}, nil
}

// ---- E12 ----

func defE12(s *Suite) ([]Section, error) {
	svm, err := s.classifier()
	if err != nil {
		return nil, err
	}
	s.fixtures()
	trials := s.trials(3)
	type condition struct {
		name    string
		ambient float64
		spl     float64
		profile voice.Profile
		dist    float64
	}
	conditions := []interface{}{
		condition{"quiet room, normal voice", 35, 66, voice.DefaultVoice(), 2},
		condition{"noisy room (50 dB)", 50, 66, voice.DefaultVoice(), 2},
		condition{"loud close talker", 40, 76, voice.DefaultVoice(), 1},
		condition{"female talker", 40, 66, voice.Profiles()[2], 2},
		condition{"child talker", 40, 66, voice.Profiles()[4], 2},
		condition{"distant quiet talker", 40, 60, voice.DefaultVoice(), 3.5},
	}
	axes := []Axis{
		ValueAxis("condition", conditions...),
		StrAxis("command", "photo", "music"),
	}
	return []Section{
		Sweep{
			Title:   "E12 defense false-positive rate across benign conditions",
			Columns: []string{"condition", "n", "false_positive_rate"},
			Axes:    axes,
			// One cell = one (condition, command): its false-positive and
			// trial counts, folded per condition by the Reduce below.
			Cell: func(p Point) (Row, error) {
				c := p.Value("condition").(condition)
				sc := s.scenario()
				sc.AmbientSPL = c.ambient
				cmd, _ := voice.FindCommand(p.Str("command"))
				sig := voice.MustSynthesize(cmd.Text, c.profile, 48000)
				e := sc.EmitVoice(sig, c.spl)
				specs := make([]TrialSpec, trials)
				for tr := range specs {
					specs[tr] = TrialSpec{Scenario: sc, Emission: e, Distance: c.dist, Trial: int64(100 + tr)}
				}
				fp, n := 0, 0
				for _, res := range s.runner.Run(specs, func(_ TrialSpec, run *core.RunResult) float64 {
					if svm.Predict(defense.Extract(run.Recording).Vector()) {
						return 1
					}
					return 0
				}) {
					if res.Value > 0 {
						fp++
					}
					n++
				}
				return Row{fp, n}, nil
			},
			Reduce: func(cells []Row) ([]Row, error) {
				group := len(cells) / len(conditions)
				rows := make([]Row, 0, len(conditions))
				for ci, cv := range conditions {
					fp, n := 0, 0
					for _, cell := range cells[ci*group : (ci+1)*group] {
						fp += cell[0].(int)
						n += cell[1].(int)
					}
					rows = append(rows, Row{cv.(condition).name, n, float64(fp) / float64(n)})
				}
				return rows, nil
			},
			Notes: []string{
				"shape check: false positives stay rare across talkers, loudness and noise.",
			},
		},
	}, nil
}

// ---- E13 ----

func defE13(s *Suite) ([]Section, error) {
	svm, err := s.classifier()
	if err != nil {
		return nil, err
	}
	thr, err := defense.CalibrateThresholds(s.train)
	if err != nil {
		return nil, err
	}
	s.fixtures()
	sc := s.scenario()
	errsGrid := s.quickFloats([]float64{0, 0.1, 0.25, 0.5, 1.0}, []float64{0, 0.5, 1.0})
	trials := s.trials(5)
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	return []Section{
		Sweep{
			Title:   "E13 adaptive attacker: trace cancellation vs detection",
			Columns: []string{"est_error", "trace_snr", "high_snr", "svm_detect", "threshold_detect", "asr_success"},
			Axes:    []Axis{FloatAxis("est_error", errsGrid...)},
			Cell: func(p Point) (Row, error) {
				eps := p.Float("est_error")
				o := attack.DefaultAdaptiveOptions()
				o.EstimationError = eps
				drive, err := attack.AdaptiveBaseline(s.cmdSig, o)
				if err != nil {
					return nil, err
				}
				em := speaker.FostexTweeter().Emit(drive, 18.7)
				e := &core.Emission{Field: em}
				specs := make([]TrialSpec, trials)
				for tr := range specs {
					specs[tr] = TrialSpec{Scenario: sc, Emission: e, Distance: 2, Trial: int64(200 + tr)}
				}
				// The adaptive emission is rebuilt per cell, so these trials
				// are not shared; run them uncached on the pool.
				vals := s.runner.RunCached(specs, "", 5, func(_ TrialSpec, run *core.RunResult) []float64 {
					f := defense.Extract(run.Recording)
					return []float64{
						f.TraceSNR, f.HighSNR,
						b2f(svm.Predict(f.Vector())),
						b2f(thr.Predict(f.Vector())),
						b2f(s.rec.InjectionSuccess(run.Recording, s.command.ID)),
					}
				})
				var trace, high, detSVM, detThr, succ float64
				for _, v := range vals {
					trace += v[0]
					high += v[1]
					detSVM += v[2]
					detThr += v[3]
					succ += v[4]
				}
				n := float64(trials)
				return Row{eps, trace / n, high / n, detSVM / n, detThr / n, succ / n}, nil
			},
			Notes: []string{
				"shape check: cancelling the low band cannot remove the high-band m^2",
				"residue. The per-feature threshold detector (which cannot trade one",
				"feature against another) keeps firing even for an oracle attacker;",
				"a small-corpus SVM may under-weight the high band (train full-size).",
			},
		},
	}, nil
}
