package experiment

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"inaudible/internal/acoustics"
	"inaudible/internal/asr"
	"inaudible/internal/attack"
	"inaudible/internal/audio"
	"inaudible/internal/core"
	"inaudible/internal/defense"
	"inaudible/internal/dsp"
	"inaudible/internal/mic"
	"inaudible/internal/psycho"
	"inaudible/internal/speaker"
	"inaudible/internal/voice"
)

// Options scales the experiment grids.
type Options struct {
	// Quick shrinks trial counts and grids for smoke runs and benchmarks.
	Quick bool
	// Seed feeds every scenario.
	Seed int64
}

// Suite lazily builds and caches the expensive shared assets (recogniser,
// emissions, corpus, classifiers) across experiments, so `-all` does not
// pay for them repeatedly.
type Suite struct {
	Opt Options

	once    sync.Once
	rec     *asr.Recognizer
	command voice.Command
	cmdSig  *audio.Signal

	corpusOnce sync.Once
	corpusErr  error
	train      []defense.Sample
	test       []defense.Sample
	testRecs   []Recording

	svmOnce sync.Once
	svm     *defense.LinearSVM
	svmErr  error
}

// NewSuite returns a Suite with the given options.
func NewSuite(opt Options) *Suite {
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	return &Suite{Opt: opt}
}

// IDs lists the experiment identifiers in run order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		// E1..E13 numeric order.
		var a, b int
		fmt.Sscanf(ids[i], "E%d", &a)
		fmt.Sscanf(ids[j], "E%d", &b)
		return a < b
	})
	return ids
}

// Describe returns the one-line description of an experiment id.
func Describe(id string) string { return registry[id].desc }

// Run executes one experiment, writing its tables to w.
func (s *Suite) Run(id string, w io.Writer) error {
	e, ok := registry[id]
	if !ok {
		return fmt.Errorf("experiment: unknown id %q (have %v)", id, IDs())
	}
	return e.run(s, w)
}

type entry struct {
	desc string
	run  func(*Suite, io.Writer) error
}

var registry = map[string]entry{
	"E1":  {"demo: normal voice vs attack ultrasound vs recording", (*Suite).runE1},
	"E2":  {"single-speaker leakage and audibility vs input power", (*Suite).runE2},
	"E3":  {"leakage vs number of array elements at fixed power", (*Suite).runE3},
	"E4":  {"word accuracy vs distance: baseline vs long-range", (*Suite).runE4},
	"E5":  {"activation/injection success rate vs distance per device", (*Suite).runE5},
	"E6":  {"baseline attack range vs input power (Song-Mittal Table 1)", (*Suite).runE6},
	"E7":  {"success at fixed range (phone@3m, echo@2m, long-range@7.6m)", (*Suite).runE7},
	"E8":  {"ablation: carrier frequency, segment count, carrier power fraction", (*Suite).runE8},
	"E9":  {"defense trace feature distributions (legit vs attack)", (*Suite).runE9},
	"E10": {"defense correlation feature distributions", (*Suite).runE10},
	"E11": {"defense classifier accuracy / ROC / AUC", (*Suite).runE11},
	"E12": {"defense robustness: false positives across benign conditions", (*Suite).runE12},
	"E13": {"adaptive attacker: residual trace and detection vs estimation error", (*Suite).runE13},
}

// ---- shared fixtures ----

func (s *Suite) fixtures() {
	s.once.Do(func() {
		s.rec = core.NewRecognizer(voice.DefaultVoice())
		s.command, _ = voice.FindCommand("photo")
		s.cmdSig = voice.MustSynthesize(s.command.Text, voice.DefaultVoice(), 48000)
	})
}

func (s *Suite) scenario() *core.Scenario {
	sc := core.DefaultScenario()
	sc.Seed = s.Opt.Seed
	return sc
}

func (s *Suite) trials(full int) int {
	if s.Opt.Quick {
		if full >= 20 {
			return 5
		}
		if full >= 3 {
			return 2
		}
	}
	return full
}

// corpus builds (once) the labelled train/test feature sets for the
// defense experiments.
func (s *Suite) corpus() error {
	s.corpusOnce.Do(func() {
		s.fixtures()
		cfg := DefaultCorpusConfig(s.scenario())
		if s.Opt.Quick {
			cfg.CommandIDs = []string{"photo"}
			cfg.Profiles = voice.Profiles()[:2]
			cfg.LegitSPLs = []float64{66}
			cfg.LegitDistances = []float64{1, 2.5}
			cfg.AttackPowers = []float64{18.7}
			cfg.AttackDistances = []float64{1.5, 2.5}
			cfg.Trials = 2
		}
		legit, err := BuildLegit(cfg)
		if err != nil {
			s.corpusErr = err
			return
		}
		attacks, err := BuildAttacks(cfg)
		if err != nil {
			s.corpusErr = err
			return
		}
		all := append(legit, attacks...)
		trainRecs, testRecs := SplitTrainTest(all)
		s.testRecs = testRecs
		for _, r := range trainRecs {
			s.train = append(s.train, defense.Sample{X: defense.Extract(r.Signal).Vector(), Attack: r.Attack})
		}
		for _, r := range testRecs {
			s.test = append(s.test, defense.Sample{X: defense.Extract(r.Signal).Vector(), Attack: r.Attack})
		}
	})
	return s.corpusErr
}

// classifier trains (once) the experiment SVM on the corpus.
func (s *Suite) classifier() (*defense.LinearSVM, error) {
	if err := s.corpus(); err != nil {
		return nil, err
	}
	s.svmOnce.Do(func() {
		s.svm, s.svmErr = defense.TrainSVM(s.train, 0.01, 60, s.Opt.Seed)
	})
	return s.svm, s.svmErr
}

// ---- E1 ----

func (s *Suite) runE1(w io.Writer) error {
	s.fixtures()
	sc := s.scenario()
	atk, err := attack.Baseline(s.cmdSig, attack.DefaultBaselineOptions())
	if err != nil {
		return err
	}
	e, run, err := sc.Simulate(s.cmdSig, core.KindBaseline, 18.7, 2, 1)
	if err != nil {
		return err
	}
	bandShare := func(sig *audio.Signal, lo, hi float64) float64 {
		psd := dsp.Welch(sig.Samples, 8192)
		in := dsp.BandPower(psd, sig.Rate, 8192, lo, hi)
		tot := dsp.BandPower(psd, sig.Rate, 8192, 0, sig.Rate/2)
		if tot == 0 {
			return 0
		}
		return in / tot
	}
	t := &Table{
		Title:   "E1 demo: 'ok google, take a picture' at 2 m, 18.7 W, fc=30 kHz",
		Columns: []string{"signal", "rate_hz", "dur_s", "share<20kHz", "share>20kHz", "peak"},
	}
	t.AddRow("normal voice", s.cmdSig.Rate, s.cmdSig.Duration(),
		bandShare(s.cmdSig, 0, 20000), bandShare(s.cmdSig, 20000, s.cmdSig.Rate/2), s.cmdSig.Peak())
	t.AddRow("attack ultrasound", atk.Rate, atk.Duration(),
		bandShare(atk, 0, 20000), bandShare(atk, 20000, atk.Rate/2), atk.Peak())
	t.AddRow("mic recording", run.Recording.Rate, run.Recording.Duration(),
		bandShare(run.Recording, 0, 20000), bandShare(run.Recording, 20000, run.Recording.Rate/2),
		run.Recording.Peak())
	t.Render(w)

	// Does the recording carry the command? Envelope correlation + ASR.
	ref := s.cmdSig.Clone()
	ref.Samples = dsp.LowPassFIR(511, 8000/ref.Rate).Apply(ref.Samples)
	envA := dsp.SmoothedEnvelope(ref.Samples, ref.Rate, 24)
	recAt48 := run.Recording.Resampled(48000)
	envB := dsp.SmoothedEnvelope(recAt48.Samples, 48000, 24)
	corr, _ := dsp.MaxCorrelationLag(envA, envB, 4800)
	res := s.rec.Recognize(run.Recording)
	t2 := &Table{Title: "E1 verdicts", Columns: []string{"metric", "value"}}
	t2.AddRow("envelope correlation (recording vs voice)", corr)
	t2.AddRow("ASR recognised as", res.CommandID)
	t2.AddRow("ASR distance", res.Distance)
	t2.AddRow("leakage at bystander (dB SPL, A-wt)", e.LeakageSPL)
	t2.AddRow("phone activated (injection success)", res.Accepted && res.CommandID == "photo")
	t2.Render(w)
	return nil
}

// ---- E2 ----

func (s *Suite) runE2(w io.Writer) error {
	s.fixtures()
	sc := s.scenario()
	powers := []float64{0.25, 0.5, 1, 2, 4, 9.2, 18.7, 23.7, 40}
	if s.Opt.Quick {
		powers = []float64{0.5, 2, 18.7, 40}
	}
	t := &Table{
		Title: fmt.Sprintf("E2 single-speaker leakage vs power (bystander at %.1f m)",
			sc.BystanderDistance),
		Columns: []string{"power_w", "leak_spl_dba", "margin_db", "audible", "success@3m"},
	}
	trials := s.trials(5)
	for _, p := range powers {
		e, _, err := sc.Simulate(s.cmdSig, core.KindBaseline, p, 3, 0)
		if err != nil {
			return err
		}
		sr := SuccessRate(sc, s.rec, e, 3, s.command.ID, trials)
		t.AddRow(p, e.LeakageSPL, e.LeakageMargin, e.LeakageAudible, sr)
	}
	t.Render(w)
	fmt.Fprintln(w, "shape check: leakage grows ~2 dB per dB of power and crosses the")
	fmt.Fprintln(w, "hearing threshold near ~1 W, far below the power needed for range.")
	return nil
}

// ---- E3 ----

func (s *Suite) runE3(w io.Writer) error {
	s.fixtures()
	sc := s.scenario()
	const power = 40.0
	segs := []int{2, 6, 15, 60, 160, 320}
	if s.Opt.Quick {
		segs = []int{2, 15, 60}
	}
	t := &Table{
		Title:   "E3 leakage vs array segmentation at 40 W total",
		Columns: []string{"elements", "slice_width_hz", "leak_spl_dba", "margin_db", "audible"},
	}
	// Single-speaker reference.
	eb, _, err := sc.Simulate(s.cmdSig, core.KindBaseline, power, 3, 0)
	if err != nil {
		return err
	}
	t.AddRow(1, 16000.0, eb.LeakageSPL, eb.LeakageMargin, eb.LeakageAudible)
	for _, n := range segs {
		o := attack.DefaultLongRangeOptions()
		o.NumSegments = n
		e, err := sc.EmitLongRange(s.cmdSig, power, o, speaker.UltrasonicElement)
		if err != nil {
			return err
		}
		t.AddRow(e.Elements, o.SliceWidthHz(), e.LeakageSPL, e.LeakageMargin, e.LeakageAudible)
	}
	t.Render(w)
	fmt.Fprintln(w, "shape check: splitting the spectrum drives leakage below the hearing")
	fmt.Fprintln(w, "threshold; slice widths under ~50 Hz confine residue to the infrasonic band.")
	return nil
}

// ---- E4 ----

func (s *Suite) runE4(w io.Writer) error {
	s.fixtures()
	sc := s.scenario()
	eb, _, err := sc.Simulate(s.cmdSig, core.KindBaseline, 18.7, 3, 0)
	if err != nil {
		return err
	}
	el, _, err := sc.Simulate(s.cmdSig, core.KindLongRange, 300, 3, 0)
	if err != nil {
		return err
	}
	dists := []float64{1, 2, 3, 4, 5, 6, 8, 10}
	if s.Opt.Quick {
		dists = []float64{1, 3, 6, 10}
	}
	t := &Table{
		Title:   "E4 word accuracy vs distance (baseline 18.7 W vs long-range 300 W)",
		Columns: []string{"distance_m", "baseline_wordacc", "longrange_wordacc", "baseline_dist", "longrange_dist"},
	}
	for _, d := range dists {
		rb := sc.Deliver(eb, d, 1)
		rl := sc.Deliver(el, d, 1)
		t.AddRow(d,
			s.rec.WordAccuracy(rb.Recording, s.command.ID),
			s.rec.WordAccuracy(rl.Recording, s.command.ID),
			s.rec.Recognize(rb.Recording).Distance,
			s.rec.Recognize(rl.Recording).Distance)
	}
	t.Render(w)
	fmt.Fprintln(w, "shape check: the long-range attack sustains accuracy several times")
	fmt.Fprintln(w, "farther than the single-speaker baseline at audibility-equivalent settings.")
	return nil
}

// ---- E5 ----

func (s *Suite) runE5(w io.Writer) error {
	s.fixtures()
	devices := []func() *mic.Device{mic.AndroidPhone, mic.AmazonEcho}
	dists := []float64{1, 1.5, 2, 2.5, 3, 3.5, 4, 5}
	if s.Opt.Quick {
		dists = []float64{1, 2, 3, 4}
	}
	trials := s.trials(20)
	t := &Table{
		Title:   fmt.Sprintf("E5 injection success rate vs distance (%d trials/point)", trials),
		Columns: []string{"distance_m", "phone_baseline", "echo_baseline", "phone_longrange", "echo_longrange"},
	}
	rates := make(map[string]map[float64]float64)
	for _, devFn := range devices {
		for _, kind := range []core.AttackKind{core.KindBaseline, core.KindLongRange} {
			sc := s.scenario()
			sc.Device = devFn()
			power := 18.7
			if kind == core.KindLongRange {
				power = 300
			}
			e, _, err := sc.Simulate(s.cmdSig, kind, power, 2, 0)
			if err != nil {
				return err
			}
			key := sc.Device.Name + "/" + kind.String()
			rates[key] = make(map[float64]float64)
			for _, d := range dists {
				rates[key][d] = SuccessRate(sc, s.rec, e, d, s.command.ID, trials)
			}
		}
	}
	for _, d := range dists {
		t.AddRow(d,
			rates["android-phone/baseline"][d],
			rates["amazon-echo/baseline"][d],
			rates["android-phone/long-range"][d],
			rates["amazon-echo/long-range"][d])
	}
	t.Render(w)
	fmt.Fprintln(w, "shape check: Echo curves sit below phone curves (plastic grille);")
	fmt.Fprintln(w, "long-range curves extend far beyond baseline curves.")
	return nil
}

// ---- E6 ----

func (s *Suite) runE6(w io.Writer) error {
	s.fixtures()
	powers := []float64{9.2, 11.8, 14.8, 18.7, 23.7}
	if s.Opt.Quick {
		powers = []float64{9.2, 18.7, 23.7}
	}
	grid := dsp.Linspace(0.5, 6, 23) // 0.25 m steps
	if s.Opt.Quick {
		grid = dsp.Linspace(0.5, 6, 12)
	}
	trials := s.trials(3)
	t := &Table{
		Title:   "E6 baseline attack range vs input power (cf. Song-Mittal Table 1)",
		Columns: []string{"power_w", "phone_range_cm", "echo_range_cm", "paper_phone_cm", "paper_echo_cm"},
	}
	paperPhone := map[float64]float64{9.2: 222, 11.8: 255, 14.8: 277, 18.7: 313, 23.7: 354}
	paperEcho := map[float64]float64{9.2: 145, 11.8: 168, 14.8: 187, 18.7: 213, 23.7: 239}
	for _, p := range powers {
		var ranges [2]float64
		for i, devFn := range []func() *mic.Device{mic.AndroidPhone, mic.AmazonEcho} {
			sc := s.scenario()
			sc.Device = devFn()
			e, _, err := sc.Simulate(s.cmdSig, core.KindBaseline, p, 2, 0)
			if err != nil {
				return err
			}
			ranges[i] = MaxRange(sc, s.rec, e, s.command.ID, grid, trials, 0.5) * 100
		}
		t.AddRow(p, ranges[0], ranges[1], paperPhone[p], paperEcho[p])
	}
	t.Render(w)
	fmt.Fprintln(w, "shape check: range grows monotonically with power; Echo < phone at")
	fmt.Fprintln(w, "every power (its grille attenuates ultrasound ~8 dB more).")
	return nil
}

// ---- E7 ----

func (s *Suite) runE7(w io.Writer) error {
	s.fixtures()
	trials := s.trials(50)
	t := &Table{
		Title:   fmt.Sprintf("E7 success at fixed range (%d trials)", trials),
		Columns: []string{"setup", "distance_m", "success_rate", "paper"},
	}
	// Phone @ 3 m, baseline 18.7 W (paper: 100%).
	scP := s.scenario()
	eP, _, err := scP.Simulate(s.cmdSig, core.KindBaseline, 18.7, 3, 0)
	if err != nil {
		return err
	}
	t.AddRow("phone/baseline/18.7W", 3.0, SuccessRate(scP, s.rec, eP, 3, s.command.ID, trials), "1.00")

	// Echo @ 2 m, baseline 18.7 W (paper: 80%). The Echo command in the
	// paper is the milk command; use it for fidelity.
	milk, _ := voice.FindCommand("milk")
	milkSig := voice.MustSynthesize(milk.Text, voice.DefaultVoice(), 48000)
	scE := s.scenario()
	scE.Device = mic.AmazonEcho()
	eE, _, err := scE.Simulate(milkSig, core.KindBaseline, 18.7, 2, 0)
	if err != nil {
		return err
	}
	t.AddRow("echo/baseline/18.7W", 2.0, SuccessRate(scE, s.rec, eE, 2, milk.ID, trials), "0.80")

	// Long-range @ 7.6 m (25 ft), phone (NSDI headline).
	scL := s.scenario()
	eL, _, err := scL.Simulate(s.cmdSig, core.KindLongRange, 300, 7.6, 0)
	if err != nil {
		return err
	}
	t.AddRow("phone/long-range/300W", 7.6, SuccessRate(scL, s.rec, eL, 7.6, s.command.ID, trials), "high")
	t.Render(w)
	return nil
}

// ---- E8 ----

func (s *Suite) runE8(w io.Writer) error {
	s.fixtures()
	sc := s.scenario()

	// Carrier frequency sweep.
	freqs := []float64{28000, 30000, 34000, 38000, 44000}
	if s.Opt.Quick {
		freqs = []float64{28000, 34000, 44000}
	}
	t := &Table{
		Title:   "E8a carrier frequency ablation (baseline, 18.7 W, 3 m)",
		Columns: []string{"carrier_hz", "asr_dist@3m", "wordacc@3m", "leak_margin_db"},
	}
	for _, fc := range freqs {
		o := attack.DefaultBaselineOptions()
		o.CarrierHz = fc
		e, err := sc.EmitBaseline(s.cmdSig, 18.7, o, speaker.FostexTweeter())
		if err != nil {
			return err
		}
		r := sc.Deliver(e, 3, 1)
		t.AddRow(fc, s.rec.Recognize(r.Recording).Distance,
			s.rec.WordAccuracy(r.Recording, s.command.ID), e.LeakageMargin)
	}
	t.Render(w)
	fmt.Fprintln(w, "shape check: higher carriers suffer more atmospheric absorption and")
	fmt.Fprintln(w, "transducer rolloff — recovered quality degrades with fc.")

	// Segment count sweep (recovered quality at fixed power).
	segs := []int{6, 15, 60, 160}
	if s.Opt.Quick {
		segs = []int{15, 60}
	}
	t2 := &Table{
		Title:   "E8b segment-count ablation (long-range, 300 W, 5 m)",
		Columns: []string{"segments", "slice_width_hz", "asr_dist@5m", "leak_margin_db"},
	}
	for _, n := range segs {
		o := attack.DefaultLongRangeOptions()
		o.NumSegments = n
		e, err := sc.EmitLongRange(s.cmdSig, 300, o, speaker.UltrasonicElement)
		if err != nil {
			return err
		}
		r := sc.Deliver(e, 5, 1)
		t2.AddRow(n, o.SliceWidthHz(), s.rec.Recognize(r.Recording).Distance, e.LeakageMargin)
	}
	t2.Render(w)

	// Carrier power fraction sweep.
	fracs := []float64{0, 0.3, 0.7, 0.95}
	t3 := &Table{
		Title:   "E8c carrier power fraction ablation (long-range, 300 W, 5 m; 0 = auto)",
		Columns: []string{"carrier_frac", "asr_dist@5m", "recording_rms"},
	}
	for _, cf := range fracs {
		o := attack.DefaultLongRangeOptions()
		o.CarrierPowerFraction = cf
		e, err := sc.EmitLongRange(s.cmdSig, 300, o, speaker.UltrasonicElement)
		if err != nil {
			return err
		}
		r := sc.Deliver(e, 5, 1)
		t3.AddRow(cf, s.rec.Recognize(r.Recording).Distance, r.Recording.RMS())
	}
	t3.Render(w)
	return nil
}

// ---- E9/E10 helpers ----

type distSummary struct {
	n                   int
	mean, std, min, max float64
}

func summarize(vals []float64) distSummary {
	d := distSummary{n: len(vals), min: math.Inf(1), max: math.Inf(-1)}
	if len(vals) == 0 {
		return d
	}
	d.mean = dsp.Mean(vals)
	d.std = dsp.StdDev(vals)
	for _, v := range vals {
		if v < d.min {
			d.min = v
		}
		if v > d.max {
			d.max = v
		}
	}
	return d
}

func (s *Suite) featureDistTable(w io.Writer, title string, pick func(defense.Features) float64) error {
	if err := s.corpus(); err != nil {
		return err
	}
	var legit, attackVals []float64
	for _, r := range s.testRecs {
		v := pick(defense.Extract(r.Signal))
		if r.Attack {
			attackVals = append(attackVals, v)
		} else {
			legit = append(legit, v)
		}
	}
	t := &Table{Title: title, Columns: []string{"class", "n", "mean", "std", "min", "max"}}
	l, a := summarize(legit), summarize(attackVals)
	t.AddRow("legitimate", l.n, l.mean, l.std, l.min, l.max)
	t.AddRow("attack", a.n, a.mean, a.std, a.min, a.max)
	t.Render(w)
	return nil
}

func (s *Suite) runE9(w io.Writer) error {
	if err := s.featureDistTable(w, "E9 trace-band (16-60 Hz) noise-subtracted SNR feature",
		func(f defense.Features) float64 { return f.TraceSNR }); err != nil {
		return err
	}
	if err := s.featureDistTable(w, "E9b high-band (>8.5 kHz) noise-subtracted SNR feature",
		func(f defense.Features) float64 { return f.HighSNR }); err != nil {
		return err
	}
	fmt.Fprintln(w, "shape check: attack distributions sit decades above legitimate ones.")
	return nil
}

func (s *Suite) runE10(w io.Writer) error {
	if err := s.featureDistTable(w, "E10 low-band / squared-envelope correlation feature",
		func(f defense.Features) float64 { return f.LowEnvCorr }); err != nil {
		return err
	}
	fmt.Fprintln(w, "shape check: attack recordings correlate with their own squared envelope.")
	return nil
}

// ---- E11 ----

func (s *Suite) runE11(w io.Writer) error {
	svm, err := s.classifier()
	if err != nil {
		return err
	}
	lr, err := defense.TrainLogistic(s.train, 0.5, 400)
	if err != nil {
		return err
	}
	evalModel := func(name string, predict func([]float64) bool, score func([]float64) float64) {
		var pred, truth []bool
		var scores []float64
		for _, smp := range s.test {
			pred = append(pred, predict(smp.X))
			truth = append(truth, smp.Attack)
			scores = append(scores, score(smp.X))
		}
		m := defense.Evaluate(pred, truth)
		auc := defense.AUC(defense.ROC(scores, truth))
		t := &Table{
			Title:   fmt.Sprintf("E11 %s on held-out recordings (n=%d)", name, len(s.test)),
			Columns: []string{"accuracy", "precision", "recall", "f1", "fp", "fn", "auc"},
		}
		t.AddRow(m.Accuracy, m.Precision, m.Recall, m.F1, m.FP, m.FN, auc)
		t.Render(w)
	}
	evalModel("linear SVM", svm.Predict, svm.Score)
	evalModel("logistic regression", lr.Predict, lr.Probability)

	// Feature ablation: how discriminative is each feature alone? AUC of
	// the raw feature value as a score over all corpus recordings
	// (orientation-corrected, so 0.5 = useless, 1.0 = perfect).
	ta := &Table{
		Title:   "E11b single-feature AUC (ablation)",
		Columns: []string{"feature", "auc"},
	}
	all := append(append([]defense.Sample{}, s.train...), s.test...)
	for i, name := range defense.FeatureNames() {
		var scores []float64
		var truth []bool
		for _, smp := range all {
			scores = append(scores, smp.X[i])
			truth = append(truth, smp.Attack)
		}
		auc := defense.AUC(defense.ROC(scores, truth))
		if auc < 0.5 {
			auc = 1 - auc
		}
		ta.AddRow(name, auc)
	}
	ta.Render(w)
	fmt.Fprintln(w, "shape check: near-perfect separation (paper reports ~99% accuracy);")
	fmt.Fprintln(w, "the noise-subtracted trace/high-band features carry most of the signal.")
	return nil
}

// ---- E12 ----

func (s *Suite) runE12(w io.Writer) error {
	svm, err := s.classifier()
	if err != nil {
		return err
	}
	s.fixtures()
	t := &Table{
		Title:   "E12 defense false-positive rate across benign conditions",
		Columns: []string{"condition", "n", "false_positive_rate"},
	}
	trials := s.trials(3)
	conditions := []struct {
		name    string
		ambient float64
		spl     float64
		profile voice.Profile
		dist    float64
	}{
		{"quiet room, normal voice", 35, 66, voice.DefaultVoice(), 2},
		{"noisy room (50 dB)", 50, 66, voice.DefaultVoice(), 2},
		{"loud close talker", 40, 76, voice.DefaultVoice(), 1},
		{"female talker", 40, 66, voice.Profiles()[2], 2},
		{"child talker", 40, 66, voice.Profiles()[4], 2},
		{"distant quiet talker", 40, 60, voice.DefaultVoice(), 3.5},
	}
	for _, c := range conditions {
		sc := s.scenario()
		sc.AmbientSPL = c.ambient
		fp, n := 0, 0
		for _, id := range []string{"photo", "music"} {
			cmd, _ := voice.FindCommand(id)
			sig := voice.MustSynthesize(cmd.Text, c.profile, 48000)
			e := sc.EmitVoice(sig, c.spl)
			for tr := 0; tr < trials; tr++ {
				r := sc.Deliver(e, c.dist, int64(100+tr))
				if svm.Predict(defense.Extract(r.Recording).Vector()) {
					fp++
				}
				n++
			}
		}
		t.AddRow(c.name, n, float64(fp)/float64(n))
	}
	t.Render(w)
	fmt.Fprintln(w, "shape check: false positives stay rare across talkers, loudness and noise.")
	return nil
}

// ---- E13 ----

func (s *Suite) runE13(w io.Writer) error {
	svm, err := s.classifier()
	if err != nil {
		return err
	}
	thr, err := defense.CalibrateThresholds(s.train)
	if err != nil {
		return err
	}
	s.fixtures()
	sc := s.scenario()
	errs := []float64{0, 0.1, 0.25, 0.5, 1.0}
	if s.Opt.Quick {
		errs = []float64{0, 0.5, 1.0}
	}
	trials := s.trials(5)
	t := &Table{
		Title:   "E13 adaptive attacker: trace cancellation vs detection",
		Columns: []string{"est_error", "trace_snr", "high_snr", "svm_detect", "threshold_detect", "asr_success"},
	}
	for _, eps := range errs {
		o := attack.DefaultAdaptiveOptions()
		o.EstimationError = eps
		drive, err := attack.AdaptiveBaseline(s.cmdSig, o)
		if err != nil {
			return err
		}
		em := speaker.FostexTweeter().Emit(drive, 18.7)
		e := &core.Emission{Field: em}
		detSVM, detThr, succ := 0, 0, 0
		var traceSum, highSum float64
		for tr := 0; tr < trials; tr++ {
			r := sc.Deliver(e, 2, int64(200+tr))
			f := defense.Extract(r.Recording)
			traceSum += f.TraceSNR
			highSum += f.HighSNR
			if svm.Predict(f.Vector()) {
				detSVM++
			}
			if thr.Predict(f.Vector()) {
				detThr++
			}
			if s.rec.InjectionSuccess(r.Recording, s.command.ID) {
				succ++
			}
		}
		t.AddRow(eps, traceSum/float64(trials), highSum/float64(trials),
			float64(detSVM)/float64(trials), float64(detThr)/float64(trials),
			float64(succ)/float64(trials))
	}
	t.Render(w)
	fmt.Fprintln(w, "shape check: cancelling the low band cannot remove the high-band m^2")
	fmt.Fprintln(w, "residue. The per-feature threshold detector (which cannot trade one")
	fmt.Fprintln(w, "feature against another) keeps firing even for an oracle attacker;")
	fmt.Fprintln(w, "a small-corpus SVM may under-weight the high band (train full-size).")
	return nil
}

// ---- misc ----

// LeakageOfEmission re-exports the leakage analysis for benches.
func LeakageOfEmission(e *core.Emission) (float64, bool) {
	return e.LeakageSPL, e.LeakageAudible
}

// AudibilityAt reports audibility of a raw field at a distance — a
// convenience wrapper for examples.
func AudibilityAt(field *audio.Signal, d float64) (bool, float64) {
	return psycho.AudibleAtDistance(field, d, acoustics.DefaultAir())
}
