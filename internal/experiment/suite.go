package experiment

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"inaudible/internal/acoustics"
	"inaudible/internal/asr"
	"inaudible/internal/attack"
	"inaudible/internal/audio"
	"inaudible/internal/core"
	"inaudible/internal/defense"
	"inaudible/internal/dsp"
	"inaudible/internal/mic"
	"inaudible/internal/psycho"
	"inaudible/internal/speaker"
	"inaudible/internal/voice"
)

// Options scales the experiment grids.
type Options struct {
	// Quick shrinks trial counts and grids for smoke runs and benchmarks.
	Quick bool
	// Seed feeds every scenario.
	Seed int64
	// Parallel is the trial-engine pool size: 0 selects GOMAXPROCS, 1
	// forces serial execution. Output is byte-identical across pool
	// sizes at a fixed Seed; only the wall clock changes.
	Parallel int
}

// Suite lazily builds and caches the expensive shared assets (recogniser,
// emissions, corpus, classifiers) across experiments, so `-all` does not
// pay for them repeatedly. One Suite may serve concurrent trials: the
// cached assets are read-only once built, and all fan-out goes through
// the suite's Runner.
type Suite struct {
	Opt Options

	runner *Runner

	once    sync.Once
	rec     *asr.Recognizer
	command voice.Command
	cmdSig  *audio.Signal

	corpusOnce sync.Once
	corpusErr  error
	train      []defense.Sample
	test       []defense.Sample
	testRecs   []Recording

	svmOnce sync.Once
	svm     *defense.LinearSVM
	svmErr  error
}

// NewSuite returns a Suite with the given options.
func NewSuite(opt Options) *Suite {
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	return &Suite{Opt: opt, runner: NewRunner(opt.Parallel)}
}

// Runner exposes the suite's trial engine, e.g. for driving ad-hoc
// sweeps with the same pool the experiments use.
func (s *Suite) Runner() *Runner { return s.runner }

// IDs lists the experiment identifiers in run order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		// E1..E13 numeric order.
		var a, b int
		fmt.Sscanf(ids[i], "E%d", &a)
		fmt.Sscanf(ids[j], "E%d", &b)
		return a < b
	})
	return ids
}

// Describe returns the one-line description of an experiment id.
func Describe(id string) string { return registry[id].desc }

// Run executes one experiment, writing its tables to w.
func (s *Suite) Run(id string, w io.Writer) error {
	e, ok := registry[id]
	if !ok {
		return fmt.Errorf("experiment: unknown id %q (have %v)", id, IDs())
	}
	return e.run(s, w)
}

type entry struct {
	desc string
	run  func(*Suite, io.Writer) error
}

var registry = map[string]entry{
	"E1":  {"demo: normal voice vs attack ultrasound vs recording", (*Suite).runE1},
	"E2":  {"single-speaker leakage and audibility vs input power", (*Suite).runE2},
	"E3":  {"leakage vs number of array elements at fixed power", (*Suite).runE3},
	"E4":  {"word accuracy vs distance: baseline vs long-range", (*Suite).runE4},
	"E5":  {"activation/injection success rate vs distance per device", (*Suite).runE5},
	"E6":  {"baseline attack range vs input power (Song-Mittal Table 1)", (*Suite).runE6},
	"E7":  {"success at fixed range (phone@3m, echo@2m, long-range@7.6m)", (*Suite).runE7},
	"E8":  {"ablation: carrier frequency, segment count, carrier power fraction", (*Suite).runE8},
	"E9":  {"defense trace feature distributions (legit vs attack)", (*Suite).runE9},
	"E10": {"defense correlation feature distributions", (*Suite).runE10},
	"E11": {"defense classifier accuracy / ROC / AUC", (*Suite).runE11},
	"E12": {"defense robustness: false positives across benign conditions", (*Suite).runE12},
	"E13": {"adaptive attacker: residual trace and detection vs estimation error", (*Suite).runE13},
}

// ---- shared fixtures ----

func (s *Suite) fixtures() {
	s.once.Do(func() {
		s.rec = core.NewRecognizer(voice.DefaultVoice())
		s.command, _ = voice.FindCommand("photo")
		s.cmdSig = voice.MustSynthesize(s.command.Text, voice.DefaultVoice(), 48000)
	})
}

func (s *Suite) scenario() *core.Scenario {
	sc := core.DefaultScenario()
	sc.Seed = s.Opt.Seed
	return sc
}

func (s *Suite) trials(full int) int {
	if s.Opt.Quick {
		if full >= 20 {
			return 5
		}
		if full >= 3 {
			return 2
		}
	}
	return full
}

// corpus builds (once) the labelled train/test feature sets for the
// defense experiments.
func (s *Suite) corpus() error {
	s.corpusOnce.Do(func() {
		s.fixtures()
		cfg := DefaultCorpusConfig(s.scenario())
		cfg.Runner = s.runner
		if s.Opt.Quick {
			cfg = QuickCorpusConfig(cfg)
		}
		legit, err := BuildLegit(cfg)
		if err != nil {
			s.corpusErr = err
			return
		}
		attacks, err := BuildAttacks(cfg)
		if err != nil {
			s.corpusErr = err
			return
		}
		all := append(legit, attacks...)
		trainRecs, testRecs := SplitTrainTest(all)
		s.testRecs = testRecs
		s.train = extractSamples(s.runner, trainRecs)
		s.test = extractSamples(s.runner, testRecs)
	})
	return s.corpusErr
}

// extractSamples computes feature vectors for a recording set on the
// pool, preserving input order.
func extractSamples(r *Runner, recs []Recording) []defense.Sample {
	out := make([]defense.Sample, len(recs))
	r.Each(len(recs), func(i int) {
		out[i] = defense.Sample{X: defense.Extract(recs[i].Signal).Vector(), Attack: recs[i].Attack}
	})
	return out
}

// classifier trains (once) the experiment SVM on the corpus.
func (s *Suite) classifier() (*defense.LinearSVM, error) {
	if err := s.corpus(); err != nil {
		return nil, err
	}
	s.svmOnce.Do(func() {
		s.svm, s.svmErr = defense.TrainSVM(s.train, 0.01, 60, s.Opt.Seed)
	})
	return s.svm, s.svmErr
}

// ---- E1 ----

func (s *Suite) runE1(w io.Writer) error {
	s.fixtures()
	sc := s.scenario()
	atk, err := attack.Baseline(s.cmdSig, attack.DefaultBaselineOptions())
	if err != nil {
		return err
	}
	e, run, err := sc.Simulate(s.cmdSig, core.KindBaseline, 18.7, 2, 1)
	if err != nil {
		return err
	}
	bandShare := func(sig *audio.Signal, lo, hi float64) float64 {
		psd := dsp.Welch(sig.Samples, 8192)
		in := dsp.BandPower(psd, sig.Rate, 8192, lo, hi)
		tot := dsp.BandPower(psd, sig.Rate, 8192, 0, sig.Rate/2)
		if tot == 0 {
			return 0
		}
		return in / tot
	}
	t := &Table{
		Title:   "E1 demo: 'ok google, take a picture' at 2 m, 18.7 W, fc=30 kHz",
		Columns: []string{"signal", "rate_hz", "dur_s", "share<20kHz", "share>20kHz", "peak"},
	}
	signals := []struct {
		name string
		sig  *audio.Signal
	}{
		{"normal voice", s.cmdSig},
		{"attack ultrasound", atk},
		{"mic recording", run.Recording},
	}
	rows, _ := s.parallelRows(len(signals), func(i int) ([]interface{}, error) {
		sig := signals[i].sig
		return []interface{}{signals[i].name, sig.Rate, sig.Duration(),
			bandShare(sig, 0, 20000), bandShare(sig, 20000, sig.Rate/2), sig.Peak()}, nil
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.Render(w)

	// Does the recording carry the command? Envelope correlation + ASR.
	// The two verdicts are independent, so they share the pool.
	var corr float64
	var res asr.Result
	s.runner.Each(2, func(i int) {
		switch i {
		case 0:
			ref := s.cmdSig.Clone()
			ref.Samples = dsp.LowPassFIR(511, 8000/ref.Rate).Apply(ref.Samples)
			envA := dsp.SmoothedEnvelope(ref.Samples, ref.Rate, 24)
			recAt48 := run.Recording.Resampled(48000)
			envB := dsp.SmoothedEnvelope(recAt48.Samples, 48000, 24)
			corr, _ = dsp.MaxCorrelationLag(envA, envB, 4800)
		case 1:
			res = s.rec.Recognize(run.Recording)
		}
	})
	t2 := &Table{Title: "E1 verdicts", Columns: []string{"metric", "value"}}
	t2.AddRow("envelope correlation (recording vs voice)", corr)
	t2.AddRow("ASR recognised as", res.CommandID)
	t2.AddRow("ASR distance", res.Distance)
	t2.AddRow("leakage at bystander (dB SPL, A-wt)", e.LeakageSPL)
	t2.AddRow("phone activated (injection success)", res.Accepted && res.CommandID == "photo")
	t2.Render(w)
	return nil
}

// ---- E2 ----

func (s *Suite) runE2(w io.Writer) error {
	s.fixtures()
	sc := s.scenario()
	powers := []float64{0.25, 0.5, 1, 2, 4, 9.2, 18.7, 23.7, 40}
	if s.Opt.Quick {
		powers = []float64{0.5, 2, 18.7, 40}
	}
	t := &Table{
		Title: fmt.Sprintf("E2 single-speaker leakage vs power (bystander at %.1f m)",
			sc.BystanderDistance),
		Columns: []string{"power_w", "leak_spl_dba", "margin_db", "audible", "success@3m"},
	}
	trials := s.trials(5)
	rows, err := s.parallelRows(len(powers), func(i int) ([]interface{}, error) {
		p := powers[i]
		e, _, err := sc.Simulate(s.cmdSig, core.KindBaseline, p, 3, 0)
		if err != nil {
			return nil, err
		}
		sr := s.runner.SuccessRate(sc, s.rec, e, 3, s.command.ID, trials)
		return []interface{}{p, e.LeakageSPL, e.LeakageMargin, e.LeakageAudible, sr}, nil
	})
	if err != nil {
		return err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.Render(w)
	fmt.Fprintln(w, "shape check: leakage grows ~2 dB per dB of power and crosses the")
	fmt.Fprintln(w, "hearing threshold near ~1 W, far below the power needed for range.")
	return nil
}

// ---- E3 ----

func (s *Suite) runE3(w io.Writer) error {
	s.fixtures()
	sc := s.scenario()
	const power = 40.0
	segs := []int{2, 6, 15, 60, 160, 320}
	if s.Opt.Quick {
		segs = []int{2, 15, 60}
	}
	t := &Table{
		Title:   "E3 leakage vs array segmentation at 40 W total",
		Columns: []string{"elements", "slice_width_hz", "leak_spl_dba", "margin_db", "audible"},
	}
	// Single-speaker reference.
	eb, _, err := sc.Simulate(s.cmdSig, core.KindBaseline, power, 3, 0)
	if err != nil {
		return err
	}
	t.AddRow(1, 16000.0, eb.LeakageSPL, eb.LeakageMargin, eb.LeakageAudible)
	rows, err := s.parallelRows(len(segs), func(i int) ([]interface{}, error) {
		o := attack.DefaultLongRangeOptions()
		o.NumSegments = segs[i]
		e, err := sc.EmitLongRange(s.cmdSig, power, o, speaker.UltrasonicElement)
		if err != nil {
			return nil, err
		}
		return []interface{}{e.Elements, o.SliceWidthHz(), e.LeakageSPL, e.LeakageMargin, e.LeakageAudible}, nil
	})
	if err != nil {
		return err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.Render(w)
	fmt.Fprintln(w, "shape check: splitting the spectrum drives leakage below the hearing")
	fmt.Fprintln(w, "threshold; slice widths under ~50 Hz confine residue to the infrasonic band.")
	return nil
}

// ---- E4 ----

func (s *Suite) runE4(w io.Writer) error {
	s.fixtures()
	sc := s.scenario()
	eb, _, err := sc.Simulate(s.cmdSig, core.KindBaseline, 18.7, 3, 0)
	if err != nil {
		return err
	}
	el, _, err := sc.Simulate(s.cmdSig, core.KindLongRange, 300, 3, 0)
	if err != nil {
		return err
	}
	dists := []float64{1, 2, 3, 4, 5, 6, 8, 10}
	if s.Opt.Quick {
		dists = []float64{1, 3, 6, 10}
	}
	t := &Table{
		Title:   "E4 word accuracy vs distance (baseline 18.7 W vs long-range 300 W)",
		Columns: []string{"distance_m", "baseline_wordacc", "longrange_wordacc", "baseline_dist", "longrange_dist"},
	}
	rows, _ := s.parallelRows(len(dists), func(i int) ([]interface{}, error) {
		d := dists[i]
		rb := sc.Deliver(eb, d, 1)
		rl := sc.Deliver(el, d, 1)
		return []interface{}{d,
			s.rec.WordAccuracy(rb.Recording, s.command.ID),
			s.rec.WordAccuracy(rl.Recording, s.command.ID),
			s.rec.Recognize(rb.Recording).Distance,
			s.rec.Recognize(rl.Recording).Distance}, nil
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.Render(w)
	fmt.Fprintln(w, "shape check: the long-range attack sustains accuracy several times")
	fmt.Fprintln(w, "farther than the single-speaker baseline at audibility-equivalent settings.")
	return nil
}

// ---- E5 ----

func (s *Suite) runE5(w io.Writer) error {
	s.fixtures()
	devices := []func() *mic.Device{mic.AndroidPhone, mic.AmazonEcho}
	dists := []float64{1, 1.5, 2, 2.5, 3, 3.5, 4, 5}
	if s.Opt.Quick {
		dists = []float64{1, 2, 3, 4}
	}
	trials := s.trials(20)
	t := &Table{
		Title:   fmt.Sprintf("E5 injection success rate vs distance (%d trials/point)", trials),
		Columns: []string{"distance_m", "phone_baseline", "echo_baseline", "phone_longrange", "echo_longrange"},
	}
	type combo struct {
		devFn func() *mic.Device
		kind  core.AttackKind
	}
	var combos []combo
	for _, devFn := range devices {
		for _, kind := range []core.AttackKind{core.KindBaseline, core.KindLongRange} {
			combos = append(combos, combo{devFn, kind})
		}
	}
	keys := make([]string, len(combos))
	perCombo := make([]map[float64]float64, len(combos))
	errs := make([]error, len(combos))
	s.runner.Each(len(combos), func(ci int) {
		c := combos[ci]
		sc := s.scenario()
		sc.Device = c.devFn()
		power := 18.7
		if c.kind == core.KindLongRange {
			power = 300
		}
		e, _, err := sc.Simulate(s.cmdSig, c.kind, power, 2, 0)
		if err != nil {
			errs[ci] = err
			return
		}
		keys[ci] = sc.Device.Name + "/" + c.kind.String()
		m := make(map[float64]float64)
		for _, d := range dists {
			m[d] = s.runner.SuccessRate(sc, s.rec, e, d, s.command.ID, trials)
		}
		perCombo[ci] = m
	})
	if err := firstError(errs); err != nil {
		return err
	}
	rates := make(map[string]map[float64]float64)
	for ci, key := range keys {
		rates[key] = perCombo[ci]
	}
	for _, d := range dists {
		t.AddRow(d,
			rates["android-phone/baseline"][d],
			rates["amazon-echo/baseline"][d],
			rates["android-phone/long-range"][d],
			rates["amazon-echo/long-range"][d])
	}
	t.Render(w)
	fmt.Fprintln(w, "shape check: Echo curves sit below phone curves (plastic grille);")
	fmt.Fprintln(w, "long-range curves extend far beyond baseline curves.")
	return nil
}

// ---- E6 ----

func (s *Suite) runE6(w io.Writer) error {
	s.fixtures()
	powers := []float64{9.2, 11.8, 14.8, 18.7, 23.7}
	if s.Opt.Quick {
		powers = []float64{9.2, 18.7, 23.7}
	}
	grid := dsp.Linspace(0.5, 6, 23) // 0.25 m steps
	if s.Opt.Quick {
		grid = dsp.Linspace(0.5, 6, 12)
	}
	trials := s.trials(3)
	t := &Table{
		Title:   "E6 baseline attack range vs input power (cf. Song-Mittal Table 1)",
		Columns: []string{"power_w", "phone_range_cm", "echo_range_cm", "paper_phone_cm", "paper_echo_cm"},
	}
	paperPhone := map[float64]float64{9.2: 222, 11.8: 255, 14.8: 277, 18.7: 313, 23.7: 354}
	paperEcho := map[float64]float64{9.2: 145, 11.8: 168, 14.8: 187, 18.7: 213, 23.7: 239}
	devFns := []func() *mic.Device{mic.AndroidPhone, mic.AmazonEcho}
	// Flatten power x device into one batch so the pool stays busy even
	// when one cell's range probe exits early.
	ranges := make([][2]float64, len(powers))
	errs := make([]error, len(powers)*len(devFns))
	s.runner.Each(len(powers)*len(devFns), func(cell int) {
		pi, di := cell/len(devFns), cell%len(devFns)
		sc := s.scenario()
		sc.Device = devFns[di]()
		e, _, err := sc.Simulate(s.cmdSig, core.KindBaseline, powers[pi], 2, 0)
		if err != nil {
			errs[cell] = err
			return
		}
		ranges[pi][di] = s.runner.MaxRange(sc, s.rec, e, s.command.ID, grid, trials, 0.5) * 100
	})
	if err := firstError(errs); err != nil {
		return err
	}
	for pi, p := range powers {
		t.AddRow(p, ranges[pi][0], ranges[pi][1], paperPhone[p], paperEcho[p])
	}
	t.Render(w)
	fmt.Fprintln(w, "shape check: range grows monotonically with power; Echo < phone at")
	fmt.Fprintln(w, "every power (its grille attenuates ultrasound ~8 dB more).")
	return nil
}

// ---- E7 ----

func (s *Suite) runE7(w io.Writer) error {
	s.fixtures()
	trials := s.trials(50)
	t := &Table{
		Title:   fmt.Sprintf("E7 success at fixed range (%d trials)", trials),
		Columns: []string{"setup", "distance_m", "success_rate", "paper"},
	}
	// The three rigs of the paper's headline results. The Echo command in
	// the paper is the milk command; use it for fidelity.
	type setup struct {
		name     string
		distance float64
		paper    string
		run      func() (float64, error)
	}
	setups := []setup{
		{"phone/baseline/18.7W", 3.0, "1.00", func() (float64, error) {
			// Phone @ 3 m, baseline 18.7 W (paper: 100%).
			sc := s.scenario()
			e, _, err := sc.Simulate(s.cmdSig, core.KindBaseline, 18.7, 3, 0)
			if err != nil {
				return 0, err
			}
			return s.runner.SuccessRate(sc, s.rec, e, 3, s.command.ID, trials), nil
		}},
		{"echo/baseline/18.7W", 2.0, "0.80", func() (float64, error) {
			// Echo @ 2 m, baseline 18.7 W (paper: 80%).
			milk, _ := voice.FindCommand("milk")
			milkSig := voice.MustSynthesize(milk.Text, voice.DefaultVoice(), 48000)
			sc := s.scenario()
			sc.Device = mic.AmazonEcho()
			e, _, err := sc.Simulate(milkSig, core.KindBaseline, 18.7, 2, 0)
			if err != nil {
				return 0, err
			}
			return s.runner.SuccessRate(sc, s.rec, e, 2, milk.ID, trials), nil
		}},
		{"phone/long-range/300W", 7.6, "high", func() (float64, error) {
			// Long-range @ 7.6 m (25 ft), phone (NSDI headline).
			sc := s.scenario()
			e, _, err := sc.Simulate(s.cmdSig, core.KindLongRange, 300, 7.6, 0)
			if err != nil {
				return 0, err
			}
			return s.runner.SuccessRate(sc, s.rec, e, 7.6, s.command.ID, trials), nil
		}},
	}
	rates := make([]float64, len(setups))
	errs := make([]error, len(setups))
	s.runner.Each(len(setups), func(i int) {
		rates[i], errs[i] = setups[i].run()
	})
	if err := firstError(errs); err != nil {
		return err
	}
	for i, st := range setups {
		t.AddRow(st.name, st.distance, rates[i], st.paper)
	}
	t.Render(w)
	return nil
}

// ---- E8 ----

func (s *Suite) runE8(w io.Writer) error {
	s.fixtures()
	sc := s.scenario()

	// Carrier frequency sweep.
	freqs := []float64{28000, 30000, 34000, 38000, 44000}
	if s.Opt.Quick {
		freqs = []float64{28000, 34000, 44000}
	}
	t := &Table{
		Title:   "E8a carrier frequency ablation (baseline, 18.7 W, 3 m)",
		Columns: []string{"carrier_hz", "asr_dist@3m", "wordacc@3m", "leak_margin_db"},
	}
	rows, err := s.parallelRows(len(freqs), func(i int) ([]interface{}, error) {
		fc := freqs[i]
		o := attack.DefaultBaselineOptions()
		o.CarrierHz = fc
		e, err := sc.EmitBaseline(s.cmdSig, 18.7, o, speaker.FostexTweeter())
		if err != nil {
			return nil, err
		}
		r := sc.Deliver(e, 3, 1)
		return []interface{}{fc, s.rec.Recognize(r.Recording).Distance,
			s.rec.WordAccuracy(r.Recording, s.command.ID), e.LeakageMargin}, nil
	})
	if err != nil {
		return err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.Render(w)
	fmt.Fprintln(w, "shape check: higher carriers suffer more atmospheric absorption and")
	fmt.Fprintln(w, "transducer rolloff — recovered quality degrades with fc.")

	// Segment count sweep (recovered quality at fixed power).
	segs := []int{6, 15, 60, 160}
	if s.Opt.Quick {
		segs = []int{15, 60}
	}
	t2 := &Table{
		Title:   "E8b segment-count ablation (long-range, 300 W, 5 m)",
		Columns: []string{"segments", "slice_width_hz", "asr_dist@5m", "leak_margin_db"},
	}
	rows2, err := s.parallelRows(len(segs), func(i int) ([]interface{}, error) {
		o := attack.DefaultLongRangeOptions()
		o.NumSegments = segs[i]
		e, err := sc.EmitLongRange(s.cmdSig, 300, o, speaker.UltrasonicElement)
		if err != nil {
			return nil, err
		}
		r := sc.Deliver(e, 5, 1)
		return []interface{}{segs[i], o.SliceWidthHz(), s.rec.Recognize(r.Recording).Distance, e.LeakageMargin}, nil
	})
	if err != nil {
		return err
	}
	for _, row := range rows2 {
		t2.AddRow(row...)
	}
	t2.Render(w)

	// Carrier power fraction sweep.
	fracs := []float64{0, 0.3, 0.7, 0.95}
	t3 := &Table{
		Title:   "E8c carrier power fraction ablation (long-range, 300 W, 5 m; 0 = auto)",
		Columns: []string{"carrier_frac", "asr_dist@5m", "recording_rms"},
	}
	rows3, err := s.parallelRows(len(fracs), func(i int) ([]interface{}, error) {
		o := attack.DefaultLongRangeOptions()
		o.CarrierPowerFraction = fracs[i]
		e, err := sc.EmitLongRange(s.cmdSig, 300, o, speaker.UltrasonicElement)
		if err != nil {
			return nil, err
		}
		r := sc.Deliver(e, 5, 1)
		return []interface{}{fracs[i], s.rec.Recognize(r.Recording).Distance, r.Recording.RMS()}, nil
	})
	if err != nil {
		return err
	}
	for _, row := range rows3 {
		t3.AddRow(row...)
	}
	t3.Render(w)
	return nil
}

// ---- E9/E10 helpers ----

type distSummary struct {
	n                   int
	mean, std, min, max float64
}

func summarize(vals []float64) distSummary {
	d := distSummary{n: len(vals), min: math.Inf(1), max: math.Inf(-1)}
	if len(vals) == 0 {
		return d
	}
	d.mean = dsp.Mean(vals)
	d.std = dsp.StdDev(vals)
	for _, v := range vals {
		if v < d.min {
			d.min = v
		}
		if v > d.max {
			d.max = v
		}
	}
	return d
}

func (s *Suite) featureDistTable(w io.Writer, title string, pick func(defense.Features) float64) error {
	if err := s.corpus(); err != nil {
		return err
	}
	vals := make([]float64, len(s.testRecs))
	s.runner.Each(len(s.testRecs), func(i int) {
		vals[i] = pick(defense.Extract(s.testRecs[i].Signal))
	})
	var legit, attackVals []float64
	for i, r := range s.testRecs {
		if r.Attack {
			attackVals = append(attackVals, vals[i])
		} else {
			legit = append(legit, vals[i])
		}
	}
	t := &Table{Title: title, Columns: []string{"class", "n", "mean", "std", "min", "max"}}
	l, a := summarize(legit), summarize(attackVals)
	t.AddRow("legitimate", l.n, l.mean, l.std, l.min, l.max)
	t.AddRow("attack", a.n, a.mean, a.std, a.min, a.max)
	t.Render(w)
	return nil
}

func (s *Suite) runE9(w io.Writer) error {
	if err := s.featureDistTable(w, "E9 trace-band (16-60 Hz) noise-subtracted SNR feature",
		func(f defense.Features) float64 { return f.TraceSNR }); err != nil {
		return err
	}
	if err := s.featureDistTable(w, "E9b high-band (>8.5 kHz) noise-subtracted SNR feature",
		func(f defense.Features) float64 { return f.HighSNR }); err != nil {
		return err
	}
	fmt.Fprintln(w, "shape check: attack distributions sit decades above legitimate ones.")
	return nil
}

func (s *Suite) runE10(w io.Writer) error {
	if err := s.featureDistTable(w, "E10 low-band / squared-envelope correlation feature",
		func(f defense.Features) float64 { return f.LowEnvCorr }); err != nil {
		return err
	}
	fmt.Fprintln(w, "shape check: attack recordings correlate with their own squared envelope.")
	return nil
}

// ---- E11 ----

func (s *Suite) runE11(w io.Writer) error {
	svm, err := s.classifier()
	if err != nil {
		return err
	}
	lr, err := defense.TrainLogistic(s.train, 0.5, 400)
	if err != nil {
		return err
	}
	evalModel := func(name string, predict func([]float64) bool, score func([]float64) float64) {
		pred := make([]bool, len(s.test))
		truth := make([]bool, len(s.test))
		scores := make([]float64, len(s.test))
		s.runner.Each(len(s.test), func(i int) {
			smp := s.test[i]
			pred[i] = predict(smp.X)
			truth[i] = smp.Attack
			scores[i] = score(smp.X)
		})
		m := defense.Evaluate(pred, truth)
		auc := defense.AUC(defense.ROC(scores, truth))
		t := &Table{
			Title:   fmt.Sprintf("E11 %s on held-out recordings (n=%d)", name, len(s.test)),
			Columns: []string{"accuracy", "precision", "recall", "f1", "fp", "fn", "auc"},
		}
		t.AddRow(m.Accuracy, m.Precision, m.Recall, m.F1, m.FP, m.FN, auc)
		t.Render(w)
	}
	evalModel("linear SVM", svm.Predict, svm.Score)
	evalModel("logistic regression", lr.Predict, lr.Probability)

	// Feature ablation: how discriminative is each feature alone? AUC of
	// the raw feature value as a score over all corpus recordings
	// (orientation-corrected, so 0.5 = useless, 1.0 = perfect).
	ta := &Table{
		Title:   "E11b single-feature AUC (ablation)",
		Columns: []string{"feature", "auc"},
	}
	all := append(append([]defense.Sample{}, s.train...), s.test...)
	names := defense.FeatureNames()
	aucs := make([]float64, len(names))
	s.runner.Each(len(names), func(i int) {
		var scores []float64
		var truth []bool
		for _, smp := range all {
			scores = append(scores, smp.X[i])
			truth = append(truth, smp.Attack)
		}
		auc := defense.AUC(defense.ROC(scores, truth))
		if auc < 0.5 {
			auc = 1 - auc
		}
		aucs[i] = auc
	})
	for i, name := range names {
		ta.AddRow(name, aucs[i])
	}
	ta.Render(w)
	fmt.Fprintln(w, "shape check: near-perfect separation (paper reports ~99% accuracy);")
	fmt.Fprintln(w, "the noise-subtracted trace/high-band features carry most of the signal.")
	return nil
}

// ---- E12 ----

func (s *Suite) runE12(w io.Writer) error {
	svm, err := s.classifier()
	if err != nil {
		return err
	}
	s.fixtures()
	t := &Table{
		Title:   "E12 defense false-positive rate across benign conditions",
		Columns: []string{"condition", "n", "false_positive_rate"},
	}
	trials := s.trials(3)
	conditions := []struct {
		name    string
		ambient float64
		spl     float64
		profile voice.Profile
		dist    float64
	}{
		{"quiet room, normal voice", 35, 66, voice.DefaultVoice(), 2},
		{"noisy room (50 dB)", 50, 66, voice.DefaultVoice(), 2},
		{"loud close talker", 40, 76, voice.DefaultVoice(), 1},
		{"female talker", 40, 66, voice.Profiles()[2], 2},
		{"child talker", 40, 66, voice.Profiles()[4], 2},
		{"distant quiet talker", 40, 60, voice.DefaultVoice(), 3.5},
	}
	fpRates := make([][2]int, len(conditions)) // {false positives, n}
	s.runner.Each(len(conditions), func(ci int) {
		c := conditions[ci]
		sc := s.scenario()
		sc.AmbientSPL = c.ambient
		fp, n := 0, 0
		for _, id := range []string{"photo", "music"} {
			cmd, _ := voice.FindCommand(id)
			sig := voice.MustSynthesize(cmd.Text, c.profile, 48000)
			e := sc.EmitVoice(sig, c.spl)
			specs := make([]TrialSpec, trials)
			for tr := range specs {
				specs[tr] = TrialSpec{Scenario: sc, Emission: e, Distance: c.dist, Trial: int64(100 + tr)}
			}
			for _, res := range s.runner.Run(specs, func(_ TrialSpec, run *core.RunResult) float64 {
				if svm.Predict(defense.Extract(run.Recording).Vector()) {
					return 1
				}
				return 0
			}) {
				if res.Value > 0 {
					fp++
				}
				n++
			}
		}
		fpRates[ci] = [2]int{fp, n}
	})
	for ci, c := range conditions {
		fp, n := fpRates[ci][0], fpRates[ci][1]
		t.AddRow(c.name, n, float64(fp)/float64(n))
	}
	t.Render(w)
	fmt.Fprintln(w, "shape check: false positives stay rare across talkers, loudness and noise.")
	return nil
}

// ---- E13 ----

func (s *Suite) runE13(w io.Writer) error {
	svm, err := s.classifier()
	if err != nil {
		return err
	}
	thr, err := defense.CalibrateThresholds(s.train)
	if err != nil {
		return err
	}
	s.fixtures()
	sc := s.scenario()
	errsGrid := []float64{0, 0.1, 0.25, 0.5, 1.0}
	if s.Opt.Quick {
		errsGrid = []float64{0, 0.5, 1.0}
	}
	trials := s.trials(5)
	t := &Table{
		Title:   "E13 adaptive attacker: trace cancellation vs detection",
		Columns: []string{"est_error", "trace_snr", "high_snr", "svm_detect", "threshold_detect", "asr_success"},
	}
	type e13Trial struct {
		trace, high    float64
		svm, thr, succ bool
	}
	rows, err := s.parallelRows(len(errsGrid), func(i int) ([]interface{}, error) {
		eps := errsGrid[i]
		o := attack.DefaultAdaptiveOptions()
		o.EstimationError = eps
		drive, err := attack.AdaptiveBaseline(s.cmdSig, o)
		if err != nil {
			return nil, err
		}
		em := speaker.FostexTweeter().Emit(drive, 18.7)
		e := &core.Emission{Field: em}
		res := make([]e13Trial, trials)
		s.runner.Each(trials, func(tr int) {
			r := sc.Deliver(e, 2, int64(200+tr))
			f := defense.Extract(r.Recording)
			res[tr] = e13Trial{
				trace: f.TraceSNR,
				high:  f.HighSNR,
				svm:   svm.Predict(f.Vector()),
				thr:   thr.Predict(f.Vector()),
				succ:  s.rec.InjectionSuccess(r.Recording, s.command.ID),
			}
		})
		detSVM, detThr, succ := 0, 0, 0
		var traceSum, highSum float64
		for _, tr := range res {
			traceSum += tr.trace
			highSum += tr.high
			if tr.svm {
				detSVM++
			}
			if tr.thr {
				detThr++
			}
			if tr.succ {
				succ++
			}
		}
		return []interface{}{eps, traceSum / float64(trials), highSum / float64(trials),
			float64(detSVM) / float64(trials), float64(detThr) / float64(trials),
			float64(succ) / float64(trials)}, nil
	})
	if err != nil {
		return err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.Render(w)
	fmt.Fprintln(w, "shape check: cancelling the low band cannot remove the high-band m^2")
	fmt.Fprintln(w, "residue. The per-feature threshold detector (which cannot trade one")
	fmt.Fprintln(w, "feature against another) keeps firing even for an oracle attacker;")
	fmt.Fprintln(w, "a small-corpus SVM may under-weight the high band (train full-size).")
	return nil
}

// firstError returns the first non-nil error of a per-cell error slice,
// mirroring the first error a serial loop would have returned.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// parallelRows evaluates n table rows on the suite's pool, preserving
// row order; on failure it reports the lowest-index error, matching the
// abort order of the serial loop it replaces.
func (s *Suite) parallelRows(n int, cell func(int) ([]interface{}, error)) ([][]interface{}, error) {
	rows := make([][]interface{}, n)
	errs := make([]error, n)
	s.runner.Each(n, func(i int) { rows[i], errs[i] = cell(i) })
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return rows, nil
}

// ---- misc ----

// LeakageOfEmission re-exports the leakage analysis for benches.
func LeakageOfEmission(e *core.Emission) (float64, bool) {
	return e.LeakageSPL, e.LeakageAudible
}

// AudibilityAt reports audibility of a raw field at a distance — a
// convenience wrapper for examples.
func AudibilityAt(field *audio.Signal, d float64) (bool, float64) {
	return psycho.AudibleAtDistance(field, d, acoustics.DefaultAir())
}
