package experiment

import (
	"fmt"
	"io"
	"math"
	"sync"

	"inaudible/internal/acoustics"
	"inaudible/internal/asr"
	"inaudible/internal/attack"
	"inaudible/internal/audio"
	"inaudible/internal/core"
	"inaudible/internal/defense"
	"inaudible/internal/dsp"
	"inaudible/internal/psycho"
	"inaudible/internal/speaker"
	"inaudible/internal/voice"
)

// Options scales the experiment grids.
type Options struct {
	// Quick shrinks trial counts and grids for smoke runs and benchmarks.
	Quick bool
	// Seed feeds every scenario.
	Seed int64
	// Parallel is the trial-engine pool size: 0 selects GOMAXPROCS, 1
	// forces serial execution. Output is byte-identical across pool
	// sizes at a fixed Seed; only the wall clock changes.
	Parallel int
	// CacheDir adds an on-disk layer to the trial cache, carrying trial
	// cells across runs. Empty keeps the cache in-memory only. Output is
	// byte-identical cache cold or warm.
	CacheDir string
}

// Suite lazily builds and caches the expensive shared assets (recogniser,
// emissions, corpus, classifiers) across experiments, so `-all` does not
// pay for them repeatedly, and owns the content-addressed trial cache
// that shares delivered cells across experiments. One Suite may serve
// concurrent trials: the cached assets are read-only once built, and all
// fan-out goes through the suite's Runner.
type Suite struct {
	Opt Options

	runner *Runner
	cache  *Cache

	once    sync.Once
	rec     *asr.Recognizer
	command voice.Command
	cmdSig  *audio.Signal

	// emissions memoizes attack emissions by (kind, power, command):
	// every sweep cell needing one shares a single build.
	emissions sync.Map // emissionKey -> *emissionEntry

	corpusOnce sync.Once
	corpusErr  error
	train      []defense.Sample
	test       []defense.Sample
	testRecs   []Recording

	svmOnce sync.Once
	svm     *defense.LinearSVM
	svmErr  error
}

// NewSuite returns a Suite with the given options.
func NewSuite(opt Options) *Suite {
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	c := NewCache(opt.CacheDir)
	return &Suite{Opt: opt, cache: c, runner: NewRunner(opt.Parallel).WithCache(c)}
}

// Runner exposes the suite's trial engine, e.g. for driving ad-hoc
// sweeps with the same pool the experiments use.
func (s *Suite) Runner() *Runner { return s.runner }

// Cache exposes the suite's trial cache (hit/miss stats, ad-hoc sweeps).
func (s *Suite) Cache() *Cache { return s.cache }

// runOrder is the explicit experiment run order — the registry's
// companion, so ordering never depends on parsing ids.
var runOrder = []string{
	"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13",
}

// IDs lists the experiment identifiers in run order.
func IDs() []string { return append([]string(nil), runOrder...) }

// Describe returns the one-line description of an experiment id.
func Describe(id string) string { return registry[id].desc }

// entry pairs an experiment's description with the builder of its
// declarative section list.
type entry struct {
	desc  string
	build func(*Suite) ([]Section, error)
}

// Report builds and evaluates one experiment: every sweep's grid fans
// out on the suite pool through the trial cache, and the resulting
// tables and notes return in render order along with the cache traffic
// the evaluation generated.
func (s *Suite) Report(id string) (*Report, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown id %q (have %v)", id, IDs())
	}
	h0, m0 := s.cache.Stats()
	secs, err := e.build(s)
	if err != nil {
		return nil, err
	}
	rep, err := s.evalSections(id, secs)
	if err != nil {
		return nil, err
	}
	h1, m1 := s.cache.Stats()
	rep.CacheHits, rep.CacheMisses = h1-h0, m1-m0
	return rep, nil
}

// Run executes one experiment, writing its tables to w.
func (s *Suite) Run(id string, w io.Writer) error {
	rep, err := s.Report(id)
	if err != nil {
		return err
	}
	rep.Render(w)
	return nil
}

// ---- shared fixtures ----

func (s *Suite) fixtures() {
	s.once.Do(func() {
		s.rec = core.NewRecognizer(voice.DefaultVoice())
		s.command, _ = voice.FindCommand("photo")
		s.cmdSig = voice.MustSynthesize(s.command.Text, voice.DefaultVoice(), 48000)
	})
}

func (s *Suite) scenario() *core.Scenario {
	sc := core.DefaultScenario()
	sc.Seed = s.Opt.Seed
	return sc
}

func (s *Suite) trials(full int) int {
	if s.Opt.Quick {
		if full >= 20 {
			return 5
		}
		if full >= 3 {
			return 2
		}
	}
	return full
}

// quickFloats picks the full or Quick-mode variant of a float grid.
func (s *Suite) quickFloats(full, quick []float64) []float64 {
	if s.Opt.Quick {
		return quick
	}
	return full
}

// quickInts picks the full or Quick-mode variant of an int grid.
func (s *Suite) quickInts(full, quick []int) []int {
	if s.Opt.Quick {
		return quick
	}
	return full
}

// ---- emission memo ----

type emissionKey struct {
	kind  core.AttackKind
	power float64
	cmd   string
}

type emissionEntry struct {
	once sync.Once
	e    *core.Emission
	err  error
}

// emission builds (once) the attack emission for (kind, power) of the
// given command signal: the expensive per-element speaker physics is
// shared by every sweep cell and experiment that delivers it. cmdID
// names the command for the memo key.
func (s *Suite) emission(kind core.AttackKind, power float64, cmdID string, sig *audio.Signal) (*core.Emission, error) {
	v, _ := s.emissions.LoadOrStore(emissionKey{kind, power, cmdID}, &emissionEntry{})
	ent := v.(*emissionEntry)
	ent.once.Do(func() {
		sc := s.scenario()
		switch kind {
		case core.KindBaseline:
			ent.e, ent.err = sc.EmitBaseline(sig, power, attack.DefaultBaselineOptions(), speaker.FostexTweeter())
		case core.KindLongRange:
			ent.e, ent.err = sc.EmitLongRange(sig, power, attack.DefaultLongRangeOptions(), speaker.UltrasonicElement)
		default:
			ent.err = fmt.Errorf("experiment: unknown attack kind %v", kind)
		}
	})
	return ent.e, ent.err
}

// attackEmission is the emission memo over the suite's default command.
func (s *Suite) attackEmission(kind core.AttackKind, power float64) (*core.Emission, error) {
	s.fixtures()
	return s.emission(kind, power, s.command.ID, s.cmdSig)
}

// ---- corpus and classifiers ----

// corpus builds (once) the labelled train/test feature sets for the
// defense experiments.
func (s *Suite) corpus() error {
	s.corpusOnce.Do(func() {
		s.fixtures()
		cfg := DefaultCorpusConfig(s.scenario())
		cfg.Runner = s.runner
		if s.Opt.Quick {
			cfg = QuickCorpusConfig(cfg)
		}
		legit, err := BuildLegit(cfg)
		if err != nil {
			s.corpusErr = err
			return
		}
		attacks, err := BuildAttacks(cfg)
		if err != nil {
			s.corpusErr = err
			return
		}
		all := append(legit, attacks...)
		trainRecs, testRecs := SplitTrainTest(all)
		s.testRecs = testRecs
		s.train = extractSamples(s.runner, trainRecs)
		s.test = extractSamples(s.runner, testRecs)
	})
	return s.corpusErr
}

// extractSamples computes feature vectors for a recording set on the
// pool, preserving input order.
func extractSamples(r *Runner, recs []Recording) []defense.Sample {
	out := make([]defense.Sample, len(recs))
	r.Each(len(recs), func(i int) {
		out[i] = defense.Sample{X: defense.Extract(recs[i].Signal).Vector(), Attack: recs[i].Attack}
	})
	return out
}

// classifier trains (once) the experiment SVM on the corpus.
func (s *Suite) classifier() (*defense.LinearSVM, error) {
	if err := s.corpus(); err != nil {
		return nil, err
	}
	s.svmOnce.Do(func() {
		s.svm, s.svmErr = defense.TrainSVM(s.train, 0.01, 60, s.Opt.Seed)
	})
	return s.svm, s.svmErr
}

// ---- shared table builders (non-grid sections) ----

type distSummary struct {
	n                   int
	mean, std, min, max float64
}

func summarize(vals []float64) distSummary {
	d := distSummary{n: len(vals), min: math.Inf(1), max: math.Inf(-1)}
	if len(vals) == 0 {
		return d
	}
	d.mean = dsp.Mean(vals)
	d.std = dsp.StdDev(vals)
	for _, v := range vals {
		if v < d.min {
			d.min = v
		}
		if v > d.max {
			d.max = v
		}
	}
	return d
}

// featureTable builds the legit-vs-attack distribution table of one
// defense feature over the held-out corpus recordings; extraction fans
// out on the pool.
func (s *Suite) featureTable(title string, pick func(defense.Features) float64) TableFunc {
	return func() (*Table, error) {
		if err := s.corpus(); err != nil {
			return nil, err
		}
		vals := make([]float64, len(s.testRecs))
		s.runner.Each(len(s.testRecs), func(i int) {
			vals[i] = pick(defense.Extract(s.testRecs[i].Signal))
		})
		var legit, attackVals []float64
		for i, r := range s.testRecs {
			if r.Attack {
				attackVals = append(attackVals, vals[i])
			} else {
				legit = append(legit, vals[i])
			}
		}
		t := &Table{Title: title, Columns: []string{"class", "n", "mean", "std", "min", "max"}}
		l, a := summarize(legit), summarize(attackVals)
		t.AddRow("legitimate", l.n, l.mean, l.std, l.min, l.max)
		t.AddRow("attack", a.n, a.mean, a.std, a.min, a.max)
		return t, nil
	}
}

// modelTable evaluates one trained detector over the held-out test set
// on the pool and builds its metrics table.
func (s *Suite) modelTable(name string, predict func([]float64) bool, score func([]float64) float64) TableFunc {
	return func() (*Table, error) {
		pred := make([]bool, len(s.test))
		truth := make([]bool, len(s.test))
		scores := make([]float64, len(s.test))
		s.runner.Each(len(s.test), func(i int) {
			smp := s.test[i]
			pred[i] = predict(smp.X)
			truth[i] = smp.Attack
			scores[i] = score(smp.X)
		})
		m := defense.Evaluate(pred, truth)
		auc := defense.AUC(defense.ROC(scores, truth))
		t := &Table{
			Title:   fmt.Sprintf("E11 %s on held-out recordings (n=%d)", name, len(s.test)),
			Columns: []string{"accuracy", "precision", "recall", "f1", "fp", "fn", "auc"},
		}
		t.AddRow(m.Accuracy, m.Precision, m.Recall, m.F1, m.FP, m.FN, auc)
		return t, nil
	}
}

// firstError returns the first non-nil error of a per-cell error slice,
// mirroring the first error a serial loop would have returned.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ---- misc ----

// LeakageOfEmission re-exports the leakage analysis for benches.
func LeakageOfEmission(e *core.Emission) (float64, bool) {
	return e.LeakageSPL, e.LeakageAudible
}

// AudibilityAt reports audibility of a raw field at a distance — a
// convenience wrapper for examples.
func AudibilityAt(field *audio.Signal, d float64) (bool, float64) {
	return psycho.AudibleAtDistance(field, d, acoustics.DefaultAir())
}
