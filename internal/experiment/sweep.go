package experiment

import (
	"fmt"
	"io"
)

// This file is the declarative sweep engine behind the E1-E13 suite and
// the spec-driven custom experiments: an experiment body is data — named
// Axis grids, a Cell evaluator and an optional row Reduce — instead of a
// hand-rolled loop nest. The engine owns the fan-out (every grid cell
// runs on the suite's worker pool), the deterministic assembly order and
// the table rendering, so all thirteen experiments and any user-supplied
// sweep share one implementation of "evaluate a grid, build a table".

// Row is one table row before formatting.
type Row []interface{}

// Axis is one named dimension of a sweep grid.
type Axis struct {
	Name   string
	Values []interface{}
}

// FloatAxis builds an axis over float64 values.
func FloatAxis(name string, vals ...float64) Axis {
	a := Axis{Name: name, Values: make([]interface{}, len(vals))}
	for i, v := range vals {
		a.Values[i] = v
	}
	return a
}

// IntAxis builds an axis over int values.
func IntAxis(name string, vals ...int) Axis {
	a := Axis{Name: name, Values: make([]interface{}, len(vals))}
	for i, v := range vals {
		a.Values[i] = v
	}
	return a
}

// StrAxis builds an axis over string values.
func StrAxis(name string, vals ...string) Axis {
	a := Axis{Name: name, Values: make([]interface{}, len(vals))}
	for i, v := range vals {
		a.Values[i] = v
	}
	return a
}

// ValueAxis builds an axis over arbitrary values (device constructors,
// attack kinds, setup structs).
func ValueAxis(name string, vals ...interface{}) Axis {
	return Axis{Name: name, Values: vals}
}

// RangeAxis builds a float axis over the inclusive range start..stop in
// the given step (the `-sweep distance=1:15:1` grammar).
func RangeAxis(name string, start, stop, step float64) (Axis, error) {
	if step <= 0 {
		return Axis{}, fmt.Errorf("experiment: axis %s: non-positive step %v", name, step)
	}
	if stop < start {
		return Axis{}, fmt.Errorf("experiment: axis %s: stop %v before start %v", name, stop, start)
	}
	n := int((stop-start)/step+1e-9) + 1
	if n > 100_000 {
		return Axis{}, fmt.Errorf("experiment: axis %s: %d points is too many", name, n)
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = start + float64(i)*step
	}
	return FloatAxis(name, vals...), nil
}

// Len reports the number of grid values on the axis.
func (a Axis) Len() int { return len(a.Values) }

// Point is one cell of a sweep's cartesian grid: an index into every
// axis, with typed accessors by axis name.
type Point struct {
	axes []Axis
	idx  []int
}

// Value returns the point's value on the named axis.
func (p Point) Value(name string) interface{} {
	for i, a := range p.axes {
		if a.Name == name {
			return a.Values[p.idx[i]]
		}
	}
	panic(fmt.Sprintf("experiment: point has no axis %q", name))
}

// Ordinal returns the point's index along the named axis.
func (p Point) Ordinal(name string) int {
	for i, a := range p.axes {
		if a.Name == name {
			return p.idx[i]
		}
	}
	panic(fmt.Sprintf("experiment: point has no axis %q", name))
}

// Float returns the named axis value as a float64.
func (p Point) Float(name string) float64 { return p.Value(name).(float64) }

// Int returns the named axis value as an int.
func (p Point) Int(name string) int { return p.Value(name).(int) }

// Str returns the named axis value as a string.
func (p Point) Str(name string) string { return p.Value(name).(string) }

// gridPoints enumerates the cartesian product of axes in row-major order:
// the last axis varies fastest, so all cells sharing a first-axis value
// are contiguous (the property PivotFirst relies on).
func gridPoints(axes []Axis) []Point {
	n := 1
	for _, a := range axes {
		n *= a.Len()
	}
	if len(axes) == 0 || n == 0 {
		return nil
	}
	pts := make([]Point, n)
	idx := make([]int, len(axes))
	for i := 0; i < n; i++ {
		pts[i] = Point{axes: axes, idx: append([]int(nil), idx...)}
		for d := len(axes) - 1; d >= 0; d-- {
			idx[d]++
			if idx[d] < axes[d].Len() {
				break
			}
			idx[d] = 0
		}
	}
	return pts
}

// Sweep is a declarative grid experiment: the cartesian product of Axes
// is evaluated by Cell on the suite's worker pool, and the results are
// assembled into one Table in deterministic grid order.
type Sweep struct {
	// Title and Columns shape the output table.
	Title   string
	Columns []string
	// Axes are the swept dimensions; the grid is their cartesian product.
	Axes []Axis
	// Prologue computes rows prepended before the grid rows (reference
	// conditions computed outside the grid, e.g. E3's single speaker).
	Prologue func() ([]Row, error)
	// Cell evaluates one grid point. Cells run concurrently on the pool
	// and must confine writes to their own state.
	Cell func(p Point) (Row, error)
	// Reduce assembles the table rows from every cell result (cells
	// arrive in grid order). nil emits one row per cell as-is.
	Reduce func(cells []Row) ([]Row, error)
	// Notes are shape-check lines printed after the table.
	Notes []string
}

// PivotFirst returns a Reduce that groups cells by the first axis: one
// output row per first-axis value, holding that value, the grouped cells'
// fields flattened in grid order, then tail's trailing columns (nil tail
// appends nothing). It is the standard shape of the paper's
// success-vs-distance and range-vs-power tables.
func PivotFirst(axes []Axis, tail func(rowVal interface{}) Row) func([]Row) ([]Row, error) {
	return func(cells []Row) ([]Row, error) {
		if len(axes) == 0 {
			return nil, fmt.Errorf("experiment: PivotFirst needs at least one axis")
		}
		rowN := axes[0].Len()
		if rowN == 0 || len(cells)%rowN != 0 {
			return nil, fmt.Errorf("experiment: PivotFirst: %d cells do not divide into %d rows", len(cells), rowN)
		}
		group := len(cells) / rowN
		rows := make([]Row, 0, rowN)
		for ri, rv := range axes[0].Values {
			row := Row{rv}
			for _, cell := range cells[ri*group : (ri+1)*group] {
				row = append(row, cell...)
			}
			if tail != nil {
				row = append(row, tail(rv)...)
			}
			rows = append(rows, row)
		}
		return rows, nil
	}
}

// Table evaluates the sweep on the runner: all cells fan out across the
// pool, rows assemble in grid order. The result is byte-identical for
// any pool size because cells are pure functions of their point.
func (sw Sweep) Table(r *Runner) (*Table, error) {
	pts := gridPoints(sw.Axes)
	cells := make([]Row, len(pts))
	errs := make([]error, len(pts))
	r.Each(len(pts), func(i int) { cells[i], errs[i] = sw.Cell(pts[i]) })
	if err := firstError(errs); err != nil {
		return nil, err
	}
	t := &Table{Title: sw.Title, Columns: sw.Columns}
	if sw.Prologue != nil {
		rows, err := sw.Prologue()
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			t.AddRow(row...)
		}
	}
	rows := cells
	if sw.Reduce != nil {
		var err error
		if rows, err = sw.Reduce(cells); err != nil {
			return nil, err
		}
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, nil
}

// ---- experiment sections and reports ----

// Section is one renderable unit of an experiment definition: a Sweep, a
// computed TableFunc, or a Note line.
type Section interface{ section() }

func (Sweep) section() {}

// TableFunc computes a table outside the grid model (classifier
// evaluations, feature distributions); the fan-out it needs lives in
// shared helpers, not in experiment bodies.
type TableFunc func() (*Table, error)

func (TableFunc) section() {}

// Note is one shape-check line of an experiment report.
type Note string

func (Note) section() {}

// ReportItem is one rendered unit of a Report: a table or a note line.
type ReportItem struct {
	Table *Table `json:"table,omitempty"`
	Note  string `json:"note,omitempty"`
}

// Report is a fully evaluated experiment: its tables and notes in render
// order, plus the trial-cache traffic the evaluation generated.
type Report struct {
	ID    string       `json:"id"`
	Desc  string       `json:"desc"`
	Items []ReportItem `json:"items"`
	// CacheHits and CacheMisses count the suite cache's traffic during
	// this experiment's evaluation (0/0 when the suite has no cache).
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
}

// Render writes the report as aligned text, byte-identical to the
// pre-sweep hand-rolled experiment output.
func (r *Report) Render(w io.Writer) {
	for _, it := range r.Items {
		if it.Table != nil {
			it.Table.Render(w)
			continue
		}
		fmt.Fprintln(w, it.Note)
	}
}

// CSV writes every table of the report as comma-separated values, each
// preceded by a `# title` comment line.
func (r *Report) CSV(w io.Writer) {
	for _, it := range r.Items {
		if it.Table == nil {
			continue
		}
		if it.Table.Title != "" {
			fmt.Fprintf(w, "# %s\n", it.Table.Title)
		}
		it.Table.CSV(w)
		fmt.Fprintln(w)
	}
}

// Tables returns the report's tables in render order.
func (r *Report) Tables() []*Table {
	var ts []*Table
	for _, it := range r.Items {
		if it.Table != nil {
			ts = append(ts, it.Table)
		}
	}
	return ts
}

// evalSections evaluates an experiment's sections in order into a report.
func (s *Suite) evalSections(id string, secs []Section) (*Report, error) {
	rep := &Report{ID: id, Desc: Describe(id)}
	for _, sec := range secs {
		switch x := sec.(type) {
		case Sweep:
			t, err := x.Table(s.runner)
			if err != nil {
				return nil, err
			}
			rep.Items = append(rep.Items, ReportItem{Table: t})
			for _, n := range x.Notes {
				rep.Items = append(rep.Items, ReportItem{Note: n})
			}
		case TableFunc:
			t, err := x()
			if err != nil {
				return nil, err
			}
			rep.Items = append(rep.Items, ReportItem{Table: t})
		case Note:
			rep.Items = append(rep.Items, ReportItem{Note: string(x)})
		default:
			return nil, fmt.Errorf("experiment: unknown section type %T", sec)
		}
	}
	return rep, nil
}
