// Package experiment provides the shared machinery behind the paper's
// evaluation artefacts (E1-E13 in DESIGN.md): labelled corpus generation,
// parameter sweeps, success-rate estimation over trials, and plain-text
// table/CSV rendering for the cmd/experiments harness and the benchmark
// suite.
package experiment

import (
	"fmt"
	"io"
	"strings"

	"inaudible/internal/asr"
	"inaudible/internal/audio"
	"inaudible/internal/core"
	"inaudible/internal/voice"
)

// Table is a simple column-aligned text table with CSV and JSON forms.
type Table struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// AddRow appends a formatted row; values are rendered with %v unless they
// are float64, which use %.4g.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Columns, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// serialRunner backs the package-level helpers: a one-worker pool is
// exactly the serial algorithm, so there is a single implementation of
// the trial loops (see runner.go) regardless of entry point.
var serialRunner = NewRunner(1)

// SuccessRate delivers an emission n times (distinct noise trials) and
// returns the fraction recognised as the wanted command.
func SuccessRate(s *core.Scenario, rec *asr.Recognizer, e *core.Emission, distance float64, want string, trials int) float64 {
	return serialRunner.SuccessRate(s, rec, e, distance, want, trials)
}

// MaxRange returns the largest distance (metres, on the given grid) at
// which the success rate stays >= minRate — the paper's "attack range"
// metric. Returns 0 if even the closest grid point fails.
func MaxRange(s *core.Scenario, rec *asr.Recognizer, e *core.Emission, want string, grid []float64, trials int, minRate float64) float64 {
	return serialRunner.MaxRange(s, rec, e, want, grid, trials, minRate)
}

// Recording is one labelled corpus entry for the defense experiments.
type Recording struct {
	Signal *audio.Signal
	Attack bool
	Label  string // provenance for reports ("legit/male-1/2m", ...)
}

// CorpusConfig controls defense corpus generation. All fields have
// sensible zero-value replacements via DefaultCorpusConfig.
type CorpusConfig struct {
	Scenario *core.Scenario
	// Commands to cover (IDs into voice.Vocabulary).
	CommandIDs []string
	// Profiles are the legitimate talkers.
	Profiles []voice.Profile
	// LegitDistances and LegitSPLs (dB at 1 m) grid the benign class.
	LegitDistances []float64
	LegitSPLs      []float64
	// AttackPowers (W) and AttackDistances grid the baseline attack class.
	AttackPowers    []float64
	AttackDistances []float64
	// Trials is the number of noise realisations per grid point.
	Trials int
	// Runner fans the per-recording deliveries across workers; nil runs
	// them serially. Trial numbering is fixed before fan-out, so the
	// corpus is identical either way.
	Runner *Runner
}

// runner returns the configured Runner or the serial fallback.
func (cfg CorpusConfig) runner() *Runner {
	if cfg.Runner != nil {
		return cfg.Runner
	}
	return serialRunner
}

// DefaultCorpusConfig returns a balanced corpus of a practical size
// (~48 recordings per class with Trials=2).
func DefaultCorpusConfig(s *core.Scenario) CorpusConfig {
	return CorpusConfig{
		Scenario:        s,
		CommandIDs:      []string{"photo", "milk"},
		Profiles:        voice.Profiles()[:3],
		LegitDistances:  []float64{1, 2, 3},
		LegitSPLs:       []float64{60, 66, 72},
		AttackPowers:    []float64{9.2, 18.7},
		AttackDistances: []float64{1.5, 2, 3},
		Trials:          2,
	}
}

// corpusUnit is one planned delivery of the corpus grid: emission,
// geometry and the pre-assigned trial number that keeps the corpus
// byte-identical whether the deliveries run serially or fanned out.
type corpusUnit struct {
	emission *core.Emission
	distance float64
	trial    int64
	attack   bool
	label    string
}

// deliverUnits runs the planned deliveries — the expensive half of
// corpus generation — on cfg's runner and returns the recordings in
// plan order.
func deliverUnits(cfg CorpusConfig, units []corpusUnit) []Recording {
	out := make([]Recording, len(units))
	cfg.runner().Each(len(units), func(i int) {
		u := units[i]
		r := cfg.Scenario.Deliver(u.emission, u.distance, u.trial)
		out[i] = Recording{Signal: r.Recording, Attack: u.attack, Label: u.label}
	})
	return out
}

// BuildLegit generates the benign recordings of the corpus.
func BuildLegit(cfg CorpusConfig) ([]Recording, error) {
	var units []corpusUnit
	trial := int64(1)
	for _, id := range cfg.CommandIDs {
		cmd, ok := voice.FindCommand(id)
		if !ok {
			return nil, fmt.Errorf("experiment: unknown command %q", id)
		}
		for _, p := range cfg.Profiles {
			sig := voice.MustSynthesize(cmd.Text, p, 48000)
			for _, spl := range cfg.LegitSPLs {
				e := cfg.Scenario.EmitVoice(sig, spl)
				for _, d := range cfg.LegitDistances {
					for t := 0; t < cfg.Trials; t++ {
						units = append(units, corpusUnit{
							emission: e,
							distance: d,
							trial:    trial,
							label:    fmt.Sprintf("legit/%s/%s/%.0fdB/%.1fm", id, p.Name, spl, d),
						})
						trial++
					}
				}
			}
		}
	}
	return deliverUnits(cfg, units), nil
}

// BuildAttacks generates the baseline-attack recordings of the corpus.
func BuildAttacks(cfg CorpusConfig) ([]Recording, error) {
	var units []corpusUnit
	trial := int64(10_001)
	for _, id := range cfg.CommandIDs {
		cmd, ok := voice.FindCommand(id)
		if !ok {
			return nil, fmt.Errorf("experiment: unknown command %q", id)
		}
		sig := voice.MustSynthesize(cmd.Text, voice.DefaultVoice(), 48000)
		for _, p := range cfg.AttackPowers {
			e, _, err := cfg.Scenario.Simulate(sig, core.KindBaseline, p, 2, 0)
			if err != nil {
				return nil, err
			}
			for _, d := range cfg.AttackDistances {
				for t := 0; t < cfg.Trials; t++ {
					units = append(units, corpusUnit{
						emission: e,
						distance: d,
						trial:    trial,
						attack:   true,
						label:    fmt.Sprintf("attack/%s/%.1fW/%.1fm", id, p, d),
					})
					trial++
				}
			}
		}
	}
	return deliverUnits(cfg, units), nil
}

// SplitTrainTest deterministically interleaves recordings into train and
// test halves (even indices train, odd test), preserving class balance
// within each provenance group.
func SplitTrainTest(recs []Recording) (train, test []Recording) {
	for i, r := range recs {
		if i%2 == 0 {
			train = append(train, r)
		} else {
			test = append(test, r)
		}
	}
	return train, test
}
