// Package experiment provides the shared machinery behind the paper's
// evaluation artefacts (E1-E13 in DESIGN.md): labelled corpus generation,
// parameter sweeps, success-rate estimation over trials, and plain-text
// table/CSV rendering for the cmd/experiments harness and the benchmark
// suite.
package experiment

import (
	"fmt"
	"io"
	"strings"

	"inaudible/internal/asr"
	"inaudible/internal/audio"
	"inaudible/internal/core"
	"inaudible/internal/voice"
)

// Table is a simple column-aligned text table with an optional CSV form.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row; values are rendered with %v unless they
// are float64, which use %.4g.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Columns, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// SuccessRate delivers an emission n times (distinct noise trials) and
// returns the fraction recognised as the wanted command.
func SuccessRate(s *core.Scenario, rec *asr.Recognizer, e *core.Emission, distance float64, want string, trials int) float64 {
	ok := 0
	for i := 0; i < trials; i++ {
		r := s.Deliver(e, distance, int64(i+1))
		if rec.InjectionSuccess(r.Recording, want) {
			ok++
		}
	}
	return float64(ok) / float64(trials)
}

// MaxRange returns the largest distance (metres, on the given grid) at
// which the success rate stays >= minRate — the paper's "attack range"
// metric. Returns 0 if even the closest grid point fails.
func MaxRange(s *core.Scenario, rec *asr.Recognizer, e *core.Emission, want string, grid []float64, trials int, minRate float64) float64 {
	best := 0.0
	for _, d := range grid {
		if SuccessRate(s, rec, e, d, want, trials) >= minRate {
			if d > best {
				best = d
			}
		} else if best > 0 {
			break // monotone assumption: once it fails, stop probing
		}
	}
	return best
}

// Recording is one labelled corpus entry for the defense experiments.
type Recording struct {
	Signal *audio.Signal
	Attack bool
	Label  string // provenance for reports ("legit/male-1/2m", ...)
}

// CorpusConfig controls defense corpus generation. All fields have
// sensible zero-value replacements via DefaultCorpusConfig.
type CorpusConfig struct {
	Scenario *core.Scenario
	// Commands to cover (IDs into voice.Vocabulary).
	CommandIDs []string
	// Profiles are the legitimate talkers.
	Profiles []voice.Profile
	// LegitDistances and LegitSPLs (dB at 1 m) grid the benign class.
	LegitDistances []float64
	LegitSPLs      []float64
	// AttackPowers (W) and AttackDistances grid the baseline attack class.
	AttackPowers    []float64
	AttackDistances []float64
	// Trials is the number of noise realisations per grid point.
	Trials int
}

// DefaultCorpusConfig returns a balanced corpus of a practical size
// (~48 recordings per class with Trials=2).
func DefaultCorpusConfig(s *core.Scenario) CorpusConfig {
	return CorpusConfig{
		Scenario:        s,
		CommandIDs:      []string{"photo", "milk"},
		Profiles:        voice.Profiles()[:3],
		LegitDistances:  []float64{1, 2, 3},
		LegitSPLs:       []float64{60, 66, 72},
		AttackPowers:    []float64{9.2, 18.7},
		AttackDistances: []float64{1.5, 2, 3},
		Trials:          2,
	}
}

// BuildLegit generates the benign recordings of the corpus.
func BuildLegit(cfg CorpusConfig) ([]Recording, error) {
	var out []Recording
	trial := int64(1)
	for _, id := range cfg.CommandIDs {
		cmd, ok := voice.FindCommand(id)
		if !ok {
			return nil, fmt.Errorf("experiment: unknown command %q", id)
		}
		for _, p := range cfg.Profiles {
			sig := voice.MustSynthesize(cmd.Text, p, 48000)
			for _, spl := range cfg.LegitSPLs {
				e := cfg.Scenario.EmitVoice(sig, spl)
				for _, d := range cfg.LegitDistances {
					for t := 0; t < cfg.Trials; t++ {
						r := cfg.Scenario.Deliver(e, d, trial)
						trial++
						out = append(out, Recording{
							Signal: r.Recording,
							Attack: false,
							Label:  fmt.Sprintf("legit/%s/%s/%.0fdB/%.1fm", id, p.Name, spl, d),
						})
					}
				}
			}
		}
	}
	return out, nil
}

// BuildAttacks generates the baseline-attack recordings of the corpus.
func BuildAttacks(cfg CorpusConfig) ([]Recording, error) {
	var out []Recording
	trial := int64(10_001)
	for _, id := range cfg.CommandIDs {
		cmd, ok := voice.FindCommand(id)
		if !ok {
			return nil, fmt.Errorf("experiment: unknown command %q", id)
		}
		sig := voice.MustSynthesize(cmd.Text, voice.DefaultVoice(), 48000)
		for _, p := range cfg.AttackPowers {
			e, _, err := cfg.Scenario.Simulate(sig, core.KindBaseline, p, 2, 0)
			if err != nil {
				return nil, err
			}
			for _, d := range cfg.AttackDistances {
				for t := 0; t < cfg.Trials; t++ {
					r := cfg.Scenario.Deliver(e, d, trial)
					trial++
					out = append(out, Recording{
						Signal: r.Recording,
						Attack: true,
						Label:  fmt.Sprintf("attack/%s/%.1fW/%.1fm", id, p, d),
					})
				}
			}
		}
	}
	return out, nil
}

// SplitTrainTest deterministically interleaves recordings into train and
// test halves (even indices train, odd test), preserving class balance
// within each provenance group.
func SplitTrainTest(recs []Recording) (train, test []Recording) {
	for i, r := range recs {
		if i%2 == 0 {
			train = append(train, r)
		} else {
			test = append(test, r)
		}
	}
	return train, test
}
