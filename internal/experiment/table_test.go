package experiment

import (
	"bytes"
	"math"
	"testing"
)

// TestTableRenderGolden pins the exact rendered form of a mixed-type
// table: column alignment grows to the widest cell, floats format with
// %.4g, the separator matches the column widths, and trailing spaces are
// trimmed.
func TestTableRenderGolden(t *testing.T) {
	tb := &Table{
		Title:   "golden",
		Columns: []string{"name", "value", "ok"},
	}
	tb.AddRow("short", 1.0, true)
	tb.AddRow("a-much-longer-name", 123.456789, false)
	tb.AddRow("tiny", 0.000123456, true)
	var buf bytes.Buffer
	tb.Render(&buf)
	want := "== golden ==\n" +
		"name                value      ok\n" +
		"------------------  ---------  -----\n" +
		"short               1          true\n" +
		"a-much-longer-name  123.5      false\n" +
		"tiny                0.0001235  true\n"
	if buf.String() != want {
		t.Errorf("Render mismatch:\n--- got ---\n%q\n--- want ---\n%q", buf.String(), want)
	}
}

// TestTableRenderNoTitleEmptyRows pins the edge case of a table with no
// title and no rows: just the header and separator, no "== ==" line.
func TestTableRenderNoTitleEmptyRows(t *testing.T) {
	tb := &Table{Columns: []string{"a", "long-column"}}
	var buf bytes.Buffer
	tb.Render(&buf)
	want := "a  long-column\n" +
		"-  -----------\n"
	if buf.String() != want {
		t.Errorf("Render mismatch:\n--- got ---\n%q\n--- want ---\n%q", buf.String(), want)
	}
}

// TestTableRenderShortRow pins rendering of a row with fewer cells than
// columns — extra columns stay empty rather than panicking.
func TestTableRenderShortRow(t *testing.T) {
	tb := &Table{Columns: []string{"x", "y"}}
	tb.AddRow("only")
	var buf bytes.Buffer
	tb.Render(&buf)
	want := "x     y\n" +
		"----  -\n" +
		"only\n"
	if buf.String() != want {
		t.Errorf("Render mismatch:\n--- got ---\n%q\n--- want ---\n%q", buf.String(), want)
	}
}

// TestTableCSVGolden pins the CSV form: no alignment padding, header
// first, %.4g floats, %v for everything else.
func TestTableCSVGolden(t *testing.T) {
	tb := &Table{Title: "ignored-in-csv", Columns: []string{"power_w", "rate", "audible"}}
	tb.AddRow(18.7, 0.98765, true)
	tb.AddRow(300, "n/a", false)
	var buf bytes.Buffer
	tb.CSV(&buf)
	want := "power_w,rate,audible\n" +
		"18.7,0.9877,true\n" +
		"300,n/a,false\n"
	if buf.String() != want {
		t.Errorf("CSV mismatch:\n--- got ---\n%q\n--- want ---\n%q", buf.String(), want)
	}
}

// TestTableCSVEmpty pins CSV output for a row-less table: header only.
func TestTableCSVEmpty(t *testing.T) {
	tb := &Table{Columns: []string{"a", "b"}}
	var buf bytes.Buffer
	tb.CSV(&buf)
	if got, want := buf.String(), "a,b\n"; got != want {
		t.Errorf("CSV mismatch: got %q want %q", got, want)
	}
}

// TestAddRowFormatting pins AddRow's type dispatch: float64 through
// %.4g, every other type through %v.
func TestAddRowFormatting(t *testing.T) {
	tb := &Table{Columns: []string{"c"}}
	tb.AddRow(1234567.89)   // float64: %.4g -> scientific
	tb.AddRow(float32(1.5)) // not float64: %v
	tb.AddRow(42)           // int: %v
	tb.AddRow(math.Inf(1))  // float64: %.4g of +Inf
	wants := []string{"1.235e+06", "1.5", "42", "+Inf"}
	for i, want := range wants {
		if got := tb.Rows[i][0]; got != want {
			t.Errorf("row %d: got %q want %q", i, got, want)
		}
	}
}

// TestSummarize pins the distribution summary used by the E9/E10
// feature tables, including the empty-input edge case.
func TestSummarize(t *testing.T) {
	d := summarize([]float64{2, 4, 6})
	if d.n != 3 || d.mean != 4 || d.min != 2 || d.max != 6 {
		t.Errorf("summarize([2 4 6]) = %+v", d)
	}
	if want := math.Sqrt(8.0 / 3.0); math.Abs(d.std-want) > 1e-12 {
		t.Errorf("std = %v, want %v", d.std, want)
	}

	one := summarize([]float64{-1.5})
	if one.n != 1 || one.mean != -1.5 || one.min != -1.5 || one.max != -1.5 || one.std != 0 {
		t.Errorf("summarize([-1.5]) = %+v", one)
	}

	empty := summarize(nil)
	if empty.n != 0 {
		t.Errorf("summarize(nil).n = %d", empty.n)
	}
	if !math.IsInf(empty.min, 1) || !math.IsInf(empty.max, -1) {
		t.Errorf("summarize(nil) min/max = %v/%v, want +Inf/-Inf", empty.min, empty.max)
	}
	if empty.mean != 0 || empty.std != 0 {
		t.Errorf("summarize(nil) mean/std = %v/%v, want 0/0", empty.mean, empty.std)
	}
}
