package experiment

import (
	"fmt"

	"inaudible/internal/defense"
	"inaudible/internal/voice"
)

// DetectorKinds lists the trainable detector kinds accepted by
// TrainDetector, in presentation order.
func DetectorKinds() []string { return []string{"svm", "logistic", "threshold"} }

// QuickCorpusConfig shrinks cfg to the Quick-suite corpus grid — the
// same reduction the E-suite applies under Options.Quick — for callers
// (cmd/guardd, demos) that trade corpus size for start-up time.
func QuickCorpusConfig(cfg CorpusConfig) CorpusConfig {
	cfg.CommandIDs = []string{"photo"}
	cfg.Profiles = voice.Profiles()[:2]
	cfg.LegitSPLs = []float64{66}
	cfg.LegitDistances = []float64{1, 2.5}
	cfg.AttackPowers = []float64{18.7}
	cfg.AttackDistances = []float64{1.5, 2.5}
	cfg.Trials = 2
	return cfg
}

// TrainDetector simulates cfg's corpus and trains the named detector
// kind over the batch-extracted features: "svm" (Pegasos linear SVM,
// the experiment suite's classifier), "logistic" (calibrated
// probabilities) or "threshold" (the paper's per-feature threshold
// rule). It is the one classifier switch shared by every front end
// (cmd/defend, cmd/guardd, examples); hyper-parameters match the
// E-suite's. The returned detector is safe for concurrent readers.
func TrainDetector(kind string, cfg CorpusConfig, seed int64) (defense.Detector, error) {
	det, _, err := TrainDetectorWithSamples(kind, cfg, seed)
	return det, err
}

// TrainDetectorWithSamples is TrainDetector, additionally returning the
// training samples the detector was fitted on — the training
// distribution callers pin as the drift-telemetry reference.
func TrainDetectorWithSamples(kind string, cfg CorpusConfig, seed int64) (defense.Detector, []defense.Sample, error) {
	legit, err := BuildLegit(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("experiment: building legit corpus: %w", err)
	}
	attacks, err := BuildAttacks(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("experiment: building attack corpus: %w", err)
	}
	recs := append(legit, attacks...)
	samples := extractSamples(cfg.runner(), recs)
	var det defense.Detector
	switch kind {
	case "svm":
		det, err = defense.TrainSVM(samples, 0.01, 60, seed)
	case "logistic":
		det, err = defense.TrainLogistic(samples, 0.5, 400)
	case "threshold":
		det, err = defense.CalibrateThresholds(samples)
	default:
		return nil, nil, fmt.Errorf("experiment: unknown detector kind %q (want svm, logistic or threshold)", kind)
	}
	if err != nil {
		return nil, nil, err
	}
	return det, samples, nil
}
