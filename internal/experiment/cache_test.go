package experiment

import (
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"inaudible/internal/audio"
	"inaudible/internal/core"
	"inaudible/internal/mic"
)

// cheapEmission builds a small voice emission whose deliveries cost
// microseconds — the physics-free stand-in for cache tests.
func cheapEmission(seed int64) (*core.Scenario, *core.Emission) {
	sc := core.DefaultScenario()
	sc.Seed = seed
	tone := audio.Tone(48000, 440, 0.05, 0.1)
	return sc, sc.EmitVoice(tone, 60)
}

// TestTrialKeyContentAddressed pins the key contract: identical cell
// coordinates hash identically (including across distinct emission
// objects with the same waveform content), and changing any coordinate
// — distance, trial, metric, device, ambient level, content — changes
// the key.
func TestTrialKeyContentAddressed(t *testing.T) {
	c := NewCache("")
	sc, e := cheapEmission(5)
	spec := TrialSpec{Scenario: sc, Emission: e, Distance: 2, Trial: 3}
	base := c.TrialKey(spec, "m")

	// Same content in a different emission object: same key.
	sc2, e2 := cheapEmission(5)
	if got := NewCache("").TrialKey(TrialSpec{Scenario: sc2, Emission: e2, Distance: 2, Trial: 3}, "m"); got != base {
		t.Errorf("content-identical cell hashed differently: %s vs %s", got, base)
	}

	variants := map[string]TrialSpec{
		"distance": {Scenario: sc, Emission: e, Distance: 2.5, Trial: 3},
		"trial":    {Scenario: sc, Emission: e, Distance: 2, Trial: 4},
	}
	scDev := sc.Clone()
	scDev.Device = mic.AmazonEcho()
	variants["device"] = TrialSpec{Scenario: scDev, Emission: e, Distance: 2, Trial: 3}
	scAmb := sc.Clone()
	scAmb.AmbientSPL = 55
	variants["ambient"] = TrialSpec{Scenario: scAmb, Emission: e, Distance: 2, Trial: 3}
	scSeed := sc.Clone()
	scSeed.Seed = 6
	variants["seed"] = TrialSpec{Scenario: scSeed, Emission: e, Distance: 2, Trial: 3}
	for name, v := range variants {
		if c.TrialKey(v, "m") == base {
			t.Errorf("changing %s did not change the trial key", name)
		}
	}
	if c.TrialKey(spec, "other") == base {
		t.Error("changing the metric identity did not change the trial key")
	}
	_, eOther := cheapEmission(5)
	eOther.Field.Samples[0] += 1e-9
	if c.TrialKey(TrialSpec{Scenario: sc, Emission: eOther, Distance: 2, Trial: 3}, "m") == base {
		t.Error("changing the emission content did not change the trial key")
	}
}

// TestCacheDiskLayer checks write-through and cross-instance reads: a
// fresh Cache on the same directory serves the stored values without
// recomputing, and a memory-only cache misses.
func TestCacheDiskLayer(t *testing.T) {
	dir := t.TempDir()
	c1 := NewCache(dir)
	c1.Put("k1", []float64{1.5, -2})
	if vals, ok := c1.Get("k1"); !ok || len(vals) != 2 || vals[0] != 1.5 {
		t.Fatalf("memory get after put: %v %v", vals, ok)
	}
	c2 := NewCache(dir)
	vals, ok := c2.Get("k1")
	if !ok || len(vals) != 2 || vals[1] != -2 {
		t.Fatalf("disk get from fresh cache: %v %v", vals, ok)
	}
	hits, misses := c2.Stats()
	if hits != 1 || misses != 0 {
		t.Fatalf("disk hit stats: %d hits, %d misses", hits, misses)
	}
	if _, ok := NewCache("").Get("k1"); ok {
		t.Fatal("memory-only cache returned another cache's entry")
	}
}

// TestRunCachedColdWarmDeterminism is the cheap twin of the golden
// test: cached values must equal computed ones exactly, across pool
// sizes and cache instances sharing one directory, and an empty evalKey
// must bypass the cache entirely.
func TestRunCachedColdWarmDeterminism(t *testing.T) {
	dir := t.TempDir()
	sc, e := cheapEmission(5)
	specs := make([]TrialSpec, 6)
	for i := range specs {
		specs[i] = TrialSpec{Scenario: sc, Emission: e, Distance: 1.5, Trial: int64(i + 1)}
	}
	eval := func(_ TrialSpec, run *core.RunResult) []float64 {
		return []float64{run.Recording.RMS(), run.SPLAtDevice}
	}

	serial := NewRunner(1).WithCache(NewCache(dir))
	cold := serial.RunCached(specs, "rms+spl", 2, eval)
	if _, misses := serial.Cache().Stats(); misses != int64(len(specs)) {
		t.Fatalf("cold run misses = %d, want %d", misses, len(specs))
	}

	parallel := NewRunner(8).WithCache(NewCache(dir))
	warm := parallel.RunCached(specs, "rms+spl", 2, eval)
	hits, misses := parallel.Cache().Stats()
	if hits != int64(len(specs)) || misses != 0 {
		t.Fatalf("warm run: %d hits %d misses, want %d hits 0 misses", hits, misses, len(specs))
	}
	for i := range specs {
		if len(cold[i]) != 2 || cold[i][0] != warm[i][0] || cold[i][1] != warm[i][1] {
			t.Fatalf("trial %d: cold %v != warm %v", i, cold[i], warm[i])
		}
	}

	uncached := NewRunner(1).WithCache(NewCache(dir))
	vals := uncached.RunCached(specs[:2], "", 2, eval)
	if h, m := uncached.Cache().Stats(); h != 0 || m != 0 {
		t.Fatalf("empty evalKey touched the cache: %d hits %d misses", h, m)
	}
	if vals[0][0] != cold[0][0] {
		t.Fatalf("uncached value %v != computed %v", vals[0][0], cold[0][0])
	}
}

// TestRunCachedRejectsCorruptEntry pins the defensive width check: a
// stale or corrupt on-disk entry (`null`, `[]`, wrong arity) must be
// recomputed, not trusted and indexed into.
func TestRunCachedRejectsCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	sc, e := cheapEmission(5)
	spec := TrialSpec{Scenario: sc, Emission: e, Distance: 1.5, Trial: 1}
	eval := func(run *core.RunResult) []float64 {
		return []float64{run.Recording.RMS(), run.SPLAtDevice}
	}
	r := NewRunner(1).WithCache(NewCache(dir))
	key := r.Cache().TrialKey(spec, "corrupt")
	for _, hostile := range []string{"null", "[]", "[1]", "not json"} {
		if err := os.WriteFile(filepath.Join(dir, key+".json"), []byte(hostile), 0o644); err != nil {
			t.Fatal(err)
		}
		vals := NewRunner(1).WithCache(NewCache(dir)).Trial(spec, "corrupt", 2, eval)
		if len(vals) != 2 || vals[0] <= 0 {
			t.Fatalf("entry %q: got %v, want recomputed 2-metric values", hostile, vals)
		}
	}
}

// TestCacheConcurrentAccess hammers one cache from a full worker pool —
// concurrent TrialKey (shared emission-hash memo), Get, Put and
// duplicate-cell RunCached batches. Run under -race this is the cache's
// race-coverage test.
func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(t.TempDir())
	r := NewRunner(8).WithCache(c)
	sc, e := cheapEmission(3)

	r.Each(64, func(i int) {
		spec := TrialSpec{Scenario: sc, Emission: e, Distance: 1 + float64(i%4), Trial: int64(i % 8)}
		key := c.TrialKey(spec, "race")
		if _, ok := c.Get(key); !ok {
			c.Put(key, []float64{float64(i % 8)})
		}
		if vals, ok := c.Get(key); !ok || len(vals) != 1 {
			t.Errorf("lost entry for %s", key)
		}
	})

	// Duplicate cells inside one batch: concurrent compute + put of the
	// same key must agree.
	specs := make([]TrialSpec, 32)
	for i := range specs {
		specs[i] = TrialSpec{Scenario: sc, Emission: e, Distance: 2, Trial: int64(i % 2)}
	}
	out := r.RunCached(specs, "dup", 1, func(_ TrialSpec, run *core.RunResult) []float64 {
		return []float64{run.Recording.RMS()}
	})
	for i := range out {
		if out[i][0] != out[i%2][0] {
			t.Fatalf("duplicate cell %d disagrees: %v vs %v", i, out[i][0], out[i%2][0])
		}
	}
}

// ---- benchmarks ----

// BenchmarkSuiteAllWarmCache measures a full quick `-all` pass against
// a warm on-disk trial cache, and reports the cold pass alongside: the
// cold/warm ratio is the cache's acceptance metric (BENCH_pr4.json).
//
//	go test ./internal/experiment -bench SuiteAllWarmCache -benchtime 1x
func BenchmarkSuiteAllWarmCache(b *testing.B) {
	dir := b.TempDir()
	runAll := func(parallel int) time.Duration {
		s := NewSuite(Options{Quick: true, Seed: 1, Parallel: parallel, CacheDir: dir})
		start := time.Now()
		for _, id := range IDs() {
			if err := s.Run(id, io.Discard); err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(start)
	}
	cold := runAll(0) // populates the disk cache
	b.ResetTimer()
	var warm time.Duration
	for i := 0; i < b.N; i++ {
		warm += runAll(0)
	}
	b.ReportMetric(cold.Seconds(), "cold_s/op")
	warmPer := warm.Seconds() / float64(b.N)
	b.ReportMetric(warmPer, "warm_s/op")
	b.ReportMetric(cold.Seconds()/warmPer, "cold_vs_warm_speedup")
}

// BenchmarkSweepCell measures one warm sweep cell — a cached
// success-rate trial batch — the steady-state cost of re-running an
// experiment whose cells are all hits.
//
//	go test ./internal/experiment -bench SweepCell
func BenchmarkSweepCell(b *testing.B) {
	s := NewSuite(Options{Quick: true, Seed: 1, Parallel: 1})
	s.fixtures()
	sc, e := cheapEmission(1)
	const trials = 8
	s.Runner().SuccessRate(sc, s.rec, e, 1.5, "photo", trials) // warm the cell
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Runner().SuccessRate(sc, s.rec, e, 1.5, "photo", trials)
	}
	hits, _ := s.Cache().Stats()
	b.ReportMetric(float64(hits)/float64(b.N), "hits/op")
}
