package experiment

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"inaudible/internal/sim"
)

func TestGridPointsOrder(t *testing.T) {
	axes := []Axis{FloatAxis("d", 1, 2), StrAxis("k", "a", "b", "c")}
	pts := gridPoints(axes)
	if len(pts) != 6 {
		t.Fatalf("%d points, want 6", len(pts))
	}
	// Last axis varies fastest; first-axis groups are contiguous.
	want := []struct {
		d float64
		k string
	}{{1, "a"}, {1, "b"}, {1, "c"}, {2, "a"}, {2, "b"}, {2, "c"}}
	for i, w := range want {
		if pts[i].Float("d") != w.d || pts[i].Str("k") != w.k {
			t.Errorf("point %d = (%v, %v), want (%v, %v)",
				i, pts[i].Float("d"), pts[i].Str("k"), w.d, w.k)
		}
	}
	if pts[4].Ordinal("k") != 1 || pts[4].Ordinal("d") != 1 {
		t.Errorf("ordinals of point 4: k=%d d=%d", pts[4].Ordinal("k"), pts[4].Ordinal("d"))
	}
	if gridPoints(nil) != nil {
		t.Error("empty axes should produce no points")
	}
}

func TestRangeAxis(t *testing.T) {
	a, err := RangeAxis("d", 1, 15, 1)
	if err != nil || a.Len() != 15 || a.Values[14] != 15.0 {
		t.Fatalf("1:15:1 -> %v (err %v)", a.Values, err)
	}
	a, err = RangeAxis("d", 0.5, 2, 0.5)
	if err != nil || a.Len() != 4 || a.Values[3] != 2.0 {
		t.Fatalf("0.5:2:0.5 -> %v (err %v)", a.Values, err)
	}
	if _, err := RangeAxis("d", 1, 5, 0); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := RangeAxis("d", 5, 1, 1); err == nil {
		t.Error("reversed range accepted")
	}
}

func TestSweepTablePivotAndPrologue(t *testing.T) {
	axes := []Axis{FloatAxis("row", 10, 20), IntAxis("col", 1, 2)}
	sw := Sweep{
		Title:   "pivot",
		Columns: []string{"row", "c1", "c2", "tail"},
		Axes:    axes,
		Prologue: func() ([]Row, error) {
			return []Row{{"ref", 0, 0, 0}}, nil
		},
		Cell: func(p Point) (Row, error) {
			return Row{p.Float("row") + float64(p.Int("col"))}, nil
		},
		Reduce: PivotFirst(axes, func(rowVal interface{}) Row {
			return Row{rowVal.(float64) * 100}
		}),
	}
	tb, err := sw.Table(NewRunner(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows: %v", tb.Rows)
	}
	if tb.Rows[0][0] != "ref" {
		t.Errorf("prologue row first: %v", tb.Rows[0])
	}
	if got := tb.Rows[1]; got[0] != "10" || got[1] != "11" || got[2] != "12" || got[3] != "1000" {
		t.Errorf("pivot row 10: %v", got)
	}
	if got := tb.Rows[2]; got[0] != "20" || got[1] != "21" || got[2] != "22" || got[3] != "2000" {
		t.Errorf("pivot row 20: %v", got)
	}
}

func TestSweepTableCellError(t *testing.T) {
	boom := errors.New("boom")
	sw := Sweep{
		Axes: []Axis{IntAxis("i", 0, 1, 2)},
		Cell: func(p Point) (Row, error) {
			if p.Int("i") >= 1 {
				return nil, boom
			}
			return Row{p.Int("i")}, nil
		},
	}
	if _, err := sw.Table(NewRunner(2)); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestPivotFirstShapeError(t *testing.T) {
	axes := []Axis{FloatAxis("row", 1, 2, 3)}
	if _, err := PivotFirst(axes, nil)([]Row{{1}, {2}}); err == nil {
		t.Error("2 cells into 3 rows accepted")
	}
}

func TestReportRenderAndCSV(t *testing.T) {
	tb := &Table{Title: "t1", Columns: []string{"a"}}
	tb.AddRow(1)
	rep := &Report{ID: "X", Items: []ReportItem{{Table: tb}, {Note: "a note"}}}
	var buf bytes.Buffer
	rep.Render(&buf)
	if !strings.Contains(buf.String(), "== t1 ==") || !strings.Contains(buf.String(), "a note") {
		t.Fatalf("render:\n%s", buf.String())
	}
	buf.Reset()
	rep.CSV(&buf)
	out := buf.String()
	if !strings.Contains(out, "# t1") || !strings.Contains(out, "a\n1") || strings.Contains(out, "a note") {
		t.Fatalf("csv:\n%s", out)
	}
	if len(rep.Tables()) != 1 {
		t.Fatalf("tables: %v", rep.Tables())
	}
}

func TestParseSweepAxis(t *testing.T) {
	a, err := ParseSweepAxis("distance=1:3:1")
	if err != nil || a.Name != "distance" || a.Len() != 3 {
		t.Fatalf("range parse: %+v err=%v", a, err)
	}
	a, err = ParseSweepAxis("power=10, 40")
	if err != nil || a.Len() != 2 || a.Values[1] != 40.0 {
		t.Fatalf("list parse: %+v err=%v", a, err)
	}
	a, err = ParseSweepAxis("device=phone,echo")
	if err != nil || a.Values[0] != "phone" {
		t.Fatalf("device parse: %+v err=%v", a, err)
	}
	for _, bad := range []string{"", "distance", "nope=1:2:1", "distance=1:2", "distance=x:y:z"} {
		if _, err := ParseSweepAxis(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
	if _, err := ParseSweepAxes(nil); err == nil {
		t.Error("empty axis list accepted")
	}
}

func TestSpecFieldSetters(t *testing.T) {
	sp := &sim.Spec{}
	cases := map[string]interface{}{
		"distance": 3.5, "move_to": 1.5, "power": 40.0, "voice_spl": 66.0,
		"carrier": 31000.0, "segments": 15, "ambient": 45.0, "seed": 9,
		"device": "echo",
	}
	for name, v := range cases {
		if err := specFields[name](sp, v); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if sp.Path.DistanceM != 3.5 || sp.Path.MoveToM != 1.5 || sp.Attack.PowerW != 40 ||
		sp.Attack.VoiceSPL != 66 || sp.Attack.CarrierHz != 31000 || sp.Attack.Segments != 15 ||
		sp.AmbientSPL != 45 || sp.Seed != 9 || sp.Device != "echo" {
		t.Fatalf("spec after setters: %+v", sp)
	}
	if err := specFields["device"](sp, 3.0); err == nil {
		t.Error("numeric device accepted")
	}
	if err := specFields["power"](sp, "x"); err == nil {
		t.Error("string power accepted")
	}
	for _, name := range SweepFields() {
		if _, ok := specFields[name]; !ok {
			t.Errorf("SweepFields lists unknown field %s", name)
		}
	}
}

func TestIDsExplicitOrder(t *testing.T) {
	ids := IDs()
	if len(ids) != 13 || ids[0] != "E1" || ids[9] != "E10" || ids[12] != "E13" {
		t.Fatalf("ids: %v", ids)
	}
	for _, id := range ids {
		if _, ok := registry[id]; !ok {
			t.Errorf("run order lists unregistered id %s", id)
		}
	}
	if len(ids) != len(registry) {
		t.Errorf("run order has %d ids, registry %d", len(ids), len(registry))
	}
	// IDs returns a copy — mutating it must not corrupt the order.
	ids[0] = "corrupted"
	if IDs()[0] != "E1" {
		t.Error("IDs exposes internal state")
	}
}
