package experiment

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"inaudible/internal/defense"
	"inaudible/internal/sim"
)

// This file opens the sweep engine to arbitrary scenarios: any
// declarative sim.Spec plus a sweep definition becomes a runnable
// experiment (`cmd/experiments -spec scenario.json -sweep
// distance=1:15:1`), evaluated cell by cell on the same worker pool as
// the E1-E13 suite. Each cell clones the spec, applies its axis values
// to the named spec fields, and runs the full streaming simulation —
// attack synthesis, per-element speaker chains, propagation, capture,
// defense guard — reporting the victim tap's outcome.

// specFields maps sweep axis names to spec field setters. Float axes
// apply to numeric fields; the device axis takes profile names.
var specFields = map[string]func(*sim.Spec, interface{}) error{
	"distance":  func(sp *sim.Spec, v interface{}) error { return setF(&sp.Path.DistanceM, v) },
	"move_to":   func(sp *sim.Spec, v interface{}) error { return setF(&sp.Path.MoveToM, v) },
	"power":     func(sp *sim.Spec, v interface{}) error { return setF(&sp.Attack.PowerW, v) },
	"voice_spl": func(sp *sim.Spec, v interface{}) error { return setF(&sp.Attack.VoiceSPL, v) },
	"carrier":   func(sp *sim.Spec, v interface{}) error { return setF(&sp.Attack.CarrierHz, v) },
	"ambient":   func(sp *sim.Spec, v interface{}) error { return setF(&sp.AmbientSPL, v) },
	"segments": func(sp *sim.Spec, v interface{}) error {
		var f float64
		if err := setF(&f, v); err != nil {
			return err
		}
		sp.Attack.Segments = int(f)
		return nil
	},
	"seed": func(sp *sim.Spec, v interface{}) error {
		var f float64
		if err := setF(&f, v); err != nil {
			return err
		}
		sp.Seed = int64(f)
		return nil
	},
	"device": func(sp *sim.Spec, v interface{}) error {
		s, ok := v.(string)
		if !ok {
			return fmt.Errorf("experiment: device axis needs string values, got %T", v)
		}
		sp.Device = s
		return nil
	},
}

// SweepFields lists the spec fields a custom sweep may vary.
func SweepFields() []string {
	return []string{"ambient", "carrier", "device", "distance", "move_to", "power", "seed", "segments", "voice_spl"}
}

func setF(dst *float64, v interface{}) error {
	switch x := v.(type) {
	case float64:
		*dst = x
	case int:
		*dst = float64(x)
	default:
		return fmt.Errorf("experiment: axis needs numeric values, got %T", v)
	}
	return nil
}

// ParseSweepAxis parses one `-sweep` axis definition: either an
// inclusive range `name=start:stop:step` or an explicit value list
// `name=v1,v2,v3` (strings allowed for the device axis).
func ParseSweepAxis(def string) (Axis, error) {
	name, spec, ok := strings.Cut(def, "=")
	name, spec = strings.TrimSpace(name), strings.TrimSpace(spec)
	if !ok || name == "" || spec == "" {
		return Axis{}, fmt.Errorf("experiment: sweep axis %q: want name=start:stop:step or name=v1,v2,...", def)
	}
	if _, known := specFields[name]; !known {
		return Axis{}, fmt.Errorf("experiment: unknown sweep field %q (have %v)", name, SweepFields())
	}
	if strings.Contains(spec, ":") {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			return Axis{}, fmt.Errorf("experiment: sweep axis %q: range wants start:stop:step", def)
		}
		var nums [3]float64
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return Axis{}, fmt.Errorf("experiment: sweep axis %q: %w", def, err)
			}
			nums[i] = v
		}
		return RangeAxis(name, nums[0], nums[1], nums[2])
	}
	parts := strings.Split(spec, ",")
	floats := make([]float64, 0, len(parts))
	strVals := make([]string, 0, len(parts))
	numeric := true
	for _, p := range parts {
		p = strings.TrimSpace(p)
		strVals = append(strVals, p)
		if v, err := strconv.ParseFloat(p, 64); err == nil {
			floats = append(floats, v)
		} else {
			numeric = false
		}
	}
	if numeric {
		return FloatAxis(name, floats...), nil
	}
	return StrAxis(name, strVals...), nil
}

// ParseSweepAxes parses a list of `-sweep` definitions into sweep axes.
func ParseSweepAxes(defs []string) ([]Axis, error) {
	axes := make([]Axis, 0, len(defs))
	for _, def := range defs {
		a, err := ParseSweepAxis(def)
		if err != nil {
			return nil, err
		}
		axes = append(axes, a)
	}
	if len(axes) == 0 {
		return nil, fmt.Errorf("experiment: a spec sweep needs at least one axis (e.g. distance=1:15:1)")
	}
	return axes, nil
}

// SpecSweep builds the sweep of an arbitrary scenario: one cell per
// grid point, each running the spec end to end (attack synthesis,
// per-element speaker chains, propagation, capture, streaming guard)
// with the point's values applied to the named spec fields. A nil
// detector selects the hand-calibrated demo thresholds.
func SpecSweep(sp *sim.Spec, axes []Axis, det defense.Detector) Sweep {
	name := sp.Name
	if name == "" {
		name = sp.Attack.Kind
	}
	cols := make([]string, 0, len(axes)+5)
	for _, a := range axes {
		cols = append(cols, a.Name)
	}
	cols = append(cols, "elements", "power_w", "spl_at_device_db", "attack_detected", "score")
	return Sweep{
		Title:   fmt.Sprintf("custom sweep: %s", name),
		Columns: cols,
		Axes:    axes,
		Cell: func(p Point) (Row, error) {
			variant := *sp
			row := make(Row, 0, len(cols))
			for _, a := range axes {
				val := p.Value(a.Name)
				if err := specFields[a.Name](&variant, val); err != nil {
					return nil, err
				}
				row = append(row, val)
			}
			res, err := sim.SimulateSpec(&variant, det)
			if err != nil {
				return nil, err
			}
			tap := res.Taps[0]
			return append(row, res.Elements, res.TotalPowerW, tap.SPLAtDevice, tap.Final.Attack, tap.Final.Score), nil
		},
	}
}

// SpecSweepReport evaluates a spec sweep on a pool of the given size and
// returns its report — the engine behind `cmd/experiments -spec -sweep`
// and the facade's RunSweep.
func SpecSweepReport(sp *sim.Spec, axes []Axis, det defense.Detector, parallel int) (*Report, error) {
	sw := SpecSweep(sp, axes, det)
	t, err := sw.Table(NewRunner(parallel))
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:    "sweep",
		Desc:  sw.Title,
		Items: []ReportItem{{Table: t}},
	}, nil
}

// RunSpecSweep evaluates a spec sweep and renders its table to w.
func RunSpecSweep(sp *sim.Spec, axes []Axis, det defense.Detector, parallel int, w io.Writer) error {
	rep, err := SpecSweepReport(sp, axes, det, parallel)
	if err != nil {
		return err
	}
	rep.Render(w)
	return nil
}
