package attack

import (
	"fmt"
	"math"

	"inaudible/internal/audio"
	"inaudible/internal/dsp"
)

// ExtractBand returns the content of x inside [lo, hi] Hz using an
// FFT-domain brick-wall mask (zero phase, exact partition). Used for
// spectrum slicing and for isolating the defense's trace band.
func ExtractBand(x []float64, rate, lo, hi float64) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	size := dsp.NextPowerOfTwo(n)
	spec := make([]complex128, size)
	for i, v := range x {
		spec[i] = complex(v, 0)
	}
	dsp.FFT(spec)
	half := size / 2
	k0 := int(math.Ceil(lo * float64(size) / rate))
	k1 := int(math.Floor(hi * float64(size) / rate))
	for k := 0; k <= half; k++ {
		if k >= k0 && k <= k1 {
			continue
		}
		spec[k] = 0
		if k != 0 && k != half {
			spec[size-k] = 0
		}
	}
	dsp.IFFT(spec)
	out := make([]float64, n)
	for i := range out {
		out[i] = real(spec[i])
	}
	return out
}

// AdaptiveOptions parameterises the trace-cancelling attacker of the
// paper's counter-defense analysis.
type AdaptiveOptions struct {
	Baseline BaselineOptions
	// EstimationError is the attacker's relative error in estimating the
	// end-to-end gain of the compensation path (0 = oracle knowledge of
	// the victim's non-linearity and channel; realistic attackers sit at
	// 0.1-0.5). The cancelled trace leaves a residue proportional to it.
	EstimationError float64
	// TraceLo and TraceHi bound the band the attacker tries to clean
	// (default 20-50 Hz, matching the defense's primary feature).
	TraceLo, TraceHi float64
}

// DefaultAdaptiveOptions returns an oracle-grade adaptive attacker.
func DefaultAdaptiveOptions() AdaptiveOptions {
	return AdaptiveOptions{
		Baseline: DefaultBaselineOptions(),
		TraceLo:  16,
		TraceHi:  60,
	}
}

// AdaptiveBaseline builds a single-speaker attack waveform whose baseband
// is pre-distorted to cancel the sub-50 Hz non-linearity trace the
// defense looks for.
//
// The victim records (1 + d*m)^2 ~ 2d*m + d^2*m^2; the trace is the
// [TraceLo, TraceHi] part of d^2*m^2. The attacker injects its negation
// through the *linear* demodulation term by sending
//
//	m' = m - (1-err) * (d/2) * Band(m^2)
//
// so the linear copy of the compensation cancels the quadratic trace.
// Cancellation is inherently imperfect: (a) any estimation error leaves a
// proportional residue, and (b) the m^2 spectrum extends far beyond the
// trace band (up to 2*LowPassHz) — cleaning all of it would require the
// compensation itself to carry wide-band power whose own quadratic
// products regenerate traces. The defense's high-band feature therefore
// survives even an oracle attacker.
func AdaptiveBaseline(cmd *audio.Signal, o AdaptiveOptions) (*audio.Signal, error) {
	b := o.Baseline
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if o.EstimationError < 0 {
		return nil, fmt.Errorf("attack: negative estimation error %v", o.EstimationError)
	}
	if o.TraceLo <= 0 || o.TraceHi <= o.TraceLo {
		return nil, fmt.Errorf("attack: bad trace band [%v, %v]", o.TraceLo, o.TraceHi)
	}
	if cmd.Len() == 0 {
		return nil, fmt.Errorf("attack: empty command signal")
	}
	// Conditioned baseband at the command's own rate (cheaper filters).
	base := cmd.Clone()
	cut := b.LowPassHz / base.Rate
	if cut < 0.5 {
		lp := dsp.LowPassFIR(511, cut)
		base.Samples = lp.Apply(base.Samples)
	}
	base.Normalize(1)

	// Predicted quadratic trace and its compensation.
	sq := make([]float64, base.Len())
	for i, v := range base.Samples {
		sq[i] = v * v
	}
	trace := ExtractBand(sq, base.Rate, o.TraceLo, o.TraceHi)
	gain := (1 - o.EstimationError) * b.Depth / 2
	comp := base.Clone()
	for i := range comp.Samples {
		comp.Samples[i] -= gain * trace[i]
	}

	// Hand the pre-distorted baseband to the standard pipeline. Its own
	// 8 kHz low-pass leaves the (sub-50 Hz) compensation intact.
	return Baseline(comp, b)
}
