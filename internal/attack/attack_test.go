package attack

import (
	"math"
	"testing"

	"inaudible/internal/audio"
	"inaudible/internal/dsp"
	"inaudible/internal/voice"
)

func testCommand(t testing.TB) *audio.Signal {
	t.Helper()
	return voice.MustSynthesize("ok google, take a picture", voice.DefaultVoice(), 48000)
}

func bandFraction(s *audio.Signal, lo, hi float64) float64 {
	psd := dsp.Welch(s.Samples, 8192)
	in := dsp.BandPower(psd, s.Rate, 8192, lo, hi)
	total := dsp.BandPower(psd, s.Rate, 8192, 0, s.Rate/2)
	if total == 0 {
		return 0
	}
	return in / total
}

func TestBaselineOptionsValidation(t *testing.T) {
	good := DefaultBaselineOptions()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []BaselineOptions{
		{CarrierHz: 25000, Rate: 192000, LowPassHz: 8000, Depth: 0.8}, // sideband dips below 20 kHz
		{CarrierHz: 90000, Rate: 192000, LowPassHz: 8000, Depth: 0.8}, // exceeds Nyquist
		{CarrierHz: 30000, Rate: 192000, LowPassHz: 8000, Depth: 0},   // bad depth
		{CarrierHz: 30000, Rate: 192000, LowPassHz: 8000, Depth: 1.5}, // bad depth
		{CarrierHz: 30000, Rate: 0, LowPassHz: 8000, Depth: 0.8},      // bad rate
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestBaselineIsUltrasonic(t *testing.T) {
	cmd := testCommand(t)
	atk, err := Baseline(cmd, DefaultBaselineOptions())
	if err != nil {
		t.Fatal(err)
	}
	if atk.Rate != 192000 {
		t.Fatalf("rate %v", atk.Rate)
	}
	// Essentially all energy must sit above 20 kHz — the inaudibility
	// criterion of Fig. 1.
	if frac := bandFraction(atk, 0, 20000); frac > 1e-5 {
		t.Fatalf("audible-band fraction %v", frac)
	}
	// And inside the designed band.
	if frac := bandFraction(atk, 21000, 39000); frac < 0.999 {
		t.Fatalf("in-band fraction %v", frac)
	}
	if atk.Peak() > 1+1e-9 {
		t.Fatalf("peak %v", atk.Peak())
	}
}

func TestBaselineEmptyCommand(t *testing.T) {
	if _, err := Baseline(audio.New(48000, 0), DefaultBaselineOptions()); err == nil {
		t.Fatal("expected error")
	}
}

func TestBaselineDemodulatesToVoice(t *testing.T) {
	// The whole point: squaring the attack waveform (the mic's quadratic
	// term) recovers the voice command.
	cmd := testCommand(t)
	atk, err := Baseline(cmd, DefaultBaselineOptions())
	if err != nil {
		t.Fatal(err)
	}
	rec := IdealDemodulate(atk, 8000, 48000)
	if c := interiorEnvelopeCorr(cmd, rec); c < 0.9 {
		t.Fatalf("envelope correlation %v, want > 0.9", c)
	}
}

// interiorEnvelopeCorr compares the demodulated recording's envelope with
// the low-passed command's, over the interior of the signal (the 100 ms
// fade ramps at both ends are attack-waveform artefacts, not command
// content).
func interiorEnvelopeCorr(cmd, rec *audio.Signal) float64 {
	ref := cmd.Clone()
	ref.Samples = dsp.LowPassFIR(511, 8000.0/cmd.Rate).Apply(ref.Samples)
	d := ref.Duration()
	refIn := ref.Slice(0.3, d-0.3)
	recIn := rec.Slice(0.3, d-0.3)
	envA := dsp.SmoothedEnvelope(refIn.Samples, ref.Rate, 24)
	envB := dsp.SmoothedEnvelope(recIn.Samples, rec.Rate, 24)
	c, _ := dsp.MaxCorrelationLag(envA, envB, 2400)
	return c
}

func TestBaselineCarrierDominates(t *testing.T) {
	cmd := testCommand(t)
	atk, _ := Baseline(cmd, DefaultBaselineOptions())
	carrier := dsp.ToneAmplitude(atk.Samples, 30000, atk.Rate)
	if carrier < 0.3 {
		t.Fatalf("carrier amplitude %v", carrier)
	}
}

func TestLongRangeOptionsValidation(t *testing.T) {
	good := DefaultLongRangeOptions()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.NumSegments = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero segments should fail")
	}
	bad = good
	bad.CarrierPowerFraction = 1
	if err := bad.Validate(); err == nil {
		t.Error("carrier fraction 1 should fail")
	}
	if w := good.SliceWidthHz(); math.Abs(w-16000.0/60) > 1e-9 {
		t.Errorf("slice width %v", w)
	}
}

func TestLongRangePlanShape(t *testing.T) {
	cmd := testCommand(t)
	plan, err := LongRange(cmd, 20, DefaultLongRangeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Segments) != 60 {
		t.Fatalf("%d segments", len(plan.Segments))
	}
	if plan.ElementCount() < 10 {
		t.Fatalf("only %d driven elements — voice should span many slices", plan.ElementCount())
	}
	if math.Abs(plan.TotalPowerW()-20) > 1e-6 {
		t.Fatalf("total power %v, want 20", plan.TotalPowerW())
	}
	// Auto power split: carrier-heavy, mirroring the baseline's AM ratio.
	if frac := plan.CarrierPowerW / plan.TotalPowerW(); frac < 0.8 || frac >= 1 {
		t.Fatalf("carrier power fraction %v, want carrier-dominated", frac)
	}
}

func TestLongRangeErrors(t *testing.T) {
	cmd := testCommand(t)
	if _, err := LongRange(cmd, 0, DefaultLongRangeOptions()); err == nil {
		t.Error("zero power should fail")
	}
	if _, err := LongRange(audio.New(48000, 0), 10, DefaultLongRangeOptions()); err == nil {
		t.Error("empty command should fail")
	}
	if _, err := LongRange(audio.Silence(48000, 1), 10, DefaultLongRangeOptions()); err == nil {
		t.Error("silent command should fail (no band energy)")
	}
}

func TestLongRangeSlicesAreNarrowAndUltrasonic(t *testing.T) {
	cmd := testCommand(t)
	o := DefaultLongRangeOptions()
	plan, err := LongRange(cmd, 20, o)
	if err != nil {
		t.Fatal(err)
	}
	width := o.SliceWidthHz()
	for i, seg := range plan.Segments {
		if seg == nil {
			continue
		}
		lo := o.CarrierHz - o.LowPassHz + float64(i)*width
		hi := lo + width
		// >= 99% of slice energy inside its brick-wall band. The margin
		// accounts for the Welch analysis window's own spectral spread
		// (Hann main lobe ~4 bins of 23.4 Hz each at this rate).
		margin := 4 * seg.Rate / 8192
		if frac := bandFraction(seg, lo-margin, hi+margin); frac < 0.99 {
			t.Fatalf("segment %d: in-band fraction %v", i, frac)
		}
		if frac := bandFraction(seg, 0, 20000); frac > 1e-6 {
			t.Fatalf("segment %d leaks into audible band: %v", i, frac)
		}
	}
}

func TestLongRangeSlicesSumToModulated(t *testing.T) {
	// Partition completeness: summing all slices must reproduce a signal
	// confined to the double-sideband AM spectrum (nothing lost between
	// brick walls, nothing outside).
	cmd := testCommand(t)
	plan, err := LongRange(cmd, 20, DefaultLongRangeOptions())
	if err != nil {
		t.Fatal(err)
	}
	sum := audio.New(plan.Options.Rate, plan.Carrier.Duration())
	for _, seg := range plan.Segments {
		if seg != nil {
			dsp.Add(sum.Samples, seg.Samples)
		}
	}
	if frac := bandFraction(sum, 21900, 38100); frac < 0.99 {
		t.Fatalf("summed slices band fraction %v", frac)
	}
}

func TestSegmentSelfDemodulationConfinedToSliceWidth(t *testing.T) {
	// The core long-range insight: squaring ONE slice produces baseband
	// content only inside [0, sliceWidth]. With 60 slices over the 16 kHz
	// DSB band the width is ~267 Hz; with 640 it is 25 Hz (< 50 Hz).
	cmd := testCommand(t)
	o := DefaultLongRangeOptions()
	o.NumSegments = 640
	plan, err := LongRange(cmd, 20, o)
	if err != nil {
		t.Fatal(err)
	}
	width := o.SliceWidthHz()
	if width >= 50 {
		t.Fatalf("test setup: width %v", width)
	}
	checked := 0
	for _, seg := range plan.Segments {
		if seg == nil || checked >= 5 {
			continue
		}
		sq := seg.Clone()
		for i, v := range sq.Samples {
			sq.Samples[i] = v * v
		}
		psd := dsp.Welch(sq.Samples, 16384)
		inWidth := dsp.BandPower(psd, sq.Rate, 16384, 0, width+5)
		audible := dsp.BandPower(psd, sq.Rate, 16384, 50, 20000)
		if audible > inWidth*0.01 {
			t.Fatalf("slice self-demodulation leaked above 50 Hz: audible %v vs low %v",
				audible, inWidth)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no slices checked")
	}
}

func TestLongRangeCombinedDemodulatesToVoice(t *testing.T) {
	cmd := testCommand(t)
	plan, err := LongRange(cmd, 20, DefaultLongRangeOptions())
	if err != nil {
		t.Fatal(err)
	}
	combined := plan.CombinedUltrasound()
	rec := IdealDemodulate(combined, 8000, 48000)
	// The sliced reconstruction carries slightly more residual distortion
	// than the monolithic baseline (slice-edge effects), so the bar sits
	// a little lower; end-to-end recognition is asserted in internal/core.
	if c := interiorEnvelopeCorr(cmd, rec); c < 0.85 {
		t.Fatalf("envelope correlation %v", c)
	}
}

func TestLongRangePowerProportionalToSliceEnergy(t *testing.T) {
	cmd := testCommand(t)
	plan, err := LongRange(cmd, 20, DefaultLongRangeOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Power ratios must match energy ratios between two driven slices.
	var i1, i2 = -1, -1
	for i, s := range plan.Segments {
		if s == nil {
			continue
		}
		if i1 == -1 {
			i1 = i
		} else {
			i2 = i
			break
		}
	}
	if i2 == -1 {
		t.Fatal("fewer than two driven slices")
	}
	e1 := dsp.Energy(plan.Segments[i1].Samples)
	e2 := dsp.Energy(plan.Segments[i2].Samples)
	p1, p2 := plan.SegmentPowerW[i1], plan.SegmentPowerW[i2]
	if math.Abs(p1/p2-e1/e2) > 1e-6*(e1/e2) {
		t.Fatalf("power ratio %v vs energy ratio %v", p1/p2, e1/e2)
	}
}

func TestIdealDemodulateOnPureCarrierIsSilent(t *testing.T) {
	carrier := audio.Tone(192000, 30000, 1, 0.5)
	rec := IdealDemodulate(carrier, 8000, 48000)
	// A bare carrier demodulates to DC only, which is removed.
	if rms := rec.Slice(0.1, 0.4).RMS(); rms > 0.05 {
		t.Fatalf("pure carrier demodulated to RMS %v", rms)
	}
}
