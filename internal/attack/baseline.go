// Package attack implements the paper's offensive pipelines.
//
// Baseline (single speaker — the Song–Mittal / DolphinAttack design the
// NSDI paper starts from, §3.2 of the supplied text):
//
//	voice -> LPF 8 kHz -> upsample to 192 kHz -> AM at fc -> + carrier
//
// played from one tweeter. Its range is capped: raising power makes the
// *speaker's* own quadratic term demodulate the signal into the audible
// band right next to the attacker (self-leakage).
//
// Long range (the NSDI 2018 contribution): the modulated spectrum is cut
// into N narrow contiguous slices, each assigned to its own ultrasonic
// array element, with the carrier on a dedicated element. Every element's
// self-intermodulation now falls inside [0, sliceWidth] — below 50 Hz for
// large N — while the victim microphone, where all slices and the carrier
// recombine, still demodulates the complete command.
package attack

import (
	"fmt"
	"math"

	"inaudible/internal/audio"
	"inaudible/internal/dsp"
)

// BaselineOptions parameterises the single-speaker attack signal chain.
type BaselineOptions struct {
	// CarrierHz is the AM carrier (paper: 30 kHz; must be >= LowPassHz +
	// 20 kHz so the lower sideband stays ultrasonic).
	CarrierHz float64
	// Rate is the DAC rate of the attack waveform (paper: 192 kHz).
	Rate float64
	// LowPassHz bounds the voice baseband before modulation (paper: 8 kHz).
	LowPassHz float64
	// Depth is the AM modulation depth in (0, 1].
	Depth float64
}

// DefaultBaselineOptions returns the paper's published parameters.
func DefaultBaselineOptions() BaselineOptions {
	return BaselineOptions{CarrierHz: 30000, Rate: 192000, LowPassHz: 8000, Depth: 0.8}
}

// Validate checks the option invariants from §3.2.
func (o BaselineOptions) Validate() error {
	if o.Rate <= 0 || o.CarrierHz <= 0 || o.LowPassHz <= 0 {
		return fmt.Errorf("attack: non-positive parameter in %+v", o)
	}
	if o.Depth <= 0 || o.Depth > 1 {
		return fmt.Errorf("attack: modulation depth %v outside (0,1]", o.Depth)
	}
	if o.CarrierHz-o.LowPassHz < 20000 {
		return fmt.Errorf("attack: carrier %v Hz leaves sideband below 20 kHz (audible)", o.CarrierHz)
	}
	if o.CarrierHz+o.LowPassHz >= o.Rate/2 {
		return fmt.Errorf("attack: carrier %v Hz + sideband exceeds Nyquist of %v Hz", o.CarrierHz, o.Rate)
	}
	return nil
}

// Baseline converts a voice command waveform into the single-speaker
// attack drive waveform (peak-normalised; the speaker model applies
// power). The returned signal is entirely ultrasonic: spectrum in
// [CarrierHz-LowPassHz, CarrierHz+LowPassHz].
func Baseline(cmd *audio.Signal, o BaselineOptions) (*audio.Signal, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if cmd.Len() == 0 {
		return nil, fmt.Errorf("attack: empty command signal")
	}
	// Step 1 — low-pass filter the normal signal at 8 kHz.
	base := cmd.Clone()
	cut := o.LowPassHz / base.Rate
	if cut < 0.5 {
		lp := dsp.LowPassFIR(511, cut)
		base.Samples = lp.Apply(base.Samples)
	}
	// Step 2 — upsample so ultrasound fits under Nyquist.
	if base.Rate != o.Rate {
		base = base.Resampled(o.Rate)
	}
	base.Normalize(1)
	// Steps 3+4 — amplitude modulation plus carrier wave addition:
	// s(t) = (1 + depth*m(t)) * cos(2*pi*fc*t), normalised.
	out := audio.New(o.Rate, base.Duration())
	w := 2 * math.Pi * o.CarrierHz / o.Rate
	for i := range out.Samples {
		out.Samples[i] = (1 + o.Depth*base.Samples[i]) * math.Cos(w*float64(i))
	}
	Fade(out, 0.1)
	out.Normalize(1)
	return out, nil
}

// Fade applies a raised-cosine fade-in/out of the given duration to both
// ends of the signal, in place. Attack waveforms must ramp: an abrupt
// carrier onset is a broadband "pop" that is both audible and a give-away
// low-frequency transient in the victim's recording.
func Fade(s *audio.Signal, seconds float64) {
	n := int(seconds * s.Rate)
	if n <= 0 || 2*n >= s.Len() {
		return
	}
	for i := 0; i < n; i++ {
		g := 0.5 - 0.5*math.Cos(math.Pi*float64(i)/float64(n))
		s.Samples[i] *= g
		s.Samples[s.Len()-1-i] *= g
	}
}

// IdealDemodulate is the reference receiver used by tests and analysis: it
// applies a pure quadratic, low-pass filters at cutHz and resamples to
// outRate — exactly what the victim microphone's non-linearity does, minus
// device imperfections.
func IdealDemodulate(ultra *audio.Signal, cutHz, outRate float64) *audio.Signal {
	sq := ultra.Clone()
	for i, v := range sq.Samples {
		sq.Samples[i] = v * v
	}
	lp := dsp.LowPassFIR(511, cutHz/sq.Rate)
	sq.Samples = lp.Apply(sq.Samples)
	// AC coupling, as in a real microphone amplifier: removes the DC
	// pedestal the squared carrier introduces (including its slow ramp
	// under the attack waveform's fade-in/out).
	dsp.DCBlock(sq.Samples, 15, sq.Rate)
	out := sq.Resampled(outRate)
	out.Normalize(0.9)
	return out
}
