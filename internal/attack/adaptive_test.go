package attack

import (
	"math"
	"testing"

	"inaudible/internal/audio"
	"inaudible/internal/dsp"
)

func TestExtractBandIsolatesTone(t *testing.T) {
	const rate = 48000.0
	mix := audio.MultiTone(rate, 1, 1, 100, 1000, 5000)
	band := ExtractBand(mix.Samples, rate, 800, 1200)
	if a := dsp.ToneAmplitude(band, 1000, rate); a < 0.2 {
		t.Fatalf("in-band tone lost: %v", a)
	}
	if a := dsp.ToneAmplitude(band, 100, rate); a > 0.005 {
		t.Fatalf("out-of-band tone leaked: %v", a)
	}
	if a := dsp.ToneAmplitude(band, 5000, rate); a > 0.005 {
		t.Fatalf("out-of-band tone leaked: %v", a)
	}
}

func TestExtractBandEmpty(t *testing.T) {
	if out := ExtractBand(nil, 48000, 10, 100); out != nil {
		t.Fatal("nil input should return nil")
	}
}

func TestExtractBandPartition(t *testing.T) {
	// Two adjacent bands partition their union: sum equals the original
	// content of the union band.
	const rate = 48000.0
	sig := audio.Chirp(rate, 200, 4000, 1, 0.5)
	lo := ExtractBand(sig.Samples, rate, 100, 2000)
	hi := ExtractBand(sig.Samples, rate, 2000, 5000)
	all := ExtractBand(sig.Samples, rate, 100, 5000)
	for i := range all {
		if math.Abs(lo[i]+hi[i]-all[i]) > 1e-9 {
			t.Fatalf("partition violated at %d", i)
		}
	}
}

func TestAdaptiveBaselineValidation(t *testing.T) {
	cmd := testCommand(t)
	o := DefaultAdaptiveOptions()
	o.EstimationError = -1
	if _, err := AdaptiveBaseline(cmd, o); err == nil {
		t.Error("negative error should fail")
	}
	o = DefaultAdaptiveOptions()
	o.TraceLo, o.TraceHi = 50, 20
	if _, err := AdaptiveBaseline(cmd, o); err == nil {
		t.Error("inverted trace band should fail")
	}
	o = DefaultAdaptiveOptions()
	if _, err := AdaptiveBaseline(audio.New(48000, 0), o); err == nil {
		t.Error("empty command should fail")
	}
}

func TestAdaptiveBaselineStillUltrasonic(t *testing.T) {
	cmd := testCommand(t)
	o := DefaultAdaptiveOptions()
	atk, err := AdaptiveBaseline(cmd, o)
	if err != nil {
		t.Fatal(err)
	}
	if frac := bandFraction(atk, 0, 20000); frac > 1e-5 {
		t.Fatalf("adaptive attack leaks audible energy: %v", frac)
	}
}

// traceSub50 measures the trace-band power fraction of the ideal
// demodulation of an attack waveform.
func traceSub50(atk *audio.Signal) float64 {
	rec := IdealDemodulate(atk, 8000, 48000)
	psd := dsp.Welch(rec.Samples, 16384)
	low := dsp.BandPower(psd, 48000, 16384, 16, 60)
	voice := dsp.BandPower(psd, 48000, 16384, 60, 8000)
	return low / voice
}

func TestAdaptiveCancellationReducesTrace(t *testing.T) {
	cmd := testCommand(t)
	std, err := Baseline(cmd, DefaultBaselineOptions())
	if err != nil {
		t.Fatal(err)
	}
	oracle := DefaultAdaptiveOptions()
	adaptive, err := AdaptiveBaseline(cmd, oracle)
	if err != nil {
		t.Fatal(err)
	}
	before := traceSub50(std)
	after := traceSub50(adaptive)
	if after >= before {
		t.Fatalf("oracle cancellation did not reduce the trace: %v -> %v", before, after)
	}
	// Meaningful reduction expected from an oracle attacker.
	if after > before*0.7 {
		t.Fatalf("oracle cancellation too weak: %v -> %v", before, after)
	}
}

func TestAdaptiveResidueScalesWithError(t *testing.T) {
	cmd := testCommand(t)
	var prev float64
	for i, eps := range []float64{0, 0.3, 1.0} {
		o := DefaultAdaptiveOptions()
		o.EstimationError = eps
		atk, err := AdaptiveBaseline(cmd, o)
		if err != nil {
			t.Fatal(err)
		}
		tr := traceSub50(atk)
		if i > 0 && tr <= prev {
			t.Fatalf("residual trace not increasing with error: eps=%v trace=%v prev=%v",
				eps, tr, prev)
		}
		prev = tr
	}
}

func TestAdaptiveCannotCleanHighBand(t *testing.T) {
	// The m^2 residue above the speech band survives oracle cancellation
	// of the low band — the defense's trump card (E13).
	cmd := testCommand(t)
	std, _ := Baseline(cmd, DefaultBaselineOptions())
	adaptive, err := AdaptiveBaseline(cmd, DefaultAdaptiveOptions())
	if err != nil {
		t.Fatal(err)
	}
	highOf := func(atk *audio.Signal) float64 {
		rec := IdealDemodulate(atk, 16000, 48000)
		psd := dsp.Welch(rec.Samples, 16384)
		return dsp.BandPower(psd, 48000, 16384, 8500, 16000) /
			dsp.BandPower(psd, 48000, 16384, 60, 8000)
	}
	a, b := highOf(std), highOf(adaptive)
	if b < a*0.5 {
		t.Fatalf("high-band residue dropped too much: %v -> %v", a, b)
	}
}

func TestAdaptiveStillRecognizable(t *testing.T) {
	// Cancellation must not destroy the attack itself: the demodulated
	// envelope still tracks the command.
	cmd := testCommand(t)
	adaptive, err := AdaptiveBaseline(cmd, DefaultAdaptiveOptions())
	if err != nil {
		t.Fatal(err)
	}
	rec := IdealDemodulate(adaptive, 8000, 48000)
	if c := interiorEnvelopeCorr(cmd, rec); c < 0.9 {
		t.Fatalf("adaptive attack degraded the command: envelope corr %v", c)
	}
}

func TestFadeShape(t *testing.T) {
	s := audio.Tone(48000, 1000, 1, 1)
	Fade(s, 0.1)
	if s.Samples[0] != 0 {
		t.Fatal("fade-in must start at zero")
	}
	if math.Abs(s.Samples[s.Len()-1]) > 1e-12 {
		t.Fatal("fade-out must end at zero")
	}
	mid := s.Slice(0.4, 0.6)
	if mid.Peak() < 0.99 {
		t.Fatal("fade must not touch the middle")
	}
	// Degenerate: fade longer than the signal is a no-op.
	short := audio.Tone(48000, 1000, 1, 0.05)
	before := short.Clone()
	Fade(short, 0.1)
	for i := range short.Samples {
		if short.Samples[i] != before.Samples[i] {
			t.Fatal("oversized fade should be a no-op")
		}
	}
}
