package attack

import (
	"fmt"
	"math"

	"inaudible/internal/audio"
	"inaudible/internal/dsp"
)

// LongRangeOptions parameterises the multi-speaker spectrum-splitting
// attack.
type LongRangeOptions struct {
	// CarrierHz, Rate, LowPassHz, Depth as in BaselineOptions.
	CarrierHz float64
	Rate      float64
	LowPassHz float64
	Depth     float64
	// NumSegments is the number of sideband slices, i.e. array elements
	// minus the dedicated carrier element (paper rig: 60 + 1).
	NumSegments int
	// CarrierPowerFraction is the share of total electrical power given
	// to the carrier element. Zero (the default) derives the split from
	// the AM signal's own carrier/sideband energy ratio — the same
	// relative scaling the single-speaker baseline transmits — which
	// keeps the wanted carrier-x-sideband demodulation product far above
	// the distorting sideband self-products (m(t)^2). Non-zero values
	// override it for ablation studies.
	CarrierPowerFraction float64
}

// DefaultLongRangeOptions returns the published rig: 61 elements
// (60 slices + carrier) at 30 kHz.
func DefaultLongRangeOptions() LongRangeOptions {
	return LongRangeOptions{
		CarrierHz:            30000,
		Rate:                 192000,
		LowPassHz:            8000,
		Depth:                1.0,
		NumSegments:          60,
		CarrierPowerFraction: 0, // auto: match the AM carrier/sideband ratio
	}
}

// Validate checks the option invariants.
func (o LongRangeOptions) Validate() error {
	b := BaselineOptions{CarrierHz: o.CarrierHz, Rate: o.Rate, LowPassHz: o.LowPassHz, Depth: math.Min(o.Depth, 1)}
	if err := b.Validate(); err != nil {
		return err
	}
	if o.NumSegments < 1 {
		return fmt.Errorf("attack: need >= 1 segment, got %d", o.NumSegments)
	}
	if o.CarrierPowerFraction < 0 || o.CarrierPowerFraction >= 1 {
		return fmt.Errorf("attack: carrier power fraction %v outside [0,1)", o.CarrierPowerFraction)
	}
	return nil
}

// SliceWidthHz returns the bandwidth each element is responsible for. The
// long-range attack slices the double-sideband AM spectrum, which spans
// [CarrierHz-LowPassHz, CarrierHz+LowPassHz].
func (o LongRangeOptions) SliceWidthHz() float64 {
	return 2 * o.LowPassHz / float64(o.NumSegments)
}

// Plan is a fully assembled long-range attack: per-element drive waveforms
// and the power split. Element i plays Segments[i] at SegmentPowerW[i];
// one extra element plays Carrier at CarrierPowerW.
type Plan struct {
	Segments      []*audio.Signal // nil entries carry no energy
	SegmentPowerW []float64
	Carrier       *audio.Signal
	CarrierPowerW float64
	Options       LongRangeOptions
}

// ElementCount returns the number of driven elements (non-empty segments
// plus the carrier).
func (p *Plan) ElementCount() int {
	n := 1
	for _, s := range p.Segments {
		if s != nil {
			n++
		}
	}
	return n
}

// TotalPowerW returns the electrical power of the whole plan.
func (p *Plan) TotalPowerW() float64 {
	t := p.CarrierPowerW
	for _, w := range p.SegmentPowerW {
		t += w
	}
	return t
}

// LongRange builds the multi-speaker attack plan for a voice command at
// the given total electrical power. The command is low-pass filtered,
// upsampled and AM-modulated (suppressed carrier) onto CarrierHz, exactly
// as the baseline does; the modulated double-sideband spectrum
// [fc-LowPassHz, fc+LowPassHz] is then partitioned into NumSegments
// contiguous slices (FFT-domain brick-wall masks, so the slices sum
// exactly to the modulated signal). Per-slice power is allocated
// proportionally to slice energy, preserving the voice's spectral shape
// at the victim. The carrier is played by a dedicated extra element —
// this separation is what removes the per-element audible leakage: no
// single element carries both a sideband and the carrier, and each
// slice's self-intermodulation is confined to [0, SliceWidthHz].
func LongRange(cmd *audio.Signal, totalPowerW float64, o LongRangeOptions) (*Plan, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if totalPowerW <= 0 {
		return nil, fmt.Errorf("attack: total power %v W", totalPowerW)
	}
	if cmd.Len() == 0 {
		return nil, fmt.Errorf("attack: empty command signal")
	}

	// Baseband conditioning (identical to the baseline front end).
	base := cmd.Clone()
	cut := o.LowPassHz / base.Rate
	if cut < 0.5 {
		lp := dsp.LowPassFIR(511, cut)
		base.Samples = lp.Apply(base.Samples)
	}
	if base.Rate != o.Rate {
		base = base.Resampled(o.Rate)
	}
	base.Normalize(1)

	// Suppressed-carrier AM: mod(t) = depth * m(t) * cos(wc t).
	mod := audio.New(o.Rate, base.Duration())
	wc := 2 * math.Pi * o.CarrierHz / o.Rate
	for i := range mod.Samples {
		mod.Samples[i] = o.Depth * base.Samples[i] * math.Cos(wc*float64(i))
	}

	// Partition [fc-LowPassHz, fc+LowPassHz] into brick-wall slices.
	n := len(mod.Samples)
	size := dsp.NextPowerOfTwo(n)
	spec := make([]complex128, size)
	for i, v := range mod.Samples {
		spec[i] = complex(v, 0)
	}
	dsp.FFT(spec)

	width := o.SliceWidthHz()
	plan := &Plan{
		Segments:      make([]*audio.Signal, o.NumSegments),
		SegmentPowerW: make([]float64, o.NumSegments),
		Options:       o,
	}
	energies := make([]float64, o.NumSegments)
	var totalEnergy float64
	half := size / 2
	sliceSpec := make([]complex128, size)
	for seg := 0; seg < o.NumSegments; seg++ {
		lo := o.CarrierHz - o.LowPassHz + float64(seg)*width
		hi := lo + width
		k0 := int(math.Ceil(lo * float64(size) / o.Rate))
		k1 := int(math.Ceil(hi*float64(size)/o.Rate)) - 1
		if k1 >= half {
			k1 = half - 1
		}
		for i := range sliceSpec {
			sliceSpec[i] = 0
		}
		for k := k0; k <= k1; k++ {
			sliceSpec[k] = spec[k]
			sliceSpec[size-k] = spec[size-k]
		}
		tmp := make([]complex128, size)
		copy(tmp, sliceSpec)
		dsp.IFFT(tmp)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = real(tmp[i])
		}
		sl := &audio.Signal{Rate: o.Rate, Samples: samples}
		Fade(sl, 0.1)
		e := dsp.Energy(sl.Samples)
		if e < 1e-12 {
			continue
		}
		energies[seg] = e
		totalEnergy += e
		plan.Segments[seg] = sl
	}
	if totalEnergy == 0 {
		return nil, fmt.Errorf("attack: command has no energy in the modulated band")
	}

	cf := o.CarrierPowerFraction
	if cf == 0 {
		// Natural AM split: mean carrier power (unit-amplitude cosine) vs
		// mean sideband power of the modulated signal.
		pMod := dsp.Energy(mod.Samples) / float64(len(mod.Samples))
		cf = 0.5 / (0.5 + pMod)
	}
	sidebandPower := totalPowerW * (1 - cf)
	for seg := range plan.Segments {
		if plan.Segments[seg] == nil {
			continue
		}
		plan.SegmentPowerW[seg] = sidebandPower * energies[seg] / totalEnergy
	}
	plan.Carrier = audio.ToneAt(o.Rate, o.CarrierHz, 1, 0, base.Duration())
	Fade(plan.Carrier, 0.1)
	plan.CarrierPowerW = totalPowerW * cf
	return plan, nil
}

// ElementDrive pairs one array element's drive waveform with the
// electrical power assigned to it.
type ElementDrive struct {
	Drive  *audio.Signal
	PowerW float64
}

// ElementDrives flattens the plan into the per-element assignments the
// emitting rig actually drives: every energised segment on its own
// element, followed by the carrier spread over as many dedicated elements
// as its power requires (ceil(CarrierPowerW / maxElementPowerW); a
// non-positive maxElementPowerW keeps a single carrier element). Each
// carrier element still plays a single pure tone, so per-element
// intermodulation stays zero — this is why the paper's rig is a dense
// array: most of its 61 transducers carry the carrier.
func (p *Plan) ElementDrives(maxElementPowerW float64) []ElementDrive {
	var out []ElementDrive
	for i, seg := range p.Segments {
		if seg == nil || p.SegmentPowerW[i] <= 0 {
			continue
		}
		out = append(out, ElementDrive{Drive: seg, PowerW: p.SegmentPowerW[i]})
	}
	if p.Carrier != nil && p.CarrierPowerW > 0 {
		carrierElems := 1
		if maxElementPowerW > 0 && p.CarrierPowerW > maxElementPowerW {
			carrierElems = int(math.Ceil(p.CarrierPowerW / maxElementPowerW))
		}
		for i := 0; i < carrierElems; i++ {
			out = append(out, ElementDrive{Drive: p.Carrier, PowerW: p.CarrierPowerW / float64(carrierElems)})
		}
	}
	return out
}

// CombinedUltrasound sums all plan waveforms with their power weighting
// applied — the field an ideal colocated array would create. Used by
// analysis and tests; the full simulation drives real speaker models
// instead.
func (p *Plan) CombinedUltrasound() *audio.Signal {
	out := audio.New(p.Options.Rate, p.Carrier.Duration())
	add := func(s *audio.Signal, powerW float64) {
		if s == nil || powerW <= 0 {
			return
		}
		rms := s.RMS()
		if rms == 0 {
			return
		}
		g := math.Sqrt(powerW) / rms
		for i, v := range s.Samples {
			if i >= len(out.Samples) {
				break
			}
			out.Samples[i] += v * g
		}
	}
	for i, s := range p.Segments {
		add(s, p.SegmentPowerW[i])
	}
	add(p.Carrier, p.CarrierPowerW)
	return out
}
