package acoustics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"inaudible/internal/audio"
	"inaudible/internal/dsp"
)

func TestSPLConversions(t *testing.T) {
	// 1 Pa RMS is ~94 dB SPL.
	if got := SPL(1); math.Abs(got-93.979) > 0.01 {
		t.Errorf("SPL(1 Pa)=%v", got)
	}
	if got := SPL(ReferencePressure); math.Abs(got) > 1e-9 {
		t.Errorf("SPL(p0)=%v, want 0", got)
	}
	if !math.IsInf(SPL(0), -1) {
		t.Error("SPL(0) should be -Inf")
	}
	// Round trip.
	for _, db := range []float64{0, 40, 94, 120} {
		if got := SPL(PressureFromSPL(db)); math.Abs(got-db) > 1e-9 {
			t.Errorf("round trip %v -> %v", db, got)
		}
	}
}

func TestSpeedOfSound(t *testing.T) {
	if got := SpeedOfSound(20); math.Abs(got-343.2) > 0.5 {
		t.Errorf("c(20C)=%v", got)
	}
	if got := SpeedOfSound(0); math.Abs(got-331.3) > 0.1 {
		t.Errorf("c(0C)=%v", got)
	}
	if SpeedOfSound(30) <= SpeedOfSound(10) {
		t.Error("speed of sound must increase with temperature")
	}
}

func TestAbsorptionISO9613ReferenceValues(t *testing.T) {
	// Spot-check against published ISO 9613-1 style values for
	// 20 C / 50% RH / 1 atm (tolerances generous: table roundings vary).
	air := DefaultAir()
	cases := []struct {
		f        float64
		wantDBkm float64 // dB per kilometre
		tol      float64
	}{
		{1000, 4.7, 2},
		{4000, 25, 10},
		{10000, 160, 60},
	}
	for _, c := range cases {
		got := air.AbsorptionDBPerMeter(c.f) * 1000
		if math.Abs(got-c.wantDBkm) > c.tol {
			t.Errorf("alpha(%v Hz)=%v dB/km, want ~%v", c.f, got, c.wantDBkm)
		}
	}
}

func TestAbsorptionMonotoneInFrequency(t *testing.T) {
	// Ultrasound must attenuate faster than voice band — the physical fact
	// that penalises high carriers (DESIGN.md E8).
	air := DefaultAir()
	prev := 0.0
	for _, f := range []float64{100, 1000, 5000, 10000, 20000, 30000, 40000, 60000} {
		a := air.AbsorptionDBPerMeter(f)
		if a < prev {
			t.Fatalf("absorption not monotone at %v Hz: %v < %v", f, a, prev)
		}
		prev = a
	}
	if air.AbsorptionDBPerMeter(0) != 0 {
		t.Error("alpha(0) should be 0")
	}
	// At 30 kHz absorption should be on the order of 0.1 dB/m or more.
	if a := air.AbsorptionDBPerMeter(30000); a < 0.05 {
		t.Errorf("alpha(30 kHz)=%v dB/m suspiciously low", a)
	}
}

func TestPropagateSpreadingLoss(t *testing.T) {
	// Low frequency, short range: absorption negligible, so amplitude
	// should scale as 1/r.
	src := audio.Tone(48000, 100, 1, 0.5)
	for _, r := range []float64{1.0, 2.0, 4.0} {
		p := Path{Distance: r, Air: DefaultAir()}
		out := p.Propagate(src)
		mid := out.Slice(0.1, 0.4)
		want := (1 / math.Sqrt2) / r
		if got := mid.RMS(); math.Abs(got-want)/want > 0.02 {
			t.Errorf("r=%v: RMS %v want %v", r, got, want)
		}
	}
}

func TestPropagateUltrasoundDecaysFaster(t *testing.T) {
	const rate = 192000.0
	dist := 10.0
	voice := audio.Tone(rate, 1000, 1, 0.25)
	ultra := audio.Tone(rate, 40000, 1, 0.25)
	p := Path{Distance: dist, Air: DefaultAir()}
	voiceOut := p.Propagate(voice).Slice(0.05, 0.2).RMS()
	ultraOut := p.Propagate(ultra).Slice(0.05, 0.2).RMS()
	// Both suffer the same spreading; ultrasound additionally absorbs.
	if ultraOut >= voiceOut {
		t.Fatalf("ultrasound should decay faster: voice %v ultra %v", voiceOut, ultraOut)
	}
}

func TestPropagateDelay(t *testing.T) {
	const rate = 48000.0
	// An impulse at t=0.1 s propagated over 3.43 m should arrive ~10 ms later.
	src := audio.New(rate, 0.5)
	src.Samples[4800] = 1
	c := SpeedOfSound(20)
	dist := c * 0.010
	p := Path{Distance: dist, Air: DefaultAir(), IncludeDelay: true}
	out := p.Propagate(src)
	argmax := 0
	for i, v := range out.Samples {
		if math.Abs(v) > math.Abs(out.Samples[argmax]) {
			argmax = i
		}
	}
	wantIdx := 4800 + int(0.010*rate)
	if int(math.Abs(float64(argmax-wantIdx))) > 3 {
		t.Fatalf("impulse arrived at %d, want ~%d", argmax, wantIdx)
	}
}

func TestPropagatePanicsOnBadDistance(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Path{Distance: 0}.Propagate(audio.Tone(48000, 100, 1, 0.1))
}

func TestAttenuationMatchesPropagate(t *testing.T) {
	const rate, f = 192000.0, 30000.0
	src := audio.Tone(rate, f, 1, 0.25)
	for _, r := range []float64{1, 3, 7} {
		p := Path{Distance: r, Air: DefaultAir()}
		got := p.Propagate(src).Slice(0.05, 0.2).RMS() * math.Sqrt2
		want := p.Attenuation(f)
		if math.Abs(got-want)/want > 0.03 {
			t.Errorf("r=%v: measured %v predicted %v", r, got, want)
		}
	}
}

func TestAttenuationMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		freq := 100 + rng.Float64()*50000
		r1 := 0.5 + rng.Float64()*5
		r2 := r1 + 0.5 + rng.Float64()*10
		p1 := Path{Distance: r1, Air: DefaultAir()}
		p2 := Path{Distance: r2, Air: DefaultAir()}
		return p2.Attenuation(freq) < p1.Attenuation(freq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAmbientNoiseLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := AmbientNoise(rng, 48000, 2, 40)
	if got := SPL(n.RMS()); math.Abs(got-40) > 1 {
		t.Fatalf("ambient noise at %v dB SPL, want 40", got)
	}
}

func TestPositionDistance(t *testing.T) {
	a := Position{0, 0, 0}
	b := Position{3, 4, 0}
	if d := a.Distance(b); d != 5 {
		t.Fatalf("distance %v", d)
	}
}

func TestImagePathsCount(t *testing.T) {
	room := MeetingRoom()
	src := Position{1, 1, 1}
	dst := Position{4, 2, 1.2}
	paths := room.ImagePaths(src, dst)
	if len(paths) != 7 {
		t.Fatalf("got %d paths, want 7 (direct + 6 walls)", len(paths))
	}
	if paths[0].Gain != 1 {
		t.Fatal("direct path gain must be 1")
	}
	// All reflections are longer than the direct path.
	for i, pg := range paths[1:] {
		if pg.Distance <= paths[0].Distance {
			t.Fatalf("reflection %d shorter than direct: %v <= %v", i, pg.Distance, paths[0].Distance)
		}
		if pg.Gain != room.Reflection {
			t.Fatalf("reflection gain %v", pg.Gain)
		}
	}
	// Anechoic room: only the direct path.
	room.Reflection = 0
	if got := len(room.ImagePaths(src, dst)); got != 1 {
		t.Fatalf("anechoic paths %d", got)
	}
}

func TestPropagateInRoomAddsReverb(t *testing.T) {
	room := MeetingRoom()
	src := audio.Tone(48000, 1000, 1, 0.3)
	from := Position{1, 2, 1.2}
	to := Position{4, 2, 1.2}
	wet := room.PropagateInRoom(src, from, to)
	room.Reflection = 0
	dry := room.PropagateInRoom(src, from, to)
	if wet.Len() != src.Len() || dry.Len() != src.Len() {
		t.Fatal("length mismatch")
	}
	// Reverberant field carries more energy than the direct path alone.
	if wet.RMS() <= dry.RMS()*1.0001 {
		t.Fatalf("reflections added no energy: wet %v dry %v", wet.RMS(), dry.RMS())
	}
}

func TestWelchPressureCalibration(t *testing.T) {
	// A 0.1 Pa-amplitude tone is ~71 dB SPL; check the PSD-based SPL path
	// used by the psycho package agrees with the time-domain RMS.
	s := audio.Tone(48000, 1000, 0.1, 1)
	psd := dsp.Welch(s.Samples, 4096)
	p := dsp.BandPower(psd, 48000, 4096, 800, 1200)
	splFromPSD := SPL(math.Sqrt(p))
	splFromRMS := SPL(s.RMS())
	if math.Abs(splFromPSD-splFromRMS) > 0.5 {
		t.Fatalf("PSD SPL %v vs RMS SPL %v", splFromPSD, splFromRMS)
	}
}
