package acoustics

import (
	"math"
	"testing"

	"inaudible/internal/audio"
	"inaudible/internal/dsp"
)

// Room reverb properties beyond path counts: energy decay behaviour and
// geometric symmetry of the image-source model.

// reverbRoom returns the test geometry: source and receiver well inside
// the meeting room, 3 m apart.
func reverbRoom(reflection float64) (Room, Position, Position) {
	r := MeetingRoom()
	r.Reflection = reflection
	return r, Position{X: 1, Y: 2, Z: 1.2}, Position{X: 4, Y: 2, Z: 0.8}
}

// clickSignal is a short band-limited click: all the energy arrives in a
// few milliseconds, so direct sound and reflections separate in time.
func clickSignal() *audio.Signal {
	s := audio.New(48000, 0.25)
	for i := 0; i < 48; i++ {
		w := 0.5 - 0.5*math.Cos(2*math.Pi*float64(i)/48)
		s.Samples[i] = w * math.Sin(2*math.Pi*2000*float64(i)/48000)
	}
	return s
}

// windowEnergy sums the squared samples of [from, to) seconds.
func windowEnergy(s *audio.Signal, from, to float64) float64 {
	i0 := int(from * s.Rate)
	i1 := int(to * s.Rate)
	if i1 > s.Len() {
		i1 = s.Len()
	}
	var e float64
	for _, v := range s.Samples[i0:i1] {
		e += v * v
	}
	return e
}

// TestRoomLateEnergyGrowsWithReflection checks an RT60-style
// monotonicity: more reflective surfaces leave strictly more late (post
// direct-arrival) energy relative to the direct sound.
func TestRoomLateEnergyGrowsWithReflection(t *testing.T) {
	click := clickSignal()
	var prev float64
	for i, refl := range []float64{0, 0.2, 0.45, 0.7, 0.9} {
		r, from, to := reverbRoom(refl)
		wet := r.PropagateInRoom(click, from, to)
		// Direct path is 3 m ~ 8.7 ms; the click is done by ~10 ms after
		// arrival. Everything later is reflections.
		direct := windowEnergy(wet, 0, 0.020)
		late := windowEnergy(wet, 0.020, wet.Duration())
		if direct <= 0 {
			t.Fatalf("reflection %v: no direct energy", refl)
		}
		ratio := late / direct
		if i > 0 && ratio <= prev {
			t.Fatalf("late/direct ratio not monotonic at reflection %v: %v <= %v", refl, ratio, prev)
		}
		prev = ratio
	}
}

// TestRoomAnechoicHasNoLateEnergy checks the zero-reflection room is a
// pure free-field path: nothing arrives after the click has passed.
func TestRoomAnechoicHasNoLateEnergy(t *testing.T) {
	click := clickSignal()
	r, from, to := reverbRoom(0)
	wet := r.PropagateInRoom(click, from, to)
	direct := windowEnergy(wet, 0, 0.020)
	late := windowEnergy(wet, 0.025, wet.Duration())
	if late > 1e-9*direct {
		t.Fatalf("anechoic room has late energy: %v of direct %v", late, direct)
	}
}

// TestRoomReciprocity checks the acoustic reciprocity of the first-order
// image-source model: swapping source and receiver yields the same
// response, because every wall's image distance is symmetric in the two
// endpoints.
func TestRoomReciprocity(t *testing.T) {
	click := clickSignal()
	r, a, b := reverbRoom(0.5)
	ab := r.PropagateInRoom(click, a, b)
	ba := r.PropagateInRoom(click, b, a)
	if ab.Len() != ba.Len() {
		t.Fatalf("length mismatch %d vs %d", ab.Len(), ba.Len())
	}
	var num, den float64
	for i := range ab.Samples {
		d := ab.Samples[i] - ba.Samples[i]
		num += d * d
		den += ab.Samples[i] * ab.Samples[i]
	}
	if den == 0 {
		t.Fatal("empty response")
	}
	if rel := math.Sqrt(num / den); rel > 1e-9 {
		t.Fatalf("reciprocity violated: rel err %v", rel)
	}
}

// TestRoomImagePathSymmetry pins the geometric half of reciprocity
// directly: the (distance, gain) multiset is identical after swapping
// endpoints, wall for wall.
func TestRoomImagePathSymmetry(t *testing.T) {
	r, a, b := reverbRoom(0.35)
	pab := r.ImagePaths(a, b)
	pba := r.ImagePaths(b, a)
	if len(pab) != len(pba) {
		t.Fatalf("path counts differ: %d vs %d", len(pab), len(pba))
	}
	for i := range pab {
		if math.Abs(pab[i].Distance-pba[i].Distance) > 1e-12 || pab[i].Gain != pba[i].Gain {
			t.Fatalf("path %d asymmetric: %+v vs %+v", i, pab[i], pba[i])
		}
	}
}

// TestRoomReflectionsDelayedNotEarly checks causality: reflections only
// add energy at or after the direct arrival, never before.
func TestRoomReflectionsDelayedNotEarly(t *testing.T) {
	click := clickSignal()
	r, from, to := reverbRoom(0.7)
	wet := r.PropagateInRoom(click, from, to)
	c := SpeedOfSound(r.Air.TempC)
	arrival := from.Distance(to) / c
	early := windowEnergy(wet, 0, arrival*0.9)
	total := dsp.Energy(wet.Samples)
	if total == 0 {
		t.Fatal("empty response")
	}
	if early > 1e-6*total {
		t.Fatalf("energy before direct arrival: %v of %v", early, total)
	}
}
