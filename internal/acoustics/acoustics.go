// Package acoustics models sound propagation from attacker speakers to the
// victim device and to bystander listeners: spherical spreading,
// frequency-dependent atmospheric absorption (ISO 9613-1), propagation
// delay, ambient room noise and first-order room reflections.
//
// Physical convention: signals in this package are instantaneous sound
// pressure in pascals. A source is characterised by the pressure waveform
// it produces at the 1 m reference distance; Propagate transforms that
// reference waveform into the waveform at distance r.
//
// The frequency dependence of absorption is what gives the paper's design
// space its shape: at 30-60 kHz air absorbs sound an order of magnitude
// faster than in the voice band, so carrier choice trades inaudibility
// against range.
package acoustics

import (
	"fmt"
	"math"
	"math/rand"

	"inaudible/internal/audio"
	"inaudible/internal/dsp"
)

// ReferencePressure is the standard reference for dB SPL, 20 µPa.
const ReferencePressure = 20e-6

// SPL converts an RMS pressure in pascals to dB SPL.
func SPL(rmsPascal float64) float64 {
	if rmsPascal <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(rmsPascal/ReferencePressure)
}

// PressureFromSPL converts dB SPL to RMS pressure in pascals.
func PressureFromSPL(db float64) float64 {
	return ReferencePressure * math.Pow(10, db/20)
}

// SpeedOfSound returns the speed of sound in air (m/s) at temperature
// tempC in degrees Celsius.
func SpeedOfSound(tempC float64) float64 {
	return 331.3 * math.Sqrt(1+tempC/273.15)
}

// Air describes the atmospheric conditions used for absorption and delay.
type Air struct {
	TempC       float64 // temperature, degrees Celsius
	RelHumidity float64 // relative humidity, percent (0-100)
	PressureKPa float64 // ambient pressure, kPa
}

// DefaultAir is a typical indoor atmosphere: 20 C, 50% RH, 101.325 kPa.
func DefaultAir() Air { return Air{TempC: 20, RelHumidity: 50, PressureKPa: 101.325} }

// AbsorptionDBPerMeter returns the pure-tone atmospheric attenuation
// coefficient at frequency f (Hz) in dB per metre, following ISO 9613-1.
func (a Air) AbsorptionDBPerMeter(f float64) float64 {
	if f <= 0 {
		return 0
	}
	const (
		T0  = 293.15 // reference temperature, K
		T01 = 273.16 // triple point, K
		pr  = 101.325
	)
	T := a.TempC + 273.15
	pa := a.PressureKPa
	// Molar concentration of water vapour (%).
	psatRatio := math.Pow(10, -6.8346*math.Pow(T01/T, 1.261)+4.6151)
	h := a.RelHumidity * psatRatio * (pr / pa)
	// Oxygen and nitrogen relaxation frequencies (Hz).
	frO := (pa / pr) * (24 + 4.04e4*h*(0.02+h)/(0.391+h))
	frN := (pa / pr) * math.Pow(T/T0, -0.5) *
		(9 + 280*h*math.Exp(-4.17*(math.Pow(T/T0, -1.0/3)-1)))
	f2 := f * f
	alpha := 8.686 * f2 * ((1.84e-11 * (pr / pa) * math.Sqrt(T/T0)) +
		math.Pow(T/T0, -2.5)*(0.01275*math.Exp(-2239.1/T)/(frO+f2/frO)+
			0.1068*math.Exp(-3352.0/T)/(frN+f2/frN)))
	return alpha
}

// Path describes one propagation path from a source to a receiver.
type Path struct {
	Distance float64 // metres; must be >= a small positive bound
	Air      Air
	// IncludeDelay applies the physical propagation delay as a linear
	// phase. Experiments that align signals for comparison can disable it.
	IncludeDelay bool
}

// Propagate transforms the source's 1 m reference pressure waveform into
// the pressure waveform at the path's distance: 1/r spherical spreading,
// ISO 9613-1 absorption applied per frequency bin, and (optionally) the
// propagation delay. The input is not modified.
func (p Path) Propagate(src *audio.Signal) *audio.Signal {
	if p.Distance <= 0 {
		panic(fmt.Sprintf("acoustics: non-positive distance %v", p.Distance))
	}
	r := p.Distance
	if r < 0.1 {
		r = 0.1 // clamp: the point-source model diverges at r -> 0
	}
	n := len(src.Samples)
	if n == 0 {
		return src.Clone()
	}
	size := dsp.NextPowerOfTwo(n + 1)
	spec := make([]complex128, size)
	for i, v := range src.Samples {
		spec[i] = complex(v, 0)
	}
	dsp.FFT(spec)

	c := SpeedOfSound(p.Air.TempC)
	delay := r / c
	spread := 1 / r
	half := size / 2
	for k := 0; k <= half; k++ {
		f := dsp.BinFrequency(k, size, src.Rate)
		att := spread * math.Pow(10, -p.Air.AbsorptionDBPerMeter(f)*r/20)
		h := complex(att, 0)
		if p.IncludeDelay {
			phase := -2 * math.Pi * f * delay
			h *= complex(math.Cos(phase), math.Sin(phase))
		}
		spec[k] *= h
		if k != 0 && k != half {
			// Maintain conjugate symmetry for a real output.
			idx := size - k
			re, im := real(h), imag(h)
			spec[idx] *= complex(re, -im)
		}
	}
	dsp.IFFT(spec)
	out := make([]float64, n)
	for i := range out {
		out[i] = real(spec[i])
	}
	return &audio.Signal{Rate: src.Rate, Samples: out}
}

// Attenuation returns the total pressure-amplitude attenuation factor
// (spreading + absorption) for a pure tone at frequency f over the path.
func (p Path) Attenuation(f float64) float64 {
	r := p.Distance
	if r < 0.1 {
		r = 0.1
	}
	return (1 / r) * math.Pow(10, -p.Air.AbsorptionDBPerMeter(f)*r/20)
}

// AmbientNoise generates pink room noise at the given overall SPL (dB),
// in pascals, using the supplied RNG.
func AmbientNoise(rng *rand.Rand, rate, seconds, spl float64) *audio.Signal {
	rms := PressureFromSPL(spl)
	return audio.PinkNoise(rng, rate, rms, seconds)
}

// Room is a rectangular (shoebox) room for first-order image-source
// reflections. Dimensions in metres; Reflection is the pressure reflection
// coefficient of the surfaces (0 = anechoic, 1 = perfect mirror).
type Room struct {
	Lx, Ly, Lz float64
	Reflection float64
	Air        Air
}

// MeetingRoom returns the paper's experiment room: 6.5 m x 4 m x 2.5 m,
// with moderately absorptive surfaces.
func MeetingRoom() Room {
	return Room{Lx: 6.5, Ly: 4, Lz: 2.5, Reflection: 0.35, Air: DefaultAir()}
}

// Position is a 3-D point in room coordinates (metres).
type Position struct{ X, Y, Z float64 }

// Distance returns the Euclidean distance between two positions.
func (p Position) Distance(q Position) float64 {
	dx, dy, dz := p.X-q.X, p.Y-q.Y, p.Z-q.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// ImagePaths returns the direct path plus the six first-order reflection
// paths between src and dst, as (distance, gain) pairs where gain includes
// the reflection loss but not spreading/absorption (Propagate handles
// those). Out-of-room positions are not validated.
func (r Room) ImagePaths(src, dst Position) []struct {
	Distance float64
	Gain     float64
} {
	type dg = struct {
		Distance float64
		Gain     float64
	}
	out := []dg{{src.Distance(dst), 1}}
	if r.Reflection <= 0 {
		return out
	}
	images := []Position{
		{-src.X, src.Y, src.Z},         // x=0 wall
		{2*r.Lx - src.X, src.Y, src.Z}, // x=Lx wall
		{src.X, -src.Y, src.Z},         // y=0 wall
		{src.X, 2*r.Ly - src.Y, src.Z}, // y=Ly wall
		{src.X, src.Y, -src.Z},         // floor
		{src.X, src.Y, 2*r.Lz - src.Z}, // ceiling
	}
	for _, img := range images {
		out = append(out, dg{img.Distance(dst), r.Reflection})
	}
	return out
}

// PropagateInRoom combines the direct path and first-order reflections:
// each image contributes a delayed, attenuated copy. The output length
// matches the input.
func (r Room) PropagateInRoom(src *audio.Signal, from, to Position) *audio.Signal {
	paths := r.ImagePaths(from, to)
	out := audio.New(src.Rate, src.Duration())
	for _, pg := range paths {
		p := Path{Distance: pg.Distance, Air: r.Air, IncludeDelay: true}
		contrib := p.Propagate(src)
		contrib.Gain(pg.Gain)
		dsp.Add(out.Samples, contrib.Samples)
	}
	return out
}
