package cluster

import (
	"fmt"
	"testing"
	"time"
)

// syntheticKeys builds the 1k-session id population used by the
// routing property tests, mixed the same way the router assigns keys
// (a fixed epoch in the high bits keeps the draw deterministic).
func syntheticKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = mix64(1<<32 | uint64(i+1))
	}
	return keys
}

func nodeSeeds(n int) []uint64 {
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = NodeSeed(fmt.Sprintf("10.0.0.%d:9101", i+1))
	}
	return seeds
}

func TestRendezvousBalance(t *testing.T) {
	// Load balance: across 1k synthetic session ids, every node's share
	// stays within 15% of ideal for each cluster size the bench sweeps.
	keys := syntheticKeys(1000)
	for _, n := range []int{2, 3, 5, 8} {
		seeds := nodeSeeds(n)
		counts := make([]int, n)
		for _, k := range keys {
			i := RendezvousPick(k, seeds, nil)
			if i < 0 {
				t.Fatalf("n=%d: no node picked", n)
			}
			counts[i]++
		}
		ideal := float64(len(keys)) / float64(n)
		for i, c := range counts {
			dev := (float64(c) - ideal) / ideal
			if dev < -0.15 || dev > 0.15 {
				t.Errorf("n=%d node %d: %d sessions, %.1f%% from ideal %.0f (counts %v)",
					n, i, c, 100*dev, ideal, counts)
			}
		}
	}
}

func TestRendezvousStableAndDeterministic(t *testing.T) {
	// The same key always lands on the same node while the node set is
	// stable — affinity is a pure function of (key, seeds).
	keys := syntheticKeys(100)
	seeds := nodeSeeds(5)
	for _, k := range keys {
		a := RendezvousPick(k, seeds, nil)
		for trial := 0; trial < 3; trial++ {
			if b := RendezvousPick(k, seeds, nil); b != a {
				t.Fatalf("key %#x moved: %d then %d", k, a, b)
			}
		}
	}
	if RendezvousPick(42, seeds, func(int) bool { return false }) != -1 {
		t.Fatalf("pick with no eligible nodes did not return -1")
	}
}

func TestRendezvousLeaveRemapsMinimally(t *testing.T) {
	// Node leave: only the departed node's sessions move (survivors keep
	// their score order), so the remap count is its occupancy — within
	// the balance bound ceil(S/N) + 15% slack.
	keys := syntheticKeys(1000)
	for _, n := range []int{2, 3, 5, 8} {
		seeds := nodeSeeds(n)
		before := make([]int, len(keys))
		for j, k := range keys {
			before[j] = RendezvousPick(k, seeds, nil)
		}
		for down := 0; down < n; down++ {
			remapped := 0
			for j, k := range keys {
				after := RendezvousPick(k, seeds, func(i int) bool { return i != down })
				moved := after != before[j]
				if moved != (before[j] == down) {
					t.Fatalf("n=%d down=%d key %#x: moved=%v but before=%d", n, down, k, moved, before[j])
				}
				if moved {
					remapped++
				}
			}
			bound := (len(keys)+n-1)/n + len(keys)*15/(100*n)
			if remapped > bound {
				t.Errorf("n=%d down=%d: %d sessions remapped, bound %d", n, down, remapped, bound)
			}
		}
	}
}

func TestRendezvousJoinRemapsMinimally(t *testing.T) {
	// Node join: the only sessions that move are those claimed by the
	// new node — ≤ ceil(S/(N+1)) + slack — and they all land on it.
	keys := syntheticKeys(1000)
	for _, n := range []int{2, 3, 5, 8} {
		grown := nodeSeeds(n + 1)
		old := grown[:n] // join = the (n+1)th node appearing
		remapped := 0
		for _, k := range keys {
			before := RendezvousPick(k, old, nil)
			after := RendezvousPick(k, grown, nil)
			if after != before {
				if after != n {
					t.Fatalf("n=%d key %#x: moved %d -> %d, not to the joining node", n, k, before, after)
				}
				remapped++
			}
		}
		bound := (len(keys)+n)/(n+1) + len(keys)*15/(100*(n+1))
		if remapped > bound {
			t.Errorf("n=%d join: %d sessions remapped, bound %d", n, remapped, bound)
		}
		if remapped == 0 {
			t.Errorf("n=%d join: new node claimed nothing", n)
		}
	}
}

func TestNodeSeedSpreadsSimilarNames(t *testing.T) {
	seen := make(map[uint64]string)
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("127.0.0.1:%d", 9000+i)
		s := NodeSeed(name)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: %q and %q -> %#x", prev, name, s)
		}
		seen[s] = name
	}
}

func TestBackoffDelay(t *testing.T) {
	// Exponential from 50ms, capped at 2s, jitter scaling in [0.5, 1.5).
	for attempt := 0; attempt < 12; attempt++ {
		lo := BackoffDelay(attempt, 0)
		hi := BackoffDelay(attempt, 0.999)
		if lo <= 0 || hi < lo {
			t.Fatalf("attempt %d: lo=%v hi=%v", attempt, lo, hi)
		}
		if hi >= 3*time.Second {
			t.Fatalf("attempt %d: %v exceeds jittered cap", attempt, hi)
		}
	}
	if d := BackoffDelay(0, 0.5); d != 50*time.Millisecond {
		t.Fatalf("first retry midpoint = %v, want 50ms", d)
	}
	if d := BackoffDelay(20, 0.5); d != 2*time.Second {
		t.Fatalf("deep retry midpoint = %v, want the 2s cap", d)
	}
}
