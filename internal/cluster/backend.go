package cluster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// SessionServer is the node-side service a Backend bridges transport
// streams into — implemented by stream.Server. Kept as an interface so
// the transport can be tested against fakes and never imports the
// serving stack.
type SessionServer interface {
	// ServeSessionKeyed runs one session from r under the given affinity
	// key, writing verdict lines to w.
	ServeSessionKeyed(key uint64, r io.Reader, w io.Writer) error
	// SetDraining flips the node's admission drain state.
	SetDraining(v bool)
}

// Backend serves the inter-node transport on a guardd backend: each
// accepted connection (one per router) carries many multiplexed
// session streams, each bridged into srv.ServeSessionKeyed with the
// router's affinity key. Verdict bytes flow back as frames, relayed by
// the router to the client untouched — so a session served through the
// cluster emits byte-identical verdict lines to one served directly.
type Backend struct {
	srv        SessionServer
	maxPending int

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool
}

// NewBackend wraps a session server for transport serving.
// maxPendingBytes caps each stream's elastic audio buffer (<= 0:
// DefaultMaxPending).
func NewBackend(srv SessionServer, maxPendingBytes int) *Backend {
	return &Backend{
		srv:        srv,
		maxPending: maxPendingBytes,
		listeners:  make(map[net.Listener]struct{}),
		conns:      make(map[net.Conn]struct{}),
	}
}

// errBackendClosed fails streams cut off by Backend.Close.
var errBackendClosed = errors.New("cluster: backend closed")

// Serve accepts router connections until the listener closes (or
// Close is called) and demultiplexes their session streams. Like
// stream.Server.ServeListener it returns nil on a closed listener.
func (b *Backend) Serve(l net.Listener) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		l.Close()
		return errBackendClosed
	}
	b.listeners[l] = struct{}{}
	b.mu.Unlock()

	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			conn.Close()
			return nil
		}
		b.conns[conn] = struct{}{}
		b.mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.serveConn(conn)
			b.mu.Lock()
			delete(b.conns, conn)
			b.mu.Unlock()
		}()
	}
}

// Close stops accepting and severs live router connections; in-flight
// sessions fail fast on their routers (explicit verdict-stream error)
// instead of hanging.
func (b *Backend) Close() {
	b.mu.Lock()
	b.closed = true
	for l := range b.listeners {
		l.Close()
	}
	for c := range b.conns {
		c.Close()
	}
	b.mu.Unlock()
}

// backendStream is one in-flight session on a router connection.
type backendStream struct {
	q *byteQueue
}

// serveConn demultiplexes one router connection: open spawns a serving
// goroutine bridged through an elastic queue (so a slow or stalled
// session can never block its connection-mates' frames), data/close
// feed it, and the goroutine answers with verdict frames and a final
// end frame.
func (b *Backend) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64<<10)
	if err := readPreamble(br); err != nil {
		return
	}
	fw := newFrameWriter(conn)
	fr := &frameReader{r: br}
	// streams is shared between this demux loop and the serving
	// goroutines' completion cleanup; the lock is per open/data/end,
	// never per audio sample, so it is cold next to the session work.
	var smu sync.Mutex
	streams := make(map[uint32]*backendStream)
	var wg sync.WaitGroup
	defer func() {
		// Connection gone: fail every open stream so its serving
		// goroutine unblocks (its verdict writes already fail fast
		// through the poisoned frameWriter), then wait them out.
		fw.fail(errBackendClosed)
		smu.Lock()
		for _, st := range streams {
			st.q.fail(errBackendClosed)
		}
		smu.Unlock()
		wg.Wait()
	}()
	lookup := func(id uint32) *backendStream {
		smu.Lock()
		defer smu.Unlock()
		return streams[id]
	}
	for {
		t, id, payload, err := fr.read()
		if err != nil {
			return
		}
		switch t {
		case frameOpen:
			if len(payload) != 8 || id == 0 || lookup(id) != nil {
				return // protocol violation: drop the connection
			}
			key := binary.LittleEndian.Uint64(payload)
			st := &backendStream{q: newByteQueue(b.maxPending)}
			smu.Lock()
			streams[id] = st
			smu.Unlock()
			wg.Add(1)
			go func() {
				defer wg.Done()
				b.srv.ServeSessionKeyed(key, st.q, &verdictRelay{fw: fw, id: id})
				fw.writeFrame(frameEnd, id, nil)
				smu.Lock()
				delete(streams, id)
				smu.Unlock()
			}()
		case frameData:
			if st := lookup(id); st != nil {
				st.q.write(payload)
			}
		case frameCloseSend:
			if st := lookup(id); st != nil {
				st.q.closeEOF()
			}
		case frameAbort:
			if st := lookup(id); st != nil {
				st.q.fail(fmt.Errorf("cluster: session aborted by router"))
			}
		case frameDrain:
			b.srv.SetDraining(true)
		case frameUndrain:
			b.srv.SetDraining(false)
		default:
			return
		}
	}
}

// verdictRelay turns a session's verdict writes into verdict frames.
// It is handed to stream.Server as the session's io.Writer; the
// server's own bufio layer already batches tiny writes into line-sized
// chunks.
type verdictRelay struct {
	fw *frameWriter
	id uint32
}

func (v *verdictRelay) Write(p []byte) (int, error) {
	for off := 0; off < len(p); off += MaxFramePayload {
		end := off + MaxFramePayload
		if end > len(p) {
			end = len(p)
		}
		if err := v.fw.writeFrame(frameVerdict, v.id, p[off:end]); err != nil {
			return off, err
		}
	}
	return len(p), nil
}
