package cluster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrNodeDown reports a backend the router currently has no live
// transport connection to — sessions fail fast instead of queueing
// behind a redial.
var ErrNodeDown = errors.New("cluster: node is down")

// NodeClient is the router's persistent transport to one backend node:
// a single TCP connection carrying every session routed there, redialed
// with jittered exponential backoff whenever it drops. When the
// connection dies, every in-flight stream on it fails immediately with
// ErrNodeDown (surfaced to the client as an explicit verdict-stream
// error) and the node leaves the eligible routing set until the redial
// lands.
type NodeClient struct {
	addr        string
	seed        uint64
	maxPending  int
	dialTimeout time.Duration

	mu      sync.Mutex
	conn    net.Conn
	fw      *frameWriter
	streams map[uint32]*RoutedStream
	nextID  uint32

	healthy  atomic.Bool
	draining atomic.Bool

	// introspection counters for /cluster and the router metrics.
	redials        atomic.Uint64
	opened         atomic.Uint64
	finished       atomic.Uint64
	failed         atomic.Uint64
	active         atomic.Int64
	connectedSince atomic.Int64 // unix seconds; 0 while down

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// newNodeClient builds and starts the redial loop for one backend.
func newNodeClient(addr string, maxPending int, dialTimeout time.Duration) *NodeClient {
	if dialTimeout <= 0 {
		dialTimeout = 3 * time.Second
	}
	nc := &NodeClient{
		addr:        addr,
		seed:        NodeSeed(addr),
		maxPending:  maxPending,
		dialTimeout: dialTimeout,
		streams:     make(map[uint32]*RoutedStream),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	go nc.run()
	return nc
}

// Addr returns the backend's address (its node name).
func (nc *NodeClient) Addr() string { return nc.addr }

// Healthy reports a live transport connection.
func (nc *NodeClient) Healthy() bool { return nc.healthy.Load() }

// Draining reports whether the node is out of the routing rotation.
func (nc *NodeClient) Draining() bool { return nc.draining.Load() }

// Active returns the in-flight session count on this node.
func (nc *NodeClient) Active() int64 { return nc.active.Load() }

// run is the connection lifecycle: dial, serve until the connection
// dies, fail its streams, back off, redial — forever, until close.
func (nc *NodeClient) run() {
	defer close(nc.done)
	rng := rand.New(rand.NewSource(int64(nc.seed)))
	attempt := 0
	for {
		select {
		case <-nc.stop:
			return
		default:
		}
		conn, err := net.DialTimeout("tcp", nc.addr, nc.dialTimeout)
		if err == nil {
			err = writePreamble(conn)
			if err != nil {
				conn.Close()
			}
		}
		if err != nil {
			attempt++
			nc.redials.Add(1)
			select {
			case <-nc.stop:
				return
			case <-time.After(BackoffDelay(attempt, rng.Float64())):
			}
			continue
		}
		attempt = 0
		nc.attachConn(conn)
		nc.readLoop(conn)
		nc.detachConn(ErrNodeDown)
		// The next dial starts immediately (the common case is a node
		// restart that is already listening again); failures from here
		// re-enter the backoff ladder.
	}
}

// attachConn installs a fresh connection and replays sticky state (the
// drain flag survives reconnects: a drained node stays drained until
// an operator undrains it).
func (nc *NodeClient) attachConn(conn net.Conn) {
	fw := newFrameWriter(conn)
	nc.mu.Lock()
	nc.conn = conn
	nc.fw = fw
	nc.mu.Unlock()
	nc.connectedSince.Store(time.Now().Unix())
	nc.healthy.Store(true)
	if nc.draining.Load() {
		fw.writeFrame(frameDrain, 0, nil)
	}
}

// detachConn tears down the current connection, failing every stream
// that was in flight on it.
func (nc *NodeClient) detachConn(cause error) {
	nc.healthy.Store(false)
	nc.connectedSince.Store(0)
	nc.mu.Lock()
	conn, fw := nc.conn, nc.fw
	nc.conn, nc.fw = nil, nil
	orphans := nc.streams
	nc.streams = make(map[uint32]*RoutedStream)
	nc.mu.Unlock()
	if fw != nil {
		fw.fail(cause)
	}
	if conn != nil {
		conn.Close()
	}
	for _, st := range orphans {
		st.q.fail(fmt.Errorf("%w: %s failed mid-session", cause, nc.addr))
		nc.failed.Add(1)
		nc.active.Add(-1)
	}
}

// readLoop demultiplexes node->router frames until the connection
// errors.
func (nc *NodeClient) readLoop(conn net.Conn) {
	fr := &frameReader{r: bufio.NewReaderSize(conn, 64<<10)}
	for {
		t, id, payload, err := fr.read()
		if err != nil {
			return
		}
		switch t {
		case frameVerdict:
			nc.mu.Lock()
			st := nc.streams[id]
			nc.mu.Unlock()
			if st != nil {
				st.q.write(payload)
			}
		case frameEnd:
			nc.mu.Lock()
			st := nc.streams[id]
			delete(nc.streams, id)
			nc.mu.Unlock()
			if st != nil {
				st.q.closeEOF()
				nc.finished.Add(1)
				nc.active.Add(-1)
			}
		default:
			return // protocol violation: force a reconnect
		}
	}
}

// OpenStream starts a session stream under the given affinity key. It
// fails fast with ErrNodeDown when no transport connection is live.
func (nc *NodeClient) OpenStream(key uint64) (*RoutedStream, error) {
	nc.mu.Lock()
	if nc.fw == nil {
		nc.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNodeDown, nc.addr)
	}
	nc.nextID++
	if nc.nextID == 0 {
		nc.nextID = 1
	}
	id := nc.nextID
	st := &RoutedStream{nc: nc, id: id, q: newByteQueue(nc.maxPending)}
	nc.streams[id] = st
	fw := nc.fw
	nc.mu.Unlock()

	var keyb [8]byte
	binary.LittleEndian.PutUint64(keyb[:], key)
	if err := fw.writeFrame(frameOpen, id, keyb[:]); err != nil {
		nc.mu.Lock()
		delete(nc.streams, id)
		nc.mu.Unlock()
		return nil, fmt.Errorf("%w: %s: %v", ErrNodeDown, nc.addr, err)
	}
	nc.opened.Add(1)
	nc.active.Add(1)
	return st, nil
}

// setDraining flips the node's rotation state and mirrors it onto the
// node's own fleet admission (best effort while disconnected — the
// flag replays on reconnect).
func (nc *NodeClient) setDraining(v bool) {
	nc.draining.Store(v)
	nc.mu.Lock()
	fw := nc.fw
	nc.mu.Unlock()
	if fw != nil {
		t := byte(frameUndrain)
		if v {
			t = frameDrain
		}
		fw.writeFrame(t, 0, nil)
	}
}

// close stops the redial loop and severs the connection.
func (nc *NodeClient) close() {
	nc.stopOnce.Do(func() { close(nc.stop) })
	nc.detachConn(ErrNodeDown)
	<-nc.done
}

// NodeView is one backend's row in the /cluster control-plane
// response.
type NodeView struct {
	Addr               string `json:"addr"`
	Healthy            bool   `json:"healthy"`
	Draining           bool   `json:"draining,omitempty"`
	ActiveSessions     int64  `json:"active_sessions"`
	SessionsTotal      uint64 `json:"sessions_total"`
	FinishedTotal      uint64 `json:"finished_total"`
	FailedTotal        uint64 `json:"failed_total"`
	RedialsTotal       uint64 `json:"redials_total"`
	ConnectedSinceUnix int64  `json:"connected_since_unix,omitempty"`
}

// View snapshots the node for the control plane.
func (nc *NodeClient) View() NodeView {
	return NodeView{
		Addr:               nc.addr,
		Healthy:            nc.healthy.Load(),
		Draining:           nc.draining.Load(),
		ActiveSessions:     nc.active.Load(),
		SessionsTotal:      nc.opened.Load(),
		FinishedTotal:      nc.finished.Load(),
		FailedTotal:        nc.failed.Load(),
		RedialsTotal:       nc.redials.Load(),
		ConnectedSinceUnix: nc.connectedSince.Load(),
	}
}

// RoutedStream is the router-side handle of one in-flight session:
// Write feeds the client's raw session bytes to the node, Read drains
// the node's verdict bytes (io.EOF on clean completion, an error when
// the node died mid-session).
type RoutedStream struct {
	nc *NodeClient
	id uint32
	q  *byteQueue
}

// Write relays session bytes to the node.
func (st *RoutedStream) Write(p []byte) (int, error) {
	fw := st.writer()
	if fw == nil {
		return 0, fmt.Errorf("%w: %s", ErrNodeDown, st.nc.addr)
	}
	for off := 0; off < len(p); off += MaxFramePayload {
		end := off + MaxFramePayload
		if end > len(p) {
			end = len(p)
		}
		if err := fw.writeFrame(frameData, st.id, p[off:end]); err != nil {
			return off, err
		}
	}
	return len(p), nil
}

// CloseSend half-closes the session: its audio is complete, verdicts
// keep flowing.
func (st *RoutedStream) CloseSend() error {
	fw := st.writer()
	if fw == nil {
		return fmt.Errorf("%w: %s", ErrNodeDown, st.nc.addr)
	}
	return fw.writeFrame(frameCloseSend, st.id, nil)
}

// Abort tells the node the client vanished; the node aborts the
// session and still answers with an end frame, which retires the id.
func (st *RoutedStream) Abort() {
	if fw := st.writer(); fw != nil {
		fw.writeFrame(frameAbort, st.id, nil)
	}
	st.q.fail(errAborted)
}

// Read drains verdict bytes (see RoutedStream doc).
func (st *RoutedStream) Read(p []byte) (int, error) { return st.q.Read(p) }

// writer returns the frame writer the stream was opened on, or nil if
// the connection already turned over (the stream is dead either way:
// detachConn failed its queue).
func (st *RoutedStream) writer() *frameWriter {
	st.nc.mu.Lock()
	defer st.nc.mu.Unlock()
	if st.nc.streams[st.id] != st {
		return nil
	}
	return st.nc.fw
}

// errAborted marks streams the router itself abandoned (client went
// away); the relay loop treats it as a silent close, not a node
// failure.
var errAborted = errors.New("cluster: session aborted, client gone")
