package cluster_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"regexp"
	"strings"
	"testing"
	"time"

	"inaudible/internal/audio"
	"inaudible/internal/cluster"
	"inaudible/internal/defense"
	"inaudible/internal/stream"
)

// The end-to-end routing gates: a session served through router+node
// is byte-identical to one served directly (modulo the wall-clock
// latency fields), draining a node strands nothing, and a node dying
// mid-session fails fast with an explicit error line.

const e2eRate = 48000.0

// attackSig mirrors the stream package's synthetic attack signal:
// speech-band content with the quadratic m(t)^2 copy in the trace and
// super-voice bands.
func attackSig(seconds float64, seed int64) *audio.Signal {
	rng := rand.New(rand.NewSource(seed))
	n := int(e2eRate * seconds)
	x := make([]float64, n)
	for i := range x {
		t := float64(i) / e2eRate
		gate := 0.0
		if math.Sin(2*math.Pi*3*t) > -0.3 {
			gate = 1
		}
		env := gate * (0.6 + 0.4*math.Sin(2*math.Pi*5*t))
		m := env * (math.Sin(2*math.Pi*300*t) + 0.5*math.Sin(2*math.Pi*1100*t))
		x[i] = 0.5*m + 0.25*m*m + 0.002*(rng.Float64()*2-1)
	}
	return audio.FromSamples(e2eRate, x)
}

// legitSig is speech-band content without the quadratic copy.
func legitSig(seconds float64, seed int64) *audio.Signal {
	rng := rand.New(rand.NewSource(seed))
	n := int(e2eRate * seconds)
	x := make([]float64, n)
	for i := range x {
		t := float64(i) / e2eRate
		gate := 0.0
		if math.Sin(2*math.Pi*2.5*t+0.7) > -0.2 {
			gate = 1
		}
		env := gate * (0.5 + 0.5*math.Abs(math.Sin(2*math.Pi*4*t)))
		m := env * (math.Sin(2*math.Pi*220*t) + 0.4*math.Sin(2*math.Pi*900*t+0.3))
		x[i] = 0.6*m + 0.004*(rng.Float64()*2-1)
	}
	return audio.FromSamples(e2eRate, x)
}

func e2eDetector(t testing.TB) defense.Detector {
	t.Helper()
	var samples []defense.Sample
	for seed := int64(20); seed < 23; seed++ {
		samples = append(samples,
			defense.Sample{X: stream.Extract(attackSig(2, seed), 960).Vector(), Attack: true},
			defense.Sample{X: stream.Extract(legitSig(2, seed), 960).Vector(), Attack: false},
		)
	}
	det, err := defense.CalibrateThresholds(samples)
	if err != nil {
		t.Fatalf("calibrating detector: %v", err)
	}
	return det
}

// encodePCM frames sig in the GRD1 protocol.
func encodePCM(sig *audio.Signal, chunkSamples int) []byte {
	var b bytes.Buffer
	b.WriteString(stream.Magic)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(sig.Rate))
	b.Write(u32[:])
	for off := 0; off < len(sig.Samples); off += chunkSamples {
		end := off + chunkSamples
		if end > len(sig.Samples) {
			end = len(sig.Samples)
		}
		chunk := sig.Samples[off:end]
		binary.LittleEndian.PutUint32(u32[:], uint32(2*len(chunk)))
		b.Write(u32[:])
		for _, v := range chunk {
			if v > 1 {
				v = 1
			} else if v < -1 {
				v = -1
			}
			var s [2]byte
			binary.LittleEndian.PutUint16(s[:], uint16(int16(v*32767)))
			b.Write(s[:])
		}
	}
	binary.LittleEndian.PutUint32(u32[:], 0)
	b.Write(u32[:])
	return b.Bytes()
}

// latencyTail and canonEq mirror the stream package's parity
// canonicalization: latency fields are the only measurement (not
// verdict) content on a line.
var latencyTail = regexp.MustCompile(`,"latency_mean_us":[0-9eE.+-]+,"latency_max_us":[0-9eE.+-]+\}$`)

func canonLines(t *testing.T, raw []byte) []string {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	for i, ln := range lines {
		if !latencyTail.MatchString(ln) {
			t.Fatalf("verdict line %d has no latency tail: %q", i, ln)
		}
		lines[i] = latencyTail.ReplaceAllString(ln, "}")
	}
	return lines
}

// guardNode is one backend: a real stream.Server behind the transport.
type guardNode struct {
	srv     *stream.Server
	backend *cluster.Backend
	addr    string
}

func startNode(t *testing.T, det defense.Detector, name string) *guardNode {
	t.Helper()
	srv := stream.NewServer(stream.ServerConfig{Detector: det, EmitEvery: 25, Shards: 2, Node: name})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b := cluster.NewBackend(srv, 0)
	go b.Serve(l)
	n := &guardNode{srv: srv, backend: b, addr: l.Addr().String()}
	t.Cleanup(func() {
		b.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return n
}

// startRouter fronts the given nodes and returns the router plus its
// client-facing address.
func startRouter(t *testing.T, nodes ...*guardNode) (*cluster.Router, string) {
	t.Helper()
	addrs := make([]string, len(nodes))
	for i, n := range nodes {
		addrs[i] = n.addr
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{Nodes: addrs, Node: "router0"})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rt.ServeListener(l)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		rt.Shutdown(ctx)
	})
	waitCond(t, "all nodes healthy", func() bool {
		for _, nv := range rt.View().Nodes {
			if !nv.Healthy {
				return false
			}
		}
		return true
	})
	return rt, l.Addr().String()
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// routeSession runs one complete session through the router over TCP
// and returns the verdict bytes.
func routeSession(t *testing.T, addr string, session []byte) []byte {
	t.Helper()
	out, err := tryRouteSession(addr, session)
	if err != nil {
		t.Fatalf("routed session: %v", err)
	}
	return out
}

func tryRouteSession(addr string, session []byte) ([]byte, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if _, err := conn.Write(session); err != nil {
		return nil, fmt.Errorf("write: %w", err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	return io.ReadAll(conn)
}

func TestRouterParityWithDirect(t *testing.T) {
	// The cluster acceptance pin: verdict lines through router+transport+
	// node are byte-identical to a direct in-process session (modulo
	// wall-clock latency fields).
	det := e2eDetector(t)
	node := startNode(t, det, "n1")
	_, addr := startRouter(t, node)

	direct := stream.NewServer(stream.ServerConfig{Detector: det, EmitEvery: 25, Shards: 2})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		direct.Shutdown(ctx)
	}()

	cases := map[string][]byte{
		"attack": encodePCM(attackSig(1.5, 80), 960),
		"legit":  encodePCM(legitSig(1.5, 81), 1001),
	}
	for name, session := range cases {
		t.Run(name, func(t *testing.T) {
			var out bytes.Buffer
			if err := direct.ServeSession(bytes.NewReader(session), &out); err != nil {
				t.Fatalf("direct session: %v", err)
			}
			want := canonLines(t, out.Bytes())
			got := canonLines(t, routeSession(t, addr, session))
			if len(got) != len(want) {
				t.Fatalf("routed path wrote %d lines, direct %d:\nrouted: %v", len(got), len(want), got)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("line %d diverged:\nrouted: %s\ndirect: %s", i, got[i], want[i])
				}
			}
		})
	}
}

func TestRouterSpreadsAcrossNodes(t *testing.T) {
	det := e2eDetector(t)
	n1 := startNode(t, det, "n1")
	n2 := startNode(t, det, "n2")
	rt, addr := startRouter(t, n1, n2)

	session := encodePCM(legitSig(0.5, 82), 960)
	for i := 0; i < 16; i++ {
		routeSession(t, addr, session)
	}
	v := rt.View()
	if v.SessionsTotal != 16 {
		t.Fatalf("sessions_total = %d, want 16", v.SessionsTotal)
	}
	for _, nv := range v.Nodes {
		if nv.SessionsTotal == 0 {
			t.Fatalf("node %s served nothing: %+v", nv.Addr, v.Nodes)
		}
		if nv.FinishedTotal != nv.SessionsTotal {
			t.Fatalf("node %s: %d opened but %d finished", nv.Addr, nv.SessionsTotal, nv.FinishedTotal)
		}
	}
}

func TestRouterDrainMidSession(t *testing.T) {
	// Drain with a session in flight: the drained session finishes on
	// its node with full parity, new sessions route to the survivor
	// only, direct admission on the drained node refuses, and undrain
	// restores it.
	det := e2eDetector(t)
	n1 := startNode(t, det, "n1")
	n2 := startNode(t, det, "n2")
	rt, addr := startRouter(t, n1, n2)
	nodeByAddr := map[string]*guardNode{n1.addr: n1, n2.addr: n2}

	session := encodePCM(attackSig(1.2, 83), 960)
	var direct bytes.Buffer
	ds := stream.NewServer(stream.ServerConfig{Detector: det, EmitEvery: 25, Shards: 2})
	if err := ds.ServeSession(bytes.NewReader(session), &direct); err != nil {
		t.Fatalf("direct reference: %v", err)
	}
	want := canonLines(t, direct.Bytes())

	// Hold a session open mid-stream through the router.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(session[:len(session)/2]); err != nil {
		t.Fatal(err)
	}
	var held string
	waitCond(t, "held session visible", func() bool {
		for _, nv := range rt.View().Nodes {
			if nv.ActiveSessions == 1 {
				held = nv.Addr
				return true
			}
		}
		return false
	})
	heldSessions := func() uint64 {
		for _, nv := range rt.View().Nodes {
			if nv.Addr == held {
				return nv.SessionsTotal
			}
		}
		return 0
	}
	beforeDrain := heldSessions()

	if err := rt.Drain(held); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	waitCond(t, "node fleet draining", func() bool {
		return nodeByAddr[held].srv.Fleet().Draining()
	})

	// New sessions reroute to the survivor; the drained node's session
	// count must not move.
	for i := 0; i < 6; i++ {
		out := routeSession(t, addr, session)
		if got := canonLines(t, out); got[len(got)-1] != want[len(want)-1] {
			t.Fatalf("rerouted session %d final line diverged:\n%s\n%s", i, got[len(got)-1], want[len(want)-1])
		}
	}
	if got := heldSessions(); got != beforeDrain {
		t.Fatalf("drained node admitted new sessions: %d -> %d", beforeDrain, got)
	}

	// Direct admission on the drained node refuses explicitly.
	var rejected bytes.Buffer
	if err := nodeByAddr[held].srv.ServeSession(bytes.NewReader(session), &rejected); err == nil {
		t.Fatalf("drained node admitted a direct session")
	}
	if !strings.Contains(rejected.String(), "draining") {
		t.Fatalf("drained rejection line: %q", rejected.String())
	}

	// The held session still finishes on its node, verdicts intact.
	if _, err := conn.Write(session[len(session)/2:]); err != nil {
		t.Fatal(err)
	}
	conn.(*net.TCPConn).CloseWrite()
	out, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("held session read: %v", err)
	}
	got := canonLines(t, out)
	if len(got) != len(want) {
		t.Fatalf("held session wrote %d lines, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("held session line %d diverged:\n%s\n%s", i, got[i], want[i])
		}
	}

	// Undrain restores rotation and direct admission.
	if err := rt.Undrain(held); err != nil {
		t.Fatalf("Undrain: %v", err)
	}
	waitCond(t, "node fleet undrained", func() bool {
		return !nodeByAddr[held].srv.Fleet().Draining()
	})
	for i := 0; i < 20 && heldSessions() == beforeDrain+1; i++ {
		routeSession(t, addr, session)
	}
	if heldSessions() == beforeDrain+1 {
		t.Fatalf("undrained node never rejoined the rotation")
	}
}

func TestRouterFailsFastWhenNodeDies(t *testing.T) {
	// A node dying mid-session: the client promptly gets an explicit
	// {"error":"cluster: ..."} line, not a hang; the router stays up and
	// refuses new sessions with the same grammar while nothing listens.
	det := e2eDetector(t)
	node := startNode(t, det, "n1")
	rt, addr := startRouter(t, node)

	session := encodePCM(legitSig(1.0, 84), 960)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(session[:len(session)/2]); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "session in flight", func() bool { return rt.View().ActiveSessions == 1 })

	node.backend.Close()

	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	raw, _ := io.ReadAll(conn)
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	last := lines[len(lines)-1]
	var errLine struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(last), &errLine); err != nil {
		t.Fatalf("last line not JSON: %q", last)
	}
	if !strings.Contains(errLine.Error, "cluster:") {
		t.Fatalf("dead-node error line not explicit: %q", last)
	}
	waitCond(t, "failure counted", func() bool { return rt.View().NodeFailuresTotal == 1 })

	// With the only node down, new sessions refuse explicitly too.
	waitCond(t, "node marked down", func() bool { return !rt.View().Nodes[0].Healthy })
	out, err := tryRouteSession(addr, session)
	if err != nil {
		t.Fatalf("refused session transport error: %v", err)
	}
	if !strings.Contains(string(out), "no backend node available") {
		t.Fatalf("no-backend refusal line: %q", out)
	}
	if rt.View().NoBackendTotal == 0 {
		t.Fatalf("no-backend refusal not counted")
	}
}
