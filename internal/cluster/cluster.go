// Package cluster makes N guardd processes behave as one fleet: a
// front-end router owns the client connections and forwards each
// GRD1/WAV session, unmodified, to one of a static set of backend
// nodes over a lightweight multiplexing transport.
//
// The hot path is pure routing — guard sessions are conflict-free by
// construction (all state is per-session, pinned to one shard worker
// on its node), so the cluster layer never coordinates: it picks a
// node, relays bytes, and gets out of the way. Scaling is therefore
// near-linear in nodes until the router's relay loop saturates.
//
// Routing is rendezvous (highest-random-weight) hashing over the
// session's affinity key, extending the fleet's splitmix64 shard
// affinity one level up: each (key, node) pair gets an independent
// pseudo-random score and the session goes to the highest-scoring
// eligible node. Node join/leave therefore remaps only the ~1/N
// sessions whose top choice changed — every other session's score
// order is untouched — and the same key always lands on the same node
// while the node set is stable.
//
// The transport (one persistent TCP connection per node, redialed with
// jittered exponential backoff) multiplexes sessions as length-prefixed
// frames; in-flight sessions on a dead node fail fast with an explicit
// error line on the verdict stream rather than hanging. Draining a node
// takes it out of the routing set without touching its in-flight
// sessions: they finish on their node (the PR 5 graceful-shutdown
// machinery), only new sessions reroute.
package cluster

import "time"

// mix64 is the splitmix64 finalizer — the same mixing step the fleet
// uses for shard affinity, reused so the cluster and shard layers share
// one hashing story.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NodeSeed derives a node's rendezvous seed from its name (FNV-1a 64
// finished with mix64, so visually similar addresses still get
// independent score streams).
func NodeSeed(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// RendezvousPick returns the index of the eligible node with the
// highest score for key, or -1 when no node is eligible. A nil
// eligible accepts every node. Scores depend only on (key, seed), so
// removing a node never changes the relative order of the survivors —
// the rendezvous-hashing minimal-remap property.
func RendezvousPick(key uint64, seeds []uint64, eligible func(i int) bool) int {
	best, bestScore := -1, uint64(0)
	for i, seed := range seeds {
		if eligible != nil && !eligible(i) {
			continue
		}
		score := mix64(key ^ seed)
		if best == -1 || score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// Redial/retry backoff shared by the inter-node transport and loadgen's
// dial retries.
const (
	backoffBase = 50 * time.Millisecond
	backoffCap  = 2 * time.Second
)

// BackoffDelay returns the delay before retry number attempt (0-based):
// exponential from 50ms to a 2s cap, scaled by (0.5 + jitter) so
// concurrent retriers spread out instead of thundering together.
// jitter must be in [0, 1) — pass the caller's rng.Float64().
func BackoffDelay(attempt int, jitter float64) time.Duration {
	d := backoffBase << uint(min(attempt, 8))
	if d > backoffCap {
		d = backoffCap
	}
	return time.Duration(float64(d) * (0.5 + jitter))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
