package cluster

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestByteQueueDrainsBeforeEOF(t *testing.T) {
	q := newByteQueue(0)
	q.write([]byte("hello "))
	q.write([]byte("world"))
	q.closeEOF()
	got, err := io.ReadAll(q)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if string(got) != "hello world" {
		t.Fatalf("got %q", got)
	}
}

func TestByteQueueDrainsBeforeFailure(t *testing.T) {
	q := newByteQueue(0)
	q.write([]byte("partial"))
	boom := errors.New("boom")
	q.fail(boom)
	buf := make([]byte, 16)
	n, err := q.Read(buf)
	if n != 7 || err != nil {
		t.Fatalf("buffered read: n=%d err=%v", n, err)
	}
	if _, err := q.Read(buf); !errors.Is(err, boom) {
		t.Fatalf("post-drain read: %v, want boom", err)
	}
	// First failure wins; EOF after failure is a no-op.
	q.fail(errors.New("later"))
	q.closeEOF()
	if _, err := q.Read(buf); !errors.Is(err, boom) {
		t.Fatalf("failure not sticky: %v", err)
	}
}

func TestByteQueueOverflowFailsExplicitly(t *testing.T) {
	q := newByteQueue(8)
	if err := q.write(make([]byte, 6)); err != nil {
		t.Fatalf("first write: %v", err)
	}
	err := q.write(make([]byte, 6))
	if err == nil || !strings.Contains(err.Error(), "buffer exceeded") {
		t.Fatalf("overflow error: %v", err)
	}
	// The consumer still drains what made it in, then sees the failure.
	got := make([]byte, 16)
	if n, rerr := q.Read(got); n != 6 || rerr != nil {
		t.Fatalf("drain after overflow: n=%d err=%v", n, rerr)
	}
	if _, rerr := q.Read(got); rerr == nil || !strings.Contains(rerr.Error(), "buffer exceeded") {
		t.Fatalf("overflow not surfaced to reader: %v", rerr)
	}
}

func TestByteQueueBlocksUntilData(t *testing.T) {
	q := newByteQueue(0)
	done := make(chan string, 1)
	go func() {
		buf := make([]byte, 8)
		n, _ := q.Read(buf)
		done <- string(buf[:n])
	}()
	time.Sleep(10 * time.Millisecond)
	q.write([]byte("late"))
	select {
	case got := <-done:
		if got != "late" {
			t.Fatalf("got %q", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader never woke")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	fw := newFrameWriter(client)
	fr := &frameReader{r: bufio.NewReader(server)}
	payload := bytes.Repeat([]byte{0xAB}, 300)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := fw.writeFrame(frameData, 7, payload); err != nil {
			t.Errorf("writeFrame: %v", err)
		}
		if err := fw.writeFrame(frameEnd, 7, nil); err != nil {
			t.Errorf("writeFrame end: %v", err)
		}
	}()

	typ, id, got, err := fr.read()
	if err != nil || typ != frameData || id != 7 || !bytes.Equal(got, payload) {
		t.Fatalf("frame 1: type=%d id=%d len=%d err=%v", typ, id, len(got), err)
	}
	typ, id, got, err = fr.read()
	if err != nil || typ != frameEnd || id != 7 || len(got) != 0 {
		t.Fatalf("frame 2: type=%d id=%d len=%d err=%v", typ, id, len(got), err)
	}
	wg.Wait()

	if err := fw.writeFrame(frameData, 1, make([]byte, MaxFramePayload+1)); !errors.Is(err, ErrTransport) {
		t.Fatalf("oversized payload: %v", err)
	}
	fw.fail(errors.New("poisoned"))
	if err := fw.writeFrame(frameData, 1, nil); err == nil || err.Error() != "poisoned" {
		t.Fatalf("poisoned writer still writes: %v", err)
	}
}

func TestFrameReaderRejectsCorruptLength(t *testing.T) {
	var b bytes.Buffer
	b.Write([]byte{frameData, 1, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})
	fr := &frameReader{r: &b}
	if _, _, _, err := fr.read(); !errors.Is(err, ErrTransport) {
		t.Fatalf("corrupt length accepted: %v", err)
	}
}

func TestPreamble(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go writePreamble(client)
	if err := readPreamble(server); err != nil {
		t.Fatalf("good preamble rejected: %v", err)
	}
	if err := readPreamble(strings.NewReader("GRD1x")); !errors.Is(err, ErrTransport) {
		t.Fatalf("bad magic accepted: %v", err)
	}
	if err := readPreamble(strings.NewReader(TransportMagic + "\x09")); !errors.Is(err, ErrTransport) {
		t.Fatalf("bad version accepted: %v", err)
	}
}

// echoSession is a SessionServer fake: it records keys and drain flips
// and answers each session with one line echoing the bytes it read.
type echoSession struct {
	mu       sync.Mutex
	keys     []uint64
	draining bool
	block    chan struct{} // non-nil: sessions park here before replying
}

func (e *echoSession) ServeSessionKeyed(key uint64, r io.Reader, w io.Writer) error {
	e.mu.Lock()
	e.keys = append(e.keys, key)
	block := e.block
	e.mu.Unlock()
	body, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	if block != nil {
		<-block
	}
	_, err = w.Write([]byte("echo:" + string(body) + "\n"))
	return err
}

func (e *echoSession) SetDraining(v bool) {
	e.mu.Lock()
	e.draining = v
	e.mu.Unlock()
}

func (e *echoSession) isDraining() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.draining
}

// startBackend serves an echoSession backend on a loopback listener.
func startBackend(t *testing.T, srv SessionServer) (*Backend, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b := NewBackend(srv, 0)
	go b.Serve(l)
	t.Cleanup(b.Close)
	return b, l.Addr().String()
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestNodeClientSessionRoundTrip(t *testing.T) {
	echo := &echoSession{}
	_, addr := startBackend(t, echo)
	nc := newNodeClient(addr, 0, 0)
	defer nc.close()
	waitUntil(t, "node healthy", nc.Healthy)

	st, err := nc.OpenStream(0xBEEF)
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	if _, err := st.Write([]byte("ping")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := st.CloseSend(); err != nil {
		t.Fatalf("CloseSend: %v", err)
	}
	got, err := io.ReadAll(st)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if string(got) != "echo:ping\n" {
		t.Fatalf("got %q", got)
	}
	echo.mu.Lock()
	keys := append([]uint64(nil), echo.keys...)
	echo.mu.Unlock()
	if len(keys) != 1 || keys[0] != 0xBEEF {
		t.Fatalf("affinity key not delivered: %v", keys)
	}
	v := nc.View()
	if v.SessionsTotal != 1 || v.FinishedTotal != 1 || v.ActiveSessions != 0 {
		t.Fatalf("counters: %+v", v)
	}
}

func TestNodeClientRedialsAndRecovers(t *testing.T) {
	// Router comes up first: dials fail and back off until the backend
	// appears, then sessions flow with no intervention.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close() // reserve the address, then free it: nothing listens yet

	nc := newNodeClient(addr, 0, time.Second)
	defer nc.close()
	waitUntil(t, "redial attempts", func() bool { return nc.View().RedialsTotal >= 1 })
	if nc.Healthy() {
		t.Fatal("healthy with no backend listening")
	}
	if _, err := nc.OpenStream(1); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("open against down node: %v, want ErrNodeDown", err)
	}

	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	b := NewBackend(&echoSession{}, 0)
	go b.Serve(l2)
	defer b.Close()

	waitUntil(t, "recovery", nc.Healthy)
	st, err := nc.OpenStream(2)
	if err != nil {
		t.Fatalf("OpenStream after recovery: %v", err)
	}
	st.Write([]byte("back"))
	st.CloseSend()
	if got, err := io.ReadAll(st); err != nil || string(got) != "echo:back\n" {
		t.Fatalf("post-recovery session: %q, %v", got, err)
	}
}

func TestDeadNodeFailsInFlightFast(t *testing.T) {
	// A backend dying mid-session: the stream fails with an explicit
	// error naming the node, promptly — never a hang.
	echo := &echoSession{block: make(chan struct{})}
	b, addr := startBackend(t, echo)
	nc := newNodeClient(addr, 0, 0)
	defer nc.close()
	waitUntil(t, "node healthy", nc.Healthy)

	st, err := nc.OpenStream(3)
	if err != nil {
		t.Fatal(err)
	}
	st.Write([]byte("doomed"))
	st.CloseSend()
	waitUntil(t, "session in flight", func() bool {
		echo.mu.Lock()
		defer echo.mu.Unlock()
		return len(echo.keys) == 1
	})

	b.Close() // node dies while the session is parked

	readDone := make(chan error, 1)
	go func() {
		_, err := io.ReadAll(st)
		readDone <- err
	}()
	select {
	case err := <-readDone:
		if !errors.Is(err, ErrNodeDown) {
			t.Fatalf("in-flight failure: %v, want ErrNodeDown", err)
		}
		if !strings.Contains(err.Error(), addr) {
			t.Fatalf("failure does not name the node: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight session hung on a dead node")
	}
	if v := nc.View(); v.FailedTotal != 1 || v.ActiveSessions != 0 {
		t.Fatalf("failure accounting: %+v", v)
	}
	close(echo.block)
}

func TestDrainPropagatesAndSurvivesReconnect(t *testing.T) {
	echo := &echoSession{}
	b, addr := startBackend(t, echo)
	nc := newNodeClient(addr, 0, 0)
	defer nc.close()
	waitUntil(t, "node healthy", nc.Healthy)

	nc.setDraining(true)
	waitUntil(t, "drain delivered", echo.isDraining)

	// Kill the transport connection; the replacement must replay the
	// drain state without operator help.
	echo.SetDraining(false)
	b.Close()
	waitUntil(t, "disconnect observed", func() bool { return !nc.Healthy() })
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	b2 := NewBackend(echo, 0)
	go b2.Serve(l2)
	defer b2.Close()
	waitUntil(t, "reconnect", nc.Healthy)
	waitUntil(t, "drain replayed", echo.isDraining)

	nc.setDraining(false)
	waitUntil(t, "undrain delivered", func() bool { return !echo.isDraining() })
}
