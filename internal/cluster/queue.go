package cluster

import (
	"fmt"
	"io"
	"sync"
)

// DefaultMaxPending bounds one stream's elastic queue (16 MiB — two
// orders of magnitude above a typical session's audio, so only a
// pathological peer trips it).
const DefaultMaxPending = 16 << 20

// byteQueue is the elastic per-stream buffer between the connection's
// demux goroutine and a stream's consumer. Writes never block — the
// demux loop must keep draining the shared connection no matter how
// slow any one consumer is (no head-of-line blocking across sessions)
// — so the queue grows elastically up to max and then fails the stream
// explicitly instead of stalling its shard-mates. Reads block until
// data, EOF, or failure.
type byteQueue struct {
	mu   sync.Mutex
	cond *sync.Cond
	buf  []byte
	off  int
	max  int
	eof  bool
	err  error
}

func newByteQueue(max int) *byteQueue {
	if max <= 0 {
		max = DefaultMaxPending
	}
	q := &byteQueue{max: max}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// write appends p (copied). On overflow the queue fails with an
// explicit error — the consumer sees it on its next Read.
func (q *byteQueue) write(p []byte) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.err != nil {
		return q.err
	}
	if q.eof {
		return io.ErrClosedPipe
	}
	if len(q.buf)-q.off+len(p) > q.max {
		q.err = fmt.Errorf("cluster: stream buffer exceeded %d bytes", q.max)
		q.cond.Broadcast()
		return q.err
	}
	q.buf = append(q.buf, p...)
	q.cond.Broadcast()
	return nil
}

// Read blocks for data; it drains buffered bytes before surfacing EOF
// or a failure, so verdicts delivered ahead of a clean end are never
// lost.
func (q *byteQueue) Read(p []byte) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.buf) == q.off && !q.eof && q.err == nil {
		q.cond.Wait()
	}
	if len(q.buf) > q.off {
		n := copy(p, q.buf[q.off:])
		q.off += n
		if q.off == len(q.buf) {
			q.buf, q.off = q.buf[:0], 0
		}
		return n, nil
	}
	if q.err != nil {
		return 0, q.err
	}
	return 0, io.EOF
}

// closeEOF marks a clean end of stream: buffered bytes still drain.
func (q *byteQueue) closeEOF() {
	q.mu.Lock()
	q.eof = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// fail poisons the queue: buffered bytes still drain, then Read
// returns err. The first failure wins.
func (q *byteQueue) fail(err error) {
	q.mu.Lock()
	if q.err == nil && !q.eof {
		q.err = err
	}
	q.cond.Broadcast()
	q.mu.Unlock()
}
