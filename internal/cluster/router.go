package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"inaudible/internal/telemetry"
)

// RouterConfig wires a Router.
type RouterConfig struct {
	// Nodes is the static backend list (host:port transport addresses).
	// At least one is required.
	Nodes []string
	// Node is the router's own cluster identity (for /cluster and
	// fleet_build_info); optional.
	Node string
	// Metrics registers the cluster_* instrument set when non-nil.
	Metrics *telemetry.Registry
	// MaxPendingBytes caps each routed session's elastic verdict buffer
	// (<= 0: DefaultMaxPending).
	MaxPendingBytes int
	// DialTimeout bounds each backend dial attempt (<= 0: 3s).
	DialTimeout time.Duration
}

// RouterMetrics is the cluster_* instrument set.
type RouterMetrics struct {
	Sessions     *telemetry.Counter // cluster_sessions_total
	Active       *telemetry.Gauge   // cluster_active_sessions
	NoBackend    *telemetry.Counter // cluster_no_backend_total
	NodeFailures *telemetry.Counter // cluster_node_failures_total
}

// NewRouterMetrics registers the router instrument set in r.
func NewRouterMetrics(r *telemetry.Registry) *RouterMetrics {
	return &RouterMetrics{
		Sessions:     r.NewCounter("cluster_sessions_total", "sessions accepted and routed to a backend node"),
		Active:       r.NewGauge("cluster_active_sessions", "sessions currently relayed through the router"),
		NoBackend:    r.NewCounter("cluster_no_backend_total", "sessions refused because no backend node was eligible"),
		NodeFailures: r.NewCounter("cluster_node_failures_total", "sessions failed by a backend dying mid-session"),
	}
}

func newUnregisteredRouterMetrics() *RouterMetrics {
	return &RouterMetrics{
		Sessions:     &telemetry.Counter{},
		Active:       &telemetry.Gauge{},
		NoBackend:    &telemetry.Counter{},
		NodeFailures: &telemetry.Counter{},
	}
}

// Router owns the client-facing listener of a guard cluster: it
// accepts ordinary GRD1/WAV connections, assigns each an affinity key,
// rendezvous-routes it to a backend node, and relays bytes both ways
// without parsing either direction. Clients cannot tell a router from
// a single guardd — verdict lines arrive byte-identical — except that
// a backend dying mid-session surfaces as an explicit {"error":...}
// line instead of a silent hang.
type Router struct {
	cfg   RouterConfig
	nodes []*NodeClient
	seeds []uint64
	m     *RouterMetrics
	seq   atomic.Uint64

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool
	wg        sync.WaitGroup
}

// NewRouter starts node clients (and their redial loops) for every
// backend and returns the router. It does not wait for any backend to
// be reachable — sessions route as nodes come up.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: router needs at least one backend node")
	}
	seen := make(map[string]bool, len(cfg.Nodes))
	for _, n := range cfg.Nodes {
		if n == "" {
			return nil, errors.New("cluster: empty backend node address")
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate backend node %q", n)
		}
		seen[n] = true
	}
	m := newUnregisteredRouterMetrics()
	if cfg.Metrics != nil {
		m = NewRouterMetrics(cfg.Metrics)
	}
	rt := &Router{
		cfg:       cfg,
		m:         m,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
	for _, addr := range cfg.Nodes {
		nc := newNodeClient(addr, cfg.MaxPendingBytes, cfg.DialTimeout)
		rt.nodes = append(rt.nodes, nc)
		rt.seeds = append(rt.seeds, nc.seed)
	}
	return rt, nil
}

// sessionKey assigns a fresh nonzero affinity key. Keys are mixed so
// they spread across both the rendezvous scores and the node's shard
// index, exactly like a direct session's fleet-assigned key.
func (rt *Router) sessionKey() uint64 {
	for {
		k := mix64(rt.seq.Add(1))
		if k != 0 {
			return k
		}
	}
}

// route picks the best eligible node for key and opens its stream,
// demoting nodes that fail at open time (a lost race with a
// disconnect) and retrying over the survivors.
func (rt *Router) route(key uint64) (*NodeClient, *RoutedStream, error) {
	down := make([]bool, len(rt.nodes))
	for {
		i := RendezvousPick(key, rt.seeds, func(i int) bool {
			nc := rt.nodes[i]
			return !down[i] && nc.Healthy() && !nc.Draining()
		})
		if i < 0 {
			return nil, nil, errors.New("cluster: no backend node available")
		}
		st, err := rt.nodes[i].OpenStream(key)
		if err != nil {
			down[i] = true
			continue
		}
		return rt.nodes[i], st, nil
	}
}

// ServeListener accepts client sessions until the listener closes (nil
// return, matching stream.Server) or Shutdown is called.
func (rt *Router) ServeListener(l net.Listener) error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		l.Close()
		return errors.New("cluster: router is shut down")
	}
	rt.listeners[l] = struct{}{}
	rt.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		rt.mu.Lock()
		if rt.closed {
			rt.mu.Unlock()
			conn.Close()
			return nil
		}
		rt.conns[conn] = struct{}{}
		rt.wg.Add(1)
		rt.mu.Unlock()
		go func() {
			defer rt.wg.Done()
			rt.handleConn(conn)
			rt.mu.Lock()
			delete(rt.conns, conn)
			rt.mu.Unlock()
		}()
	}
}

// handleConn relays one client session through its routed node.
func (rt *Router) handleConn(conn net.Conn) {
	defer conn.Close()
	key := rt.sessionKey()
	_, st, err := rt.route(key)
	if err != nil {
		rt.m.NoBackend.Inc()
		writeErrLine(conn, err)
		drainClient(conn)
		return
	}
	rt.m.Sessions.Inc()
	rt.m.Active.Add(1)
	defer rt.m.Active.Add(-1)

	// Uplink: client bytes to the node, opaque. EOF half-closes the
	// session; an abrupt client error aborts it on the node.
	go func() {
		if _, cerr := io.Copy(st, conn); cerr == nil {
			st.CloseSend()
		} else {
			st.Abort()
		}
	}()

	// Downlink: verdict bytes to the client, opaque. A clean end frame
	// surfaces as EOF; a node death surfaces here as the queue's error.
	if _, derr := io.Copy(conn, st); derr != nil && !errors.Is(derr, errAborted) {
		rt.m.NodeFailures.Inc()
		writeErrLine(conn, derr)
		drainClient(conn)
	}
}

// drainClient half-closes the write side and swallows the rest of the
// client's upload (bounded) so closing the connection cannot RST away
// an error line the client has not read yet.
func drainClient(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	io.Copy(io.Discard, conn)
}

// writeErrLine emits the router's explicit failure verdict: the same
// one-line {"error":...} shape the node itself uses for malformed
// sessions, so clients have exactly one error grammar.
func writeErrLine(w io.Writer, err error) {
	line, _ := json.Marshal(map[string]string{"error": err.Error()})
	w.Write(append(line, '\n'))
}

// node returns the client for addr, or nil.
func (rt *Router) node(addr string) *NodeClient {
	for _, nc := range rt.nodes {
		if nc.addr == addr {
			return nc
		}
	}
	return nil
}

// Drain removes a node from the routing rotation: new sessions rendezvous
// among the survivors while the node's in-flight sessions finish
// undisturbed. The node's own fleet admission drains too, so direct
// clients are also refused while it is out of rotation.
func (rt *Router) Drain(addr string) error {
	nc := rt.node(addr)
	if nc == nil {
		return fmt.Errorf("cluster: unknown node %q", addr)
	}
	nc.setDraining(true)
	return nil
}

// Undrain returns a drained node to the rotation.
func (rt *Router) Undrain(addr string) error {
	nc := rt.node(addr)
	if nc == nil {
		return fmt.Errorf("cluster: unknown node %q", addr)
	}
	nc.setDraining(false)
	return nil
}

// ClusterView is the /cluster response body.
type ClusterView struct {
	// Node is the router's own identity (empty when unnamed).
	Node string `json:"node,omitempty"`
	// Nodes is the per-backend occupancy/health/drain table.
	Nodes []NodeView `json:"nodes"`
	// Router-level counters.
	SessionsTotal     uint64 `json:"sessions_total"`
	ActiveSessions    int64  `json:"active_sessions"`
	NoBackendTotal    uint64 `json:"no_backend_total"`
	NodeFailuresTotal uint64 `json:"node_failures_total"`
}

// View snapshots the cluster for the control plane.
func (rt *Router) View() ClusterView {
	v := ClusterView{
		Node:              rt.cfg.Node,
		Nodes:             make([]NodeView, 0, len(rt.nodes)),
		SessionsTotal:     rt.m.Sessions.Value(),
		ActiveSessions:    rt.m.Active.Value(),
		NoBackendTotal:    rt.m.NoBackend.Value(),
		NodeFailuresTotal: rt.m.NodeFailures.Value(),
	}
	for _, nc := range rt.nodes {
		v.Nodes = append(v.Nodes, nc.View())
	}
	return v
}

// MountControl adds the cluster control plane to mux (typically the
// telemetry mux already serving /metrics):
//
//	GET  /cluster                      — per-node occupancy, health,
//	                                     drain state, and router counters
//	POST /cluster/drain?node=ADDR      — take a node out of rotation
//	POST /cluster/undrain?node=ADDR    — return it to rotation
func (rt *Router) MountControl(mux *http.ServeMux) {
	mux.HandleFunc("/cluster", func(w http.ResponseWriter, req *http.Request) {
		telemetry.WriteJSON(w, rt.View())
	})
	setDrain := func(drain bool) http.HandlerFunc {
		return func(w http.ResponseWriter, req *http.Request) {
			if req.Method != http.MethodPost {
				http.Error(w, "POST required", http.StatusMethodNotAllowed)
				return
			}
			addr := req.URL.Query().Get("node")
			var err error
			if drain {
				err = rt.Drain(addr)
			} else {
				err = rt.Undrain(addr)
			}
			if err != nil {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			telemetry.WriteJSON(w, rt.View())
		}
	}
	mux.HandleFunc("/cluster/drain", setDrain(true))
	mux.HandleFunc("/cluster/undrain", setDrain(false))
}

// Shutdown stops accepting, waits for in-flight relays up to ctx, then
// severs the node transports.
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.mu.Lock()
	rt.closed = true
	for l := range rt.listeners {
		l.Close()
	}
	rt.mu.Unlock()

	done := make(chan struct{})
	go func() { rt.wg.Wait(); close(done) }()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		rt.mu.Lock()
		for c := range rt.conns {
			c.Close()
		}
		rt.mu.Unlock()
	}
	for _, nc := range rt.nodes {
		nc.close()
	}
	return err
}
