package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Inter-node wire protocol (version 1). A connection is opened by the
// router, which sends the 5-byte preamble "GRDX" + version; both sides
// then exchange frames:
//
//	[uint8 type | uint32 LE stream id | uint32 LE payload len | payload]
//
// Router -> node: open (payload: uint64 LE session affinity key), data
// (raw session bytes: the unmodified GRD1/WAV stream), close-send (half
// close: the session's audio is complete), abort (the client vanished),
// and the stream-0 control frames drain/undrain (flip the node's fleet
// drain state). Node -> router: verdict (raw verdict-line bytes,
// relayed to the client untouched — which is what makes router-vs-
// direct verdicts byte-identical) and end (the session finished; the
// node has flushed every verdict byte before sending it).
//
// There is no per-stream flow control: audio is tiny next to the
// transforms it triggers, and each side absorbs bursts in an elastic
// per-stream queue (bounded; an overflowing stream fails explicitly,
// never the connection). TCP backpressures the connection as a whole.

// TransportMagic opens every router->node connection.
const TransportMagic = "GRDX"

// TransportVersion is the protocol revision after the magic.
const TransportVersion = 1

// MaxFramePayload bounds one frame's payload (1 MiB, matching the GRD1
// chunk cap) so a corrupt length prefix cannot balloon allocations.
const MaxFramePayload = 1 << 20

// Frame types.
const (
	frameOpen      = 1 // router->node: new session stream; payload = uint64 LE key
	frameData      = 2 // router->node: session bytes
	frameCloseSend = 3 // router->node: audio complete (half close)
	frameAbort     = 4 // router->node: client vanished, abort the session
	frameVerdict   = 5 // node->router: verdict-line bytes
	frameEnd       = 6 // node->router: session finished, verdicts flushed
	frameDrain     = 7 // router->node, stream 0: refuse new direct sessions
	frameUndrain   = 8 // router->node, stream 0: resume direct admission
)

// ErrTransport reports a malformed inter-node stream.
var ErrTransport = errors.New("cluster: malformed transport stream")

const frameHeaderLen = 9

// frameWriter serializes frame writes from many session goroutines
// onto one connection, assembling header+payload into a single Write
// so frames can never interleave. After fail() every write returns the
// connection's terminal error without touching the socket.
type frameWriter struct {
	mu   sync.Mutex
	conn net.Conn
	buf  []byte
	err  error
}

func newFrameWriter(conn net.Conn) *frameWriter {
	return &frameWriter{conn: conn, buf: make([]byte, 0, 4096)}
}

// writeFrame emits one frame; payload may be nil.
func (fw *frameWriter) writeFrame(t byte, stream uint32, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return fmt.Errorf("%w: %d-byte payload exceeds %d", ErrTransport, len(payload), MaxFramePayload)
	}
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if fw.err != nil {
		return fw.err
	}
	need := frameHeaderLen + len(payload)
	if cap(fw.buf) < need {
		fw.buf = make([]byte, 0, need)
	}
	b := fw.buf[:need]
	b[0] = t
	binary.LittleEndian.PutUint32(b[1:5], stream)
	binary.LittleEndian.PutUint32(b[5:9], uint32(len(payload)))
	copy(b[frameHeaderLen:], payload)
	if _, err := fw.conn.Write(b); err != nil {
		fw.err = err
		return err
	}
	return nil
}

// fail poisons the writer so later frames return err immediately.
func (fw *frameWriter) fail(err error) {
	fw.mu.Lock()
	if fw.err == nil {
		fw.err = err
	}
	fw.mu.Unlock()
}

// frameReader decodes frames from one connection, reusing its payload
// buffer — the returned payload is only valid until the next read.
type frameReader struct {
	r       io.Reader
	header  [frameHeaderLen]byte
	payload []byte
}

func (fr *frameReader) read() (t byte, stream uint32, payload []byte, err error) {
	if _, err = io.ReadFull(fr.r, fr.header[:]); err != nil {
		return 0, 0, nil, err
	}
	t = fr.header[0]
	stream = binary.LittleEndian.Uint32(fr.header[1:5])
	n := binary.LittleEndian.Uint32(fr.header[5:9])
	if n > MaxFramePayload {
		return 0, 0, nil, fmt.Errorf("%w: %d-byte payload exceeds %d", ErrTransport, n, MaxFramePayload)
	}
	if cap(fr.payload) < int(n) {
		fr.payload = make([]byte, n)
	}
	payload = fr.payload[:n]
	if _, err = io.ReadFull(fr.r, payload); err != nil {
		return 0, 0, nil, fmt.Errorf("%w: truncated %d-byte payload: %v", ErrTransport, n, err)
	}
	return t, stream, payload, nil
}

// writePreamble sends the connection opener.
func writePreamble(conn net.Conn) error {
	_, err := conn.Write(append([]byte(TransportMagic), TransportVersion))
	return err
}

// readPreamble validates the connection opener.
func readPreamble(r io.Reader) error {
	var p [len(TransportMagic) + 1]byte
	if _, err := io.ReadFull(r, p[:]); err != nil {
		return fmt.Errorf("%w: reading preamble: %v", ErrTransport, err)
	}
	if string(p[:len(TransportMagic)]) != TransportMagic {
		return fmt.Errorf("%w: bad magic %q (want %s)", ErrTransport, p[:len(TransportMagic)], TransportMagic)
	}
	if p[len(TransportMagic)] != TransportVersion {
		return fmt.Errorf("%w: unsupported version %d (want %d)", ErrTransport, p[len(TransportMagic)], TransportVersion)
	}
	return nil
}
