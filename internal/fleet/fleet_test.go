package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"inaudible/internal/trace"
)

// sumProc is a deterministic test processor: it sums its samples and
// reports {sum, frames} as events, interim every emitEvery frames.
type sumProc struct {
	frame     int
	emitEvery int
	degraded  bool
	sum       float64
	frames    int
}

type sumEvent struct {
	Sum      float64
	Frames   int
	Final    bool
	Degraded bool
}

func (p *sumProc) FrameSamples() int { return p.frame }
func (p *sumProc) Push(frame []float64) interface{} {
	for _, v := range frame {
		p.sum += v
	}
	p.frames++
	if p.emitEvery > 0 && p.frames%p.emitEvery == 0 {
		return &sumEvent{Sum: p.sum, Frames: p.frames, Degraded: p.degraded}
	}
	return nil
}
func (p *sumProc) Finalize() interface{} {
	return &sumEvent{Sum: p.sum, Frames: p.frames, Final: true, Degraded: p.degraded}
}
func (p *sumProc) Reset() { p.sum, p.frames = 0, 0 }

// testConfig builds a fleet config over sumProc with a 4-sample frame.
func testConfig(emitEvery int) Config {
	return Config{
		FrameFor: func(rate float64) int { return 4 },
		NewProc: func(rate float64, degraded bool) Proc {
			return &sumProc{frame: 4, emitEvery: emitEvery, degraded: degraded}
		},
	}
}

// runSession pushes frames [0..frames) with sample value = frame index
// and returns the final event plus the interim count.
func runSession(t testing.TB, s *Session, frames int) (*sumEvent, int) {
	t.Helper()
	for i := 0; i < frames; i++ {
		buf, err := s.NextFrame()
		if err != nil {
			t.Fatalf("NextFrame %d: %v", i, err)
		}
		for j := range buf {
			buf[j] = float64(i)
		}
		s.Publish(len(buf))
	}
	if err := s.CloseSend(); err != nil {
		t.Fatalf("CloseSend: %v", err)
	}
	var final *sumEvent
	interim := 0
	for ev := range s.Events() {
		se := ev.(*sumEvent)
		if se.Final {
			final = se
		} else {
			interim++
		}
	}
	return final, interim
}

// wantSum is the expected final sum of runSession(frames): each frame i
// contributes 4*i.
func wantSum(frames int) float64 {
	return 4 * float64(frames) * float64(frames-1) / 2
}

func closeFleet(t testing.TB, f *Fleet) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestFleetSingleSession(t *testing.T) {
	f := New(testConfig(10))
	defer closeFleet(t, f)
	s, err := f.Open(48000)
	if err != nil {
		t.Fatal(err)
	}
	final, interim := runSession(t, s, 95)
	if final == nil {
		t.Fatalf("no final event")
	}
	if final.Frames != 95 || final.Sum != wantSum(95) {
		t.Fatalf("final = %+v, want frames=95 sum=%g", final, wantSum(95))
	}
	if interim != 9 {
		t.Fatalf("interim events = %d, want 9", interim)
	}
	if got := f.Metrics().Frames.Value(); got != 95 {
		t.Fatalf("frames counter = %d, want 95", got)
	}
	if f.Metrics().Finished.Value() != 1 {
		t.Fatalf("finished counter = %d", f.Metrics().Finished.Value())
	}
}

func TestFleetSessionAffinity(t *testing.T) {
	// Same key -> same shard, across many keys the spread is non-trivial.
	cfg := testConfig(0)
	cfg.Shards = 4
	f := New(cfg)
	defer closeFleet(t, f)
	hit := map[int]bool{}
	for key := uint64(0); key < 64; key++ {
		i := shardIndex(key, 4)
		if j := shardIndex(key, 4); j != i {
			t.Fatalf("shardIndex not deterministic for key %d", key)
		}
		hit[i] = true
	}
	if len(hit) != 4 {
		t.Fatalf("64 keys hit only %d/4 shards", len(hit))
	}
}

func TestFleetChurn(t *testing.T) {
	// Sessions connecting, serving, aborting and disconnecting
	// concurrently across shards — the race-mode acceptance gate.
	cfg := testConfig(5)
	cfg.Shards = 4
	cfg.RingFrames = 8
	f := New(cfg)
	const producers = 8
	const perProducer = 25
	var wg sync.WaitGroup
	errs := make(chan error, producers)
	var aborts, finishes int64
	var mu sync.Mutex
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p)))
			for sess := 0; sess < perProducer; sess++ {
				s, err := f.Open(48000)
				if err != nil {
					errs <- fmt.Errorf("producer %d session %d: %v", p, sess, err)
					return
				}
				frames := 1 + rng.Intn(40)
				if rng.Intn(5) == 0 { // hard disconnect mid-session
					for i := 0; i < frames; i++ {
						buf, err := s.NextFrame()
						if err != nil {
							errs <- err
							return
						}
						buf[0] = 1
						s.Publish(1)
					}
					s.Abort()
					for range s.Events() {
					}
					mu.Lock()
					aborts++
					mu.Unlock()
					continue
				}
				final, _ := runSession(t, s, frames)
				if final == nil {
					errs <- fmt.Errorf("producer %d session %d: no final", p, sess)
					return
				}
				if final.Frames != frames || final.Sum != wantSum(frames) {
					errs <- fmt.Errorf("producer %d session %d: final %+v, want frames=%d sum=%g",
						p, sess, final, frames, wantSum(frames))
					return
				}
				mu.Lock()
				finishes++
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	full, deg := f.Active()
	if full != 0 || deg != 0 {
		t.Fatalf("sessions leaked: active full=%d degraded=%d", full, deg)
	}
	m := f.Metrics()
	if m.Finished.Value() != uint64(finishes) || m.Aborted.Value() != uint64(aborts) {
		t.Fatalf("counters finished=%d aborted=%d, want %d/%d",
			m.Finished.Value(), m.Aborted.Value(), finishes, aborts)
	}
	closeFleet(t, f)
}

func TestFleetWaitAdmissionBackpressure(t *testing.T) {
	cfg := testConfig(0)
	cfg.Shards = 1
	cfg.MaxSessions = 1
	cfg.WaitAdmission = true
	f := New(cfg)
	defer closeFleet(t, f)

	s1, err := f.Open(48000)
	if err != nil {
		t.Fatal(err)
	}
	opened := make(chan *Session)
	go func() {
		s2, err := f.Open(48000)
		if err != nil {
			t.Errorf("queued Open: %v", err)
			close(opened)
			return
		}
		opened <- s2
	}()
	select {
	case <-opened:
		t.Fatalf("second Open did not block at MaxSessions=1")
	case <-time.After(50 * time.Millisecond):
	}
	if final, _ := runSession(t, s1, 3); final == nil {
		t.Fatalf("first session lost its final")
	}
	select {
	case s2 := <-opened:
		if s2 == nil {
			t.Fatal("second Open failed")
		}
		if final, _ := runSession(t, s2, 2); final == nil {
			t.Fatalf("second session lost its final")
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("second Open still blocked after slot freed")
	}
}

func TestFleetDegradeAndReject(t *testing.T) {
	cfg := testConfig(0)
	cfg.Shards = 2
	cfg.MaxSessions = 1
	cfg.Degrade = true
	cfg.DegradeFactor = 2
	f := New(cfg)
	defer closeFleet(t, f)

	s1, err := f.Open(48000)
	if err != nil || s1.Degraded() {
		t.Fatalf("first session: err=%v degraded=%v", err, s1.Degraded())
	}
	s2, err := f.Open(48000)
	if err != nil {
		t.Fatalf("second session should degrade, got %v", err)
	}
	if !s2.Degraded() {
		t.Fatalf("second session not degraded beyond MaxSessions")
	}
	if _, err := f.Open(48000); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third session: err = %v, want ErrOverloaded", err)
	}
	m := f.Metrics()
	if m.AdmittedFull.Value() != 1 || m.AdmittedDegraded.Value() != 1 || m.Rejected.Value() != 1 {
		t.Fatalf("admission counters full=%d degraded=%d rejected=%d",
			m.AdmittedFull.Value(), m.AdmittedDegraded.Value(), m.Rejected.Value())
	}
	// Degraded sessions still serve: the degraded sumProc carries the flag.
	final, _ := runSession(t, s2, 4)
	if final == nil || !final.Degraded {
		t.Fatalf("degraded session final = %+v", final)
	}
	if final, _ := runSession(t, s1, 4); final == nil || final.Degraded {
		t.Fatalf("full session final = %+v", final)
	}
}

func TestFleetDegradeLimitRoundsUp(t *testing.T) {
	// Regression: the degraded-admission cap used to truncate
	// DegradeFactor*MaxSessions, so factor 1.5 with MaxSessions 1 gave
	// limit 1 and Degrade was silently inert. The ceiling guarantees at
	// least one degraded slot whenever Degrade is configured.
	cfg := testConfig(0)
	cfg.Shards = 1
	cfg.MaxSessions = 1
	cfg.Degrade = true
	cfg.DegradeFactor = 1.5
	f := New(cfg)
	defer closeFleet(t, f)

	s1, err := f.Open(48000)
	if err != nil || s1.Degraded() {
		t.Fatalf("first session: err=%v degraded=%v", err, s1.Degraded())
	}
	s2, err := f.Open(48000)
	if err != nil {
		t.Fatalf("second session must degrade (ceil(1.5*1) = 2 slots), got %v", err)
	}
	if !s2.Degraded() {
		t.Fatalf("second session not degraded")
	}
	if _, err := f.Open(48000); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third session: err = %v, want ErrOverloaded", err)
	}
	if final, _ := runSession(t, s2, 3); final == nil {
		t.Fatalf("degraded session lost its final")
	}
	if final, _ := runSession(t, s1, 3); final == nil {
		t.Fatalf("full session lost its final")
	}
}

// batchSumProc is sumProc's two-phase twin: Stage banks per-frame sums,
// Advance folds them in. stages/advances are cumulative diagnostics
// (not cleared by Reset) so tests can observe the split.
type batchSumProc struct {
	frame    int
	staged   []float64
	sum      float64
	frames   int
	stages   int
	advances int
}

func (p *batchSumProc) FrameSamples() int { return p.frame }
func (p *batchSumProc) Stage(fr []float64) bool {
	var s float64
	for _, v := range fr {
		s += v
	}
	p.staged = append(p.staged, s)
	p.stages++
	return true
}
func (p *batchSumProc) flush() {
	for _, s := range p.staged {
		p.sum += s
		p.frames++
	}
	p.staged = p.staged[:0]
}
func (p *batchSumProc) Advance() interface{} {
	p.advances++
	p.flush()
	return &sumEvent{Sum: p.sum, Frames: p.frames}
}
func (p *batchSumProc) Push(fr []float64) interface{} {
	p.Stage(fr)
	return p.Advance()
}
func (p *batchSumProc) Finalize() interface{} {
	p.flush()
	return &sumEvent{Sum: p.sum, Frames: p.frames, Final: true}
}
func (p *batchSumProc) Reset() {
	p.staged = p.staged[:0]
	p.sum, p.frames = 0, 0
}

func TestFleetBatchProcStagesAndAdvances(t *testing.T) {
	// A Proc that implements BatchProc takes the two-phase path: every
	// frame goes through Stage, the deferred work through Advance, and
	// Finalize flushes whatever is still staged — with the same final
	// result as the plain Push path.
	var mu sync.Mutex
	var procs []*batchSumProc
	cfg := Config{
		Shards:   1,
		FrameFor: func(rate float64) int { return 4 },
		NewProc: func(rate float64, degraded bool) Proc {
			p := &batchSumProc{frame: 4}
			mu.Lock()
			procs = append(procs, p)
			mu.Unlock()
			return p
		},
	}
	f := New(cfg)
	defer closeFleet(t, f)
	s, err := f.Open(48000)
	if err != nil {
		t.Fatal(err)
	}
	const frames = 37
	final, _ := runSession(t, s, frames)
	if final == nil || final.Frames != frames || final.Sum != wantSum(frames) {
		t.Fatalf("batch final = %+v, want frames=%d sum=%g", final, frames, wantSum(frames))
	}
	mu.Lock()
	defer mu.Unlock()
	if len(procs) != 1 {
		t.Fatalf("expected 1 proc, got %d", len(procs))
	}
	p := procs[0]
	if p.stages != frames {
		t.Fatalf("stages = %d, want %d (all frames must go through Stage)", p.stages, frames)
	}
	if p.advances == 0 {
		t.Fatalf("Advance never ran")
	}
	if got := f.Metrics().AdvanceLatencyUS.Count(); got != uint64(p.advances) {
		t.Fatalf("AdvanceLatencyUS count = %d, want %d", got, p.advances)
	}
}

func TestFleetCloseDrainSignaled(t *testing.T) {
	// Close's drain waits on the admission cond-var (signaled by release)
	// rather than polling; it must return promptly once the last session
	// finishes and must not hang when the drain starts mid-session.
	cfg := testConfig(0)
	cfg.Shards = 1
	f := New(cfg)
	s, err := f.Open(48000)
	if err != nil {
		t.Fatal(err)
	}
	closed := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		closed <- f.Close(ctx)
	}()
	select {
	case err := <-closed:
		t.Fatalf("Close returned %v with a session still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	if final, _ := runSession(t, s, 5); final == nil {
		t.Fatalf("session lost its final during drain")
	}
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close = %v after drain", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("Close did not return after the last session finished")
	}
}

func TestFleetInterimDropsNeverFinal(t *testing.T) {
	// A consumer that never drains until close: interim events beyond
	// the buffer are dropped and counted, the final always arrives.
	cfg := testConfig(1) // interim every frame
	cfg.EventBuffer = 4
	f := New(cfg)
	defer closeFleet(t, f)
	s, err := f.Open(48000)
	if err != nil {
		t.Fatal(err)
	}
	const frames = 50
	for i := 0; i < frames; i++ {
		buf, err := s.NextFrame()
		if err != nil {
			t.Fatal(err)
		}
		buf[0] = 1
		s.Publish(1)
	}
	if err := s.CloseSend(); err != nil {
		t.Fatal(err)
	}
	var final *sumEvent
	interim := 0
	for ev := range s.Events() {
		se := ev.(*sumEvent)
		if se.Final {
			final = se
		} else {
			interim++
		}
	}
	if final == nil || final.Frames != frames {
		t.Fatalf("final = %+v, want frames=%d", final, frames)
	}
	drops := f.Metrics().InterimDrops.Value()
	if interim+int(drops) != frames {
		t.Fatalf("interim %d + drops %d != %d emitted", interim, drops, frames)
	}
	if drops == 0 {
		t.Fatalf("expected drops with a 4-cell buffer and %d interim events", frames)
	}
}

func TestFleetClosedRejectsOpen(t *testing.T) {
	f := New(testConfig(0))
	closeFleet(t, f)
	if _, err := f.Open(48000); !errors.Is(err, ErrClosed) {
		t.Fatalf("Open after Close: %v, want ErrClosed", err)
	}
}

func TestFleetForcedShutdown(t *testing.T) {
	// A session that never closes: Close's deadline expires, the fleet
	// force-aborts, the blocked producer gets ErrSessionDone, and the
	// event channel closes without a final.
	cfg := testConfig(0)
	cfg.RingFrames = 2
	f := New(cfg)
	s, err := f.Open(48000)
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := s.NextFrame()
	buf[0] = 1
	s.Publish(1)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := f.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close = %v, want DeadlineExceeded", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := s.NextFrame(); err != nil {
			if !errors.Is(err, ErrSessionDone) {
				t.Fatalf("NextFrame after forced shutdown: %v", err)
			}
			break
		}
		s.Publish(1)
		if time.Now().After(deadline) {
			t.Fatalf("producer never saw ErrSessionDone")
		}
	}
	for ev := range s.Events() {
		if ev.(*sumEvent).Final {
			t.Fatalf("forced shutdown delivered a final event")
		}
	}
	if f.Metrics().Aborted.Value() == 0 {
		t.Fatalf("forced shutdown did not count an abort")
	}
}

func TestFleetZeroAllocSteadyState(t *testing.T) {
	// The frame path — NextFrame/Publish on the producer, peek/Push/pop
	// plus histogram observations on the worker — must not allocate in
	// steady state. Mallocs are counted process-wide, so allow a sliver
	// of slack for runtime background noise.
	cfg := testConfig(0)
	cfg.Shards = 1
	f := New(cfg)
	defer closeFleet(t, f)
	s, err := f.Open(48000)
	if err != nil {
		t.Fatal(err)
	}
	push := func(frames int) {
		for i := 0; i < frames; i++ {
			buf, err := s.NextFrame()
			if err != nil {
				t.Fatal(err)
			}
			buf[0], buf[1], buf[2], buf[3] = 1, 2, 3, 4
			s.Publish(4)
		}
	}
	push(2000) // warm up: wake channel, timer, histogram paths
	waitDrained(t, &s.ring)

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	const frames = 20000
	push(frames)
	waitDrained(t, &s.ring)
	runtime.ReadMemStats(&after)
	perFrame := float64(after.Mallocs-before.Mallocs) / frames
	if perFrame > 0.01 {
		t.Fatalf("steady-state frame path allocates %.4f objects/frame, want ~0", perFrame)
	}
	if final, _ := runSession(t, s, 1); final == nil {
		t.Fatalf("session lost its final after alloc run")
	}
}

func waitDrained(t testing.TB, r *frameRing) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for r.occupancy() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("ring never drained")
		}
		runtime.Gosched()
	}
}

// recordingSink captures every sealed trace the fleet hands over, so
// the journal handoff contract (exactly one Record per traced session,
// after sealing) is pinned without importing the journal package.
type recordingSink struct {
	mu     sync.Mutex
	traces []*trace.SessionTrace
	states []string
}

func (s *recordingSink) Record(st *trace.SessionTrace, aborted bool) {
	s.mu.Lock()
	s.traces = append(s.traces, st)
	s.states = append(s.states, st.StateName())
	s.mu.Unlock()
}

func (s *recordingSink) snapshot() ([]*trace.SessionTrace, []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*trace.SessionTrace(nil), s.traces...), append([]string(nil), s.states...)
}

func TestSessionSinkReceivesSealedTraces(t *testing.T) {
	sink := &recordingSink{}
	rejects := &recordingSink{}
	cfg := testConfig(0)
	cfg.Shards = 2
	cfg.MaxSessions = 1
	cfg.Trace = trace.NewRecorder(trace.Config{})
	cfg.NewSessionSink = func(shard int) SessionSink { return sink }
	cfg.RejectSink = rejects
	f := New(cfg)

	s, err := f.Open(48000)
	if err != nil {
		t.Fatal(err)
	}
	// A second session is rejected (MaxSessions=1): its synthetic trace
	// must reach the reject sink already sealed.
	if _, err := f.Open(48000); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second open: %v", err)
	}
	if _, states := rejects.snapshot(); len(states) != 1 || states[0] != "rejected" {
		t.Fatalf("reject sink saw %v", states)
	}

	if final, _ := runSession(t, s, 8); final == nil {
		t.Fatal("no final event")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		traces, states := sink.snapshot()
		if len(traces) == 1 {
			if states[0] != "done" {
				t.Fatalf("sink got an unsealed trace: state %q", states[0])
			}
			if traces[0].ID() == 0 {
				t.Fatalf("sink trace has no identity")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sink never saw the completed session (%d)", len(traces))
		}
		time.Sleep(time.Millisecond)
	}

	// An aborted session reaches the sink sealed as aborted.
	s2, err := f.Open(48000)
	if err != nil {
		t.Fatal(err)
	}
	s2.Abort()
	for {
		_, states := sink.snapshot()
		if len(states) == 2 {
			if states[1] != "aborted" {
				t.Fatalf("aborted session sealed as %q", states[1])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sink never saw the aborted session")
		}
		time.Sleep(time.Millisecond)
	}
	closeFleet(t, f)
}
