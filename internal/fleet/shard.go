package fleet

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"inaudible/internal/trace"
)

const (
	// frameBudget bounds the frames served per session per scheduling
	// round, so one firehose session cannot starve its shard-mates.
	frameBudget = 32
	// procFreeCap bounds the per-(rate, mode) processor free list. Procs
	// hold FFT segments and accumulator frames, so a shard keeps only a
	// few warm spares per shape instead of one per session ever seen.
	procFreeCap = 4
	// admitBacklog bounds admissions queued to one shard before Open
	// briefly blocks handing the session over (cold path).
	admitBacklog = 128
)

// procKey identifies a reusable processor shape.
type procKey struct {
	rate     float64
	degraded bool
}

// shard owns a set of sessions and the single worker goroutine that
// serves them. All fields below admitq/wake/stop are worker-private.
type shard struct {
	id       int
	fl       *Fleet
	admitq   chan *Session
	wake     chan struct{}
	sleeping atomic.Bool
	stop     chan struct{}
	stopOnce sync.Once
	// handoffs counts OpenKeyed calls that have claimed an admission
	// slot but not yet landed in admitq; Close's final sweep waits for
	// it so a session can never be stranded between admission and
	// attachment.
	handoffs atomic.Int64

	// introspection counters: written by the worker (or attach path),
	// read by ShardStatus from HTTP goroutines.
	attached      atomic.Int32  // sessions currently attached
	frames        atomic.Uint64 // frames served
	rounds        atomic.Uint64 // scheduling rounds with progress
	lastBatch     atomic.Int32  // sessions advanced in the last batch phase
	lastAdvanceUS atomic.Int64  // wall time of the last batch phase, µs

	sessions []*Session
	free     map[procKey][]Proc
	// staged collects this round's sessions with frames ingested via
	// BatchProc.Stage; phase 2 runs their Advance calls back-to-back so
	// the heavy DSP for co-resident sessions shares hot FFT plans and
	// caches. Worker-private scratch, reused across rounds.
	staged []*Session
	// batcher is the shard-level cross-session scratch for ColumnBatcher
	// procs, built lazily from Config.NewRoundBatcher when the first
	// such session attaches. Phase 2 then interposes one Collect/Run
	// pass before the Advances. Worker-private.
	batcher RoundBatcher
	// sink receives each session's sealed trace at finish (the durable
	// journal's per-shard SPSC handoff); nil when journaling is off.
	sink SessionSink
}

func newShard(id int, fl *Fleet) *shard {
	sh := &shard{
		id:     id,
		fl:     fl,
		admitq: make(chan *Session, admitBacklog),
		wake:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
		free:   make(map[procKey][]Proc),
	}
	if fl.cfg.NewSessionSink != nil {
		sh.sink = fl.cfg.NewSessionSink(id)
	}
	return sh
}

// wakeup nudges the worker; it never blocks (the cap-1 channel absorbs
// redundant nudges).
func (sh *shard) wakeup() {
	select {
	case sh.wake <- struct{}{}:
	default:
	}
}

// run is the shard worker: attach admitted sessions, round-robin the
// attached ones with a per-round frame budget, and park when every ring
// is empty. The park sequence — declare sleeping, rescan, then block —
// pairs with Session.publish's publish-then-check-sleeping so a wakeup
// can never be lost between the scan and the block.
func (sh *shard) run(wg *sync.WaitGroup) {
	defer wg.Done()
	if sh.fl.cfg.Pin {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	for {
		progress := sh.drainAdmitq()
		// Phase 1: ingest ready frames for every session (cheap staging
		// for BatchProcs, full Push otherwise).
		for i := 0; i < len(sh.sessions); i++ {
			s := sh.sessions[i]
			worked, staged, finished := sh.serveSome(s)
			progress = progress || worked
			if staged && !finished {
				sh.staged = append(sh.staged, s)
			}
			if finished {
				last := len(sh.sessions) - 1
				sh.sessions[i] = sh.sessions[last]
				sh.sessions[last] = nil
				sh.sessions = sh.sessions[:last]
				i--
			}
		}
		// Phase 2: run the deferred heavy analysis for all staged
		// sessions back-to-back. Sessions that finished during phase 1
		// were never appended (Finalize flushed their staging), and
		// late aborts are skipped (finish will Reset the proc).
		if len(sh.staged) > 0 {
			batchStart := time.Now()
			// Phase 2a: collect every opted-in session's pending FFT
			// columns and run them as one shard-level batched transform
			// pass — the per-session Advances below then complete from
			// precomputed spectra instead of transforming one at a time.
			if sh.batcher != nil {
				collected := false
				for _, s := range sh.staged {
					if s.colBatch != nil && !s.aborted.Load() && s.colBatch.Collect(sh.batcher) {
						collected = true
					}
				}
				if collected {
					sh.batcher.Run()
				}
			}
			advanced := 0
			for i, s := range sh.staged {
				sh.staged[i] = nil
				if s.aborted.Load() {
					continue
				}
				sh.advance(s)
				sh.staged[advanced] = s
				advanced++
			}
			roundDur := time.Since(batchStart)
			if advanced > 0 {
				// Attribute each participant its share of the round —
				// the batched pass works for all of them at once, so
				// charging any one session the whole round would
				// misreport per-session cost by the batch factor.
				share := roundDur / time.Duration(advanced)
				shareUS := float64(share.Microseconds())
				for i := 0; i < advanced; i++ {
					sh.fl.m.AdvanceLatencyUS.Observe(shareUS)
					sh.staged[i].trace.RecordAdvance(share, advanced)
					sh.staged[i] = nil
				}
				sh.fl.m.BatchRoundSize.Observe(float64(advanced))
			}
			sh.staged = sh.staged[:0]
			if sh.batcher != nil {
				sh.batcher.Reset()
			}
			sh.lastBatch.Store(int32(advanced))
			sh.lastAdvanceUS.Store(roundDur.Microseconds())
		}
		if progress {
			sh.rounds.Add(1)
		}
		select {
		case <-sh.stop:
			sh.shutdown()
			return
		default:
		}
		if progress {
			continue
		}
		sh.sleeping.Store(true)
		if sh.pending() {
			sh.sleeping.Store(false)
			continue
		}
		select {
		case <-sh.wake:
		case <-sh.stop:
			sh.sleeping.Store(false)
			sh.shutdown()
			return
		}
		sh.sleeping.Store(false)
	}
}

// drainAdmitq attaches every queued admission.
func (sh *shard) drainAdmitq() bool {
	worked := false
	for {
		select {
		case s := <-sh.admitq:
			sh.attach(s)
			worked = true
		default:
			return worked
		}
	}
}

// attach gives the session a processor (reusing a warm one of the same
// shape when available) and adds it to the serve set.
func (sh *shard) attach(s *Session) {
	key := procKey{rate: s.rate, degraded: s.degraded}
	if list := sh.free[key]; len(list) > 0 {
		s.proc = list[len(list)-1]
		list[len(list)-1] = nil
		sh.free[key] = list[:len(list)-1]
	} else {
		s.proc = sh.fl.cfg.NewProc(s.rate, s.degraded)
	}
	if got := s.proc.FrameSamples(); got != s.frame {
		panic(fmt.Sprintf("fleet: Proc frame %d disagrees with FrameFor %d at rate %g", got, s.frame, s.rate))
	}
	s.batch, _ = s.proc.(BatchProc)
	s.colBatch, _ = s.proc.(ColumnBatcher)
	if s.colBatch != nil && sh.batcher == nil && sh.fl.cfg.NewRoundBatcher != nil {
		sh.batcher = sh.fl.cfg.NewRoundBatcher()
	}
	// Hand the processor the session's flight record (or clear a stale
	// one on a recycled processor) before the first frame is served.
	if ta, ok := s.proc.(TraceAware); ok {
		ta.SetTrace(s.trace)
	}
	sh.attached.Add(1)
	sh.sessions = append(sh.sessions, s)
}

// serveSome advances one session by up to frameBudget frames. This is
// the fleet's hot loop: peek, Push (or Stage), pop, and two histogram
// observations — no allocation, no locks, no cross-goroutine waits.
// staged reports that frames were ingested via BatchProc.Stage and the
// session owes an Advance in phase 2 of the round.
func (sh *shard) serveSome(s *Session) (worked, staged, finished bool) {
	if s.aborted.Load() {
		sh.finish(s, true)
		return true, false, true
	}
	// Flight recorder: note a new ring-occupancy high-water before the
	// round drains it. One occupancy probe per serveSome call, only when
	// the session is traced — the per-frame loop below stays untouched.
	if s.trace != nil {
		if occ := s.ring.occupancy(); occ > s.traceHW {
			s.traceHW = occ
			s.trace.Record(trace.KindRingHighWater, float64(occ), 0)
		}
	}
	m := sh.fl.m
	for k := 0; k < frameBudget; k++ {
		sl := s.ring.peek()
		if sl == nil {
			return worked, staged, false
		}
		if sl.n == closeMark {
			s.ring.pop()
			// Frames staged earlier in this same round may owe interim
			// emissions; surface them through a pending Advance before
			// Finalize so the event sequence matches the per-Push path
			// (Finalize still flushes whatever remains, so the close
			// path stays mode-agnostic for procs without staged work).
			if s.batch != nil && staged {
				advStart := time.Now()
				ev := s.batch.Advance()
				advDur := time.Since(advStart)
				m.AdvanceLatencyUS.Observe(float64(advDur.Microseconds()))
				s.trace.RecordAdvance(advDur, 1) // a round of one
				if ev != nil {
					sh.deliver(s, ev)
				}
			}
			ev := s.proc.Finalize()
			if !s.closedAt.IsZero() {
				lat := time.Since(s.closedAt)
				m.VerdictLatencyUS.Observe(float64(lat.Microseconds()))
				s.trace.RecordFinalized(lat)
			}
			if ev != nil {
				s.events <- ev // reserved final cell: cannot block
			}
			sh.finish(s, false)
			return true, false, true
		}
		start := time.Now()
		var ev interface{}
		if s.batch != nil {
			if s.batch.Stage(sl.buf[:sl.n]) {
				staged = true
			}
		} else {
			ev = s.proc.Push(sl.buf[:sl.n])
		}
		m.FrameLatencyUS.Observe(float64(time.Since(start).Microseconds()))
		s.ring.pop()
		m.Frames.Inc()
		sh.frames.Add(1)
		worked = true
		if ev != nil {
			sh.deliver(s, ev)
		}
	}
	return worked, staged, false
}

// advance runs one staged session's deferred analysis (phase 2).
// Timing and trace attribution happen at the round level: the batched
// transform pass works for every participant at once, so per-session
// cost is the round's share, not this call's wall time.
func (sh *shard) advance(s *Session) {
	if ev := s.batch.Advance(); ev != nil {
		sh.deliver(s, ev)
	}
}

// deliver sends a proc-emitted event to the session's channel,
// unwrapping an Events bundle into its ordered parts. The worker is the
// only sender, so len can only shrink under us: a cell observed free
// stays free. Keeping one cell in reserve guarantees the final event
// always has room; interim events beyond that are dropped and counted.
func (sh *shard) deliver(s *Session, ev interface{}) {
	if bundle, ok := ev.(Events); ok {
		for _, e := range bundle {
			if e != nil {
				sh.deliver(s, e)
			}
		}
		return
	}
	if len(s.events) < cap(s.events)-1 {
		s.events <- ev
	} else {
		sh.fl.m.InterimDrops.Inc()
	}
}

// finish detaches a session: recycle its processor, release its
// admission slot and counters, and only then close its event stream —
// so a producer that observes Events closed also observes the slot
// freed and the session counted.
func (sh *shard) finish(s *Session, aborted bool) {
	wasAttached := s.proc != nil
	if s.proc != nil {
		s.proc.Reset()
		key := procKey{rate: s.rate, degraded: s.degraded}
		if list := sh.free[key]; len(list) < procFreeCap {
			sh.free[key] = append(list, s.proc)
		}
		s.proc = nil
		s.batch = nil
		s.colBatch = nil
	}
	if aborted {
		sh.fl.m.Aborted.Inc()
	} else {
		sh.fl.m.Finished.Inc()
	}
	sh.fl.cfg.Trace.End(s.trace, aborted)
	if sh.sink != nil && s.trace != nil {
		sh.sink.Record(s.trace, aborted)
	}
	if wasAttached {
		sh.attached.Add(-1)
	}
	sh.fl.release(s.degraded)
	s.done.Store(true)
	close(s.events)
}

// pending reports work available without blocking: queued admissions,
// abort requests, or published frames.
func (sh *shard) pending() bool {
	if len(sh.admitq) > 0 {
		return true
	}
	for _, s := range sh.sessions {
		if s.aborted.Load() || s.ring.peek() != nil {
			return true
		}
	}
	return false
}

// shutdown force-aborts everything still attached or queued. On a
// graceful Close the fleet has already drained, so this is a no-op.
func (sh *shard) shutdown() {
	for {
		select {
		case s := <-sh.admitq:
			sh.sessions = append(sh.sessions, s)
		default:
			for _, s := range sh.sessions {
				sh.finish(s, true)
			}
			sh.sessions = nil
			return
		}
	}
}
