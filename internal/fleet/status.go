package fleet

import "time"

// ShardStatus is one shard's introspection snapshot, assembled from
// worker-maintained atomics — reading it never touches the worker's
// private state or takes its locks.
type ShardStatus struct {
	ID                 int    `json:"id"`
	Sessions           int    `json:"sessions"`
	FramesTotal        uint64 `json:"frames_total"`
	RoundsTotal        uint64 `json:"rounds_total"`
	QueuedAdmits       int    `json:"queued_admits"`
	LastBatchSessions  int    `json:"last_batch_sessions"`
	LastBatchAdvanceUS int64  `json:"last_batch_advance_us"`
}

// Status is the fleet-wide introspection snapshot for /fleet.
type Status struct {
	Shards         int           `json:"shards"`
	RingFrames     int           `json:"ring_frames"`
	MaxSessions    int           `json:"max_sessions"` // 0: unlimited
	DegradeLimit   int           `json:"degrade_limit,omitempty"`
	AdmissionMode  string        `json:"admission_mode"`
	ActiveFull     int           `json:"active_full"`
	ActiveDegraded int           `json:"active_degraded"`
	Closed         bool          `json:"closed"`
	Draining       bool          `json:"draining,omitempty"`
	UptimeSeconds  float64       `json:"uptime_seconds"`
	ShardStates    []ShardStatus `json:"shard_states,omitempty"`
}

// ShardStatus snapshots every shard.
func (f *Fleet) ShardStatus() []ShardStatus {
	out := make([]ShardStatus, len(f.shards))
	for i, sh := range f.shards {
		out[i] = ShardStatus{
			ID:                 sh.id,
			Sessions:           int(sh.attached.Load()),
			FramesTotal:        sh.frames.Load(),
			RoundsTotal:        sh.rounds.Load(),
			QueuedAdmits:       len(sh.admitq),
			LastBatchSessions:  int(sh.lastBatch.Load()),
			LastBatchAdvanceUS: sh.lastAdvanceUS.Load(),
		}
	}
	return out
}

// Status snapshots the fleet: static wiring, admission state, and the
// per-shard breakdown.
func (f *Fleet) Status() Status {
	mode := "reject"
	switch {
	case f.cfg.MaxSessions <= 0:
		mode = "unlimited"
	case f.cfg.Degrade:
		mode = "degrade"
	case f.cfg.WaitAdmission:
		mode = "wait"
	}
	f.mu.Lock()
	full, degraded, closed, draining := f.activeFull, f.activeDegraded, f.closed, f.draining
	f.mu.Unlock()
	return Status{
		Shards:         len(f.shards),
		RingFrames:     f.cfg.RingFrames,
		MaxSessions:    f.MaxSessions(),
		DegradeLimit:   f.degradeLimit,
		AdmissionMode:  mode,
		ActiveFull:     full,
		ActiveDegraded: degraded,
		Closed:         closed,
		Draining:       draining,
		UptimeSeconds:  time.Since(f.created).Seconds(),
		ShardStates:    f.ShardStatus(),
	}
}
