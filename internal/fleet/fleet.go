// Package fleet is the sharded serving core behind the streaming
// defense service: N shards, each owning a dedicated worker goroutine,
// with sessions routed to shards by affinity hash so per-session state
// never crosses a goroutine boundary after admission.
//
// The data path is allocation- and lock-free per frame: each session
// owns a bounded SPSC frame ring (see frameRing); the producer writes
// samples straight into ring cells and the owning shard worker feeds
// them to the session's Proc. Cross-goroutine coordination happens only
// at the edges — admission (mutex, cold), consumer wakeup (a cap-1
// channel armed on the empty→non-empty transition and a Dekker-style
// sleeping flag), and verdict delivery (a bounded channel whose last
// cell is reserved for the final event, so finals are never dropped and
// the worker never blocks on a slow reader; excess interim events are
// dropped and counted, never silently).
//
// Admission is explicit and three-moded: below MaxSessions sessions get
// full service; with Degrade set, sessions beyond it are admitted in
// degraded mode (the Proc factory decides what that means — for the
// guard service, VAD + trace-band monitoring with full analysis
// deferred) up to DegradeFactor*MaxSessions and rejected with
// ErrOverloaded beyond; without Degrade the caller picks between
// blocking backpressure (WaitAdmission) and immediate rejection.
// Overload therefore always resolves to backpressure, a degraded
// verdict, or an explicit error — never a hang or a silent drop.
//
// The package is processing-agnostic: it moves frames and events, and a
// Proc (built per session by the configured factory) does the work.
// internal/stream implements Proc over its Guard to build the wire
// service.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"inaudible/internal/telemetry"
	"inaudible/internal/trace"
)

// Proc processes one session's frames on its owning shard worker. Every
// method is called from that single goroutine, so implementations need
// no internal synchronisation. Push and Finalize may return an event
// (e.g. a verdict) for delivery to the session's Events channel, or nil.
type Proc interface {
	// FrameSamples is the nominal frame size; it must match the fleet's
	// FrameFor for the session rate.
	FrameSamples() int
	// Push processes one frame (1..FrameSamples samples).
	Push(frame []float64) interface{}
	// Finalize flushes the session and returns the final event.
	Finalize() interface{}
	// Reset clears all per-session state so the Proc can be reused.
	Reset()
}

// TraceAware is an optional Proc extension for processors that emit
// flight-recorder events (escalations, verdicts). The shard worker
// hands the session's trace to the processor at attach time; SetTrace
// is always called (with nil when the recorder is off), so a recycled
// processor can never leak events into a previous session's trace.
type TraceAware interface {
	SetTrace(st *trace.SessionTrace)
}

// BatchProc is an optional Proc extension for processors whose frame
// work splits into a cheap ingest step and a heavier analysis step. A
// shard worker that sees a BatchProc runs its rounds in two phases:
// first Stage for every ready frame across all of its sessions (cheap
// copies and triage), then Advance for each staged session back-to-back
// — so the heavy DSP for co-resident sessions runs with hot FFT plans
// and caches instead of interleaving cold passes per session. All calls
// stay on the owning shard goroutine; the SPSC contract is unchanged.
//
// Stage must be cheap and must not emit events; Advance performs the
// deferred work for everything staged since the last Advance and may
// return one event. Finalize must internally flush any staged frames,
// so the shard's close path needs no special handling. Plain Push must
// behave exactly like Stage immediately followed by Advance (the
// standalone, non-batched contract).
type BatchProc interface {
	Proc
	// Stage ingests one frame (1..FrameSamples samples) without running
	// the deferred heavy analysis. It must not retain the slice. The
	// return value reports whether the session owes an Advance this
	// round — frames were staged, or a deferred event is pending.
	Stage(frame []float64) bool
	// Advance runs the deferred analysis over all frames staged since
	// the previous Advance/Finalize and may return one event, or nil.
	// Because a shard round can span several emission boundaries, an
	// Advance with more than one pending event returns them wrapped in
	// an Events bundle; the shard delivers the parts in order.
	Advance() interface{}
}

// Events is an ordered bundle of events returned from a single
// BatchProc.Advance covering multiple emission boundaries. The shard
// unwraps it and delivers each part as if it had been emitted by a
// consecutive Push call.
type Events []interface{}

// RoundBatcher is shard-owned cross-session scratch for one batch
// round. The fleet stays processing-agnostic: it only sequences the
// protocol — Collect on every staged ColumnBatcher, one Run, the
// per-session Advances, then Reset — while the concrete type (built by
// Config.NewRoundBatcher) is shared state only the procs understand.
type RoundBatcher interface {
	// Run executes all collected cross-session work in one pass.
	Run()
	// Reset clears collected state for the next round, keeping capacity.
	Reset()
}

// ColumnBatcher is an optional BatchProc extension for processors that
// can hand their deferred per-session transform columns to a
// shard-level RoundBatcher: phase 2 of the round first Collects the
// pending columns of every staged session, Runs the batcher once (one
// cross-session batched pass with hot tables), then completes each
// session's Advance from the precomputed results.
type ColumnBatcher interface {
	BatchProc
	// Collect stages this round's deferred columns on the shard batcher
	// and reports whether anything was staged. A proc may decline (e.g.
	// when a pending emission needs exact per-boundary segmentation);
	// Advance must therefore work both after a Collect — consuming the
	// batcher's results — and without one (the per-session fallback).
	Collect(rb RoundBatcher) bool
}

// Errors surfaced by admission and the data path.
var (
	// ErrOverloaded rejects a session the fleet has no capacity for
	// (explicit overload, the caller should tell its peer).
	ErrOverloaded = errors.New("fleet: overloaded, session rejected")
	// ErrClosed rejects sessions opened after Close.
	ErrClosed = errors.New("fleet: closed")
	// ErrDraining rejects sessions opened while the fleet is draining
	// (node leaving a cluster): in-flight sessions finish normally, new
	// ones must go elsewhere.
	ErrDraining = errors.New("fleet: draining, new sessions refused")
	// ErrSessionDone reports producer calls on a session the fleet has
	// already finished (shutdown force-abort or producer Abort).
	ErrSessionDone = errors.New("fleet: session is done")
)

// Config wires a Fleet.
type Config struct {
	// Shards is the number of worker goroutines; <= 0 selects
	// GOMAXPROCS. Sessions are pinned to shards by affinity hash.
	Shards int
	// RingFrames is the per-session frame-ring capacity (rounded up to a
	// power of two); <= 0 selects 16 (320 ms of audio at the default
	// 20 ms frame).
	RingFrames int
	// MaxSessions caps full-service sessions; <= 0 means unlimited.
	MaxSessions int
	// Degrade admits sessions beyond MaxSessions in degraded mode
	// instead of waiting or rejecting.
	Degrade bool
	// DegradeFactor bounds total (full + degraded) sessions at
	// DegradeFactor*MaxSessions when Degrade is set; <= 1 selects 2.
	DegradeFactor float64
	// WaitAdmission makes Open block until a full-service slot frees
	// instead of returning ErrOverloaded (ignored when Degrade is set).
	// This is the PR 2 worker-pool backpressure behaviour.
	WaitAdmission bool
	// EventBuffer is the per-session event-channel capacity; <= 1
	// selects 16. The last cell is reserved for the final event.
	EventBuffer int
	// Pin locks each shard worker to an OS thread.
	Pin bool
	// FrameFor maps a session sample rate to its frame size in samples.
	// Required; must agree with the Procs built by NewProc.
	FrameFor func(rate float64) int
	// NewProc builds a session processor. Required. Called on the shard
	// worker, so construction cost does not block admission.
	NewProc func(rate float64, degraded bool) Proc
	// NewRoundBatcher builds the shard-level cross-session batch scratch
	// handed to ColumnBatcher procs. Called lazily, on the shard worker,
	// when the first ColumnBatcher session attaches (one batcher per
	// shard). nil disables column batching: ColumnBatcher procs then
	// advance per session like plain BatchProcs.
	NewRoundBatcher func() RoundBatcher
	// Metrics instruments the fleet; nil builds unregistered instruments
	// (always safe to record into).
	Metrics *Metrics
	// Trace is the optional flight recorder. When set, every admission
	// opens a per-session event trace (recorded lock-free on the shard
	// worker) and rejections leave synthetic exemplar traces; nil keeps
	// the fleet trace-free with zero overhead beyond one pointer check.
	Trace *trace.Recorder
	// NewSessionSink builds the per-shard consumer of sealed session
	// traces (the durable journal's SPSC handoff). Called once per
	// shard at construction; the sink's Record runs on the shard worker
	// right after the trace is sealed, so implementations must be
	// lock-free and allocation-free. nil disables the handoff. Requires
	// Trace — without a recorder there is no trace to hand over.
	NewSessionSink func(shard int) SessionSink
	// RejectSink receives the synthetic traces of rejected sessions,
	// which never reach a shard; it may be called from any goroutine
	// that refuses an admission. nil discards them.
	RejectSink SessionSink
}

// SessionSink consumes sealed session traces at end of life. The fleet
// calls Record exactly once per traced session, after the recorder has
// sealed the trace, on the goroutine that owned the session last.
type SessionSink interface {
	Record(st *trace.SessionTrace, aborted bool)
}

// Metrics is the fleet's instrument set. Build with NewMetrics to
// register everything under fleet_* names, or leave Config.Metrics nil
// for standalone instruments.
type Metrics struct {
	AdmittedFull     *telemetry.Counter   // fleet_sessions_admitted_full_total
	AdmittedDegraded *telemetry.Counter   // fleet_sessions_admitted_degraded_total
	Rejected         *telemetry.Counter   // fleet_sessions_rejected_total
	Finished         *telemetry.Counter   // fleet_sessions_finished_total
	Aborted          *telemetry.Counter   // fleet_sessions_aborted_total
	Frames           *telemetry.Counter   // fleet_frames_total
	InterimDrops     *telemetry.Counter   // fleet_interim_drops_total
	RingFullWaits    *telemetry.Counter   // fleet_ring_full_waits_total
	ActiveFull       *telemetry.Gauge     // fleet_active_sessions
	ActiveDegraded   *telemetry.Gauge     // fleet_active_degraded_sessions
	FrameLatencyUS   *telemetry.Histogram // fleet_frame_latency_us
	AdvanceLatencyUS *telemetry.Histogram // fleet_batch_advance_latency_us
	VerdictLatencyUS *telemetry.Histogram // fleet_verdict_latency_us
	RingOccupancy    *telemetry.Histogram // fleet_ring_occupancy_frames
	BatchRoundSize   *telemetry.Histogram // fleet_batch_round_sessions
}

// frameLatencyBuckets spans 1 µs .. ~8 s geometrically.
func frameLatencyBuckets() []float64 { return telemetry.ExpBuckets(1, 2, 23) }

// advanceLatencyBuckets spans 1 µs .. ~2 min geometrically: a batch
// round amortises up to frameBudget frames across many sessions, so its
// per-session share can sit well above single-frame latencies without
// saturating the top bucket.
func advanceLatencyBuckets() []float64 { return telemetry.ExpBuckets(1, 2, 27) }

// batchRoundBuckets spans 1 .. 256 sessions per round.
func batchRoundBuckets() []float64 { return telemetry.ExpBuckets(1, 2, 9) }

// newUnregisteredMetrics builds instruments not tied to a registry.
func newUnregisteredMetrics() *Metrics {
	return &Metrics{
		AdmittedFull:     &telemetry.Counter{},
		AdmittedDegraded: &telemetry.Counter{},
		Rejected:         &telemetry.Counter{},
		Finished:         &telemetry.Counter{},
		Aborted:          &telemetry.Counter{},
		Frames:           &telemetry.Counter{},
		InterimDrops:     &telemetry.Counter{},
		RingFullWaits:    &telemetry.Counter{},
		ActiveFull:       &telemetry.Gauge{},
		ActiveDegraded:   &telemetry.Gauge{},
		FrameLatencyUS:   telemetry.NewHistogram(frameLatencyBuckets()),
		AdvanceLatencyUS: telemetry.NewHistogram(advanceLatencyBuckets()),
		VerdictLatencyUS: telemetry.NewHistogram(frameLatencyBuckets()),
		RingOccupancy:    telemetry.NewHistogram(telemetry.ExpBuckets(1, 2, 10)),
		BatchRoundSize:   telemetry.NewHistogram(batchRoundBuckets()),
	}
}

// NewMetrics builds the fleet instrument set registered under fleet_*
// names in r (see the README's metrics reference for meanings/units).
func NewMetrics(r *telemetry.Registry) *Metrics {
	return &Metrics{
		AdmittedFull:     r.NewCounter("fleet_sessions_admitted_full_total", "sessions admitted at full service"),
		AdmittedDegraded: r.NewCounter("fleet_sessions_admitted_degraded_total", "sessions admitted in degraded mode"),
		Rejected:         r.NewCounter("fleet_sessions_rejected_total", "sessions rejected with ErrOverloaded"),
		Finished:         r.NewCounter("fleet_sessions_finished_total", "sessions finalized normally"),
		Aborted:          r.NewCounter("fleet_sessions_aborted_total", "sessions aborted before finalize"),
		Frames:           r.NewCounter("fleet_frames_total", "audio frames processed by shard workers"),
		InterimDrops:     r.NewCounter("fleet_interim_drops_total", "interim events dropped on a full session event buffer"),
		RingFullWaits:    r.NewCounter("fleet_ring_full_waits_total", "producer wait episodes on a full frame ring"),
		ActiveFull:       r.NewGauge("fleet_active_sessions", "full-service sessions in flight"),
		ActiveDegraded:   r.NewGauge("fleet_active_degraded_sessions", "degraded sessions in flight"),
		FrameLatencyUS:   r.NewHistogram("fleet_frame_latency_us", "per-frame processing latency (microseconds)", frameLatencyBuckets()),
		AdvanceLatencyUS: r.NewHistogram("fleet_batch_advance_latency_us", "per-session share of the shard batch round (round duration / sessions advanced, microseconds)", advanceLatencyBuckets()),
		VerdictLatencyUS: r.NewHistogram("fleet_verdict_latency_us", "close-to-final-verdict latency (microseconds)", frameLatencyBuckets()),
		RingOccupancy:    r.NewHistogram("fleet_ring_occupancy_frames", "frame-ring occupancy at publish (frames)", telemetry.ExpBuckets(1, 2, 10)),
		BatchRoundSize:   r.NewHistogram("fleet_batch_round_sessions", "sessions advanced per shard batch round", batchRoundBuckets()),
	}
}

// Fleet is the sharded serving core. Open admits sessions, shard
// workers drain them; Close drains and stops the fleet.
type Fleet struct {
	cfg          Config
	m            *Metrics
	shards       []*shard
	degradeLimit int // total (full + degraded) cap when Degrade is set
	nextID       atomic.Uint64
	created      time.Time

	mu             sync.Mutex
	cond           *sync.Cond
	activeFull     int
	activeDegraded int
	closed         bool
	draining       bool

	wg sync.WaitGroup
}

// New builds and starts a fleet. It panics on a missing FrameFor or
// NewProc — the factories are static wiring, not data.
func New(cfg Config) *Fleet {
	if cfg.FrameFor == nil || cfg.NewProc == nil {
		panic("fleet: Config.FrameFor and Config.NewProc are required")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.RingFrames <= 0 {
		cfg.RingFrames = 16
	}
	if cfg.DegradeFactor <= 1 {
		cfg.DegradeFactor = 2
	}
	if cfg.EventBuffer <= 1 {
		cfg.EventBuffer = 16
	}
	m := cfg.Metrics
	if m == nil {
		m = newUnregisteredMetrics()
	}
	f := &Fleet{cfg: cfg, m: m, created: time.Now()}
	if cfg.MaxSessions > 0 {
		// Round the degraded-admission headroom up: truncation would make
		// Degrade silently inert whenever DegradeFactor*MaxSessions lands
		// on or below MaxSessions (e.g. factor 1.5 with MaxSessions 1).
		// With DegradeFactor > 1 and an integral MaxSessions the ceiling
		// always exceeds MaxSessions, so at least one degraded slot exists.
		f.degradeLimit = int(math.Ceil(cfg.DegradeFactor * float64(cfg.MaxSessions)))
	}
	f.cond = sync.NewCond(&f.mu)
	f.shards = make([]*shard, cfg.Shards)
	for i := range f.shards {
		f.shards[i] = newShard(i, f)
		f.wg.Add(1)
		go f.shards[i].run(&f.wg)
	}
	return f
}

// Shards returns the shard count.
func (f *Fleet) Shards() int { return f.cfg.Shards }

// MaxSessions returns the full-service admission cap (0: unlimited).
func (f *Fleet) MaxSessions() int {
	if f.cfg.MaxSessions <= 0 {
		return 0
	}
	return f.cfg.MaxSessions
}

// Metrics returns the fleet's instrument set.
func (f *Fleet) Metrics() *Metrics { return f.m }

// Active returns the sessions in flight by service class.
func (f *Fleet) Active() (full, degraded int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.activeFull, f.activeDegraded
}

// SetDraining flips the fleet's drain state: while draining, new
// sessions are refused with ErrDraining (including WaitAdmission
// waiters, which are woken to observe it) but in-flight sessions run to
// their final verdicts on their shards — the cluster node-leave
// protocol. SetDraining(false) resumes normal admission.
func (f *Fleet) SetDraining(v bool) {
	f.mu.Lock()
	f.draining = v
	f.cond.Broadcast()
	f.mu.Unlock()
}

// Draining reports whether the fleet is refusing new sessions while
// draining in-flight ones.
func (f *Fleet) Draining() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.draining
}

// Open admits a session at the given sample rate, assigning it a fresh
// affinity key. See OpenKeyed.
func (f *Fleet) Open(rate float64) (*Session, error) {
	return f.OpenKeyed(f.nextID.Add(1), rate)
}

// OpenKeyed admits a session routed by hash(key) — sessions sharing a
// key land on the same shard (and therefore the same goroutine, cache
// and processor free-list). It blocks under WaitAdmission backpressure,
// degrades under Degrade, and fails with ErrOverloaded or ErrClosed
// otherwise.
func (f *Fleet) OpenKeyed(key uint64, rate float64) (*Session, error) {
	frame := f.cfg.FrameFor(rate)
	if frame <= 0 {
		return nil, fmt.Errorf("fleet: FrameFor(%g) = %d, want > 0", rate, frame)
	}
	// The handoff is flagged before the slot is claimed so a forced
	// Close that observes the claimed slot also observes the pending
	// handoff (its sweep then waits for the session to land in admitq).
	sh := f.shards[shardIndex(key, len(f.shards))]
	sh.handoffs.Add(1)
	degraded, err := f.admit()
	if err != nil {
		sh.handoffs.Add(-1)
		if f.cfg.Trace != nil {
			reason := 0.0 // overloaded
			switch {
			case errors.Is(err, ErrClosed):
				reason = 1
			case errors.Is(err, ErrDraining):
				reason = 2
			}
			st := f.cfg.Trace.Rejected(key, rate, reason)
			if f.cfg.RejectSink != nil && st != nil {
				f.cfg.RejectSink.Record(st, false)
			}
		}
		return nil, err
	}

	s := &Session{
		fl:       f,
		key:      key,
		rate:     rate,
		frame:    frame,
		degraded: degraded,
		sh:       sh,
		events:   make(chan interface{}, f.cfg.EventBuffer),
	}
	s.ring.init(f.cfg.RingFrames, frame)
	// The admission event is recorded here, on the opening goroutine,
	// before the handoff publishes the session to the worker — the trace
	// stays single-writer because the worker cannot have attached yet.
	if f.cfg.Trace != nil {
		s.trace = f.cfg.Trace.Start(key, rate, sh.id, degraded, s.RingOccupancy)
	}
	sh.admitq <- s
	sh.handoffs.Add(-1)
	sh.wakeup()
	return s, nil
}

// admit applies the admission policy and claims a slot.
func (f *Fleet) admit() (degraded bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if f.closed {
			f.m.Rejected.Inc()
			return false, ErrClosed
		}
		if f.draining {
			f.m.Rejected.Inc()
			return false, ErrDraining
		}
		if f.cfg.MaxSessions <= 0 || f.activeFull < f.cfg.MaxSessions {
			f.activeFull++
			f.m.AdmittedFull.Inc()
			f.m.ActiveFull.Set(int64(f.activeFull))
			return false, nil
		}
		if f.cfg.Degrade {
			if f.activeFull+f.activeDegraded < f.degradeLimit {
				f.activeDegraded++
				f.m.AdmittedDegraded.Inc()
				f.m.ActiveDegraded.Set(int64(f.activeDegraded))
				return true, nil
			}
			f.m.Rejected.Inc()
			return false, ErrOverloaded
		}
		if !f.cfg.WaitAdmission {
			f.m.Rejected.Inc()
			return false, ErrOverloaded
		}
		f.cond.Wait()
	}
}

// release returns a session's admission slot (worker detach path).
func (f *Fleet) release(degraded bool) {
	f.mu.Lock()
	if degraded {
		f.activeDegraded--
		f.m.ActiveDegraded.Set(int64(f.activeDegraded))
	} else {
		f.activeFull--
		f.m.ActiveFull.Set(int64(f.activeFull))
	}
	f.cond.Broadcast()
	f.mu.Unlock()
}

// Close stops admitting, waits for in-flight sessions to drain, then
// stops the shard workers. If ctx expires first, remaining sessions are
// force-aborted (their producers get ErrSessionDone, their event
// channels close without a final event) and Close returns ctx.Err().
func (f *Fleet) Close(ctx context.Context) error {
	f.mu.Lock()
	f.closed = true
	f.cond.Broadcast() // unblock WaitAdmission waiters into ErrClosed
	f.mu.Unlock()

	// Drain by waiting on the admission cond-var: release() broadcasts on
	// every slot return, so the drain sleeps between session completions
	// instead of burning CPU in a poll loop. A context watcher broadcasts
	// too, bumping the wait so an expired deadline is noticed promptly.
	stopWatch := context.AfterFunc(ctx, func() {
		f.mu.Lock()
		f.cond.Broadcast()
		f.mu.Unlock()
	})
	var err error
	f.mu.Lock()
	for f.activeFull+f.activeDegraded > 0 {
		if ctx.Err() != nil {
			err = ctx.Err()
			break
		}
		f.cond.Wait()
	}
	f.mu.Unlock()
	stopWatch()

	for _, sh := range f.shards {
		sh.stopOnce.Do(func() { close(sh.stop) })
		sh.wakeup()
	}
	f.wg.Wait()
	// A session admitted concurrently with a forced stop can still be
	// mid-handoff or sitting in a shard's admit queue (Open's handoff
	// runs outside the admission lock); finish it here — the workers
	// are gone, so this goroutine is the queue's sole consumer — so its
	// producer unblocks with ErrSessionDone instead of hanging. The
	// handoff counter covers the claimed-slot-to-enqueue window.
	for _, sh := range f.shards {
		for {
			select {
			case s := <-sh.admitq:
				sh.finish(s, true)
				continue
			default:
			}
			if sh.handoffs.Load() == 0 && len(sh.admitq) == 0 {
				break
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	return err
}

// shardIndex routes an affinity key to a shard with a splitmix64-style
// finalizer so adjacent keys spread evenly.
func shardIndex(key uint64, shards int) int {
	z := key + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(shards))
}
