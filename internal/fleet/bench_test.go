package fleet

import (
	"testing"
)

// BenchmarkFleetCoreFrame measures the fleet's framework overhead per
// frame — ring transfer, wake protocol, telemetry — with a trivial
// processor, isolating the serving core from guard DSP cost. Run with
// -benchmem: the steady-state loop must report 0 allocs/op.
func BenchmarkFleetCoreFrame(b *testing.B) {
	cfg := testConfig(0)
	cfg.Shards = 1
	f := New(cfg)
	defer closeFleet(b, f)
	s, err := f.Open(48000)
	if err != nil {
		b.Fatal(err)
	}
	// Warm up the wake/backoff paths before measuring.
	for i := 0; i < 1024; i++ {
		buf, err := s.NextFrame()
		if err != nil {
			b.Fatal(err)
		}
		buf[0] = 1
		s.Publish(4)
	}
	waitDrained(b, &s.ring)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := s.NextFrame()
		if err != nil {
			b.Fatal(err)
		}
		buf[0] = 1
		s.Publish(4)
	}
	waitDrained(b, &s.ring)
	b.StopTimer()
	if final, _ := runSession(b, s, 1); final == nil {
		b.Fatalf("session lost its final")
	}
}
