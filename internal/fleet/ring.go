package fleet

import "sync/atomic"

// closeMark is the slot sample count that ends a session's frame
// stream: the producer publishes it after the last audio frame, and the
// consumer finalizes the session's processor when it dequeues it.
// Routing the end-of-stream through the ring (instead of a side flag)
// keeps it ordered behind every published frame.
const closeMark = -1

// slot is one frame cell of the ring. The producer writes samples
// directly into buf (no staging copy) and publishes n; the consumer
// reads buf[:n] and frees the cell by advancing head.
type slot struct {
	buf []float64
	n   int32
}

// frameRing is a bounded lock-free single-producer single-consumer ring
// of audio frames. The producer is the session's I/O goroutine, the
// consumer is the shard worker that owns the session — exactly one of
// each, which is what makes the head/tail protocol safe:
//
//   - tail is written only by the producer, head only by the consumer;
//   - a cell's contents are written strictly before the tail store that
//     publishes it, and read strictly before the head store that frees
//     it (Go's sync/atomic operations are sequentially consistent, so
//     the stores double as release barriers);
//   - capacity is a power of two and positions are free-running uint64
//     counters, so tail-head is the occupancy even across wraparound.
//
// The ring never allocates after construction: slot buffers are sized
// once for the session's frame and reused in place.
type frameRing struct {
	slots []slot
	mask  uint64
	_     [48]byte // keep head and tail on separate cache lines
	head  atomic.Uint64
	_     [56]byte
	tail  atomic.Uint64
	_     [56]byte
}

// RingCapacity returns the actual ring depth used for a requested
// RingFrames value: at least 2, rounded up to a power of two. Callers
// sizing companion buffers (e.g. an event channel that must absorb one
// full ring) must use this, not the raw request.
func RingCapacity(frames int) int {
	if frames < 2 {
		frames = 2
	}
	n := 1
	for n < frames {
		n <<= 1
	}
	return n
}

// initRing sizes the ring for capacity frames (rounded up to a power of
// two) of frameSamples samples each, reusing prior slot buffers when
// they are large enough.
func (r *frameRing) init(capacity, frameSamples int) {
	n := RingCapacity(capacity)
	if len(r.slots) != n {
		r.slots = make([]slot, n)
	}
	for i := range r.slots {
		if cap(r.slots[i].buf) < frameSamples {
			r.slots[i].buf = make([]float64, frameSamples)
		}
		r.slots[i].buf = r.slots[i].buf[:frameSamples]
		r.slots[i].n = 0
	}
	r.mask = uint64(n - 1)
	r.head.Store(0)
	r.tail.Store(0)
}

// capacity returns the number of frame cells.
func (r *frameRing) capacity() int { return len(r.slots) }

// occupancy returns the current number of published, unconsumed frames.
// It is exact from either endpoint's own goroutine and a consistent
// snapshot from anywhere else.
func (r *frameRing) occupancy() int { return int(r.tail.Load() - r.head.Load()) }

// reserve returns the producer's next write cell, or nil while the ring
// is full. Calling reserve repeatedly without publish returns the same
// cell. Producer-side only.
func (r *frameRing) reserve() *slot {
	t := r.tail.Load()
	if t-r.head.Load() == uint64(len(r.slots)) {
		return nil
	}
	return &r.slots[t&r.mask]
}

// publish completes the reserved cell with n samples (or closeMark) and
// makes it visible to the consumer. It reports whether the ring was
// empty immediately before — the producer uses the empty→non-empty
// transition as its wake-the-consumer hint. Producer-side only.
func (r *frameRing) publish(n int32) (wasEmpty bool) {
	t := r.tail.Load()
	r.slots[t&r.mask].n = n
	wasEmpty = t == r.head.Load()
	r.tail.Store(t + 1) // release: the cell write above precedes this
	return wasEmpty
}

// peek returns the consumer's next published cell, or nil while the
// ring is empty. The cell stays owned by the consumer until pop.
// Consumer-side only.
func (r *frameRing) peek() *slot {
	h := r.head.Load()
	if h == r.tail.Load() {
		return nil
	}
	return &r.slots[h&r.mask]
}

// pop frees the cell returned by peek. Consumer-side only.
func (r *frameRing) pop() { r.head.Store(r.head.Load() + 1) }
