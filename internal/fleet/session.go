package fleet

import (
	"runtime"
	"sync/atomic"
	"time"

	"inaudible/internal/trace"
)

// Session is the producer-side handle of one admitted session. Exactly
// one goroutine (the session's I/O loop) may drive it:
//
//	buf, err := s.NextFrame() // wait for a ring cell
//	n := fill(buf)            // read samples straight into the ring
//	s.Publish(n)
//	... drain s.Events() opportunistically ...
//	s.CloseSend()
//	for ev := range s.Events() { ... } // final event, then channel close
//
// Events carries the Proc's emitted events in order. The channel's last
// cell is reserved for the final event: finals are always delivered,
// interim events beyond the buffer are dropped and counted. The fleet
// closes Events when the session is done; after that the producer owns
// the Session again and may call nothing but Degraded/Key.
type Session struct {
	fl       *Fleet
	sh       *shard
	key      uint64
	rate     float64
	frame    int
	degraded bool

	ring   frameRing
	events chan interface{}

	// aborted asks the worker to discard the session; done marks the
	// worker finished with it (events closed). kicked is set with done
	// on force-abort so a blocked producer bails out.
	aborted atomic.Bool
	done    atomic.Bool

	closeSent bool
	closedAt  time.Time // CloseSend time, for verdict latency

	// attach-time state, owner: shard worker. batch is proc's BatchProc
	// view when it has one (nil otherwise): those sessions take the
	// two-phase stage/advance path in the shard round. colBatch is the
	// further ColumnBatcher view for procs that opt into the shard-level
	// cross-session column batch.
	proc     Proc
	batch    BatchProc
	colBatch ColumnBatcher

	// trace is the session's flight record (nil when the fleet has no
	// recorder). Written by the admitting goroutine before handoff, then
	// exclusively by the shard worker; traceHW is the worker-private
	// ring-occupancy high-water already recorded.
	trace   *trace.SessionTrace
	traceHW int
}

// Key returns the session's shard-affinity key.
func (s *Session) Key() uint64 { return s.key }

// Rate returns the session sample rate.
func (s *Session) Rate() float64 { return s.rate }

// FrameSamples returns the session's nominal frame size.
func (s *Session) FrameSamples() int { return s.frame }

// Degraded reports whether the session was admitted in degraded mode.
func (s *Session) Degraded() bool { return s.degraded }

// RingOccupancy returns the published-but-unprocessed frame count —
// the producer's view of how far ahead of its shard it is running.
func (s *Session) RingOccupancy() int { return s.ring.occupancy() }

// Trace returns the session's flight record, or nil when the fleet
// runs without a recorder.
func (s *Session) Trace() *trace.SessionTrace { return s.trace }

// Events returns the session's ordered event stream. It is closed by
// the fleet when the session finishes (after the final event) or
// aborts (without one).
func (s *Session) Events() <-chan interface{} { return s.events }

// NextFrame returns the next ring cell's sample buffer, blocking while
// the ring is full (bounded-buffer backpressure: the producer slows to
// the shard's pace instead of queueing unboundedly). Fill up to
// len(buf) samples and call Publish. It fails with ErrSessionDone if
// the fleet force-aborted the session while waiting.
func (s *Session) NextFrame() ([]float64, error) {
	for spins := 0; ; spins++ {
		if s.done.Load() {
			return nil, ErrSessionDone
		}
		if sl := s.ring.reserve(); sl != nil {
			return sl.buf, nil
		}
		if spins == 0 {
			s.fl.m.RingFullWaits.Inc()
		}
		backoff(spins)
	}
}

// Publish completes the cell returned by NextFrame with n samples
// (1 <= n <= FrameSamples) and wakes the shard if needed.
func (s *Session) Publish(n int) {
	if n <= 0 || n > s.frame {
		panic("fleet: Publish sample count outside 1..FrameSamples")
	}
	s.publish(int32(n))
	s.fl.m.RingOccupancy.Observe(float64(s.ring.occupancy()))
}

// CloseSend ends the audio stream: the worker finalizes the processor
// and delivers the final event before closing Events. Blocks like
// NextFrame while the ring is full.
func (s *Session) CloseSend() error {
	if s.closeSent {
		return nil
	}
	for spins := 0; s.ring.reserve() == nil; spins++ {
		if s.done.Load() {
			return ErrSessionDone
		}
		if spins == 0 {
			s.fl.m.RingFullWaits.Inc()
		}
		backoff(spins)
	}
	s.closeSent = true
	s.closedAt = time.Now()
	s.publish(closeMark)
	return nil
}

// Abort discards the session without a final event: the worker drops
// any queued frames, recycles the processor and closes Events. The
// producer must not touch the ring afterwards.
func (s *Session) Abort() {
	s.aborted.Store(true)
	s.sh.wakeup()
}

// publish pushes a completed cell and applies the wake protocol: wake
// on the empty→non-empty transition, or whenever the worker has
// declared itself sleeping (Dekker pairing with the worker's
// sleeping-then-rescan sequence; sequentially consistent atomics make
// "both miss each other" impossible).
func (s *Session) publish(n int32) {
	wasEmpty := s.ring.publish(n)
	if wasEmpty || s.sh.sleeping.Load() {
		s.sh.wakeup()
	}
}

// backoff yields the processor, escalating to short sleeps: the ring is
// drained by a worker that is by definition busy, so spinning hard only
// steals its cycles.
func backoff(spins int) {
	if spins < 64 {
		runtime.Gosched()
		return
	}
	time.Sleep(100 * time.Microsecond)
}
