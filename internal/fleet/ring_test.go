package fleet

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

func TestRingCapacityRounding(t *testing.T) {
	var r frameRing
	for _, tc := range []struct{ ask, want int }{
		{1, 2}, {2, 2}, {3, 4}, {5, 8}, {16, 16}, {17, 32},
	} {
		r.init(tc.ask, 4)
		if r.capacity() != tc.want {
			t.Errorf("init(%d) capacity = %d, want %d", tc.ask, r.capacity(), tc.want)
		}
	}
}

func TestRingFullEmptyBoundaries(t *testing.T) {
	var r frameRing
	r.init(4, 2)
	if r.peek() != nil {
		t.Fatalf("fresh ring not empty")
	}
	if r.occupancy() != 0 {
		t.Fatalf("fresh occupancy = %d", r.occupancy())
	}
	// Fill to capacity: every reserve succeeds, then the ring refuses.
	for i := 0; i < 4; i++ {
		sl := r.reserve()
		if sl == nil {
			t.Fatalf("reserve %d on non-full ring returned nil", i)
		}
		sl.buf[0] = float64(i)
		r.publish(1)
	}
	if r.reserve() != nil {
		t.Fatalf("reserve on full ring succeeded")
	}
	if r.occupancy() != 4 {
		t.Fatalf("full occupancy = %d, want 4", r.occupancy())
	}
	// One pop frees exactly one cell.
	if sl := r.peek(); sl == nil || sl.buf[0] != 0 {
		t.Fatalf("peek after fill: %+v", sl)
	}
	r.pop()
	if r.reserve() == nil {
		t.Fatalf("reserve after one pop failed")
	}
	r.publish(1)
	if r.reserve() != nil {
		t.Fatalf("ring should be full again")
	}
	// Drain to empty: FIFO order, then peek refuses.
	for i := 1; i < 4; i++ {
		sl := r.peek()
		if sl == nil || sl.buf[0] != float64(i) {
			t.Fatalf("drain %d: got %+v", i, sl)
		}
		r.pop()
	}
	r.pop() // the cell republished above
	if r.peek() != nil {
		t.Fatalf("drained ring not empty")
	}
}

func TestRingWraparoundFIFO(t *testing.T) {
	// Push/pop far past the 8-cell capacity with randomized batch sizes:
	// contents must come out in order with their published lengths
	// intact across every wraparound.
	var r frameRing
	r.init(8, 3)
	rng := rand.New(rand.NewSource(42))
	next, got := 0, 0
	const total = 10000
	for got < total {
		for b := rng.Intn(8); b > 0 && next < total; b-- {
			sl := r.reserve()
			if sl == nil {
				break
			}
			n := 1 + next%3
			for j := 0; j < n; j++ {
				sl.buf[j] = float64(next*3 + j)
			}
			r.publish(int32(n))
			next++
		}
		for b := rng.Intn(8); b > 0; b-- {
			sl := r.peek()
			if sl == nil {
				break
			}
			wantN := 1 + got%3
			if int(sl.n) != wantN {
				t.Fatalf("frame %d: n = %d, want %d", got, sl.n, wantN)
			}
			for j := 0; j < wantN; j++ {
				if sl.buf[j] != float64(got*3+j) {
					t.Fatalf("frame %d sample %d = %g, want %d", got, j, sl.buf[j], got*3+j)
				}
			}
			r.pop()
			got++
		}
	}
}

func TestRingSPSCConcurrent(t *testing.T) {
	// True single-producer single-consumer across goroutines, under the
	// race detector in CI: every frame arrives exactly once, in order,
	// with its contents unscrambled.
	var r frameRing
	r.init(16, 4)
	const total = 50000
	errs := make(chan error, 1)
	done := make(chan struct{})
	go func() { // consumer
		defer close(done)
		for got := 0; got < total; {
			sl := r.peek()
			if sl == nil {
				runtime.Gosched()
				continue
			}
			if int(sl.n) != 4 {
				errs <- errf("frame %d: n = %d", got, sl.n)
				return
			}
			for j := 0; j < 4; j++ {
				if sl.buf[j] != float64(got*4+j) {
					errs <- errf("frame %d sample %d = %g, want %d", got, j, sl.buf[j], got*4+j)
					return
				}
			}
			r.pop()
			got++
		}
	}()
	for sent := 0; sent < total; {
		sl := r.reserve()
		if sl == nil {
			runtime.Gosched()
			continue
		}
		for j := 0; j < 4; j++ {
			sl.buf[j] = float64(sent*4 + j)
		}
		r.publish(4)
		sent++
	}
	select {
	case err := <-errs:
		t.Fatal(err)
	case <-done:
	}
}

func TestRingPublishReportsEmptyTransition(t *testing.T) {
	var r frameRing
	r.init(4, 1)
	r.reserve()
	if !r.publish(1) {
		t.Fatalf("publish into empty ring should report wasEmpty")
	}
	r.reserve()
	if r.publish(1) {
		t.Fatalf("publish into non-empty ring reported wasEmpty")
	}
}

func errf(format string, args ...interface{}) error {
	return fmt.Errorf(format, args...)
}
