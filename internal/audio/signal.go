// Package audio defines the Signal type shared by every stage of the
// attack/defense pipeline, together with WAV file I/O, deterministic test
// signal generators and basic amplitude operations.
//
// A Signal is a mono stream of float64 samples at an explicit sample rate.
// Samples are nominally in [-1, 1] when they describe digital audio, and in
// pascals when they describe a physical sound field (the acoustics package
// documents the conversion).
package audio

import (
	"fmt"
	"math"

	"inaudible/internal/dsp"
)

// Signal is a mono sampled waveform. The zero value is an empty signal;
// most constructors come from Generate*, FromSamples, or package voice.
type Signal struct {
	Rate    float64   // sample rate in Hz
	Samples []float64 // sample values
}

// FromSamples wraps samples (not copied) at the given rate.
func FromSamples(rate float64, samples []float64) *Signal {
	if rate <= 0 {
		panic(fmt.Sprintf("audio: sample rate must be positive, got %v", rate))
	}
	return &Signal{Rate: rate, Samples: samples}
}

// New allocates a silent signal of the given duration.
func New(rate, seconds float64) *Signal {
	if rate <= 0 || seconds < 0 {
		panic(fmt.Sprintf("audio: invalid New(%v, %v)", rate, seconds))
	}
	return &Signal{Rate: rate, Samples: make([]float64, int(math.Round(rate*seconds)))}
}

// Clone returns a deep copy.
func (s *Signal) Clone() *Signal {
	out := &Signal{Rate: s.Rate, Samples: make([]float64, len(s.Samples))}
	copy(out.Samples, s.Samples)
	return out
}

// Len returns the number of samples.
func (s *Signal) Len() int { return len(s.Samples) }

// Duration returns the signal length in seconds.
func (s *Signal) Duration() float64 {
	if s.Rate == 0 {
		return 0
	}
	return float64(len(s.Samples)) / s.Rate
}

// RMS returns the root-mean-square sample value.
func (s *Signal) RMS() float64 { return dsp.RMS(s.Samples) }

// Peak returns the maximum absolute sample value.
func (s *Signal) Peak() float64 { return dsp.MaxAbs(s.Samples) }

// Power returns the mean squared sample value.
func (s *Signal) Power() float64 {
	if len(s.Samples) == 0 {
		return 0
	}
	return dsp.Energy(s.Samples) / float64(len(s.Samples))
}

// Gain scales all samples by g in place and returns s for chaining.
func (s *Signal) Gain(g float64) *Signal {
	dsp.Scale(s.Samples, g)
	return s
}

// GainDB scales all samples by db decibels (amplitude) in place.
func (s *Signal) GainDB(db float64) *Signal {
	return s.Gain(dsp.AmplitudeFromDB(db))
}

// Normalize rescales the signal in place to the given peak amplitude.
func (s *Signal) Normalize(peak float64) *Signal {
	dsp.Normalize(s.Samples, peak)
	return s
}

// NormalizeRMS rescales the signal in place to the given RMS level
// (no-op on silence).
func (s *Signal) NormalizeRMS(rms float64) *Signal {
	cur := s.RMS()
	if cur == 0 {
		return s
	}
	return s.Gain(rms / cur)
}

// MixInto adds other into s starting at the given offset in seconds,
// resampling other first if the rates differ. Samples beyond the end of s
// are dropped. Returns s.
func (s *Signal) MixInto(other *Signal, offsetSeconds float64) *Signal {
	src := other.Samples
	if other.Rate != s.Rate {
		src = dsp.Resample(other.Samples, other.Rate, s.Rate)
	}
	start := int(math.Round(offsetSeconds * s.Rate))
	for i, v := range src {
		j := start + i
		if j < 0 {
			continue
		}
		if j >= len(s.Samples) {
			break
		}
		s.Samples[j] += v
	}
	return s
}

// Mix returns a new signal that is the sum of a and b (b resampled to a's
// rate if needed), with length max(len(a), len(b')).
func Mix(a, b *Signal) *Signal {
	bs := b.Samples
	if b.Rate != a.Rate {
		bs = dsp.Resample(b.Samples, b.Rate, a.Rate)
	}
	n := len(a.Samples)
	if len(bs) > n {
		n = len(bs)
	}
	out := make([]float64, n)
	copy(out, a.Samples)
	for i, v := range bs {
		out[i] += v
	}
	return &Signal{Rate: a.Rate, Samples: out}
}

// Slice returns a view of the signal between from and to seconds
// (clamped to the valid range). The samples are shared, not copied.
func (s *Signal) Slice(from, to float64) *Signal {
	i0 := int(math.Round(from * s.Rate))
	i1 := int(math.Round(to * s.Rate))
	if i0 < 0 {
		i0 = 0
	}
	if i1 > len(s.Samples) {
		i1 = len(s.Samples)
	}
	if i1 < i0 {
		i1 = i0
	}
	return &Signal{Rate: s.Rate, Samples: s.Samples[i0:i1]}
}

// Resampled returns a copy of the signal converted to the target rate.
func (s *Signal) Resampled(rate float64) *Signal {
	return &Signal{Rate: rate, Samples: dsp.Resample(s.Samples, s.Rate, rate)}
}

// PadTo extends the signal with trailing silence to at least seconds long.
func (s *Signal) PadTo(seconds float64) *Signal {
	want := int(math.Round(seconds * s.Rate))
	for len(s.Samples) < want {
		s.Samples = append(s.Samples, 0)
	}
	return s
}

// Clip hard-limits all samples into [-limit, limit] in place.
func (s *Signal) Clip(limit float64) *Signal {
	for i, v := range s.Samples {
		s.Samples[i] = dsp.Clamp(v, -limit, limit)
	}
	return s
}

// String implements fmt.Stringer with a compact summary.
func (s *Signal) String() string {
	return fmt.Sprintf("Signal(%.0f Hz, %d samples, %.3f s, peak %.3g)",
		s.Rate, len(s.Samples), s.Duration(), s.Peak())
}
