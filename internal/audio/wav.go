package audio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// WAV I/O for mono 16-bit PCM files — enough to exchange attack waveforms
// and recordings with external tools. Samples are mapped between float64
// [-1, 1] and int16 full scale.

var (
	// ErrWAVFormat is returned when a file is not a mono 16-bit PCM WAV.
	ErrWAVFormat = errors.New("audio: unsupported WAV format (need mono 16-bit PCM)")
)

// maxFmtChunkBytes bounds the fmt chunk a header may claim; anything
// larger is malformed (the spec needs at most 40 bytes).
const maxFmtChunkBytes = 1 << 16

// readWAVPrealloc caps the up-front sample allocation ReadWAV makes from
// the header's (attacker-controlled) data-chunk size; longer streams
// grow as bytes actually arrive.
const readWAVPrealloc = 1 << 20

// WriteWAV encodes the signal as a mono 16-bit PCM WAV stream. Samples are
// clipped to [-1, 1].
func WriteWAV(w io.Writer, s *Signal) error {
	n := len(s.Samples)
	dataLen := uint32(2 * n)
	rate := uint32(math.Round(s.Rate))

	var hdr [44]byte
	copy(hdr[0:4], "RIFF")
	binary.LittleEndian.PutUint32(hdr[4:8], 36+dataLen)
	copy(hdr[8:12], "WAVE")
	copy(hdr[12:16], "fmt ")
	binary.LittleEndian.PutUint32(hdr[16:20], 16)     // fmt chunk size
	binary.LittleEndian.PutUint16(hdr[20:22], 1)      // PCM
	binary.LittleEndian.PutUint16(hdr[22:24], 1)      // mono
	binary.LittleEndian.PutUint32(hdr[24:28], rate)   // sample rate
	binary.LittleEndian.PutUint32(hdr[28:32], 2*rate) // byte rate
	binary.LittleEndian.PutUint16(hdr[32:34], 2)      // block align
	binary.LittleEndian.PutUint16(hdr[34:36], 16)     // bits/sample
	copy(hdr[36:40], "data")
	binary.LittleEndian.PutUint32(hdr[40:44], dataLen)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("audio: writing WAV header: %w", err)
	}

	buf := make([]byte, 2*n)
	for i, v := range s.Samples {
		if v > 1 {
			v = 1
		} else if v < -1 {
			v = -1
		}
		binary.LittleEndian.PutUint16(buf[2*i:], uint16(int16(math.Round(v*32767))))
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("audio: writing WAV data: %w", err)
	}
	return nil
}

// WriteWAVFile writes the signal to path as a mono 16-bit PCM WAV file.
func WriteWAVFile(path string, s *Signal) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("audio: creating %s: %w", path, err)
	}
	defer f.Close()
	if err := WriteWAV(f, s); err != nil {
		return err
	}
	return f.Close()
}

// WAVReader decodes a mono 16-bit PCM WAV stream incrementally: the
// header is parsed up to the data chunk at construction, then Read
// hands out decoded samples frame by frame without ever buffering the
// file — the decoder for streaming consumers (cmd/guardd, cmd/defend)
// whose sessions may be arbitrarily long.
type WAVReader struct {
	r         io.Reader
	rate      float64
	remaining int // bytes left in the data chunk
	buf       []byte
}

// NewWAVReader parses the RIFF/fmt headers from r and positions the
// reader at the first sample. It fails with ErrWAVFormat unless the
// stream is a mono 16-bit PCM WAV.
func NewWAVReader(r io.Reader) (*WAVReader, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("audio: reading RIFF header: %w", err)
	}
	if string(hdr[0:4]) != "RIFF" || string(hdr[8:12]) != "WAVE" {
		return nil, ErrWAVFormat
	}
	var (
		rate     uint32
		channels uint16
		bits     uint16
		gotFmt   bool
	)
	for {
		var chunk [8]byte
		if _, err := io.ReadFull(r, chunk[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil, fmt.Errorf("audio: no data chunk: %w", ErrWAVFormat)
			}
			return nil, fmt.Errorf("audio: reading chunk header: %w", err)
		}
		id := string(chunk[0:4])
		size := binary.LittleEndian.Uint32(chunk[4:8])
		switch id {
		case "fmt ":
			// A spec-conforming fmt chunk is 16-40 bytes; a multi-megabyte
			// claim is a malformed (or hostile) header, not a format we
			// support — reject instead of allocating whatever it asks for.
			if size > maxFmtChunkBytes {
				return nil, fmt.Errorf("audio: fmt chunk claims %d bytes: %w", size, ErrWAVFormat)
			}
			body := make([]byte, size)
			if _, err := io.ReadFull(r, body); err != nil {
				return nil, fmt.Errorf("audio: reading fmt chunk: %w", err)
			}
			if len(body) < 16 {
				return nil, ErrWAVFormat
			}
			format := binary.LittleEndian.Uint16(body[0:2])
			channels = binary.LittleEndian.Uint16(body[2:4])
			rate = binary.LittleEndian.Uint32(body[4:8])
			bits = binary.LittleEndian.Uint16(body[14:16])
			if format != 1 {
				return nil, ErrWAVFormat
			}
			gotFmt = true
		case "data":
			if !gotFmt {
				return nil, ErrWAVFormat
			}
			if channels != 1 || bits != 16 {
				return nil, ErrWAVFormat
			}
			return &WAVReader{r: r, rate: float64(rate), remaining: int(size)}, nil
		default:
			// Skip unknown chunks (LIST, fact, ...).
			if _, err := io.CopyN(io.Discard, r, int64(size)); err != nil {
				return nil, fmt.Errorf("audio: skipping %q chunk: %w", id, err)
			}
		}
	}
}

// Rate returns the stream's sample rate in Hz.
func (w *WAVReader) Rate() float64 { return w.rate }

// Remaining returns the number of samples left in the data chunk.
func (w *WAVReader) Remaining() int { return w.remaining / 2 }

// Read decodes up to len(dst) samples into dst and returns the count.
// At the end of the data chunk it returns 0, io.EOF. A truncated data
// chunk yields io.ErrUnexpectedEOF.
func (w *WAVReader) Read(dst []float64) (int, error) {
	if w.remaining == 0 {
		return 0, io.EOF
	}
	want := len(dst) * 2
	if want > w.remaining {
		want = w.remaining
	}
	if want == 0 {
		return 0, nil
	}
	if cap(w.buf) < want {
		w.buf = make([]byte, want)
	}
	buf := w.buf[:want]
	if _, err := io.ReadFull(w.r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, fmt.Errorf("audio: reading WAV samples: %w", err)
	}
	w.remaining -= want
	n := want / 2
	for i := 0; i < n; i++ {
		dst[i] = float64(int16(binary.LittleEndian.Uint16(buf[2*i:]))) / 32767
	}
	return n, nil
}

// ReadWAV decodes a mono 16-bit PCM WAV stream, buffering it whole.
// Streaming consumers should use NewWAVReader instead. The buffer grows
// with the bytes that actually arrive, so a header claiming a huge data
// chunk cannot force a matching allocation.
func ReadWAV(r io.Reader) (*Signal, error) {
	wr, err := NewWAVReader(r)
	if err != nil {
		return nil, err
	}
	prealloc := wr.Remaining()
	if prealloc > readWAVPrealloc {
		prealloc = readWAVPrealloc
	}
	samples := make([]float64, 0, prealloc)
	buf := make([]float64, 32*1024)
	for {
		n, err := wr.Read(buf)
		samples = append(samples, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("audio: reading data chunk: %w", err)
		}
	}
	return &Signal{Rate: wr.rate, Samples: samples}, nil
}

// ReadWAVFile reads a mono 16-bit PCM WAV file from path.
func ReadWAVFile(path string) (*Signal, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("audio: opening %s: %w", path, err)
	}
	defer f.Close()
	return ReadWAV(f)
}
