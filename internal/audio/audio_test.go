package audio

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"inaudible/internal/dsp"
)

func TestNewAndDuration(t *testing.T) {
	s := New(48000, 1.5)
	if s.Len() != 72000 {
		t.Fatalf("Len=%d", s.Len())
	}
	if math.Abs(s.Duration()-1.5) > 1e-12 {
		t.Fatalf("Duration=%v", s.Duration())
	}
}

func TestFromSamplesPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSamples(0, nil)
}

func TestToneProperties(t *testing.T) {
	s := Tone(48000, 1000, 0.5, 1)
	if math.Abs(s.Peak()-0.5) > 1e-6 {
		t.Errorf("peak %v", s.Peak())
	}
	want := 0.5 / math.Sqrt2
	if math.Abs(s.RMS()-want)/want > 1e-3 {
		t.Errorf("rms %v want %v", s.RMS(), want)
	}
	if got := dsp.ToneAmplitude(s.Samples, 1000, 48000); math.Abs(got-0.5) > 0.01 {
		t.Errorf("tone amplitude %v", got)
	}
}

func TestMultiToneFrequencies(t *testing.T) {
	// The paper's two-tone probe: 25 kHz + 30 kHz at 192 kHz rate.
	s := MultiTone(192000, 1, 0.5, 25000, 30000)
	a1 := dsp.ToneAmplitude(s.Samples, 25000, 192000)
	a2 := dsp.ToneAmplitude(s.Samples, 30000, 192000)
	if a1 < 0.3 || a2 < 0.3 {
		t.Fatalf("tones missing: %v %v", a1, a2)
	}
	if s.Peak() > 1+1e-9 {
		t.Fatalf("peak %v > 1", s.Peak())
	}
}

func TestChirpSweeps(t *testing.T) {
	s := Chirp(48000, 100, 10000, 1, 2)
	// Early window should be low frequency, late window high.
	early := s.Slice(0.1, 0.3)
	late := s.Slice(1.7, 1.9)
	fEarly := dominantFreq(early)
	fLate := dominantFreq(late)
	if fEarly > 3000 || fLate < 7000 {
		t.Fatalf("chirp endpoints: early %v Hz late %v Hz", fEarly, fLate)
	}
}

func dominantFreq(s *Signal) float64 {
	n := dsp.NextPowerOfTwo(s.Len())
	buf := make([]complex128, n)
	for i, v := range s.Samples {
		buf[i] = complex(v, 0)
	}
	dsp.FFT(buf)
	best, bestK := 0.0, 0
	for k := 1; k < n/2; k++ {
		p := real(buf[k])*real(buf[k]) + imag(buf[k])*imag(buf[k])
		if p > best {
			best, bestK = p, k
		}
	}
	return dsp.BinFrequency(bestK, n, s.Rate)
}

func TestWhiteNoiseRMS(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := WhiteNoise(rng, 48000, 0.1, 2)
	if math.Abs(s.RMS()-0.1)/0.1 > 0.05 {
		t.Fatalf("white noise RMS %v", s.RMS())
	}
}

func TestPinkNoiseSpectralTilt(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := PinkNoise(rng, 48000, 0.1, 4)
	psd := dsp.Welch(s.Samples, 4096)
	low := dsp.BandPower(psd, 48000, 4096, 100, 500)
	high := dsp.BandPower(psd, 48000, 4096, 8000, 8400)
	if low <= high {
		t.Fatalf("pink noise should tilt down: low=%v high=%v", low, high)
	}
}

func TestGainAndNormalize(t *testing.T) {
	s := Tone(8000, 100, 0.5, 0.5)
	s.Gain(2)
	if math.Abs(s.Peak()-1) > 1e-6 {
		t.Errorf("after gain peak %v", s.Peak())
	}
	s.Normalize(0.25)
	if math.Abs(s.Peak()-0.25) > 1e-9 {
		t.Errorf("after normalize peak %v", s.Peak())
	}
	s.GainDB(20)
	if math.Abs(s.Peak()-2.5) > 1e-9 {
		t.Errorf("after +20 dB peak %v", s.Peak())
	}
	s.NormalizeRMS(0.1)
	if math.Abs(s.RMS()-0.1) > 1e-9 {
		t.Errorf("after NormalizeRMS rms %v", s.RMS())
	}
}

func TestMixAndMixInto(t *testing.T) {
	a := Tone(48000, 100, 0.25, 1)
	b := Tone(48000, 200, 0.25, 0.5)
	m := Mix(a, b)
	if m.Len() != a.Len() {
		t.Fatalf("mix length %d", m.Len())
	}
	if m.Samples[0] != a.Samples[0]+b.Samples[0] {
		t.Fatal("mix sample mismatch")
	}

	c := New(48000, 1)
	c.MixInto(b, 0.25)
	// Sample just before the offset must be zero; at the offset non-trivial.
	if c.Samples[11999] != 0 {
		t.Fatal("MixInto wrote before offset")
	}
	seg := c.Slice(0.3, 0.6)
	if seg.RMS() == 0 {
		t.Fatal("MixInto wrote nothing")
	}
}

func TestMixResamples(t *testing.T) {
	a := Tone(48000, 1000, 0.5, 0.5)
	b := Tone(44100, 1000, 0.5, 0.5)
	m := Mix(a, b)
	if m.Rate != 48000 {
		t.Fatalf("rate %v", m.Rate)
	}
	// Two coherent-ish tones: amplitude roughly doubles somewhere.
	if m.Peak() < 0.7 {
		t.Fatalf("mix peak %v", m.Peak())
	}
}

func TestSliceClampsAndShares(t *testing.T) {
	s := Tone(1000, 10, 1, 1)
	v := s.Slice(-5, 99)
	if v.Len() != s.Len() {
		t.Fatalf("clamped slice length %d", v.Len())
	}
	v.Samples[0] = 42
	if s.Samples[0] != 42 {
		t.Fatal("Slice must share storage")
	}
	empty := s.Slice(0.9, 0.1)
	if empty.Len() != 0 {
		t.Fatal("inverted slice should be empty")
	}
}

func TestPadToAndClip(t *testing.T) {
	s := Tone(1000, 10, 2, 0.5)
	s.PadTo(1)
	if s.Len() != 1000 {
		t.Fatalf("pad length %d", s.Len())
	}
	if s.Samples[999] != 0 {
		t.Fatal("padding must be silence")
	}
	s.Clip(1)
	if s.Peak() > 1 {
		t.Fatalf("clip failed, peak %v", s.Peak())
	}
}

func TestResampled(t *testing.T) {
	s := Tone(48000, 4000, 1, 0.5)
	r := s.Resampled(192000)
	if r.Rate != 192000 || r.Len() != 4*s.Len() {
		t.Fatalf("resampled %v", r)
	}
}

func TestWAVRoundTrip(t *testing.T) {
	s := Tone(48000, 440, 0.8, 0.25)
	var buf bytes.Buffer
	if err := WriteWAV(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadWAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rate != 48000 || back.Len() != s.Len() {
		t.Fatalf("round trip shape: %v", back)
	}
	for i := range s.Samples {
		if math.Abs(back.Samples[i]-s.Samples[i]) > 1.0/32000 {
			t.Fatalf("sample %d: %v vs %v", i, back.Samples[i], s.Samples[i])
		}
	}
}

func TestWAVFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tone.wav")
	s := Chirp(44100, 100, 5000, 0.9, 0.2)
	if err := WriteWAVFile(path, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadWAVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rate != 44100 || back.Len() != s.Len() {
		t.Fatalf("file round trip: %v", back)
	}
}

func TestReadWAVRejectsGarbage(t *testing.T) {
	if _, err := ReadWAV(bytes.NewReader([]byte("not a wav file at all......"))); err == nil {
		t.Fatal("expected error")
	}
}

func TestWAVClipsOutOfRange(t *testing.T) {
	s := FromSamples(8000, []float64{2, -2, 0.5})
	var buf bytes.Buffer
	if err := WriteWAV(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadWAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Samples[0] < 0.99 || back.Samples[1] > -0.99 {
		t.Fatalf("clipping failed: %v", back.Samples)
	}
}

func TestWAVRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + int(rng.Int31n(400))
		s := New(16000, float64(n)/16000)
		for i := range s.Samples {
			s.Samples[i] = rng.Float64()*2 - 1
		}
		var buf bytes.Buffer
		if err := WriteWAV(&buf, s); err != nil {
			return false
		}
		back, err := ReadWAV(&buf)
		if err != nil || back.Len() != s.Len() {
			return false
		}
		for i := range s.Samples {
			if math.Abs(back.Samples[i]-s.Samples[i]) > 1.0/16000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAMSignalSidebands(t *testing.T) {
	// AM of a 2 kHz tone on a 30 kHz carrier puts sidebands at 28/32 kHz.
	base := Tone(192000, 2000, 1, 0.5)
	am := AMSignal(base, 30000, 0.8)
	carrier := dsp.ToneAmplitude(am.Samples, 30000, 192000)
	lower := dsp.ToneAmplitude(am.Samples, 28000, 192000)
	upper := dsp.ToneAmplitude(am.Samples, 32000, 192000)
	if carrier < 0.4 {
		t.Fatalf("carrier amplitude %v", carrier)
	}
	if lower < 0.1 || upper < 0.1 {
		t.Fatalf("sidebands %v %v", lower, upper)
	}
	// Baseband must be absent before demodulation.
	if base2 := dsp.ToneAmplitude(am.Samples, 2000, 192000); base2 > 0.01 {
		t.Fatalf("baseband leaked into AM signal: %v", base2)
	}
}

func TestSignalString(t *testing.T) {
	s := Tone(48000, 440, 1, 0.1)
	if str := s.String(); len(str) == 0 {
		t.Fatal("empty String()")
	}
}
