package audio

import (
	"bytes"
	"io"
	"math"
	"testing"
)

func TestWAVReaderMatchesReadWAV(t *testing.T) {
	sig := Tone(48000, 440, 0.8, 0.25)
	var buf bytes.Buffer
	if err := WriteWAV(&buf, sig); err != nil {
		t.Fatal(err)
	}
	encoded := buf.Bytes()

	whole, err := ReadWAV(bytes.NewReader(encoded))
	if err != nil {
		t.Fatal(err)
	}
	wr, err := NewWAVReader(bytes.NewReader(encoded))
	if err != nil {
		t.Fatal(err)
	}
	if wr.Rate() != whole.Rate {
		t.Fatalf("Rate = %v, want %v", wr.Rate(), whole.Rate)
	}
	if wr.Remaining() != whole.Len() {
		t.Fatalf("Remaining = %d, want %d", wr.Remaining(), whole.Len())
	}
	var streamed []float64
	frame := make([]float64, 960)
	for {
		n, err := wr.Read(frame)
		streamed = append(streamed, frame[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(streamed) != whole.Len() {
		t.Fatalf("streamed %d samples, want %d", len(streamed), whole.Len())
	}
	for i := range streamed {
		if streamed[i] != whole.Samples[i] {
			t.Fatalf("sample %d: streamed %v != buffered %v", i, streamed[i], whole.Samples[i])
		}
	}
	if n, err := wr.Read(frame); n != 0 || err != io.EOF {
		t.Fatalf("read past EOF: n=%d err=%v", n, err)
	}
}

func TestWAVReaderOddFrameSizes(t *testing.T) {
	sig := Tone(44100, 1000, 0.5, 0.1)
	var buf bytes.Buffer
	if err := WriteWAV(&buf, sig); err != nil {
		t.Fatal(err)
	}
	wr, err := NewWAVReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var total int
	frame := make([]float64, 17)
	for {
		n, err := wr.Read(frame)
		total += n
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if total != sig.Len() {
		t.Fatalf("read %d samples, want %d", total, sig.Len())
	}
}

func TestWAVReaderTruncatedData(t *testing.T) {
	sig := Tone(48000, 440, 0.8, 0.1)
	var buf bytes.Buffer
	if err := WriteWAV(&buf, sig); err != nil {
		t.Fatal(err)
	}
	encoded := buf.Bytes()
	wr, err := NewWAVReader(bytes.NewReader(encoded[:len(encoded)-100]))
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]float64, 4096)
	for {
		_, err := wr.Read(frame)
		if err != nil {
			if err == io.EOF {
				t.Fatalf("truncated stream ended with clean EOF")
			}
			return // expected decode error
		}
	}
}

func TestWAVReaderRejectsNonWAV(t *testing.T) {
	if _, err := NewWAVReader(bytes.NewReader([]byte("not a riff stream at all"))); err == nil {
		t.Fatalf("expected an error for non-WAV input")
	}
}

func TestWAVRoundTripAmplitude(t *testing.T) {
	// Guard the int16 quantisation path of the streaming reader.
	sig := Tone(48000, 100, 1.0, 0.05)
	var buf bytes.Buffer
	if err := WriteWAV(&buf, sig); err != nil {
		t.Fatal(err)
	}
	wr, err := NewWAVReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, wr.Remaining())
	if _, err := wr.Read(out); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	var worst float64
	for i := range out {
		if d := math.Abs(out[i] - sig.Samples[i]); d > worst {
			worst = d
		}
	}
	if worst > 1.0/32000 {
		t.Fatalf("quantisation error %g exceeds one LSB", worst)
	}
}
