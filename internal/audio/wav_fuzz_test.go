package audio

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// FuzzWAVReader drives the streaming WAV decoder with arbitrary bytes:
// malformed RIFF/fmt headers, hostile chunk sizes, truncated data chunks.
// The decoder must return an error or decode cleanly — never panic and
// never allocate in proportion to attacker-claimed (rather than actually
// present) sizes. ReadWAV is exercised on the same input for its
// whole-buffer path.
func FuzzWAVReader(f *testing.F) {
	// A valid little file.
	var valid bytes.Buffer
	if err := WriteWAV(&valid, Tone(8000, 440, 0.5, 0.01)); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	// Truncated header.
	f.Add(valid.Bytes()[:20])
	// Truncated data chunk.
	f.Add(valid.Bytes()[:60])
	// Data chunk claiming far more than the stream holds.
	huge := append([]byte(nil), valid.Bytes()...)
	binary.LittleEndian.PutUint32(huge[40:44], 0xFFFFFFF0)
	f.Add(huge)
	// fmt chunk claiming a giant body.
	bigFmt := append([]byte(nil), valid.Bytes()...)
	binary.LittleEndian.PutUint32(bigFmt[16:20], 0xFFFFFFF0)
	f.Add(bigFmt)
	// Unknown chunk with giant size between fmt and data.
	f.Add([]byte("RIFF\x24\x00\x00\x00WAVEjunk\xff\xff\xff\xff"))
	// Odd data size.
	odd := append([]byte(nil), valid.Bytes()...)
	binary.LittleEndian.PutUint32(odd[40:44], 3)
	f.Add(odd)

	f.Fuzz(func(t *testing.T, data []byte) {
		wr, err := NewWAVReader(bytes.NewReader(data))
		if err == nil {
			if wr.Rate() < 0 {
				t.Fatalf("negative rate %v", wr.Rate())
			}
			buf := make([]float64, 1024)
			total := 0
			for total < 1<<22 {
				n, err := wr.Read(buf)
				total += n
				if err != nil {
					if err != io.EOF && n != 0 {
						t.Fatalf("Read returned samples alongside error %v", err)
					}
					break
				}
				if n == 0 && wr.Remaining() > 0 {
					// Odd trailing byte: one more Read must hit EOF.
					continue
				}
				if n == 0 {
					break
				}
			}
		}
		// The whole-buffer decoder must be equally robust.
		if sig, err := ReadWAV(bytes.NewReader(data)); err == nil {
			if sig.Rate < 0 {
				t.Fatalf("ReadWAV negative rate %v", sig.Rate)
			}
			if len(sig.Samples) > len(data) {
				t.Fatalf("decoded %d samples from %d bytes", len(sig.Samples), len(data))
			}
		}
	})
}
