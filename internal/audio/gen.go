package audio

import (
	"math"
	"math/rand"
)

// Tone generates amplitude*sin(2*pi*freq*t + phase) for the given duration.
func Tone(rate, freq, amplitude, seconds float64) *Signal {
	s := New(rate, seconds)
	w := 2 * math.Pi * freq / rate
	for i := range s.Samples {
		s.Samples[i] = amplitude * math.Sin(w*float64(i))
	}
	return s
}

// ToneAt generates a cosine with an explicit starting phase; used to build
// carriers whose phase must line up across array elements.
func ToneAt(rate, freq, amplitude, phase, seconds float64) *Signal {
	s := New(rate, seconds)
	w := 2 * math.Pi * freq / rate
	for i := range s.Samples {
		s.Samples[i] = amplitude * math.Cos(w*float64(i)+phase)
	}
	return s
}

// MultiTone sums equal-amplitude sinusoids at the given frequencies; the
// peak is normalised to amplitude. The classic two-tone intermodulation
// probe (paper Eq. 2) is MultiTone(rate, amp, secs, f1, f2).
func MultiTone(rate, amplitude, seconds float64, freqs ...float64) *Signal {
	s := New(rate, seconds)
	for _, f := range freqs {
		w := 2 * math.Pi * f / rate
		for i := range s.Samples {
			s.Samples[i] += math.Sin(w * float64(i))
		}
	}
	s.Normalize(amplitude)
	return s
}

// Chirp generates a linear frequency sweep from f0 to f1 Hz over the
// duration, with the given amplitude.
func Chirp(rate, f0, f1, amplitude, seconds float64) *Signal {
	s := New(rate, seconds)
	n := len(s.Samples)
	if n == 0 {
		return s
	}
	k := (f1 - f0) / seconds
	for i := range s.Samples {
		t := float64(i) / rate
		phase := 2 * math.Pi * (f0*t + k*t*t/2)
		s.Samples[i] = amplitude * math.Sin(phase)
	}
	return s
}

// WhiteNoise generates Gaussian white noise with the given RMS level using
// the supplied RNG (deterministic experiments must pass a seeded source).
func WhiteNoise(rng *rand.Rand, rate, rms, seconds float64) *Signal {
	s := New(rate, seconds)
	for i := range s.Samples {
		s.Samples[i] = rng.NormFloat64() * rms
	}
	return s
}

// PinkNoise generates approximately 1/f noise with the given RMS using the
// Voss–McCartney style filter cascade (Paul Kellet's economy coefficients).
// Ambient room noise in the simulator is pink: it concentrates energy at
// low frequencies like real rooms do, which stresses the defense's
// low-band features.
func PinkNoise(rng *rand.Rand, rate, rms, seconds float64) *Signal {
	s := New(rate, seconds)
	var b0, b1, b2, b3, b4, b5, b6 float64
	for i := range s.Samples {
		white := rng.NormFloat64()
		b0 = 0.99886*b0 + white*0.0555179
		b1 = 0.99332*b1 + white*0.0750759
		b2 = 0.96900*b2 + white*0.1538520
		b3 = 0.86650*b3 + white*0.3104856
		b4 = 0.55000*b4 + white*0.5329522
		b5 = -0.7616*b5 - white*0.0168980
		pink := b0 + b1 + b2 + b3 + b4 + b5 + b6 + white*0.5362
		b6 = white * 0.115926
		s.Samples[i] = pink
	}
	s.NormalizeRMS(rms)
	return s
}

// Silence generates a zero signal of the given duration.
func Silence(rate, seconds float64) *Signal { return New(rate, seconds) }

// AMSignal amplitude-modulates baseband onto a carrier at fc with
// modulation depth m: out(t) = (1 + m*base(t)) * cos(2*pi*fc*t), scaled so
// the peak is <= 1. The baseband is assumed normalised to peak 1.
func AMSignal(base *Signal, fc, m float64) *Signal {
	out := New(base.Rate, base.Duration())
	w := 2 * math.Pi * fc / base.Rate
	for i := range out.Samples {
		out.Samples[i] = (1 + m*base.Samples[i]) * math.Cos(w*float64(i))
	}
	out.Normalize(1)
	return out
}
