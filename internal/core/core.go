// Package core is the end-to-end engine behind every experiment: it wires
// the attack planners (internal/attack) through the emitting hardware
// (internal/speaker), the air (internal/acoustics) and the victim device
// (internal/mic), and hands the resulting recording to the recogniser
// (internal/asr) and the defense (internal/defense).
//
// The flow mirrors the paper's test rig:
//
//	command -> attack waveform(s) -> speaker/array -> room -> mic -> ASR
//	                                      |                    |
//	                                  bystander             defense
//	                                 audibility             features
package core

import (
	"fmt"
	"math/rand"

	"inaudible/internal/acoustics"
	"inaudible/internal/attack"
	"inaudible/internal/audio"
	"inaudible/internal/dsp"
	"inaudible/internal/mic"
	"inaudible/internal/psycho"
	"inaudible/internal/sim"
	"inaudible/internal/speaker"
)

// Scenario fixes the environment of a set of runs: the victim device, the
// atmosphere, ambient noise, and where the nearest human bystander stands
// (leakage is judged at that position).
//
// A Scenario is read-only during delivery: Deliver, Simulate and the
// Emit* methods never mutate the receiver, and every trial draws its
// randomness from a private generator seeded by TrialSeed. Concurrent
// trials against one Scenario are therefore safe and bit-for-bit
// reproducible regardless of scheduling — the property the parallel
// runner in internal/experiment is built on. Use Clone before mutating
// fields (Device, AmbientSPL, ...) for a variant that runs concurrently
// with the original.
type Scenario struct {
	Device *mic.Device
	Air    acoustics.Air
	// AmbientSPL is the room's pink-noise level in dB SPL (quiet office
	// ~40 dB). Zero disables ambient noise.
	AmbientSPL float64
	// BystanderDistance is how far the nearest human is from the
	// attacker's rig, in metres.
	BystanderDistance float64
	// Seed makes all randomness (ambient noise, mic self-noise)
	// reproducible; trial indices derive sub-seeds from it.
	Seed int64
}

// DefaultScenario returns the paper's meeting-room setup against an
// Android phone: quiet room, bystander 1.5 m from the rig.
func DefaultScenario() *Scenario {
	return &Scenario{
		Device:            mic.AndroidPhone(),
		Air:               acoustics.DefaultAir(),
		AmbientSPL:        40,
		BystanderDistance: 1.5,
		Seed:              1,
	}
}

// Clone returns a shallow copy of the scenario for per-worker
// customisation. The embedded Device and Air are shared — they are
// read-only during delivery — so mutating the copy's scalar fields
// (Device pointer, AmbientSPL, Seed, ...) never disturbs trials running
// against the original.
func (s *Scenario) Clone() *Scenario {
	c := *s
	return &c
}

// TrialSeed derives the deterministic sub-seed feeding all randomness
// (ambient noise, mic self-noise) of one trial. The multiplier spreads
// scenario seeds far apart so trial indices of different scenarios never
// collide; every consumer of per-trial randomness must go through this
// single derivation so serial and parallel runs agree bit for bit.
func (s *Scenario) TrialSeed(trial int64) int64 {
	return s.Seed*1_000_003 + trial
}

// Emission is a cached attacker output: the combined 1 m reference
// pressure field of every driven element, plus the audibility verdict a
// bystander would reach. Building an Emission is expensive (per-element
// speaker physics); delivering it to different distances/trials is cheap.
type Emission struct {
	// Field is the summed 1 m-reference pressure waveform (pascals).
	Field *audio.Signal
	// TotalPowerW is the electrical power across all elements.
	TotalPowerW float64
	// Elements is the number of driven speakers.
	Elements int
	// LeakageSPL is the A-weighted audible-band SPL a bystander at
	// BystanderDistance hears from the rig.
	LeakageSPL float64
	// LeakageAudible and LeakageMargin report the threshold-of-hearing
	// test at the bystander position.
	LeakageAudible bool
	LeakageMargin  float64
}

// EmitBaseline renders the single-speaker attack: the full AM waveform
// driven into one tweeter at powerW, run through the speaker's exact
// emission chain (bit-identical to sp.Emit).
func (s *Scenario) EmitBaseline(cmd *audio.Signal, powerW float64, o attack.BaselineOptions, sp *speaker.Speaker) (*Emission, error) {
	drive, err := attack.Baseline(cmd, o)
	if err != nil {
		return nil, err
	}
	field := emitOne(sp, drive, powerW, sim.Exact, sim.Options{})
	return s.finishEmission(field, powerW, 1), nil
}

// EmitLongRange renders the multi-speaker attack: every spectrum slice on
// its own element (built from proto) plus the dedicated carrier element.
// Element placement uses the colocated-array approximation: the grid
// pitch (centimetres) is negligible against attack distances (metres), so
// per-element fields are summed at the 1 m reference before propagation.
// Per-element *physics* — each speaker's own non-linearity acting on its
// narrowband drive — is fully retained.
func (s *Scenario) EmitLongRange(cmd *audio.Signal, totalPowerW float64, o attack.LongRangeOptions, proto func() *speaker.Speaker) (*Emission, error) {
	plan, err := attack.LongRange(cmd, totalPowerW, o)
	if err != nil {
		return nil, err
	}
	// The carrier holds most of the plan's power — far more than one small
	// element's rating, so ElementDrives spreads it over as many dedicated
	// carrier elements as needed; each still plays a single pure tone, so
	// per-element intermodulation stays zero. This is why the paper's rig
	// is a *dense array*: most of its 61 transducers carry the carrier.
	// Each element runs its own exact emission chain; elements are summed
	// sequentially so peak memory stays at one element's field.
	var field *audio.Signal
	drives := plan.ElementDrives(proto().MaxPowerW)
	for _, ed := range drives {
		em := emitOne(proto(), ed.Drive, ed.PowerW, sim.Exact, sim.Options{})
		if field == nil {
			field = em
			continue
		}
		dsp.Add(field.Samples, em.Samples)
	}
	if field == nil {
		return nil, fmt.Errorf("core: long-range plan drove no elements")
	}
	return s.finishEmission(field, plan.TotalPowerW(), len(drives)), nil
}

// EmitVoice renders a legitimate talker: the voice waveform scaled to
// splAt1m (dB SPL at the 1 m reference) with no ultrasound involved.
func (s *Scenario) EmitVoice(cmd *audio.Signal, splAt1m float64) *Emission {
	field := cmd.Clone()
	field.NormalizeRMS(acoustics.PressureFromSPL(splAt1m))
	return s.finishEmission(field, 0, 0)
}

func (s *Scenario) finishEmission(field *audio.Signal, powerW float64, elements int) *Emission {
	e := &Emission{Field: field, TotalPowerW: powerW, Elements: elements}
	by := acoustics.Path{Distance: s.BystanderDistance, Air: s.Air}
	e.LeakageSPL, e.LeakageAudible, e.LeakageMargin = leakageOf(by.Propagate(field))
	return e
}

// leakageOf scores a pressure waveform at a listener position: A-weighted
// audible-band SPL plus the threshold-of-hearing verdict.
func leakageOf(at *audio.Signal) (spl float64, audible bool, margin float64) {
	spl = psycho.LeakageSPL(at)
	a := psycho.AnalyzeAudibility(at)
	return spl, a.Audible(), a.MaxMargin
}

// RunResult is one delivery of an emission to the victim.
type RunResult struct {
	// Recording is the digital signal the voice assistant receives.
	Recording *audio.Signal
	// SPLAtDevice is the total sound level reaching the microphone.
	SPLAtDevice float64
	// Distance echoes the delivery distance in metres.
	Distance float64
}

// Deliver propagates the emission over distance metres, adds ambient
// noise, and records it with the scenario's device, on compiled
// exact-mode sim chains (bit-identical to the seed batch pipeline).
// trial varies the noise realisation deterministically (see TrialSeed).
// Deliver does not mutate the scenario or the emission, so concurrent
// deliveries are safe.
//
// The chain is split at the propagation boundary: the trial-independent
// propagation product (spreading + absorption of this emission at this
// distance) comes from a shared cache, so repeated trials of one cell —
// and cells shared across experiments — pay the FFT propagation once,
// and each trial runs only the noise + capture half.
func (s *Scenario) Deliver(e *Emission, distance float64, trial int64) *RunResult {
	prop := propagatedField(e.Field, distance, s.Air)
	rng := rand.New(rand.NewSource(s.TrialSeed(trial)))
	probe := sim.NewProbe()
	o := sim.Options{}
	ch := sim.Compile(o, s.captureStages(rng, probe, prop.Rate, sim.Exact, o)...)
	rec := sim.RunSignal(ch, prop, s.Device.ADCRate, o)
	return &RunResult{
		Recording:   rec,
		SPLAtDevice: acoustics.SPL(probe.RMS()),
		Distance:    distance,
	}
}

// AttackKind selects a pipeline in the one-shot helper.
type AttackKind int

// Attack kinds.
const (
	KindBaseline AttackKind = iota
	KindLongRange
)

// String implements fmt.Stringer.
func (k AttackKind) String() string {
	switch k {
	case KindBaseline:
		return "baseline"
	case KindLongRange:
		return "long-range"
	default:
		return fmt.Sprintf("AttackKind(%d)", int(k))
	}
}

// Simulate is the one-shot convenience: build the attack for cmd, play it
// at powerW from distance metres, and return both the emission metadata
// and the recording.
func (s *Scenario) Simulate(cmd *audio.Signal, kind AttackKind, powerW, distance float64, trial int64) (*Emission, *RunResult, error) {
	var (
		e   *Emission
		err error
	)
	switch kind {
	case KindBaseline:
		e, err = s.EmitBaseline(cmd, powerW, attack.DefaultBaselineOptions(), speaker.FostexTweeter())
	case KindLongRange:
		e, err = s.EmitLongRange(cmd, powerW, attack.DefaultLongRangeOptions(), speaker.UltrasonicElement)
	default:
		return nil, nil, fmt.Errorf("core: unknown attack kind %v", kind)
	}
	if err != nil {
		return nil, nil, err
	}
	return e, s.Deliver(e, distance, trial), nil
}
