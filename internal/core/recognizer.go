package core

import (
	"inaudible/internal/asr"
	"inaudible/internal/attack"
	"inaudible/internal/audio"
	"inaudible/internal/voice"
)

// DemodChannelAugmenter returns an asr.Augmenter that passes a clean
// utterance through the ideal non-linear demodulation channel
// (AM-modulate, square, low-pass): the distortion signature every
// ultrasound-injected command carries. Enrolling this variant alongside
// the clean one models the channel robustness of commercial recognisers,
// which the paper's end-to-end success rates depend on.
func DemodChannelAugmenter(o attack.BaselineOptions) asr.Augmenter {
	return func(sig *audio.Signal) *audio.Signal {
		ultra, err := attack.Baseline(sig, o)
		if err != nil {
			return nil
		}
		return attack.IdealDemodulate(ultra, o.LowPassHz, sig.Rate)
	}
}

// NewRecognizer builds the standard experiment recogniser: the command
// vocabulary enrolled with the given talker, clean plus
// demodulation-channel variants.
func NewRecognizer(p voice.Profile) *asr.Recognizer {
	return asr.NewRecognizer(voice.Vocabulary(), p,
		DemodChannelAugmenter(attack.DefaultBaselineOptions()))
}
