package core

import (
	"math/rand"

	"inaudible/internal/acoustics"
	"inaudible/internal/dsp"
)

// RoomScenario extends Scenario with explicit geometry: attacker rig,
// victim device and bystander are placed inside a reverberant shoebox
// room, and deliveries include first-order wall reflections. It answers
// the "does reverberation break the attack or the defense?" question the
// free-field Scenario cannot.
type RoomScenario struct {
	*Scenario
	Room      acoustics.Room
	Attacker  acoustics.Position
	Victim    acoustics.Position
	Bystander acoustics.Position
}

// DefaultRoomScenario places the rig and the phone along the long axis of
// the paper's 6.5 m x 4 m x 2.5 m meeting room, 3 m apart, with the
// bystander 1.5 m to the side of the rig.
func DefaultRoomScenario() *RoomScenario {
	base := DefaultScenario()
	return &RoomScenario{
		Scenario:  base,
		Room:      acoustics.MeetingRoom(),
		Attacker:  acoustics.Position{X: 1.0, Y: 2.0, Z: 1.2},
		Victim:    acoustics.Position{X: 4.0, Y: 2.0, Z: 0.8},
		Bystander: acoustics.Position{X: 1.0, Y: 3.5, Z: 1.5},
	}
}

// DeliverInRoom propagates an emission from the attacker position to the
// victim through the direct path plus first-order reflections, adds
// ambient noise, and records with the scenario's device.
func (rs *RoomScenario) DeliverInRoom(e *Emission, trial int64) *RunResult {
	at := rs.Room.PropagateInRoom(e.Field, rs.Attacker, rs.Victim)
	rng := rand.New(rand.NewSource(rs.TrialSeed(trial)))
	if rs.AmbientSPL > 0 {
		noise := acoustics.AmbientNoise(rng, at.Rate, at.Duration(), rs.AmbientSPL)
		dsp.Add(at.Samples, noise.Samples)
	}
	rec := rs.Device.Record(at, rng)
	return &RunResult{
		Recording:   rec,
		SPLAtDevice: acoustics.SPL(at.RMS()),
		Distance:    rs.Attacker.Distance(rs.Victim),
	}
}

// BystanderLeakage re-evaluates the emission's audibility at the
// bystander position including room reflections. It returns the same
// triple as the free-field Emission metadata.
func (rs *RoomScenario) BystanderLeakage(e *Emission) (spl float64, audible bool, margin float64) {
	at := rs.Room.PropagateInRoom(e.Field, rs.Attacker, rs.Bystander)
	return leakageOf(at)
}
