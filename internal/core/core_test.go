package core

import (
	"sync"
	"testing"

	"inaudible/internal/asr"
	"inaudible/internal/mic"
	"inaudible/internal/voice"
)

// Shared fixtures: recogniser and emissions are expensive (seconds each),
// so they are built once and reused across tests.
var (
	fixOnce sync.Once
	fixRec  *asr.Recognizer
	fixCmd  = "ok google, take a picture"
	fixSig  = voice.MustSynthesize(fixCmd, voice.DefaultVoice(), 48000)

	fixBaseline  *Emission // phone scenario, 18.7 W baseline
	fixLongRange *Emission // phone scenario, 300 W long-range
	fixQuiet     *Emission // 0.5 W baseline (inaudible regime)
	fixScenario  *Scenario
)

func fixtures(t *testing.T) {
	t.Helper()
	fixOnce.Do(func() {
		fixRec = NewRecognizer(voice.DefaultVoice())
		fixScenario = DefaultScenario()
		var err error
		fixBaseline, _, err = fixScenario.Simulate(fixSig, KindBaseline, 18.7, 3, 0)
		if err != nil {
			panic(err)
		}
		fixLongRange, _, err = fixScenario.Simulate(fixSig, KindLongRange, 300, 3, 0)
		if err != nil {
			panic(err)
		}
		fixQuiet, _, err = fixScenario.Simulate(fixSig, KindBaseline, 0.5, 3, 0)
		if err != nil {
			panic(err)
		}
	})
}

func TestBaselineAttackSucceedsAtPaperRange(t *testing.T) {
	// Paper: "OK Google" injection on an Android phone, 100% at 3 m with
	// 18.7 W input power.
	fixtures(t)
	r := fixScenario.Deliver(fixBaseline, 3, 1)
	if !fixRec.InjectionSuccess(r.Recording, "photo") {
		res := fixRec.Recognize(r.Recording)
		t.Fatalf("injection failed at 3 m: %+v", res)
	}
}

func TestBaselineAttackFailsFarOut(t *testing.T) {
	// The single-speaker attack must NOT work at long range at this power
	// — that limitation is the NSDI paper's starting point.
	fixtures(t)
	r := fixScenario.Deliver(fixBaseline, 8, 1)
	if fixRec.InjectionSuccess(r.Recording, "photo") {
		t.Fatal("baseline attack should not reach 8 m at 18.7 W")
	}
}

func TestBaselineLeakageAudibleAtAttackPower(t *testing.T) {
	// At range-achieving power the single speaker betrays itself: its
	// self-demodulated leakage is audible to a bystander.
	fixtures(t)
	if !fixBaseline.LeakageAudible {
		t.Fatalf("baseline at 18.7 W should leak audibly (margin %v)", fixBaseline.LeakageMargin)
	}
	if fixBaseline.LeakageMargin < 10 {
		t.Fatalf("leakage margin %v dB suspiciously small", fixBaseline.LeakageMargin)
	}
}

func TestBaselineQuietPowerInaudibleButShortRange(t *testing.T) {
	// Below ~1 W the baseline is genuinely covert — but then it only
	// works very close (this is the range-vs-audibility dilemma).
	fixtures(t)
	if fixQuiet.LeakageAudible {
		t.Fatalf("0.5 W baseline should be inaudible (margin %v)", fixQuiet.LeakageMargin)
	}
	r := fixScenario.Deliver(fixQuiet, 3, 1)
	if fixRec.InjectionSuccess(r.Recording, "photo") {
		t.Fatal("0.5 W attack should not reach 3 m")
	}
}

func TestLongRangeAttackInaudibleAndLong(t *testing.T) {
	// The headline result: at 300 W total the multi-speaker attack stays
	// inaudible AND succeeds at the paper's 25 ft (7.6 m).
	fixtures(t)
	if fixLongRange.LeakageAudible {
		t.Fatalf("long-range attack audible: margin %v", fixLongRange.LeakageMargin)
	}
	if fixLongRange.LeakageMargin > -40 {
		t.Fatalf("long-range leakage margin %v dB — should be far below threshold",
			fixLongRange.LeakageMargin)
	}
	r := fixScenario.Deliver(fixLongRange, 7.6, 1)
	if !fixRec.InjectionSuccess(r.Recording, "photo") {
		res := fixRec.Recognize(r.Recording)
		t.Fatalf("long-range injection failed at 7.6 m: %+v", res)
	}
}

func TestLongRangeUsesManyElements(t *testing.T) {
	fixtures(t)
	if fixLongRange.Elements < 61 {
		t.Fatalf("long-range rig uses %d elements, expected a dense array", fixLongRange.Elements)
	}
	if fixBaseline.Elements != 1 {
		t.Fatalf("baseline rig uses %d elements", fixBaseline.Elements)
	}
}

func TestWordAccuracyDeclinesWithDistance(t *testing.T) {
	fixtures(t)
	near := fixRec.WordAccuracy(fixScenario.Deliver(fixBaseline, 1, 1).Recording, "photo")
	far := fixRec.WordAccuracy(fixScenario.Deliver(fixBaseline, 8, 1).Recording, "photo")
	if near < 0.8 {
		t.Fatalf("near word accuracy %v", near)
	}
	if far >= near {
		t.Fatalf("word accuracy did not decline: near %v far %v", near, far)
	}
}

func TestEchoHarderThanPhone(t *testing.T) {
	// The Echo's plastic-covered mic array attenuates ultrasound more, so
	// the same emission yields a weaker recording than on the phone.
	fixtures(t)
	echoScen := DefaultScenario()
	echoScen.Device = mic.AmazonEcho()
	phone := fixScenario.Deliver(fixBaseline, 3, 1).Recording
	echo := echoScen.Deliver(fixBaseline, 3, 1).Recording
	if echo.RMS() >= phone.RMS() {
		t.Fatalf("echo recording RMS %v >= phone %v", echo.RMS(), phone.RMS())
	}
}

func TestEmitVoiceLegitimateRecognition(t *testing.T) {
	// A real human at 2 m speaking at normal loudness is recognised.
	fixtures(t)
	e := fixScenario.EmitVoice(fixSig, 66)
	if e.TotalPowerW != 0 || e.Elements != 0 {
		t.Fatal("voice emission should carry no electrical metadata")
	}
	r := fixScenario.Deliver(e, 2, 1)
	if !fixRec.InjectionSuccess(r.Recording, "photo") {
		res := fixRec.Recognize(r.Recording)
		t.Fatalf("legitimate speech not recognised: %+v", res)
	}
}

func TestDeliverDeterministic(t *testing.T) {
	fixtures(t)
	a := fixScenario.Deliver(fixBaseline, 3, 7)
	b := fixScenario.Deliver(fixBaseline, 3, 7)
	if a.Recording.Len() != b.Recording.Len() {
		t.Fatal("non-deterministic length")
	}
	for i := range a.Recording.Samples {
		if a.Recording.Samples[i] != b.Recording.Samples[i] {
			t.Fatalf("sample %d differs between identical trials", i)
		}
	}
	c := fixScenario.Deliver(fixBaseline, 3, 8)
	same := true
	for i := range a.Recording.Samples {
		if a.Recording.Samples[i] != c.Recording.Samples[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different trials produced identical noise")
	}
}

func TestDeliverSPLDecreasesWithDistance(t *testing.T) {
	fixtures(t)
	near := fixScenario.Deliver(fixBaseline, 1, 1)
	far := fixScenario.Deliver(fixBaseline, 5, 1)
	if far.SPLAtDevice >= near.SPLAtDevice {
		t.Fatalf("SPL did not fall with distance: %v vs %v", near.SPLAtDevice, far.SPLAtDevice)
	}
	if near.Distance != 1 || far.Distance != 5 {
		t.Fatal("Distance not recorded")
	}
}

func TestSimulateUnknownKind(t *testing.T) {
	fixtures(t)
	if _, _, err := fixScenario.Simulate(fixSig, AttackKind(99), 1, 1, 0); err == nil {
		t.Fatal("expected error for unknown kind")
	}
	if AttackKind(99).String() == "" || KindBaseline.String() != "baseline" || KindLongRange.String() != "long-range" {
		t.Fatal("AttackKind.String")
	}
}

func TestEmissionLeakageOrdering(t *testing.T) {
	// More baseline power -> more leakage SPL, monotonically.
	fixtures(t)
	if fixQuiet.LeakageSPL >= fixBaseline.LeakageSPL {
		t.Fatalf("leakage not monotone in power: %v vs %v",
			fixQuiet.LeakageSPL, fixBaseline.LeakageSPL)
	}
	// Long-range at 16x the power still leaks far less than the baseline.
	if fixLongRange.LeakageSPL >= fixBaseline.LeakageSPL-20 {
		t.Fatalf("long-range leakage %v vs baseline %v", fixLongRange.LeakageSPL, fixBaseline.LeakageSPL)
	}
}

func TestRecognizerRejectsCrossCommandAtRange(t *testing.T) {
	// An attack recording of one command must not be accepted as another.
	fixtures(t)
	r := fixScenario.Deliver(fixBaseline, 2, 1)
	if fixRec.InjectionSuccess(r.Recording, "milk") {
		t.Fatal("photo attack accepted as milk command")
	}
}
