package core

import (
	"math"
	"testing"

	"inaudible/internal/acoustics"
	"inaudible/internal/attack"
	"inaudible/internal/sim"
	"inaudible/internal/speaker"
)

func chainRelErr(got, want []float64) float64 {
	if len(got) != len(want) {
		return math.Inf(1)
	}
	var num, den float64
	for i := range got {
		d := got[i] - want[i]
		num += d * d
		den += want[i] * want[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

// TestDeliveryChainExactIsDeliver pins the wrapper contract: the
// exact-mode delivery chain IS Deliver (same chain, same output), and a
// second run with the same trial reproduces it bit for bit.
func TestDeliveryChainExactIsDeliver(t *testing.T) {
	fixtures(t)
	a := fixScenario.Deliver(fixBaseline, 3, 5)
	b := fixScenario.Deliver(fixBaseline, 3, 5)
	if a.Recording.Len() != b.Recording.Len() {
		t.Fatal("non-deterministic delivery length")
	}
	for i := range a.Recording.Samples {
		if a.Recording.Samples[i] != b.Recording.Samples[i] {
			t.Fatalf("delivery not reproducible at sample %d", i)
		}
	}
	if a.SPLAtDevice != b.SPLAtDevice {
		t.Fatalf("SPL not reproducible: %v vs %v", a.SPLAtDevice, b.SPLAtDevice)
	}
}

// TestDeliveryChainStreamingParityBaseline is the golden parity pin for
// the baseline scenario: the bounded-memory streaming chain matches the
// exact batch path within the documented tolerance, reaches the same SPL
// and the same ASR outcome. Ambient noise is disabled so the remaining
// randomness (mic self-noise) draws the identical sequence on both
// paths; the residual difference is the FIR approximation of the
// frequency-domain propagation and body filters.
func TestDeliveryChainStreamingParityBaseline(t *testing.T) {
	fixtures(t)
	s := fixScenario.Clone()
	s.AmbientSPL = 0
	exact := s.Deliver(fixBaseline, 3, 1)
	ch, probe := s.DeliveryChain(fixBaseline.Field.Rate, 3, 1, sim.Streaming, sim.Options{})
	rec := sim.RunSignal(ch, fixBaseline.Field, s.Device.ADCRate, sim.Options{})
	if e := chainRelErr(rec.Samples, exact.Recording.Samples); e > 0.05 {
		t.Fatalf("streaming delivery rel err %v > 0.05", e)
	}
	if d := math.Abs(acoustics.SPL(probe.RMS()) - exact.SPLAtDevice); d > 0.5 {
		t.Fatalf("SPL differs by %v dB", d)
	}
	if got, want := fixRec.InjectionSuccess(rec, "photo"), fixRec.InjectionSuccess(exact.Recording, "photo"); got != want {
		t.Fatalf("ASR outcome differs: streaming %v exact %v", got, want)
	}
}

// TestDeliveryChainStreamingParityLongRange pins the same contract for
// the long-range scenario at the paper's 3 m reference point.
func TestDeliveryChainStreamingParityLongRange(t *testing.T) {
	fixtures(t)
	s := fixScenario.Clone()
	s.AmbientSPL = 0
	exact := s.Deliver(fixLongRange, 3, 1)
	ch, _ := s.DeliveryChain(fixLongRange.Field.Rate, 3, 1, sim.Streaming, sim.Options{})
	rec := sim.RunSignal(ch, fixLongRange.Field, s.Device.ADCRate, sim.Options{})
	if e := chainRelErr(rec.Samples, exact.Recording.Samples); e > 0.05 {
		t.Fatalf("streaming long-range delivery rel err %v > 0.05", e)
	}
	if got, want := fixRec.InjectionSuccess(rec, "photo"), fixRec.InjectionSuccess(exact.Recording, "photo"); got != want {
		t.Fatalf("ASR outcome differs: streaming %v exact %v", got, want)
	}
}

// TestStreamingEndToEndLongRangeInjection runs the whole attack fully
// streaming — per-element speaker chains mixed at the reference, then
// the streaming capture chain — and checks the injection still succeeds
// at the paper's range, so the bounded-memory pipeline preserves the
// phenomenon end to end.
func TestStreamingEndToEndLongRangeInjection(t *testing.T) {
	fixtures(t)
	o := attack.DefaultLongRangeOptions()
	plan, err := attack.LongRange(fixSig, 300, o)
	if err != nil {
		t.Fatal(err)
	}
	opt := sim.Options{}
	src, elements := sim.LongRangeSource(plan, speaker.UltrasonicElement, sim.Streaming, opt)
	if elements < 10 {
		t.Fatalf("only %d elements driven", elements)
	}
	s := fixScenario.Clone()
	s.AmbientSPL = 0
	ch, _ := s.DeliveryChain(o.Rate, 3, 1, sim.Streaming, opt)
	rec := sim.RunSource(ch, src, s.Device.ADCRate, opt)
	if !fixRec.InjectionSuccess(rec, "photo") {
		res := fixRec.Recognize(rec)
		t.Fatalf("streaming end-to-end injection failed: %+v", res)
	}
}
