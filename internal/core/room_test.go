package core

import (
	"testing"

	"inaudible/internal/defense"
)

func TestRoomScenarioDelivery(t *testing.T) {
	fixtures(t)
	rs := DefaultRoomScenario()
	r := rs.DeliverInRoom(fixBaseline, 1)
	if r.Recording.RMS() == 0 {
		t.Fatal("empty room recording")
	}
	// Reverberation must not break the attack at the paper's range: the
	// direct distance here is 3 m.
	if !fixRec.InjectionSuccess(r.Recording, "photo") {
		res := fixRec.Recognize(r.Recording)
		t.Fatalf("room delivery failed recognition: %+v", res)
	}
	if r.Distance < 2.9 || r.Distance > 3.2 {
		t.Fatalf("direct distance %v", r.Distance)
	}
}

func TestRoomReverbAddsEnergyVsAnechoic(t *testing.T) {
	fixtures(t)
	rs := DefaultRoomScenario()
	rs.AmbientSPL = 0
	wet := rs.DeliverInRoom(fixBaseline, 1)
	rs2 := DefaultRoomScenario()
	rs2.AmbientSPL = 0
	rs2.Room.Reflection = 0
	dry := rs2.DeliverInRoom(fixBaseline, 1)
	if wet.SPLAtDevice <= dry.SPLAtDevice {
		t.Fatalf("reflections lost energy: wet %v dry %v", wet.SPLAtDevice, dry.SPLAtDevice)
	}
}

func TestRoomBystanderLeakage(t *testing.T) {
	fixtures(t)
	rs := DefaultRoomScenario()
	spl, audible, margin := rs.BystanderLeakage(fixBaseline)
	if !audible || margin < 5 {
		t.Fatalf("baseline attack should stay audible in the room: %v dB margin %v", spl, margin)
	}
	_, audibleLR, _ := rs.BystanderLeakage(fixLongRange)
	if audibleLR {
		t.Fatal("long-range attack should stay inaudible even with reflections")
	}
}

func TestRoomDefenseStillDetects(t *testing.T) {
	fixtures(t)
	rs := DefaultRoomScenario()
	r := rs.DeliverInRoom(fixBaseline, 2)
	// The trace features must survive reverberation (the m^2 residue is
	// generated at the microphone, after the room).
	f := defense.Extract(r.Recording)
	if f.TraceSNR <= -4.5 && f.HighSNR <= -4.5 {
		t.Fatalf("room delivery erased the non-linearity traces: %v", f)
	}
}
