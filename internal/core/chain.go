package core

import (
	"math/rand"

	"inaudible/internal/acoustics"
	"inaudible/internal/audio"
	"inaudible/internal/dsp"
	"inaudible/internal/sim"
	"inaudible/internal/speaker"
)

// This file expresses the scenario's physical pipelines as sim chains.
// Deliver and the Emit* methods are thin wrappers over chains compiled in
// sim.Exact mode, which is bit-identical to the seed batch pipeline; the
// same builders compiled in sim.Streaming mode give the bounded-memory
// realization used by specs, the live guard example and the benchmarks.

// DeliveryChain compiles the scenario's capture pipeline — free-field
// propagation over distance, ambient room noise, the victim device — for
// a field at the given sample rate. trial selects the deterministic
// noise realisation exactly like Deliver. The returned probe reports the
// RMS (and hence SPL) of the pressure reaching the microphone.
//
// Exact mode reproduces Deliver bit for bit. Streaming mode runs in
// bounded memory with the documented FIR tolerances; its ambient noise
// is a streamed pink generator whose level matches the batch
// realisation's to a few percent (the sample sequence differs because
// the batch generator normalises each finite realisation).
func (s *Scenario) DeliveryChain(rate, distance float64, trial int64, mode sim.Mode, o sim.Options) (*sim.Chain, *sim.Probe) {
	rng := rand.New(rand.NewSource(s.TrialSeed(trial)))
	probe := sim.NewProbe()
	var stages []sim.Stage
	p := acoustics.Path{Distance: distance, Air: s.Air}
	stages = append(stages, sim.PathStages(p, rate, mode, o)...)
	if s.AmbientSPL > 0 {
		if mode == sim.Exact {
			spl := s.AmbientSPL
			stages = append(stages, sim.BatchTransform("ambient", rate, func(sig *audio.Signal) *audio.Signal {
				noise := acoustics.AmbientNoise(rng, sig.Rate, sig.Duration(), spl)
				dsp.Add(sig.Samples, noise.Samples)
				return sig
			}))
		} else {
			stages = append(stages, sim.AmbientStage(rng, s.AmbientSPL))
		}
	}
	stages = append(stages, probe)
	stages = append(stages, sim.MicStages(s.Device, rng, rate, mode, o)...)
	return sim.Compile(o, stages...), probe
}

// emitOne runs one speaker's drive through its emission chain.
func emitOne(sp *speaker.Speaker, drive *audio.Signal, powerW float64, mode sim.Mode, o sim.Options) *audio.Signal {
	c := sim.Compile(o, sim.SpeakerStages(sp, drive.RMS(), powerW, drive.Rate, mode, o)...)
	return sim.RunSignal(c, drive, drive.Rate, o)
}
