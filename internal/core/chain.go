package core

import (
	"math/rand"
	"sync"

	"inaudible/internal/acoustics"
	"inaudible/internal/audio"
	"inaudible/internal/dsp"
	"inaudible/internal/sim"
	"inaudible/internal/speaker"
)

// This file expresses the scenario's physical pipelines as sim chains.
// Deliver and the Emit* methods are thin wrappers over chains compiled in
// sim.Exact mode, which is bit-identical to the seed batch pipeline; the
// same builders compiled in sim.Streaming mode give the bounded-memory
// realization used by specs, the live guard example and the benchmarks.

// DeliveryChain compiles the scenario's capture pipeline — free-field
// propagation over distance, ambient room noise, the victim device — for
// a field at the given sample rate. trial selects the deterministic
// noise realisation exactly like Deliver. The returned probe reports the
// RMS (and hence SPL) of the pressure reaching the microphone.
//
// Exact mode reproduces Deliver bit for bit. Streaming mode runs in
// bounded memory with the documented FIR tolerances; its ambient noise
// is a streamed pink generator whose level matches the batch
// realisation's to a few percent (the sample sequence differs because
// the batch generator normalises each finite realisation).
func (s *Scenario) DeliveryChain(rate, distance float64, trial int64, mode sim.Mode, o sim.Options) (*sim.Chain, *sim.Probe) {
	rng := rand.New(rand.NewSource(s.TrialSeed(trial)))
	probe := sim.NewProbe()
	p := acoustics.Path{Distance: distance, Air: s.Air}
	stages := sim.PathStages(p, rate, mode, o)
	stages = append(stages, s.captureStages(rng, probe, rate, mode, o)...)
	return sim.Compile(o, stages...), probe
}

// captureStages builds the trial-dependent half of the delivery chain —
// ambient room noise, the SPL probe and the victim device — everything
// downstream of the propagation boundary. rng must be seeded with the
// trial's TrialSeed; the draw order (ambient first, then mic self-noise)
// matches the batch reference exactly.
func (s *Scenario) captureStages(rng *rand.Rand, probe *sim.Probe, rate float64, mode sim.Mode, o sim.Options) []sim.Stage {
	var stages []sim.Stage
	if s.AmbientSPL > 0 {
		if mode == sim.Exact {
			spl := s.AmbientSPL
			stages = append(stages, sim.BatchTransform("ambient", rate, func(sig *audio.Signal) *audio.Signal {
				noise := acoustics.AmbientNoise(rng, sig.Rate, sig.Duration(), spl)
				dsp.Add(sig.Samples, noise.Samples)
				return sig
			}))
		} else {
			stages = append(stages, sim.AmbientStage(rng, s.AmbientSPL))
		}
	}
	stages = append(stages, probe)
	stages = append(stages, sim.MicStages(s.Device, rng, rate, mode, o)...)
	return stages
}

// ---- propagation product cache ----

// The propagation half of a delivery (spreading + ISO 9613 absorption at
// a fixed distance) is trial-independent: every trial of a success-rate
// cell, and every cell sharing (emission, distance) across experiments,
// transforms the same reference field into the same pressure waveform at
// the receiver. propagatedField memoizes that product so the exact-chain
// FFT propagation runs once per (field, distance, air) instead of once
// per trial. Entries are keyed by field pointer identity, relying on the
// delivery contract that emission fields are immutable once built.
type propKey struct {
	field    *audio.Signal
	distance float64
	air      acoustics.Air
}

const propCacheCap = 16

var propCache = struct {
	sync.Mutex
	entries map[propKey]*audio.Signal
	order   []propKey // least recently used first
}{entries: make(map[propKey]*audio.Signal)}

// touchPropKey moves key to the most-recently-used end of the eviction
// order. Caller holds the lock.
func touchPropKey(key propKey) {
	for i, k := range propCache.order {
		if k == key {
			propCache.order = append(append(propCache.order[:i:i], propCache.order[i+1:]...), key)
			return
		}
	}
	propCache.order = append(propCache.order, key)
}

// propagatedField returns the field propagated over the free-field path,
// computed through the compiled exact path chain and cached. The
// returned signal is shared and must not be mutated.
func propagatedField(field *audio.Signal, distance float64, air acoustics.Air) *audio.Signal {
	key := propKey{field: field, distance: distance, air: air}
	propCache.Lock()
	if sig, ok := propCache.entries[key]; ok {
		touchPropKey(key)
		propCache.Unlock()
		return sig
	}
	propCache.Unlock()

	p := acoustics.Path{Distance: distance, Air: air}
	o := sim.Options{}
	ch := sim.Compile(o, sim.PathStages(p, field.Rate, sim.Exact, o)...)
	prop := sim.RunSignal(ch, field, field.Rate, o)

	propCache.Lock()
	if sig, ok := propCache.entries[key]; ok {
		// A concurrent trial computed the (identical) product first.
		prop = sig
		touchPropKey(key)
	} else {
		propCache.entries[key] = prop
		propCache.order = append(propCache.order, key)
		if len(propCache.order) > propCacheCap {
			evict := propCache.order[0]
			propCache.order = propCache.order[1:]
			delete(propCache.entries, evict)
		}
	}
	propCache.Unlock()
	return prop
}

// emitOne runs one speaker's drive through its emission chain.
func emitOne(sp *speaker.Speaker, drive *audio.Signal, powerW float64, mode sim.Mode, o sim.Options) *audio.Signal {
	c := sim.Compile(o, sim.SpeakerStages(sp, drive.RMS(), powerW, drive.Rate, mode, o)...)
	return sim.RunSignal(c, drive, drive.Rate, o)
}
