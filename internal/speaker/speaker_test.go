package speaker

import (
	"math"
	"sync"
	"testing"

	"inaudible/internal/acoustics"
	"inaudible/internal/audio"
	"inaudible/internal/dsp"
	"inaudible/internal/psycho"
)

func TestEmitSensitivityCalibration(t *testing.T) {
	// 1 W of an in-band tone must produce SensitivitySPL at 1 m.
	sp := FostexTweeter()
	drive := audio.Tone(192000, 10000, 1, 0.5)
	out := sp.Emit(drive, 1)
	got := acoustics.SPL(out.Slice(0.1, 0.4).RMS())
	if math.Abs(got-sp.SensitivitySPL) > 1.5 {
		t.Fatalf("1 W tone: %v dB SPL, want ~%v", got, sp.SensitivitySPL)
	}
}

func TestEmitPowerScaling(t *testing.T) {
	// +6 dB electrical power = +6 dB SPL (within the linear regime).
	sp := FostexTweeter()
	drive := audio.Tone(192000, 10000, 1, 0.25)
	p1 := acoustics.SPL(sp.Emit(drive, 2).RMS())
	p2 := acoustics.SPL(sp.Emit(drive, 8).RMS())
	if math.Abs((p2-p1)-6) > 0.5 {
		t.Fatalf("4x power gave %v dB, want ~6", p2-p1)
	}
}

func TestEmitSilence(t *testing.T) {
	sp := FostexTweeter()
	silent := audio.Silence(192000, 0.1)
	if out := sp.Emit(silent, 10); out.RMS() != 0 {
		t.Fatal("silence in, silence out")
	}
	if out := sp.Emit(audio.Tone(192000, 10000, 1, 0.1), 0); out.RMS() != 0 {
		t.Fatal("zero power must emit silence")
	}
}

func TestEmitPanicsOnNegativePower(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FostexTweeter().Emit(audio.Tone(192000, 1000, 1, 0.1), -1)
}

func TestResponseRolloff(t *testing.T) {
	sp := UltrasonicElement()
	if g := sp.ResponseGain(30000); g != 1 {
		t.Errorf("in-band gain %v", g)
	}
	// One octave below the low edge: attenuated by RolloffDBPerOct.
	g := sp.ResponseGain(sp.LowHz / 2)
	want := dsp.AmplitudeFromDB(-sp.RolloffDBPerOct)
	if math.Abs(g-want)/want > 0.01 {
		t.Errorf("one octave out: %v want %v", g, want)
	}
	if sp.ResponseGain(0) != 0 {
		t.Error("DC gain must be 0")
	}
}

func TestEmitUltrasonicElementRejectsAudible(t *testing.T) {
	// A 2 kHz drive through the piezo element (passband >= 23 kHz) must be
	// strongly attenuated vs an in-band 30 kHz drive.
	sp := UltrasonicElement()
	lo := sp.Emit(audio.Tone(192000, 2000, 1, 0.25), 1).RMS()
	hi := sp.Emit(audio.Tone(192000, 30000, 1, 0.25), 1).RMS()
	if lo > hi*0.01 {
		t.Fatalf("audible content insufficiently rejected: lo=%v hi=%v", lo, hi)
	}
}

func TestSelfLeakageFromAMUltrasound(t *testing.T) {
	// Driving the tweeter hard with an AM ultrasound must produce audible
	// self-demodulated leakage; an ideal (linear) speaker must not.
	const rate = 192000.0
	base := audio.Tone(rate, 1500, 1, 0.5)
	am := audio.AMSignal(base, 30000, 0.8)

	hot := FostexTweeter().Emit(am, 30)
	leak := SelfLeakage(hot)
	demod := dsp.ToneAmplitude(leak.Samples, 1500, rate)
	if demod <= 0 {
		t.Fatal("no leakage at the modulating frequency")
	}
	if spl := psycho.LeakageSPL(hot); spl < 40 {
		t.Fatalf("30 W AM drive leakage only %v dB SPL", spl)
	}

	clean := IdealSpeaker().Emit(am, 30)
	cleanLeak := psycho.LeakageSPL(clean)
	hotLeak := psycho.LeakageSPL(hot)
	if cleanLeak > hotLeak-20 {
		t.Fatalf("ideal speaker leaks almost as much: %v vs %v dB", cleanLeak, hotLeak)
	}
}

func TestLeakageGrowsSuperlinearlyWithPower(t *testing.T) {
	// Second-order leakage amplitude ~ power, i.e. +2 dB SPL per +1 dB
	// electrical. Check leakage grows faster than the linear emission.
	const rate = 192000.0
	am := audio.AMSignal(audio.Tone(rate, 1500, 1, 0.5), 30000, 0.8)
	sp := FostexTweeter()
	l1 := psycho.LeakageSPL(sp.Emit(am, 2))
	l2 := psycho.LeakageSPL(sp.Emit(am, 8))
	gain := l2 - l1 // electrical step is 6 dB
	if gain < 8 {
		t.Fatalf("leakage grew only %v dB for a 6 dB power step (want ~12)", gain)
	}
}

func TestNarrowbandDriveLeakageBelow50Hz(t *testing.T) {
	// The multi-speaker insight: a drive whose bandwidth is < 50 Hz
	// produces self-IMD only below 50 Hz. Drive one element with two tones
	// 40 Hz apart in the ultrasound and check audible-band leakage is
	// negligible compared with a wideband (5 kHz apart) drive.
	const rate = 192000.0
	narrow := audio.MultiTone(rate, 1, 0.5, 30000, 30040)
	wide := audio.MultiTone(rate, 1, 0.5, 30000, 35000)
	sp := UltrasonicElement()
	leakNarrow := psycho.LeakageSPL(sp.Emit(narrow, 4))
	leakWide := psycho.LeakageSPL(sp.Emit(wide, 4))
	if leakWide < leakNarrow+20 {
		t.Fatalf("narrowband drive should leak >=20 dB less: narrow %v wide %v",
			leakNarrow, leakWide)
	}
}

func TestNewGridArrayGeometry(t *testing.T) {
	arr := NewGridArray(61, UltrasonicElement, 0.02)
	if len(arr.Elements) != 61 {
		t.Fatalf("%d elements", len(arr.Elements))
	}
	// All offsets within a ~8x8 grid of 2 cm pitch.
	for _, e := range arr.Elements {
		if math.Abs(e.Offset.Y) > 0.08 || math.Abs(e.Offset.Z) > 0.08 {
			t.Fatalf("offset out of bounds: %+v", e.Offset)
		}
	}
	if arr.TotalPower() != 0 {
		t.Fatal("undriven array power must be 0")
	}
}

func TestNewGridArrayPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGridArray(0, UltrasonicElement, 0.02)
}

func TestArrayFieldAtSumsElements(t *testing.T) {
	// Two identical co-driven elements produce ~2x the pressure of one
	// (delay-compensated, so coherent addition).
	const rate = 192000.0
	drive := audio.Tone(rate, 30000, 1, 0.25)
	mk := func(n int) *Array {
		arr := NewGridArray(n, UltrasonicElement, 0.02)
		for i := range arr.Elements {
			arr.Elements[i].Drive = drive
			arr.Elements[i].PowerW = 1
		}
		arr.Center = acoustics.Position{X: 0, Y: 2, Z: 1.2}
		return arr
	}
	target := acoustics.Position{X: 3, Y: 2, Z: 1.2}
	air := acoustics.DefaultAir()
	one := mk(1).FieldAt(target, air, true).RMS()
	two := mk(2).FieldAt(target, air, true).RMS()
	if math.Abs(two/one-2) > 0.05 {
		t.Fatalf("two coherent elements: ratio %v, want ~2", two/one)
	}
}

func TestArrayFieldPlanReusedAndConcurrent(t *testing.T) {
	// The plan cache must hand back one geometry per key and stay safe
	// (and bit-stable) under concurrent FieldAt trials.
	const rate = 192000.0
	drive := audio.Tone(rate, 30000, 1, 0.1)
	arr := NewGridArray(4, UltrasonicElement, 0.02)
	for i := range arr.Elements {
		arr.Elements[i].Drive = drive
		arr.Elements[i].PowerW = 1
	}
	target := acoustics.Position{X: 3, Y: 2, Z: 1.2}
	air := acoustics.DefaultAir()
	if p1, p2 := arr.PlanFor(target, air, true), arr.PlanFor(target, air, true); p1 != p2 {
		t.Fatal("plan not cached: two instances for one key")
	}
	want := arr.FieldAt(target, air, true)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := arr.FieldAt(target, air, true)
			for i := range want.Samples {
				if got.Samples[i] != want.Samples[i] {
					errs <- "concurrent FieldAt diverged"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
	arr.InvalidatePlans()
	if p3 := arr.PlanFor(target, air, true); p3 == nil {
		t.Fatal("plan rebuild after invalidation failed")
	}
}

func TestArrayFieldAtNilWhenUndriven(t *testing.T) {
	arr := NewGridArray(4, UltrasonicElement, 0.02)
	if f := arr.FieldAt(acoustics.Position{X: 1}, acoustics.DefaultAir(), true); f != nil {
		t.Fatal("expected nil field for undriven array")
	}
}

func TestCombinedLeakageAggregates(t *testing.T) {
	const rate = 192000.0
	am := audio.AMSignal(audio.Tone(rate, 1500, 1, 0.25), 30000, 0.8)
	arr := NewGridArray(2, FostexTweeter, 0.05)
	arr.Elements[0].Drive = am
	arr.Elements[0].PowerW = 10
	leak1 := psycho.LeakageSPL(arr.CombinedLeakage())
	arr.Elements[1].Drive = am
	arr.Elements[1].PowerW = 10
	leak2 := psycho.LeakageSPL(arr.CombinedLeakage())
	if leak2 <= leak1 {
		t.Fatalf("adding a leaking element must raise leakage: %v -> %v", leak1, leak2)
	}
	empty := NewGridArray(2, FostexTweeter, 0.05)
	if l := empty.CombinedLeakage(); l.Len() != 0 {
		t.Fatal("undriven array leakage should be empty")
	}
}
