package speaker

import (
	"fmt"

	"inaudible/internal/acoustics"
	"inaudible/internal/audio"
	"inaudible/internal/dsp"
)

// Element is one positioned speaker in an array, together with the drive
// waveform and power assigned to it by the attack planner.
type Element struct {
	Speaker *Speaker
	Offset  acoustics.Position // position relative to the array centre, metres
	Drive   *audio.Signal      // dimensionless drive waveform
	PowerW  float64            // electrical power for this element
}

// Array is a set of co-located or near-co-located emitting elements. The
// paper's long-range rig is a 61-element grid of small ultrasonic
// transducers plus the shared carrier element.
type Array struct {
	Elements []Element
	// Center is the array centre in room coordinates.
	Center acoustics.Position
}

// NewGridArray builds an n-element array of the given speaker profile
// arranged in a compact square grid with the given element pitch (metres).
// Drives are nil until an attack planner assigns them.
func NewGridArray(n int, proto func() *Speaker, pitch float64) *Array {
	if n <= 0 {
		panic(fmt.Sprintf("speaker: array size %d", n))
	}
	side := 1
	for side*side < n {
		side++
	}
	arr := &Array{}
	for i := 0; i < n; i++ {
		row, col := i/side, i%side
		off := acoustics.Position{
			X: 0,
			Y: (float64(col) - float64(side-1)/2) * pitch,
			Z: (float64(row) - float64(side-1)/2) * pitch,
		}
		arr.Elements = append(arr.Elements, Element{Speaker: proto(), Offset: off})
	}
	return arr
}

// TotalPower sums the electrical power across elements.
func (a *Array) TotalPower() float64 {
	var p float64
	for _, e := range a.Elements {
		p += e.PowerW
	}
	return p
}

// Emissions returns the per-element pressure waveforms at the 1 m
// reference distance. Elements without a drive emit silence of the given
// fallback duration/rate (taken from the first driven element).
func (a *Array) Emissions() []*audio.Signal {
	out := make([]*audio.Signal, len(a.Elements))
	for i, e := range a.Elements {
		if e.Drive == nil {
			out[i] = nil
			continue
		}
		out[i] = e.Speaker.Emit(e.Drive, e.PowerW)
	}
	return out
}

// CombinedLeakage sums every element's self-leakage as heard right at the
// array (1 m reference): the quantity a nearby human would hear. Elements
// must share a sample rate.
func (a *Array) CombinedLeakage() *audio.Signal {
	var acc *audio.Signal
	for _, em := range a.Emissions() {
		if em == nil {
			continue
		}
		leak := SelfLeakage(em)
		if acc == nil {
			acc = leak
			continue
		}
		dsp.Add(acc.Samples, leak.Samples)
	}
	if acc == nil {
		return audio.New(48000, 0)
	}
	return acc
}

// FieldAt computes the total pressure waveform arriving at the target
// position: each element's emission propagated over its own exact path
// (distance from Center+Offset to target). When compensateDelays is true,
// per-element delays are equalised to the array centre's delay — modelling
// the paper's calibrated rig, which aligns element phases at the target;
// without it, centimetre-scale path differences scramble the ultrasonic
// phases. Returns nil if no element is driven.
func (a *Array) FieldAt(target acoustics.Position, air acoustics.Air, compensateDelays bool) *audio.Signal {
	var acc *audio.Signal
	for i, e := range a.Elements {
		if e.Drive == nil {
			continue
		}
		em := a.Elements[i].Speaker.Emit(e.Drive, e.PowerW)
		pos := acoustics.Position{
			X: a.Center.X + e.Offset.X,
			Y: a.Center.Y + e.Offset.Y,
			Z: a.Center.Z + e.Offset.Z,
		}
		d := pos.Distance(target)
		p := acoustics.Path{Distance: d, Air: air, IncludeDelay: !compensateDelays}
		at := p.Propagate(em)
		if acc == nil {
			acc = at
			continue
		}
		dsp.Add(acc.Samples, at.Samples)
	}
	return acc
}
