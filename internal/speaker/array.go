package speaker

import (
	"fmt"
	"math"
	"sync"

	"inaudible/internal/acoustics"
	"inaudible/internal/audio"
	"inaudible/internal/dsp"
)

// Element is one positioned speaker in an array, together with the drive
// waveform and power assigned to it by the attack planner.
type Element struct {
	Speaker *Speaker
	Offset  acoustics.Position // position relative to the array centre, metres
	Drive   *audio.Signal      // dimensionless drive waveform
	PowerW  float64            // electrical power for this element
}

// Array is a set of co-located or near-co-located emitting elements. The
// paper's long-range rig is a 61-element grid of small ultrasonic
// transducers plus the shared carrier element.
type Array struct {
	Elements []Element
	// Center is the array centre in room coordinates.
	Center acoustics.Position

	// plans caches per-(target, air, delay-mode) field geometry. Guarded
	// by planMu; see PlanFor.
	planMu sync.Mutex
	plans  map[fieldKey]*FieldPlan
}

// NewGridArray builds an n-element array of the given speaker profile
// arranged in a compact square grid with the given element pitch (metres).
// Drives are nil until an attack planner assigns them.
func NewGridArray(n int, proto func() *Speaker, pitch float64) *Array {
	if n <= 0 {
		panic(fmt.Sprintf("speaker: array size %d", n))
	}
	side := 1
	for side*side < n {
		side++
	}
	arr := &Array{}
	for i := 0; i < n; i++ {
		row, col := i/side, i%side
		off := acoustics.Position{
			X: 0,
			Y: (float64(col) - float64(side-1)/2) * pitch,
			Z: (float64(row) - float64(side-1)/2) * pitch,
		}
		arr.Elements = append(arr.Elements, Element{Speaker: proto(), Offset: off})
	}
	return arr
}

// TotalPower sums the electrical power across elements.
func (a *Array) TotalPower() float64 {
	var p float64
	for _, e := range a.Elements {
		p += e.PowerW
	}
	return p
}

// Emissions returns the per-element pressure waveforms at the 1 m
// reference distance. Elements without a drive emit silence of the given
// fallback duration/rate (taken from the first driven element).
func (a *Array) Emissions() []*audio.Signal {
	out := make([]*audio.Signal, len(a.Elements))
	for i, e := range a.Elements {
		if e.Drive == nil {
			out[i] = nil
			continue
		}
		out[i] = e.Speaker.Emit(e.Drive, e.PowerW)
	}
	return out
}

// CombinedLeakage sums every element's self-leakage as heard right at the
// array (1 m reference): the quantity a nearby human would hear. Elements
// must share a sample rate.
func (a *Array) CombinedLeakage() *audio.Signal {
	var acc *audio.Signal
	for _, em := range a.Emissions() {
		if em == nil {
			continue
		}
		leak := SelfLeakage(em)
		if acc == nil {
			acc = leak
			continue
		}
		dsp.Add(acc.Samples, leak.Samples)
	}
	if acc == nil {
		return audio.New(48000, 0)
	}
	return acc
}

// fieldKey identifies one cached field geometry.
type fieldKey struct {
	target     acoustics.Position
	air        acoustics.Air
	compensate bool
}

// FieldPlan is the cached geometry of one (array, target, air, delay
// mode) combination: per-element distances, propagation paths and lazily
// built frequency-domain transfer spectra (spreading x ISO 9613
// absorption x optional delay phase). Building the transfer tables is the
// expensive per-bin work FieldAt used to redo on every call; a plan is
// computed once and reused across trials (and by the sim array stage).
//
// A plan snapshots geometry only — element drives and powers are read at
// FieldAt time, so reassigning drives between calls is safe. Mutating
// positions (Center, Offsets) after a plan exists requires
// InvalidatePlans.
type FieldPlan struct {
	arr *Array
	key fieldKey
	// Distances holds each element's exact path length to the target, in
	// element order (including undriven elements).
	Distances []float64

	mu       sync.Mutex
	transfer map[transferKey][][]complex128 // per-element one-sided transfer spectra
}

// transferKey identifies one transfer table: the FFT size and the sample
// rate that maps bins to physical frequencies.
type transferKey struct {
	size int
	rate float64
}

// PlanFor returns the cached field plan for the target/air/delay-mode,
// building it on first use. Plans are cached on the array and safe for
// concurrent use.
func (a *Array) PlanFor(target acoustics.Position, air acoustics.Air, compensateDelays bool) *FieldPlan {
	key := fieldKey{target: target, air: air, compensate: compensateDelays}
	a.planMu.Lock()
	defer a.planMu.Unlock()
	if p, ok := a.plans[key]; ok {
		return p
	}
	p := &FieldPlan{
		arr:       a,
		key:       key,
		Distances: make([]float64, len(a.Elements)),
		transfer:  map[transferKey][][]complex128{},
	}
	for i, e := range a.Elements {
		pos := acoustics.Position{
			X: a.Center.X + e.Offset.X,
			Y: a.Center.Y + e.Offset.Y,
			Z: a.Center.Z + e.Offset.Z,
		}
		p.Distances[i] = pos.Distance(target)
	}
	if a.plans == nil {
		a.plans = map[fieldKey]*FieldPlan{}
	}
	a.plans[key] = p
	return p
}

// InvalidatePlans discards all cached field plans; call after mutating
// the array geometry (Center or element Offsets).
func (a *Array) InvalidatePlans() {
	a.planMu.Lock()
	a.plans = nil
	a.planMu.Unlock()
}

// Path returns element i's propagation path to the plan's target.
func (p *FieldPlan) Path(i int) acoustics.Path {
	return acoustics.Path{Distance: p.Distances[i], Air: p.key.air, IncludeDelay: !p.key.compensate}
}

// transferFor returns the per-element one-sided transfer spectra for the
// given FFT size and signal rate, building them on first use.
func (p *FieldPlan) transferFor(size int, rate float64) [][]complex128 {
	k := transferKey{size: size, rate: rate}
	p.mu.Lock()
	defer p.mu.Unlock()
	if t, ok := p.transfer[k]; ok {
		return t
	}
	c := acoustics.SpeedOfSound(p.key.air.TempC)
	t := make([][]complex128, len(p.Distances))
	for i, d := range p.Distances {
		h := make([]complex128, size/2+1)
		path := p.Path(i)
		delay := d / c
		for k := range h {
			f := dsp.BinFrequency(k, size, rate)
			att := path.Attenuation(f)
			hk := complex(att, 0)
			if path.IncludeDelay {
				phase := -2 * math.Pi * f * delay
				hk *= complex(math.Cos(phase), math.Sin(phase))
			}
			h[k] = hk
		}
		t[i] = h
	}
	p.transfer[k] = t
	return t
}

// FieldAt computes the total pressure waveform at the plan's target from
// the elements' current drives: each driven element's emission spectrum
// is multiplied by its cached transfer and the accumulated spectrum is
// inverse-transformed once. Returns nil if no element is driven.
func (p *FieldPlan) FieldAt() *audio.Signal {
	var (
		acc    []complex128
		rate   float64
		n      int
		driven bool
	)
	scratch := []float64(nil)
	for i, e := range p.arr.Elements {
		if e.Drive == nil {
			continue
		}
		em := e.Speaker.Emit(e.Drive, e.PowerW)
		if !driven {
			rate = em.Rate
			n = len(em.Samples)
			driven = true
		}
		size := dsp.NextPowerOfTwo(n + 1)
		if scratch == nil {
			scratch = make([]float64, size)
		}
		m := copy(scratch, em.Samples)
		for j := m; j < size; j++ {
			scratch[j] = 0
		}
		spec := dsp.RFFT(scratch)
		h := p.transferFor(size, rate)[i]
		for k := range spec {
			spec[k] *= h[k]
		}
		if acc == nil {
			acc = spec
			continue
		}
		for k := range acc {
			acc[k] += spec[k]
		}
	}
	if !driven {
		return nil
	}
	size := dsp.NextPowerOfTwo(n + 1)
	out := dsp.IRFFT(acc, size)[:n]
	return &audio.Signal{Rate: rate, Samples: out}
}

// FieldAt computes the total pressure waveform arriving at the target
// position: each element's emission propagated over its own exact path
// (distance from Center+Offset to target). When compensateDelays is true,
// per-element delays are equalised to the array centre's delay — modelling
// the paper's calibrated rig, which aligns element phases at the target;
// without it, centimetre-scale path differences scramble the ultrasonic
// phases. Returns nil if no element is driven.
//
// The per-element geometry (distance, delay, per-bin attenuation) is
// cached in a FieldPlan on first use and reused across calls and trials;
// only the element emissions are recomputed, since drives may change.
func (a *Array) FieldAt(target acoustics.Position, air acoustics.Air, compensateDelays bool) *audio.Signal {
	return a.PlanFor(target, air, compensateDelays).FieldAt()
}
