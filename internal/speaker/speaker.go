// Package speaker models the attacker's emitting chain: power amplifier
// (gain + saturation), ultrasonic transducer (band-pass frequency response
// + memoryless non-linearity) and speaker arrays with per-element geometry.
//
// The speaker's own non-linearity is the antagonist of the long-range
// attack: driving a single tweeter with the full AM ultrasound at high
// power makes the *tweeter itself* demodulate the command into the audible
// band ("self-leakage"), betraying the attacker. The paper's multi-speaker
// design defeats this by giving each element a signal so narrow-band that
// its second-order products fall below 50 Hz.
//
// Unit convention: Emit accepts a dimensionless drive waveform and an
// electrical input power in watts, and produces the sound-pressure
// waveform (pascals) at the 1 m reference distance, ready for
// acoustics.Path.Propagate.
package speaker

import (
	"fmt"
	"math"

	"inaudible/internal/acoustics"
	"inaudible/internal/audio"
	"inaudible/internal/dsp"
	"inaudible/internal/nonlinear"
)

// Speaker models one emitting element.
type Speaker struct {
	// Name identifies the profile in reports.
	Name string
	// SensitivitySPL is the on-axis SPL (dB re 20 uPa) produced at 1 m for
	// 1 W of input power.
	SensitivitySPL float64
	// LowHz and HighHz bound the transducer's passband. Content outside is
	// attenuated with a steep but finite rolloff.
	LowHz, HighHz float64
	// RolloffDBPerOct is the out-of-band attenuation slope.
	RolloffDBPerOct float64
	// NL is the drive-domain non-linearity. Its input is the drive
	// waveform in sqrt-watt units (an RMS-1 waveform at 1 W), so the
	// quadratic coefficient directly sets distortion-vs-power scaling.
	NL *nonlinear.Polynomial
	// MaxPowerW is the rated input power; Emit saturates softly above it.
	MaxPowerW float64
}

// FostexTweeter returns the paper's single-speaker rig: a horn tweeter
// driven by a commodity hi-fi amplifier (Fostex FT17H + Yamaha R-S202).
// Usable response extends past 40 kHz; sensitivity ~96 dB/W/m.
func FostexTweeter() *Speaker {
	return &Speaker{
		Name:            "fostex-ft17h",
		SensitivitySPL:  96,
		LowHz:           2000,
		HighHz:          45000,
		RolloffDBPerOct: 24,
		NL:              nonlinear.Quadratic(1, 0.0007),
		MaxPowerW:       50,
	}
}

// UltrasonicElement returns one element of the long-range attack array: a
// small piezo transducer resonant in the 23-52 kHz region, low rated
// power, with comparable relative non-linearity.
func UltrasonicElement() *Speaker {
	return &Speaker{
		Name:            "piezo-element",
		SensitivitySPL:  92,
		LowHz:           23000,
		HighHz:          52000,
		RolloffDBPerOct: 24,
		NL:              nonlinear.Quadratic(1, 0.0007),
		MaxPowerW:       5,
	}
}

// IdealSpeaker returns a perfectly linear, perfectly flat element — the
// control condition for ablation benches.
func IdealSpeaker() *Speaker {
	return &Speaker{
		Name:            "ideal",
		SensitivitySPL:  96,
		LowHz:           10,
		HighHz:          95000,
		RolloffDBPerOct: 96,
		NL:              nonlinear.Linear(1),
		MaxPowerW:       1e9,
	}
}

// Emit drives the speaker with the waveform drive at the given electrical
// power (watts) and returns the emitted pressure waveform at 1 m, in
// pascals. The drive waveform's own scale is ignored: it is normalised to
// unit RMS and rescaled to sqrt(power) "drive units" internally, so power
// alone controls the level. Silent drives return silence.
func (s *Speaker) Emit(drive *audio.Signal, powerW float64) *audio.Signal {
	if powerW < 0 {
		panic(fmt.Sprintf("speaker: negative power %v", powerW))
	}
	out := drive.Clone()
	rms := out.RMS()
	if rms == 0 || powerW == 0 {
		return audio.New(drive.Rate, drive.Duration())
	}
	out.Gain(math.Sqrt(s.EffectivePowerW(powerW)) / rms)
	// Drive-domain non-linearity (amplifier + motor/suspension).
	s.NL.ApplyInPlace(out.Samples)
	// Transducer passband.
	s.ApplyResponse(out)
	// Convert drive units to pascals: 1 W (unit RMS drive) produces
	// SensitivitySPL at 1 m.
	paPerUnit := acoustics.PressureFromSPL(s.SensitivitySPL)
	out.Gain(paPerUnit)
	return out
}

// EffectivePowerW applies the amplifier's soft power limit: the chain
// cannot push beyond ~2x the rated power, approached along a tanh curve.
func (s *Speaker) EffectivePowerW(powerW float64) float64 {
	if s.MaxPowerW <= 0 {
		return powerW
	}
	return s.MaxPowerW * 2 * math.Tanh(powerW/(s.MaxPowerW*2))
}

// ApplyResponse shapes the spectrum with the transducer's band-pass
// response, applied in the frequency domain over the whole buffer — the
// exact reference realization that the streaming simulation chain
// approximates with a windowed FIR (sim.SpeakerStages).
func (s *Speaker) ApplyResponse(sig *audio.Signal) {
	n := len(sig.Samples)
	if n == 0 {
		return
	}
	size := dsp.NextPowerOfTwo(n)
	spec := make([]complex128, size)
	for i, v := range sig.Samples {
		spec[i] = complex(v, 0)
	}
	dsp.FFT(spec)
	half := size / 2
	for k := 0; k <= half; k++ {
		f := dsp.BinFrequency(k, size, sig.Rate)
		g := s.ResponseGain(f)
		spec[k] *= complex(g, 0)
		if k != 0 && k != half {
			spec[size-k] *= complex(g, 0)
		}
	}
	dsp.IFFT(spec)
	for i := range sig.Samples {
		sig.Samples[i] = real(spec[i])
	}
}

// ResponseGain returns the linear amplitude gain of the transducer at
// frequency f: unity in [LowHz, HighHz], rolling off outside.
func (s *Speaker) ResponseGain(f float64) float64 {
	if f <= 0 {
		return 0
	}
	var octs float64
	switch {
	case f < s.LowHz:
		octs = math.Log2(s.LowHz / f)
	case f > s.HighHz:
		octs = math.Log2(f / s.HighHz)
	default:
		return 1
	}
	return dsp.AmplitudeFromDB(-s.RolloffDBPerOct * octs)
}

// SelfLeakage isolates the audible-band (20 Hz - 20 kHz) content of an
// emission — the incriminating by-product of the speaker's non-linearity.
// The returned signal is at the emission's rate.
func SelfLeakage(emission *audio.Signal) *audio.Signal {
	nyq := emission.Rate / 2
	hi := 20000.0
	if hi > nyq*0.95 {
		hi = nyq * 0.95
	}
	bp := dsp.BandPassFIR(1023, 20/emission.Rate, hi/emission.Rate)
	return &audio.Signal{Rate: emission.Rate, Samples: bp.Apply(emission.Samples)}
}
