package psycho

import (
	"math"
	"testing"

	"inaudible/internal/acoustics"
	"inaudible/internal/audio"
)

func TestHearingThresholdShape(t *testing.T) {
	// Most sensitive region is 2-5 kHz (threshold near or below 0 dB SPL).
	if tq := HearingThresholdSPL(3300); tq > 0 {
		t.Errorf("threshold at 3.3 kHz = %v, want < 0", tq)
	}
	// 1 kHz reference is a few dB SPL.
	if tq := HearingThresholdSPL(1000); tq < 0 || tq > 10 {
		t.Errorf("threshold at 1 kHz = %v", tq)
	}
	// Low frequencies are hard to hear.
	if HearingThresholdSPL(50) < 30 {
		t.Error("threshold at 50 Hz should exceed 30 dB")
	}
	if HearingThresholdSPL(25) < HearingThresholdSPL(100) {
		t.Error("threshold should grow toward infrasound")
	}
	// Ultrasound is effectively inaudible.
	if HearingThresholdSPL(25000) < 100 {
		t.Error("ultrasonic threshold should be very high")
	}
	// Infrasound clamp.
	if HearingThresholdSPL(5) != 80 {
		t.Error("infrasound clamp")
	}
}

func TestAWeighting(t *testing.T) {
	// A-weighting is 0 dB at 1 kHz by construction (+-0.2 dB).
	if w := AWeightingDB(1000); math.Abs(w) > 0.2 {
		t.Errorf("A(1kHz)=%v", w)
	}
	// Standard table: A(100 Hz) ~ -19.1 dB, A(10 kHz) ~ -2.5 dB.
	if w := AWeightingDB(100); math.Abs(w+19.1) > 1 {
		t.Errorf("A(100Hz)=%v", w)
	}
	if w := AWeightingDB(10000); math.Abs(w+2.5) > 1 {
		t.Errorf("A(10kHz)=%v", w)
	}
	if !math.IsInf(AWeightingDB(0), -1) {
		t.Error("A(0) should be -Inf")
	}
}

func TestAudibilityOfQuietAndLoudTones(t *testing.T) {
	// 60 dB SPL @ 1 kHz: clearly audible.
	loud := audio.Tone(48000, 1000, acoustics.PressureFromSPL(60)*math.Sqrt2, 1)
	a := AnalyzeAudibility(loud)
	if !a.Audible() {
		t.Fatal("60 dB tone at 1 kHz should be audible")
	}
	if a.PeakBand.LoHz > 1000 || a.PeakBand.HiHz < 1000 {
		t.Errorf("peak band %v-%v does not bracket 1 kHz", a.PeakBand.LoHz, a.PeakBand.HiHz)
	}
	// -20 dB SPL @ 1 kHz: inaudible.
	quiet := audio.Tone(48000, 1000, acoustics.PressureFromSPL(-20)*math.Sqrt2, 1)
	if AnalyzeAudibility(quiet).Audible() {
		t.Fatal("-20 dB tone should be inaudible")
	}
}

func TestUltrasoundInaudibleAtHighSPL(t *testing.T) {
	// A 110 dB SPL tone at 30 kHz (well above Nyquist/2 of human range)
	// must be inaudible: its energy is outside 20 Hz - 20 kHz bands.
	s := audio.Tone(192000, 30000, acoustics.PressureFromSPL(110)*math.Sqrt2, 0.5)
	a := AnalyzeAudibility(s)
	if a.Audible() {
		t.Fatalf("ultrasound judged audible, margin %v in band %v-%v",
			a.MaxMargin, a.PeakBand.LoHz, a.PeakBand.HiHz)
	}
}

func TestSub50HzResidueInaudible(t *testing.T) {
	// The multi-speaker attack's self-leakage lands below 50 Hz, where the
	// hearing threshold exceeds 50 dB SPL: a 45 dB residue is inaudible.
	s := audio.Tone(48000, 30, acoustics.PressureFromSPL(45)*math.Sqrt2, 1)
	a := AnalyzeAudibility(s)
	if a.Audible() {
		t.Fatalf("45 dB @ 30 Hz judged audible (margin %v)", a.MaxMargin)
	}
	// The same SPL at 1 kHz would be loud and clear.
	s2 := audio.Tone(48000, 1000, acoustics.PressureFromSPL(45)*math.Sqrt2, 1)
	if !AnalyzeAudibility(s2).Audible() {
		t.Fatal("45 dB @ 1 kHz should be audible")
	}
}

func TestLeakageSPLTracksLevel(t *testing.T) {
	a := audio.Tone(48000, 1000, acoustics.PressureFromSPL(60)*math.Sqrt2, 1)
	b := audio.Tone(48000, 1000, acoustics.PressureFromSPL(80)*math.Sqrt2, 1)
	la, lb := LeakageSPL(a), LeakageSPL(b)
	if math.Abs(la-60) > 1.5 {
		t.Errorf("leakage of 60 dB tone = %v", la)
	}
	if math.Abs(lb-la-20) > 0.5 {
		t.Errorf("20 dB step measured as %v", lb-la)
	}
}

func TestLeakageSPLIgnoresUltrasound(t *testing.T) {
	ultra := audio.Tone(192000, 30000, acoustics.PressureFromSPL(110)*math.Sqrt2, 0.5)
	if l := LeakageSPL(ultra); l > 10 {
		t.Fatalf("ultrasound contributed %v dB to leakage", l)
	}
}

func TestAudibleAtDistance(t *testing.T) {
	// A 90 dB @ 1 m tone at 1 kHz is audible at 2 m but a -10 dB one is not.
	loud := audio.Tone(48000, 1000, acoustics.PressureFromSPL(90)*math.Sqrt2, 0.5)
	ok, margin := AudibleAtDistance(loud, 2, acoustics.DefaultAir())
	if !ok || margin < 20 {
		t.Fatalf("loud tone inaudible at 2 m (margin %v)", margin)
	}
	quiet := audio.Tone(48000, 1000, acoustics.PressureFromSPL(-10)*math.Sqrt2, 0.5)
	if ok, _ := AudibleAtDistance(quiet, 2, acoustics.DefaultAir()); ok {
		t.Fatal("quiet tone audible at 2 m")
	}
}

func TestBandLevelMargin(t *testing.T) {
	b := BandLevel{SPL: 50, Threshold: 30}
	if b.Margin() != 20 {
		t.Fatal("Margin")
	}
}
