// Package psycho provides the psychoacoustic audibility model that stands
// in for the paper's human listeners. "Inaudible" is defined against the
// absolute threshold of hearing in quiet (Terhardt's analytic
// approximation of the ISO 226 curve): a sound is audible if any analysis
// band's SPL exceeds the threshold at that band's centre frequency.
//
// This is the criterion used to score attacker leakage (DESIGN.md E2/E3):
// a single-speaker attack becomes audible because its self-demodulated
// leakage lands in the highly sensitive 500 Hz - 8 kHz region, while the
// multi-speaker attack's residue falls below 50 Hz where the threshold
// exceeds 70 dB SPL.
package psycho

import (
	"math"

	"inaudible/internal/acoustics"
	"inaudible/internal/audio"
	"inaudible/internal/dsp"
)

// HearingThresholdSPL returns the absolute threshold of hearing in quiet
// at frequency f (Hz), in dB SPL, using Terhardt's approximation:
//
//	Tq(f) = 3.64 (f/kHz)^-0.8 - 6.5 exp(-0.6 (f/kHz - 3.3)^2) + 1e-3 (f/kHz)^4
//
// The polynomial term grows without bound above ~16 kHz, correctly
// modelling that ultrasound is inaudible at any realistic level. Below
// 20 Hz the threshold is clamped to a conservative 80 dB SPL floor
// (infrasound sensitivity).
func HearingThresholdSPL(f float64) float64 {
	if f < 20 {
		return 80
	}
	khz := f / 1000
	tq := 3.64*math.Pow(khz, -0.8) -
		6.5*math.Exp(-0.6*(khz-3.3)*(khz-3.3)) +
		1e-3*math.Pow(khz, 4)
	// Cap the ultrasonic rise: beyond ~140 dB SPL everything is felt, not
	// heard, and numbers larger than that are physically meaningless here.
	if tq > 140 {
		tq = 140
	}
	return tq
}

// AWeightingDB returns the IEC 61672 A-weighting in dB at frequency f.
func AWeightingDB(f float64) float64 {
	if f <= 0 {
		return math.Inf(-1)
	}
	f2 := f * f
	const (
		c1 = 20.598997 * 20.598997
		c2 = 107.65265 * 107.65265
		c3 = 737.86223 * 737.86223
		c4 = 12194.217 * 12194.217
	)
	num := c4 * f2 * f2
	den := (f2 + c1) * math.Sqrt((f2+c2)*(f2+c3)) * (f2 + c4)
	ra := num / den
	return 20*math.Log10(ra) + 2.0
}

// BandLevel is the SPL measured in one analysis band.
type BandLevel struct {
	LoHz, HiHz float64
	SPL        float64 // dB SPL of the band's total power
	Threshold  float64 // hearing threshold at the band centre, dB SPL
}

// Margin returns SPL - Threshold: positive values are audible.
func (b BandLevel) Margin() float64 { return b.SPL - b.Threshold }

// Audibility is the result of analysing a pressure waveform against the
// threshold of hearing.
type Audibility struct {
	Bands     []BandLevel
	MaxMargin float64 // largest Margin() over all bands, dB
	PeakBand  BandLevel
}

// Audible reports whether any band exceeds the threshold.
func (a Audibility) Audible() bool { return a.MaxMargin > 0 }

// AnalyzeAudibility measures the audibility of a pressure waveform
// (pascals) by integrating its Welch PSD into third-octave bands from
// 20 Hz to min(rate/2, 20 kHz) and comparing each band's SPL to the
// hearing threshold at the band centre.
func AnalyzeAudibility(s *audio.Signal) Audibility {
	const fftSize = 8192
	psd := dsp.Welch(s.Samples, fftSize)
	var out Audibility
	out.MaxMargin = math.Inf(-1)
	lo := 20.0
	nyq := s.Rate / 2
	for lo < 20000 && lo < nyq {
		hi := lo * math.Cbrt(2) // third-octave step
		if hi > nyq {
			hi = nyq
		}
		center := math.Sqrt(lo * hi)
		p := dsp.BandPower(psd, s.Rate, fftSize, lo, hi)
		bl := BandLevel{
			LoHz:      lo,
			HiHz:      hi,
			SPL:       acoustics.SPL(math.Sqrt(p)),
			Threshold: HearingThresholdSPL(center),
		}
		out.Bands = append(out.Bands, bl)
		if m := bl.Margin(); m > out.MaxMargin {
			out.MaxMargin = m
			out.PeakBand = bl
		}
		lo = hi
	}
	return out
}

// LeakageSPL measures the A-weighted SPL of the audible-band content
// (20 Hz - 20 kHz) of a pressure waveform: the single-number "how loud
// does the attack sound to a bystander" metric used in E2/E3.
func LeakageSPL(s *audio.Signal) float64 {
	const fftSize = 8192
	psd := dsp.Welch(s.Samples, fftSize)
	var total float64
	for k := range psd {
		f := dsp.BinFrequency(k, fftSize, s.Rate)
		if f < 20 || f > 20000 {
			continue
		}
		w := math.Pow(10, AWeightingDB(f)/10)
		total += psd[k] * w
	}
	return acoustics.SPL(math.Sqrt(total))
}

// AudibleAtDistance propagates the 1 m reference emission to a listener at
// the given distance and reports whether it is audible there, along with
// the margin in dB.
func AudibleAtDistance(emission *audio.Signal, distance float64, air acoustics.Air) (bool, float64) {
	p := acoustics.Path{Distance: distance, Air: air}
	at := p.Propagate(emission)
	a := AnalyzeAudibility(at)
	return a.Audible(), a.MaxMargin
}
