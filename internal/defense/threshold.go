package defense

import (
	"fmt"
	"math"
)

// ThresholdDetector is the paper's simplest defense: a per-feature
// decision threshold, calibrated from labelled data, that fires when ANY
// cleanly separating feature crosses into attack territory. Unlike a
// trained linear boundary it cannot trade one feature against another —
// which is exactly what defeats the adaptive attacker: cancelling the
// trace-band feature does not buy back the high-band residue.
type ThresholdDetector struct {
	// Thresholds[i] is the decision value for feature i (midpoint between
	// the benign and attack class extremes).
	Thresholds []float64
	// AttackHigh[i] reports whether attacks lie above the threshold.
	AttackHigh []bool
	// Valid[i] reports whether feature i separated the classes cleanly in
	// calibration; invalid features never fire.
	Valid []bool
}

// CalibrateThresholds builds a ThresholdDetector from labelled samples: a
// feature is used only if its class ranges do not overlap, with the
// threshold at the midpoint of the gap.
func CalibrateThresholds(samples []Sample) (*ThresholdDetector, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("defense: no calibration samples")
	}
	d := len(samples[0].X)
	det := &ThresholdDetector{
		Thresholds: make([]float64, d),
		AttackHigh: make([]bool, d),
		Valid:      make([]bool, d),
	}
	var haveLegit, haveAttack bool
	for i := 0; i < d; i++ {
		legitMin, legitMax := math.Inf(1), math.Inf(-1)
		atkMin, atkMax := math.Inf(1), math.Inf(-1)
		for _, s := range samples {
			if len(s.X) != d {
				return nil, fmt.Errorf("defense: inconsistent feature dimension")
			}
			v := s.X[i]
			if s.Attack {
				haveAttack = true
				atkMin = math.Min(atkMin, v)
				atkMax = math.Max(atkMax, v)
			} else {
				haveLegit = true
				legitMin = math.Min(legitMin, v)
				legitMax = math.Max(legitMax, v)
			}
		}
		switch {
		case atkMin > legitMax:
			det.Valid[i] = true
			det.AttackHigh[i] = true
			det.Thresholds[i] = (atkMin + legitMax) / 2
		case atkMax < legitMin:
			det.Valid[i] = true
			det.AttackHigh[i] = false
			det.Thresholds[i] = (atkMax + legitMin) / 2
		}
	}
	if !haveLegit || !haveAttack {
		return nil, fmt.Errorf("defense: calibration needs both classes")
	}
	any := false
	for _, v := range det.Valid {
		any = any || v
	}
	if !any {
		return nil, fmt.Errorf("defense: no feature separates the classes cleanly")
	}
	return det, nil
}

// DemoThresholds returns a hand-calibrated ThresholdDetector over the
// standard feature vector, for demos, spec runs and benchmarks where
// corpus training would dominate start-up. Calibrated detectors from
// CalibrateThresholds (or the trained classifiers) remain the evaluated
// defenses; this one only needs to separate clear-cut attack recordings
// from quiet legitimate speech.
func DemoThresholds() *ThresholdDetector {
	return &ThresholdDetector{
		Thresholds: []float64{-1.5, -2.5, 0.5, -2.0, -3.0},
		AttackHigh: []bool{true, true, true, true, true},
		Valid:      []bool{true, true, true, true, true},
	}
}

// Predict reports whether x is classified as an attack: any valid feature
// on the attack side of its threshold fires.
func (t *ThresholdDetector) Predict(x []float64) bool {
	for i, v := range x {
		if i >= len(t.Valid) || !t.Valid[i] {
			continue
		}
		if t.AttackHigh[i] {
			if v > t.Thresholds[i] {
				return true
			}
		} else if v < t.Thresholds[i] {
			return true
		}
	}
	return false
}

// ValidFeatures returns the indices of features used by the detector.
func (t *ThresholdDetector) ValidFeatures() []int {
	var out []int
	for i, v := range t.Valid {
		if v {
			out = append(out, i)
		}
	}
	return out
}
