package defense

import (
	"math/rand"
	"testing"
)

// separableSamples builds a 5-dim corpus whose first feature separates
// the classes cleanly (attack high).
func separableSamples(n int, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	var out []Sample
	for i := 0; i < n; i++ {
		atk := Sample{X: make([]float64, 5), Attack: true}
		leg := Sample{X: make([]float64, 5)}
		for j := range atk.X {
			atk.X[j] = rng.NormFloat64()
			leg.X[j] = rng.NormFloat64()
		}
		atk.X[0] = 2 + rng.Float64()
		leg.X[0] = -2 - rng.Float64()
		out = append(out, atk, leg)
	}
	return out
}

// TestDetectorContract verifies Predict(x) == (Score(x) > 0) for every
// implementation — the invariant the streaming guard's verdicts and the
// wire protocol rely on.
func TestDetectorContract(t *testing.T) {
	samples := separableSamples(40, 1)
	svm, err := TrainSVM(samples, 0.01, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := TrainLogistic(samples, 0.5, 400)
	if err != nil {
		t.Fatal(err)
	}
	thr, err := CalibrateThresholds(samples)
	if err != nil {
		t.Fatal(err)
	}
	dets := map[string]Detector{"svm": svm, "logistic": lr, "threshold": thr}
	rng := rand.New(rand.NewSource(2))
	for name, det := range dets {
		correct := 0
		for _, s := range samples {
			if det.Predict(s.X) == s.Attack {
				correct++
			}
		}
		if correct < len(samples)*9/10 {
			t.Errorf("%s: only %d/%d correct on separable data", name, correct, len(samples))
		}
		for i := 0; i < 200; i++ {
			x := []float64{rng.NormFloat64() * 3, rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
			if det.Predict(x) != (det.Score(x) > 0) {
				t.Fatalf("%s: Predict(%v)=%v disagrees with Score=%v",
					name, x, det.Predict(x), det.Score(x))
			}
		}
	}
}

func TestThresholdScoreMargins(t *testing.T) {
	det := &ThresholdDetector{
		Thresholds: []float64{1, -1},
		AttackHigh: []bool{true, false},
		Valid:      []bool{true, true},
	}
	// Feature 0 fires by +0.5; feature 1 fires by +2: max margin wins.
	if got := det.Score([]float64{1.5, -3}); got != 2 {
		t.Fatalf("Score = %v, want 2", got)
	}
	// Neither fires: the least-negative margin is reported.
	if got := det.Score([]float64{0.5, 0}); got != -0.5 {
		t.Fatalf("Score = %v, want -0.5", got)
	}
}
