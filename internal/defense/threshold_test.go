package defense

import "testing"

func thresholdFixture() []Sample {
	// Feature 0 separates (attack high), feature 1 separates (attack
	// low), feature 2 overlaps.
	return []Sample{
		{X: []float64{-4.0, 1.0, 0.5}, Attack: false},
		{X: []float64{-3.8, 0.9, 0.1}, Attack: false},
		{X: []float64{-2.5, 0.2, 0.4}, Attack: true},
		{X: []float64{-2.0, 0.1, 0.2}, Attack: true},
	}
}

func TestCalibrateThresholds(t *testing.T) {
	det, err := CalibrateThresholds(thresholdFixture())
	if err != nil {
		t.Fatal(err)
	}
	if !det.Valid[0] || !det.AttackHigh[0] {
		t.Fatalf("feature 0 calibration: %+v", det)
	}
	if !det.Valid[1] || det.AttackHigh[1] {
		t.Fatalf("feature 1 calibration: %+v", det)
	}
	if det.Valid[2] {
		t.Fatal("overlapping feature must be invalid")
	}
	if got := det.ValidFeatures(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("ValidFeatures %v", got)
	}
	// Midpoints: feature 0 between -3.8 and -2.5 = -3.15.
	if det.Thresholds[0] != (-3.8-2.5)/2 {
		t.Fatalf("threshold 0 = %v", det.Thresholds[0])
	}
}

func TestThresholdPredict(t *testing.T) {
	det, err := CalibrateThresholds(thresholdFixture())
	if err != nil {
		t.Fatal(err)
	}
	if !det.Predict([]float64{-2.2, 0.95, 0}) {
		t.Fatal("attack-high feature should fire alone")
	}
	if !det.Predict([]float64{-3.9, 0.15, 0}) {
		t.Fatal("attack-low feature should fire alone")
	}
	if det.Predict([]float64{-3.9, 0.95, 0.9}) {
		t.Fatal("benign point misclassified")
	}
}

func TestCalibrateThresholdErrors(t *testing.T) {
	if _, err := CalibrateThresholds(nil); err == nil {
		t.Error("empty calibration should fail")
	}
	oneClass := []Sample{{X: []float64{1}, Attack: true}}
	if _, err := CalibrateThresholds(oneClass); err == nil {
		t.Error("single-class calibration should fail")
	}
	overlap := []Sample{
		{X: []float64{0}, Attack: false},
		{X: []float64{1}, Attack: false},
		{X: []float64{0.5}, Attack: true},
	}
	if _, err := CalibrateThresholds(overlap); err == nil {
		t.Error("no-separating-feature calibration should fail")
	}
	bad := []Sample{
		{X: []float64{0, 1}, Attack: false},
		{X: []float64{1}, Attack: true},
	}
	if _, err := CalibrateThresholds(bad); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestThresholdOnSurrogateRecordings(t *testing.T) {
	var samples []Sample
	for i := int64(0); i < 3; i++ {
		legit := Extract(synthRecording(t, false, 0, 0.002, i))
		atk := Extract(synthRecording(t, true, 0.15, 0.002, i))
		samples = append(samples,
			Sample{X: legit.Vector(), Attack: false},
			Sample{X: atk.Vector(), Attack: true})
	}
	det, err := CalibrateThresholds(samples)
	if err != nil {
		t.Fatal(err)
	}
	// Held-out surrogates.
	legit := Extract(synthRecording(t, false, 0, 0.002, 99))
	atk := Extract(synthRecording(t, true, 0.15, 0.002, 99))
	if det.Predict(legit.Vector()) {
		t.Fatal("legit surrogate flagged")
	}
	if !det.Predict(atk.Vector()) {
		t.Fatal("attack surrogate missed")
	}
}
