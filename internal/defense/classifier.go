package defense

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Sample is one labelled feature vector.
type Sample struct {
	X      []float64
	Attack bool
}

// standardizer holds per-feature mean/std for z-scoring.
type standardizer struct {
	Mean, Std []float64
}

func fitStandardizer(samples []Sample) standardizer {
	if len(samples) == 0 {
		return standardizer{}
	}
	d := len(samples[0].X)
	s := standardizer{Mean: make([]float64, d), Std: make([]float64, d)}
	for _, sm := range samples {
		for i, v := range sm.X {
			s.Mean[i] += v
		}
	}
	for i := range s.Mean {
		s.Mean[i] /= float64(len(samples))
	}
	for _, sm := range samples {
		for i, v := range sm.X {
			d := v - s.Mean[i]
			s.Std[i] += d * d
		}
	}
	for i := range s.Std {
		s.Std[i] = math.Sqrt(s.Std[i] / float64(len(samples)))
		if s.Std[i] < 1e-9 {
			s.Std[i] = 1
		}
	}
	return s
}

func (s standardizer) apply(x []float64) []float64 {
	if len(s.Mean) == 0 {
		return x
	}
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = (v - s.Mean[i]) / s.Std[i]
	}
	return out
}

// LinearSVM is a from-scratch linear support vector machine trained with
// stochastic sub-gradient descent on the hinge loss (Pegasos-style).
type LinearSVM struct {
	W     []float64
	B     float64
	std   standardizer
	Dim   int
	Seed  int64
	Iters int
}

// TrainSVM fits a linear SVM. lambda is the L2 regularisation strength;
// epochs the number of passes over the data.
func TrainSVM(samples []Sample, lambda float64, epochs int, seed int64) (*LinearSVM, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("defense: no training samples")
	}
	d := len(samples[0].X)
	for _, s := range samples {
		if len(s.X) != d {
			return nil, fmt.Errorf("defense: inconsistent feature dimension")
		}
	}
	svm := &LinearSVM{W: make([]float64, d), Dim: d, Seed: seed}
	svm.std = fitStandardizer(samples)
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(len(samples))
	t := 1
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			s := samples[idx]
			x := svm.std.apply(s.X)
			y := -1.0
			if s.Attack {
				y = 1.0
			}
			eta := 1 / (lambda * float64(t))
			t++
			margin := y * (dot(svm.W, x) + svm.B)
			for i := range svm.W {
				svm.W[i] *= 1 - eta*lambda
			}
			if margin < 1 {
				for i := range svm.W {
					svm.W[i] += eta * y * x[i]
				}
				svm.B += eta * y * 0.1
			}
		}
	}
	svm.Iters = epochs
	return svm, nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Score returns the signed margin: positive means "attack".
func (s *LinearSVM) Score(x []float64) float64 {
	return dot(s.W, s.std.apply(x)) + s.B
}

// Predict reports whether x is classified as an attack.
func (s *LinearSVM) Predict(x []float64) bool { return s.Score(x) > 0 }

// LogisticRegression is a from-scratch binary logistic regression trained
// with batch gradient descent; it provides calibrated attack
// probabilities where the SVM provides margins.
type LogisticRegression struct {
	W   []float64
	B   float64
	std standardizer
}

// TrainLogistic fits the model with the given learning rate and epochs.
func TrainLogistic(samples []Sample, lr float64, epochs int) (*LogisticRegression, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("defense: no training samples")
	}
	d := len(samples[0].X)
	m := &LogisticRegression{W: make([]float64, d)}
	m.std = fitStandardizer(samples)
	xs := make([][]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = m.std.apply(s.X)
		if s.Attack {
			ys[i] = 1
		}
	}
	for e := 0; e < epochs; e++ {
		gw := make([]float64, d)
		gb := 0.0
		for i, x := range xs {
			p := sigmoid(dot(m.W, x) + m.B)
			err := p - ys[i]
			for j := range gw {
				gw[j] += err * x[j]
			}
			gb += err
		}
		n := float64(len(xs))
		for j := range m.W {
			m.W[j] -= lr * gw[j] / n
		}
		m.B -= lr * gb / n
	}
	return m, nil
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// Probability returns P(attack | x).
func (m *LogisticRegression) Probability(x []float64) float64 {
	return sigmoid(dot(m.W, m.std.apply(x)) + m.B)
}

// Predict reports whether x is classified as an attack (p > 0.5).
func (m *LogisticRegression) Predict(x []float64) bool { return m.Probability(x) > 0.5 }

// Metrics summarises binary classification quality.
type Metrics struct {
	Accuracy  float64
	Precision float64
	Recall    float64
	F1        float64
	TP        int
	FP        int
	TN        int
	FN        int
}

// Evaluate computes Metrics for predictions against ground truth.
func Evaluate(pred []bool, truth []bool) Metrics {
	var m Metrics
	for i := range pred {
		switch {
		case pred[i] && truth[i]:
			m.TP++
		case pred[i] && !truth[i]:
			m.FP++
		case !pred[i] && truth[i]:
			m.FN++
		default:
			m.TN++
		}
	}
	total := float64(len(pred))
	if total > 0 {
		m.Accuracy = float64(m.TP+m.TN) / total
	}
	if m.TP+m.FP > 0 {
		m.Precision = float64(m.TP) / float64(m.TP+m.FP)
	}
	if m.TP+m.FN > 0 {
		m.Recall = float64(m.TP) / float64(m.TP+m.FN)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// ROCPoint is one operating point of the receiver operating
// characteristic.
type ROCPoint struct {
	Threshold float64
	TPR       float64 // true positive (detection) rate
	FPR       float64 // false positive rate
}

// ROC sweeps a decision threshold over the scores and returns the curve,
// sorted by increasing FPR. scores higher = more attack-like.
func ROC(scores []float64, truth []bool) []ROCPoint {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	var pos, neg int
	for _, t := range truth {
		if t {
			pos++
		} else {
			neg++
		}
	}
	var curve []ROCPoint
	tp, fp := 0, 0
	curve = append(curve, ROCPoint{Threshold: math.Inf(1)})
	for _, i := range idx {
		if truth[i] {
			tp++
		} else {
			fp++
		}
		pt := ROCPoint{Threshold: scores[i]}
		if pos > 0 {
			pt.TPR = float64(tp) / float64(pos)
		}
		if neg > 0 {
			pt.FPR = float64(fp) / float64(neg)
		}
		curve = append(curve, pt)
	}
	return curve
}

// AUC integrates the ROC curve by the trapezoid rule.
func AUC(curve []ROCPoint) float64 {
	var area float64
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		area += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return area
}
