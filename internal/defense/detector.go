package defense

import "math"

// Detector is the common decision surface of the trained classifiers and
// the calibrated threshold rule: every detector maps a feature vector
// (Features.Vector order) to an attack verdict plus a monotone score.
// The contract ties the two together: Predict(x) == (Score(x) > 0), and
// larger scores mean more attack-like. Implementations are safe for
// concurrent readers after training/calibration, which is what lets one
// detector serve many streaming guard sessions.
type Detector interface {
	// Predict reports whether x is classified as an attack.
	Predict(x []float64) bool
	// Score returns the signed decision value: positive means attack,
	// with magnitude increasing in confidence.
	Score(x []float64) float64
}

// The three defenses all implement Detector.
var (
	_ Detector = (*LinearSVM)(nil)
	_ Detector = (*LogisticRegression)(nil)
	_ Detector = (*ThresholdDetector)(nil)
)

// Score returns the log-odds of attack, the signed decision value
// underlying Probability: positive exactly when P(attack|x) > 0.5.
func (m *LogisticRegression) Score(x []float64) float64 {
	return dot(m.W, m.std.apply(x)) + m.B
}

// Score returns the largest signed margin of any valid feature toward
// its attack side: positive exactly when Predict fires. With no valid
// features (never produced by CalibrateThresholds) it returns -Inf.
func (t *ThresholdDetector) Score(x []float64) float64 {
	best := math.Inf(-1)
	for i, v := range x {
		if i >= len(t.Valid) || !t.Valid[i] {
			continue
		}
		m := v - t.Thresholds[i]
		if !t.AttackHigh[i] {
			m = -m
		}
		if m > best {
			best = m
		}
	}
	return best
}
