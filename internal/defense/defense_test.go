package defense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"inaudible/internal/audio"
	"inaudible/internal/dsp"
	"inaudible/internal/voice"
)

// synthRecording fabricates a recording through a fast surrogate channel:
// legitimate = voice + stationary noise; attacked = voice + beta*voice^2
// (the quadratic demodulation residue) + the same noise. This isolates the
// feature logic from the expensive full simulation, which the experiment
// harness exercises end to end.
func synthRecording(t testing.TB, attacked bool, beta, noiseRMS float64, seed int64) *audio.Signal {
	t.Helper()
	v := voice.MustSynthesize("ok google, take a picture", voice.DefaultVoice(), 48000)
	v.NormalizeRMS(0.02)
	out := v.Clone()
	if attacked {
		sq := make([]float64, v.Len())
		for i, s := range v.Samples {
			sq[i] = s * s
		}
		// The quadratic residue spans [0, 16 kHz]; scale it the way the
		// mic's second-order term does relative to the linear copy.
		scale := beta / dsp.RMS(sq) * dsp.RMS(v.Samples)
		for i := range out.Samples {
			out.Samples[i] += sq[i] * scale
		}
	}
	rng := rand.New(rand.NewSource(seed))
	noise := audio.PinkNoise(rng, 48000, noiseRMS, out.Duration())
	dsp.Add(out.Samples, noise.Samples)
	// Leading/trailing context like a real always-on recording.
	full := audio.Silence(48000, out.Duration()+1.0)
	full.MixInto(out, 0.5)
	noise2 := audio.PinkNoise(rng, 48000, noiseRMS, full.Duration())
	_ = noise2
	return full
}

func TestFeatureSeparationSurrogate(t *testing.T) {
	legit := Extract(synthRecording(t, false, 0, 0.002, 1))
	attacked := Extract(synthRecording(t, true, 0.15, 0.002, 1))
	if attacked.TraceSNR <= legit.TraceSNR {
		t.Errorf("TraceSNR: attack %v <= legit %v", attacked.TraceSNR, legit.TraceSNR)
	}
	if attacked.HighSNR <= legit.HighSNR {
		t.Errorf("HighSNR: attack %v <= legit %v", attacked.HighSNR, legit.HighSNR)
	}
	if attacked.LowEnvCorr <= legit.LowEnvCorr {
		t.Errorf("LowEnvCorr: attack %v <= legit %v", attacked.LowEnvCorr, legit.LowEnvCorr)
	}
}

func TestExtractDegenerateInputs(t *testing.T) {
	f := Extract(audio.Silence(48000, 1))
	if f.TraceSNR != -6 || f.HighSNR != -6 {
		t.Errorf("silence features %v", f)
	}
	f = Extract(&audio.Signal{Rate: 48000})
	if f.TraceSNR != -6 {
		t.Errorf("empty features %v", f)
	}
	// Very short signal: no frames, floors everywhere, no panic.
	f = Extract(audio.Tone(48000, 1000, 0.1, 0.05))
	if math.IsNaN(f.TraceSNR) || math.IsNaN(f.LowEnvCorr) {
		t.Errorf("NaN features on short input: %v", f)
	}
}

func TestFeatureVectorShape(t *testing.T) {
	f := Features{TraceSNR: 1, HighSNR: 2, LowEnvCorr: 3, Sub50LogRatio: 4, HighLogRatio: 5}
	v := f.Vector()
	want := []float64{1, 2, 3, 4, 5}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("Vector order mismatch at %d", i)
		}
	}
	if len(FeatureNames()) != len(v) {
		t.Fatal("FeatureNames length mismatch")
	}
	if f.String() == "" {
		t.Fatal("String empty")
	}
}

// gaussianCloud builds two linearly separable classes for classifier
// tests.
func gaussianCloud(n int, seed int64, sep float64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	var out []Sample
	for i := 0; i < n; i++ {
		attack := i%2 == 0
		base := 0.0
		if attack {
			base = sep
		}
		x := []float64{
			base + rng.NormFloat64(),
			base/2 + rng.NormFloat64(),
			rng.NormFloat64(), // uninformative dimension
		}
		out = append(out, Sample{X: x, Attack: attack})
	}
	return out
}

func TestSVMSeparatesClouds(t *testing.T) {
	train := gaussianCloud(400, 1, 4)
	test := gaussianCloud(200, 2, 4)
	svm, err := TrainSVM(train, 0.01, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	var pred, truth []bool
	for _, s := range test {
		pred = append(pred, svm.Predict(s.X))
		truth = append(truth, s.Attack)
	}
	m := Evaluate(pred, truth)
	if m.Accuracy < 0.95 {
		t.Fatalf("SVM accuracy %v", m.Accuracy)
	}
}

func TestLogisticSeparatesClouds(t *testing.T) {
	train := gaussianCloud(400, 3, 4)
	test := gaussianCloud(200, 4, 4)
	lr, err := TrainLogistic(train, 0.5, 300)
	if err != nil {
		t.Fatal(err)
	}
	var pred, truth []bool
	correctProb := 0
	for _, s := range test {
		pred = append(pred, lr.Predict(s.X))
		truth = append(truth, s.Attack)
		p := lr.Probability(s.X)
		if (p > 0.5) == s.Attack {
			correctProb++
		}
	}
	m := Evaluate(pred, truth)
	if m.Accuracy < 0.95 {
		t.Fatalf("logistic accuracy %v", m.Accuracy)
	}
	if p := lr.Probability(test[0].X); p < 0 || p > 1 {
		t.Fatalf("probability %v out of range", p)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := TrainSVM(nil, 0.01, 5, 1); err == nil {
		t.Error("empty SVM training should fail")
	}
	if _, err := TrainLogistic(nil, 0.1, 5); err == nil {
		t.Error("empty logistic training should fail")
	}
	bad := []Sample{{X: []float64{1, 2}}, {X: []float64{1}}}
	if _, err := TrainSVM(bad, 0.01, 5, 1); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestEvaluateCounts(t *testing.T) {
	pred := []bool{true, true, false, false}
	truth := []bool{true, false, true, false}
	m := Evaluate(pred, truth)
	if m.TP != 1 || m.FP != 1 || m.FN != 1 || m.TN != 1 {
		t.Fatalf("%+v", m)
	}
	if m.Accuracy != 0.5 || m.Precision != 0.5 || m.Recall != 0.5 || m.F1 != 0.5 {
		t.Fatalf("%+v", m)
	}
}

func TestROCAndAUC(t *testing.T) {
	// Perfectly separable scores: AUC = 1.
	scores := []float64{0.9, 0.8, 0.7, 0.2, 0.1, 0.0}
	truth := []bool{true, true, true, false, false, false}
	curve := ROC(scores, truth)
	if auc := AUC(curve); math.Abs(auc-1) > 1e-9 {
		t.Fatalf("separable AUC %v", auc)
	}
	// Anti-separable: AUC = 0.
	truthInv := []bool{false, false, false, true, true, true}
	if auc := AUC(ROC(scores, truthInv)); math.Abs(auc) > 1e-9 {
		t.Fatalf("inverted AUC %v", auc)
	}
	// Random-ish: AUC near 0.5.
	rng := rand.New(rand.NewSource(5))
	var s []float64
	var tr []bool
	for i := 0; i < 2000; i++ {
		s = append(s, rng.Float64())
		tr = append(tr, rng.Float64() < 0.5)
	}
	if auc := AUC(ROC(s, tr)); math.Abs(auc-0.5) > 0.05 {
		t.Fatalf("random AUC %v", auc)
	}
}

func TestROCMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s []float64
		var tr []bool
		for i := 0; i < 50; i++ {
			s = append(s, rng.NormFloat64())
			tr = append(tr, rng.Float64() < 0.4)
		}
		curve := ROC(s, tr)
		for i := 1; i < len(curve); i++ {
			if curve[i].FPR < curve[i-1].FPR-1e-12 || curve[i].TPR < curve[i-1].TPR-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStandardizerZeroStd(t *testing.T) {
	samples := []Sample{
		{X: []float64{1, 5}, Attack: true},
		{X: []float64{1, -5}, Attack: false},
		{X: []float64{1, 5.1}, Attack: true},
		{X: []float64{1, -5.1}, Attack: false},
	}
	svm, err := TrainSVM(samples, 0.01, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Constant feature must not produce NaNs.
	if math.IsNaN(svm.Score([]float64{1, 5})) {
		t.Fatal("NaN score with constant feature")
	}
	if !svm.Predict([]float64{1, 5}) || svm.Predict([]float64{1, -5}) {
		t.Fatal("classifier failed on the informative feature")
	}
}
