// Package defense implements the paper's software-only detection of
// inaudible voice command injection.
//
// A command delivered through microphone non-linearity is y ~ m(t) +
// beta*m(t)^2 (+ noise): the quadratic term that demodulated the
// ultrasound necessarily also contributes the squared baseband. That
// second copy leaves ineradicable traces:
//
//   - power in the infra-voice trace band (16-60 Hz, below any speech
//     fundamental), because m^2 concentrates energy at the envelope rate;
//   - correlation between that low band and the squared envelope of the
//     voice band — they are literally the same physical quantity;
//   - excess energy above the speech band (m^2 occupies [0, 2B]).
//
// Room noise masks raw band powers, so the discriminative features are
// noise-subtracted: the m^2 traces switch on and off with the speech,
// while ambient noise is stationary, so power measured in silent frames
// estimates the noise floor that active-frame power is corrected by.
//
// A linear classifier over these features separates attack recordings
// from legitimate ones; package-level helpers also implement the adaptive
// attacker that tries to cancel the traces, and the analysis showing the
// residue it cannot remove.
package defense

import (
	"fmt"
	"math"

	"inaudible/internal/audio"
	"inaudible/internal/dsp"
)

// Features is the defense's per-recording feature vector.
type Features struct {
	// TraceSNR is log10 of the noise-subtracted trace-band (16-60 Hz)
	// power over the noise-subtracted voice-band power: how much
	// speech-synchronised energy lives below any plausible F0, relative
	// to the speech itself.
	TraceSNR float64
	// HighSNR is the same measure for the 8.5 kHz..Nyquist band — the
	// upper half of the m^2 spectrum, which legitimate speech reaching a
	// 8 kHz-bounded channel does not populate.
	HighSNR float64
	// LowEnvCorr is the peak correlation between the trace-band waveform
	// and the band-limited squared envelope of the voice band.
	LowEnvCorr float64
	// Sub50LogRatio is the raw log10 trace-band/voice-band power ratio
	// (no noise subtraction); useful in quiet conditions.
	Sub50LogRatio float64
	// HighLogRatio is the raw log10 high-band/voice-band power ratio.
	HighLogRatio float64
}

// Vector returns the features in canonical order for the classifiers.
func (f Features) Vector() []float64 {
	return []float64{f.TraceSNR, f.HighSNR, f.LowEnvCorr, f.Sub50LogRatio, f.HighLogRatio}
}

// FeatureNames returns human-readable names matching Vector()'s order.
func FeatureNames() []string {
	return []string{"trace-snr", "high-snr", "low-env-corr", "sub50-log-ratio", "high-log-ratio"}
}

// String implements fmt.Stringer.
func (f Features) String() string {
	return fmt.Sprintf("Features(trace=%.2f high=%.2f corr=%.2f sub50=%.2f hraw=%.2f)",
		f.TraceSNR, f.HighSNR, f.LowEnvCorr, f.Sub50LogRatio, f.HighLogRatio)
}

const (
	traceLo = 16.0 // bottom of the trace band (just above the mic's AC corner)
	traceHi = 60.0 // top of the trace band (below any speech F0, >= ~85 Hz)
	voiceLo = 60.0
	voiceHi = 8000.0
	highLo  = 8500.0
)

// Analysis geometry shared by the batch extractor and the streaming
// analyzer (internal/stream); keeping them here is what lets the
// streaming path reproduce batch features on identical input.
const (
	// ExtractFFTSize is the Welch transform length of Extract.
	ExtractFFTSize = 16384
	// FrameFFTSize and FrameHop are the STFT geometry of the
	// noise-subtracted frame analysis.
	FrameFFTSize = 4096
	FrameHop     = FrameFFTSize / 2
	// FloorLog is the log-ratio floor reported when a band has no
	// speech-synchronised energy (or the recording is silent/too short).
	FloorLog = -6.0
	// CorrMaxLagSeconds bounds the trace/envelope correlation lag search.
	CorrMaxLagSeconds = 0.05
)

// BandPlan reports the analysis band edges in Hz.
type BandPlan struct {
	TraceLo, TraceHi float64 // infra-voice trace band
	VoiceLo, VoiceHi float64 // speech band
	HighLo           float64 // bottom of the super-voice band
}

// Bands returns the band plan used by Extract; HighTop (the top of the
// super-voice band) depends on the recording rate: rate/2 * 0.95.
func Bands() BandPlan {
	return BandPlan{TraceLo: traceLo, TraceHi: traceHi, VoiceLo: voiceLo, VoiceHi: voiceHi, HighLo: highLo}
}

// HighTop returns the top of the super-voice band for a given sample
// rate, matching Extract's choice.
func HighTop(rate float64) float64 { return rate / 2 * 0.95 }

// Extract computes the defense features of a recording (digital signal at
// the device's ADC rate).
func Extract(rec *audio.Signal) Features {
	var f Features
	if rec.Len() == 0 || rec.RMS() == 0 {
		f.TraceSNR, f.HighSNR = FloorLog, FloorLog
		f.Sub50LogRatio, f.HighLogRatio = FloorLog, FloorLog
		return f
	}
	const fftSize = ExtractFFTSize
	psd := dsp.Welch(rec.Samples, fftSize)
	voice := dsp.BandPower(psd, rec.Rate, fftSize, voiceLo, voiceHi)
	if voice <= 0 {
		f.TraceSNR, f.HighSNR = FloorLog, FloorLog
		f.Sub50LogRatio, f.HighLogRatio = FloorLog, FloorLog
		return f
	}
	hiTop := HighTop(rec.Rate)
	sub50 := dsp.BandPower(psd, rec.Rate, fftSize, traceLo, traceHi)
	var high float64
	if hiTop > highLo {
		high = dsp.BandPower(psd, rec.Rate, fftSize, highLo, hiTop)
	}
	logRatio := func(p float64) float64 { return math.Log10((p + 1e-18) / voice) }
	f.Sub50LogRatio = logRatio(sub50)
	f.HighLogRatio = logRatio(high)
	f.LowEnvCorr = lowEnvelopeCorrelation(rec)
	f.TraceSNR, f.HighSNR = noiseSubtractedRatios(rec, hiTop)
	return f
}

// noiseSubtractedRatios measures the speech-synchronised (active minus
// silent) power in the trace and high bands, normalised by the
// speech-synchronised voice-band power. Frames whose voice-band power is
// above the median count as active; the silent frames estimate the
// stationary noise floor. The first and last 10% of frames are excluded
// (transients, fades).
func noiseSubtractedRatios(rec *audio.Signal, hiTop float64) (traceSNR, highSNR float64) {
	const fftSize = FrameFFTSize
	const floorLog = FloorLog
	traceSNR, highSNR = floorLog, floorLog
	if rec.Len() < 4*fftSize {
		return
	}
	sg := dsp.STFT(rec.Samples, rec.Rate, fftSize, FrameHop)
	n := sg.Frames()
	skip := n / 10
	frames := sg.Power[skip : n-skip]
	if len(frames) < 8 {
		return
	}
	band := func(row []float64, lo, hi float64) float64 {
		k0 := dsp.FrequencyBin(lo, fftSize, rec.Rate)
		k1 := dsp.FrequencyBin(hi, fftSize, rec.Rate)
		var s float64
		for k := k0; k <= k1 && k < len(row); k++ {
			s += row[k]
		}
		return s
	}
	m := len(frames)
	voiceP := make([]float64, m)
	lowP := make([]float64, m)
	highP := make([]float64, m)
	for i, row := range frames {
		voiceP[i] = band(row, voiceLo, voiceHi)
		lowP[i] = band(row, traceLo, traceHi)
		if hiTop > highLo {
			highP[i] = band(row, highLo, hiTop)
		}
	}
	med := median(voiceP)
	var act, sil struct {
		voice, low, high float64
		n                int
	}
	for i := range voiceP {
		if voiceP[i] > med {
			act.voice += voiceP[i]
			act.low += lowP[i]
			act.high += highP[i]
			act.n++
		} else {
			sil.voice += voiceP[i]
			sil.low += lowP[i]
			sil.high += highP[i]
			sil.n++
		}
	}
	if act.n == 0 || sil.n == 0 {
		return
	}
	mean := func(sum float64, n int) float64 { return sum / float64(n) }
	cleanVoice := mean(act.voice, act.n) - mean(sil.voice, sil.n)
	if cleanVoice <= 0 {
		return
	}
	snr := func(a, s float64) float64 {
		diff := mean(a, act.n) - mean(s, sil.n)
		if diff <= 0 {
			return floorLog
		}
		v := math.Log10(diff / cleanVoice)
		if v < floorLog {
			return floorLog
		}
		return v
	}
	traceSNR = snr(act.low, sil.low)
	if hiTop > highLo {
		highSNR = snr(act.high, sil.high)
	}
	return
}

// median returns the median of x (copying, not mutating).
func median(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	c := make([]float64, len(x))
	copy(c, x)
	// Insertion sort is fine for frame counts.
	for i := 1; i < len(c); i++ {
		for j := i; j > 0 && c[j] < c[j-1]; j-- {
			c[j], c[j-1] = c[j-1], c[j]
		}
	}
	return c[len(c)/2]
}

// lowEnvelopeCorrelation measures how well the recording's trace band
// tracks the squared envelope of its voice band. For an attack recording
// both derive from the same m(t)^2 term, so the correlation is high; for
// legitimate speech the low band is unrelated noise.
func lowEnvelopeCorrelation(rec *audio.Signal) float64 {
	rate := rec.Rate
	vb := dsp.BandPassFIR(1023, voiceLo/rate, voiceHi/rate).Apply(rec.Samples)
	env := dsp.Envelope(vb)
	for i, v := range env {
		env[i] = v * v
	}
	// Band-limit both to the trace band.
	low := dsp.BandPassFIR(4095, traceLo/rate, traceHi/rate).Apply(rec.Samples)
	envLow := dsp.BandPassFIR(4095, traceLo/rate, traceHi/rate).Apply(env)
	// Allow up to 50 ms of relative delay (filter chains differ).
	maxLag := int(rate * CorrMaxLagSeconds)
	c, _ := dsp.MaxCorrelationLag(low, envLow, maxLag)
	return c
}
