package nonlinear

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"inaudible/internal/audio"
	"inaudible/internal/dsp"
)

func TestPolynomialEval(t *testing.T) {
	p := NewPolynomial(2, 3, 4) // 2x + 3x^2 + 4x^3
	if got := p.Eval(1); got != 9 {
		t.Fatalf("Eval(1)=%v", got)
	}
	if got := p.Eval(0); got != 0 {
		t.Fatalf("Eval(0)=%v", got)
	}
	if got := p.Eval(-1); got != -2+3-4 {
		t.Fatalf("Eval(-1)=%v", got)
	}
}

func TestLinearIsLinear(t *testing.T) {
	p := Linear(3)
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
			return true // avoid float overflow, not a linearity question
		}
		return math.Abs(p.Eval(x)-3*x) < 1e-9*(1+math.Abs(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuadraticProducesHarmonic(t *testing.T) {
	// A quadratic driven by a tone at f produces a component at 2f with
	// amplitude g2*a^2/2 (plus DC).
	const rate, f, a = 48000.0, 1000.0, 0.5
	q := Quadratic(1, 0.4)
	tone := audio.Tone(rate, f, a, 1)
	out := q.Apply(tone.Samples)
	h2 := dsp.ToneAmplitude(out, 2*f, rate)
	want := 0.4 * a * a / 2
	if math.Abs(h2-want)/want > 0.02 {
		t.Fatalf("2nd harmonic amplitude %v, want %v", h2, want)
	}
}

func TestIntermodulationLandsWherePredicted(t *testing.T) {
	// The paper's core example: 25 kHz + 30 kHz through a quadratic must
	// produce 5 kHz (difference), 55 kHz (sum), 50 kHz and 60 kHz
	// (harmonics), with the amplitudes of Eq. 2.
	const rate = 192000.0
	const a1, a2, g2 = 0.4, 0.3, 0.5
	n := int(rate)
	x := make([]float64, n)
	for i := range x {
		tt := float64(i) / rate
		x[i] = a1*math.Cos(2*math.Pi*25000*tt) + a2*math.Cos(2*math.Pi*30000*tt)
	}
	q := Quadratic(0, g2) // isolate the quadratic term
	y := q.Apply(x)

	wantH1, wantH2, wantIMD := SecondOrderToneAmplitudes(g2, a1, a2)
	checks := []struct {
		freq, want float64
		name       string
	}{
		{50000, wantH1, "2f1 harmonic"},
		{60000, wantH2, "2f2 harmonic"},
		{55000, wantIMD, "f1+f2 sum"},
		{5000, wantIMD, "f2-f1 difference"},
	}
	for _, c := range checks {
		got := dsp.ToneAmplitude(y, c.freq, rate)
		if math.Abs(got-c.want)/c.want > 0.02 {
			t.Errorf("%s at %v Hz: amplitude %v, want %v", c.name, c.freq, got, c.want)
		}
	}
	// And nothing at the input frequencies themselves (pure quadratic).
	if got := dsp.ToneAmplitude(y, 25000, rate); got > 0.01 {
		t.Errorf("fundamental leaked: %v", got)
	}
}

func TestIMDProductsClosedForm(t *testing.T) {
	p := IMDProducts(25000, 30000)
	want := []float64{50000, 60000, 55000, 5000}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("IMDProducts[%d]=%v want %v", i, p[i], want[i])
		}
	}
	if DifferenceFrequency(30000, 25000) != 5000 {
		t.Fatal("DifferenceFrequency")
	}
}

func TestDemodulationGainPrediction(t *testing.T) {
	// AM signal through quadratic: baseband amplitude must match
	// DemodulationGain.
	const rate = 192000.0
	const fc, fm = 30000.0, 2000.0
	const A, m, g2 = 0.5, 0.6, 0.8
	n := int(rate)
	x := make([]float64, n)
	for i := range x {
		tt := float64(i) / rate
		x[i] = A * (1 + m*math.Cos(2*math.Pi*fm*tt)) * math.Cos(2*math.Pi*fc*tt)
	}
	q := Quadratic(0, g2)
	y := q.Apply(x)
	got := dsp.ToneAmplitude(y, fm, rate)
	want := DemodulationGain(g2, A, m)
	if math.Abs(got-want)/want > 0.03 {
		t.Fatalf("demodulated baseband %v, want %v", got, want)
	}
}

func TestApplyVariantsAgree(t *testing.T) {
	p := Cubic(1, 0.2, 0.05)
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 100)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y1 := p.Apply(x)
	y2 := make([]float64, len(x))
	copy(y2, x)
	p.ApplyInPlace(y2)
	for i := range x {
		if y1[i] != y2[i] {
			t.Fatalf("Apply/ApplyInPlace disagree at %d", i)
		}
	}
}

func TestSoftClipBehaviour(t *testing.T) {
	sc := SoftClip{Gain: 2, Limit: 1}
	// Small signal: approximately linear with gain 2.
	if got := sc.Eval(0.01); math.Abs(got-0.02) > 1e-4 {
		t.Errorf("small-signal gain: %v", got)
	}
	// Large signal: saturates at Limit.
	if got := sc.Eval(100); math.Abs(got-1) > 1e-6 {
		t.Errorf("saturation: %v", got)
	}
	// Odd symmetry.
	if sc.Eval(0.5) != -sc.Eval(-0.5) {
		t.Error("soft clip must be odd")
	}
	// Degenerate limit.
	if (SoftClip{Gain: 1, Limit: 0}).Eval(1) != 0 {
		t.Error("zero-limit clip should output 0")
	}
	y := sc.Apply([]float64{0.1, -0.1})
	if y[0] != sc.Eval(0.1) || y[1] != sc.Eval(-0.1) {
		t.Error("Apply mismatch")
	}
}

func TestSoftClipGeneratesOddHarmonics(t *testing.T) {
	sc := SoftClip{Gain: 1, Limit: 0.3} // heavy saturation for unit input
	thd := THD(sc.Eval, 0.01, 9)
	if thd < 0.05 {
		t.Fatalf("expected significant THD from saturation, got %v", thd)
	}
	// Third harmonic must dominate the second (odd non-linearity).
	const n = 8192
	x := make([]float64, n)
	for i := range x {
		x[i] = sc.Eval(math.Sin(2 * math.Pi * 0.01 * float64(i)))
	}
	h2 := goertzelAmp(x, 0.02)
	h3 := goertzelAmp(x, 0.03)
	if h3 < 10*h2 {
		t.Fatalf("odd clipper: h2=%v h3=%v", h2, h3)
	}
}

func TestTHDOfLinearIsZero(t *testing.T) {
	p := Linear(5)
	// Bin-aligned frequency (104/8192) so Goertzel probes see no spectral
	// leakage from the fundamental.
	if thd := THD(p.Eval, 104.0/8192.0, 9); thd > 1e-9 {
		t.Fatalf("linear THD %v", thd)
	}
}

func TestPolynomialSuperpositionFailure(t *testing.T) {
	// Sanity: non-linear systems violate superposition — this is the whole
	// point. Verify f(a+b) != f(a)+f(b) for the quadratic.
	q := Quadratic(1, 1)
	a, b := 0.3, 0.4
	if math.Abs(q.Eval(a+b)-(q.Eval(a)+q.Eval(b))) < 1e-12 {
		t.Fatal("quadratic unexpectedly satisfied superposition")
	}
}

func TestNewPolynomialPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPolynomial()
}

func TestPolynomialString(t *testing.T) {
	if s := Quadratic(1, 0.1).String(); s == "" {
		t.Fatal("empty String")
	}
	if Quadratic(1, 0.1).Order() != 2 {
		t.Fatal("Order")
	}
}
