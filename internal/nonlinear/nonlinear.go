// Package nonlinear models the memoryless non-linear transfer functions of
// acoustic transducers and amplifiers — the physical root cause the paper
// exploits (Eq. 1):
//
//	Sout = G1*Sin + G2*Sin^2 + G3*Sin^3 + ...
//
// The quadratic term demodulates amplitude-modulated ultrasound at the
// victim microphone (intermodulation, Eq. 2); the same term at the
// *attacker's speaker* produces the audible leakage that caps the
// single-speaker attack range and motivates the paper's multi-speaker
// design. The package also provides closed-form predictors for where
// harmonic and intermodulation products land, which the property tests and
// the defense analysis rely on.
package nonlinear

import (
	"fmt"
	"math"
)

// Polynomial is a memoryless polynomial transfer function
// y = G[0]*x + G[1]*x^2 + G[2]*x^3 + ... (note: no DC term; G[i] is the
// coefficient of x^(i+1), matching the paper's G1, G2, G3 indexing).
type Polynomial struct {
	G []float64
}

// NewPolynomial builds a transfer function from the paper's G1, G2, ...
// coefficients.
func NewPolynomial(g ...float64) *Polynomial {
	if len(g) == 0 {
		panic("nonlinear: need at least the linear coefficient G1")
	}
	out := &Polynomial{G: make([]float64, len(g))}
	copy(out.G, g)
	return out
}

// Linear returns a perfectly linear transfer with gain g1 — the idealised
// device used as a control in ablation experiments.
func Linear(g1 float64) *Polynomial { return NewPolynomial(g1) }

// Quadratic returns the canonical second-order model G1*x + G2*x^2 used
// throughout the paper's analysis.
func Quadratic(g1, g2 float64) *Polynomial { return NewPolynomial(g1, g2) }

// Cubic returns a third-order model G1*x + G2*x^2 + G3*x^3.
func Cubic(g1, g2, g3 float64) *Polynomial { return NewPolynomial(g1, g2, g3) }

// Eval applies the transfer function to a single sample.
func (p *Polynomial) Eval(x float64) float64 {
	// Horner evaluation of x*(G1 + x*(G2 + x*(G3 + ...))).
	acc := 0.0
	for i := len(p.G) - 1; i >= 0; i-- {
		acc = acc*x + p.G[i]
	}
	return acc * x
}

// Apply maps the transfer function over a signal, returning a new slice.
func (p *Polynomial) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = p.Eval(v)
	}
	return out
}

// ApplyInPlace maps the transfer function over x in place and returns x.
func (p *Polynomial) ApplyInPlace(x []float64) []float64 {
	for i, v := range x {
		x[i] = p.Eval(v)
	}
	return x
}

// Order returns the polynomial order (highest power of x).
func (p *Polynomial) Order() int { return len(p.G) }

// String implements fmt.Stringer.
func (p *Polynomial) String() string {
	return fmt.Sprintf("Polynomial(order %d, G=%v)", len(p.G), p.G)
}

// SoftClip is a tanh saturating non-linearity with small-signal gain g and
// clipping level limit: y = limit * tanh(g*x/limit). Models amplifier
// saturation at high drive levels, where odd-order distortion dominates.
type SoftClip struct {
	Gain  float64
	Limit float64
}

// Eval applies the soft clipper to one sample.
func (s SoftClip) Eval(x float64) float64 {
	if s.Limit <= 0 {
		return 0
	}
	return s.Limit * math.Tanh(s.Gain*x/s.Limit)
}

// Apply maps the soft clipper over a signal, returning a new slice.
func (s SoftClip) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = s.Eval(v)
	}
	return out
}

// IMDProducts returns the second-order intermodulation and harmonic
// frequencies produced by a quadratic non-linearity driven with tones at
// f1 and f2 (paper Eq. 2): 2f1, 2f2, f1+f2 and |f1-f2|. DC is omitted.
func IMDProducts(f1, f2 float64) []float64 {
	return []float64{2 * f1, 2 * f2, f1 + f2, math.Abs(f1 - f2)}
}

// DifferenceFrequency returns |f1 - f2| — the product that lands in the
// audible band when both tones are ultrasonic, the core of the attack.
func DifferenceFrequency(f1, f2 float64) float64 { return math.Abs(f1 - f2) }

// SecondOrderToneAmplitudes predicts the amplitudes of the quadratic
// products for an input a1*cos(w1 t) + a2*cos(w2 t) through y = g2*x^2:
// the harmonic at 2f1 has amplitude g2*a1^2/2, at 2f2 g2*a2^2/2, and both
// intermodulation products (f1±f2) have amplitude g2*a1*a2.
func SecondOrderToneAmplitudes(g2, a1, a2 float64) (h1, h2, imd float64) {
	return g2 * a1 * a1 / 2, g2 * a2 * a2 / 2, g2 * a1 * a2
}

// DemodulationGain predicts the baseband amplitude recovered by a quadratic
// term g2 from an AM signal (1 + m*cos(wm t)) * A*cos(wc t) with carrier
// amplitude A and modulation depth m: the wanted baseband component at wm
// has amplitude g2 * A^2 * m. (The cross term 2 * (A)*(A*m/2) * g2.)
func DemodulationGain(g2, carrierAmp, depth float64) float64 {
	return g2 * carrierAmp * carrierAmp * depth
}

// THD computes total harmonic distortion of a transfer function driven by
// a unit-amplitude sinusoid at normalised frequency f0 (cycles/sample),
// summing harmonics 2..maxHarmonic, as an amplitude ratio.
func THD(eval func(float64) float64, f0 float64, maxHarmonic int) float64 {
	const n = 8192
	x := make([]float64, n)
	for i := range x {
		x[i] = eval(math.Sin(2 * math.Pi * f0 * float64(i)))
	}
	fund := goertzelAmp(x, f0)
	if fund == 0 {
		return 0
	}
	var sum float64
	for h := 2; h <= maxHarmonic; h++ {
		fh := f0 * float64(h)
		if fh >= 0.5 {
			break
		}
		a := goertzelAmp(x, fh)
		sum += a * a
	}
	return math.Sqrt(sum) / fund
}

// goertzelAmp estimates the amplitude of the component at normalised
// frequency f in x (duplicated from dsp to keep this leaf package
// dependency-free).
func goertzelAmp(x []float64, f float64) float64 {
	n := len(x)
	w := 2 * math.Pi * f
	coeff := 2 * math.Cos(w)
	var s1, s2 float64
	for _, v := range x {
		s0 := v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	power := (s1*s1 + s2*s2 - coeff*s1*s2) / (float64(n) * float64(n))
	return 2 * math.Sqrt(power)
}
