package stream

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"inaudible/internal/journal"
	"inaudible/internal/telemetry"
	"inaudible/internal/trace"
)

// TestJournaledSessionEndToEnd drives real sessions through a
// journaled server and asserts the full durability loop: sealed traces
// reach the WAL over the shard sinks, the /journal forensic plane
// serves them, /fleet carries the journal health block, and a
// read-only reopen replays the stored feature frames through the same
// detector to bit-identical verdicts.
func TestJournaledSessionEndToEnd(t *testing.T) {
	const rate = 48000.0
	const sessions = 3
	dir := t.TempDir()
	det := testDetector(t)
	reg := telemetry.NewRegistry()
	j, err := journal.Open(journal.Config{
		Dir: dir, Node: "n0", Model: "test-detector", Build: "test",
		Metrics: reg,
	})
	if err != nil {
		t.Fatalf("Open journal: %v", err)
	}
	srv := NewServer(ServerConfig{
		Detector:    det,
		MaxSessions: -1,
		Shards:      2,
		Cascade:     true,
		EmitEvery:   25,
		Metrics:     reg,
		Trace:       trace.NewRecorder(trace.Config{}),
		Journal:     j,
		Node:        "n0",
	})
	mux := telemetry.Mux(reg)
	srv.MountIntrospection(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	for i := 0; i < sessions; i++ {
		driveSession(t, srv, rate, attackLike(rate, 1.0, int64(40+i)).Samples)
	}

	// The journal writer is asynchronous to the frame path; wait for the
	// handoff rings to drain.
	deadline := time.Now().Add(10 * time.Second)
	for j.Stats().Records < sessions {
		if time.Now().After(deadline) {
			t.Fatalf("journal holds %d records, want %d", j.Stats().Records, sessions)
		}
		time.Sleep(2 * time.Millisecond)
	}

	var list journal.ListResponse
	getJSON(t, ts.URL, "/journal", &list)
	if len(list.Sessions) != sessions {
		t.Fatalf("/journal lists %d sessions, want %d", len(list.Sessions), sessions)
	}
	if list.Stats.Corrupt != 0 || list.Stats.Dropped != 0 {
		t.Fatalf("journal not clean: %+v", list.Stats)
	}
	top := list.Sessions[0]
	if top.State != "done" || top.Verdicts == 0 || top.Frames == 0 {
		t.Fatalf("listed session incomplete: %+v", top)
	}

	var ev journal.EntryView
	resp := getJSON(t, ts.URL, fmt.Sprintf("/journal/%d", top.Seq), &ev)
	if resp.StatusCode != 200 {
		t.Fatalf("/journal/%d: status %d", top.Seq, resp.StatusCode)
	}
	if ev.Node != "n0" || ev.Model != "test-detector" {
		t.Fatalf("entry not stamped: node=%q model=%q", ev.Node, ev.Model)
	}
	if len(ev.Events) == 0 || len(ev.FrameViews) == 0 {
		t.Fatalf("entry missing events (%d) or frames (%d)", len(ev.Events), len(ev.FrameViews))
	}
	// The final verdict's vector must be the last captured frame.
	last := ev.FrameViews[len(ev.FrameViews)-1]
	if int(last.Verdict) != top.Verdicts-1 {
		t.Fatalf("last frame feeds verdict %d, want final ordinal %d", last.Verdict, top.Verdicts-1)
	}

	var fv FleetView
	getJSON(t, ts.URL, "/fleet", &fv)
	if fv.Journal == nil || fv.Journal.Records < sessions {
		t.Fatalf("/fleet journal block = %+v", fv.Journal)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	j.Close()

	// Reopen read-only (the cmd/replay path) and replay with the same
	// detector: every stored verdict must reproduce bit-for-bit.
	ro, err := journal.Open(journal.Config{Dir: dir, ReadOnly: true})
	if err != nil {
		t.Fatalf("reopen read-only: %v", err)
	}
	defer ro.Close()
	rep, err := ro.Replay(det, journal.ReplayOptions{})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if !rep.Identical || rep.FinalVerdicts != sessions || rep.ScoreMismatch != 0 {
		t.Fatalf("replay with recording detector diverged: %+v", rep)
	}
	if rep.Verdicts == 0 {
		t.Fatal("replay compared no verdicts")
	}
}
