package stream

import (
	"math"
	"sync/atomic"

	"inaudible/internal/telemetry"
)

// FloorController auto-tunes the cascade hot floor from the observed
// frame-energy margin distribution (the fleet_cascade_energy_margin_db
// histogram every cascade session records into). The controller chases
// a setpoint where the fleet's median frame sits HeadroomDB below the
// floor — typical ambience stays in tier 0, while anything unusually
// energetic still clears the floor and escalates. Each Retune looks
// only at the margins observed since the previous Retune (an interval
// delta over the histogram's cumulative buckets, so stale margins
// recorded against long-gone floor values cannot steer the loop),
// moves the floor at most StepDB, and clamps it to [MinDB, MaxDB] so a
// pathological interval can neither blind the cascade nor force it
// permanently hot. FloorDB is a single atomic load, safe to call from
// every shard worker on every frame; Retune is single-caller (the
// server's tuner goroutine).
type FloorController struct {
	cfg  FloorControllerConfig
	bits atomic.Uint64 // float64 bits of the current floor
	prev []uint64      // margin bucket counts at the last Retune
}

// FloorControllerConfig wires a floor controller.
type FloorControllerConfig struct {
	// InitialDB is the starting floor (dBFS, negative); 0 selects -55.
	InitialDB float64
	// MinDB and MaxDB clamp the tuned floor; 0 selects -70 and -40.
	MinDB, MaxDB float64
	// StepDB bounds the per-Retune movement; <= 0 selects 1 dB. With
	// the server's retune cadence this is the slew-rate limit.
	StepDB float64
	// HeadroomDB is the target distance of the median frame below the
	// floor; <= 0 selects 6 dB.
	HeadroomDB float64
	// MinSamples is the minimum number of margin observations an
	// interval needs before it may move the floor; <= 0 selects 200.
	MinSamples uint64
	// Margins is the shared margin histogram the cascades record into
	// (required).
	Margins *telemetry.Histogram
	// Gauge, when non-nil, exports the current floor
	// (fleet_cascade_floor_db).
	Gauge *telemetry.FloatGauge
}

// NewFloorController builds a controller pinned at InitialDB until the
// first effective Retune.
func NewFloorController(cfg FloorControllerConfig) *FloorController {
	if cfg.Margins == nil {
		panic("stream: FloorControllerConfig.Margins is required")
	}
	if cfg.InitialDB == 0 {
		cfg.InitialDB = -55
	}
	if cfg.MinDB == 0 {
		cfg.MinDB = -70
	}
	if cfg.MaxDB == 0 {
		cfg.MaxDB = -40
	}
	if cfg.StepDB <= 0 {
		cfg.StepDB = 1
	}
	if cfg.HeadroomDB <= 0 {
		cfg.HeadroomDB = 6
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 200
	}
	fc := &FloorController{cfg: cfg}
	d := cfg.Margins.Dump()
	fc.prev = make([]uint64, len(d.Counts))
	copy(fc.prev, d.Counts)
	fc.set(cfg.InitialDB)
	return fc
}

// FloorDB returns the current hot floor (dBFS).
func (fc *FloorController) FloorDB() float64 {
	return math.Float64frombits(fc.bits.Load())
}

func (fc *FloorController) set(v float64) {
	if v < fc.cfg.MinDB {
		v = fc.cfg.MinDB
	}
	if v > fc.cfg.MaxDB {
		v = fc.cfg.MaxDB
	}
	fc.bits.Store(math.Float64bits(v))
	if fc.cfg.Gauge != nil {
		fc.cfg.Gauge.Set(v)
	}
}

// Retune inspects the margins observed since the last Retune and moves
// the floor toward the headroom setpoint, rate-limited to StepDB and
// clamped to [MinDB, MaxDB]. Intervals with fewer than MinSamples
// observations leave the floor untouched. It returns the floor now in
// effect.
func (fc *FloorController) Retune() float64 {
	d := fc.cfg.Margins.Dump()
	if len(fc.prev) != len(d.Counts) {
		fc.prev = make([]uint64, len(d.Counts))
	}
	delta := make([]uint64, len(d.Counts))
	var n uint64
	for i, c := range d.Counts {
		delta[i] = c - fc.prev[i]
		n += delta[i]
	}
	copy(fc.prev, d.Counts)
	if n < fc.cfg.MinSamples {
		return fc.FloorDB()
	}
	// p50 of the interval's margins, by the same covering-bucket
	// interpolation Histogram.Quantile uses (signed bounds: the first
	// bucket interpolates up from the histogram's observed minimum).
	p50 := intervalQuantile(d.Bounds, delta, n, 0.5, d.Min)
	// The margin is energy minus the floor in effect when it was
	// observed; the setpoint puts the median HeadroomDB below the
	// floor, i.e. p50 == -HeadroomDB. A hotter-than-target median
	// raises the floor by the (rate-limited) error, a colder one
	// lowers it.
	err := p50 + fc.cfg.HeadroomDB
	if err > fc.cfg.StepDB {
		err = fc.cfg.StepDB
	}
	if err < -fc.cfg.StepDB {
		err = -fc.cfg.StepDB
	}
	fc.set(fc.FloorDB() + err)
	return fc.FloorDB()
}

// intervalQuantile interpolates the q-quantile of one interval's
// per-bucket counts (len(bounds)+1 entries, the last the +Inf overflow
// bucket). obsMin anchors the lower edge of the first bucket when the
// bounds are signed.
func intervalQuantile(bounds []float64, counts []uint64, total uint64, q, obsMin float64) float64 {
	rank := q * float64(total)
	var cum float64
	for i := range counts {
		c := float64(counts[i])
		if cum+c >= rank && c > 0 {
			if i == len(bounds) {
				return bounds[len(bounds)-1]
			}
			var lo float64
			switch {
			case i > 0:
				lo = bounds[i-1]
			case bounds[0] > 0:
				lo = 0
			default:
				lo = obsMin
			}
			hi := bounds[i]
			return lo + (hi-lo)*(rank-cum)/c
		}
		cum += c
	}
	return bounds[len(bounds)-1]
}
