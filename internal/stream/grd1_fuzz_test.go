package stream

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"
)

// FuzzGRD1Framing drives the GRD1 header and chunk framing decoder —
// the hostile-input surface of the wire protocol — with arbitrary
// bytes: it must never panic, never allocate beyond the MaxChunkBytes
// cap, decode only in-range samples, classify every failure as a
// protocol error, and latch EOF. This is the wire twin of sim's
// FuzzSpecLoader hardening; the full server's line discipline over
// these errors is pinned by TestServeRejectsAbsurdHeaders and the churn
// tests (a live server's background shards would make fuzz coverage
// nondeterministic).
func FuzzGRD1Framing(f *testing.F) {
	f.Add(encodePCMSession(legitLike(48000, 0.05, 7), 960))
	f.Add([]byte("GRD1"))
	f.Add([]byte("NOPE----"))
	grd1 := func(rate uint32, tail []byte) []byte {
		var b bytes.Buffer
		b.WriteString(Magic)
		var u32 [4]byte
		binary.LittleEndian.PutUint32(u32[:], rate)
		b.Write(u32[:])
		b.Write(tail)
		return b.Bytes()
	}
	var huge [4]byte
	binary.LittleEndian.PutUint32(huge[:], MaxChunkBytes+2)
	f.Add(grd1(0, nil))
	f.Add(grd1(48000, huge[:]))
	f.Add(grd1(48000, []byte{3, 0, 0, 0, 1, 2, 3}))      // odd chunk
	f.Add(grd1(4_000_000_000, []byte{4, 0, 0, 0, 1, 2})) // absurd rate + truncated chunk
	f.Add(grd1(48000, []byte{0, 0, 0, 0}))               // immediate clean end
	f.Add(grd1(MaxSampleRate+1, []byte{2, 0, 0, 0, 1, 1}))

	// Reused across execs: per-exec allocation churn (and the GC cycles
	// it forces) shows up as nondeterministic coverage that traps the
	// fuzz engine in minimization.
	br := bufio.NewReaderSize(nil, 4096)
	dst := make([]float64, 960)
	scratch := make([]byte, 1024)

	f.Fuzz(func(t *testing.T, data []byte) {
		br.Reset(bytes.NewReader(data))
		magic, err := br.Peek(4)
		if err != nil || string(magic) != Magic {
			// Non-GRD1 sessions: WAV framing has its own fuzz target
			// (audio.FuzzWAVReader), unknown magics fail before framing.
			return
		}
		br.Discard(4)
		var rateBuf [4]byte
		if _, err := io.ReadFull(br, rateBuf[:]); err != nil {
			return
		}
		rate := float64(binary.LittleEndian.Uint32(rateBuf[:]))
		if err := validateRate(rate); err != nil {
			if !errors.Is(err, ErrProtocol) {
				t.Fatalf("rate %g rejected with a non-protocol error: %v", rate, err)
			}
			return
		}

		pcm := pcmChunkReader{br: br, buf: scratch[:]}
		total := 0
		for {
			n, err := pcm.read(dst)
			if n < 0 || n > len(dst) {
				t.Fatalf("read returned %d samples for a %d buffer", n, len(dst))
			}
			for i := 0; i < n; i++ {
				// int16 decoding: -32768/32767 slightly under-runs -1.
				if math.IsNaN(dst[i]) || dst[i] > 1 || dst[i] < -1.0001 {
					t.Fatalf("sample %d decoded out of range: %g", total+i, dst[i])
				}
			}
			total += n
			if err == io.EOF {
				break
			}
			if err != nil {
				if !errors.Is(err, ErrProtocol) {
					t.Fatalf("framing failure not a protocol error: %v", err)
				}
				return
			}
			if total > len(data) { // 2 bytes per sample: cannot exceed input
				t.Fatalf("decoded %d samples from %d input bytes", total, len(data))
			}
		}
		// EOF latches: the terminator ends the session for good.
		for i := 0; i < 3; i++ {
			if n, err := pcm.read(dst); n != 0 || err != io.EOF {
				t.Fatalf("post-EOF read returned (%d, %v)", n, err)
			}
		}
		if cap(pcm.buf) > MaxChunkBytes {
			t.Fatalf("chunk buffer grew to %d, beyond MaxChunkBytes %d", cap(pcm.buf), MaxChunkBytes)
		}
	})
}
