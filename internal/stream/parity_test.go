package stream

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"strings"
	"testing"
	"time"

	"inaudible/internal/audio"
	"inaudible/internal/defense"
)

// directServeSession is the PR 2 serving path, kept verbatim as the
// parity reference: decode the session, feed one Guard inline on this
// goroutine, write verdict lines directly. The fleet-served Server must
// produce byte-identical lines (modulo the wall-clock latency fields).
func directServeSession(t *testing.T, det defense.Detector, session []byte, emitEvery int) []byte {
	t.Helper()
	br := bufio.NewReaderSize(bytes.NewReader(session), 64<<10)
	var out bytes.Buffer
	bw := bufio.NewWriter(&out)

	var rate float64
	var next func([]float64) (int, error)
	magic, err := br.Peek(4)
	if err != nil {
		t.Fatalf("peek: %v", err)
	}
	switch string(magic) {
	case "RIFF":
		wr, err := audio.NewWAVReader(br)
		if err != nil {
			t.Fatalf("wav: %v", err)
		}
		rate = wr.Rate()
		next = func(dst []float64) (int, error) { return wr.Read(dst) }
	case Magic:
		br.Discard(4)
		var rateBuf [4]byte
		if _, err := io.ReadFull(br, rateBuf[:]); err != nil {
			t.Fatalf("rate: %v", err)
		}
		rate = float64(binary.LittleEndian.Uint32(rateBuf[:]))
		pcm := &pcmChunkReader{br: br, buf: make([]byte, 64<<10)}
		next = pcm.read
	default:
		t.Fatalf("unknown magic %q", magic)
	}

	g := NewGuard(GuardConfig{Rate: rate, Detector: det, EmitEvery: emitEvery})
	smp := make([]float64, g.FrameSamples())
	for {
		n, err := next(smp)
		if n > 0 {
			if v := g.Push(smp[:n]); v != nil {
				if werr := writeVerdict(bw, v); werr != nil {
					t.Fatal(werr)
				}
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("read: %v", err)
		}
	}
	v := g.Finalize()
	if err := writeVerdict(bw, &v); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	return out.Bytes()
}

// latencyTail matches the two wall-clock latency fields that close
// every verdict line — the only measurement (not verdict) content.
var latencyTail = regexp.MustCompile(`,"latency_mean_us":[0-9eE.+-]+,"latency_max_us":[0-9eE.+-]+\}$`)

// canonLines splits verdict output into lines with the latency fields
// canonicalized away, failing if any line lacks them.
func canonLines(t *testing.T, raw []byte) []string {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	for i, ln := range lines {
		if !latencyTail.MatchString(ln) {
			t.Fatalf("verdict line %d has no latency tail: %q", i, ln)
		}
		lines[i] = latencyTail.ReplaceAllString(ln, "}")
	}
	return lines
}

func TestFleetParityWithDirectGuard(t *testing.T) {
	// The acceptance pin: fleet-served verdicts are byte-identical to
	// the PR 2 direct path for the same input — every interim line and
	// the final, across both wire formats, including chunk sizes that
	// are not frame-aligned.
	const rate = 48000.0
	det := testDetector(t)

	wavSession := func(sig *audio.Signal) []byte {
		var b bytes.Buffer
		if err := audio.WriteWAV(&b, sig); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}

	cases := []struct {
		name      string
		session   []byte
		emitEvery int
	}{
		{"pcm-attack-interim", encodePCMSession(attackLike(rate, 2.0, 80), 960), 25},
		{"pcm-attack-oddchunks", encodePCMSession(attackLike(rate, 1.7, 81), 1001), 10},
		{"pcm-legit-finalonly", encodePCMSession(legitLike(rate, 1.5, 82), 4096), 0},
		{"wav-legit-interim", wavSession(legitLike(rate, 2.0, 83)), 20},
		{"wav-attack-interim", wavSession(attackLike(rate, 1.3, 84)), 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := canonLines(t, directServeSession(t, det, tc.session, tc.emitEvery))

			srv := NewServer(ServerConfig{Detector: det, EmitEvery: tc.emitEvery, Shards: 2})
			defer shutdownServer(t, srv)
			var out bytes.Buffer
			if err := srv.ServeSession(bytes.NewReader(tc.session), &out); err != nil {
				t.Fatalf("ServeSession: %v", err)
			}
			got := canonLines(t, out.Bytes())

			if len(got) != len(want) {
				t.Fatalf("fleet path wrote %d lines, direct path %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("line %d diverged:\nfleet:  %s\ndirect: %s", i, got[i], want[i])
				}
			}
		})
	}
}

func shutdownServer(t testing.TB, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func TestServeDegradedUnderOverload(t *testing.T) {
	// One slot, degradation on: while a session pins the slot, the next
	// session is served degraded (VAD + trace band, "degraded":true,
	// never attack), and a third is explicitly rejected — no hangs, no
	// silent drops.
	const rate = 48000.0
	det := testDetector(t)
	srv := NewServer(ServerConfig{Detector: det, MaxSessions: 1, Degrade: true, Shards: 1})
	defer shutdownServer(t, srv)

	// Session 1 occupies the full-service slot: a pipe we keep open.
	pr, pw := io.Pipe()
	hold := encodePCMSession(attackLike(rate, 0.5, 90), 960)
	holdDone := make(chan error, 1)
	go func() {
		var out bytes.Buffer
		holdDone <- srv.ServeSession(pr, &out)
	}()
	// Feed the header + audio but not the terminator, then wait until
	// the fleet has it admitted.
	if _, err := pw.Write(hold[:len(hold)-4]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { full, _ := srv.Fleet().Active(); return full == 1 })

	// Session 2 degrades.
	session := encodePCMSession(attackLike(rate, 1.0, 91), 960)
	var out bytes.Buffer
	if err := srv.ServeSession(bytes.NewReader(session), &out); err != nil {
		t.Fatalf("degraded session: %v", err)
	}
	v := finalVerdict(t, out.Bytes())
	if !v.Degraded {
		t.Fatalf("overload session not marked degraded: %+v", v)
	}
	if v.Attack {
		t.Fatalf("degraded session claimed an attack verdict: %+v", v)
	}
	if v.Samples != int(rate*1.0) {
		t.Fatalf("degraded verdict samples = %d, want %d", v.Samples, int(rate*1.0))
	}
	if v.TraceBandPower == 0 {
		t.Fatalf("degraded verdict lost the trace-band signal: %+v", v)
	}
	if srv.Fleet().Metrics().AdmittedDegraded.Value() != 1 {
		t.Fatalf("degraded admission not counted")
	}

	// Session 3: beyond 2x the cap while both are in flight — explicit
	// rejection. Hold session 2's twin open to pin the degraded slot.
	pr2, pw2 := io.Pipe()
	deg2Done := make(chan error, 1)
	go func() {
		var o bytes.Buffer
		deg2Done <- srv.ServeSession(pr2, &o)
	}()
	if _, err := pw2.Write(hold[:len(hold)-4]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { _, deg := srv.Fleet().Active(); return deg == 1 })

	var out3 bytes.Buffer
	err := srv.ServeSession(bytes.NewReader(session), &out3)
	if err == nil {
		t.Fatalf("third session admitted beyond the degrade ceiling")
	}
	if !strings.Contains(out3.String(), "overloaded") {
		t.Fatalf("rejection line missing explicit overload error: %q", out3.String())
	}
	if srv.Fleet().Metrics().Rejected.Value() == 0 {
		t.Fatalf("rejection not counted")
	}

	// Release the held sessions; both must still complete cleanly.
	var term [4]byte
	pw.Write(term[:])
	pw.Close()
	pw2.Write(term[:])
	pw2.Close()
	if err := <-holdDone; err != nil {
		t.Fatalf("held session: %v", err)
	}
	if err := <-deg2Done; err != nil {
		t.Fatalf("held degraded session: %v", err)
	}
}

// parseFinal extracts the last verdict line, goroutine-safe (no
// testing.T calls).
func parseFinal(out []byte) (wireVerdict, error) {
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	var v wireVerdict
	if len(lines) == 0 {
		return v, fmt.Errorf("no verdict lines")
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &v); err != nil {
		return v, fmt.Errorf("parsing %q: %w", lines[len(lines)-1], err)
	}
	if !v.Final {
		return v, fmt.Errorf("last line not final: %q", lines[len(lines)-1])
	}
	return v, nil
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestServerShutdownDrainsInFlight(t *testing.T) {
	// Shutdown after the listener closes: the in-flight session still
	// delivers its final verdict (drain, not kill).
	const rate = 48000.0
	det := testDetector(t)
	srv := NewServer(ServerConfig{Detector: det, Workers: 2})
	session := encodePCMSession(legitLike(rate, 1.0, 95), 960)

	pr, pw := io.Pipe()
	done := make(chan struct {
		out []byte
		err error
	}, 1)
	go func() {
		var out bytes.Buffer
		err := srv.ServeSession(pr, &out)
		done <- struct {
			out []byte
			err error
		}{out.Bytes(), err}
	}()
	if _, err := pw.Write(session[:len(session)/2]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { full, _ := srv.Fleet().Active(); return full == 1 })

	shutdown := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdown <- srv.Shutdown(ctx)
	}()
	// The session finishes while shutdown waits.
	if _, err := pw.Write(session[len(session)/2:]); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	res := <-done
	if res.err != nil {
		t.Fatalf("in-flight session during shutdown: %v", res.err)
	}
	if v := finalVerdict(t, res.out); !v.Final {
		t.Fatalf("no final verdict from drained session")
	}
	if err := <-shutdown; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// After shutdown, new sessions get an explicit error line.
	var out bytes.Buffer
	if err := srv.ServeSession(bytes.NewReader(session), &out); err == nil {
		t.Fatalf("session admitted after shutdown")
	}
	if !strings.Contains(out.String(), "closed") {
		t.Fatalf("post-shutdown error line: %q", out.String())
	}
}

func TestServeRejectsAbsurdHeaders(t *testing.T) {
	det := testDetector(t)
	srv := NewServer(ServerConfig{Detector: det})
	defer shutdownServer(t, srv)

	grd1 := func(rate uint32, chunks ...[]byte) []byte {
		var b bytes.Buffer
		b.WriteString(Magic)
		var u32 [4]byte
		binary.LittleEndian.PutUint32(u32[:], rate)
		b.Write(u32[:])
		for _, c := range chunks {
			b.Write(c)
		}
		return b.Bytes()
	}
	chunk := func(n uint32, payload int) []byte {
		var b bytes.Buffer
		var u32 [4]byte
		binary.LittleEndian.PutUint32(u32[:], n)
		b.Write(u32[:])
		b.Write(make([]byte, payload))
		return b.Bytes()
	}

	cases := map[string][]byte{
		"rate-zero":      grd1(0),
		"rate-low":       grd1(8000),
		"rate-absurd":    grd1(4_000_000_000),
		"rate-above-max": grd1(MaxSampleRate + 1),
		"chunk-huge":     grd1(48000, chunk(MaxChunkBytes+2, 0)),
		"chunk-odd":      grd1(48000, chunk(3, 3)),
		"chunk-trunc":    grd1(48000, chunk(960, 100)),
	}
	for name, session := range cases {
		t.Run(name, func(t *testing.T) {
			var out bytes.Buffer
			err := srv.ServeSession(bytes.NewReader(session), &out)
			if err == nil {
				t.Fatalf("absurd header accepted")
			}
			if !strings.Contains(err.Error(), "malformed session") {
				t.Fatalf("error not a protocol error: %v", err)
			}
			if !strings.Contains(out.String(), "error") {
				t.Fatalf("no error line written: %q", out.String())
			}
		})
	}
	if srv.Sessions() != int64(len(cases)) {
		t.Fatalf("session counter = %d, want %d", srv.Sessions(), len(cases))
	}
	if full, deg := srv.Fleet().Active(); full != 0 || deg != 0 {
		t.Fatalf("malformed sessions leaked admissions: %d/%d", full, deg)
	}
}

func TestServeChurnUnderRace(t *testing.T) {
	// Sessions connecting and disconnecting (some mid-stream) while the
	// fleet serves — the serving half of the race-mode gate, now with
	// shard churn instead of a worker pool.
	const rate = 48000.0
	det := testDetector(t)
	srv := NewServer(ServerConfig{Detector: det, MaxSessions: -1, Shards: 3, EmitEvery: 20})
	defer shutdownServer(t, srv)

	attack := encodePCMSession(attackLike(rate, 1.0, 70), 960)
	legit := encodePCMSession(legitLike(rate, 1.0, 71), 960)

	const clients = 6
	const perClient = 4
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			for i := 0; i < perClient; i++ {
				session := attack
				wantAttack := true
				if (c+i)%2 == 1 {
					session = legit
					wantAttack = false
				}
				if (c+i)%5 == 4 {
					// Hard disconnect mid-session: truncated stream.
					var out bytes.Buffer
					if err := srv.ServeSession(bytes.NewReader(session[:len(session)/3]), &out); err == nil {
						errs <- fmt.Errorf("client %d: truncated session did not error", c)
						return
					}
					continue
				}
				var out bytes.Buffer
				if err := srv.ServeSession(bytes.NewReader(session), &out); err != nil {
					errs <- fmt.Errorf("client %d session %d: %v", c, i, err)
					return
				}
				v, err := parseFinal(out.Bytes())
				if err != nil {
					errs <- fmt.Errorf("client %d session %d: %v", c, i, err)
					return
				}
				if v.Attack != wantAttack {
					errs <- fmt.Errorf("client %d session %d: attack=%v want %v", c, i, v.Attack, wantAttack)
					return
				}
			}
			errs <- nil
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if full, deg := srv.Fleet().Active(); full != 0 || deg != 0 {
		t.Fatalf("churn leaked sessions: %d/%d", full, deg)
	}
	m := srv.Fleet().Metrics()
	if m.Aborted.Value() == 0 {
		t.Fatalf("expected aborted sessions from mid-stream disconnects")
	}
	if m.Finished.Value() == 0 || m.Frames.Value() == 0 {
		t.Fatalf("fleet served nothing: %+v finished, %d frames", m.Finished.Value(), m.Frames.Value())
	}
}
