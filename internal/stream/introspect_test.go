package stream

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"inaudible/internal/telemetry"
	"inaudible/internal/trace"
)

// driveSession feeds a signal through one fleet session of srv and
// returns the final verdict (failing the test if none arrives).
func driveSession(t *testing.T, srv *Server, rate float64, src []float64) *Verdict {
	t.Helper()
	sess, err := srv.Fleet().Open(rate)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for off := 0; off < len(src); {
		buf, err := sess.NextFrame()
		if err != nil {
			t.Fatalf("NextFrame: %v", err)
		}
		n := copy(buf, src[off:])
		sess.Publish(n)
		off += n
		// Keep the event channel drained so long sessions cannot stall.
		for {
			select {
			case <-sess.Events():
				continue
			default:
			}
			break
		}
	}
	if err := sess.CloseSend(); err != nil {
		t.Fatalf("CloseSend: %v", err)
	}
	var final *Verdict
	for ev := range sess.Events() {
		if v := ev.(*Verdict); v.Final {
			final = v
		}
	}
	if final == nil {
		t.Fatal("session ended without a final verdict")
	}
	return final
}

// getJSON fetches base+path and decodes it into out.
func getJSON(t *testing.T, base, path string, out interface{}) *http.Response {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding: %v", path, err)
		}
	}
	return resp
}

// TestIntrospectionEndToEnd drives a session through admission →
// cascade escalation → final verdict and asserts the flight recorder's
// /sessions/{id} trace contains the expected event sequence, and that
// /shards and /fleet reflect the work.
func TestIntrospectionEndToEnd(t *testing.T) {
	const rate = 48000.0
	reg := telemetry.NewRegistry()
	rec := trace.NewRecorder(trace.Config{})
	drift := trace.NewDriftMonitor(reg)
	srv := NewServer(ServerConfig{
		Detector:    testDetector(t),
		MaxSessions: -1,
		Shards:      1,
		Cascade:     true,
		EmitEvery:   25,
		Metrics:     reg,
		Trace:       rec,
		Drift:       drift,
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	mux := telemetry.Mux(reg)
	srv.MountIntrospection(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	final := driveSession(t, srv, rate, attackLike(rate, 2.5, 40).Samples)
	if final.Cascade == nil || final.Cascade.Escalations == 0 {
		t.Fatalf("attack session never escalated: %+v", final.Cascade)
	}

	var list trace.SessionList
	getJSON(t, ts.URL, "/sessions", &list)
	if len(list.Sessions) != 1 || list.Stats.Completed != 1 {
		t.Fatalf("/sessions = %+v", list)
	}
	sum := list.Sessions[0]
	if sum.State != "done" {
		t.Fatalf("session state %q, want done", sum.State)
	}
	wantNotable := false
	for _, r := range sum.Notable {
		if r == "escalated" {
			wantNotable = true
		}
	}
	if !wantNotable {
		t.Fatalf("escalated session not marked notable: %v", sum.Notable)
	}

	var view trace.SessionView
	getJSON(t, ts.URL, "/sessions/"+itoa(sum.ID), &view)
	order := map[string]int{}
	for i, ev := range view.Events {
		if _, seen := order[ev.Event]; !seen {
			order[ev.Event] = i
		}
	}
	if order["admitted"] != 0 {
		t.Fatalf("trace does not open with admission: %+v", view.Events)
	}
	for _, seq := range [][2]string{
		{"admitted", "escalated"},
		{"escalated", "final_verdict"},
		{"final_verdict", "finalized"},
	} {
		a, okA := order[seq[0]]
		b, okB := order[seq[1]]
		if !okA || !okB || a >= b {
			t.Fatalf("event order violated (%s before %s): %+v", seq[0], seq[1], view.Events)
		}
	}
	esc := view.Events[order["escalated"]]
	if esc.Fields["heat"] <= 0 {
		t.Fatalf("escalation event lacks heat: %+v", esc)
	}
	if _, ok := esc.Fields["energy_margin_db"]; !ok {
		t.Fatalf("escalation event lacks energy margin: %+v", esc)
	}
	fin := view.Events[order["finalized"]]
	if fin.Fields["verdict_latency_us"] <= 0 {
		t.Fatalf("finalized event lacks verdict latency: %+v", fin)
	}

	var shards []map[string]interface{}
	getJSON(t, ts.URL, "/shards", &shards)
	if len(shards) != 1 {
		t.Fatalf("/shards = %+v", shards)
	}
	if shards[0]["frames_total"].(float64) <= 0 || shards[0]["rounds_total"].(float64) <= 0 {
		t.Fatalf("shard counters idle after a served session: %+v", shards[0])
	}

	var fleetView map[string]interface{}
	getJSON(t, ts.URL, "/fleet", &fleetView)
	if fleetView["shards"].(float64) != 1 || fleetView["admission_mode"] != "unlimited" {
		t.Fatalf("/fleet = %+v", fleetView)
	}
	recStats := fleetView["recorder"].(map[string]interface{})
	if recStats["completed_total"].(float64) != 1 {
		t.Fatalf("/fleet recorder stats: %+v", recStats)
	}
}

// TestIntrospectionAdmissionClasses pins the degraded and rejected
// trace paths: beyond MaxSessions the next admission degrades (notable
// "degraded"), beyond the degrade limit it is rejected and leaves a
// synthetic notable trace.
func TestIntrospectionAdmissionClasses(t *testing.T) {
	const rate = 48000.0
	rec := trace.NewRecorder(trace.Config{})
	srv := NewServer(ServerConfig{
		Detector:    testDetector(t),
		MaxSessions: 1,
		Degrade:     true,
		Shards:      1,
		Trace:       rec,
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	full, err := srv.Fleet().Open(rate)
	if err != nil {
		t.Fatalf("full open: %v", err)
	}
	deg, err := srv.Fleet().Open(rate)
	if err != nil {
		t.Fatalf("degraded open: %v", err)
	}
	if !deg.Degraded() {
		t.Fatal("second session not degraded")
	}
	if _, err := srv.Fleet().Open(rate); err == nil {
		t.Fatal("third session admitted past the degrade limit")
	}

	if got := rec.Stats(); got.Live != 2 || got.Rejected != 1 {
		t.Fatalf("recorder stats: %+v", got)
	}
	if n := deg.Trace().NotableReasons(); n&trace.NotableDegraded == 0 {
		t.Fatalf("degraded session notable reasons: %v", n.Reasons())
	}
	sawRejected := false
	for _, st := range rec.Sessions() {
		if st.NotableReasons()&trace.NotableRejected != 0 {
			sawRejected = true
		}
	}
	if !sawRejected {
		t.Fatal("rejection left no trace")
	}

	for _, s := range []interface{ Abort() }{full, deg} {
		s.Abort()
	}
	for range full.Events() {
	}
	for range deg.Events() {
	}
	if got := rec.Stats(); got.Aborted != 2 {
		t.Fatalf("aborted stats: %+v", got)
	}
}

// TestDriftEndpointReflectsShift serves attack traffic against a
// reference pinned from legitimate recordings and expects /drift to
// report the distribution shift.
func TestDriftEndpointReflectsShift(t *testing.T) {
	const rate = 48000.0
	reg := telemetry.NewRegistry()
	drift := trace.NewDriftMonitor(reg)
	// Reference: the feature distribution of legitimate recordings.
	var legit [][]float64
	for seed := int64(50); seed < 58; seed++ {
		legit = append(legit, Extract(legitLike(rate, 2, seed), 960).Vector())
	}
	drift.SetReference(trace.ReferenceFromVectors(legit))

	srv := NewServer(ServerConfig{
		Detector:    testDetector(t),
		MaxSessions: -1,
		Shards:      1,
		Metrics:     reg,
		Drift:       drift,
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	mux := telemetry.Mux(reg)
	srv.MountIntrospection(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	for seed := int64(60); seed < 64; seed++ {
		driveSession(t, srv, rate, attackLike(rate, 2, seed).Samples)
	}

	var rep trace.DriftReport
	getJSON(t, ts.URL, "/drift", &rep)
	if !rep.HasRef {
		t.Fatalf("drift report lost its reference: %+v", rep)
	}
	if rep.Status == "ok" {
		t.Fatalf("attack traffic vs legit reference reported no drift: max PSI %g", rep.MaxPSI)
	}
	for _, f := range rep.Features {
		if f.Count == 0 {
			t.Fatalf("feature %s never observed", f.Name)
		}
	}
	// The PSI gauges registered for Prometheus exposition follow Report.
	var buf strings.Builder
	reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "fleet_drift_psi_milli_") {
		t.Fatal("drift PSI gauges not exported")
	}
}

// TestGuarddRegistryConformance builds the full guardd-shaped registry
// — fleet, cascade, drift, build info, start time — serves it over the
// telemetry mux, and runs the strict exposition checker against the
// scrape, exactly as `guardctl check` does against a live daemon.
func TestGuarddRegistryConformance(t *testing.T) {
	const rate = 48000.0
	reg := telemetry.NewRegistry()
	reg.NewInfo("fleet_build_info", "build identity", map[string]string{
		"go_version": "go1.24.0",
		"version":    `v0.0.0-test"quoted\`,
	})
	reg.NewGauge("fleet_start_time_seconds", "unix start time").Set(time.Now().Unix())
	drift := trace.NewDriftMonitor(reg)
	srv := NewServer(ServerConfig{
		Detector:    testDetector(t),
		MaxSessions: -1,
		Shards:      1,
		Cascade:     true,
		Metrics:     reg,
		Trace:       trace.NewRecorder(trace.Config{}),
		Drift:       drift,
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	// Populate every instrument family with real traffic.
	driveSession(t, srv, rate, attackLike(rate, 1.5, 70).Samples)
	drift.Report()

	mux := telemetry.Mux(reg)
	srv.MountIntrospection(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := telemetry.CheckExposition(resp.Body); err != nil {
		t.Fatalf("live registry fails exposition conformance: %v", err)
	}
}

// itoa avoids strconv churn in table asserts.
func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
