package stream

import (
	"context"
	"testing"
	"time"

	"inaudible/internal/fleet"
	"inaudible/internal/journal"
	"inaudible/internal/trace"
)

// BenchmarkFleetThroughput measures the fleet serving real guard
// sessions: S concurrent sessions fed round-robin through their frame
// rings, one op = one 20 ms frame through the full Guard DSP on a
// shard worker. Run with -benchmem: the steady-state loop must report
// 0 allocs/op (the acceptance gate). Reported metrics:
//
//	frames/sec      — aggregate frame throughput
//	rt_sessions     — sustained realtime sessions supported at this
//	                  throughput (frames/sec over the 50 frames/sec one
//	                  live session consumes)
func BenchmarkFleetThroughput(b *testing.B) {
	const rate = 48000.0
	const sessions = 4
	det := testDetector(b)
	fl := NewFleet(ServerConfig{Detector: det, MaxSessions: -1, Shards: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := fl.Close(ctx); err != nil {
			b.Fatalf("Close: %v", err)
		}
	}()

	sig := attackLike(rate, 1.0, 99)
	open := func() []*sessionFeeder {
		fs := make([]*sessionFeeder, sessions)
		for i := range fs {
			s, err := fl.Open(rate)
			if err != nil {
				b.Fatal(err)
			}
			fs[i] = &sessionFeeder{s: s, src: sig.Samples}
		}
		return fs
	}
	feeders := open()
	// Warm-up: past the guards' buffer-growth phase so the measured
	// region is the steady state.
	for i := 0; i < 300*sessions; i++ {
		feeders[i%sessions].feed(b)
	}

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		feeders[i%sessions].feed(b)
	}
	for _, f := range feeders {
		f.drain(b)
	}
	elapsed := time.Since(start)
	b.StopTimer()

	framesPerSec := float64(b.N) / elapsed.Seconds()
	b.ReportMetric(framesPerSec, "frames/sec")
	b.ReportMetric(framesPerSec/50, "rt_sessions")

	for _, f := range feeders {
		if err := f.s.CloseSend(); err != nil {
			b.Fatal(err)
		}
		sawFinal := false
		for ev := range f.s.Events() {
			if ev.(*Verdict).Final {
				sawFinal = true
			}
		}
		if !sawFinal {
			b.Fatalf("session lost its final verdict")
		}
	}
}

// BenchmarkFleetThroughputTraced is BenchmarkFleetThroughput with the
// full observability plane live: flight recorder (admission, advance
// timing, high-water and verdict events) plus per-feature drift
// telemetry. The acceptance gate is the same 0 allocs/op, within 5% of
// the untraced ns/frame — the frame path must not notice the recorder.
func BenchmarkFleetThroughputTraced(b *testing.B) {
	const rate = 48000.0
	const sessions = 4
	det := testDetector(b)
	fl := NewFleet(ServerConfig{
		Detector:    det,
		MaxSessions: -1,
		Shards:      1,
		Trace:       trace.NewRecorder(trace.Config{SLO: 500 * time.Millisecond}),
		Drift:       trace.NewDriftMonitor(nil),
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := fl.Close(ctx); err != nil {
			b.Fatalf("Close: %v", err)
		}
	}()

	sig := attackLike(rate, 1.0, 99)
	feeders := make([]*sessionFeeder, sessions)
	for i := range feeders {
		s, err := fl.Open(rate)
		if err != nil {
			b.Fatal(err)
		}
		feeders[i] = &sessionFeeder{s: s, src: sig.Samples}
	}
	for i := 0; i < 300*sessions; i++ {
		feeders[i%sessions].feed(b)
	}

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		feeders[i%sessions].feed(b)
	}
	for _, f := range feeders {
		f.drain(b)
	}
	elapsed := time.Since(start)
	b.StopTimer()

	framesPerSec := float64(b.N) / elapsed.Seconds()
	b.ReportMetric(framesPerSec, "frames/sec")
	b.ReportMetric(framesPerSec/50, "rt_sessions")

	for _, f := range feeders {
		if err := f.s.CloseSend(); err != nil {
			b.Fatal(err)
		}
		sawFinal := false
		for ev := range f.s.Events() {
			if ev.(*Verdict).Final {
				sawFinal = true
			}
		}
		if !sawFinal {
			b.Fatalf("session lost its final verdict")
		}
		if f.s.Trace() == nil || len(f.s.Trace().Events()) == 0 {
			b.Fatal("traced benchmark recorded no events")
		}
	}
}

// BenchmarkFleetThroughputJournaled is BenchmarkFleetThroughputTraced
// with the durable journal additionally live: every sealed trace is
// handed to the WAL writer over the per-shard SPSC rings. The
// acceptance gate is 0 allocs/op and within 2% of the traced ns/frame
// — the handoff is one pointer store on session finish, so the frame
// path must not notice it at all.
func BenchmarkFleetThroughputJournaled(b *testing.B) {
	const rate = 48000.0
	const sessions = 4
	det := testDetector(b)
	j, err := journal.Open(journal.Config{Dir: b.TempDir()})
	if err != nil {
		b.Fatalf("Open journal: %v", err)
	}
	defer j.Close()
	fl := NewFleet(ServerConfig{
		Detector:    det,
		MaxSessions: -1,
		Shards:      1,
		Trace:       trace.NewRecorder(trace.Config{SLO: 500 * time.Millisecond}),
		Drift:       trace.NewDriftMonitor(nil),
		Journal:     j,
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := fl.Close(ctx); err != nil {
			b.Fatalf("Close: %v", err)
		}
	}()

	sig := attackLike(rate, 1.0, 99)
	feeders := make([]*sessionFeeder, sessions)
	for i := range feeders {
		s, err := fl.Open(rate)
		if err != nil {
			b.Fatal(err)
		}
		feeders[i] = &sessionFeeder{s: s, src: sig.Samples}
	}
	for i := 0; i < 300*sessions; i++ {
		feeders[i%sessions].feed(b)
	}

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		feeders[i%sessions].feed(b)
	}
	for _, f := range feeders {
		f.drain(b)
	}
	elapsed := time.Since(start)
	b.StopTimer()

	framesPerSec := float64(b.N) / elapsed.Seconds()
	b.ReportMetric(framesPerSec, "frames/sec")
	b.ReportMetric(framesPerSec/50, "rt_sessions")

	for _, f := range feeders {
		if err := f.s.CloseSend(); err != nil {
			b.Fatal(err)
		}
		sawFinal := false
		for ev := range f.s.Events() {
			if ev.(*Verdict).Final {
				sawFinal = true
			}
		}
		if !sawFinal {
			b.Fatalf("session lost its final verdict")
		}
	}
}

// BenchmarkCascadeFleetThroughput measures the capacity win of the
// two-tier cascade on a realistic duty cycle: a 10 s session loop with
// one 0.5 s hot burst and silence elsewhere (~5% hot duty, plus the
// hysteresis tail). The "off" variant serves the same signal through
// always-on Guards; "on" through the cascade. rt_sessions is the
// acceptance metric (PR gate: cascade >= 3x the always-on baseline).
func BenchmarkCascadeFleetThroughput(b *testing.B) {
	const rate = 48000.0
	const sessions = 4
	det := testDetector(b)

	// Duty-cycled source: exact zeros except one attack burst. Zeros keep
	// the VAD running peak at zero and the trace band empty, so tier 0
	// stays cold outside the burst and its hysteresis tail.
	burst := attackLike(rate, 0.5, 99)
	src := make([]float64, int(10*rate))
	copy(src[int(0.6*rate):], burst.Samples)

	for _, mode := range []struct {
		name    string
		cascade bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			fl := NewFleet(ServerConfig{Detector: det, MaxSessions: -1, Shards: 1, Cascade: mode.cascade})
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				if err := fl.Close(ctx); err != nil {
					b.Fatalf("Close: %v", err)
				}
			}()
			feeders := make([]*sessionFeeder, sessions)
			for i := range feeders {
				s, err := fl.Open(rate)
				if err != nil {
					b.Fatal(err)
				}
				feeders[i] = &sessionFeeder{s: s, src: src}
			}
			for i := 0; i < 300*sessions; i++ {
				feeders[i%sessions].feed(b)
			}

			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				feeders[i%sessions].feed(b)
			}
			for _, f := range feeders {
				f.drain(b)
			}
			elapsed := time.Since(start)
			b.StopTimer()

			framesPerSec := float64(b.N) / elapsed.Seconds()
			b.ReportMetric(framesPerSec, "frames/sec")
			b.ReportMetric(framesPerSec/50, "rt_sessions")

			for _, f := range feeders {
				if err := f.s.CloseSend(); err != nil {
					b.Fatal(err)
				}
				sawFinal := false
				for ev := range f.s.Events() {
					if ev.(*Verdict).Final {
						sawFinal = true
					}
				}
				if !sawFinal {
					b.Fatalf("session lost its final verdict")
				}
			}
		})
	}
}

// sessionFeeder pushes frames from a looped source signal.
type sessionFeeder struct {
	s   *fleet.Session
	src []float64
	off int
}

func (f *sessionFeeder) feed(b *testing.B) {
	buf, err := f.s.NextFrame()
	if err != nil {
		b.Fatal(err)
	}
	n := len(buf)
	if f.off+n > len(f.src) {
		f.off = 0
	}
	copy(buf, f.src[f.off:f.off+n])
	f.off += n
	f.s.Publish(n)
}

// drain waits for the session's ring to empty so the timed region
// covers the processing, not just the enqueue.
func (f *sessionFeeder) drain(b *testing.B) {
	for f.s.RingOccupancy() > 0 {
		time.Sleep(50 * time.Microsecond)
	}
}
