package stream

import (
	"time"

	"inaudible/internal/defense"
	"inaudible/internal/dsp"
	"inaudible/internal/fleet"
	"inaudible/internal/trace"
	"inaudible/internal/voice"
)

// This file adapts the streaming guard to the fleet serving core:
// guardProc wraps the full Guard, degradedProc is the graceful-
// degradation path admitted when the fleet is beyond its full-service
// capacity. Both are fleet.Procs — single-goroutine state driven by the
// owning shard worker.

// guardProc runs a full Guard as a fleet batch processor: Stage on
// every frame, Advance batched by the shard, with the shard-level
// column batch opt-in. tr is the session flight record handed over by
// the shard at attach (nil-safe); drift is the fleet-shared
// feature-distribution monitor fed on final verdicts.
type guardProc struct {
	g     *Guard
	tr    *trace.SessionTrace
	drift *trace.DriftMonitor
	evs   fleet.Events // reused multi-verdict bundle
}

func (p *guardProc) FrameSamples() int { return p.g.FrameSamples() }

func (p *guardProc) SetTrace(st *trace.SessionTrace) { p.tr = st }

func (p *guardProc) Push(frame []float64) interface{} {
	if v := p.g.Push(frame); v != nil {
		p.tr.RecordVerdict(false, finiteOr(v.Score, -1e308), v.Attack)
		p.tr.RecordFeatures(false, v.Features.Vector())
		return v
	}
	return nil
}

func (p *guardProc) Stage(frame []float64) bool { return p.g.Stage(frame) }

// Collect opts the session into the shard-level column batch when the
// round batcher is the stream package's ColumnEngines.
func (p *guardProc) Collect(rb fleet.RoundBatcher) bool {
	ce, ok := rb.(*ColumnEngines)
	if !ok {
		return false
	}
	return p.g.CollectColumns(ce)
}

func (p *guardProc) Advance() interface{} {
	vs := p.g.Advance()
	switch len(vs) {
	case 0:
		return nil
	case 1:
		p.tr.RecordVerdict(false, finiteOr(vs[0].Score, -1e308), vs[0].Attack)
		p.tr.RecordFeatures(false, vs[0].Features.Vector())
		return vs[0]
	}
	// A round spanning several emit boundaries yields several interim
	// verdicts; bundle them so the shard delivers each in order.
	p.evs = p.evs[:0]
	for _, v := range vs {
		p.tr.RecordVerdict(false, finiteOr(v.Score, -1e308), v.Attack)
		p.tr.RecordFeatures(false, v.Features.Vector())
		p.evs = append(p.evs, v)
	}
	return p.evs
}

func (p *guardProc) Finalize() interface{} {
	v := p.g.Finalize()
	p.tr.RecordVerdict(true, finiteOr(v.Score, -1e308), v.Attack)
	p.tr.RecordFeatures(true, v.Features.Vector())
	if p.drift != nil {
		p.drift.Observe(v.Features.Vector())
	}
	return &v
}

func (p *guardProc) Reset() {
	p.g.Reset()
	p.tr = nil
	p.evs = p.evs[:0]
}

// DegradedGuard is the overload service class: online VAD plus the
// rolling trace-band monitor, with the full feature analyzer (the
// expensive part — Welch/STFT accumulators, Hilbert envelope
// correlation) elided. Its verdicts carry Degraded=true, never claim
// Attack, and report the live VAD and trace-band signals so a client
// still sees the cheap always-on alarm channel; full analysis is
// deferred to a non-overloaded retry. It exists so overload produces an
// explicit, useful answer instead of a hang or a silent drop.
type DegradedGuard struct {
	cfg     GuardConfig
	vad     *voice.StreamVAD
	tracker *dsp.BandTracker
	samples int
	frames  int
	lat     LatencyStats
	done    bool
}

// NewDegradedGuard builds the degraded session processor. Detector is
// not needed: no full feature vector is ever scored.
func NewDegradedGuard(cfg GuardConfig) *DegradedGuard {
	if cfg.FrameSamples <= 0 {
		cfg.FrameSamples = int(0.020 * cfg.Rate)
	}
	if cfg.VADThreshDB <= 0 {
		cfg.VADThreshDB = 30
	}
	b := defense.Bands()
	probes := []float64{
		b.TraceLo + (b.TraceHi-b.TraceLo)*0.1,
		(b.TraceLo + b.TraceHi) / 2,
		b.TraceHi - (b.TraceHi-b.TraceLo)*0.1,
	}
	return &DegradedGuard{
		cfg:     cfg,
		vad:     voice.NewStreamVAD(cfg.Rate, cfg.VADThreshDB),
		tracker: dsp.NewBandTracker(cfg.Rate, probes, cfg.FrameSamples, 0.2),
	}
}

// FrameSamples returns the processing hop in samples.
func (d *DegradedGuard) FrameSamples() int { return d.cfg.FrameSamples }

// Push feeds session audio, returning an interim verdict on EmitEvery
// frame boundaries like Guard.Push.
func (d *DegradedGuard) Push(x []float64) *Verdict {
	start := time.Now()
	d.vad.Push(x)
	d.tracker.Push(x)
	framesBefore := d.frames
	d.samples += len(x)
	d.frames = d.samples / d.cfg.FrameSamples
	elapsed := time.Since(start)
	d.lat.Pushes++
	d.lat.Total += elapsed
	d.lat.Frames = d.frames
	if elapsed > d.lat.MaxPush {
		d.lat.MaxPush = elapsed
	}
	if d.cfg.EmitEvery > 0 && d.frames/d.cfg.EmitEvery > framesBefore/d.cfg.EmitEvery {
		v := d.verdict(false)
		return &v
	}
	return nil
}

// Finalize returns the end-of-session degraded verdict.
func (d *DegradedGuard) Finalize() Verdict {
	d.done = true
	return d.verdict(true)
}

// Reset clears all per-session state for reuse.
func (d *DegradedGuard) Reset() {
	d.vad.Reset()
	d.tracker.Reset()
	d.samples = 0
	d.frames = 0
	d.lat = LatencyStats{}
	d.done = false
}

func (d *DegradedGuard) verdict(final bool) Verdict {
	return Verdict{
		Degraded:       true,
		Final:          final,
		Samples:        d.samples,
		Duration:       float64(d.samples) / d.cfg.Rate,
		SpeechActive:   d.vad.Active(),
		ActiveFraction: d.vad.ActiveFraction(),
		TraceBandPower: d.tracker.RollingTotal(),
		Latency:        d.lat,
	}
}

// degradedProc runs a DegradedGuard as a fleet processor. Degraded
// verdicts never claim Attack and carry no full feature vector, so they
// feed the flight recorder but not the drift monitor.
type degradedProc struct {
	g  *DegradedGuard
	tr *trace.SessionTrace
}

func (p *degradedProc) FrameSamples() int { return p.g.FrameSamples() }

func (p *degradedProc) SetTrace(st *trace.SessionTrace) { p.tr = st }

func (p *degradedProc) Push(frame []float64) interface{} {
	if v := p.g.Push(frame); v != nil {
		p.tr.RecordVerdict(false, 0, false)
		return v
	}
	return nil
}

func (p *degradedProc) Finalize() interface{} {
	v := p.g.Finalize()
	p.tr.RecordVerdict(true, 0, false)
	return &v
}

func (p *degradedProc) Reset() {
	p.g.Reset()
	p.tr = nil
}

var (
	_ fleet.BatchProc     = (*guardProc)(nil)
	_ fleet.ColumnBatcher = (*guardProc)(nil)
	_ fleet.Proc          = (*degradedProc)(nil)
	_ fleet.TraceAware    = (*guardProc)(nil)
	_ fleet.TraceAware    = (*degradedProc)(nil)
	_ fleet.TraceAware    = (*cascadeProc)(nil)
)
