package stream

import (
	"math"
	"time"

	"inaudible/internal/defense"
	"inaudible/internal/dsp"
	"inaudible/internal/fleet"
	"inaudible/internal/telemetry"
	"inaudible/internal/trace"
	"inaudible/internal/voice"
)

// This file implements the two-tier detection cascade. Tier 0 is the
// always-on triage stage — the online VAD, the rolling trace-band
// Goertzel monitor and a per-frame energy floor, promoted from the
// overload-only DegradedGuard path to first-class service. Tier 1 is
// the full streaming Analyzer, engaged only while tier 0 sees
// suspicious energy. Most frames of a realistic session are silence, so
// the expensive spectral path runs for a small fraction of the stream
// and fleet capacity rises accordingly; the E9–E13 corpus parity test
// pins the detection cost of the shortcut (zero added false negatives).
//
// Escalation uses hysteresis so an attacker cannot flap past the gate:
// a leaky heat counter charges one unit per hot frame and leaks
// cascadeHeatLeak per cold frame, engaging tier 1 at EngageHotFrames
// units — an input alternating K-1 hot frames with single cold frames
// still accumulates heat and escalates. Release requires
// ReleaseColdFrames consecutive cold frames, so brief inter-word pauses
// keep the analyzer engaged and an engaged attacker cannot slip out
// mid-utterance. A preroll ring of recent raw frames is replayed into
// the analyzer on engagement, so the onset that triggered the
// escalation is analyzed, not lost.

// cascadeHeatLeak is the heat drained per cold frame. Well under 1, so
// sparse cold frames inside a hot burst do not defeat escalation.
const cascadeHeatLeak = 0.125

// CascadeInfo reports the cascade state carried on a Verdict.
type CascadeInfo struct {
	// Engaged reports whether tier 1 (full analysis) is currently live.
	Engaged bool
	// Tier0Frames and Tier1Frames count frames by the tier that served
	// them on arrival (preroll replay does not recount).
	Tier0Frames int
	Tier1Frames int
	// Escalations counts tier-0→tier-1 transitions this session.
	Escalations int
	// Tier05Vetoes counts energy-hot frames the tier-0.5 coarse
	// spectral triage demoted back to cold (zero unless Tier05 is on).
	Tier05Vetoes int
}

// CascadeMetrics is the cascade instrument set, shared by every cascade
// session of a server. Build with NewCascadeMetrics to register under
// fleet_cascade_* names, or leave CascadeConfig.Metrics nil for
// standalone instruments.
type CascadeMetrics struct {
	Tier1Sessions  *telemetry.Gauge     // fleet_cascade_tier1_sessions
	Escalations    *telemetry.Counter   // fleet_cascade_escalations_total
	Deescalations  *telemetry.Counter   // fleet_cascade_deescalations_total
	Tier0Frames    *telemetry.Counter   // fleet_cascade_tier0_frames_total
	Tier1Frames    *telemetry.Counter   // fleet_cascade_tier1_frames_total
	Tier05Vetoes   *telemetry.Counter   // fleet_cascade_tier05_vetoes_total
	EnergyMarginDB *telemetry.Histogram // fleet_cascade_energy_margin_db
}

// cascadeMarginBuckets spans -48..+48 dB linearly in 8 dB steps — a
// signed distribution whose negative first bound relies on the
// histogram's observed-min quantile interpolation.
func cascadeMarginBuckets() []float64 {
	b := make([]float64, 0, 13)
	for v := -48.0; v <= 48; v += 8 {
		b = append(b, v)
	}
	return b
}

// newUnregisteredCascadeMetrics builds instruments not tied to a registry.
func newUnregisteredCascadeMetrics() *CascadeMetrics {
	return &CascadeMetrics{
		Tier1Sessions:  &telemetry.Gauge{},
		Escalations:    &telemetry.Counter{},
		Deescalations:  &telemetry.Counter{},
		Tier0Frames:    &telemetry.Counter{},
		Tier1Frames:    &telemetry.Counter{},
		Tier05Vetoes:   &telemetry.Counter{},
		EnergyMarginDB: telemetry.NewHistogram(cascadeMarginBuckets()),
	}
}

// NewCascadeMetrics builds the cascade instrument set registered under
// fleet_cascade_* names in r.
func NewCascadeMetrics(r *telemetry.Registry) *CascadeMetrics {
	return &CascadeMetrics{
		Tier1Sessions:  r.NewGauge("fleet_cascade_tier1_sessions", "sessions currently escalated to the full-analysis tier"),
		Escalations:    r.NewCounter("fleet_cascade_escalations_total", "tier-0 to tier-1 escalations"),
		Deescalations:  r.NewCounter("fleet_cascade_deescalations_total", "tier-1 to tier-0 releases after the cold hysteresis"),
		Tier0Frames:    r.NewCounter("fleet_cascade_tier0_frames_total", "frames served by the triage tier only"),
		Tier1Frames:    r.NewCounter("fleet_cascade_tier1_frames_total", "frames routed to the full analyzer"),
		Tier05Vetoes:   r.NewCounter("fleet_cascade_tier05_vetoes_total", "energy-hot frames demoted to cold by the tier-0.5 coarse spectral triage"),
		EnergyMarginDB: r.NewHistogram("fleet_cascade_energy_margin_db", "frame energy margin over the hot floor (dB)", cascadeMarginBuckets()),
	}
}

// CascadeConfig wires one cascade session.
type CascadeConfig struct {
	// Guard configures the underlying detection session (rate, detector,
	// hop, VAD threshold, emission cadence) exactly as for NewGuard.
	Guard GuardConfig
	// EngageHotFrames is the heat (in hot-frame units) that engages
	// tier 1; <= 0 selects 3.
	EngageHotFrames int
	// ReleaseColdFrames is the consecutive-cold-frame run that releases
	// tier 1; <= 0 selects 25 (~0.5 s at the 20 ms hop), long enough to
	// ride through inter-word pauses.
	ReleaseColdFrames int
	// HotFloorDB is the frame-energy floor (dBFS, so negative) above
	// which a frame counts hot; 0 selects -55. Trace-band power above
	// the floor or an active VAD also marks a frame hot.
	HotFloorDB float64
	// PrerollFrames is the raw-frame history replayed into the analyzer
	// on engagement; <= 0 selects 16, and it is raised to
	// EngageHotFrames+1 so the escalating burst is always covered.
	PrerollFrames int
	// Metrics instruments the cascade; nil builds unregistered
	// instruments (always safe to record into).
	Metrics *CascadeMetrics
	// Tier05 enables the tier-0.5 coarse spectral triage: a hot frame
	// in the cold tier (tier 1 not yet engaged) gets a short FFT over
	// its mean-removed 4x-decimated samples, and is demoted back to
	// cold when the in-band (trace + voice) share of its AC energy
	// still sits below the hot floor. The only energy the check ever
	// discounts is the frame mean — DC offset and sub-trace infrasound,
	// which carry no feature information but leak into all three tier-0
	// hot signals at the 20 ms frame scale. Zero-mean audio (all real
	// speech and attack content) keeps its full energy in-band, so the
	// veto can suppress offset/rumble escalations but never hides
	// in-band energy above the floor (fail-open by construction).
	Tier05 bool
	// Floor supplies a dynamically tuned hot floor; nil pins the floor
	// at HotFloorDB for the whole session.
	Floor *FloorController
}

// CascadeGuard is a Guard with the two-tier cascade in front of the
// analyzer: VAD, trace-band tracker and the energy triage run on every
// frame; the Analyzer only sees audio while (or just before, via
// preroll) tier 0 judges the stream suspicious. The work is split for
// the fleet's two-phase batch loop: Stage is the cheap per-frame triage
// and copy, Advance the deferred analyzer feed. Push chains both for
// standalone use. Like Guard, a CascadeGuard is single-session state;
// the Detector and CascadeMetrics behind it are shared.
type CascadeGuard struct {
	cfg     CascadeConfig
	m       *CascadeMetrics
	an      *Analyzer
	vad     *voice.StreamVAD
	tracker *dsp.BandTracker

	lat     LatencyStats
	samples int
	frames  int

	heat    float64
	coldRun int
	engaged bool
	gaugeUp bool // Tier1Sessions owed a decrement (engage without release)

	// tr is the session flight record (nil when the fleet runs without a
	// recorder); lastMargin is the most recent frame-energy margin over
	// the hot floor in dB, carried onto the escalation event.
	tr         *trace.SessionTrace
	lastMargin float64

	pr      [][]float64 // preroll ring of raw frames (fixed-cap slices)
	prHead  int
	prCount int
	staging []float64 // frames owed to the analyzer at the next Advance

	// ce is the shard column-engine set the staged audio was collected
	// into; non-nil between CollectColumns and the Advance that
	// completes the accumulation from the batched spectra.
	ce *ColumnEngines

	// Tier-0.5 coarse-triage state (nil/empty unless cfg.Tier05): a
	// small dedicated RFFT plan over the zero-padded 4x-decimated
	// frame, plus the analysis-band bin ranges at the decimated rate.
	t05plan        *dsp.RFFTPlan
	t05buf         []float64
	t05spec, t05sc []complex128
	t05k0t, t05k1t int
	t05k0v, t05k1v int

	info    CascadeInfo
	emitDue bool
	done    bool
}

// tier05Dec is the tier-0.5 decimation factor.
const tier05Dec = 4

// NewCascadeGuard builds a cascade session.
func NewCascadeGuard(cfg CascadeConfig) *CascadeGuard {
	if cfg.Guard.Detector == nil {
		panic("stream: CascadeConfig.Guard.Detector is required")
	}
	if cfg.Guard.FrameSamples <= 0 {
		cfg.Guard.FrameSamples = int(0.020 * cfg.Guard.Rate)
	}
	if cfg.Guard.VADThreshDB <= 0 {
		cfg.Guard.VADThreshDB = 30
	}
	if cfg.EngageHotFrames <= 0 {
		cfg.EngageHotFrames = 3
	}
	if cfg.ReleaseColdFrames <= 0 {
		cfg.ReleaseColdFrames = 25
	}
	if cfg.HotFloorDB == 0 {
		cfg.HotFloorDB = -55
	}
	if cfg.PrerollFrames <= 0 {
		cfg.PrerollFrames = 16
	}
	if cfg.PrerollFrames < cfg.EngageHotFrames+1 {
		cfg.PrerollFrames = cfg.EngageHotFrames + 1
	}
	m := cfg.Metrics
	if m == nil {
		m = newUnregisteredCascadeMetrics()
	}
	b := defense.Bands()
	probes := []float64{
		b.TraceLo + (b.TraceHi-b.TraceLo)*0.1,
		(b.TraceLo + b.TraceHi) / 2,
		b.TraceHi - (b.TraceHi-b.TraceLo)*0.1,
	}
	pr := make([][]float64, cfg.PrerollFrames)
	for i := range pr {
		pr[i] = make([]float64, 0, cfg.Guard.FrameSamples)
	}
	c := &CascadeGuard{
		cfg:     cfg,
		m:       m,
		an:      NewAnalyzer(AnalyzerConfig{Rate: cfg.Guard.Rate, MaxCorrSeconds: cfg.Guard.MaxCorrSeconds}),
		vad:     voice.NewStreamVAD(cfg.Guard.Rate, cfg.Guard.VADThreshDB),
		tracker: dsp.NewBandTracker(cfg.Guard.Rate, probes, cfg.Guard.FrameSamples, 0.2),
		pr:      pr,
		staging: make([]float64, 0, (cfg.PrerollFrames+40)*cfg.Guard.FrameSamples),
	}
	if cfg.Tier05 {
		decRate := cfg.Guard.Rate / tier05Dec
		decLen := (cfg.Guard.FrameSamples + tier05Dec - 1) / tier05Dec
		n := 64
		for n < decLen {
			n <<= 1
		}
		c.t05plan = dsp.NewRFFTPlan(n)
		c.t05buf = make([]float64, n)
		c.t05spec = make([]complex128, n/2+1)
		c.t05sc = make([]complex128, n/2)
		c.t05k0t = dsp.FrequencyBin(b.TraceLo, n, decRate)
		c.t05k1t = dsp.FrequencyBin(b.TraceHi, n, decRate)
		c.t05k0v = dsp.FrequencyBin(b.VoiceLo, n, decRate)
		hiv := b.VoiceHi
		if hiv > decRate/2 {
			hiv = decRate / 2
		}
		c.t05k1v = dsp.FrequencyBin(hiv, n, decRate)
	}
	return c
}

// FrameSamples returns the processing hop in samples.
func (c *CascadeGuard) FrameSamples() int { return c.cfg.Guard.FrameSamples }

// Samples returns the number of samples consumed so far.
func (c *CascadeGuard) Samples() int { return c.samples }

// Latency returns the processing-time statistics so far.
func (c *CascadeGuard) Latency() LatencyStats { return c.lat }

// Engaged reports whether tier 1 is currently live.
func (c *CascadeGuard) Engaged() bool { return c.engaged }

// SetTrace attaches the session flight record (nil detaches it).
func (c *CascadeGuard) SetTrace(st *trace.SessionTrace) { c.tr = st }

// Info returns a snapshot of the cascade counters.
func (c *CascadeGuard) Info() CascadeInfo {
	info := c.info
	info.Engaged = c.engaged
	return info
}

// Stage runs tier-0 triage over the next chunk (the nominal frame is
// FrameSamples; any size works standalone) and, while engaged, banks a
// copy for the analyzer. No heavy DSP runs here. The return value
// reports whether an Advance is owed — staged audio or a due interim
// verdict — matching fleet.BatchProc's contract.
func (c *CascadeGuard) Stage(x []float64) bool {
	if c.done {
		panic("stream: CascadeGuard.Stage after Finalize (Reset first)")
	}
	start := time.Now()
	c.vad.Push(x)
	c.tracker.Push(x)
	framesBefore := c.frames
	c.samples += len(x)
	c.frames = c.samples / c.cfg.Guard.FrameSamples
	hot := c.classify(x)
	if hot {
		c.heat++
		c.coldRun = 0
	} else {
		c.heat -= cascadeHeatLeak
		if c.heat < 0 {
			c.heat = 0
		}
		c.coldRun++
	}
	if c.engaged {
		c.staging = append(c.staging, x...)
		c.info.Tier1Frames++
		c.m.Tier1Frames.Inc()
		if !hot && c.coldRun >= c.cfg.ReleaseColdFrames {
			c.disengage()
		}
	} else {
		c.pushPreroll(x)
		if c.heat >= float64(c.cfg.EngageHotFrames) {
			c.engage() // replays the preroll, current frame included
			c.info.Tier1Frames++
			c.m.Tier1Frames.Inc()
		} else {
			c.info.Tier0Frames++
			c.m.Tier0Frames.Inc()
		}
	}
	elapsed := time.Since(start)
	c.lat.Pushes++
	c.lat.Total += elapsed
	c.lat.Frames = c.frames
	if elapsed > c.lat.MaxPush {
		c.lat.MaxPush = elapsed
	}
	if c.cfg.Guard.EmitEvery > 0 && c.frames/c.cfg.Guard.EmitEvery > framesBefore/c.cfg.Guard.EmitEvery {
		c.emitDue = true
	}
	return len(c.staging) > 0 || c.emitDue
}

// CollectColumns stages any audio owed to the analyzer into the
// shard-level column engines instead of transforming it inline: the
// FIR correlation chains run now, the Welch/STFT columns wait for the
// shard's one batched FFT pass. It reports whether the session joined
// the batch; the matching Advance (after ce.Run) completes the
// accumulation from the precomputed spectra. Calling Advance without
// an intervening CollectColumns keeps the inline path — the result is
// bit-identical either way.
func (c *CascadeGuard) CollectColumns(ce *ColumnEngines) bool {
	if c.done || len(c.staging) == 0 {
		return false
	}
	start := time.Now()
	// Cache-sized blocks: the analyzer's FIR chains run inline here, and
	// a backlog round's staging buffer is far bigger than cache — see
	// feedCacheFrames.
	step := feedCacheFrames * c.cfg.Guard.FrameSamples
	for off := 0; off < len(c.staging); off += step {
		end := off + step
		if end > len(c.staging) {
			end = len(c.staging)
		}
		c.an.PushStaged(c.staging[off:end], ce)
	}
	c.staging = c.staging[:0]
	elapsed := time.Since(start)
	c.lat.Total += elapsed
	if elapsed > c.lat.MaxPush {
		c.lat.MaxPush = elapsed
	}
	c.ce = ce
	return true
}

// Advance feeds everything staged since the last Advance to the
// analyzer — the deferred heavy half of the frame work, batched by the
// shard across its sessions — and returns the interim verdict that came
// due during staging, if any. When CollectColumns ran first, the
// staged audio is already in the column engines and Advance only folds
// the batched spectra back in.
func (c *CascadeGuard) Advance() *Verdict {
	if c.ce != nil {
		start := time.Now()
		c.an.CompleteStaged(c.ce)
		c.ce = nil
		elapsed := time.Since(start)
		c.lat.Total += elapsed
		if elapsed > c.lat.MaxPush {
			c.lat.MaxPush = elapsed
		}
	} else if len(c.staging) > 0 {
		start := time.Now()
		step := feedCacheFrames * c.cfg.Guard.FrameSamples
		for off := 0; off < len(c.staging); off += step {
			end := off + step
			if end > len(c.staging) {
				end = len(c.staging)
			}
			c.an.Push(c.staging[off:end])
		}
		c.staging = c.staging[:0]
		elapsed := time.Since(start)
		c.lat.Total += elapsed
		if elapsed > c.lat.MaxPush {
			c.lat.MaxPush = elapsed
		}
	}
	if c.emitDue {
		c.emitDue = false
		v := c.verdict(false)
		return &v
	}
	return nil
}

// Push is the standalone (non-batched) entry point: Stage immediately
// followed by Advance, mirroring Guard.Push's contract.
func (c *CascadeGuard) Push(x []float64) *Verdict {
	c.Stage(x)
	return c.Advance()
}

// Finalize flushes any staged audio and the analyzer, and returns the
// end-of-session verdict. A session that never engaged scores the
// analyzer's empty (floor) feature vector — identical to a full Guard
// fed pure silence. After Finalize, Stage panics until Reset.
func (c *CascadeGuard) Finalize() Verdict {
	if !c.done {
		if c.ce != nil {
			panic("stream: CascadeGuard.Finalize with an uncompleted column batch (Advance first)")
		}
		start := time.Now()
		if len(c.staging) > 0 {
			c.an.Push(c.staging)
			c.staging = c.staging[:0]
		}
		c.an.Finalize()
		c.lat.Total += time.Since(start)
		c.done = true
		c.emitDue = false
		if c.gaugeUp {
			c.m.Tier1Sessions.Add(-1)
			c.gaugeUp = false
		}
	}
	return c.verdict(true)
}

// Reset clears all per-session state for reuse.
func (c *CascadeGuard) Reset() {
	c.an.Reset()
	c.vad.Reset()
	c.tracker.Reset()
	c.lat = LatencyStats{}
	c.samples, c.frames = 0, 0
	c.heat, c.coldRun = 0, 0
	c.engaged = false
	c.tr = nil
	c.lastMargin = 0
	if c.gaugeUp {
		// The fleet aborts sessions via Reset without Finalize; the
		// occupancy gauge must come back down either way.
		c.m.Tier1Sessions.Add(-1)
		c.gaugeUp = false
	}
	c.prHead, c.prCount = 0, 0
	c.staging = c.staging[:0]
	c.ce = nil
	c.info = CascadeInfo{}
	c.emitDue = false
	c.done = false
}

// classify judges one frame hot (suspicious energy) or cold: mean
// square energy at or above the floor, trace-band power at or above the
// floor, or an active VAD. The energy margin is recorded for the
// fleet_cascade_energy_margin_db histogram. With Tier05 enabled, a
// frame hot solely by raw energy (the weakest signal) gets the coarse
// spectral second look before it may charge the escalation heat.
func (c *CascadeGuard) classify(x []float64) bool {
	if len(x) == 0 {
		return false
	}
	floor := c.cfg.HotFloorDB
	if c.cfg.Floor != nil {
		floor = c.cfg.Floor.FloorDB()
	}
	var sumSq float64
	for _, v := range x {
		sumSq += v * v
	}
	msq := sumSq / float64(len(x))
	energyHot := false
	if msq > 0 {
		edb := 10 * math.Log10(msq)
		c.lastMargin = edb - floor
		c.m.EnergyMarginDB.Observe(c.lastMargin)
		energyHot = edb >= floor
	}
	otherHot := c.vad.Active()
	if !otherHot {
		if tb := c.tracker.RollingTotal(); tb > 0 && 10*math.Log10(tb) >= floor {
			otherHot = true
		}
	}
	hot := energyHot || otherHot
	// Tier-0.5 gates escalation only — it never runs while engaged
	// (the release hysteresis keeps its own timing). It may overrule
	// any of the three tier-0 hot signals, because at the 20 ms frame
	// scale all three are loudness measures a frame mean contaminates:
	// the energy floor integrates the offset directly, the VAD is a
	// broadband peak-relative RMS gate, and the trace-band Goertzel
	// probes sit at fractional cycles per frame, passing DC almost
	// unattenuated. The veto's evidence — in-band AC power below the
	// floor — is exactly the quantity each of those gates was meant to
	// approximate, so demoting on it corrects their shared leakage
	// failure mode without hiding any zero-mean (real audio) energy.
	if hot && !c.engaged && c.t05plan != nil && c.tier05Veto(x, msq, floor) {
		c.info.Tier05Vetoes++
		c.m.Tier05Vetoes.Inc()
		hot = false
	}
	return hot
}

// tier05Veto is the tier-0.5 coarse triage: a short FFT over the
// mean-removed, zero-padded 4x-decimated frame estimates what fraction
// of the frame's AC energy sits in the analysis bands (trace 16-60 Hz
// plus the voice band), and the frame is demoted when that in-band
// power still sits below the hot floor.
//
// The frame mean is removed before staging and excluded from the
// estimate: at 20 ms frame scale, mic DC offset and sub-trace
// infrasound (<16 Hz handling noise, wind, HVAC rumble) are
// indistinguishable from a constant, carry no feature information, and
// would otherwise smear across every bin through the zero-pad step.
// The mean is also the ONLY energy ever discounted — all AC power
// lands in bins the analysis bands cover (naive decimation only ever
// aliases out-of-Nyquist energy INTO those bins), so for zero-mean
// audio inBand ≈ msq and a frame above the floor can never be vetoed:
// the triage is fail-open.
func (c *CascadeGuard) tier05Veto(x []float64, msq, floor float64) bool {
	var sum float64
	for _, v := range x {
		sum += v
	}
	mean := sum / float64(len(x))
	acVar := msq - mean*mean
	if acVar < 0 {
		acVar = 0 // float cancellation on a pure-offset frame
	}
	buf := c.t05buf
	for i := range buf {
		buf[i] = 0
	}
	for i, n := 0, 0; i < len(x) && n < len(buf); i, n = i+tier05Dec, n+1 {
		buf[n] = x[i] - mean
	}
	c.t05plan.Transform(c.t05spec, buf, c.t05sc)
	var tot, band float64
	for k, z := range c.t05spec {
		p := real(z)*real(z) + imag(z)*imag(z)
		tot += p
		if k > 0 && ((k >= c.t05k0t && k <= c.t05k1t) || (k >= c.t05k0v && k <= c.t05k1v)) {
			band += p
		}
	}
	inBand := acVar
	if tot > 0 {
		inBand = acVar * (band / tot)
	}
	return 10*math.Log10(inBand+1e-30) < floor
}

// pushPreroll banks a raw frame in the preroll ring (copy; the caller
// owns x).
func (c *CascadeGuard) pushPreroll(x []float64) {
	slot := c.pr[c.prHead][:len(x)]
	copy(slot, x)
	c.pr[c.prHead] = slot
	c.prHead = (c.prHead + 1) % len(c.pr)
	if c.prCount < len(c.pr) {
		c.prCount++
	}
}

// engage escalates to tier 1, replaying the preroll ring (oldest first,
// triggering frame last) into staging so the attack onset reaches the
// analyzer.
func (c *CascadeGuard) engage() {
	c.engaged = true
	c.info.Escalations++
	c.m.Escalations.Inc()
	if c.tr != nil {
		c.tr.Record(trace.KindEscalated, c.heat, c.lastMargin)
		c.tr.MarkNotable(trace.NotableEscalated)
	}
	if !c.gaugeUp {
		c.m.Tier1Sessions.Add(1)
		c.gaugeUp = true
	}
	n := len(c.pr)
	first := (c.prHead - c.prCount + 2*n) % n
	for i := 0; i < c.prCount; i++ {
		c.staging = append(c.staging, c.pr[(first+i)%n]...)
	}
	c.prCount = 0
}

// disengage releases tier 1 after the cold hysteresis ran out.
func (c *CascadeGuard) disengage() {
	c.tr.Record(trace.KindReleased, float64(c.coldRun), 0)
	c.engaged = false
	c.heat = 0
	c.coldRun = 0
	c.m.Deescalations.Inc()
	if c.gaugeUp {
		c.m.Tier1Sessions.Add(-1)
		c.gaugeUp = false
	}
}

// verdict scores the current feature snapshot, like Guard.verdict, with
// the cascade state attached.
func (c *CascadeGuard) verdict(final bool) Verdict {
	var f defense.Features
	if final {
		f = c.an.Finalize() // idempotent once done
	} else {
		f = c.an.Features()
	}
	x := f.Vector()
	info := c.Info()
	return Verdict{
		Attack:         c.cfg.Guard.Detector.Predict(x),
		Score:          c.cfg.Guard.Detector.Score(x),
		Features:       f,
		Final:          final,
		Samples:        c.samples,
		Duration:       float64(c.samples) / c.cfg.Guard.Rate,
		SpeechActive:   c.vad.Active(),
		ActiveFraction: c.vad.ActiveFraction(),
		TraceBandPower: c.tracker.RollingTotal(),
		Latency:        c.lat,
		Cascade:        &info,
	}
}

// cascadeProc runs a CascadeGuard as a fleet batch processor: Stage on
// every frame, Advance batched by the shard across co-resident
// sessions. The guard itself records escalation/release events; the
// proc adds the verdict events and the drift observation.
type cascadeProc struct {
	g     *CascadeGuard
	drift *trace.DriftMonitor
}

func (p *cascadeProc) FrameSamples() int { return p.g.FrameSamples() }

func (p *cascadeProc) SetTrace(st *trace.SessionTrace) { p.g.SetTrace(st) }

func (p *cascadeProc) Push(frame []float64) interface{} {
	if v := p.g.Push(frame); v != nil {
		p.g.tr.RecordVerdict(false, finiteOr(v.Score, -1e308), v.Attack)
		p.g.tr.RecordFeatures(false, v.Features.Vector())
		return v
	}
	return nil
}

func (p *cascadeProc) Stage(frame []float64) bool { return p.g.Stage(frame) }

// Collect opts the session into the shard-level column batch when the
// round batcher is the stream package's ColumnEngines (fleet keeps the
// batcher type opaque, so other batchers are simply declined).
func (p *cascadeProc) Collect(rb fleet.RoundBatcher) bool {
	ce, ok := rb.(*ColumnEngines)
	if !ok {
		return false
	}
	return p.g.CollectColumns(ce)
}

func (p *cascadeProc) Advance() interface{} {
	if v := p.g.Advance(); v != nil {
		p.g.tr.RecordVerdict(false, finiteOr(v.Score, -1e308), v.Attack)
		p.g.tr.RecordFeatures(false, v.Features.Vector())
		return v
	}
	return nil
}

func (p *cascadeProc) Finalize() interface{} {
	v := p.g.Finalize()
	p.g.tr.RecordVerdict(true, finiteOr(v.Score, -1e308), v.Attack)
	p.g.tr.RecordFeatures(true, v.Features.Vector())
	if p.drift != nil {
		p.drift.Observe(v.Features.Vector())
	}
	return &v
}

func (p *cascadeProc) Reset() { p.g.Reset() }

var (
	_ fleet.BatchProc     = (*cascadeProc)(nil)
	_ fleet.ColumnBatcher = (*cascadeProc)(nil)
)
