package stream

import (
	"math"
	"time"

	"inaudible/internal/defense"
	"inaudible/internal/dsp"
	"inaudible/internal/fleet"
	"inaudible/internal/telemetry"
	"inaudible/internal/trace"
	"inaudible/internal/voice"
)

// This file implements the two-tier detection cascade. Tier 0 is the
// always-on triage stage — the online VAD, the rolling trace-band
// Goertzel monitor and a per-frame energy floor, promoted from the
// overload-only DegradedGuard path to first-class service. Tier 1 is
// the full streaming Analyzer, engaged only while tier 0 sees
// suspicious energy. Most frames of a realistic session are silence, so
// the expensive spectral path runs for a small fraction of the stream
// and fleet capacity rises accordingly; the E9–E13 corpus parity test
// pins the detection cost of the shortcut (zero added false negatives).
//
// Escalation uses hysteresis so an attacker cannot flap past the gate:
// a leaky heat counter charges one unit per hot frame and leaks
// cascadeHeatLeak per cold frame, engaging tier 1 at EngageHotFrames
// units — an input alternating K-1 hot frames with single cold frames
// still accumulates heat and escalates. Release requires
// ReleaseColdFrames consecutive cold frames, so brief inter-word pauses
// keep the analyzer engaged and an engaged attacker cannot slip out
// mid-utterance. A preroll ring of recent raw frames is replayed into
// the analyzer on engagement, so the onset that triggered the
// escalation is analyzed, not lost.

// cascadeHeatLeak is the heat drained per cold frame. Well under 1, so
// sparse cold frames inside a hot burst do not defeat escalation.
const cascadeHeatLeak = 0.125

// CascadeInfo reports the cascade state carried on a Verdict.
type CascadeInfo struct {
	// Engaged reports whether tier 1 (full analysis) is currently live.
	Engaged bool
	// Tier0Frames and Tier1Frames count frames by the tier that served
	// them on arrival (preroll replay does not recount).
	Tier0Frames int
	Tier1Frames int
	// Escalations counts tier-0→tier-1 transitions this session.
	Escalations int
}

// CascadeMetrics is the cascade instrument set, shared by every cascade
// session of a server. Build with NewCascadeMetrics to register under
// fleet_cascade_* names, or leave CascadeConfig.Metrics nil for
// standalone instruments.
type CascadeMetrics struct {
	Tier1Sessions  *telemetry.Gauge     // fleet_cascade_tier1_sessions
	Escalations    *telemetry.Counter   // fleet_cascade_escalations_total
	Deescalations  *telemetry.Counter   // fleet_cascade_deescalations_total
	Tier0Frames    *telemetry.Counter   // fleet_cascade_tier0_frames_total
	Tier1Frames    *telemetry.Counter   // fleet_cascade_tier1_frames_total
	EnergyMarginDB *telemetry.Histogram // fleet_cascade_energy_margin_db
}

// cascadeMarginBuckets spans -48..+48 dB linearly in 8 dB steps — a
// signed distribution whose negative first bound relies on the
// histogram's observed-min quantile interpolation.
func cascadeMarginBuckets() []float64 {
	b := make([]float64, 0, 13)
	for v := -48.0; v <= 48; v += 8 {
		b = append(b, v)
	}
	return b
}

// newUnregisteredCascadeMetrics builds instruments not tied to a registry.
func newUnregisteredCascadeMetrics() *CascadeMetrics {
	return &CascadeMetrics{
		Tier1Sessions:  &telemetry.Gauge{},
		Escalations:    &telemetry.Counter{},
		Deescalations:  &telemetry.Counter{},
		Tier0Frames:    &telemetry.Counter{},
		Tier1Frames:    &telemetry.Counter{},
		EnergyMarginDB: telemetry.NewHistogram(cascadeMarginBuckets()),
	}
}

// NewCascadeMetrics builds the cascade instrument set registered under
// fleet_cascade_* names in r.
func NewCascadeMetrics(r *telemetry.Registry) *CascadeMetrics {
	return &CascadeMetrics{
		Tier1Sessions:  r.NewGauge("fleet_cascade_tier1_sessions", "sessions currently escalated to the full-analysis tier"),
		Escalations:    r.NewCounter("fleet_cascade_escalations_total", "tier-0 to tier-1 escalations"),
		Deescalations:  r.NewCounter("fleet_cascade_deescalations_total", "tier-1 to tier-0 releases after the cold hysteresis"),
		Tier0Frames:    r.NewCounter("fleet_cascade_tier0_frames_total", "frames served by the triage tier only"),
		Tier1Frames:    r.NewCounter("fleet_cascade_tier1_frames_total", "frames routed to the full analyzer"),
		EnergyMarginDB: r.NewHistogram("fleet_cascade_energy_margin_db", "frame energy margin over the hot floor (dB)", cascadeMarginBuckets()),
	}
}

// CascadeConfig wires one cascade session.
type CascadeConfig struct {
	// Guard configures the underlying detection session (rate, detector,
	// hop, VAD threshold, emission cadence) exactly as for NewGuard.
	Guard GuardConfig
	// EngageHotFrames is the heat (in hot-frame units) that engages
	// tier 1; <= 0 selects 3.
	EngageHotFrames int
	// ReleaseColdFrames is the consecutive-cold-frame run that releases
	// tier 1; <= 0 selects 25 (~0.5 s at the 20 ms hop), long enough to
	// ride through inter-word pauses.
	ReleaseColdFrames int
	// HotFloorDB is the frame-energy floor (dBFS, so negative) above
	// which a frame counts hot; 0 selects -55. Trace-band power above
	// the floor or an active VAD also marks a frame hot.
	HotFloorDB float64
	// PrerollFrames is the raw-frame history replayed into the analyzer
	// on engagement; <= 0 selects 16, and it is raised to
	// EngageHotFrames+1 so the escalating burst is always covered.
	PrerollFrames int
	// Metrics instruments the cascade; nil builds unregistered
	// instruments (always safe to record into).
	Metrics *CascadeMetrics
}

// CascadeGuard is a Guard with the two-tier cascade in front of the
// analyzer: VAD, trace-band tracker and the energy triage run on every
// frame; the Analyzer only sees audio while (or just before, via
// preroll) tier 0 judges the stream suspicious. The work is split for
// the fleet's two-phase batch loop: Stage is the cheap per-frame triage
// and copy, Advance the deferred analyzer feed. Push chains both for
// standalone use. Like Guard, a CascadeGuard is single-session state;
// the Detector and CascadeMetrics behind it are shared.
type CascadeGuard struct {
	cfg     CascadeConfig
	m       *CascadeMetrics
	an      *Analyzer
	vad     *voice.StreamVAD
	tracker *dsp.BandTracker

	lat     LatencyStats
	samples int
	frames  int

	heat    float64
	coldRun int
	engaged bool
	gaugeUp bool // Tier1Sessions owed a decrement (engage without release)

	// tr is the session flight record (nil when the fleet runs without a
	// recorder); lastMargin is the most recent frame-energy margin over
	// the hot floor in dB, carried onto the escalation event.
	tr         *trace.SessionTrace
	lastMargin float64

	pr      [][]float64 // preroll ring of raw frames (fixed-cap slices)
	prHead  int
	prCount int
	staging []float64 // frames owed to the analyzer at the next Advance

	info    CascadeInfo
	emitDue bool
	done    bool
}

// NewCascadeGuard builds a cascade session.
func NewCascadeGuard(cfg CascadeConfig) *CascadeGuard {
	if cfg.Guard.Detector == nil {
		panic("stream: CascadeConfig.Guard.Detector is required")
	}
	if cfg.Guard.FrameSamples <= 0 {
		cfg.Guard.FrameSamples = int(0.020 * cfg.Guard.Rate)
	}
	if cfg.Guard.VADThreshDB <= 0 {
		cfg.Guard.VADThreshDB = 30
	}
	if cfg.EngageHotFrames <= 0 {
		cfg.EngageHotFrames = 3
	}
	if cfg.ReleaseColdFrames <= 0 {
		cfg.ReleaseColdFrames = 25
	}
	if cfg.HotFloorDB == 0 {
		cfg.HotFloorDB = -55
	}
	if cfg.PrerollFrames <= 0 {
		cfg.PrerollFrames = 16
	}
	if cfg.PrerollFrames < cfg.EngageHotFrames+1 {
		cfg.PrerollFrames = cfg.EngageHotFrames + 1
	}
	m := cfg.Metrics
	if m == nil {
		m = newUnregisteredCascadeMetrics()
	}
	b := defense.Bands()
	probes := []float64{
		b.TraceLo + (b.TraceHi-b.TraceLo)*0.1,
		(b.TraceLo + b.TraceHi) / 2,
		b.TraceHi - (b.TraceHi-b.TraceLo)*0.1,
	}
	pr := make([][]float64, cfg.PrerollFrames)
	for i := range pr {
		pr[i] = make([]float64, 0, cfg.Guard.FrameSamples)
	}
	return &CascadeGuard{
		cfg:     cfg,
		m:       m,
		an:      NewAnalyzer(AnalyzerConfig{Rate: cfg.Guard.Rate, MaxCorrSeconds: cfg.Guard.MaxCorrSeconds}),
		vad:     voice.NewStreamVAD(cfg.Guard.Rate, cfg.Guard.VADThreshDB),
		tracker: dsp.NewBandTracker(cfg.Guard.Rate, probes, cfg.Guard.FrameSamples, 0.2),
		pr:      pr,
		staging: make([]float64, 0, (cfg.PrerollFrames+40)*cfg.Guard.FrameSamples),
	}
}

// FrameSamples returns the processing hop in samples.
func (c *CascadeGuard) FrameSamples() int { return c.cfg.Guard.FrameSamples }

// Samples returns the number of samples consumed so far.
func (c *CascadeGuard) Samples() int { return c.samples }

// Latency returns the processing-time statistics so far.
func (c *CascadeGuard) Latency() LatencyStats { return c.lat }

// Engaged reports whether tier 1 is currently live.
func (c *CascadeGuard) Engaged() bool { return c.engaged }

// SetTrace attaches the session flight record (nil detaches it).
func (c *CascadeGuard) SetTrace(st *trace.SessionTrace) { c.tr = st }

// Info returns a snapshot of the cascade counters.
func (c *CascadeGuard) Info() CascadeInfo {
	info := c.info
	info.Engaged = c.engaged
	return info
}

// Stage runs tier-0 triage over the next chunk (the nominal frame is
// FrameSamples; any size works standalone) and, while engaged, banks a
// copy for the analyzer. No heavy DSP runs here. The return value
// reports whether an Advance is owed — staged audio or a due interim
// verdict — matching fleet.BatchProc's contract.
func (c *CascadeGuard) Stage(x []float64) bool {
	if c.done {
		panic("stream: CascadeGuard.Stage after Finalize (Reset first)")
	}
	start := time.Now()
	c.vad.Push(x)
	c.tracker.Push(x)
	framesBefore := c.frames
	c.samples += len(x)
	c.frames = c.samples / c.cfg.Guard.FrameSamples
	hot := c.classify(x)
	if hot {
		c.heat++
		c.coldRun = 0
	} else {
		c.heat -= cascadeHeatLeak
		if c.heat < 0 {
			c.heat = 0
		}
		c.coldRun++
	}
	if c.engaged {
		c.staging = append(c.staging, x...)
		c.info.Tier1Frames++
		c.m.Tier1Frames.Inc()
		if !hot && c.coldRun >= c.cfg.ReleaseColdFrames {
			c.disengage()
		}
	} else {
		c.pushPreroll(x)
		if c.heat >= float64(c.cfg.EngageHotFrames) {
			c.engage() // replays the preroll, current frame included
			c.info.Tier1Frames++
			c.m.Tier1Frames.Inc()
		} else {
			c.info.Tier0Frames++
			c.m.Tier0Frames.Inc()
		}
	}
	elapsed := time.Since(start)
	c.lat.Pushes++
	c.lat.Total += elapsed
	c.lat.Frames = c.frames
	if elapsed > c.lat.MaxPush {
		c.lat.MaxPush = elapsed
	}
	if c.cfg.Guard.EmitEvery > 0 && c.frames/c.cfg.Guard.EmitEvery > framesBefore/c.cfg.Guard.EmitEvery {
		c.emitDue = true
	}
	return len(c.staging) > 0 || c.emitDue
}

// Advance feeds everything staged since the last Advance to the
// analyzer — the deferred heavy half of the frame work, batched by the
// shard across its sessions — and returns the interim verdict that came
// due during staging, if any.
func (c *CascadeGuard) Advance() *Verdict {
	if len(c.staging) > 0 {
		start := time.Now()
		c.an.Push(c.staging)
		c.staging = c.staging[:0]
		elapsed := time.Since(start)
		c.lat.Total += elapsed
		if elapsed > c.lat.MaxPush {
			c.lat.MaxPush = elapsed
		}
	}
	if c.emitDue {
		c.emitDue = false
		v := c.verdict(false)
		return &v
	}
	return nil
}

// Push is the standalone (non-batched) entry point: Stage immediately
// followed by Advance, mirroring Guard.Push's contract.
func (c *CascadeGuard) Push(x []float64) *Verdict {
	c.Stage(x)
	return c.Advance()
}

// Finalize flushes any staged audio and the analyzer, and returns the
// end-of-session verdict. A session that never engaged scores the
// analyzer's empty (floor) feature vector — identical to a full Guard
// fed pure silence. After Finalize, Stage panics until Reset.
func (c *CascadeGuard) Finalize() Verdict {
	if !c.done {
		start := time.Now()
		if len(c.staging) > 0 {
			c.an.Push(c.staging)
			c.staging = c.staging[:0]
		}
		c.an.Finalize()
		c.lat.Total += time.Since(start)
		c.done = true
		c.emitDue = false
		if c.gaugeUp {
			c.m.Tier1Sessions.Add(-1)
			c.gaugeUp = false
		}
	}
	return c.verdict(true)
}

// Reset clears all per-session state for reuse.
func (c *CascadeGuard) Reset() {
	c.an.Reset()
	c.vad.Reset()
	c.tracker.Reset()
	c.lat = LatencyStats{}
	c.samples, c.frames = 0, 0
	c.heat, c.coldRun = 0, 0
	c.engaged = false
	c.tr = nil
	c.lastMargin = 0
	if c.gaugeUp {
		// The fleet aborts sessions via Reset without Finalize; the
		// occupancy gauge must come back down either way.
		c.m.Tier1Sessions.Add(-1)
		c.gaugeUp = false
	}
	c.prHead, c.prCount = 0, 0
	c.staging = c.staging[:0]
	c.info = CascadeInfo{}
	c.emitDue = false
	c.done = false
}

// classify judges one frame hot (suspicious energy) or cold: mean
// square energy at or above the floor, trace-band power at or above the
// floor, or an active VAD. The energy margin is recorded for the
// fleet_cascade_energy_margin_db histogram.
func (c *CascadeGuard) classify(x []float64) bool {
	if len(x) == 0 {
		return false
	}
	var sumSq float64
	for _, v := range x {
		sumSq += v * v
	}
	msq := sumSq / float64(len(x))
	hot := false
	if msq > 0 {
		edb := 10 * math.Log10(msq)
		c.lastMargin = edb - c.cfg.HotFloorDB
		c.m.EnergyMarginDB.Observe(c.lastMargin)
		hot = edb >= c.cfg.HotFloorDB
	}
	if !hot {
		if tb := c.tracker.RollingTotal(); tb > 0 && 10*math.Log10(tb) >= c.cfg.HotFloorDB {
			hot = true
		}
	}
	return hot || c.vad.Active()
}

// pushPreroll banks a raw frame in the preroll ring (copy; the caller
// owns x).
func (c *CascadeGuard) pushPreroll(x []float64) {
	slot := c.pr[c.prHead][:len(x)]
	copy(slot, x)
	c.pr[c.prHead] = slot
	c.prHead = (c.prHead + 1) % len(c.pr)
	if c.prCount < len(c.pr) {
		c.prCount++
	}
}

// engage escalates to tier 1, replaying the preroll ring (oldest first,
// triggering frame last) into staging so the attack onset reaches the
// analyzer.
func (c *CascadeGuard) engage() {
	c.engaged = true
	c.info.Escalations++
	c.m.Escalations.Inc()
	if c.tr != nil {
		c.tr.Record(trace.KindEscalated, c.heat, c.lastMargin)
		c.tr.MarkNotable(trace.NotableEscalated)
	}
	if !c.gaugeUp {
		c.m.Tier1Sessions.Add(1)
		c.gaugeUp = true
	}
	n := len(c.pr)
	first := (c.prHead - c.prCount + 2*n) % n
	for i := 0; i < c.prCount; i++ {
		c.staging = append(c.staging, c.pr[(first+i)%n]...)
	}
	c.prCount = 0
}

// disengage releases tier 1 after the cold hysteresis ran out.
func (c *CascadeGuard) disengage() {
	c.tr.Record(trace.KindReleased, float64(c.coldRun), 0)
	c.engaged = false
	c.heat = 0
	c.coldRun = 0
	c.m.Deescalations.Inc()
	if c.gaugeUp {
		c.m.Tier1Sessions.Add(-1)
		c.gaugeUp = false
	}
}

// verdict scores the current feature snapshot, like Guard.verdict, with
// the cascade state attached.
func (c *CascadeGuard) verdict(final bool) Verdict {
	var f defense.Features
	if final {
		f = c.an.Finalize() // idempotent once done
	} else {
		f = c.an.Features()
	}
	x := f.Vector()
	info := c.Info()
	return Verdict{
		Attack:         c.cfg.Guard.Detector.Predict(x),
		Score:          c.cfg.Guard.Detector.Score(x),
		Features:       f,
		Final:          final,
		Samples:        c.samples,
		Duration:       float64(c.samples) / c.cfg.Guard.Rate,
		SpeechActive:   c.vad.Active(),
		ActiveFraction: c.vad.ActiveFraction(),
		TraceBandPower: c.tracker.RollingTotal(),
		Latency:        c.lat,
		Cascade:        &info,
	}
}

// cascadeProc runs a CascadeGuard as a fleet batch processor: Stage on
// every frame, Advance batched by the shard across co-resident
// sessions. The guard itself records escalation/release events; the
// proc adds the verdict events and the drift observation.
type cascadeProc struct {
	g     *CascadeGuard
	drift *trace.DriftMonitor
}

func (p *cascadeProc) FrameSamples() int { return p.g.FrameSamples() }

func (p *cascadeProc) SetTrace(st *trace.SessionTrace) { p.g.SetTrace(st) }

func (p *cascadeProc) Push(frame []float64) interface{} {
	if v := p.g.Push(frame); v != nil {
		p.g.tr.RecordVerdict(false, finiteOr(v.Score, -1e308), v.Attack)
		return v
	}
	return nil
}

func (p *cascadeProc) Stage(frame []float64) bool { return p.g.Stage(frame) }

func (p *cascadeProc) Advance() interface{} {
	if v := p.g.Advance(); v != nil {
		p.g.tr.RecordVerdict(false, finiteOr(v.Score, -1e308), v.Attack)
		return v
	}
	return nil
}

func (p *cascadeProc) Finalize() interface{} {
	v := p.g.Finalize()
	p.g.tr.RecordVerdict(true, finiteOr(v.Score, -1e308), v.Attack)
	if p.drift != nil {
		p.drift.Observe(v.Features.Vector())
	}
	return &v
}

func (p *cascadeProc) Reset() { p.g.Reset() }

var _ fleet.BatchProc = (*cascadeProc)(nil)
