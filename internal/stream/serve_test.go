package stream

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"inaudible/internal/audio"
)

// encodePCMSession frames sig in the length-prefixed GRD1 protocol.
func encodePCMSession(sig *audio.Signal, chunkSamples int) []byte {
	var b bytes.Buffer
	b.WriteString(Magic)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(sig.Rate))
	b.Write(u32[:])
	for off := 0; off < len(sig.Samples); off += chunkSamples {
		end := off + chunkSamples
		if end > len(sig.Samples) {
			end = len(sig.Samples)
		}
		chunk := sig.Samples[off:end]
		binary.LittleEndian.PutUint32(u32[:], uint32(2*len(chunk)))
		b.Write(u32[:])
		for _, v := range chunk {
			if v > 1 {
				v = 1
			} else if v < -1 {
				v = -1
			}
			var s [2]byte
			binary.LittleEndian.PutUint16(s[:], uint16(int16(v*32767)))
			b.Write(s[:])
		}
	}
	binary.LittleEndian.PutUint32(u32[:], 0)
	b.Write(u32[:])
	return b.Bytes()
}

// finalVerdict parses the session's verdict lines and returns the final
// one, checking stream shape on the way.
func finalVerdict(t *testing.T, out []byte) wireVerdict {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) == 0 {
		t.Fatalf("no verdict lines in response")
	}
	var v wireVerdict
	for i, line := range lines {
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("line %d not valid JSON: %v (%q)", i, err, line)
		}
		if i < len(lines)-1 && v.Final {
			t.Fatalf("final verdict before last line (%d/%d)", i, len(lines))
		}
	}
	if !v.Final {
		t.Fatalf("last line not final: %q", lines[len(lines)-1])
	}
	return v
}

func TestServePCMSession(t *testing.T) {
	const rate = 48000.0
	det := testDetector(t)
	srv := NewServer(ServerConfig{Detector: det, Workers: 2, EmitEvery: 25})
	sig := attackLike(rate, 2.0, 60)

	var out bytes.Buffer
	if err := srv.ServeSession(bytes.NewReader(encodePCMSession(sig, 960)), &out); err != nil {
		t.Fatalf("ServeSession: %v", err)
	}
	v := finalVerdict(t, out.Bytes())
	if !v.Attack {
		t.Fatalf("attack session not flagged: %+v", v)
	}
	if v.Samples != sig.Len() {
		t.Fatalf("final verdict samples = %d, want %d", v.Samples, sig.Len())
	}
	if v.Features["sub50-log-ratio"] == 0 {
		t.Fatalf("features missing from wire verdict: %+v", v)
	}
	if srv.Sessions() != 1 || srv.ActiveSessions() != 0 {
		t.Fatalf("session counters: served=%d active=%d", srv.Sessions(), srv.ActiveSessions())
	}
}

func TestServeWAVSession(t *testing.T) {
	const rate = 48000.0
	det := testDetector(t)
	srv := NewServer(ServerConfig{Detector: det})
	sig := legitLike(rate, 2.0, 61)
	var wav bytes.Buffer
	if err := audio.WriteWAV(&wav, sig); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := srv.ServeSession(&wav, &out); err != nil {
		t.Fatalf("ServeSession: %v", err)
	}
	if v := finalVerdict(t, out.Bytes()); v.Attack {
		t.Fatalf("legit WAV session flagged as attack: %+v", v)
	}
}

func TestServeSessionReusesGuards(t *testing.T) {
	// Back-to-back same-rate sessions recycle pooled guard state and
	// stay deterministic.
	const rate = 48000.0
	det := testDetector(t)
	srv := NewServer(ServerConfig{Detector: det, Workers: 1})
	sig := attackLike(rate, 1.5, 62)
	session := encodePCMSession(sig, 4096)
	var got []wireVerdict
	for i := 0; i < 3; i++ {
		var out bytes.Buffer
		if err := srv.ServeSession(bytes.NewReader(session), &out); err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		got = append(got, finalVerdict(t, out.Bytes()))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Score != got[0].Score || got[i].Attack != got[0].Attack {
			t.Fatalf("pooled session %d diverged: %+v vs %+v", i, got[i], got[0])
		}
	}
}

func TestServeProtocolErrors(t *testing.T) {
	det := testDetector(t)
	srv := NewServer(ServerConfig{Detector: det})
	cases := map[string][]byte{
		"bad-magic": []byte("NOPE----"),
		"bad-rate": func() []byte {
			var b bytes.Buffer
			b.WriteString(Magic)
			var u32 [4]byte
			binary.LittleEndian.PutUint32(u32[:], 8000) // below the voice band
			b.Write(u32[:])
			return b.Bytes()
		}(),
		"truncated": []byte(Magic),
	}
	for name, session := range cases {
		var out bytes.Buffer
		err := srv.ServeSession(bytes.NewReader(session), &out)
		if err == nil {
			t.Errorf("%s: expected an error", name)
			continue
		}
		var line struct {
			Error string `json:"error"`
		}
		if jerr := json.Unmarshal(bytes.TrimSpace(out.Bytes()), &line); jerr != nil || line.Error == "" {
			t.Errorf("%s: expected an error line, got %q", name, out.String())
		}
	}
}

func TestServeListenerConcurrentSessions(t *testing.T) {
	// Eight concurrent TCP sessions through a 4-slot pool: the serving
	// half of the race-mode acceptance gate.
	const rate = 48000.0
	const sessions = 8
	det := testDetector(t)
	srv := NewServer(ServerConfig{Detector: det, Workers: 4, EmitEvery: 20})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.ServeListener(l) }()

	attack := encodePCMSession(attackLike(rate, 1.2, 70), 960)
	legit := encodePCMSession(legitLike(rate, 1.2, 71), 960)

	var wg sync.WaitGroup
	errs := make([]error, sessions)
	verdicts := make([]wireVerdict, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			session := attack
			if i%2 == 1 {
				session = legit
			}
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				errs[i] = err
				return
			}
			defer conn.Close()
			if _, err := conn.Write(session); err != nil {
				errs[i] = err
				return
			}
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
			sc := bufio.NewScanner(conn)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			var last string
			for sc.Scan() {
				last = sc.Text()
			}
			if err := sc.Err(); err != nil {
				errs[i] = err
				return
			}
			if err := json.Unmarshal([]byte(last), &verdicts[i]); err != nil {
				errs[i] = fmt.Errorf("parsing %q: %w", last, err)
			}
		}(i)
	}
	wg.Wait()
	l.Close()
	if err := <-done; err != nil {
		t.Fatalf("ServeListener: %v", err)
	}
	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		wantAttack := i%2 == 0
		if !verdicts[i].Final || verdicts[i].Attack != wantAttack {
			t.Errorf("session %d: final=%v attack=%v, want final attack=%v",
				i, verdicts[i].Final, verdicts[i].Attack, wantAttack)
		}
	}
	if srv.Sessions() != sessions {
		t.Fatalf("served %d sessions, want %d", srv.Sessions(), sessions)
	}
}
