package stream_test

import (
	"testing"

	"inaudible/internal/core"
	"inaudible/internal/experiment"
	"inaudible/internal/stream"
)

// TestCascadeCorpusParity is the false-negative budget gate: over the
// E9-E13 style simulated corpus (quick grid), the cascade must not
// miss any attack the always-on Guard catches — zero added false
// negatives. Added false positives are reported but not gated (they
// are a cost knob, not a security hole). The tier05 subtest holds the
// tier-0.5 decimated coarse triage (PR 8) to the same zero-FN budget:
// the aliasing of its naive decimator folds out-of-band energy INTO
// the analysis bands, so the veto is fail-open by construction, and
// this gate pins that on real corpus audio.
//
// This test lives in an external package because building the corpus
// pulls in internal/core, which reaches back into stream via the sim
// chain — an import cycle for an in-package test.
func TestCascadeCorpusParity(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus simulation in -short mode")
	}
	cfg := experiment.QuickCorpusConfig(experiment.DefaultCorpusConfig(core.DefaultScenario()))
	legit, err := experiment.BuildLegit(cfg)
	if err != nil {
		t.Fatalf("building legit corpus: %v", err)
	}
	attacks, err := experiment.BuildAttacks(cfg)
	if err != nil {
		t.Fatalf("building attack corpus: %v", err)
	}
	recs := append(legit, attacks...)
	det := stream.TestDetectorForParity(t)

	for _, tc := range []struct {
		name string
		cfg  stream.CascadeConfig
	}{
		{"base", stream.CascadeConfig{}},
		{"tier05", stream.CascadeConfig{Tier05: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var addedFN, addedFP, checked, vetoes int
			for _, rec := range recs {
				rate := rec.Signal.Rate
				want := stream.GuardFinalForParity(det, rate, rec.Signal)
				got := stream.CascadeFinalForParity(det, rate, rec.Signal, tc.cfg)
				checked++
				vetoes += got.Cascade.Tier05Vetoes
				if want.Attack && !got.Attack {
					addedFN++
					t.Errorf("added false negative on %s (guard score %+.3f, cascade score %+.3f, cascade %+v)",
						rec.Label, want.Score, got.Score, *got.Cascade)
				}
				if !want.Attack && got.Attack {
					addedFP++
					t.Logf("added false positive on %s (guard score %+.3f, cascade score %+.3f)",
						rec.Label, want.Score, got.Score)
				}
			}
			if checked == 0 {
				t.Fatalf("empty corpus")
			}
			t.Logf("corpus parity over %d recordings: %d added FN (budget 0), %d added FP, %d tier-0.5 vetoes",
				checked, addedFN, addedFP, vetoes)
			if addedFN != 0 {
				t.Fatalf("cascade added %d false negatives over %d recordings; budget is zero", addedFN, checked)
			}
		})
	}
}
