package stream_test

import (
	"testing"

	"inaudible/internal/core"
	"inaudible/internal/experiment"
	"inaudible/internal/stream"
)

// TestCascadeCorpusParity is the PR's false-negative budget gate: over
// the E9-E13 style simulated corpus (quick grid), the cascade must not
// miss any attack the always-on Guard catches — zero added false
// negatives. Added false positives are reported but not gated (they are
// a cost knob, not a security hole).
//
// This test lives in an external package because building the corpus
// pulls in internal/core, which reaches back into stream via the sim
// chain — an import cycle for an in-package test.
func TestCascadeCorpusParity(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus simulation in -short mode")
	}
	cfg := experiment.QuickCorpusConfig(experiment.DefaultCorpusConfig(core.DefaultScenario()))
	legit, err := experiment.BuildLegit(cfg)
	if err != nil {
		t.Fatalf("building legit corpus: %v", err)
	}
	attacks, err := experiment.BuildAttacks(cfg)
	if err != nil {
		t.Fatalf("building attack corpus: %v", err)
	}
	det := stream.TestDetectorForParity(t)

	var addedFN, addedFP, checked int
	for _, rec := range append(legit, attacks...) {
		rate := rec.Signal.Rate
		want := stream.GuardFinalForParity(det, rate, rec.Signal)
		got := stream.CascadeFinalForParity(det, rate, rec.Signal, stream.CascadeConfig{})
		checked++
		if want.Attack && !got.Attack {
			addedFN++
			t.Errorf("added false negative on %s (guard score %+.3f, cascade score %+.3f, cascade %+v)",
				rec.Label, want.Score, got.Score, *got.Cascade)
		}
		if !want.Attack && got.Attack {
			addedFP++
			t.Logf("added false positive on %s (guard score %+.3f, cascade score %+.3f)",
				rec.Label, want.Score, got.Score)
		}
	}
	if checked == 0 {
		t.Fatalf("empty corpus")
	}
	t.Logf("corpus parity over %d recordings: %d added FN (budget 0), %d added FP", checked, addedFN, addedFP)
	if addedFN != 0 {
		t.Fatalf("cascade added %d false negatives over %d recordings; budget is zero", addedFN, checked)
	}
}
