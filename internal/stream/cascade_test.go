package stream

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"inaudible/internal/audio"
	"inaudible/internal/defense"
)

// feedCascade mirrors feedGuard: frame-sized pushes, then Finalize.
func feedCascade(c *CascadeGuard, sig *audio.Signal) []Verdict {
	var verdicts []Verdict
	frame := c.FrameSamples()
	for off := 0; off < len(sig.Samples); off += frame {
		end := off + frame
		if end > len(sig.Samples) {
			end = len(sig.Samples)
		}
		if v := c.Push(sig.Samples[off:end]); v != nil {
			verdicts = append(verdicts, *v)
		}
	}
	verdicts = append(verdicts, c.Finalize())
	return verdicts
}

// cascadeFinal runs sig through a fresh CascadeGuard and returns the
// final verdict.
func cascadeFinal(det defense.Detector, rate float64, sig *audio.Signal, cfg CascadeConfig) Verdict {
	cfg.Guard.Rate = rate
	cfg.Guard.Detector = det
	c := NewCascadeGuard(cfg)
	vs := feedCascade(c, sig)
	return vs[len(vs)-1]
}

// guardFinal runs sig through a fresh plain Guard — the non-cascade
// reference every cascade verdict is pinned against.
func guardFinal(det defense.Detector, rate float64, sig *audio.Signal) Verdict {
	g := NewGuard(GuardConfig{Rate: rate, Detector: det})
	vs := feedGuard(g, sig)
	return vs[len(vs)-1]
}

// silence returns n seconds of exact zeros.
func silence(rate, seconds float64) *audio.Signal {
	return &audio.Signal{Rate: rate, Samples: make([]float64, int(rate*seconds))}
}

// concat joins signals at a shared rate.
func concat(rate float64, sigs ...*audio.Signal) *audio.Signal {
	out := &audio.Signal{Rate: rate}
	for _, s := range sigs {
		out.Samples = append(out.Samples, s.Samples...)
	}
	return out
}

// TestCascadeMidAttackParity covers a session that starts mid-attack:
// hot audio from the very first frame. The cascade must escalate and
// reach the same final verdict as the always-on Guard.
func TestCascadeMidAttackParity(t *testing.T) {
	const rate = 48000.0
	det := testDetector(t)
	sig := attackLike(rate, 2.0, 70)

	want := guardFinal(det, rate, sig)
	got := cascadeFinal(det, rate, sig, CascadeConfig{})

	if got.Cascade == nil {
		t.Fatalf("cascade verdict missing CascadeInfo")
	}
	if got.Attack != want.Attack {
		t.Fatalf("mid-attack start: cascade attack=%v, guard attack=%v", got.Attack, want.Attack)
	}
	if got.Cascade.Escalations == 0 || got.Cascade.Tier1Frames == 0 {
		t.Fatalf("hot-from-frame-0 session never escalated: %+v", *got.Cascade)
	}
	if got.Samples != sig.Len() {
		t.Fatalf("final samples = %d, want %d", got.Samples, sig.Len())
	}
	// The preroll ring covers the few frames before the escalation, so
	// the analyzer saw the identical sample stream: features must match
	// the Guard's exactly, not just the thresholded verdict.
	if got.Features != want.Features {
		t.Fatalf("features diverged from guard:\n  cascade %v\n  guard   %v", got.Features, want.Features)
	}
}

// TestCascadeStraddleParity covers an attack straddling the tier-0 →
// tier-1 escalation: a silence prefix keeps the session parked in
// tier 0, then the attack onset must escalate without losing the onset
// (preroll replay) or the verdict.
func TestCascadeStraddleParity(t *testing.T) {
	const rate = 48000.0
	det := testDetector(t)
	sig := concat(rate, silence(rate, 1.0), attackLike(rate, 1.5, 71))

	want := guardFinal(det, rate, sig)
	got := cascadeFinal(det, rate, sig, CascadeConfig{})

	if got.Attack != want.Attack {
		t.Fatalf("straddled attack: cascade attack=%v, guard attack=%v", got.Attack, want.Attack)
	}
	ci := got.Cascade
	if ci == nil || ci.Escalations == 0 {
		t.Fatalf("attack after silence never escalated: %+v", ci)
	}
	if ci.Tier0Frames == 0 {
		t.Fatalf("silence prefix should have stayed in tier 0: %+v", *ci)
	}
	if ci.Tier1Frames == 0 {
		t.Fatalf("attack tail should have run in tier 1: %+v", *ci)
	}
}

// TestCascadeHysteresisResistsFlapping covers an attacker alternating
// hot bursts with single cold frames to flap past the gate. The leaky
// heat counter must still escalate, and the cold singles must never
// release tier 1 (release needs a long consecutive cold run).
func TestCascadeHysteresisResistsFlapping(t *testing.T) {
	const rate = 48000.0
	det := testDetector(t)
	sig := attackLike(rate, 2.0, 72)

	// Zero out every third frame: 2 hot, 1 cold, repeating. A
	// consecutive-K escalation rule with K=3 would never fire; the leaky
	// counter (+1 hot, -1/8 cold) must.
	frame := int(0.020 * rate)
	for off := 0; off+frame <= len(sig.Samples); off += frame {
		if (off/frame)%3 == 2 {
			for i := off; i < off+frame; i++ {
				sig.Samples[i] = 0
			}
		}
	}

	want := guardFinal(det, rate, sig)
	got := cascadeFinal(det, rate, sig, CascadeConfig{})

	ci := got.Cascade
	if ci == nil || ci.Escalations == 0 {
		t.Fatalf("flapping input never escalated: %+v", ci)
	}
	if ci.Escalations != 1 {
		t.Fatalf("flapping input escalated %d times, want exactly 1 (hysteresis should hold tier 1)", ci.Escalations)
	}
	if got.Attack != want.Attack {
		t.Fatalf("flapping attack: cascade attack=%v, guard attack=%v", got.Attack, want.Attack)
	}
}

// TestCascadeSilenceStaysTier0 pins the capacity win: a pure-silence
// session must never engage the analyzer, and its final verdict must
// still agree with a full Guard fed the same silence (both score the
// floor feature vector).
func TestCascadeSilenceStaysTier0(t *testing.T) {
	const rate = 48000.0
	det := testDetector(t)
	sig := silence(rate, 2.0)

	want := guardFinal(det, rate, sig)
	got := cascadeFinal(det, rate, sig, CascadeConfig{})

	ci := got.Cascade
	if ci == nil {
		t.Fatalf("cascade verdict missing CascadeInfo")
	}
	if ci.Engaged || ci.Escalations != 0 || ci.Tier1Frames != 0 {
		t.Fatalf("silence reached tier 1: %+v", *ci)
	}
	if ci.Tier0Frames == 0 {
		t.Fatalf("no frames accounted to tier 0: %+v", *ci)
	}
	if got.Attack != want.Attack || got.Features != want.Features {
		t.Fatalf("silence verdict diverged from guard:\n  cascade %+v\n  guard   %+v", got, want)
	}
	if got.Samples != sig.Len() {
		t.Fatalf("final samples = %d, want %d", got.Samples, sig.Len())
	}
}

// TestCascadeReleaseAndReengage drives the full hysteresis cycle: an
// attack burst, a cold gap longer than the release run, then a second
// burst. Tier 1 must release exactly once and re-engage for the second
// burst, and the verdict must still match the always-on Guard.
func TestCascadeReleaseAndReengage(t *testing.T) {
	const rate = 48000.0
	det := testDetector(t)
	sig := concat(rate,
		attackLike(rate, 0.8, 73),
		silence(rate, 1.2), // 60 cold frames >> ReleaseColdFrames=25
		attackLike(rate, 0.8, 74),
	)

	want := guardFinal(det, rate, sig)
	got := cascadeFinal(det, rate, sig, CascadeConfig{})

	ci := got.Cascade
	if ci == nil || ci.Escalations != 2 {
		t.Fatalf("burst-gap-burst should escalate exactly twice: %+v", ci)
	}
	if ci.Tier0Frames == 0 {
		t.Fatalf("cold gap should have returned frames to tier 0: %+v", *ci)
	}
	if got.Attack != want.Attack {
		t.Fatalf("re-engaged attack: cascade attack=%v, guard attack=%v", got.Attack, want.Attack)
	}
}

// TestCascadeInterimWhileCold verifies that interim verdicts still
// surface while the cascade is parked in tier 0 (the Stage return value
// must report a due emission even with nothing staged).
func TestCascadeInterimWhileCold(t *testing.T) {
	const rate = 48000.0
	det := testDetector(t)
	c := NewCascadeGuard(CascadeConfig{Guard: GuardConfig{Rate: rate, Detector: det, EmitEvery: 25}})
	sig := silence(rate, 2.0)

	vs := feedCascade(c, sig)
	frames := sig.Len() / c.FrameSamples()
	wantInterim := frames / 25
	if len(vs) != wantInterim+1 {
		t.Fatalf("got %d verdicts over cold stream, want %d interim + 1 final", len(vs), wantInterim)
	}
	for i, v := range vs[:len(vs)-1] {
		if v.Final {
			t.Fatalf("interim verdict %d marked final", i)
		}
		if v.Cascade == nil || v.Cascade.Engaged {
			t.Fatalf("cold interim verdict %d reports engagement: %+v", i, v.Cascade)
		}
	}
}

// TestCascadeStageAdvanceSplit exercises the batched entry points the
// fleet uses (Stage on every frame, Advance deferred) and pins them
// against the chained Push path.
func TestCascadeStageAdvanceSplit(t *testing.T) {
	const rate = 48000.0
	det := testDetector(t)
	sig := concat(rate, silence(rate, 0.5), attackLike(rate, 1.0, 75))

	chained := cascadeFinal(det, rate, sig, CascadeConfig{})

	c := NewCascadeGuard(CascadeConfig{Guard: GuardConfig{Rate: rate, Detector: det}})
	frame := c.FrameSamples()
	// Stage a whole "round" of frames before each Advance, like a shard
	// serving this session alongside busy neighbours.
	const roundFrames = 8
	staged := false
	for off, k := 0, 0; off < len(sig.Samples); off += frame {
		end := off + frame
		if end > len(sig.Samples) {
			end = len(sig.Samples)
		}
		if c.Stage(sig.Samples[off:end]) {
			staged = true
		}
		if k++; k == roundFrames {
			if staged {
				c.Advance()
			}
			staged, k = false, 0
		}
	}
	split := c.Finalize()

	if split.Attack != chained.Attack || split.Features != chained.Features {
		t.Fatalf("batched Stage/Advance diverged from Push:\n  split   %+v\n  chained %+v", split, chained)
	}
	if split.Samples != chained.Samples {
		t.Fatalf("split samples = %d, chained = %d", split.Samples, chained.Samples)
	}
}

// TestCascadeReset verifies a reused cascade guard is indistinguishable
// from a fresh one — the fleet recycles procs across sessions.
func TestCascadeReset(t *testing.T) {
	const rate = 48000.0
	det := testDetector(t)
	sig := concat(rate, silence(rate, 0.3), attackLike(rate, 1.0, 76))

	c := NewCascadeGuard(CascadeConfig{Guard: GuardConfig{Rate: rate, Detector: det}})
	first := feedCascade(c, sig)
	c.Reset()
	if c.Samples() != 0 || c.Engaged() || c.Info() != (CascadeInfo{}) {
		t.Fatalf("Reset left session state: samples=%d info=%+v", c.Samples(), c.Info())
	}
	second := feedCascade(c, sig)
	f1, f2 := first[len(first)-1], second[len(second)-1]
	if f1.Features != f2.Features || *f1.Cascade != *f2.Cascade {
		t.Fatalf("reused cascade diverged:\n  first  %+v %+v\n  second %+v %+v", f1.Features, *f1.Cascade, f2.Features, *f2.Cascade)
	}
}

// TestCascadeWireSession runs a cascade-enabled server end to end and
// checks the cascade block rides the wire verdict — and stays absent
// when the cascade is off (old clients see byte-identical JSON shape).
func TestCascadeWireSession(t *testing.T) {
	const rate = 48000.0
	det := testDetector(t)
	sig := concat(rate, silence(rate, 0.5), attackLike(rate, 1.5, 77))
	session := encodePCMSession(sig, 960)

	srv := NewServer(ServerConfig{Detector: det, Workers: 1, Cascade: true})
	var out bytes.Buffer
	if err := srv.ServeSession(bytes.NewReader(session), &out); err != nil {
		t.Fatalf("ServeSession: %v", err)
	}
	v := finalVerdict(t, out.Bytes())
	if v.Cascade == nil {
		t.Fatalf("cascade server verdict missing cascade block: %+v", v)
	}
	if v.Cascade.Escalations == 0 || v.Cascade.Tier1Frames == 0 {
		t.Fatalf("cascade wire counters empty: %+v", *v.Cascade)
	}
	if v.Cascade.Tier0Frames == 0 {
		t.Fatalf("silence prefix missing from tier-0 count: %+v", *v.Cascade)
	}
	if v.Samples != sig.Len() {
		t.Fatalf("final samples = %d, want %d", v.Samples, sig.Len())
	}

	plain := NewServer(ServerConfig{Detector: det, Workers: 1})
	out.Reset()
	if err := plain.ServeSession(bytes.NewReader(session), &out); err != nil {
		t.Fatalf("ServeSession (plain): %v", err)
	}
	if pv := finalVerdict(t, out.Bytes()); pv.Cascade != nil {
		t.Fatalf("non-cascade server leaked cascade block: %+v", *pv.Cascade)
	}
	if bytes.Contains(out.Bytes(), []byte(`"cascade"`)) {
		t.Fatalf("non-cascade wire output mentions cascade: %s", out.Bytes())
	}
}

// TestCascadeMetricsWiring checks the shared fleet_cascade_* instrument
// set: escalation/deescalation counts, tier frame totals, and that the
// tier-1 occupancy gauge returns to zero however the session ends
// (Finalize or fleet-style Reset-on-abort).
func TestCascadeMetricsWiring(t *testing.T) {
	const rate = 48000.0
	det := testDetector(t)
	m := newUnregisteredCascadeMetrics()
	mk := func() *CascadeGuard {
		return NewCascadeGuard(CascadeConfig{Guard: GuardConfig{Rate: rate, Detector: det}, Metrics: m})
	}
	sig := concat(rate, silence(rate, 0.5), attackLike(rate, 1.0, 78))

	feedCascade(mk(), sig)
	if m.Escalations.Value() == 0 || m.Tier1Frames.Value() == 0 || m.Tier0Frames.Value() == 0 {
		t.Fatalf("counters not advanced: esc=%d t0=%d t1=%d",
			m.Escalations.Value(), m.Tier0Frames.Value(), m.Tier1Frames.Value())
	}
	if g := m.Tier1Sessions.Value(); g != 0 {
		t.Fatalf("tier-1 gauge leaked after Finalize: %d", g)
	}

	// Abort path: the fleet resets a live proc without Finalize.
	c := mk()
	frame := c.FrameSamples()
	atk := attackLike(rate, 0.5, 79)
	for off := 0; off+frame <= len(atk.Samples); off += frame {
		c.Stage(atk.Samples[off : off+frame])
	}
	if !c.Engaged() {
		t.Fatalf("attack burst did not engage before abort")
	}
	c.Reset()
	if g := m.Tier1Sessions.Value(); g != 0 {
		t.Fatalf("tier-1 gauge leaked after Reset-on-abort: %d", g)
	}

	// The energy-margin histogram spans negative dB: the quantile must
	// interpolate from the observed minimum, not a hardcoded zero.
	if m.EnergyMarginDB.Count() == 0 {
		t.Fatalf("energy margin histogram never observed")
	}
	for _, q := range []float64{0, 0.5, 1} {
		v := m.EnergyMarginDB.Quantile(q)
		if v < m.EnergyMarginDB.Min() || v > m.EnergyMarginDB.Max() {
			t.Fatalf("margin q%.2f=%v outside observed [%v, %v]",
				q, v, m.EnergyMarginDB.Min(), m.EnergyMarginDB.Max())
		}
	}
}

// TestCascadeFleetParity runs the same sessions through a cascade
// fleet and standalone cascade guards: the two-phase shard batching
// (Stage in phase 1, Advance in phase 2) must not change any verdict.
func TestCascadeFleetParity(t *testing.T) {
	const rate = 48000.0
	det := testDetector(t)
	srv := NewServer(ServerConfig{Detector: det, Workers: 2, Cascade: true, EmitEvery: 25})

	for i, sig := range []*audio.Signal{
		concat(rate, silence(rate, 0.5), attackLike(rate, 1.5, 80)),
		legitLike(rate, 2.0, 81),
		silence(rate, 2.0),
	} {
		want := cascadeFinal(det, rate, sig, CascadeConfig{Guard: GuardConfig{EmitEvery: 25}})
		var out bytes.Buffer
		if err := srv.ServeSession(bytes.NewReader(encodePCMSession(sig, 960)), &out); err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		v := finalVerdict(t, out.Bytes())
		if v.Attack != want.Attack {
			t.Errorf("session %d: fleet attack=%v, standalone=%v", i, v.Attack, want.Attack)
		}
		if v.Cascade == nil {
			t.Fatalf("session %d: fleet verdict missing cascade block", i)
		}
		wi := want.Cascade
		gotInfo := fmt.Sprintf("t0=%d t1=%d esc=%d", v.Cascade.Tier0Frames, v.Cascade.Tier1Frames, v.Cascade.Escalations)
		wantInfo := fmt.Sprintf("t0=%d t1=%d esc=%d", wi.Tier0Frames, wi.Tier1Frames, wi.Escalations)
		if gotInfo != wantInfo {
			t.Errorf("session %d: fleet cascade counters %s, standalone %s", i, gotInfo, wantInfo)
		}
	}
}

// TestCascadeTier05VetoesRumble pins the tier-0.5 coarse triage from
// both sides. An infrasonic offset wander (2 Hz at -40 dBFS — mic bias
// drift, handling pressure) crosses the -55 dB hot floor on most
// frames and leaks into the VAD and the trace-band probes, yet its
// within-frame AC power sits below the floor: with Tier05 on it must
// be demoted frame by frame and never escalate, while the same stream
// without Tier05 escalates on the leaked loudness — the
// false-escalation cost the triage removes. A voice-band tone must
// never be vetoed, and an attack burst must escalate identically with
// the triage on.
func TestCascadeTier05VetoesRumble(t *testing.T) {
	const rate = 48000.0
	det := testDetector(t)

	rumble := &audio.Signal{Rate: rate, Samples: make([]float64, int(rate)*2)}
	for i := range rumble.Samples {
		rumble.Samples[i] = 0.01 * math.Sin(2*math.Pi*2*float64(i)/rate)
	}

	hot := cascadeFinal(det, rate, rumble, CascadeConfig{})
	if hot.Cascade.Escalations == 0 {
		t.Fatalf("control: rumble did not escalate without tier-0.5 (test signal too cold): %+v", *hot.Cascade)
	}
	cold := cascadeFinal(det, rate, rumble, CascadeConfig{Tier05: true})
	if cold.Cascade.Tier05Vetoes == 0 {
		t.Fatalf("tier-0.5 never vetoed an offset/rumble frame: %+v", *cold.Cascade)
	}
	if cold.Cascade.Escalations != 0 || cold.Cascade.Tier1Frames != 0 {
		t.Fatalf("band-free rumble still escalated with tier-0.5 on: %+v", *cold.Cascade)
	}

	tone := &audio.Signal{Rate: rate, Samples: make([]float64, int(rate)*2)}
	for i := range tone.Samples {
		tone.Samples[i] = 0.27 * math.Sin(2*math.Pi*440*float64(i)/rate)
	}
	tv := cascadeFinal(det, rate, tone, CascadeConfig{Tier05: true})
	if tv.Cascade.Tier05Vetoes != 0 {
		t.Fatalf("tier-0.5 vetoed voice-band frames: %+v", *tv.Cascade)
	}
	if tv.Cascade.Escalations == 0 {
		t.Fatalf("voice-band tone did not escalate with tier-0.5 on: %+v", *tv.Cascade)
	}

	atk := attackLike(rate, 1.5, 82)
	base := cascadeFinal(det, rate, atk, CascadeConfig{})
	with := cascadeFinal(det, rate, atk, CascadeConfig{Tier05: true})
	if with.Attack != base.Attack || with.Features != base.Features {
		t.Fatalf("tier-0.5 changed an attack verdict:\n  with    %+v\n  without %+v", with.Features, base.Features)
	}
	if with.Cascade.Escalations != base.Cascade.Escalations {
		t.Fatalf("tier-0.5 changed attack escalation count: with=%d without=%d",
			with.Cascade.Escalations, base.Cascade.Escalations)
	}
}
