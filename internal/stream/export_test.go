package stream

// Bridges for the external stream_test package (cascade_corpus_test.go),
// which must live outside package stream because the corpus builder
// (internal/experiment → internal/core → internal/sim) imports stream.
var (
	TestDetectorForParity = testDetector
	GuardFinalForParity   = guardFinal
	CascadeFinalForParity = cascadeFinal
)
