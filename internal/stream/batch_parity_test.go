package stream

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"inaudible/internal/audio"
)

// verdictKey serializes every wire-visible field of a verdict except
// the timing-dependent latency block — the byte-parity unit for the
// batched-path comparisons. %v on float64 prints the shortest string
// that round-trips, so two keys match iff the floats are bit-identical
// (modulo -0 vs +0, which the DSP never produces).
func verdictKey(v Verdict) string {
	s := fmt.Sprintf("attack=%v score=%v feat=%v final=%v samples=%d dur=%v vad=%v af=%v tb=%v",
		v.Attack, v.Score, v.Features, v.Final, v.Samples, v.Duration,
		v.SpeechActive, v.ActiveFraction, v.TraceBandPower)
	if v.Cascade != nil {
		s += fmt.Sprintf(" cascade=%+v", *v.Cascade)
	}
	return s
}

// burstySignal splices attack, legit, and silence segments so cascade
// sessions engage and release mid-stream at rng-chosen offsets.
func burstySignal(rate float64, rng *rand.Rand) *audio.Signal {
	out := &audio.Signal{Rate: rate}
	segs := 3 + rng.Intn(3)
	for i := 0; i < segs; i++ {
		var seg *audio.Signal
		switch rng.Intn(3) {
		case 0:
			seg = attackLike(rate, 0.3+0.3*rng.Float64(), rng.Int63())
		case 1:
			seg = legitLike(rate, 0.3+0.3*rng.Float64(), rng.Int63())
		default:
			seg = silence(rate, 0.2+0.3*rng.Float64())
		}
		out.Samples = append(out.Samples, seg.Samples...)
	}
	return out
}

// frameSchedule is one trial's deterministic replay plan: per-session
// frame slices plus per-round stage counts, so every serving mode
// observes the identical interleaving.
type frameSchedule struct {
	frames [][][]float64 // [session][frame] -> samples
	rounds [][]int       // [round][session] -> frames staged that round
}

func makeSchedule(rng *rand.Rand, sigs []*audio.Signal, frame int) frameSchedule {
	var sc frameSchedule
	for _, sig := range sigs {
		var fs [][]float64
		for off := 0; off < len(sig.Samples); off += frame {
			end := off + frame
			if end > len(sig.Samples) {
				end = len(sig.Samples)
			}
			fs = append(fs, sig.Samples[off:end])
		}
		sc.frames = append(sc.frames, fs)
	}
	next := make([]int, len(sigs))
	for {
		row := make([]int, len(sigs))
		any, progress := false, false
		for s := range sigs {
			rem := len(sc.frames[s]) - next[s]
			if rem > 0 {
				any = true
			}
			k := rng.Intn(4)
			if k > rem {
				k = rem
			}
			row[s] = k
			next[s] += k
			if k > 0 {
				progress = true
			}
		}
		if !any {
			break
		}
		if !progress {
			// Force progress so the schedule terminates: stage one frame
			// from the first session with audio remaining.
			for s := range sigs {
				if next[s] < len(sc.frames[s]) {
					row[s], next[s] = 1, next[s]+1
					break
				}
			}
		}
		sc.rounds = append(sc.rounds, row)
	}
	return sc
}

// TestColumnBatchParity drives the same frame schedules through the
// three serving shapes — chained Push, per-session Stage+Advance
// rounds, and column-batched rounds sharing one ColumnEngines per the
// fleet protocol (Collect every session, one Run, then Advance each) —
// across randomized engage/release interleavings of 2-8 co-resident
// sessions. Plain-Guard verdict lines must be byte-identical across
// all three modes; cascade lines are byte-identical between the two
// round modes, with finals pinned across all three (round mode folds
// multiple chained-mode emit boundaries into one interim, a PR 6
// semantic this test inherits).
func TestColumnBatchParity(t *testing.T) {
	const rate = 48000.0
	det := testDetector(t)
	rng := rand.New(rand.NewSource(0x5eed8))

	for trial, emitEvery := range []int{0, 10, 0, 25} {
		n := 2 + rng.Intn(7)
		sigs := make([]*audio.Signal, n)
		for i := range sigs {
			sigs[i] = burstySignal(rate, rng)
		}
		gcfg := GuardConfig{Rate: rate, Detector: det, EmitEvery: emitEvery}
		frame := NewGuard(gcfg).FrameSamples()
		sc := makeSchedule(rng, sigs, frame)

		// --- plain guards ---
		chained := make([][]string, n)
		for s := 0; s < n; s++ {
			g := NewGuard(gcfg)
			for _, f := range sc.frames[s] {
				if v := g.Push(f); v != nil {
					chained[s] = append(chained[s], verdictKey(*v))
				}
			}
			fin := g.Finalize()
			chained[s] = append(chained[s], verdictKey(fin))
		}
		runRounds := func(batched bool) [][]string {
			out := make([][]string, n)
			guards := make([]*Guard, n)
			for s := range guards {
				guards[s] = NewGuard(gcfg)
			}
			ce := NewColumnEngines()
			next := make([]int, n)
			staged := make([]bool, n)
			for _, row := range sc.rounds {
				for s, k := range row {
					staged[s] = false
					for j := 0; j < k; j++ {
						if guards[s].Stage(sc.frames[s][next[s]]) {
							staged[s] = true
						}
						next[s]++
					}
				}
				if batched {
					any := false
					for s := range guards {
						if staged[s] && guards[s].CollectColumns(ce) {
							any = true
						}
					}
					if any {
						ce.Run()
					}
				}
				for s := range guards {
					if staged[s] {
						for _, v := range guards[s].Advance() {
							out[s] = append(out[s], verdictKey(*v))
						}
					}
				}
				ce.Reset()
			}
			for s := range guards {
				out[s] = append(out[s], verdictKey(guards[s].Finalize()))
			}
			return out
		}
		rounds, columns := runRounds(false), runRounds(true)
		for s := 0; s < n; s++ {
			if got, want := fmt.Sprint(rounds[s]), fmt.Sprint(chained[s]); got != want {
				t.Fatalf("trial %d session %d: Stage+Advance diverged from chained Push:\n  rounds  %s\n  chained %s", trial, s, got, want)
			}
			if got, want := fmt.Sprint(columns[s]), fmt.Sprint(chained[s]); got != want {
				t.Fatalf("trial %d session %d: column-batched diverged from chained Push:\n  columns %s\n  chained %s", trial, s, got, want)
			}
		}

		// --- cascade guards over the same schedule ---
		ccfg := CascadeConfig{Guard: gcfg}
		cChained := make([]string, n)
		for s := 0; s < n; s++ {
			c := NewCascadeGuard(ccfg)
			for _, f := range sc.frames[s] {
				c.Push(f)
			}
			cChained[s] = verdictKey(c.Finalize())
		}
		runCascade := func(batched bool) (lines [][]string, finals []string) {
			lines, finals = make([][]string, n), make([]string, n)
			guards := make([]*CascadeGuard, n)
			for s := range guards {
				guards[s] = NewCascadeGuard(ccfg)
			}
			ce := NewColumnEngines()
			next := make([]int, n)
			staged := make([]bool, n)
			for _, row := range sc.rounds {
				for s, k := range row {
					staged[s] = false
					for j := 0; j < k; j++ {
						if guards[s].Stage(sc.frames[s][next[s]]) {
							staged[s] = true
						}
						next[s]++
					}
				}
				if batched {
					any := false
					for s := range guards {
						if staged[s] && guards[s].CollectColumns(ce) {
							any = true
						}
					}
					if any {
						ce.Run()
					}
				}
				for s := range guards {
					if staged[s] {
						if v := guards[s].Advance(); v != nil {
							lines[s] = append(lines[s], verdictKey(*v))
						}
					}
				}
				ce.Reset()
			}
			for s := range guards {
				fin := verdictKey(guards[s].Finalize())
				lines[s] = append(lines[s], fin)
				finals[s] = fin
			}
			return lines, finals
		}
		cRounds, cRoundFinals := runCascade(false)
		cColumns, cColumnFinals := runCascade(true)
		for s := 0; s < n; s++ {
			if got, want := fmt.Sprint(cColumns[s]), fmt.Sprint(cRounds[s]); got != want {
				t.Fatalf("trial %d session %d: column-batched cascade diverged from Stage+Advance:\n  columns %s\n  rounds  %s", trial, s, got, want)
			}
			if cRoundFinals[s] != cChained[s] {
				t.Fatalf("trial %d session %d: cascade round final diverged from chained:\n  round   %s\n  chained %s", trial, s, cRoundFinals[s], cChained[s])
			}
			if cColumnFinals[s] != cChained[s] {
				t.Fatalf("trial %d session %d: cascade column final diverged from chained:\n  columns %s\n  chained %s", trial, s, cColumnFinals[s], cChained[s])
			}
		}
	}
}

// TestBatchedPathZeroAllocs gates the steady-state column-batched
// analysis cycle (PushStaged, Run, CompleteStaged, Reset) at zero
// allocations per frame, the same budget the inline Push path holds.
// The warmup drives past the correlation cap and the stat-frame cap so
// every lazily-grown buffer has reached steady state.
func TestBatchedPathZeroAllocs(t *testing.T) {
	a := NewAnalyzer(AnalyzerConfig{Rate: 48000, MaxCorrSeconds: 1, MaxStatSeconds: 3})
	ce := NewColumnEngines()
	chunk := make([]float64, 960)
	for i := range chunk {
		chunk[i] = 0.1 * math.Sin(2*math.Pi*440*float64(i)/48000)
	}
	cycle := func() {
		a.PushStaged(chunk, ce)
		ce.Run()
		a.CompleteStaged(ce)
		ce.Reset()
	}
	for i := 0; i < 300; i++ { // 6 s of audio
		cycle()
	}
	if n := testing.AllocsPerRun(100, cycle); n != 0 {
		t.Fatalf("batched path allocates %.1f per frame in steady state, want 0", n)
	}
}
