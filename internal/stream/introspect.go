package stream

import (
	"net/http"

	"inaudible/internal/fleet"
	"inaudible/internal/journal"
	"inaudible/internal/telemetry"
	"inaudible/internal/trace"
)

// The introspection plane: JSON endpoints mounted on the telemetry HTTP
// port that answer "what is the fleet doing right now, and what did
// that session see". Everything here reads atomics or cold-path
// recorder state — mounting introspection never perturbs the serving
// path.

// FleetView is the /fleet response body: the serving core's snapshot
// plus the wire layer's counters and the flight recorder's retention
// stats.
type FleetView struct {
	// Node is the serving process's cluster identity (empty when
	// standalone) so /fleet snapshots from several nodes can sit side by
	// side without ambiguity.
	Node string `json:"node,omitempty"`
	fleet.Status
	WireSessionsTotal  int64          `json:"wire_sessions_total"`
	WireSessionsActive int64          `json:"wire_sessions_active"`
	Recorder           *trace.Stats   `json:"recorder,omitempty"`
	Journal            *journal.Stats `json:"journal,omitempty"`
}

// FleetView assembles the /fleet snapshot.
func (s *Server) FleetView() FleetView {
	v := FleetView{
		Node:               s.cfg.Node,
		Status:             s.fl.Status(),
		WireSessionsTotal:  s.sessions.Load(),
		WireSessionsActive: s.active.Load(),
	}
	if s.cfg.Trace != nil {
		st := s.cfg.Trace.Stats()
		v.Recorder = &st
	}
	if s.cfg.Journal != nil {
		js := s.cfg.Journal.Stats()
		v.Journal = &js
	}
	return v
}

// MountIntrospection adds the fleet introspection endpoints to mux
// (typically the telemetry mux already serving /metrics):
//
//	/sessions      — flight-recorder listing: live sessions plus
//	                 retained exemplars (404 when tracing is off)
//	/sessions/{id} — one session's full event trace
//	/shards        — per-shard worker counters
//	/fleet         — fleet-wide snapshot (admission, wire, recorder)
//	/drift         — per-feature divergence vs the training
//	                 distribution (404 when drift telemetry is off)
//	/journal       — durable journal listing + health stats (404 when
//	                 journaling is off); paginated like /sessions
//	/journal/{seq} — one CRC-verified journal record with its event
//	                 log and captured feature frames
func (s *Server) MountIntrospection(mux *http.ServeMux) {
	mux.HandleFunc("/sessions", s.cfg.Trace.ServeSessions)
	mux.HandleFunc("/sessions/", s.cfg.Trace.ServeSessions)
	mux.HandleFunc("/shards", func(w http.ResponseWriter, req *http.Request) {
		telemetry.WriteJSON(w, s.fl.ShardStatus())
	})
	mux.HandleFunc("/fleet", func(w http.ResponseWriter, req *http.Request) {
		telemetry.WriteJSON(w, s.FleetView())
	})
	mux.HandleFunc("/drift", s.cfg.Drift.ServeDrift)
	mux.HandleFunc("/journal", s.cfg.Journal.ServeJournal)
	mux.HandleFunc("/journal/", s.cfg.Journal.ServeJournal)
}
