package stream

import (
	"inaudible/internal/dsp"
	"inaudible/internal/fleet"
)

// ColumnEngines is the shard-level FFT column batcher: one
// dsp.BatchedRFFT per transform size, shared by every co-resident
// session of a shard round. Sessions stage their pending Welch/STFT
// columns into the engines during the collect half of the round, the
// shard runs one Transform per size over all columns at once (keeping
// each plan's twiddle/bit-reversal/window tables hot across sessions),
// and each session then completes its analysis from the precomputed
// spectra. A ColumnEngines is single-goroutine state owned by one
// shard worker; it implements fleet.RoundBatcher.
type ColumnEngines struct {
	engines []*dsp.BatchedRFFT
}

// NewColumnEngines builds an empty engine set. Engines are created on
// first demand per size; the streaming analyzer uses exactly two
// (defense.ExtractFFTSize and defense.FrameFFTSize), so the linear
// scan in Engine is effectively free.
func NewColumnEngines() *ColumnEngines {
	return &ColumnEngines{}
}

// Engine returns the batched engine for transform size n, creating it
// (and its plan) on first use.
func (ce *ColumnEngines) Engine(n int) *dsp.BatchedRFFT {
	for _, e := range ce.engines {
		if e.Size() == n {
			return e
		}
	}
	e := dsp.NewBatchedRFFT(dsp.NewRFFTPlan(n))
	ce.engines = append(ce.engines, e)
	return e
}

// Run transforms every staged column of every engine in one batched
// pass per size (fleet.RoundBatcher).
func (ce *ColumnEngines) Run() {
	for _, e := range ce.engines {
		e.Transform()
	}
}

// Reset recycles the engines' arenas for the next round
// (fleet.RoundBatcher).
func (ce *ColumnEngines) Reset() {
	for _, e := range ce.engines {
		e.Reset()
	}
}

var _ fleet.RoundBatcher = (*ColumnEngines)(nil)
