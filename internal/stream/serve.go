package stream

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"inaudible/internal/audio"
	"inaudible/internal/defense"
)

// runtimeWorkers is the default session concurrency.
func runtimeWorkers() int { return runtime.GOMAXPROCS(0) }

// Wire protocol of the guard service. One connection (or one stdin run)
// carries one audio session, in either of two self-identifying formats:
//
//   - Streaming WAV: a mono 16-bit PCM WAV stream ("RIFF" magic),
//     decoded incrementally via audio.WAVReader — never buffered whole.
//   - Length-prefixed PCM: "GRD1" magic, uint32 LE sample rate, then
//     chunks of [uint32 LE byte length | int16 LE PCM payload]; a zero
//     length ends the session.
//
// The service answers with JSON verdict lines as the session
// progresses: zero or more {"final":false,...} interim lines (every
// ServerConfig.EmitEvery frames) and exactly one {"final":true,...}
// line at end of session. Malformed sessions get one {"error":...}
// line.

// Magic is the length-prefixed PCM session preamble.
const Magic = "GRD1"

// MaxChunkBytes bounds one length-prefixed PCM chunk (1 MiB, ~10 s at
// 48 kHz) so a hostile length prefix cannot balloon allocations.
const MaxChunkBytes = 1 << 20

// ErrProtocol reports a malformed session stream.
var ErrProtocol = errors.New("stream: malformed session")

// ServerConfig wires the concurrent guard service.
type ServerConfig struct {
	// Detector scores every session; it is shared and only read.
	Detector defense.Detector
	// Workers caps concurrent sessions, with experiment.Runner's pool
	// semantics: excess sessions queue for a slot instead of failing.
	// <= 0 selects GOMAXPROCS.
	Workers int
	// EmitEvery streams an interim verdict line every EmitEvery frames;
	// 0 sends only the final verdict.
	EmitEvery int
	// MaxCorrSeconds bounds each session's correlation memory
	// (see AnalyzerConfig).
	MaxCorrSeconds float64
}

// Server runs guard sessions over byte streams with bounded
// concurrency and pooled per-session state. Guards (with their FFT
// segments and accumulator frames) are recycled through a sync.Pool, so
// steady traffic at one sample rate allocates no fresh session state.
type Server struct {
	cfg      ServerConfig
	sem      chan struct{}
	guards   sync.Pool // *Guard, possibly of mismatched rate
	scratch  sync.Pool // *sessionScratch
	sessions atomic.Int64
	active   atomic.Int64
}

// sessionScratch is the pooled per-session I/O state.
type sessionScratch struct {
	pcm []byte
	smp []float64
	br  *bufio.Reader
	bw  *bufio.Writer
}

// NewServer builds a guard service around a trained detector.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Detector == nil {
		panic("stream: ServerConfig.Detector is required")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtimeWorkers()
	}
	return &Server{cfg: cfg, sem: make(chan struct{}, workers)}
}

// Sessions returns the number of sessions served (including failed).
func (s *Server) Sessions() int64 { return s.sessions.Load() }

// ActiveSessions returns the number of sessions currently in flight.
func (s *Server) ActiveSessions() int64 { return s.active.Load() }

// Workers reports the session concurrency cap.
func (s *Server) Workers() int { return cap(s.sem) }

// ServeListener accepts one session per connection until the listener
// closes, fanning sessions across the worker pool. Connections beyond
// the pool size queue for a slot (backpressure, not rejection).
func (s *Server) ServeListener(l net.Listener) error {
	var wg sync.WaitGroup
	for {
		conn, err := l.Accept()
		if err != nil {
			wg.Wait()
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.sem <- struct{}{} // acquire a session slot before spawning
		wg.Add(1)
		go func() {
			defer func() { <-s.sem; wg.Done(); conn.Close() }()
			s.serve(conn, conn)
		}()
	}
}

// ServeSession runs one session from r, writing verdict lines to w —
// the stdin/stdout entry point. It occupies a worker slot like a
// connection does.
func (s *Server) ServeSession(r io.Reader, w io.Writer) error {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	return s.serve(r, w)
}

// serve decodes one session and streams verdicts.
func (s *Server) serve(r io.Reader, w io.Writer) error {
	s.sessions.Add(1)
	s.active.Add(1)
	defer s.active.Add(-1)

	sc, _ := s.scratch.Get().(*sessionScratch)
	if sc == nil {
		sc = &sessionScratch{
			pcm: make([]byte, 64<<10),
			smp: make([]float64, 32<<10),
			br:  bufio.NewReaderSize(nil, 64<<10),
			bw:  bufio.NewWriterSize(nil, 4<<10),
		}
	}
	sc.br.Reset(r)
	sc.bw.Reset(w)
	defer func() {
		sc.bw.Flush()
		s.scratch.Put(sc)
	}()

	err := s.serveDecoded(sc)
	if err != nil {
		writeJSONLine(sc.bw, map[string]string{"error": err.Error()})
	}
	if ferr := sc.bw.Flush(); err == nil {
		err = ferr
	}
	return err
}

// serveDecoded dispatches on the session magic and runs the guard.
func (s *Server) serveDecoded(sc *sessionScratch) error {
	magic, err := sc.br.Peek(4)
	if err != nil {
		return fmt.Errorf("%w: reading magic: %v", ErrProtocol, err)
	}
	switch string(magic) {
	case "RIFF":
		wr, err := audio.NewWAVReader(sc.br)
		if err != nil {
			return err
		}
		return s.runSession(sc, wr.Rate(), func(dst []float64) (int, error) { return wr.Read(dst) })
	case Magic:
		if _, err := sc.br.Discard(4); err != nil {
			return err
		}
		var rateBuf [4]byte
		if _, err := io.ReadFull(sc.br, rateBuf[:]); err != nil {
			return fmt.Errorf("%w: reading sample rate: %v", ErrProtocol, err)
		}
		rate := float64(binary.LittleEndian.Uint32(rateBuf[:]))
		pcm := &pcmChunkReader{br: sc.br, buf: sc.pcm}
		err := s.runSession(sc, rate, pcm.read)
		sc.pcm = pcm.buf // keep a buffer grown for large chunks pooled
		return err
	default:
		return fmt.Errorf("%w: unknown magic %q (want RIFF or %s)", ErrProtocol, magic, Magic)
	}
}

// pcmChunkReader decodes the length-prefixed PCM framing.
type pcmChunkReader struct {
	br      *bufio.Reader
	buf     []byte
	pending []byte // undecoded remainder of the current chunk
	done    bool
}

// read decodes up to len(dst) samples from the chunk stream.
func (p *pcmChunkReader) read(dst []float64) (int, error) {
	if len(p.pending) == 0 {
		if p.done {
			return 0, io.EOF
		}
		var lenBuf [4]byte
		if _, err := io.ReadFull(p.br, lenBuf[:]); err != nil {
			return 0, fmt.Errorf("%w: reading chunk length: %v", ErrProtocol, err)
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n == 0 {
			p.done = true
			return 0, io.EOF
		}
		if n > MaxChunkBytes {
			return 0, fmt.Errorf("%w: chunk of %d bytes exceeds %d", ErrProtocol, n, MaxChunkBytes)
		}
		if n%2 != 0 {
			return 0, fmt.Errorf("%w: odd chunk length %d", ErrProtocol, n)
		}
		if cap(p.buf) < int(n) {
			p.buf = make([]byte, n)
		}
		buf := p.buf[:n]
		if _, err := io.ReadFull(p.br, buf); err != nil {
			return 0, fmt.Errorf("%w: reading chunk payload: %v", ErrProtocol, err)
		}
		p.pending = buf
	}
	n := len(dst)
	if n > len(p.pending)/2 {
		n = len(p.pending) / 2
	}
	for i := 0; i < n; i++ {
		dst[i] = float64(int16(binary.LittleEndian.Uint16(p.pending[2*i:]))) / 32767
	}
	p.pending = p.pending[2*n:]
	return n, nil
}

// runSession pulls frames from next into a pooled guard and streams
// verdict lines.
func (s *Server) runSession(sc *sessionScratch, rate float64, next func([]float64) (int, error)) error {
	minRate := 2 * defense.Bands().VoiceHi
	if rate <= minRate || rate > 1e6 {
		return fmt.Errorf("%w: sample rate %g outside (%g, 1e6]", ErrProtocol, rate, minRate)
	}
	g := s.guard(rate)
	defer func() {
		g.Reset()
		s.guards.Put(g)
	}()

	frame := g.FrameSamples()
	if frame > len(sc.smp) {
		sc.smp = make([]float64, frame)
	}
	for {
		n, err := next(sc.smp[:frame])
		if n > 0 {
			if v := g.Push(sc.smp[:n]); v != nil {
				if werr := writeVerdict(sc.bw, v); werr != nil {
					return werr
				}
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
	}
	v := g.Finalize()
	return writeVerdict(sc.bw, &v)
}

// guard fetches a pooled guard for the session rate, rebuilding when
// the pooled one was sized for a different rate.
func (s *Server) guard(rate float64) *Guard {
	if g, _ := s.guards.Get().(*Guard); g != nil && g.cfg.Rate == rate {
		return g
	}
	return NewGuard(GuardConfig{
		Rate:           rate,
		Detector:       s.cfg.Detector,
		EmitEvery:      s.cfg.EmitEvery,
		MaxCorrSeconds: s.cfg.MaxCorrSeconds,
	})
}

// wireVerdict is the JSON wire form of a Verdict.
type wireVerdict struct {
	Attack         bool               `json:"attack"`
	Score          float64            `json:"score"`
	Final          bool               `json:"final"`
	Samples        int                `json:"samples"`
	DurationS      float64            `json:"duration_s"`
	VADActive      float64            `json:"vad_active"`
	TraceBandPower float64            `json:"trace_band_power"`
	Features       map[string]float64 `json:"features"`
	LatencyMeanUS  float64            `json:"latency_mean_us"`
	LatencyMaxUS   float64            `json:"latency_max_us"`
}

// writeVerdict encodes one verdict line.
func writeVerdict(w io.Writer, v *Verdict) error {
	names := defense.FeatureNames()
	vec := v.Features.Vector()
	feats := make(map[string]float64, len(names))
	for i, n := range names {
		feats[n] = vec[i]
	}
	return writeJSONLine(w, wireVerdict{
		Attack:         v.Attack,
		Score:          finiteOr(v.Score, -1e308),
		Final:          v.Final,
		Samples:        v.Samples,
		DurationS:      v.Duration,
		VADActive:      v.ActiveFraction,
		TraceBandPower: v.TraceBandPower,
		Features:       feats,
		LatencyMeanUS:  float64(v.Latency.MeanPerFrame().Microseconds()),
		LatencyMaxUS:   float64(v.Latency.MaxPush.Microseconds()),
	})
}

// finiteOr guards JSON encoding against non-finite scores (a hand-built
// ThresholdDetector with no valid features scores -Inf).
func finiteOr(v, fallback float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return fallback
	}
	return v
}

// writeJSONLine marshals v followed by a newline.
func writeJSONLine(w io.Writer, v interface{}) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
