package stream

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"inaudible/internal/audio"
	"inaudible/internal/defense"
	"inaudible/internal/fleet"
	"inaudible/internal/journal"
	"inaudible/internal/telemetry"
	"inaudible/internal/trace"
)

// Wire protocol of the guard service. One connection (or one stdin run)
// carries one audio session, in either of two self-identifying formats:
//
//   - Streaming WAV: a mono 16-bit PCM WAV stream ("RIFF" magic),
//     decoded incrementally via audio.WAVReader — never buffered whole.
//   - Length-prefixed PCM: "GRD1" magic, uint32 LE sample rate, then
//     chunks of [uint32 LE byte length | int16 LE PCM payload]; a zero
//     length ends the session.
//
// The service answers with JSON verdict lines as the session
// progresses: zero or more {"final":false,...} interim lines (every
// ServerConfig.EmitEvery frames) and exactly one {"final":true,...}
// line at end of session. Malformed sessions get one {"error":...}
// line. Sessions served in the overload degradation class additionally
// carry "degraded":true (see DegradedGuard).
//
// Hostile-input hardening: headers are validated before any session
// state is built. Sample rates outside (MinSampleRate, MaxSampleRate]
// and chunks that are oversized, odd-length, or truncated all fail with
// an ErrProtocol error naming the offending value and the limit.

// Magic is the length-prefixed PCM session preamble.
const Magic = "GRD1"

// MaxChunkBytes bounds one length-prefixed PCM chunk (1 MiB, ~10 s at
// 48 kHz) so a hostile length prefix cannot balloon allocations.
const MaxChunkBytes = 1 << 20

// MaxSampleRate bounds the session sample rate (384 kHz, the highest
// real ADC family); a hostile GRD1 header cannot demand gigahertz frame
// buffers.
const MaxSampleRate = 384000

// MinSampleRate is the exclusive lower bound of usable session rates:
// below twice the defense's voice-band edge the features are undefined.
func MinSampleRate() float64 { return 2 * defense.Bands().VoiceHi }

// ErrProtocol reports a malformed session stream.
var ErrProtocol = errors.New("stream: malformed session")

// ErrShutdown reports a session cut short by server shutdown.
var ErrShutdown = errors.New("stream: session aborted by server shutdown")

// ServerConfig wires the concurrent guard service.
type ServerConfig struct {
	// Detector scores every full-service session; it is shared and only
	// read.
	Detector defense.Detector
	// Workers caps concurrent full-service sessions with the PR 2
	// worker-pool semantics: excess sessions queue for a slot
	// (backpressure) instead of failing. <= 0 selects GOMAXPROCS.
	// Superseded by MaxSessions when that is set.
	Workers int
	// MaxSessions caps concurrent full-service sessions; 0 defers to
	// Workers, < 0 means unlimited.
	MaxSessions int
	// Shards is the number of serving shards (worker goroutines) the
	// fleet multiplexes sessions onto; <= 0 selects GOMAXPROCS.
	Shards int
	// Degrade switches the overload behaviour from queueing to graceful
	// degradation: sessions beyond the cap are served by DegradedGuard
	// (VAD + trace band only, full analysis deferred) up to 2x the cap,
	// and explicitly rejected beyond that.
	Degrade bool
	// RingFrames is the per-session frame-ring depth; <= 0 selects 16.
	RingFrames int
	// EmitEvery streams an interim verdict line every EmitEvery frames;
	// 0 sends only the final verdict.
	EmitEvery int
	// MaxCorrSeconds bounds each session's correlation memory
	// (see AnalyzerConfig).
	MaxCorrSeconds float64
	// Cascade serves full-service sessions through the two-tier
	// CascadeGuard instead of the always-on Guard: cheap triage on every
	// frame, the full analyzer only while tier 0 sees suspicious energy,
	// heavy DSP batched per shard. Degraded sessions are unaffected.
	Cascade bool
	// CascadeHotFrames, CascadeColdFrames, CascadeFloorDB and
	// CascadePreroll tune the cascade hysteresis (see CascadeConfig);
	// zero values select the defaults.
	CascadeHotFrames  int
	CascadeColdFrames int
	CascadeFloorDB    float64
	CascadePreroll    int
	// CascadeTier05 enables the tier-0.5 coarse spectral triage on
	// cascade sessions (see CascadeConfig.Tier05).
	CascadeTier05 bool
	// CascadeFloorAuto auto-tunes the cascade hot floor from the
	// fleet-wide energy-margin distribution: a FloorController retuned
	// every few seconds by the server, seeded at CascadeFloorDB,
	// exported as fleet_cascade_floor_db. Only meaningful with Cascade.
	CascadeFloorAuto bool
	// Metrics registers the fleet's instruments (admission, frame and
	// verdict latency, ring occupancy, drops — plus the fleet_cascade_*
	// set when Cascade is on) in the given registry; nil serves without
	// exposition but still counts internally.
	Metrics *telemetry.Registry
	// Trace is the optional flight recorder: every session gets a
	// bounded per-session event trace, queryable via the /sessions
	// introspection endpoints (see Server.MountIntrospection). Nil
	// serves without tracing at zero per-frame cost.
	Trace *trace.Recorder
	// Drift is the optional feature-drift monitor fed the final feature
	// vector of every fully-analyzed session, served at /drift.
	Drift *trace.DriftMonitor
	// Journal is the optional durable session journal: every sealed
	// trace is handed to it over per-shard SPSC rings and appended to
	// the crash-safe WAL, queryable via the /journal endpoints and
	// replayable with cmd/replay. Requires Trace (the journal records
	// sealed traces; without a recorder there is nothing to record).
	Journal *journal.Journal
	// Node is this server's identity in a multi-node deployment, echoed
	// by the /fleet introspection endpoint so side-by-side node
	// snapshots are distinguishable. Empty for standalone servers.
	Node string
}

// Server runs guard sessions over byte streams on the sharded fleet
// core: each session is admitted (with backpressure or degradation),
// routed by affinity to a shard worker that owns its Guard, and fed
// through a bounded SPSC frame ring — the per-frame path is lock- and
// allocation-free, and per-session I/O buffers are recycled through a
// sync.Pool.
type Server struct {
	cfg      ServerConfig
	fl       *fleet.Fleet
	scratch  sync.Pool // *sessionScratch
	sessions atomic.Int64
	active   atomic.Int64

	// floor is the auto-tuned cascade hot floor (nil unless
	// CascadeFloorAuto); the tuner goroutine retunes it until Shutdown.
	floor     *FloorController
	tunerStop chan struct{}
	tunerDone chan struct{}
	tunerOnce sync.Once

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

// sessionScratch is the pooled per-session I/O state.
type sessionScratch struct {
	pcm []byte
	br  *bufio.Reader
	bw  *bufio.Writer
}

// floorRetuneInterval is the cadence of the server's floor-tuner
// goroutine; with FloorControllerConfig.StepDB it bounds the floor's
// slew rate (1 dB per interval by default).
const floorRetuneInterval = 5 * time.Second

// NewServer builds a guard service around a trained detector.
func NewServer(cfg ServerConfig) *Server {
	fl, fc := newFleet(cfg)
	s := &Server{cfg: cfg, fl: fl, floor: fc}
	if fc != nil {
		s.tunerStop = make(chan struct{})
		s.tunerDone = make(chan struct{})
		go func() {
			defer close(s.tunerDone)
			t := time.NewTicker(floorRetuneInterval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					fc.Retune()
				case <-s.tunerStop:
					return
				}
			}
		}()
	}
	return s
}

// CascadeFloor returns the auto-tuned floor controller, or nil when
// the server runs with a fixed floor.
func (s *Server) CascadeFloor() *FloorController { return s.floor }

// NewFleet builds the sharded serving core a Server runs on, exposed
// for in-process load generation and benchmarks that want the fleet
// without the wire framing.
func NewFleet(cfg ServerConfig) *fleet.Fleet {
	fl, _ := newFleet(cfg)
	return fl
}

// newFleet builds the fleet plus the floor controller the server's
// tuner drives (nil unless Cascade and CascadeFloorAuto).
func newFleet(cfg ServerConfig) (*fleet.Fleet, *FloorController) {
	if cfg.Detector == nil {
		panic("stream: ServerConfig.Detector is required")
	}
	if cfg.Journal != nil && cfg.Trace == nil {
		panic("stream: ServerConfig.Journal requires Trace (the journal records sealed traces)")
	}
	maxSessions := cfg.MaxSessions
	switch {
	case maxSessions < 0:
		maxSessions = 0 // unlimited
	case maxSessions == 0:
		if cfg.Workers > 0 {
			maxSessions = cfg.Workers
		} else {
			maxSessions = runtime.GOMAXPROCS(0)
		}
	}
	ringFrames := cfg.RingFrames
	if ringFrames <= 0 {
		ringFrames = 16
	}
	// The no-interim-drop proof below needs the ring depth the fleet
	// actually builds (power-of-two rounded), not the requested one.
	ringFrames = fleet.RingCapacity(ringFrames)
	var metrics *fleet.Metrics
	if cfg.Metrics != nil {
		metrics = fleet.NewMetrics(cfg.Metrics)
	}
	var cascadeMetrics *CascadeMetrics
	var floor *FloorController
	if cfg.Cascade {
		// One shared instrument set across every cascade session of this
		// fleet (the procs themselves are per-session).
		if cfg.Metrics != nil {
			cascadeMetrics = NewCascadeMetrics(cfg.Metrics)
		} else {
			cascadeMetrics = newUnregisteredCascadeMetrics()
		}
		if cfg.CascadeFloorAuto {
			gauge := &telemetry.FloatGauge{}
			if cfg.Metrics != nil {
				gauge = cfg.Metrics.NewFloatGauge("fleet_cascade_floor_db", "cascade hot floor currently in effect (dBFS; auto-tuned)")
			}
			floor = NewFloorController(FloorControllerConfig{
				InitialDB: cfg.CascadeFloorDB,
				Margins:   cascadeMetrics.EnergyMarginDB,
				Gauge:     gauge,
			})
		}
	}
	return fleet.New(fleet.Config{
		Shards:      cfg.Shards,
		RingFrames:  ringFrames,
		MaxSessions: maxSessions,
		Degrade:     cfg.Degrade,
		// Without degradation, keep the PR 2 contract: excess sessions
		// queue for a slot instead of failing.
		WaitAdmission: !cfg.Degrade,
		// Every ring frame can emit at most one interim verdict, and the
		// serve loop drains events after each publish — with headroom for
		// a full ring plus the in-flight frame, wire sessions never drop
		// interim lines (the reserve cell keeps finals unconditional).
		EventBuffer: ringFrames + 2,
		FrameFor:    func(rate float64) int { return int(0.020 * rate) },
		NewProc: func(rate float64, degraded bool) fleet.Proc {
			gc := GuardConfig{
				Rate:           rate,
				Detector:       cfg.Detector,
				EmitEvery:      cfg.EmitEvery,
				MaxCorrSeconds: cfg.MaxCorrSeconds,
			}
			if degraded {
				return &degradedProc{g: NewDegradedGuard(gc)}
			}
			if cfg.Cascade {
				return &cascadeProc{g: NewCascadeGuard(CascadeConfig{
					Guard:             gc,
					EngageHotFrames:   cfg.CascadeHotFrames,
					ReleaseColdFrames: cfg.CascadeColdFrames,
					HotFloorDB:        cfg.CascadeFloorDB,
					PrerollFrames:     cfg.CascadePreroll,
					Metrics:           cascadeMetrics,
					Tier05:            cfg.CascadeTier05,
					Floor:             floor,
				}), drift: cfg.Drift}
			}
			return &guardProc{g: NewGuard(gc), drift: cfg.Drift}
		},
		// One FFT column batch per shard round: co-resident sessions'
		// Welch/STFT columns transform in a single pass over shared,
		// cache-hot plan tables (see ColumnEngines).
		NewRoundBatcher: func() fleet.RoundBatcher { return NewColumnEngines() },
		Metrics:         metrics,
		Trace:           cfg.Trace,
		NewSessionSink:  sessionSinks(cfg.Journal),
		RejectSink:      rejectSink(cfg.Journal),
	}), floor
}

// sessionSinks adapts the journal's per-shard SPSC handoff to the
// fleet's SessionSink factory; a nil journal disables the handoff.
func sessionSinks(j *journal.Journal) func(shard int) fleet.SessionSink {
	if j == nil {
		return nil
	}
	return func(shard int) fleet.SessionSink { return j.ShardSink(shard) }
}

// rejectSink routes rejected sessions' synthetic traces to the journal.
func rejectSink(j *journal.Journal) fleet.SessionSink {
	if j == nil {
		return nil
	}
	return j.SharedSink()
}

// Sessions returns the number of sessions served (including failed).
func (s *Server) Sessions() int64 { return s.sessions.Load() }

// ActiveSessions returns the number of sessions currently in flight.
func (s *Server) ActiveSessions() int64 { return s.active.Load() }

// Workers reports the full-service session cap (0: unlimited).
func (s *Server) Workers() int { return s.fl.MaxSessions() }

// Fleet returns the serving core, for telemetry and capacity probes.
func (s *Server) Fleet() *fleet.Fleet { return s.fl }

// Shutdown stops admitting sessions, waits for in-flight sessions to
// drain, and stops the shard workers. If ctx expires first, remaining
// sessions are force-aborted and their connections closed (unblocking
// readers stalled on idle peers), so ServeListener always returns.
// Close the listener before calling it so no new connections arrive.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.tunerStop != nil {
		s.tunerOnce.Do(func() { close(s.tunerStop) })
		<-s.tunerDone
	}
	err := s.fl.Close(ctx)
	if err != nil {
		s.connMu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.connMu.Unlock()
	}
	return err
}

// track registers a live connection for forced shutdown.
func (s *Server) track(conn net.Conn) {
	s.connMu.Lock()
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[conn] = struct{}{}
	s.connMu.Unlock()
}

// untrack forgets a finished connection.
func (s *Server) untrack(conn net.Conn) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
}

// ServeListener accepts one session per connection until the listener
// closes, fanning sessions across the fleet. Connections beyond the
// admission cap queue for a slot (backpressure) or degrade, per
// ServerConfig.Degrade.
func (s *Server) ServeListener(l net.Listener) error {
	var wg sync.WaitGroup
	for {
		conn, err := l.Accept()
		if err != nil {
			wg.Wait()
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.track(conn)
		wg.Add(1)
		go func() {
			defer func() { s.untrack(conn); conn.Close(); wg.Done() }()
			s.serve(conn, conn)
		}()
	}
}

// ServeSession runs one session from r, writing verdict lines to w —
// the stdin/stdout entry point. It is subject to admission control like
// a connection is.
func (s *Server) ServeSession(r io.Reader, w io.Writer) error {
	return s.serveKeyed(0, r, w)
}

// ServeSessionKeyed is ServeSession with a caller-supplied affinity
// key (0 selects a fresh one): a cluster router forwards its own
// session key so shard placement and the flight-recorder identity line
// up across the router and the node serving the session.
func (s *Server) ServeSessionKeyed(key uint64, r io.Reader, w io.Writer) error {
	return s.serveKeyed(key, r, w)
}

// SetDraining flips the serving fleet's drain state (see
// fleet.SetDraining): a draining node finishes in-flight sessions but
// refuses new ones, so a cluster router can take it out of rotation
// without dropping a single final verdict.
func (s *Server) SetDraining(v bool) { s.fl.SetDraining(v) }

// serve decodes one session and streams verdicts.
func (s *Server) serve(r io.Reader, w io.Writer) error {
	return s.serveKeyed(0, r, w)
}

// serveKeyed decodes one session, admitted under the given affinity
// key (0: fresh), and streams verdicts.
func (s *Server) serveKeyed(key uint64, r io.Reader, w io.Writer) error {
	s.sessions.Add(1)
	s.active.Add(1)
	defer s.active.Add(-1)

	sc, _ := s.scratch.Get().(*sessionScratch)
	if sc == nil {
		sc = &sessionScratch{
			pcm: make([]byte, 64<<10),
			br:  bufio.NewReaderSize(nil, 64<<10),
			bw:  bufio.NewWriterSize(nil, 4<<10),
		}
	}
	sc.br.Reset(r)
	sc.bw.Reset(w)
	defer func() {
		sc.bw.Flush()
		s.scratch.Put(sc)
	}()

	err := s.serveDecoded(key, sc)
	if err != nil {
		writeJSONLine(sc.bw, map[string]string{"error": err.Error()})
	}
	if ferr := sc.bw.Flush(); err == nil {
		err = ferr
	}
	return err
}

// serveDecoded dispatches on the session magic and runs the guard.
func (s *Server) serveDecoded(key uint64, sc *sessionScratch) error {
	magic, err := sc.br.Peek(4)
	if err != nil {
		return fmt.Errorf("%w: reading magic: %v", ErrProtocol, err)
	}
	switch string(magic) {
	case "RIFF":
		wr, err := audio.NewWAVReader(sc.br)
		if err != nil {
			return err
		}
		return s.runSession(key, sc, wr.Rate(), func(dst []float64) (int, error) { return wr.Read(dst) })
	case Magic:
		if _, err := sc.br.Discard(4); err != nil {
			return err
		}
		var rateBuf [4]byte
		if _, err := io.ReadFull(sc.br, rateBuf[:]); err != nil {
			return fmt.Errorf("%w: reading sample rate: %v", ErrProtocol, err)
		}
		rate := float64(binary.LittleEndian.Uint32(rateBuf[:]))
		pcm := &pcmChunkReader{br: sc.br, buf: sc.pcm}
		err := s.runSession(key, sc, rate, pcm.read)
		sc.pcm = pcm.buf // keep a buffer grown for large chunks pooled
		return err
	default:
		return fmt.Errorf("%w: unknown magic %q (want RIFF or %s)", ErrProtocol, magic, Magic)
	}
}

// validateRate applies the protocol's sample-rate window before any
// session state is committed.
func validateRate(rate float64) error {
	if min := MinSampleRate(); rate <= min || rate > MaxSampleRate {
		return fmt.Errorf("%w: sample rate %g outside (%g, %d]", ErrProtocol, rate, min, MaxSampleRate)
	}
	return nil
}

// pcmChunkReader decodes the length-prefixed PCM framing.
type pcmChunkReader struct {
	br      *bufio.Reader
	buf     []byte
	pending []byte // undecoded remainder of the current chunk
	done    bool
}

// read decodes up to len(dst) samples from the chunk stream.
func (p *pcmChunkReader) read(dst []float64) (int, error) {
	if len(p.pending) == 0 {
		if p.done {
			return 0, io.EOF
		}
		var lenBuf [4]byte
		if _, err := io.ReadFull(p.br, lenBuf[:]); err != nil {
			return 0, fmt.Errorf("%w: reading chunk length: %v", ErrProtocol, err)
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n == 0 {
			p.done = true
			return 0, io.EOF
		}
		if n > MaxChunkBytes {
			return 0, fmt.Errorf("%w: chunk of %d bytes exceeds %d", ErrProtocol, n, MaxChunkBytes)
		}
		if n%2 != 0 {
			return 0, fmt.Errorf("%w: odd chunk length %d", ErrProtocol, n)
		}
		if cap(p.buf) < int(n) {
			p.buf = make([]byte, n)
		}
		buf := p.buf[:n]
		if _, err := io.ReadFull(p.br, buf); err != nil {
			return 0, fmt.Errorf("%w: reading chunk payload: %v", ErrProtocol, err)
		}
		p.pending = buf
	}
	n := len(dst)
	if n > len(p.pending)/2 {
		n = len(p.pending) / 2
	}
	for i := 0; i < n; i++ {
		dst[i] = float64(int16(binary.LittleEndian.Uint16(p.pending[2*i:]))) / 32767
	}
	p.pending = p.pending[2*n:]
	return n, nil
}

// runSession admits a fleet session, streams frames from next into its
// ring, and relays verdict events to the wire. The session's Guard runs
// on its shard worker; this goroutine only moves bytes.
func (s *Server) runSession(key uint64, sc *sessionScratch, rate float64, next func([]float64) (int, error)) error {
	if err := validateRate(rate); err != nil {
		return err
	}
	var sess *fleet.Session
	var err error
	if key != 0 {
		sess, err = s.fl.OpenKeyed(key, rate)
	} else {
		sess, err = s.fl.Open(rate)
	}
	if err != nil {
		return err
	}

	// drainReady relays every already-delivered event without blocking.
	drainReady := func() error {
		for {
			select {
			case ev, ok := <-sess.Events():
				if !ok {
					return ErrShutdown
				}
				if werr := writeVerdict(sc.bw, ev.(*Verdict)); werr != nil {
					return werr
				}
			default:
				return nil
			}
		}
	}
	// bail abandons the session, consuming events until the worker
	// detaches it, and returns err.
	bail := func(err error) error {
		sess.Abort()
		for range sess.Events() {
		}
		return err
	}

	for {
		buf, ferr := sess.NextFrame()
		if ferr != nil {
			for range sess.Events() {
			}
			return ErrShutdown
		}
		n, rerr := next(buf)
		if n > 0 {
			sess.Publish(n)
		}
		if derr := drainReady(); derr != nil {
			if errors.Is(derr, ErrShutdown) {
				return derr
			}
			return bail(derr)
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return bail(rerr)
		}
	}
	if err := sess.CloseSend(); err != nil {
		for range sess.Events() {
		}
		return ErrShutdown
	}
	sawFinal := false
	var werr error
	for ev := range sess.Events() {
		v := ev.(*Verdict)
		if werr == nil {
			if werr = writeVerdict(sc.bw, v); werr == nil && v.Final {
				sawFinal = true
			}
		}
	}
	if werr != nil {
		return werr
	}
	if !sawFinal {
		return ErrShutdown
	}
	return nil
}

// wireVerdict is the JSON wire form of a Verdict.
type wireVerdict struct {
	Attack         bool               `json:"attack"`
	Score          float64            `json:"score"`
	Final          bool               `json:"final"`
	Degraded       bool               `json:"degraded,omitempty"`
	Samples        int                `json:"samples"`
	DurationS      float64            `json:"duration_s"`
	VADActive      float64            `json:"vad_active"`
	TraceBandPower float64            `json:"trace_band_power"`
	Features       map[string]float64 `json:"features"`
	LatencyMeanUS  float64            `json:"latency_mean_us"`
	LatencyMaxUS   float64            `json:"latency_max_us"`
	Cascade        *wireCascade       `json:"cascade,omitempty"`
}

// wireCascade is the JSON wire form of CascadeInfo. The field is absent
// for non-cascade sessions, so the cascade-off wire format is
// byte-identical to previous releases.
type wireCascade struct {
	Engaged      bool `json:"engaged"`
	Tier0Frames  int  `json:"tier0_frames"`
	Tier1Frames  int  `json:"tier1_frames"`
	Escalations  int  `json:"escalations"`
	Tier05Vetoes int  `json:"tier05_vetoes,omitempty"`
}

// writeVerdict encodes one verdict line.
func writeVerdict(w io.Writer, v *Verdict) error {
	names := defense.FeatureNames()
	vec := v.Features.Vector()
	feats := make(map[string]float64, len(names))
	for i, n := range names {
		feats[n] = vec[i]
	}
	var casc *wireCascade
	if v.Cascade != nil {
		casc = &wireCascade{
			Engaged:      v.Cascade.Engaged,
			Tier0Frames:  v.Cascade.Tier0Frames,
			Tier1Frames:  v.Cascade.Tier1Frames,
			Escalations:  v.Cascade.Escalations,
			Tier05Vetoes: v.Cascade.Tier05Vetoes,
		}
	}
	return writeJSONLine(w, wireVerdict{
		Attack:         v.Attack,
		Score:          finiteOr(v.Score, -1e308),
		Final:          v.Final,
		Degraded:       v.Degraded,
		Samples:        v.Samples,
		DurationS:      v.Duration,
		VADActive:      v.ActiveFraction,
		TraceBandPower: v.TraceBandPower,
		Features:       feats,
		LatencyMeanUS:  float64(v.Latency.MeanPerFrame().Microseconds()),
		LatencyMaxUS:   float64(v.Latency.MaxPush.Microseconds()),
		Cascade:        casc,
	})
}

// finiteOr guards JSON encoding against non-finite scores (a hand-built
// ThresholdDetector with no valid features scores -Inf).
func finiteOr(v, fallback float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return fallback
	}
	return v
}

// writeJSONLine marshals v followed by a newline.
func writeJSONLine(w io.Writer, v interface{}) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
