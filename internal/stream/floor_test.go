package stream

import (
	"testing"

	"inaudible/internal/telemetry"
)

// TestFloorControllerRetune pins the auto-floor control loop: the
// setpoint chase direction, the per-Retune slew limit, the MinSamples
// gate, the interval-delta isolation (old margins cannot steer later
// retunes), the clamp range, and the gauge export.
func TestFloorControllerRetune(t *testing.T) {
	h := telemetry.NewHistogram(cascadeMarginBuckets())
	g := &telemetry.FloatGauge{}
	fc := NewFloorController(FloorControllerConfig{
		InitialDB: -55, MinDB: -58, MaxDB: -52,
		StepDB: 1, HeadroomDB: 6, MinSamples: 200,
		Margins: h, Gauge: g,
	})
	if got := fc.FloorDB(); got != -55 {
		t.Fatalf("initial floor = %v, want -55", got)
	}
	if got := g.Value(); got != -55 {
		t.Fatalf("gauge not primed: %v", got)
	}

	// Below MinSamples: the interval must not move the floor.
	for i := 0; i < 100; i++ {
		h.Observe(-2)
	}
	if got := fc.Retune(); got != -55 {
		t.Fatalf("floor moved on a %d-sample interval: %v", 100, got)
	}

	// Hot interval (median margin -2 dB, target -6): the error is +4 dB
	// but the slew limit caps the move at +1 dB per Retune. The 100
	// stale observations above join this interval (they were never
	// consumed), which only reinforces the hot median.
	for i := 0; i < 300; i++ {
		h.Observe(-2)
	}
	if got := fc.Retune(); got != -54 {
		t.Fatalf("hot interval: floor = %v, want -54 (slew-limited +1)", got)
	}

	// Cold interval (median -20): errors are clamped to -1 dB per
	// Retune; the hot samples from the previous interval are consumed
	// and must not steer this one.
	for i := 0; i < 300; i++ {
		h.Observe(-20)
	}
	if got := fc.Retune(); got != -55 {
		t.Fatalf("cold interval: floor = %v, want -55", got)
	}

	// Sustained cold intervals walk the floor down 1 dB at a time until
	// the MinDB clamp holds it.
	for r := 0; r < 6; r++ {
		for i := 0; i < 300; i++ {
			h.Observe(-20)
		}
		fc.Retune()
	}
	if got := fc.FloorDB(); got != -58 {
		t.Fatalf("clamp: floor = %v, want MinDB -58", got)
	}
	if got := g.Value(); got != -58 {
		t.Fatalf("gauge out of sync: %v", got)
	}
}
