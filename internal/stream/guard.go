package stream

import (
	"fmt"
	"time"

	"inaudible/internal/defense"
	"inaudible/internal/dsp"
	"inaudible/internal/voice"
)

// GuardConfig wires one streaming defense session: which detector
// decides, how big the processing hop is, and how often interim
// verdicts are emitted.
type GuardConfig struct {
	// Rate is the session sample rate (must exceed 16 kHz, like the
	// Analyzer's).
	Rate float64
	// Detector scores the feature vector. It is only read, so one
	// trained detector may back any number of concurrent guards.
	Detector defense.Detector
	// FrameSamples is the nominal processing hop; <= 0 selects 20 ms.
	FrameSamples int
	// VADThreshDB is the voice-activity threshold below the running
	// peak; <= 0 selects 30 dB.
	VADThreshDB float64
	// EmitEvery emits an interim verdict every EmitEvery completed
	// frames; 0 emits only the final verdict. Interim verdicts allocate
	// (feature snapshots copy the PSD); the per-frame hop path does not.
	EmitEvery int
	// MaxCorrSeconds bounds the analyzer's correlation memory
	// (see AnalyzerConfig).
	MaxCorrSeconds float64
}

// LatencyStats aggregates processing-time measurements of a guard
// session. Latency is measured per Push call and attributed to the
// frames the call completed.
type LatencyStats struct {
	// Pushes and Frames count Push calls and completed frames.
	Pushes, Frames int
	// Total is the summed processing time of all Push calls.
	Total time.Duration
	// MaxPush is the longest single Push (the worst stall a realtime
	// caller would have observed).
	MaxPush time.Duration
}

// MeanPerFrame returns the average processing time per completed frame.
func (l LatencyStats) MeanPerFrame() time.Duration {
	if l.Frames == 0 {
		return 0
	}
	return l.Total / time.Duration(l.Frames)
}

// String implements fmt.Stringer.
func (l LatencyStats) String() string {
	return fmt.Sprintf("latency(frames=%d mean=%s max-push=%s)",
		l.Frames, l.MeanPerFrame(), l.MaxPush)
}

// Verdict is one detection event of a guard session: the current
// feature snapshot, the detector's decision over it, and the session
// counters at emission time.
type Verdict struct {
	// Attack and Score are the detector's decision: Attack == Score > 0.
	Attack bool
	Score  float64
	// Features is the vector the decision was made over.
	Features defense.Features
	// Final marks the end-of-session verdict (filter chains flushed,
	// full batch parity); interim verdicts cover the stream so far.
	Final bool
	// Degraded marks a verdict from the overload service class
	// (DegradedGuard): VAD and trace-band signals are live, but no full
	// feature analysis was run and Attack/Score are not populated.
	Degraded bool
	// Samples and Duration measure the audio consumed at emission.
	Samples  int
	Duration float64 // seconds
	// SpeechActive and ActiveFraction report the online VAD state.
	SpeechActive   bool
	ActiveFraction float64
	// TraceBandPower is the rolling Goertzel power in the 16-60 Hz
	// trace band — the cheap always-on alarm signal between full
	// feature extractions.
	TraceBandPower float64
	// Latency reflects processing cost up to the emission.
	Latency LatencyStats
	// Cascade carries the two-tier cascade state when the verdict came
	// from a CascadeGuard; nil for plain and degraded guards.
	Cascade *CascadeInfo
}

// String implements fmt.Stringer.
func (v Verdict) String() string {
	kind := "interim"
	if v.Final {
		kind = "final"
	}
	label := "LEGITIMATE"
	if v.Attack {
		label = "ATTACK"
	}
	return fmt.Sprintf("%s %s (score %+.3f, %.2fs, vad %.0f%%) %v",
		kind, label, v.Score, v.Duration, 100*v.ActiveFraction, v.Features)
}

// Guard is one always-on defense session: it chains the online VAD, the
// streaming feature analyzer and a trained detector, emitting verdict
// events with per-frame latency statistics. A Guard is single-session
// state — one per connection/stream — while the Detector behind it is
// shared. Use Reset to reuse a guard (and its buffers) across sessions.
//
// Like CascadeGuard, the work is split for the fleet's two-phase batch
// loop: Stage banks the chunk and the emission bookkeeping, Advance
// runs the deferred DSP (optionally from spectra precomputed by the
// shard's column batch, via CollectColumns). Push chains both for
// standalone use and is bit-identical to the pre-split behavior.
type Guard struct {
	cfg     GuardConfig
	an      *Analyzer
	vad     *voice.StreamVAD
	tracker *dsp.BandTracker
	lat     LatencyStats
	samples int
	frames  int

	// Deferred-work state: audio owed to the DSP chains, the staging
	// offsets at which an interim verdict came due (each Stage records
	// at most one, at its chunk end, preserving Push's one-verdict-per-
	// call contract), and the column-engine set holding staged spectra
	// between CollectColumns and Advance.
	staging []float64
	emits   []int
	ce      *ColumnEngines
	vout    []*Verdict // reused Advance result buffer

	done bool
}

// NewGuard builds a streaming guard session.
func NewGuard(cfg GuardConfig) *Guard {
	if cfg.Detector == nil {
		panic("stream: GuardConfig.Detector is required")
	}
	if cfg.FrameSamples <= 0 {
		cfg.FrameSamples = int(0.020 * cfg.Rate)
	}
	if cfg.VADThreshDB <= 0 {
		cfg.VADThreshDB = 30
	}
	b := defense.Bands()
	// Probe the trace band at a few infra-voice frequencies; one
	// Goertzel frame per processing hop.
	probes := []float64{
		b.TraceLo + (b.TraceHi-b.TraceLo)*0.1,
		(b.TraceLo + b.TraceHi) / 2,
		b.TraceHi - (b.TraceHi-b.TraceLo)*0.1,
	}
	return &Guard{
		cfg:     cfg,
		an:      NewAnalyzer(AnalyzerConfig{Rate: cfg.Rate, MaxCorrSeconds: cfg.MaxCorrSeconds}),
		vad:     voice.NewStreamVAD(cfg.Rate, cfg.VADThreshDB),
		tracker: dsp.NewBandTracker(cfg.Rate, probes, cfg.FrameSamples, 0.2),
		staging: make([]float64, 0, 40*cfg.FrameSamples),
		emits:   make([]int, 0, 8),
		vout:    make([]*Verdict, 0, 8),
	}
}

// FrameSamples returns the processing hop in samples.
func (g *Guard) FrameSamples() int { return g.cfg.FrameSamples }

// Samples returns the number of samples consumed so far (including
// audio staged but not yet advanced).
func (g *Guard) Samples() int { return g.samples }

// Latency returns the processing-time statistics so far.
func (g *Guard) Latency() LatencyStats { return g.lat }

// Stage banks the next chunk of session audio and the interim-verdict
// bookkeeping; no heavy DSP runs here. The return value reports
// whether an Advance is owed, matching fleet.BatchProc's contract.
func (g *Guard) Stage(x []float64) bool {
	if g.done {
		panic("stream: Guard.Stage after Finalize (Reset first)")
	}
	start := time.Now()
	g.staging = append(g.staging, x...)
	framesBefore := g.frames
	g.samples += len(x)
	g.frames = g.samples / g.cfg.FrameSamples
	if g.cfg.EmitEvery > 0 && g.frames/g.cfg.EmitEvery > framesBefore/g.cfg.EmitEvery {
		g.emits = append(g.emits, len(g.staging))
	}
	elapsed := time.Since(start)
	g.lat.Pushes++
	g.lat.Total += elapsed
	g.lat.Frames = g.frames
	if elapsed > g.lat.MaxPush {
		g.lat.MaxPush = elapsed
	}
	return len(g.staging) > 0 || len(g.emits) > 0
}

// feedCacheFrames bounds how much staged audio each DSP pass consumes
// at a time. A shard draining a backlog can stage hundreds of frames
// in one round; streaming the whole round through the analyzer, then
// the VAD, then the tracker would pull every byte from memory three
// times. Blocks of a few frames stay cache-hot across all three
// chains, and every chain is chunk-invariant, so the block size is
// purely a locality knob.
const feedCacheFrames = 4

// feed drives one staged segment through the DSP chains in
// cache-sized blocks.
func (g *Guard) feed(seg []float64) {
	step := feedCacheFrames * g.cfg.FrameSamples
	for off := 0; off < len(seg); off += step {
		end := off + step
		if end > len(seg) {
			end = len(seg)
		}
		g.an.Push(seg[off:end])
		g.vad.Push(seg[off:end])
		g.tracker.Push(seg[off:end])
	}
}

// CollectColumns stages the banked audio's Welch/STFT columns into the
// shard-level column engines (see CascadeGuard.CollectColumns). It
// declines while an interim verdict is owed: the verdict must observe
// the DSP state at exactly its emission offset, which only the
// segmented Advance path reproduces. Every chain here is
// chunk-invariant (the VAD and band tracker are per-sample
// recurrences, the accumulators frame-aligned), so the round is fed in
// cache-sized blocks: a backlog round can span hundreds of frames, and
// one block through all three chains beats three cold passes over the
// whole buffer.
func (g *Guard) CollectColumns(ce *ColumnEngines) bool {
	if g.done || len(g.emits) > 0 || len(g.staging) == 0 {
		return false
	}
	start := time.Now()
	step := feedCacheFrames * g.cfg.FrameSamples
	for off := 0; off < len(g.staging); off += step {
		end := off + step
		if end > len(g.staging) {
			end = len(g.staging)
		}
		g.an.PushStaged(g.staging[off:end], ce)
		g.vad.Push(g.staging[off:end])
		g.tracker.Push(g.staging[off:end])
	}
	g.staging = g.staging[:0]
	elapsed := time.Since(start)
	g.lat.Total += elapsed
	if elapsed > g.lat.MaxPush {
		g.lat.MaxPush = elapsed
	}
	g.ce = ce
	return true
}

// Advance runs the deferred DSP over everything staged since the last
// Advance, splitting the feed at each owed emission offset so interim
// verdicts observe exactly the state they would have seen under
// chained Push calls. The returned slice (valid until the next
// Advance) carries the verdicts in emission order; it is empty on
// rounds with no boundary crossing. When CollectColumns ran first, the
// staged audio is already in the column engines and Advance only folds
// the batched spectra back in.
func (g *Guard) Advance() []*Verdict {
	g.vout = g.vout[:0]
	start := time.Now()
	if g.ce != nil {
		g.an.CompleteStaged(g.ce)
		g.ce = nil
	} else {
		off := 0
		for _, e := range g.emits {
			g.feed(g.staging[off:e])
			off = e
			v := g.verdict(false)
			g.vout = append(g.vout, &v)
		}
		g.feed(g.staging[off:])
		g.staging = g.staging[:0]
		g.emits = g.emits[:0]
	}
	elapsed := time.Since(start)
	g.lat.Total += elapsed
	if elapsed > g.lat.MaxPush {
		g.lat.MaxPush = elapsed
	}
	return g.vout
}

// Push feeds the next chunk of session audio (any size; the nominal
// frame is FrameSamples). It returns a non-nil interim Verdict when the
// session crossed an EmitEvery frame boundary, else nil. The hop path
// allocates nothing after warm-up. Push is Stage immediately followed
// by Advance — bit-identical to the historical inline implementation.
func (g *Guard) Push(x []float64) *Verdict {
	g.Stage(x)
	vs := g.Advance()
	if len(vs) == 0 {
		return nil
	}
	return vs[len(vs)-1]
}

// Finalize flushes any staged audio and the analyzer, and returns the
// end-of-session verdict (the one with full batch-extractor parity).
// Interim verdicts still owed at Finalize are dropped — the final
// supersedes them. After Finalize, Push panics until Reset.
func (g *Guard) Finalize() Verdict {
	if !g.done {
		if g.ce != nil {
			panic("stream: Guard.Finalize with an uncompleted column batch (Advance first)")
		}
		start := time.Now()
		if len(g.staging) > 0 {
			g.feed(g.staging)
			g.staging = g.staging[:0]
		}
		g.emits = g.emits[:0]
		g.an.Finalize()
		g.lat.Total += time.Since(start)
		g.done = true
	}
	return g.verdict(true)
}

// Reset clears all per-session state for reuse.
func (g *Guard) Reset() {
	g.an.Reset()
	g.vad.Reset()
	g.tracker.Reset()
	g.lat = LatencyStats{}
	g.samples = 0
	g.frames = 0
	g.staging = g.staging[:0]
	g.emits = g.emits[:0]
	g.ce = nil
	g.vout = g.vout[:0]
	g.done = false
}

// verdict scores the current feature snapshot.
func (g *Guard) verdict(final bool) Verdict {
	var f defense.Features
	if final {
		f = g.an.Finalize() // idempotent once done
	} else {
		f = g.an.Features()
	}
	x := f.Vector()
	return Verdict{
		Attack:         g.cfg.Detector.Predict(x),
		Score:          g.cfg.Detector.Score(x),
		Features:       f,
		Final:          final,
		Samples:        g.an.Samples(),
		Duration:       float64(g.an.Samples()) / g.cfg.Rate,
		SpeechActive:   g.vad.Active(),
		ActiveFraction: g.vad.ActiveFraction(),
		TraceBandPower: g.tracker.RollingTotal(),
		Latency:        g.lat,
	}
}
