package stream

import (
	"math"
	"math/rand"
	"testing"

	"inaudible/internal/audio"
	"inaudible/internal/defense"
)

// Documented streaming-vs-batch parity tolerances (see the package doc):
// the four spectral features are exact up to FMA rounding, the envelope
// correlation swaps the analytic envelope for a causal FIR Hilbert.
const (
	exactTol = 1e-9
	corrTol  = 0.15
)

// attackLike builds a signal carrying the m(t)^2 signature the defense
// looks for: speech-band content whose squared envelope also appears in
// the 16-60 Hz trace band and above 8.5 kHz.
func attackLike(rate float64, seconds float64, seed int64) *audio.Signal {
	rng := rand.New(rand.NewSource(seed))
	n := int(rate * seconds)
	x := make([]float64, n)
	for i := range x {
		t := float64(i) / rate
		// Syllabic on/off gating (~3 Hz) like real speech bursts.
		gate := 0.0
		if math.Sin(2*math.Pi*3*t) > -0.3 {
			gate = 1
		}
		env := gate * (0.6 + 0.4*math.Sin(2*math.Pi*5*t))
		m := env * (math.Sin(2*math.Pi*300*t) + 0.5*math.Sin(2*math.Pi*1100*t))
		// y ~ m + beta m^2: the quadratic term populates the trace band
		// (envelope rate) and the super-voice band (2x content).
		x[i] = 0.5*m + 0.25*m*m + 0.002*(rng.Float64()*2-1)
	}
	return audio.FromSamples(rate, x)
}

// legitLike is speech-band content plus stationary noise, without the
// quadratic copy.
func legitLike(rate float64, seconds float64, seed int64) *audio.Signal {
	rng := rand.New(rand.NewSource(seed))
	n := int(rate * seconds)
	x := make([]float64, n)
	for i := range x {
		t := float64(i) / rate
		gate := 0.0
		if math.Sin(2*math.Pi*2.5*t+0.7) > -0.2 {
			gate = 1
		}
		env := gate * (0.5 + 0.5*math.Abs(math.Sin(2*math.Pi*4*t)))
		m := env * (math.Sin(2*math.Pi*220*t) + 0.4*math.Sin(2*math.Pi*900*t+0.3))
		x[i] = 0.6*m + 0.004*(rng.Float64()*2-1)
	}
	return audio.FromSamples(rate, x)
}

func assertParity(t *testing.T, name string, got, want defense.Features) {
	t.Helper()
	check := func(fname string, g, w, tol float64) {
		t.Helper()
		if math.Abs(g-w) > tol {
			t.Errorf("%s/%s: streaming %.6g vs batch %.6g (tol %g)", name, fname, g, w, tol)
		}
	}
	check("TraceSNR", got.TraceSNR, want.TraceSNR, exactTol)
	check("HighSNR", got.HighSNR, want.HighSNR, exactTol)
	check("Sub50LogRatio", got.Sub50LogRatio, want.Sub50LogRatio, exactTol)
	check("HighLogRatio", got.HighLogRatio, want.HighLogRatio, exactTol)
	check("LowEnvCorr", got.LowEnvCorr, want.LowEnvCorr, corrTol)
}

func TestAnalyzerMatchesBatchExtract(t *testing.T) {
	const rate = 48000.0
	signals := map[string]*audio.Signal{
		"attack-like": attackLike(rate, 2.5, 1),
		"legit-like":  legitLike(rate, 2.5, 2),
	}
	for name, sig := range signals {
		want := defense.Extract(sig)
		for _, chunk := range []int{960, 4096, 1} {
			if chunk == 1 && testing.Short() {
				continue
			}
			got := Extract(sig, chunk)
			assertParity(t, name, got, want)
		}
	}
}

func TestAnalyzerPreservesClassGap(t *testing.T) {
	// The streaming LowEnvCorr tolerance must not blur the class
	// separation the feature exists to provide.
	const rate = 48000.0
	atk := Extract(attackLike(rate, 2.5, 3), 960)
	leg := Extract(legitLike(rate, 2.5, 4), 960)
	if atk.LowEnvCorr <= leg.LowEnvCorr+2*corrTol {
		t.Fatalf("streaming LowEnvCorr gap collapsed: attack %.3f vs legit %.3f",
			atk.LowEnvCorr, leg.LowEnvCorr)
	}
	if atk.Sub50LogRatio <= leg.Sub50LogRatio {
		t.Fatalf("streaming Sub50LogRatio gap collapsed: attack %.3f vs legit %.3f",
			atk.Sub50LogRatio, leg.Sub50LogRatio)
	}
}

func TestAnalyzerEdgeCases(t *testing.T) {
	const rate = 48000.0
	cases := map[string]*audio.Signal{
		"empty":   audio.FromSamples(rate, nil),
		"silence": audio.New(rate, 1.0),
		"short":   attackLike(rate, 0.1, 9), // < one Welch frame
	}
	for name, sig := range cases {
		want := defense.Extract(sig)
		got := Extract(sig, 960)
		assertParity(t, name, got, want)
	}
}

func TestAnalyzerSnapshotThenFinalize(t *testing.T) {
	const rate = 48000.0
	sig := attackLike(rate, 2.0, 5)
	want := defense.Extract(sig)
	a := NewAnalyzer(AnalyzerConfig{Rate: rate})
	half := len(sig.Samples) / 2
	a.Push(sig.Samples[:half])
	_ = a.Features() // snapshot must not disturb final parity
	a.Push(sig.Samples[half:])
	assertParity(t, "after-snapshot", a.Finalize(), want)
	if a.Samples() != sig.Len() {
		t.Fatalf("Samples() = %d, want %d", a.Samples(), sig.Len())
	}
}

func TestAnalyzerReset(t *testing.T) {
	const rate = 48000.0
	first := legitLike(rate, 1.5, 6)
	second := attackLike(rate, 2.0, 7)
	a := NewAnalyzer(AnalyzerConfig{Rate: rate})
	a.Push(first.Samples)
	a.Finalize()
	a.Reset()
	for off := 0; off < len(second.Samples); off += 960 {
		end := off + 960
		if end > len(second.Samples) {
			end = len(second.Samples)
		}
		a.Push(second.Samples[off:end])
	}
	assertParity(t, "after-reset", a.Finalize(), defense.Extract(second))
}

func TestAnalyzerCorrCapBoundsMemory(t *testing.T) {
	// With a tiny correlation cap the decimated traces stop growing but
	// the spectral features still cover the whole stream exactly.
	const rate = 48000.0
	sig := attackLike(rate, 3.0, 8)
	a := NewAnalyzer(AnalyzerConfig{Rate: rate, MaxCorrSeconds: 1})
	a.Push(sig.Samples)
	if got, cap := len(a.lowD), a.corrCap; got > cap {
		t.Fatalf("low trace grew to %d, cap %d", got, cap)
	}
	if !a.corrDone {
		t.Fatalf("correlation chain still running past the cap")
	}
	f := a.Finalize()
	want := defense.Extract(sig)
	if math.Abs(f.Sub50LogRatio-want.Sub50LogRatio) > exactTol ||
		math.Abs(f.TraceSNR-want.TraceSNR) > exactTol {
		t.Fatalf("capped session lost spectral parity: %v vs %v", f, want)
	}
	if f.LowEnvCorr == 0 {
		t.Fatalf("capped session should still report a correlation over its prefix")
	}
}

func TestAnalyzerStatCapBoundsMemory(t *testing.T) {
	// The per-frame band statistics stop growing at MaxStatSeconds, so
	// an endless session cannot exhaust memory; the noise-subtracted
	// features then cover the capped prefix.
	const rate = 48000.0
	a := NewAnalyzer(AnalyzerConfig{Rate: rate, MaxCorrSeconds: 1, MaxStatSeconds: 2})
	sig := attackLike(rate, 4.0, 12)
	a.Push(sig.Samples)
	if got := len(a.voiceP); got != a.maxStatFrames {
		t.Fatalf("frame stats grew to %d, want cap %d", got, a.maxStatFrames)
	}
	f := a.Finalize()
	if f.TraceSNR <= defense.FloorLog {
		t.Fatalf("capped session lost its noise-subtracted features: %v", f)
	}
}

func TestAnalyzerPushNoAlloc(t *testing.T) {
	const rate = 48000.0
	a := NewAnalyzer(AnalyzerConfig{Rate: rate})
	frame := attackLike(rate, 0.5, 10).Samples[:960]
	for i := 0; i < 200; i++ { // warm all chain stagings past steady state
		a.Push(frame)
	}
	allocs := testing.AllocsPerRun(200, func() { a.Push(frame) })
	if allocs != 0 {
		t.Fatalf("Analyzer.Push allocated %v times per run, want 0", allocs)
	}
}
