package stream

import (
	"sync"
	"testing"

	"inaudible/internal/audio"
	"inaudible/internal/defense"
)

// testDetector calibrates a threshold detector from the streaming
// features of held-out synthetic attack/legit signals.
func testDetector(t testing.TB) defense.Detector {
	t.Helper()
	const rate = 48000.0
	var samples []defense.Sample
	for seed := int64(20); seed < 23; seed++ {
		samples = append(samples,
			defense.Sample{X: Extract(attackLike(rate, 2, seed), 960).Vector(), Attack: true},
			defense.Sample{X: Extract(legitLike(rate, 2, seed), 960).Vector(), Attack: false},
		)
	}
	det, err := defense.CalibrateThresholds(samples)
	if err != nil {
		t.Fatalf("calibrating test detector: %v", err)
	}
	return det
}

func feedGuard(g *Guard, sig *audio.Signal) []Verdict {
	var verdicts []Verdict
	frame := g.FrameSamples()
	for off := 0; off < len(sig.Samples); off += frame {
		end := off + frame
		if end > len(sig.Samples) {
			end = len(sig.Samples)
		}
		if v := g.Push(sig.Samples[off:end]); v != nil {
			verdicts = append(verdicts, *v)
		}
	}
	verdicts = append(verdicts, g.Finalize())
	return verdicts
}

func TestGuardSeparatesClasses(t *testing.T) {
	const rate = 48000.0
	det := testDetector(t)
	atk := feedGuard(NewGuard(GuardConfig{Rate: rate, Detector: det}), attackLike(rate, 2.5, 30))
	leg := feedGuard(NewGuard(GuardConfig{Rate: rate, Detector: det}), legitLike(rate, 2.5, 31))
	final := atk[len(atk)-1]
	if !final.Final || !final.Attack {
		t.Fatalf("attack session verdict: %v", final)
	}
	if got := leg[len(leg)-1]; got.Attack {
		t.Fatalf("legit session flagged as attack: %v", got)
	}
	if final.Latency.Frames == 0 || final.Latency.Total <= 0 {
		t.Fatalf("missing latency stats: %+v", final.Latency)
	}
	if final.Samples != int(rate*2.5) {
		t.Fatalf("final verdict samples = %d, want %d", final.Samples, int(rate*2.5))
	}
}

func TestGuardInterimVerdicts(t *testing.T) {
	const rate = 48000.0
	det := testDetector(t)
	g := NewGuard(GuardConfig{Rate: rate, Detector: det, EmitEvery: 25})
	sig := attackLike(rate, 2.0, 33)
	verdicts := feedGuard(g, sig)
	frames := sig.Len() / g.FrameSamples()
	wantInterim := frames / 25
	if len(verdicts) != wantInterim+1 {
		t.Fatalf("got %d verdicts, want %d interim + 1 final", len(verdicts), wantInterim)
	}
	for i, v := range verdicts[:len(verdicts)-1] {
		if v.Final {
			t.Fatalf("interim verdict %d marked final", i)
		}
		if v.Samples == 0 || v.Duration == 0 {
			t.Fatalf("interim verdict %d missing progress counters: %v", i, v)
		}
	}
	if !verdicts[len(verdicts)-1].Final {
		t.Fatalf("last verdict not final")
	}
	if verdicts[0].Attack != true {
		t.Logf("note: first interim verdict not yet attack (fine early in stream): %v", verdicts[0])
	}
}

func TestGuardConcurrentSessions(t *testing.T) {
	// Eight concurrent sessions over one shared detector: the
	// acceptance gate for `go test -race ./internal/stream`. Sessions
	// with identical input must produce identical verdicts regardless
	// of interleaving.
	const rate = 48000.0
	const sessions = 8
	det := testDetector(t)
	inputs := make([]*audio.Signal, sessions)
	for i := range inputs {
		if i%2 == 0 {
			inputs[i] = attackLike(rate, 1.5, 40)
		} else {
			inputs[i] = legitLike(rate, 1.5, 41)
		}
	}
	verdicts := make([]Verdict, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := NewGuard(GuardConfig{Rate: rate, Detector: det, EmitEvery: 10})
			vs := feedGuard(g, inputs[i])
			verdicts[i] = vs[len(vs)-1]
		}(i)
	}
	wg.Wait()
	for i, v := range verdicts {
		wantAttack := i%2 == 0
		if v.Attack != wantAttack {
			t.Errorf("session %d: attack=%v, want %v (%v)", i, v.Attack, wantAttack, v)
		}
	}
	// Determinism across interleavings: all even sessions saw identical
	// input, so their feature vectors must be identical.
	for i := 2; i < sessions; i += 2 {
		if verdicts[i].Features != verdicts[0].Features {
			t.Errorf("session %d features diverged from session 0: %v vs %v",
				i, verdicts[i].Features, verdicts[0].Features)
		}
	}
}

func TestGuardReset(t *testing.T) {
	const rate = 48000.0
	det := testDetector(t)
	g := NewGuard(GuardConfig{Rate: rate, Detector: det})
	sig := attackLike(rate, 1.5, 50)
	first := feedGuard(g, sig)
	g.Reset()
	if g.Samples() != 0 || g.Latency().Frames != 0 {
		t.Fatalf("Reset left session state: samples=%d latency=%+v", g.Samples(), g.Latency())
	}
	second := feedGuard(g, sig)
	if first[len(first)-1].Features != second[len(second)-1].Features {
		t.Fatalf("reused guard diverged: %v vs %v",
			first[len(first)-1].Features, second[len(second)-1].Features)
	}
}

func TestGuardPushNoAlloc(t *testing.T) {
	const rate = 48000.0
	det := testDetector(t)
	g := NewGuard(GuardConfig{Rate: rate, Detector: det}) // EmitEvery 0: pure hop path
	frame := attackLike(rate, 0.1, 51).Samples[:g.FrameSamples()]
	for i := 0; i < 200; i++ {
		g.Push(frame)
	}
	allocs := testing.AllocsPerRun(200, func() { g.Push(frame) })
	if allocs != 0 {
		t.Fatalf("Guard.Push allocated %v times per run in the hop loop, want 0", allocs)
	}
}
