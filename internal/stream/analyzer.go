// Package stream is the online twin of the batch defense pipeline: it
// processes audio in fixed-size frames with bounded per-session memory
// and emits the same defense.Features vector the batch extractor
// computes on a fully-buffered recording.
//
// Batch path (defense.Extract):      whole recording -> Welch PSD,
// STFT frame statistics, Hilbert-envelope correlation -> Features.
//
// Streaming path (stream.Analyzer):  frames -> incremental Welch/STFT
// accumulators (internal/dsp), overlap-save FIR chains with a causal
// FIR-Hilbert envelope, decimated correlation streams -> Features.
//
// Parity with the batch extractor on identical input (see
// TestAnalyzerMatchesBatchExtract):
//
//   - TraceSNR, HighSNR, Sub50LogRatio, HighLogRatio: exact — the
//     streaming accumulators replicate the batch arithmetic operation
//     for operation (tested at 1e-9, bit-identical in practice).
//   - LowEnvCorr: within 0.15 absolute — the streaming path substitutes
//     a causal FIR Hilbert transformer for the batch full-signal
//     analytic envelope and correlates decimated (~600 Hz) traces. The
//     class gap this feature separates is >1.0 on the paper's corpora,
//     so the tolerance does not move verdicts.
//
// Memory per session is bounded: the accumulators hold one analysis
// frame each, the FIR chains hold one overlap-save segment each, the
// correlation traces are decimated and capped at MaxCorrSeconds, and
// the per-frame band statistics are capped at MaxStatSeconds (sessions
// longer than the caps compute those features over the capped prefix;
// the Welch-derived features always cover the whole session in fixed
// memory). After warm-up, Push does not allocate.
package stream

import (
	"fmt"
	"math"
	"sort"

	"inaudible/internal/audio"
	"inaudible/internal/defense"
	"inaudible/internal/dsp"
)

// corrRate is the effective sample rate (Hz) of the decimated
// correlation traces. Both traces are band-limited to the 16-60 Hz
// trace band, so ~600 Hz keeps them heavily oversampled while making
// the final lag search ~decimation² cheaper than at the ADC rate.
const corrRate = 600.0

// AnalyzerConfig sizes a streaming feature extractor.
type AnalyzerConfig struct {
	// Rate is the session sample rate in Hz. The analyzer needs the
	// voice band below Nyquist: Rate must exceed 2*VoiceHi (16 kHz).
	Rate float64
	// MaxCorrSeconds caps the envelope-correlation trace memory;
	// <= 0 selects 60 s.
	MaxCorrSeconds float64
	// MaxStatSeconds caps the per-frame band-power statistics (24 bytes
	// per 2048-sample hop); <= 0 selects 600 s. Sessions longer than
	// the cap compute the noise-subtracted features over their first
	// MaxStatSeconds (the Welch-derived features always cover the whole
	// session in fixed memory).
	MaxStatSeconds float64
	// HilbertTaps sizes the causal Hilbert transformer of the envelope
	// path; <= 0 selects 1023. Must be odd (even values are bumped).
	HilbertTaps int
}

// Analyzer incrementally computes defense features for one audio
// session. It is single-session state: not safe for concurrent use, but
// cheap to Reset and pool across sessions. Feed samples with Push in
// any chunking, snapshot features mid-stream with Features, and call
// Finalize at end of session for the full-parity vector.
type Analyzer struct {
	cfg    AnalyzerConfig
	bands  defense.BandPlan
	hiTop  float64
	total  int
	energy float64

	welch *dsp.WelchAccumulator

	// Frame statistics for the noise-subtracted ratios: per-STFT-frame
	// band powers, folded from streamed rows (3 floats per 2048-sample
	// hop — the only per-session state that grows with duration).
	stft                         *dsp.STFTAccumulator
	voiceP, lowP, highP          []float64
	maxStatFrames                int
	k0v, k1v, k0t, k1t, k0h, k1h int

	// Envelope-correlation chains, aligned to input sample indices.
	lowFIR    *dsp.StreamFIR // x -> trace band
	vbFIR     *dsp.StreamFIR // x -> voice band
	hilFIR    *dsp.StreamFIR // voice band -> its Hilbert transform
	envFIR    *dsp.StreamFIR // squared envelope -> trace band
	vbQueue   []float64      // voice-band samples awaiting Hilbert outputs
	qHead     int
	envSq     []float64 // squared-envelope staging
	dec       int       // decimation factor of the correlation traces
	corrCap   int       // max retained decimated samples per trace
	lowD      []float64 // decimated trace-band stream
	envD      []float64 // decimated band-limited squared-envelope stream
	lowIdx    int       // absolute aligned index of the next low sample
	envIdx    int
	corrDone  bool
	finalized bool
}

// NewAnalyzer builds a streaming extractor for the given session rate.
func NewAnalyzer(cfg AnalyzerConfig) *Analyzer {
	b := defense.Bands()
	if cfg.Rate <= 2*b.VoiceHi {
		panic(fmt.Sprintf("stream: Analyzer rate %v must exceed %v Hz", cfg.Rate, 2*b.VoiceHi))
	}
	if cfg.MaxCorrSeconds <= 0 {
		cfg.MaxCorrSeconds = 60
	}
	if cfg.MaxStatSeconds <= 0 {
		cfg.MaxStatSeconds = 600
	}
	if cfg.HilbertTaps <= 0 {
		cfg.HilbertTaps = 1023
	}
	rate := cfg.Rate
	a := &Analyzer{
		cfg:   cfg,
		bands: b,
		hiTop: defense.HighTop(rate),
		welch: dsp.NewWelchAccumulator(defense.ExtractFFTSize),
	}
	// Frame band-bin ranges, fixed for the session (the batch extractor
	// recomputes the same values per row).
	a.k0v = dsp.FrequencyBin(b.VoiceLo, defense.FrameFFTSize, rate)
	a.k1v = dsp.FrequencyBin(b.VoiceHi, defense.FrameFFTSize, rate)
	a.k0t = dsp.FrequencyBin(b.TraceLo, defense.FrameFFTSize, rate)
	a.k1t = dsp.FrequencyBin(b.TraceHi, defense.FrameFFTSize, rate)
	a.k0h = dsp.FrequencyBin(b.HighLo, defense.FrameFFTSize, rate)
	a.k1h = dsp.FrequencyBin(a.hiTop, defense.FrameFFTSize, rate)
	a.stft = dsp.NewSTFTAccumulator(defense.FrameFFTSize, defense.FrameHop, a.foldRow)

	a.maxStatFrames = int(cfg.MaxStatSeconds*rate)/defense.FrameHop + 1
	frameCap := int(2*cfg.MaxCorrSeconds*rate)/defense.FrameHop + 2
	if frameCap > a.maxStatFrames {
		frameCap = a.maxStatFrames
	}
	a.voiceP = make([]float64, 0, frameCap)
	a.lowP = make([]float64, 0, frameCap)
	a.highP = make([]float64, 0, frameCap)

	// The chains mirror lowEnvelopeCorrelation's filters exactly; block
	// hints keep the 4095-tap segments at 16k FFTs.
	a.lowFIR = dsp.NewStreamFIR(dsp.BandPassFIR(4095, b.TraceLo/rate, b.TraceHi/rate), 8192)
	a.vbFIR = dsp.NewStreamFIR(dsp.BandPassFIR(1023, b.VoiceLo/rate, b.VoiceHi/rate), 0)
	a.hilFIR = dsp.NewStreamFIR(dsp.HilbertFIR(cfg.HilbertTaps), 0)
	a.envFIR = dsp.NewStreamFIR(dsp.BandPassFIR(4095, b.TraceLo/rate, b.TraceHi/rate), 8192)

	a.dec = int(rate / corrRate)
	if a.dec < 1 {
		a.dec = 1
	}
	a.corrCap = int(cfg.MaxCorrSeconds*rate)/a.dec + 1
	a.lowD = make([]float64, 0, a.corrCap)
	a.envD = make([]float64, 0, a.corrCap)
	return a
}

// Rate returns the session sample rate.
func (a *Analyzer) Rate() float64 { return a.cfg.Rate }

// Samples returns the number of samples pushed so far.
func (a *Analyzer) Samples() int { return a.total }

// foldRow folds one STFT power row into the per-frame band statistics,
// with the exact summation of the batch extractor's band helper. Past
// MaxStatSeconds the statistics stop growing (bounded session memory).
func (a *Analyzer) foldRow(row []float64) {
	if len(a.voiceP) >= a.maxStatFrames {
		return
	}
	var v, l, h float64
	for k := a.k0v; k <= a.k1v && k < len(row); k++ {
		v += row[k]
	}
	for k := a.k0t; k <= a.k1t && k < len(row); k++ {
		l += row[k]
	}
	if a.hiTop > a.bands.HighLo {
		for k := a.k0h; k <= a.k1h && k < len(row); k++ {
			h += row[k]
		}
	}
	a.voiceP = append(a.voiceP, v)
	a.lowP = append(a.lowP, l)
	a.highP = append(a.highP, h)
}

// Push feeds the next samples of the session. After warm-up it does not
// allocate (frame statistics grow amortised between 2x MaxCorrSeconds
// and MaxStatSeconds, then stop).
func (a *Analyzer) Push(x []float64) {
	if a.finalized {
		panic("stream: Analyzer.Push after Finalize (Reset first)")
	}
	for _, v := range x {
		a.energy += v * v
	}
	a.total += len(x)
	a.welch.Push(x)
	a.stft.Push(x)
	if !a.corrDone {
		a.foldLow(a.lowFIR.Push(x))
		a.pushEnvChain(a.vbFIR.Push(x))
		if len(a.lowD) >= a.corrCap && len(a.envD) >= a.corrCap {
			a.corrDone = true
		}
	}
}

// PushStaged is the column-batched twin of Push: the Welch and STFT
// accumulators stage their FFT columns into ce instead of transforming
// inline, and the accumulation completes in CompleteStaged after the
// shard has run one batched transform per size across every session.
// The FIR correlation chains still run inline — vb -> Hilbert ->
// envelope is a sequential data dependency (each filter's input is the
// previous one's output within the same chunk), so their segments can
// never be known ahead of the batched pass. PushStaged(x, ce) followed
// by ce.Run() and CompleteStaged(ce) is bit-identical to Push(x).
func (a *Analyzer) PushStaged(x []float64, ce *ColumnEngines) {
	if a.finalized {
		panic("stream: Analyzer.PushStaged after Finalize (Reset first)")
	}
	for _, v := range x {
		a.energy += v * v
	}
	a.total += len(x)
	a.welch.PushStaged(x, ce.Engine(defense.ExtractFFTSize))
	a.stft.PushStaged(x, ce.Engine(defense.FrameFFTSize))
	if !a.corrDone {
		a.foldLow(a.lowFIR.Push(x))
		a.pushEnvChain(a.vbFIR.Push(x))
		if len(a.lowD) >= a.corrCap && len(a.envD) >= a.corrCap {
			a.corrDone = true
		}
	}
}

// CompleteStaged folds the spectra computed by the batched pass into
// the accumulators, finishing every PushStaged since the last
// CompleteStaged. ce must be the same engine set, already Run.
func (a *Analyzer) CompleteStaged(ce *ColumnEngines) {
	a.welch.FlushStaged(ce.Engine(defense.ExtractFFTSize))
	a.stft.FlushStaged(ce.Engine(defense.FrameFFTSize))
}

// foldLow decimates freshly-available trace-band samples into lowD.
func (a *Analyzer) foldLow(y []float64) {
	for _, v := range y {
		if a.lowIdx%a.dec == 0 && len(a.lowD) < a.corrCap {
			a.lowD = append(a.lowD, v)
		}
		a.lowIdx++
	}
}

// foldEnv decimates band-limited squared-envelope samples into envD.
func (a *Analyzer) foldEnv(y []float64) {
	for _, v := range y {
		if a.envIdx%a.dec == 0 && len(a.envD) < a.corrCap {
			a.envD = append(a.envD, v)
		}
		a.envIdx++
	}
}

// pushEnvChain advances the envelope path with fresh voice-band samples.
func (a *Analyzer) pushEnvChain(vb []float64) {
	if len(vb) == 0 {
		return
	}
	a.vbQueue = append(a.vbQueue, vb...)
	a.consumeHilbert(a.hilFIR.Push(vb))
}

// consumeHilbert pairs Hilbert outputs with their queued voice-band
// samples, squares the envelope and advances the final band-pass.
func (a *Analyzer) consumeHilbert(hb []float64) {
	if len(hb) == 0 {
		return
	}
	q := a.vbQueue[a.qHead : a.qHead+len(hb)]
	a.envSq = a.envSq[:0]
	for i, h := range hb {
		e := math.Hypot(q[i], h)
		a.envSq = append(a.envSq, e*e)
	}
	a.qHead += len(hb)
	if a.qHead > 4096 && 2*a.qHead > len(a.vbQueue) {
		n := copy(a.vbQueue, a.vbQueue[a.qHead:])
		a.vbQueue = a.vbQueue[:n]
		a.qHead = 0
	}
	a.foldEnv(a.envFIR.Push(a.envSq))
}

// Features returns a mid-stream snapshot: the frame statistics and PSD
// cover every sample pushed so far; the correlation covers the aligned
// prefix that has cleared the filter chains (~2650 samples behind).
// Unlike Push, a snapshot allocates (it copies the PSD).
func (a *Analyzer) Features() defense.Features { return a.features() }

// Finalize flushes the filter chains and returns the feature vector for
// the whole session — the streaming equivalent of defense.Extract on
// the concatenation of every pushed sample. After Finalize, Push
// panics until Reset.
func (a *Analyzer) Finalize() defense.Features {
	if !a.finalized {
		if !a.corrDone {
			a.foldLow(a.lowFIR.Flush())
			a.pushEnvChain(a.vbFIR.Flush())
			a.consumeHilbert(a.hilFIR.Flush())
			a.foldEnv(a.envFIR.Flush())
		}
		a.finalized = true
	}
	return a.features()
}

// Reset clears all per-session state so the analyzer (and its buffers)
// can serve a new session.
func (a *Analyzer) Reset() {
	a.total = 0
	a.energy = 0
	a.welch.Reset()
	a.stft.Reset()
	a.voiceP = a.voiceP[:0]
	a.lowP = a.lowP[:0]
	a.highP = a.highP[:0]
	a.lowFIR.Reset()
	a.vbFIR.Reset()
	a.hilFIR.Reset()
	a.envFIR.Reset()
	a.vbQueue = a.vbQueue[:0]
	a.qHead = 0
	a.envSq = a.envSq[:0]
	a.lowD = a.lowD[:0]
	a.envD = a.envD[:0]
	a.lowIdx, a.envIdx = 0, 0
	a.corrDone = false
	a.finalized = false
}

// features assembles the defense vector from the accumulators,
// mirroring defense.Extract's structure and early exits.
func (a *Analyzer) features() defense.Features {
	var f defense.Features
	if a.total == 0 || a.energy == 0 {
		f.TraceSNR, f.HighSNR = defense.FloorLog, defense.FloorLog
		f.Sub50LogRatio, f.HighLogRatio = defense.FloorLog, defense.FloorLog
		return f
	}
	psd := a.welch.PSD()
	rate := a.cfg.Rate
	voice := dsp.BandPower(psd, rate, defense.ExtractFFTSize, a.bands.VoiceLo, a.bands.VoiceHi)
	if voice <= 0 {
		f.TraceSNR, f.HighSNR = defense.FloorLog, defense.FloorLog
		f.Sub50LogRatio, f.HighLogRatio = defense.FloorLog, defense.FloorLog
		return f
	}
	sub50 := dsp.BandPower(psd, rate, defense.ExtractFFTSize, a.bands.TraceLo, a.bands.TraceHi)
	var high float64
	if a.hiTop > a.bands.HighLo {
		high = dsp.BandPower(psd, rate, defense.ExtractFFTSize, a.bands.HighLo, a.hiTop)
	}
	logRatio := func(p float64) float64 { return math.Log10((p + 1e-18) / voice) }
	f.Sub50LogRatio = logRatio(sub50)
	f.HighLogRatio = logRatio(high)
	f.LowEnvCorr = a.corr()
	f.TraceSNR, f.HighSNR = a.noiseSubtracted()
	return f
}

// corr runs the lag-searched Pearson correlation over the decimated
// traces (the streaming stand-in for dsp.MaxCorrelationLag at the ADC
// rate inside the batch extractor).
func (a *Analyzer) corr() float64 {
	n := len(a.lowD)
	if len(a.envD) < n {
		n = len(a.envD)
	}
	if n == 0 {
		return 0
	}
	maxLag := int(a.cfg.Rate*defense.CorrMaxLagSeconds) / a.dec
	c, _ := dsp.MaxCorrelationLag(a.lowD[:n], a.envD[:n], maxLag)
	return c
}

// noiseSubtracted replicates defense.Extract's noiseSubtractedRatios
// over the streamed per-frame band powers, operation for operation.
func (a *Analyzer) noiseSubtracted() (traceSNR, highSNR float64) {
	traceSNR, highSNR = defense.FloorLog, defense.FloorLog
	if a.total < 4*defense.FrameFFTSize {
		return
	}
	n := len(a.voiceP)
	skip := n / 10
	lo, hi := skip, n-skip
	if hi-lo < 8 {
		return
	}
	voiceP, lowP, highP := a.voiceP[lo:hi], a.lowP[lo:hi], a.highP[lo:hi]
	med := median(voiceP)
	var act, sil struct {
		voice, low, high float64
		n                int
	}
	for i := range voiceP {
		if voiceP[i] > med {
			act.voice += voiceP[i]
			act.low += lowP[i]
			act.high += highP[i]
			act.n++
		} else {
			sil.voice += voiceP[i]
			sil.low += lowP[i]
			sil.high += highP[i]
			sil.n++
		}
	}
	if act.n == 0 || sil.n == 0 {
		return
	}
	mean := func(sum float64, n int) float64 { return sum / float64(n) }
	cleanVoice := mean(act.voice, act.n) - mean(sil.voice, sil.n)
	if cleanVoice <= 0 {
		return
	}
	snr := func(as, ss float64) float64 {
		diff := mean(as, act.n) - mean(ss, sil.n)
		if diff <= 0 {
			return defense.FloorLog
		}
		v := math.Log10(diff / cleanVoice)
		if v < defense.FloorLog {
			return defense.FloorLog
		}
		return v
	}
	traceSNR = snr(act.low, sil.low)
	if a.hiTop > a.bands.HighLo {
		highSNR = snr(act.high, sil.high)
	}
	return
}

// median returns the median of x without mutating it, with the batch
// extractor's exact semantics (sorted[len/2]) — but O(n log n), since a
// streaming session can span far more frames than a batch recording.
func median(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	c := make([]float64, len(x))
	copy(c, x)
	sort.Float64s(c)
	return c[len(c)/2]
}

// Extract streams sig through a fresh Analyzer in chunk-sized pushes and
// returns the finalized features — the drop-in streaming twin of
// defense.Extract for whole recordings. chunk <= 0 selects 960 samples
// (20 ms at 48 kHz).
func Extract(sig *audio.Signal, chunk int) defense.Features {
	if chunk <= 0 {
		chunk = 960
	}
	a := NewAnalyzer(AnalyzerConfig{Rate: sig.Rate})
	for off := 0; off < len(sig.Samples); off += chunk {
		end := off + chunk
		if end > len(sig.Samples) {
			end = len(sig.Samples)
		}
		a.Push(sig.Samples[off:end])
	}
	return a.Finalize()
}
