package stream

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"testing"
	"time"

	"inaudible/internal/defense"
)

func TestRandomSessionNeverHangs(t *testing.T) {
	srv := NewServer(ServerConfig{Detector: defense.DemoThresholds(), MaxSessions: -1, Shards: 1, EmitEvery: 3})
	rng := rand.New(rand.NewSource(1))
	prefixes := [][]byte{[]byte("GRD1"), []byte("RIFF"), {}}
	for i := 0; i < 3000; i++ {
		n := rng.Intn(2000)
		data := make([]byte, n)
		rng.Read(data)
		data = append(prefixes[rng.Intn(3)], data...)
		done := make(chan struct{})
		go func() {
			var out bytes.Buffer
			srv.ServeSession(bytes.NewReader(data), &out)
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("input %d hung: %s", i, hex.EncodeToString(data))
		}
	}
}
