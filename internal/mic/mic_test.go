package mic

import (
	"math"
	"math/rand"
	"testing"

	"inaudible/internal/acoustics"
	"inaudible/internal/audio"
	"inaudible/internal/dsp"
)

func seeded() *rand.Rand { return rand.New(rand.NewSource(42)) }

func TestRecordAudibleToneFaithfully(t *testing.T) {
	// A 94 dB SPL 1 kHz tone (16 dB below full scale) must be recorded at
	// the right digital level with low distortion.
	d := AndroidPhone()
	amp := acoustics.PressureFromSPL(94) * math.Sqrt2
	in := audio.Tone(192000, 1000, amp, 0.5)
	rec := d.Record(in, seeded())
	if rec.Rate != 48000 {
		t.Fatalf("rate %v", rec.Rate)
	}
	got := dsp.ToneAmplitude(rec.Slice(0.1, 0.4).Samples, 1000, rec.Rate)
	want := dsp.AmplitudeFromDB(94 - 110) // relative to full-scale sine
	if math.Abs(got-want)/want > 0.15 {
		t.Fatalf("recorded amplitude %v, want ~%v", got, want)
	}
}

func TestRecordRemovesUltrasound(t *testing.T) {
	// A pure 30 kHz tone must vanish behind the LPF: nothing audible, and
	// no 30 kHz in the 48 kHz recording (it's above Nyquist anyway).
	d := AndroidPhone()
	amp := acoustics.PressureFromSPL(100) * math.Sqrt2
	in := audio.Tone(192000, 30000, amp, 0.5)
	rec := d.Record(in, nil)
	if peak := rec.Slice(0.1, 0.4).Peak(); peak > 0.02 {
		t.Fatalf("ultrasonic tone left %v peak in recording", peak)
	}
}

func TestRecordDemodulatesAMUltrasound(t *testing.T) {
	// The attack primitive: AM ultrasound (2 kHz on 30 kHz carrier) at a
	// loud-but-ultrasonic SPL must appear as a 2 kHz tone in the
	// recording of a non-linear mic, and NOT in the reference mic.
	const rate = 192000.0
	base := audio.Tone(rate, 2000, 1, 0.5)
	am := audio.AMSignal(base, 30000, 0.8)
	amp := acoustics.PressureFromSPL(102) * math.Sqrt2
	am.Gain(amp) // pressure waveform at the device

	rec := AndroidPhone().Record(am, seeded())
	demod := dsp.ToneAmplitude(rec.Slice(0.1, 0.4).Samples, 2000, rec.Rate)
	if demod < 1e-3 {
		t.Fatalf("no demodulated voice: amplitude %v", demod)
	}

	ref := ReferenceMic().Record(am, seeded())
	linDemod := dsp.ToneAmplitude(ref.Slice(0.1, 0.4).Samples, 2000, ref.Rate)
	if linDemod > demod/10 {
		t.Fatalf("linear mic demodulated too: %v vs %v", linDemod, demod)
	}
}

func TestDemodulationScalesWithCarrierSquared(t *testing.T) {
	// Second-order demodulation: +6 dB carrier => +12 dB baseband.
	const rate = 192000.0
	am := audio.AMSignal(audio.Tone(rate, 2000, 1, 0.5), 30000, 0.8)
	d := AndroidPhone()
	mk := func(spl float64) float64 {
		in := am.Clone()
		in.Gain(acoustics.PressureFromSPL(spl) * math.Sqrt2)
		rec := d.Record(in, nil)
		return dsp.ToneAmplitude(rec.Slice(0.1, 0.4).Samples, 2000, rec.Rate)
	}
	lo := mk(90)
	hi := mk(96)
	gain := dsp.AmplitudeDB(hi / lo)
	if math.Abs(gain-12) > 1.5 {
		t.Fatalf("6 dB carrier step produced %v dB baseband step, want ~12", gain)
	}
}

func TestEchoAttenuatesUltrasoundMore(t *testing.T) {
	// Same AM field: the Echo's grille yields a weaker demodulated voice
	// than the phone — the paper's reason for shorter Echo range.
	const rate = 192000.0
	am := audio.AMSignal(audio.Tone(rate, 2000, 1, 0.5), 30000, 0.8)
	am.Gain(acoustics.PressureFromSPL(100) * math.Sqrt2)
	phone := AndroidPhone().Record(am, nil)
	echo := AmazonEcho().Record(am, nil)
	dp := dsp.ToneAmplitude(phone.Slice(0.1, 0.4).Samples, 2000, phone.Rate)
	de := dsp.ToneAmplitude(echo.Slice(0.1, 0.4).Samples, 2000, echo.Rate)
	if de >= dp {
		t.Fatalf("echo demod %v >= phone %v", de, dp)
	}
	if echo.Rate != 44100 {
		t.Fatalf("echo ADC rate %v", echo.Rate)
	}
}

func TestRecordIntermodulationOfTwoTones(t *testing.T) {
	// The paper's §3.1 example: 25 kHz + 30 kHz in the air => 5 kHz in the
	// recording.
	const rate = 192000.0
	in := audio.MultiTone(rate, 1, 0.5, 25000, 30000)
	in.Gain(acoustics.PressureFromSPL(100) * math.Sqrt2)
	rec := AndroidPhone().Record(in, nil)
	imd := dsp.ToneAmplitude(rec.Slice(0.1, 0.4).Samples, 5000, rec.Rate)
	if imd < 1e-3 {
		t.Fatalf("intermodulation product missing: %v", imd)
	}
}

func TestNoiseFloorPresent(t *testing.T) {
	d := AndroidPhone()
	silence := audio.Silence(192000, 0.5)
	rec := d.Record(silence, seeded())
	if rec.RMS() == 0 {
		t.Fatal("expected self-noise in silent recording")
	}
	// Noise must sit far below full scale (-60 dBFS or lower).
	if dsp.AmplitudeDB(rec.RMS()) > -60 {
		t.Fatalf("noise floor too hot: %v dBFS", dsp.AmplitudeDB(rec.RMS()))
	}
	// Without an RNG, recording silence is silent.
	rec2 := d.Record(silence, nil)
	if rec2.RMS() != 0 {
		t.Fatal("nil rng must disable noise")
	}
}

func TestClippingAtFullScale(t *testing.T) {
	d := AndroidPhone()
	// 20 dB above full scale: must clip to |1| and distort, not blow up.
	amp := acoustics.PressureFromSPL(130) * math.Sqrt2
	in := audio.Tone(192000, 1000, amp, 0.25)
	rec := d.Record(in, nil)
	if rec.Peak() > 1 {
		t.Fatalf("peak %v > 1 after clipping", rec.Peak())
	}
	if rec.Peak() < 0.99 {
		t.Fatalf("expected hard clipping, peak %v", rec.Peak())
	}
}

func TestQuantizationGrid(t *testing.T) {
	d := AndroidPhone()
	in := audio.Tone(192000, 1000, acoustics.PressureFromSPL(80)*math.Sqrt2, 0.1)
	rec := d.Record(in, nil)
	levels := math.Pow(2, float64(d.Bits-1))
	for i, v := range rec.Samples {
		snapped := math.Round(v*levels) / levels
		if math.Abs(v-snapped) > 1e-12 {
			t.Fatalf("sample %d = %v not on the %d-bit grid", i, v, d.Bits)
		}
	}
}

func TestRecordPanicsOnLowSimRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AndroidPhone().Record(audio.Tone(8000, 100, 0.1, 0.1), nil)
}

func TestBodyGainShape(t *testing.T) {
	d := AmazonEcho()
	if g := d.BodyGain(1000); g != 1 {
		t.Errorf("voice band gain %v", g)
	}
	want := dsp.AmplitudeFromDB(-d.UltrasonicAttenuationDB)
	if g := d.BodyGain(40000); math.Abs(g-want) > 1e-9 {
		t.Errorf("ultrasonic gain %v want %v", g, want)
	}
}

func TestSPLAtDevice(t *testing.T) {
	s := audio.Tone(48000, 1000, acoustics.PressureFromSPL(70)*math.Sqrt2, 0.5)
	if got := SPLAtDevice(s); math.Abs(got-70) > 0.5 {
		t.Fatalf("SPLAtDevice %v", got)
	}
}
