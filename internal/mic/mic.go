// Package mic models the victim device's receiving chain (paper Fig. 2):
//
//	transducer -> amplifier -> low-pass filter -> ADC
//
// The transducer+amplifier stage carries the security flaw the whole paper
// rests on: a residual non-linearity (Eq. 1) that demodulates
// amplitude-modulated ultrasound into the audible band *before* the
// anti-alias low-pass filter removes the ultrasonic original. The LPF and
// ADC then faithfully record the phantom voice.
//
// Unit convention: Record accepts the sound pressure waveform at the
// device (pascals, at any simulation rate comfortably above the ultrasonic
// content) and returns the digital recording in normalised full-scale
// units at the device's ADC rate.
package mic

import (
	"fmt"
	"math"
	"math/rand"

	"inaudible/internal/acoustics"
	"inaudible/internal/audio"
	"inaudible/internal/dsp"
	"inaudible/internal/nonlinear"
)

// Device describes one victim microphone profile.
type Device struct {
	// Name identifies the profile in reports ("android-phone", "echo").
	Name string
	// FullScaleSPL is the acoustic level (dB SPL, RMS sine) that reaches
	// digital full scale. Typical MEMS microphones clip near 110-120 dB.
	FullScaleSPL float64
	// UltrasonicAttenuationDB attenuates content above UltrasonicEdgeHz
	// before the transducer — the acoustic path through the device body.
	// The Echo's plastic grille attenuates ultrasound noticeably more than
	// a phone's open microphone port, which is why the paper measures
	// shorter attack ranges against it.
	UltrasonicAttenuationDB float64
	// UltrasonicEdgeHz is where the body attenuation begins.
	UltrasonicEdgeHz float64
	// NL is the transducer+amplifier non-linearity in normalised
	// full-scale units.
	NL *nonlinear.Polynomial
	// LPFCutoffHz is the anti-alias filter cutoff (paper: ~20 kHz).
	LPFCutoffHz float64
	// ADCRate is the recording sample rate (48 kHz or 44.1 kHz).
	ADCRate float64
	// Bits is the ADC resolution.
	Bits int
	// NoiseFloorSPL is the equivalent input self-noise level.
	NoiseFloorSPL float64
}

// AndroidPhone models a phone-class MEMS microphone: open port (little
// ultrasonic attenuation), 48 kHz ADC.
func AndroidPhone() *Device {
	return &Device{
		Name:                    "android-phone",
		FullScaleSPL:            110,
		UltrasonicAttenuationDB: 2,
		UltrasonicEdgeHz:        20000,
		NL:                      nonlinear.Cubic(1, 0.9, 0.15),
		LPFCutoffHz:             20000,
		ADCRate:                 48000,
		Bits:                    16,
		NoiseFloorSPL:           30,
	}
}

// AmazonEcho models the Echo's microphone array behind its plastic
// grille: ultrasound is attenuated ~8 dB more than on the phone, and the
// ADC runs at 44.1 kHz.
func AmazonEcho() *Device {
	return &Device{
		Name:                    "amazon-echo",
		FullScaleSPL:            110,
		UltrasonicAttenuationDB: 10,
		UltrasonicEdgeHz:        20000,
		NL:                      nonlinear.Cubic(1, 0.9, 0.15),
		LPFCutoffHz:             20000,
		ADCRate:                 44100,
		Bits:                    16,
		NoiseFloorSPL:           32,
	}
}

// ReferenceMic models an idealised laboratory microphone with a perfectly
// linear front end — the control device: inaudible attacks leave no trace
// on it because there is nothing to demodulate the ultrasound.
func ReferenceMic() *Device {
	return &Device{
		Name:                    "reference-linear",
		FullScaleSPL:            110,
		UltrasonicAttenuationDB: 0,
		UltrasonicEdgeHz:        20000,
		NL:                      nonlinear.Linear(1),
		LPFCutoffHz:             20000,
		ADCRate:                 48000,
		Bits:                    24,
		NoiseFloorSPL:           10,
	}
}

// Record converts the pressure waveform at the device into the digital
// recording the voice assistant receives. rng drives the self-noise;
// pass a seeded source for reproducibility. The input is not modified.
func (d *Device) Record(pressure *audio.Signal, rng *rand.Rand) *audio.Signal {
	if pressure.Rate < 2*d.LPFCutoffHz {
		panic(fmt.Sprintf("mic: simulation rate %v too low for cutoff %v",
			pressure.Rate, d.LPFCutoffHz))
	}
	x := pressure.Clone()

	// 1. Acoustic path through the device body: ultrasonic attenuation.
	if d.UltrasonicAttenuationDB > 0 {
		d.ApplyBodyFilter(x)
	}

	// 2. Normalise pascals to digital full scale. FullScaleSPL is an RMS
	// sine level, so full-scale peak pressure is sqrt(2) * that RMS.
	fsPeak := d.FullScalePeak()
	x.Gain(1 / fsPeak)

	// 3. Transducer + amplifier non-linearity — the demodulation step.
	d.NL.ApplyInPlace(x.Samples)

	// 3b. AC coupling: the amplifier blocks DC (including the DC offset
	// the quadratic term creates). The corner sits at ~15 Hz so the
	// 20-50 Hz band — where the defense looks for non-linearity traces —
	// passes through intact.
	dsp.DCBlock(x.Samples, 15, x.Rate)

	// 4. Equivalent input noise.
	if d.NoiseFloorSPL > 0 && rng != nil {
		noiseRMS := acoustics.PressureFromSPL(d.NoiseFloorSPL) / fsPeak
		for i := range x.Samples {
			x.Samples[i] += rng.NormFloat64() * noiseRMS
		}
	}

	// 5. Anti-alias low-pass filter.
	lp := dsp.LowPassFIR(511, d.LPFCutoffHz/x.Rate)
	x.Samples = lp.Apply(x.Samples)

	// 6. Sampling.
	if x.Rate != d.ADCRate {
		x = x.Resampled(d.ADCRate)
	}

	// 7. Quantisation and clipping.
	d.quantize(x)
	return x
}

// ApplyBodyFilter attenuates content above UltrasonicEdgeHz by
// UltrasonicAttenuationDB with a smooth one-octave transition, applied in
// the frequency domain over the whole buffer — the exact reference that
// the streaming simulation chain approximates with a windowed FIR.
func (d *Device) ApplyBodyFilter(sig *audio.Signal) {
	n := len(sig.Samples)
	if n == 0 {
		return
	}
	size := dsp.NextPowerOfTwo(n)
	padded := make([]float64, size)
	copy(padded, sig.Samples)
	// The input is real and the gain curve is real and symmetric, so the
	// whole filter runs on the one-sided spectrum at half the transform
	// cost (dsp.RFFT reuses the cached FFT plan for this length).
	spec := dsp.RFFT(padded)
	for k := range spec {
		f := dsp.BinFrequency(k, size, sig.Rate)
		spec[k] *= complex(d.BodyGain(f), 0)
	}
	copy(sig.Samples, dsp.IRFFT(spec, size))
}

// BodyGain is the linear gain of the device body at frequency f.
func (d *Device) BodyGain(f float64) float64 {
	if f <= d.UltrasonicEdgeHz {
		return 1
	}
	octs := math.Log2(f / d.UltrasonicEdgeHz)
	db := d.UltrasonicAttenuationDB * math.Min(1, octs)
	return dsp.AmplitudeFromDB(-db)
}

// FullScalePeak returns the peak pressure (pascals) that maps to digital
// full scale: FullScaleSPL is an RMS sine level, so the peak is sqrt(2)
// times that RMS pressure.
func (d *Device) FullScalePeak() float64 {
	return acoustics.PressureFromSPL(d.FullScaleSPL) * math.Sqrt2
}

// quantize rounds samples to the ADC grid and hard-clips to [-1, 1].
func (d *Device) quantize(sig *audio.Signal) {
	levels := math.Pow(2, float64(d.Bits-1))
	for i, v := range sig.Samples {
		v = dsp.Clamp(v, -1, 1)
		sig.Samples[i] = math.Round(v*levels) / levels
	}
}

// SPLAtDevice reports the sound pressure level of the waveform reaching
// the device, a convenience for experiment logs.
func SPLAtDevice(pressure *audio.Signal) float64 {
	return acoustics.SPL(pressure.RMS())
}
