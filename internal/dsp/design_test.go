package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// TestFIRFromMagnitudeTracksSmoothResponse checks that the designed
// filter reproduces a smooth target response in-band to well under 1%.
func TestFIRFromMagnitudeTracksSmoothResponse(t *testing.T) {
	// A gentle band shape similar to atmospheric absorption: unity at DC
	// rolling off smoothly toward Nyquist.
	mag := func(f float64) float64 { return math.Exp(-6 * f) }
	fir := FIRFromMagnitude(511, mag)
	if len(fir.Taps)%2 == 0 {
		t.Fatalf("taps must be odd, got %d", len(fir.Taps))
	}
	for _, f := range []float64{0.01, 0.05, 0.1, 0.2, 0.3, 0.45} {
		h := fir.FrequencyResponse(f)
		got := math.Hypot(real(h), imag(h))
		want := mag(f)
		if math.Abs(got-want) > 0.01*want+1e-4 {
			t.Errorf("gain at f=%v: got %v want %v", f, got, want)
		}
	}
}

// TestFIRFromMagnitudeLinearPhase verifies the design is symmetric, so
// delay compensation by (taps-1)/2 is exact.
func TestFIRFromMagnitudeLinearPhase(t *testing.T) {
	fir := FIRFromMagnitude(255, func(f float64) float64 { return 1 / (1 + 20*f) })
	n := len(fir.Taps)
	for i := 0; i < n/2; i++ {
		if math.Abs(fir.Taps[i]-fir.Taps[n-1-i]) > 1e-15 {
			t.Fatalf("taps not symmetric at %d: %v vs %v", i, fir.Taps[i], fir.Taps[n-1-i])
		}
	}
}

// TestFractionalDelayFIR checks the interpolator delays a sinusoid by the
// designed fraction of a sample.
func TestFractionalDelayFIR(t *testing.T) {
	const frac = 0.37
	fir := FractionalDelayFIR(63, frac)
	rate := 48000.0
	freq := 3000.0
	n := 4096
	x := make([]float64, n)
	w := 2 * math.Pi * freq / rate
	for i := range x {
		x[i] = math.Sin(w * float64(i))
	}
	y := fir.Apply(x)
	// Compare against the analytically delayed sinusoid away from edges.
	for i := 200; i < n-200; i++ {
		want := math.Sin(w * (float64(i) - frac))
		if math.Abs(y[i]-want) > 1e-3 {
			t.Fatalf("sample %d: got %v want %v", i, y[i], want)
		}
	}
}

// TestStreamResamplerMatchesBatch pins the parity contract: any chunking
// of the stream reproduces Resample bit for bit after Flush.
func TestStreamResamplerMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, 9473) // deliberately not a multiple of anything
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for _, rates := range [][2]float64{{192000, 48000}, {48000, 44100}, {44100, 48000}} {
		want := Resample(x, rates[0], rates[1])
		for _, chunk := range []int{1, 7, 64, 1024, len(x)} {
			s := NewStreamResampler(rates[0], rates[1])
			var got []float64
			for off := 0; off < len(x); off += chunk {
				end := off + chunk
				if end > len(x) {
					end = len(x)
				}
				got = append(got, s.Push(x[off:end])...)
			}
			got = append(got, s.Flush()...)
			if len(got) != len(want) {
				t.Fatalf("%v chunk %d: length %d want %d", rates, chunk, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v chunk %d: sample %d differs: %v vs %v", rates, chunk, i, got[i], want[i])
				}
			}
		}
	}
}

// TestStreamResamplerIdentity checks the rate-preserving pass-through.
func TestStreamResamplerIdentity(t *testing.T) {
	s := NewStreamResampler(48000, 48000)
	x := []float64{1, 2, 3}
	got := s.Push(x)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("identity push: %v", got)
	}
	if tail := s.Flush(); len(tail) != 0 {
		t.Fatalf("identity flush: %v", tail)
	}
}

// TestStreamResamplerSteadyStateAllocs checks the hop loop stops
// allocating once buffer capacities stabilise.
func TestStreamResamplerSteadyStateAllocs(t *testing.T) {
	s := NewStreamResampler(192000, 48000)
	block := make([]float64, 4096)
	for i := range block {
		block[i] = math.Sin(float64(i) / 17)
	}
	for i := 0; i < 32; i++ {
		s.Push(block)
	}
	allocs := testing.AllocsPerRun(64, func() { s.Push(block) })
	if allocs > 0 {
		t.Fatalf("steady-state Push allocates %v times", allocs)
	}
}
