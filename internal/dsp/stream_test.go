package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// testStream builds a deterministic broadband test signal.
func testStream(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		t := float64(i)
		x[i] = 0.5*math.Sin(2*math.Pi*0.01*t) +
			0.3*math.Sin(2*math.Pi*0.07*t+0.4) +
			0.2*(rng.Float64()*2-1)
	}
	return x
}

func maxAbsDiff(a, b []float64) float64 {
	n := len(a)
	if len(b) != n {
		return math.Inf(1)
	}
	var m float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

func TestRFFTIntoMatchesRFFT(t *testing.T) {
	for _, n := range []int{4, 16, 1024, 4096} {
		x := testStream(n, 7)
		want := RFFT(x)
		dst := make([]complex128, n/2+1)
		scratch := make([]complex128, n/2)
		got := RFFTInto(dst, x, scratch)
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("n=%d bin %d: RFFTInto %v != RFFT %v", n, k, got[k], want[k])
			}
		}
		back := IRFFTInto(make([]float64, n), got, scratch)
		ref := IRFFT(want, n)
		for i := range ref {
			if back[i] != ref[i] {
				t.Fatalf("n=%d sample %d: IRFFTInto %v != IRFFT %v", n, i, back[i], ref[i])
			}
		}
	}
}

func TestRFFTIntoNoAlloc(t *testing.T) {
	const n = 4096
	x := testStream(n, 3)
	dst := make([]complex128, n/2+1)
	out := make([]float64, n)
	scratch := make([]complex128, n/2)
	RFFTInto(dst, x, scratch) // warm the plan cache
	allocs := testing.AllocsPerRun(50, func() {
		RFFTInto(dst, x, scratch)
		IRFFTInto(out, dst, scratch)
	})
	if allocs != 0 {
		t.Fatalf("RFFTInto+IRFFTInto allocated %v times per run, want 0", allocs)
	}
}

func TestStreamFIRMatchesApply(t *testing.T) {
	x := testStream(10_000, 11)
	filters := map[string]*FIR{
		"lowpass-101":   LowPassFIR(101, 0.12),
		"bandpass-1023": BandPassFIR(1023, 0.00125, 0.1667),
		"bandpass-4095": BandPassFIR(4095, 0.0003, 0.00125),
		"hilbert-501":   HilbertFIR(501),
	}
	for name, f := range filters {
		want := f.Apply(x)
		for _, chunk := range []int{1, 7, 960, len(x)} {
			s := NewStreamFIR(f, 0)
			var got []float64
			for off := 0; off < len(x); off += chunk {
				end := off + chunk
				if end > len(x) {
					end = len(x)
				}
				got = append(got, s.Push(x[off:end])...)
			}
			got = append(got, s.Flush()...)
			if len(got) != len(want) {
				t.Fatalf("%s chunk %d: got %d samples, want %d", name, chunk, len(got), len(want))
			}
			if d := maxAbsDiff(got, want); d > 1e-9 {
				t.Fatalf("%s chunk %d: max deviation %g vs Apply", name, chunk, d)
			}
		}
	}
}

func TestStreamFIRShortStream(t *testing.T) {
	// Streams shorter than the group delay still produce len(x) samples.
	f := BandPassFIR(4095, 0.001, 0.01)
	x := testStream(50, 5)
	want := f.Apply(x)
	s := NewStreamFIR(f, 0)
	got := append(s.Push(x), s.Flush()...)
	if len(got) != len(want) {
		t.Fatalf("got %d samples, want %d", len(got), len(want))
	}
	if d := maxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("max deviation %g vs Apply", d)
	}
}

func TestStreamFIRReset(t *testing.T) {
	f := LowPassFIR(255, 0.1)
	x := testStream(4_000, 23)
	want := f.Apply(x)
	s := NewStreamFIR(f, 0)
	s.Push(x[:1234])
	s.Flush()
	s.Reset()
	got := append([]float64(nil), s.Push(x)...)
	got = append(got, s.Flush()...)
	if d := maxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("after Reset: max deviation %g vs Apply", d)
	}
}

func TestStreamFIRPushNoAlloc(t *testing.T) {
	f := BandPassFIR(1023, 0.01, 0.2)
	s := NewStreamFIR(f, 4096)
	frame := testStream(960, 9)
	for i := 0; i < 32; i++ { // warm up output staging and plan cache
		s.Push(frame)
	}
	allocs := testing.AllocsPerRun(100, func() { s.Push(frame) })
	if allocs != 0 {
		t.Fatalf("StreamFIR.Push allocated %v times per run, want 0", allocs)
	}
}

func TestWelchAccumulatorMatchesBatch(t *testing.T) {
	for _, n := range []int{100, 4096, 10_000, 33_000} {
		x := testStream(n, int64(n))
		want := Welch(x, 4096)
		for _, chunk := range []int{1, 137, 960, n} {
			acc := NewWelchAccumulator(4096)
			for off := 0; off < n; off += chunk {
				end := off + chunk
				if end > n {
					end = n
				}
				acc.Push(x[off:end])
			}
			got := acc.PSD()
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("n=%d chunk=%d bin %d: streaming %g != batch %g",
						n, chunk, k, got[k], want[k])
				}
			}
		}
	}
}

func TestWelchAccumulatorMidStreamSnapshot(t *testing.T) {
	// PSD() mid-stream equals batch Welch over the prefix pushed so far,
	// and taking the snapshot does not disturb later results.
	x := testStream(20_000, 77)
	acc := NewWelchAccumulator(4096)
	acc.Push(x[:9_000])
	snap := acc.PSD()
	want := Welch(x[:9_000], 4096)
	for k := range want {
		if snap[k] != want[k] {
			t.Fatalf("prefix bin %d: streaming %g != batch %g", k, snap[k], want[k])
		}
	}
	acc.Push(x[9_000:])
	got := acc.PSD()
	full := Welch(x, 4096)
	for k := range full {
		if got[k] != full[k] {
			t.Fatalf("full bin %d: streaming %g != batch %g", k, got[k], full[k])
		}
	}
}

func TestSTFTAccumulatorMatchesBatch(t *testing.T) {
	x := testStream(30_000, 31)
	const fftSize, hop = 4096, 2048
	want := STFT(x, 48000, fftSize, hop)
	var rows [][]float64
	acc := NewSTFTAccumulator(fftSize, hop, func(row []float64) {
		rows = append(rows, append([]float64(nil), row...))
	})
	for off := 0; off < len(x); off += 960 {
		end := off + 960
		if end > len(x) {
			end = len(x)
		}
		acc.Push(x[off:end])
	}
	if len(rows) != want.Frames() {
		t.Fatalf("streaming produced %d frames, batch %d", len(rows), want.Frames())
	}
	for f, row := range rows {
		for k := range row {
			if row[k] != want.Power[f][k] {
				t.Fatalf("frame %d bin %d: streaming %g != batch %g",
					f, k, row[k], want.Power[f][k])
			}
		}
	}
}

func TestWelchAccumulatorPushNoAlloc(t *testing.T) {
	acc := NewWelchAccumulator(4096)
	frame := testStream(960, 41)
	for i := 0; i < 16; i++ {
		acc.Push(frame)
	}
	allocs := testing.AllocsPerRun(100, func() { acc.Push(frame) })
	if allocs != 0 {
		t.Fatalf("WelchAccumulator.Push allocated %v times per run, want 0", allocs)
	}
}

func TestBandTrackerMatchesGoertzel(t *testing.T) {
	const rate = 48000.0
	const frame = 960
	freqs := []float64{20, 30, 50}
	x := testStream(5*frame, 13)
	tr := NewBandTracker(rate, freqs, frame, 1) // alpha 1: rolling == last
	tr.Push(x)
	if tr.Frames() != 5 {
		t.Fatalf("frames = %d, want 5", tr.Frames())
	}
	lastFrame := x[4*frame : 5*frame]
	for i, f := range freqs {
		want := Goertzel(lastFrame, f, rate)
		if got := tr.Last(i); math.Abs(got-want) > 1e-15*(1+want) {
			t.Fatalf("probe %g Hz: tracker %g != Goertzel %g", f, got, want)
		}
		if tr.Rolling(i) != tr.Last(i) {
			t.Fatalf("alpha=1 rolling should equal last")
		}
	}
}

func TestBandTrackerRolling(t *testing.T) {
	const rate, frame = 1000.0, 100
	tr := NewBandTracker(rate, []float64{50}, frame, 0.5)
	tone := make([]float64, frame)
	for i := range tone {
		tone[i] = math.Sin(2 * math.Pi * 50 * float64(i) / rate)
	}
	silence := make([]float64, frame)
	tr.Push(tone)
	p1 := tr.Rolling(0)
	tr.Push(silence)
	p2 := tr.Rolling(0)
	if !(p1 > 0.2 && p2 < p1 && p2 > 0.2*p1) {
		t.Fatalf("rolling average did not decay as expected: %g -> %g", p1, p2)
	}
	if tr.RollingTotal() != tr.Rolling(0) {
		t.Fatalf("RollingTotal mismatch for single probe")
	}
}

func TestHilbertEnvelopeTracksAnalytic(t *testing.T) {
	// The FIR Hilbert envelope should track the batch analytic envelope
	// for in-band components once edge transients are excluded.
	const rate = 48000.0
	n := 20_000
	x := make([]float64, n)
	for i := range x {
		t := float64(i) / rate
		carrier := math.Sin(2 * math.Pi * 440 * t)
		x[i] = (0.6 + 0.4*math.Sin(2*math.Pi*5*t)) * carrier
	}
	want := Envelope(x)
	h := HilbertFIR(1023)
	s := NewStreamFIR(h, 0)
	hx := append([]float64(nil), s.Push(x)...)
	hx = append(hx, s.Flush()...)
	var worst float64
	for i := 2000; i < n-2000; i++ {
		env := math.Hypot(x[i], hx[i])
		if d := math.Abs(env - want[i]); d > worst {
			worst = d
		}
	}
	if worst > 0.02 {
		t.Fatalf("FIR Hilbert envelope deviates %g from analytic envelope", worst)
	}
}
