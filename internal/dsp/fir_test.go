package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func makeTone(freq, rate float64, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * freq * float64(i) / rate)
	}
	return x
}

func TestLowPassFIRPassesAndStops(t *testing.T) {
	const rate = 48000.0
	lp := LowPassFIR(255, 8000/rate)
	n := 8192
	pass := lp.Apply(makeTone(1000, rate, n))
	stop := lp.Apply(makeTone(16000, rate, n))
	// Measure steady-state amplitude away from the edges.
	passAmp := RMS(pass[n/4 : 3*n/4])
	stopAmp := RMS(stop[n/4 : 3*n/4])
	wantPass := 1 / math.Sqrt2
	if math.Abs(passAmp-wantPass)/wantPass > 0.02 {
		t.Errorf("passband RMS = %v, want ~%v", passAmp, wantPass)
	}
	if stopAmp > wantPass*0.005 {
		t.Errorf("stopband RMS = %v, want < %v", stopAmp, wantPass*0.005)
	}
}

func TestHighPassFIR(t *testing.T) {
	const rate = 48000.0
	hp := HighPassFIR(255, 4000/rate)
	n := 8192
	low := hp.Apply(makeTone(500, rate, n))
	high := hp.Apply(makeTone(12000, rate, n))
	if RMS(low[n/4:3*n/4]) > 0.01 {
		t.Errorf("low tone leaked through high-pass: RMS %v", RMS(low[n/4:3*n/4]))
	}
	want := 1 / math.Sqrt2
	got := RMS(high[n/4 : 3*n/4])
	if math.Abs(got-want)/want > 0.02 {
		t.Errorf("high tone attenuated: RMS %v want %v", got, want)
	}
}

func TestBandPassFIR(t *testing.T) {
	const rate = 192000.0
	// Pass 25-35 kHz, stop elsewhere — the shape used to isolate
	// spectrum segments for the long-range attack.
	bp := BandPassFIR(511, 25000/rate, 35000/rate)
	n := 16384
	in := RMS(bp.Apply(makeTone(30000, rate, n))[n/4 : 3*n/4])
	below := RMS(bp.Apply(makeTone(10000, rate, n))[n/4 : 3*n/4])
	above := RMS(bp.Apply(makeTone(60000, rate, n))[n/4 : 3*n/4])
	want := 1 / math.Sqrt2
	if math.Abs(in-want)/want > 0.03 {
		t.Errorf("in-band RMS %v want %v", in, want)
	}
	if below > 0.01 || above > 0.01 {
		t.Errorf("out-of-band leakage: below=%v above=%v", below, above)
	}
}

func TestBandStopFIR(t *testing.T) {
	const rate = 48000.0
	bs := BandStopFIR(511, 5000/rate, 7000/rate)
	n := 16384
	stopped := RMS(bs.Apply(makeTone(6000, rate, n))[n/4 : 3*n/4])
	passed := RMS(bs.Apply(makeTone(1000, rate, n))[n/4 : 3*n/4])
	if stopped > 0.02 {
		t.Errorf("band-stop leaked: %v", stopped)
	}
	want := 1 / math.Sqrt2
	if math.Abs(passed-want)/want > 0.03 {
		t.Errorf("band-stop attenuated passband: %v", passed)
	}
}

func TestFIRDelayCompensation(t *testing.T) {
	// Apply must align output with input: a delta through a LPF peaks at
	// the same index it entered.
	lp := LowPassFIR(101, 0.2)
	x := make([]float64, 400)
	x[200] = 1
	y := lp.Apply(x)
	argmax := 0
	for i, v := range y {
		if v > y[argmax] {
			argmax = i
		}
	}
	if argmax != 200 {
		t.Fatalf("impulse response peak at %d, want 200", argmax)
	}
}

func TestFIRLinearityProperty(t *testing.T) {
	lp := LowPassFIR(63, 0.1)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 256
		x := make([]float64, n)
		y := make([]float64, n)
		sum := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
			sum[i] = x[i] + y[i]
		}
		fx := lp.Apply(x)
		fy := lp.Apply(y)
		fsum := lp.Apply(sum)
		for i := range fsum {
			if math.Abs(fsum[i]-(fx[i]+fy[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestConvolveMatchesDirect(t *testing.T) {
	// FFT convolution path must equal the direct path.
	rng := rand.New(rand.NewSource(7))
	a := make([]float64, 3000)
	b := make([]float64, 400)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want := convolveDirect(a, b)
	got := convolveFFT(a, b, len(a)+len(b)-1, NextPowerOfTwo(len(a)+len(b)-1))
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-6 {
			t.Fatalf("sample %d: direct %v fft %v", i, want[i], got[i])
		}
	}
}

func TestConvolveIdentity(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := Convolve(x, []float64{1})
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("identity convolution failed at %d", i)
		}
	}
}

func TestFIRGainDB(t *testing.T) {
	lp := LowPassFIR(255, 0.1)
	if g := lp.GainDB(0.01); math.Abs(g) > 0.1 {
		t.Errorf("DC-ish gain %v dB, want ~0", g)
	}
	if g := lp.GainDB(0.3); g > -60 {
		t.Errorf("stopband gain %v dB, want < -60", g)
	}
}

func TestFIRDesignPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { LowPassFIR(2, 0.1) },
		func() { LowPassFIR(11, 0.6) },
		func() { BandPassFIR(11, 0.3, 0.2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
