package dsp

import (
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
)

// This file holds the FFT plan cache. Computing a transform of length n
// needs a bit-reversal permutation, per-stage twiddle factors and (for
// non-power-of-two lengths) Bluestein chirp sequences; all of them depend
// only on n. The experiment pipeline transforms the same handful of
// lengths millions of times (Welch frames, FIR convolutions, the device
// body filter), so the tables are computed once per length and cached.
//
// Plans are immutable after construction and the cache is guarded by a
// sync.RWMutex, so FFT/IFFT/RFFT are safe for concurrent use — the
// parallel trial runner in internal/experiment relies on this. The cache
// never evicts: the set of distinct lengths in a run is small (a dozen or
// so) and bounded by the simulation geometry, not by trial count.
//
// The tables replicate the exact floating-point evaluation order of the
// former per-call computation (accumulated twiddle products, the same
// chirp phase reduction), so cached and uncached transforms are
// bit-identical. fft_test.go and plan_test.go rely on this.

// fftPlan holds the precomputed tables for one transform length.
type fftPlan struct {
	n int

	// swaps lists the bit-reversal permutation as flat (i, j) pairs with
	// i < j, so applying it is a linear walk with no index recomputation.
	swaps []int32

	// twF and twI are the forward and inverse twiddle factors for every
	// radix-2 stage, concatenated: the entries for stage size s live at
	// offset s/2-1 (there are s/2 of them). For Bluestein lengths these
	// tables describe the padded length m instead of n.
	twF, twI []complex128

	// Bluestein tables (nil for power-of-two n). pad is the plan for the
	// padded power-of-two length m >= 2n-1.
	pad            *fftPlan
	m              int
	chirpF, chirpI []complex128 // exp(∓iπk²/n), k = 0..n-1
	bspecF, bspecI []complex128 // forward FFT of the chirp filter, per direction
}

var (
	planMu    sync.RWMutex
	planCache = make(map[int]*fftPlan)
)

// planFor returns the cached plan for length n, building it on first use.
func planFor(n int) *fftPlan {
	planMu.RLock()
	p := planCache[n]
	planMu.RUnlock()
	if p != nil {
		return p
	}
	p = newPlan(n)
	planMu.Lock()
	if q := planCache[n]; q != nil {
		p = q // lost a construction race; keep the winner
	} else {
		planCache[n] = p
	}
	planMu.Unlock()
	return p
}

func newPlan(n int) *fftPlan {
	p := &fftPlan{n: n}
	if IsPowerOfTwo(n) {
		p.fillRadix2(n)
		return p
	}
	p.fillBluestein(n)
	return p
}

// fillRadix2 precomputes the permutation and twiddle tables for a
// power-of-two length.
func (p *fftPlan) fillRadix2(n int) {
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			p.swaps = append(p.swaps, int32(i), int32(j))
		}
	}
	p.twF = make([]complex128, n-1)
	p.twI = make([]complex128, n-1)
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := -1.0 * 2 * math.Pi / float64(size)
		wStep := cmplx.Exp(complex(0, step))
		w := complex(1, 0)
		for k := 0; k < half; k++ {
			p.twF[half-1+k] = w
			// The inverse table is the exact conjugate: complex multiply
			// and cmplx.Exp are both sign-symmetric, so conjugating the
			// accumulated product matches accumulating the conjugate.
			p.twI[half-1+k] = cmplx.Conj(w)
			w *= wStep
		}
	}
}

// fillBluestein precomputes both chirp directions and the transformed
// chirp filters for an arbitrary length.
func (p *fftPlan) fillBluestein(n int) {
	m := NextPowerOfTwo(2*n - 1)
	p.m = m
	p.pad = planFor(m)
	p.chirpF = make([]complex128, n)
	p.chirpI = make([]complex128, n)
	for k := 0; k < n; k++ {
		// k*k may overflow for large n; reduce modulo 2n first.
		kk := int64(k) * int64(k) % int64(2*n)
		phase := -1.0 * math.Pi * float64(kk) / float64(n)
		p.chirpF[k] = cmplx.Exp(complex(0, phase))
		p.chirpI[k] = cmplx.Conj(p.chirpF[k])
	}
	filter := func(chirp []complex128) []complex128 {
		b := make([]complex128, m)
		b[0] = cmplx.Conj(chirp[0])
		for k := 1; k < n; k++ {
			c := cmplx.Conj(chirp[k])
			b[k] = c
			b[m-k] = c
		}
		p.pad.radix2(b, false)
		return b
	}
	p.bspecF = filter(p.chirpF)
	p.bspecI = filter(p.chirpI)
}

// radix2 performs the unnormalised in-place radix-2 DIT FFT using the
// plan's tables. inverse selects the conjugate twiddle direction (no 1/N
// scaling here).
func (p *fftPlan) radix2(x []complex128, inverse bool) {
	n := p.n // always a power of two: Bluestein plans delegate to p.pad
	for s := 0; s < len(p.swaps); s += 2 {
		i, j := p.swaps[s], p.swaps[s+1]
		x[i], x[j] = x[j], x[i]
	}
	tw := p.twF
	if inverse {
		tw = p.twI
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stage := tw[half-1 : half-1+half]
		for start := 0; start < n; start += size {
			lo := x[start : start+half : start+half]
			hi := x[start+half : start+size : start+size]
			for k := 0; k < half; k++ {
				a := lo[k]
				b := hi[k] * stage[k]
				lo[k] = a + b
				hi[k] = a - b
			}
		}
	}
}

// bluestein computes an unnormalised DFT of arbitrary length via the
// cached chirp-z tables.
func (p *fftPlan) bluestein(x []complex128, inverse bool) {
	n, m := p.n, p.m
	chirp, bspec := p.chirpF, p.bspecF
	if inverse {
		chirp, bspec = p.chirpI, p.bspecI
	}
	a := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
	}
	p.pad.radix2(a, false)
	for i := range a {
		a[i] *= bspec[i]
	}
	p.pad.radix2(a, true)
	invM := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		x[k] = a[k] * invM * chirp[k]
	}
}

// transform dispatches to the cached kernel for len(x).
func (p *fftPlan) transform(x []complex128, inverse bool) {
	if p.pad == nil {
		p.radix2(x, inverse)
	} else {
		p.bluestein(x, inverse)
	}
	if inverse {
		inv := 1 / float64(p.n)
		for i := range x {
			x[i] *= complex(inv, 0)
		}
	}
}

// ---- real-input transforms ----

// rfftPlan caches the split twiddles exp(-iπk/h) used to unpack a
// half-length complex transform into a real-input spectrum of length
// n = 2h.
type rfftPlan struct {
	n int
	w []complex128 // exp(-2πik/n), k = 0..n/2
}

var (
	rplanMu    sync.RWMutex
	rplanCache = make(map[int]*rfftPlan)
)

func rplanFor(n int) *rfftPlan {
	rplanMu.RLock()
	p := rplanCache[n]
	rplanMu.RUnlock()
	if p != nil {
		return p
	}
	h := n / 2
	p = &rfftPlan{n: n, w: make([]complex128, h+1)}
	for k := 0; k <= h; k++ {
		phase := -2 * math.Pi * float64(k) / float64(n)
		p.w[k] = cmplx.Exp(complex(0, phase))
	}
	rplanMu.Lock()
	if q := rplanCache[n]; q != nil {
		p = q
	} else {
		rplanCache[n] = p
	}
	rplanMu.Unlock()
	return p
}

// RFFT computes the one-sided spectrum (bins 0..n/2, length n/2+1) of a
// real-valued input of even length n using a single half-length complex
// transform — roughly half the work of FFTReal for the common case where
// only non-negative frequencies are needed (Welch, STFT, linear-phase
// filtering). Odd lengths fall back to a full complex transform. The
// input is not modified.
func RFFT(x []float64) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n%2 != 0 || n < 4 {
		full := FFTReal(x)
		return full[: n/2+1 : n/2+1]
	}
	return RFFTInto(make([]complex128, n/2+1), x, make([]complex128, n/2))
}

// RFFTInto is RFFT into caller-owned buffers, for streaming hot loops that
// must not allocate per frame: dst receives the n/2+1 one-sided bins and
// scratch (length n/2) holds the half-length complex workspace. len(x)
// must be even and >= 4; for power-of-two lengths no allocation occurs.
// The output is bit-identical to RFFT. x is not modified.
func RFFTInto(dst []complex128, x []float64, scratch []complex128) []complex128 {
	n := len(x)
	h := n / 2
	if n%2 != 0 || n < 4 {
		panic("dsp: RFFTInto requires even input length >= 4")
	}
	if len(dst) != h+1 || len(scratch) != h {
		panic("dsp: RFFTInto needs len(dst) == n/2+1 and len(scratch) == n/2")
	}
	z := scratch
	for j := 0; j < h; j++ {
		z[j] = complex(x[2*j], x[2*j+1])
	}
	FFT(z)
	rp := rplanFor(n)
	// X[k] = (Z[k]+conj(Z[h-k]))/2 - i*w[k]*(Z[k]-conj(Z[h-k]))/2
	for k := 0; k <= h; k++ {
		zk := z[k%h]
		zc := cmplx.Conj(z[(h-k)%h])
		even := (zk + zc) * 0.5
		odd := (zk - zc) * 0.5
		dst[k] = even + complex(0, -1)*rp.w[k]*odd
	}
	return dst
}

// IRFFT inverts a one-sided spectrum produced by RFFT (or the first
// n/2+1 bins of a full transform of a real signal) back to n real
// samples. n must satisfy len(spec) == n/2+1 with even n, except for the
// odd-length fallback where a conjugate-symmetric full spectrum is
// rebuilt. The input is not modified.
func IRFFT(spec []complex128, n int) []float64 {
	if n == 0 {
		return nil
	}
	if n%2 != 0 || n < 4 {
		full := make([]complex128, n)
		copy(full, spec)
		for k := n/2 + 1; k < n; k++ {
			full[k] = cmplx.Conj(spec[n-k])
		}
		return IFFTReal(full)
	}
	return IRFFTInto(make([]float64, n), spec, make([]complex128, n/2))
}

// IRFFTInto is IRFFT into caller-owned buffers: dst (length n, even,
// >= 4) receives the real samples and scratch (length n/2) holds the
// half-length complex workspace. spec must not alias scratch. For
// power-of-two n no allocation occurs. The output is bit-identical to
// IRFFT. spec is not modified.
func IRFFTInto(dst []float64, spec []complex128, scratch []complex128) []float64 {
	n := len(dst)
	h := n / 2
	if n%2 != 0 || n < 4 {
		panic("dsp: IRFFTInto requires even output length >= 4")
	}
	if len(spec) != h+1 {
		panic("dsp: IRFFT spectrum length must be n/2+1")
	}
	if len(scratch) != h {
		panic("dsp: IRFFTInto needs len(scratch) == n/2")
	}
	rp := rplanFor(n)
	z := scratch
	// Z[k] = even[k] + i*conj(w[k])*odd[k], the exact inverse of the RFFT
	// unpacking (note conj(w) because we fold back onto k = 0..h-1).
	for k := 0; k < h; k++ {
		xk := spec[k]
		xc := cmplx.Conj(spec[h-k])
		even := (xk + xc) * 0.5
		odd := (xk - xc) * 0.5
		z[k] = even + complex(0, 1)*cmplx.Conj(rp.w[k])*odd
	}
	IFFT(z)
	for j := 0; j < h; j++ {
		dst[2*j] = real(z[j])
		dst[2*j+1] = imag(z[j])
	}
	return dst
}
