package dsp

import (
	"fmt"
	"math"
)

// FIR is a finite impulse response filter described by its tap coefficients.
// The zero value is unusable; construct with one of the design functions or
// provide taps directly.
type FIR struct {
	Taps []float64
}

// sinc evaluates the normalised sinc function sin(pi x)/(pi x).
func sinc(x float64) float64 {
	if x == 0 {
		return 1
	}
	px := math.Pi * x
	return math.Sin(px) / px
}

// validateFIR panics unless the design parameters are sane.
func validateFIR(taps int, cutoffs ...float64) {
	if taps < 3 {
		panic(fmt.Sprintf("dsp: FIR needs >= 3 taps, got %d", taps))
	}
	for _, c := range cutoffs {
		if c <= 0 || c >= 0.5 {
			panic(fmt.Sprintf("dsp: normalised cutoff %v outside (0, 0.5)", c))
		}
	}
}

// LowPassFIR designs a linear-phase low-pass filter using the windowed-sinc
// method with a Blackman window. cutoff is the normalised cutoff frequency
// (cycles per sample, i.e. fHz/rate) and must lie in (0, 0.5). taps is
// forced odd so the filter has an integral group delay of (taps-1)/2.
func LowPassFIR(taps int, cutoff float64) *FIR {
	validateFIR(taps, cutoff)
	if taps%2 == 0 {
		taps++
	}
	h := make([]float64, taps)
	w := Blackman(taps)
	mid := float64(taps-1) / 2
	var sum float64
	for i := range h {
		h[i] = 2 * cutoff * sinc(2*cutoff*(float64(i)-mid)) * w[i]
		sum += h[i]
	}
	// Normalise to unity DC gain.
	for i := range h {
		h[i] /= sum
	}
	return &FIR{Taps: h}
}

// HighPassFIR designs a linear-phase high-pass filter by spectral inversion
// of a low-pass design. cutoff is normalised to (0, 0.5); taps is forced odd.
func HighPassFIR(taps int, cutoff float64) *FIR {
	lp := LowPassFIR(taps, cutoff)
	h := lp.Taps
	for i := range h {
		h[i] = -h[i]
	}
	h[(len(h)-1)/2] += 1
	return &FIR{Taps: h}
}

// BandPassFIR designs a linear-phase band-pass filter passing normalised
// frequencies in (low, high), 0 < low < high < 0.5. taps is forced odd.
func BandPassFIR(taps int, low, high float64) *FIR {
	validateFIR(taps, low, high)
	if low >= high {
		panic(fmt.Sprintf("dsp: BandPassFIR low %v >= high %v", low, high))
	}
	if taps%2 == 0 {
		taps++
	}
	h := make([]float64, taps)
	w := Blackman(taps)
	mid := float64(taps-1) / 2
	for i := range h {
		t := float64(i) - mid
		h[i] = (2*high*sinc(2*high*t) - 2*low*sinc(2*low*t)) * w[i]
	}
	// Normalise to unity gain at the band centre.
	fc := (low + high) / 2
	var re, im float64
	for i, v := range h {
		phase := 2 * math.Pi * fc * float64(i)
		re += v * math.Cos(phase)
		im -= v * math.Sin(phase)
	}
	g := math.Hypot(re, im)
	if g > 0 {
		for i := range h {
			h[i] /= g
		}
	}
	return &FIR{Taps: h}
}

// BandStopFIR designs a linear-phase band-stop filter rejecting normalised
// frequencies in (low, high). taps is forced odd.
func BandStopFIR(taps int, low, high float64) *FIR {
	bp := BandPassFIR(taps, low, high)
	h := bp.Taps
	for i := range h {
		h[i] = -h[i]
	}
	h[(len(h)-1)/2] += 1
	return &FIR{Taps: h}
}

// FIRFromMagnitude designs a linear-phase FIR approximating an arbitrary
// magnitude response by frequency sampling: mag maps normalised frequency
// (cycles/sample, in [0, 0.5]) to the desired linear amplitude gain. The
// desired zero-phase response is sampled on a dense grid (8x the filter
// length), inverse-transformed, rotated to causal linear phase and
// Blackman-windowed. Smooth responses — transducer passbands, atmospheric
// absorption, device-body attenuation — are reproduced to well under 1%
// in-band; stopband depth is limited by the window to roughly -70 dB,
// which is the documented tolerance of the streaming simulation chain
// against the exact whole-buffer frequency-domain filters.
func FIRFromMagnitude(taps int, mag func(f float64) float64) *FIR {
	if taps < 3 {
		panic(fmt.Sprintf("dsp: FIRFromMagnitude needs >= 3 taps, got %d", taps))
	}
	if taps%2 == 0 {
		taps++
	}
	grid := NextPowerOfTwo(8 * taps)
	spec := make([]complex128, grid/2+1)
	for k := range spec {
		spec[k] = complex(mag(float64(k)/float64(grid)), 0)
	}
	h := IRFFT(spec, grid)
	// h is the zero-phase (circularly even) impulse response; rotate its
	// centre to tap (taps-1)/2 for a causal linear-phase filter.
	out := make([]float64, taps)
	w := Blackman(taps)
	mid := (taps - 1) / 2
	for i := range out {
		out[i] = h[((i-mid)%grid+grid)%grid] * w[i]
	}
	return &FIR{Taps: out}
}

// FractionalDelayFIR designs a windowed-sinc interpolator whose total
// delay is Delay() + frac samples, frac in [0, 1). Chained after an
// integer delay line it realises the exact propagation delay r/c that the
// batch path applies as linear phase — accurate for content up to roughly
// 80% of Nyquist at 63 taps. The response is normalised to unity DC gain.
func FractionalDelayFIR(taps int, frac float64) *FIR {
	if taps < 3 {
		panic(fmt.Sprintf("dsp: FractionalDelayFIR needs >= 3 taps, got %d", taps))
	}
	if frac < 0 || frac >= 1 {
		panic(fmt.Sprintf("dsp: fractional delay %v outside [0,1)", frac))
	}
	if taps%2 == 0 {
		taps++
	}
	h := make([]float64, taps)
	w := Blackman(taps)
	mid := float64(taps-1) / 2
	var sum float64
	for i := range h {
		h[i] = sinc(float64(i)-mid-frac) * w[i]
		sum += h[i]
	}
	for i := range h {
		h[i] /= sum
	}
	return &FIR{Taps: h}
}

// Delay returns the group delay of the (linear-phase) filter in samples.
func (f *FIR) Delay() int { return (len(f.Taps) - 1) / 2 }

// Apply convolves x with the filter and returns the "same"-length result:
// the output has len(x) samples and is delay-compensated so that output[i]
// aligns with input[i]. FFT convolution is used automatically when it is
// cheaper than the direct form.
func (f *FIR) Apply(x []float64) []float64 {
	full := convolve(x, f.Taps)
	d := f.Delay()
	out := make([]float64, len(x))
	copy(out, full[d:d+len(x)])
	return out
}

// ApplyFull convolves x with the filter and returns the full convolution of
// length len(x)+len(taps)-1, without delay compensation.
func (f *FIR) ApplyFull(x []float64) []float64 {
	return convolve(x, f.Taps)
}

// convolve returns the full linear convolution of a and b, choosing between
// the direct form and FFT overlap for efficiency.
func convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	// Direct cost ~ len(a)*len(b); FFT cost ~ n log n with n = next pow2 of
	// the output length. Use FFT when the direct cost is clearly larger.
	outLen := len(a) + len(b) - 1
	direct := float64(len(a)) * float64(b2small(len(b)))
	n := NextPowerOfTwo(outLen)
	fftCost := 3 * float64(n) * math.Log2(float64(n))
	if direct <= fftCost {
		return convolveDirect(a, b)
	}
	return convolveFFT(a, b, outLen, n)
}

func b2small(n int) int { return n }

func convolveDirect(a, b []float64) []float64 {
	out := make([]float64, len(a)+len(b)-1)
	for i, av := range a {
		if av == 0 {
			continue
		}
		for j, bv := range b {
			out[i+j] += av * bv
		}
	}
	return out
}

func convolveFFT(a, b []float64, outLen, n int) []float64 {
	// Both operands are real, so the transforms run at half length
	// through RFFT and multiply one-sided spectra; the plan cache (see
	// plan.go) amortises the twiddle tables across repeated sizes.
	pa := make([]float64, n)
	pb := make([]float64, n)
	copy(pa, a)
	copy(pb, b)
	fa := RFFT(pa)
	fb := RFFT(pb)
	for i := range fa {
		fa[i] *= fb[i]
	}
	return IRFFT(fa, n)[:outLen]
}

// Convolve exposes full linear convolution for callers outside the filter
// abstraction (e.g. room impulse responses).
func Convolve(a, b []float64) []float64 { return convolve(a, b) }

// FrequencyResponse evaluates the filter's complex frequency response at
// normalised frequency f (cycles/sample).
func (f *FIR) FrequencyResponse(freq float64) complex128 {
	var re, im float64
	for i, v := range f.Taps {
		phase := 2 * math.Pi * freq * float64(i)
		re += v * math.Cos(phase)
		im -= v * math.Sin(phase)
	}
	return complex(re, im)
}

// GainDB returns the filter's magnitude response in decibels at normalised
// frequency f.
func (f *FIR) GainDB(freq float64) float64 {
	re := f.FrequencyResponse(freq)
	mag := math.Hypot(real(re), imag(re))
	if mag <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(mag)
}
