package dsp

import (
	"fmt"
	"math"
)

// Spectrogram holds the magnitude-squared short-time Fourier transform of a
// signal: Power[frame][bin] with bin spacing Rate/FFTSize Hz and frame
// spacing Hop/Rate seconds.
type Spectrogram struct {
	Power   [][]float64 // per-frame one-sided power spectra (len FFTSize/2+1)
	Rate    float64     // sample rate of the analysed signal, Hz
	FFTSize int         // transform length
	Hop     int         // frame advance, samples
}

// STFT computes a one-sided magnitude-squared spectrogram with a Hann
// window. fftSize must be a power of two; hop must be positive.
func STFT(x []float64, rate float64, fftSize, hop int) *Spectrogram {
	if !IsPowerOfTwo(fftSize) {
		panic(fmt.Sprintf("dsp: STFT fftSize %d not a power of two", fftSize))
	}
	if hop <= 0 {
		panic("dsp: STFT hop must be positive")
	}
	win := Hann(fftSize)
	gain := WindowPowerGain(win) * float64(fftSize) * float64(fftSize)
	nFrames := 0
	if len(x) >= fftSize {
		nFrames = 1 + (len(x)-fftSize)/hop
	}
	sg := &Spectrogram{
		Power:   make([][]float64, nFrames),
		Rate:    rate,
		FFTSize: fftSize,
		Hop:     hop,
	}
	frame := make([]float64, fftSize)
	for f := 0; f < nFrames; f++ {
		off := f * hop
		for i := 0; i < fftSize; i++ {
			frame[i] = x[off+i] * win[i]
		}
		spec := RFFT(frame)
		row := make([]float64, fftSize/2+1)
		for k := range row {
			re, im := real(spec[k]), imag(spec[k])
			p := (re*re + im*im) / gain
			if k != 0 && k != fftSize/2 {
				p *= 2 // one-sided spectrum: fold negative frequencies in
			}
			row[k] = p
		}
		sg.Power[f] = row
	}
	return sg
}

// Frames returns the number of analysis frames.
func (s *Spectrogram) Frames() int { return len(s.Power) }

// BinHz returns the frequency of bin k in Hz.
func (s *Spectrogram) BinHz(k int) float64 {
	return float64(k) * s.Rate / float64(s.FFTSize)
}

// FrameTime returns the start time of frame f in seconds.
func (s *Spectrogram) FrameTime(f int) float64 {
	return float64(f*s.Hop) / s.Rate
}

// BandEnergy sums the power between lo and hi Hz (inclusive of the bins
// whose centres fall in the range) across all frames.
func (s *Spectrogram) BandEnergy(lo, hi float64) float64 {
	var total float64
	k0 := FrequencyBin(lo, s.FFTSize, s.Rate)
	k1 := FrequencyBin(hi, s.FFTSize, s.Rate)
	for _, row := range s.Power {
		for k := k0; k <= k1 && k < len(row); k++ {
			total += row[k]
		}
	}
	return total
}

// MaxPowerDB returns the maximum bin power across the spectrogram in dB
// (relative to unit power), or -Inf for an empty spectrogram.
func (s *Spectrogram) MaxPowerDB() float64 {
	max := math.Inf(-1)
	for _, row := range s.Power {
		for _, p := range row {
			if p > max {
				max = p
			}
		}
	}
	if max <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(max)
}

// Welch estimates the one-sided power spectral density of x by averaging
// modified periodograms (Hann window, 50% overlap). The returned slice has
// fftSize/2+1 bins; psd[k] is power per bin (not per Hz).
func Welch(x []float64, fftSize int) []float64 {
	if !IsPowerOfTwo(fftSize) {
		panic(fmt.Sprintf("dsp: Welch fftSize %d not a power of two", fftSize))
	}
	hop := fftSize / 2
	win := Hann(fftSize)
	gain := WindowPowerGain(win) * float64(fftSize) * float64(fftSize)
	psd := make([]float64, fftSize/2+1)
	frames := 0
	frame := make([]float64, fftSize)
	accumulate := func() {
		spec := RFFT(frame)
		for k := range psd {
			re, im := real(spec[k]), imag(spec[k])
			p := (re*re + im*im) / gain
			if k != 0 && k != fftSize/2 {
				p *= 2
			}
			psd[k] += p
		}
	}
	for off := 0; off+fftSize <= len(x); off += hop {
		for i := 0; i < fftSize; i++ {
			frame[i] = x[off+i] * win[i]
		}
		accumulate()
		frames++
	}
	if frames == 0 {
		// Signal shorter than one frame: zero-pad a single frame.
		n := len(x)
		for i := 0; i < fftSize; i++ {
			v := 0.0
			if i < n {
				v = x[i] * win[i]
			}
			frame[i] = v
		}
		accumulate()
		return psd
	}
	for k := range psd {
		psd[k] /= float64(frames)
	}
	return psd
}

// BandPower integrates a Welch PSD between lo and hi Hz given the analysis
// parameters used to produce it.
func BandPower(psd []float64, rate float64, fftSize int, lo, hi float64) float64 {
	k0 := FrequencyBin(lo, fftSize, rate)
	k1 := FrequencyBin(hi, fftSize, rate)
	var total float64
	for k := k0; k <= k1 && k < len(psd); k++ {
		total += psd[k]
	}
	return total
}
