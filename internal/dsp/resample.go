package dsp

import (
	"fmt"
	"math"
)

// Resample converts x from sample rate from to sample rate to using
// band-limited (windowed-sinc) interpolation. For integer upsampling
// factors a polyphase fast path is used. The result length is
// round(len(x) * to/from).
//
// Resampling is central to the attack pipeline: voice commands recorded at
// 48 kHz must be raised to 192 kHz before amplitude modulation can place
// their spectrum above 20 kHz (paper §3.2 "Upsampling").
func Resample(x []float64, from, to float64) []float64 {
	if from <= 0 || to <= 0 {
		panic(fmt.Sprintf("dsp: Resample rates must be positive (from=%v to=%v)", from, to))
	}
	if len(x) == 0 || from == to {
		out := make([]float64, len(x))
		copy(out, x)
		return out
	}
	ratio := to / from
	if f := math.Round(ratio); f >= 2 && math.Abs(ratio-f) < 1e-12 {
		return upsampleInt(x, int(f))
	}
	return resampleSinc(x, ratio, math.Min(1, ratio))
}

// upsampleInt raises the sample rate by an integer factor using zero
// stuffing followed by an interpolation low-pass filter, implemented in
// polyphase form so no multiplications are wasted on the stuffed zeros.
func upsampleInt(x []float64, factor int) []float64 {
	const tapsPerPhase = 24
	taps := tapsPerPhase*factor + 1
	// Cutoff at the original Nyquist, expressed in the *output* rate.
	lp := LowPassFIR(taps, 0.5/float64(factor)/1.03)
	h := lp.Taps
	// Polyphase decomposition: phase p holds h[p], h[p+factor], ...
	phases := make([][]float64, factor)
	for p := 0; p < factor; p++ {
		for i := p; i < len(h); i += factor {
			phases[p] = append(phases[p], h[i]*float64(factor))
		}
	}
	delay := (len(h) - 1) / 2
	out := make([]float64, len(x)*factor)
	for n := range out {
		// Output sample n corresponds to stuffed-stream index n; after
		// delay compensation the filter is centred at n+delay.
		m := n + delay
		p := m % factor
		base := m / factor
		var acc float64
		ph := phases[p]
		for k, c := range ph {
			idx := base - k
			if idx < 0 {
				break
			}
			if idx < len(x) {
				acc += c * x[idx]
			}
		}
		out[n] = acc
	}
	return out
}

// resampleSinc performs arbitrary-ratio band-limited interpolation with a
// Kaiser-windowed sinc kernel. cutoff (<=1) scales the kernel bandwidth
// relative to the smaller Nyquist, to avoid imaging/aliasing when
// downsampling.
func resampleSinc(x []float64, ratio, cutoff float64) []float64 {
	const halfTaps = 32
	const beta = 8.6
	outLen := int(math.Round(float64(len(x)) * ratio))
	out := make([]float64, outLen)
	for n := range out {
		center := float64(n) / ratio
		i0 := int(math.Floor(center)) - halfTaps + 1
		i1 := int(math.Floor(center)) + halfTaps
		var acc, wsum float64
		for i := i0; i <= i1; i++ {
			if i < 0 || i >= len(x) {
				continue
			}
			t := (float64(i) - center) * cutoff
			// Kaiser window evaluated at normalised offset.
			u := (float64(i) - center) / float64(halfTaps)
			if u < -1 || u > 1 {
				continue
			}
			w := besselI0(beta*math.Sqrt(1-u*u)) / besselI0(beta)
			k := cutoff * sinc(t) * w
			acc += k * x[i]
			wsum += k
		}
		_ = wsum
		out[n] = acc
	}
	return out
}

// Decimate reduces the sample rate by an integer factor, low-pass filtering
// first to prevent aliasing.
func Decimate(x []float64, factor int) []float64 {
	if factor < 1 {
		panic(fmt.Sprintf("dsp: Decimate factor must be >= 1, got %d", factor))
	}
	if factor == 1 {
		out := make([]float64, len(x))
		copy(out, x)
		return out
	}
	lp := LowPassFIR(24*factor+1, 0.5/float64(factor)/1.03)
	y := lp.Apply(x)
	out := make([]float64, (len(x)+factor-1)/factor)
	for i := range out {
		out[i] = y[i*factor]
	}
	return out
}
