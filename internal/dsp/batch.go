package dsp

import "math/cmplx"

// RFFTPlan is a pre-resolved handle for repeated real-input transforms
// of one size. RFFTInto/IRFFTInto look the half-length complex plan and
// the split-twiddle table up in RWMutex-guarded maps on every call;
// that is cheap for occasional transforms but measurable when a shard
// worker runs Welch/STFT columns for many co-resident sessions
// back-to-back. A plan handle resolves both lookups once and keeps the
// per-column cost down to the arithmetic itself. The outputs are
// bit-identical to RFFTInto/IRFFTInto.
//
// A plan is immutable after construction and safe for concurrent use;
// the caller-owned dst/scratch buffers are not.
type RFFTPlan struct {
	n    int
	half *fftPlan  // complex plan for the n/2-point transform
	rp   *rfftPlan // split twiddles exp(-2πik/n)
}

// NewRFFTPlan builds a transform handle for real inputs of length n.
// Like RFFTInto, it requires even n >= 4 (odd sizes have no half-length
// decomposition; use RFFT's fallback for those).
func NewRFFTPlan(n int) *RFFTPlan {
	if n%2 != 0 || n < 4 {
		panic("dsp: RFFTPlan requires even length >= 4")
	}
	return &RFFTPlan{n: n, half: planFor(n / 2), rp: rplanFor(n)}
}

// Size returns the real input length the plan was built for.
func (p *RFFTPlan) Size() int { return p.n }

// Transform computes the one-sided spectrum of x into dst, using
// scratch (length n/2) as the half-length complex workspace. Buffer
// contracts match RFFTInto exactly; the output is bit-identical.
func (p *RFFTPlan) Transform(dst []complex128, x []float64, scratch []complex128) []complex128 {
	h := p.n / 2
	if len(x) != p.n {
		panic("dsp: RFFTPlan.Transform input length mismatch")
	}
	if len(dst) != h+1 || len(scratch) != h {
		panic("dsp: RFFTPlan.Transform needs len(dst) == n/2+1 and len(scratch) == n/2")
	}
	z := scratch
	for j := 0; j < h; j++ {
		z[j] = complex(x[2*j], x[2*j+1])
	}
	p.half.transform(z, false)
	// X[k] = (Z[k]+conj(Z[h-k]))/2 - i*w[k]*(Z[k]-conj(Z[h-k]))/2
	for k := 0; k <= h; k++ {
		zk := z[k%h]
		zc := cmplx.Conj(z[(h-k)%h])
		even := (zk + zc) * 0.5
		odd := (zk - zc) * 0.5
		dst[k] = even + complex(0, -1)*p.rp.w[k]*odd
	}
	return dst
}

// Inverse reconstructs n real samples from a one-sided spectrum into
// dst, using scratch (length n/2) as workspace. Buffer contracts match
// IRFFTInto exactly; the output is bit-identical. spec must not alias
// scratch and is not modified.
func (p *RFFTPlan) Inverse(dst []float64, spec []complex128, scratch []complex128) []float64 {
	h := p.n / 2
	if len(dst) != p.n {
		panic("dsp: RFFTPlan.Inverse output length mismatch")
	}
	if len(spec) != h+1 {
		panic("dsp: RFFTPlan.Inverse spectrum length must be n/2+1")
	}
	if len(scratch) != h {
		panic("dsp: RFFTPlan.Inverse needs len(scratch) == n/2")
	}
	z := scratch
	// Z[k] = even[k] + i*conj(w[k])*odd[k], the exact inverse of the RFFT
	// unpacking (note conj(w) because we fold back onto k = 0..h-1).
	for k := 0; k < h; k++ {
		xk := spec[k]
		xc := cmplx.Conj(spec[h-k])
		even := (xk + xc) * 0.5
		odd := (xk - xc) * 0.5
		z[k] = even + complex(0, 1)*cmplx.Conj(p.rp.w[k])*odd
	}
	p.half.transform(z, true)
	for j := 0; j < h; j++ {
		dst[2*j] = real(z[j])
		dst[2*j+1] = imag(z[j])
	}
	return dst
}
