package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

// toneFreqEstimate finds the dominant frequency of x via the FFT peak.
func toneFreqEstimate(x []float64, rate float64) float64 {
	n := NextPowerOfTwo(len(x))
	buf := make([]complex128, n)
	w := Hann(len(x))
	for i, v := range x {
		buf[i] = complex(v*w[i], 0)
	}
	FFT(buf)
	best, bestK := 0.0, 0
	for k := 1; k < n/2; k++ {
		p := real(buf[k])*real(buf[k]) + imag(buf[k])*imag(buf[k])
		if p > best {
			best = p
			bestK = k
		}
	}
	return BinFrequency(bestK, n, rate)
}

func TestUpsamplePreservesToneFrequency(t *testing.T) {
	const from, to = 48000.0, 192000.0
	tone := makeTone(5000, from, 4800)
	up := Resample(tone, from, to)
	if len(up) != 4*len(tone) {
		t.Fatalf("length %d, want %d", len(up), 4*len(tone))
	}
	got := toneFreqEstimate(up, to)
	if math.Abs(got-5000) > 30 {
		t.Fatalf("upsampled tone at %v Hz, want 5000", got)
	}
}

func TestUpsampleAmplitudePreserved(t *testing.T) {
	const from, to = 48000.0, 192000.0
	tone := makeTone(3000, from, 9600)
	up := Resample(tone, from, to)
	mid := up[len(up)/4 : 3*len(up)/4]
	want := 1 / math.Sqrt2
	if got := RMS(mid); math.Abs(got-want)/want > 0.03 {
		t.Fatalf("upsampled RMS %v, want %v", got, want)
	}
}

func TestUpsampleRejectsImages(t *testing.T) {
	// Zero-stuffing a 5 kHz tone by 4 creates images at 43, 53, 91 kHz;
	// the interpolation filter must crush them.
	const from, to = 48000.0, 192000.0
	tone := makeTone(5000, from, 9600)
	up := Resample(tone, from, to)
	mid := up[len(up)/4 : 3*len(up)/4]
	img := ToneAmplitude(mid, 43000, to)
	if img > 0.01 {
		t.Fatalf("image at 43 kHz has amplitude %v, want < 0.01", img)
	}
}

func TestDownsamplePreservesToneFrequency(t *testing.T) {
	const from, to = 192000.0, 48000.0
	tone := makeTone(5000, from, 19200)
	down := Resample(tone, from, to)
	got := toneFreqEstimate(down, to)
	if math.Abs(got-5000) > 30 {
		t.Fatalf("downsampled tone at %v Hz, want 5000", got)
	}
}

func TestDownsampleAliasesRemoved(t *testing.T) {
	// A 60 kHz tone sampled at 192 kHz must NOT alias into the 48 kHz
	// output band; the anti-alias kernel must remove it.
	const from, to = 192000.0, 48000.0
	tone := makeTone(60000, from, 19200)
	down := Resample(tone, from, to)
	if got := RMS(down[len(down)/4 : 3*len(down)/4]); got > 0.02 {
		t.Fatalf("aliased energy RMS %v, want < 0.02", got)
	}
}

func TestResampleIdentity(t *testing.T) {
	x := makeTone(100, 48000, 128)
	y := Resample(x, 48000, 48000)
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("identity resample must copy input")
		}
	}
	// And must be a copy, not an alias.
	y[0] = 123
	if x[0] == 123 {
		t.Fatal("identity resample aliases input")
	}
}

func TestResampleArbitraryRatio(t *testing.T) {
	const from, to = 44100.0, 48000.0
	tone := makeTone(1000, from, 8820)
	out := Resample(tone, from, to)
	wantLen := int(math.Round(float64(len(tone)) * to / from))
	if len(out) != wantLen {
		t.Fatalf("length %d want %d", len(out), wantLen)
	}
	got := toneFreqEstimate(out, to)
	if math.Abs(got-1000) > 20 {
		t.Fatalf("tone moved to %v Hz", got)
	}
}

func TestDecimate(t *testing.T) {
	const rate = 192000.0
	tone := makeTone(5000, rate, 19200)
	down := Decimate(tone, 4)
	if len(down) != 4800 {
		t.Fatalf("length %d want 4800", len(down))
	}
	got := toneFreqEstimate(down, rate/4)
	if math.Abs(got-5000) > 40 {
		t.Fatalf("tone at %v Hz after decimation", got)
	}
}

func TestResamplePanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Resample([]float64{1}, 0, 48000)
}

func TestResampleRoundTripProperty(t *testing.T) {
	// Up by 4 then down by 4 must approximately recover a band-limited
	// signal (mid-section, away from filter edge effects).
	f := func(seed int64) bool {
		freq := 200 + float64(seed%40)*100 // 200..4100 Hz, inside both bands
		if freq < 0 {
			freq = -freq
		}
		const rate = 48000.0
		x := makeTone(freq, rate, 4800)
		y := Resample(Resample(x, rate, 4*rate), 4*rate, rate)
		if len(y) != len(x) {
			return false
		}
		for i := len(x) / 4; i < 3*len(x)/4; i++ {
			if math.Abs(y[i]-x[i]) > 0.02 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
