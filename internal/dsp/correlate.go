package dsp

import "math"

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the population variance of x.
func Variance(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}

// StdDev returns the population standard deviation of x.
func StdDev(x []float64) float64 { return math.Sqrt(Variance(x)) }

// PearsonCorrelation returns the Pearson correlation coefficient of x and y
// over their common length. It returns 0 when either input has zero
// variance (a degenerate but well-defined fallback used by the defense
// features on silent recordings).
func PearsonCorrelation(x, y []float64) float64 {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	if n == 0 {
		return 0
	}
	x = x[:n]
	y = y[:n]
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx <= 0 || syy <= 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// MaxCorrelationLag computes the Pearson correlation of x and y over lags
// in [-maxLag, maxLag] (y shifted relative to x) and returns the maximum
// correlation and the lag at which it occurs. It tolerates small
// misalignments between a demodulated trace and the envelope it should
// track (group delay through filters).
func MaxCorrelationLag(x, y []float64, maxLag int) (best float64, bestLag int) {
	best = math.Inf(-1)
	for lag := -maxLag; lag <= maxLag; lag++ {
		var xs, ys []float64
		if lag >= 0 {
			if lag >= len(y) {
				continue
			}
			xs, ys = x, y[lag:]
		} else {
			if -lag >= len(x) {
				continue
			}
			xs, ys = x[-lag:], y
		}
		c := PearsonCorrelation(xs, ys)
		if c > best {
			best = c
			bestLag = lag
		}
	}
	if math.IsInf(best, -1) {
		return 0, 0
	}
	return best, bestLag
}

// CrossCorrelate returns the raw (unnormalised) cross-correlation
// r[k] = sum_i x[i]*y[i+k-maxLag] for k in [0, 2*maxLag].
func CrossCorrelate(x, y []float64, maxLag int) []float64 {
	out := make([]float64, 2*maxLag+1)
	for k := -maxLag; k <= maxLag; k++ {
		var s float64
		for i := range x {
			j := i + k
			if j < 0 || j >= len(y) {
				continue
			}
			s += x[i] * y[j]
		}
		out[k+maxLag] = s
	}
	return out
}
