package dsp

import "math"

// AnalyticSignal returns the complex analytic signal of x computed through
// the frequency domain (Hilbert transform method): negative frequencies are
// zeroed and positive frequencies doubled.
func AnalyticSignal(x []float64) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	spec := FFTReal(x)
	half := n / 2
	for k := 1; k < half; k++ {
		spec[k] *= 2
	}
	// Bin 0 (DC) and, for even n, bin n/2 (Nyquist) stay untouched.
	for k := half + 1; k < n; k++ {
		spec[k] = 0
	}
	if n%2 == 1 {
		// Odd length: bins 1..(n-1)/2 are positive frequencies.
		spec[half] *= 2
	}
	return IFFT(spec)
}

// Envelope returns the amplitude envelope |analytic(x)| of x.
func Envelope(x []float64) []float64 {
	a := AnalyticSignal(x)
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = math.Hypot(real(v), imag(v))
	}
	return out
}

// SmoothedEnvelope returns the envelope low-pass filtered to maxHz, which
// tracks syllabic amplitude variation while rejecting pitch-rate ripple.
// rate is the sample rate of x.
func SmoothedEnvelope(x []float64, rate, maxHz float64) []float64 {
	env := Envelope(x)
	cut := maxHz / rate
	if cut >= 0.5 {
		return env
	}
	taps := 255
	if len(env) < 3*taps {
		taps = len(env)/3*2 + 1
		if taps < 5 {
			return env
		}
	}
	lp := LowPassFIR(taps, cut)
	return lp.Apply(env)
}
