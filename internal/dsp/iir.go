package dsp

import "math"

// Biquad is a direct-form-I second-order IIR section:
//
//	y[n] = B0*x[n] + B1*x[n-1] + B2*x[n-2] - A1*y[n-1] - A2*y[n-2]
//
// State is kept in the struct, so a Biquad processes one stream; Reset
// clears it. The zero value is a pass-nothing filter; use a constructor.
type Biquad struct {
	B0, B1, B2 float64
	A1, A2     float64
	x1, x2     float64
	y1, y2     float64
}

// Reset clears the filter state.
func (b *Biquad) Reset() { b.x1, b.x2, b.y1, b.y2 = 0, 0, 0, 0 }

// ProcessSample advances the filter by one input sample.
func (b *Biquad) ProcessSample(x float64) float64 {
	y := b.B0*x + b.B1*b.x1 + b.B2*b.x2 - b.A1*b.y1 - b.A2*b.y2
	b.x2, b.x1 = b.x1, x
	b.y2, b.y1 = b.y1, y
	return y
}

// Process filters x in place and returns it.
func (b *Biquad) Process(x []float64) []float64 {
	for i, v := range x {
		x[i] = b.ProcessSample(v)
	}
	return x
}

// SetKlattResonator configures the biquad as a Klatt-style formant
// resonator with centre frequency f (Hz) and bandwidth bw (Hz) at the
// given sample rate: poles at r*exp(+-j*theta) with unity DC gain. This is
// the classic building block of cascade formant speech synthesis.
func (b *Biquad) SetKlattResonator(f, bw, rate float64) {
	r := math.Exp(-math.Pi * bw / rate)
	theta := 2 * math.Pi * f / rate
	c := -(r * r)
	bb := 2 * r * math.Cos(theta)
	a := 1 - bb - c
	b.B0, b.B1, b.B2 = a, 0, 0
	b.A1, b.A2 = -bb, -c
}

// NewKlattResonator returns a configured Klatt resonator.
func NewKlattResonator(f, bw, rate float64) *Biquad {
	b := &Biquad{}
	b.SetKlattResonator(f, bw, rate)
	return b
}

// NewKlattAntiResonator returns a Klatt anti-resonator (notch), the
// inverse structure used for nasal zeros:
//
//	y[n] = A'*x[n] + B'*x[n-1] + C'*x[n-2]
//
// with coefficients derived from the corresponding resonator.
func NewKlattAntiResonator(f, bw, rate float64) *Biquad {
	r := math.Exp(-math.Pi * bw / rate)
	theta := 2 * math.Pi * f / rate
	c := -(r * r)
	bb := 2 * r * math.Cos(theta)
	a := 1 - bb - c
	// Invert: swap the roles of poles and zeros.
	ap := 1 / a
	return &Biquad{B0: ap, B1: -bb * ap, B2: -c * ap}
}

// OnePole is a single-pole filter y[n] = (1-a)*x[n] + a*y[n-1], a low-pass
// for 0 < a < 1. Used for glottal source spectral tilt.
type OnePole struct {
	A float64
	y float64
}

// NewOnePoleLP returns a one-pole low-pass with the given -3 dB corner.
func NewOnePoleLP(cornerHz, rate float64) *OnePole {
	a := math.Exp(-2 * math.Pi * cornerHz / rate)
	return &OnePole{A: a}
}

// ProcessSample advances the filter by one sample.
func (o *OnePole) ProcessSample(x float64) float64 {
	o.y = (1-o.A)*x + o.A*o.y
	return o.y
}

// Process filters x in place and returns it.
func (o *OnePole) Process(x []float64) []float64 {
	for i, v := range x {
		x[i] = o.ProcessSample(v)
	}
	return x
}

// Reset clears the state.
func (o *OnePole) Reset() { o.y = 0 }

// DCBlock applies a one-pole DC-blocking high-pass filter in place:
// y[n] = x[n] - x[n-1] + a*y[n-1], with a set by the corner frequency.
// Models AC coupling in amplifier chains; also used by the reference
// demodulator to remove the carrier's demodulated pedestal.
func DCBlock(x []float64, cornerHz, rate float64) []float64 {
	a := 1 - 2*math.Pi*cornerHz/rate
	var prevX, prevY float64
	for i, v := range x {
		y := v - prevX + a*prevY
		prevX = v
		prevY = y
		x[i] = y
	}
	return x
}

// Differentiate applies a first-difference (lip-radiation) filter
// y[n] = x[n] - x[n-1] in place and returns x.
func Differentiate(x []float64) []float64 {
	var prev float64
	for i, v := range x {
		x[i] = v - prev
		prev = v
	}
	return x
}
