// Package dsp provides the signal-processing kernels used throughout the
// repository: FFTs, window functions, FIR filter design and application,
// band-limited resampling, short-time analysis, envelope extraction and
// correlation utilities.
//
// All routines operate on float64 samples (or complex128 spectra), are
// allocation-conscious, and have no dependencies outside the standard
// library. They are deterministic: the same input always yields the same
// output, which the experiment harness relies on.
package dsp

import (
	"math"
	"math/bits"
	"math/cmplx"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// NextPowerOfTwo returns the smallest power of two >= n. It panics for n <= 0.
func NextPowerOfTwo(n int) int {
	if n <= 0 {
		panic("dsp: NextPowerOfTwo requires n > 0")
	}
	if IsPowerOfTwo(n) {
		return n
	}
	return 1 << bits.Len(uint(n))
}

// FFT computes the in-place forward discrete Fourier transform of x.
// The length of x may be arbitrary: power-of-two lengths use an iterative
// radix-2 Cooley–Tukey kernel, other lengths fall back to Bluestein's
// chirp-z algorithm. The input slice is modified and returned.
func FFT(x []complex128) []complex128 {
	transform(x, false)
	return x
}

// IFFT computes the in-place inverse DFT of x, including the 1/N
// normalisation, and returns x.
func IFFT(x []complex128) []complex128 {
	transform(x, true)
	return x
}

// transform looks up (or builds) the cached plan for len(x) and runs the
// appropriate kernel. See plan.go for the cache.
func transform(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	planFor(n).transform(x, inverse)
}

// FFTReal computes the DFT of a real-valued signal and returns the full
// complex spectrum of the same length. The input is not modified.
func FFTReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	return FFT(c)
}

// IFFTReal computes the inverse DFT of a spectrum and returns the real part.
// The caller asserts that the spectrum is (approximately) conjugate
// symmetric, i.e. it came from a real signal; the imaginary residue is
// discarded. The input slice is modified.
func IFFTReal(spec []complex128) []float64 {
	IFFT(spec)
	out := make([]float64, len(spec))
	for i, v := range spec {
		out[i] = real(v)
	}
	return out
}

// Magnitudes returns |spec[i]| for each bin.
func Magnitudes(spec []complex128) []float64 {
	out := make([]float64, len(spec))
	for i, v := range spec {
		out[i] = cmplx.Abs(v)
	}
	return out
}

// PowerSpectrum returns |spec[i]|^2 for each bin.
func PowerSpectrum(spec []complex128) []float64 {
	out := make([]float64, len(spec))
	for i, v := range spec {
		re, im := real(v), imag(v)
		out[i] = re*re + im*im
	}
	return out
}

// BinFrequency returns the centre frequency in Hz of FFT bin k for a
// transform of length n at sample rate rate.
func BinFrequency(k, n int, rate float64) float64 {
	return float64(k) * rate / float64(n)
}

// FrequencyBin returns the FFT bin index closest to frequency f (Hz) for a
// transform of length n at sample rate rate. The result is clamped to
// [0, n/2].
func FrequencyBin(f float64, n int, rate float64) int {
	k := int(math.Round(f * float64(n) / rate))
	if k < 0 {
		k = 0
	}
	if k > n/2 {
		k = n / 2
	}
	return k
}
