// Package dsp provides the signal-processing kernels used throughout the
// repository: FFTs, window functions, FIR filter design and application,
// band-limited resampling, short-time analysis, envelope extraction and
// correlation utilities.
//
// All routines operate on float64 samples (or complex128 spectra), are
// allocation-conscious, and have no dependencies outside the standard
// library. They are deterministic: the same input always yields the same
// output, which the experiment harness relies on.
package dsp

import (
	"math"
	"math/bits"
	"math/cmplx"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// NextPowerOfTwo returns the smallest power of two >= n. It panics for n <= 0.
func NextPowerOfTwo(n int) int {
	if n <= 0 {
		panic("dsp: NextPowerOfTwo requires n > 0")
	}
	if IsPowerOfTwo(n) {
		return n
	}
	return 1 << bits.Len(uint(n))
}

// FFT computes the in-place forward discrete Fourier transform of x.
// The length of x may be arbitrary: power-of-two lengths use an iterative
// radix-2 Cooley–Tukey kernel, other lengths fall back to Bluestein's
// chirp-z algorithm. The input slice is modified and returned.
func FFT(x []complex128) []complex128 {
	transform(x, false)
	return x
}

// IFFT computes the in-place inverse DFT of x, including the 1/N
// normalisation, and returns x.
func IFFT(x []complex128) []complex128 {
	transform(x, true)
	return x
}

func transform(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if IsPowerOfTwo(n) {
		radix2(x, inverse)
	} else {
		bluestein(x, inverse)
	}
	if inverse {
		inv := 1 / float64(n)
		for i := range x {
			x[i] *= complex(inv, 0)
		}
	}
}

// radix2 performs an unnormalised in-place radix-2 DIT FFT.
// inverse selects the conjugate twiddle direction (no 1/N scaling here).
func radix2(x []complex128, inverse bool) {
	n := len(x)
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wStep := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// bluestein computes an unnormalised DFT of arbitrary length via the
// chirp-z transform, using radix-2 FFTs of padded length m >= 2n-1.
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	m := NextPowerOfTwo(2*n - 1)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp sequence w[k] = exp(sign * i*pi*k^2/n).
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		// k*k may overflow for large n; reduce modulo 2n first.
		kk := int64(k) * int64(k) % int64(2*n)
		phase := sign * math.Pi * float64(kk) / float64(n)
		chirp[k] = cmplx.Exp(complex(0, phase))
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
	}
	b[0] = cmplx.Conj(chirp[0])
	for k := 1; k < n; k++ {
		c := cmplx.Conj(chirp[k])
		b[k] = c
		b[m-k] = c
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	invM := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		x[k] = a[k] * invM * chirp[k]
	}
}

// FFTReal computes the DFT of a real-valued signal and returns the full
// complex spectrum of the same length. The input is not modified.
func FFTReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	return FFT(c)
}

// IFFTReal computes the inverse DFT of a spectrum and returns the real part.
// The caller asserts that the spectrum is (approximately) conjugate
// symmetric, i.e. it came from a real signal; the imaginary residue is
// discarded. The input slice is modified.
func IFFTReal(spec []complex128) []float64 {
	IFFT(spec)
	out := make([]float64, len(spec))
	for i, v := range spec {
		out[i] = real(v)
	}
	return out
}

// Magnitudes returns |spec[i]| for each bin.
func Magnitudes(spec []complex128) []float64 {
	out := make([]float64, len(spec))
	for i, v := range spec {
		out[i] = cmplx.Abs(v)
	}
	return out
}

// PowerSpectrum returns |spec[i]|^2 for each bin.
func PowerSpectrum(spec []complex128) []float64 {
	out := make([]float64, len(spec))
	for i, v := range spec {
		re, im := real(v), imag(v)
		out[i] = re*re + im*im
	}
	return out
}

// BinFrequency returns the centre frequency in Hz of FFT bin k for a
// transform of length n at sample rate rate.
func BinFrequency(k, n int, rate float64) float64 {
	return float64(k) * rate / float64(n)
}

// FrequencyBin returns the FFT bin index closest to frequency f (Hz) for a
// transform of length n at sample rate rate. The result is clamped to
// [0, n/2].
func FrequencyBin(f float64, n int, rate float64) int {
	k := int(math.Round(f * float64(n) / rate))
	if k < 0 {
		k = 0
	}
	if k > n/2 {
		k = n / 2
	}
	return k
}
