package dsp

import (
	"fmt"
	"math"
)

// This file holds the streaming (online) twins of the batch kernels:
// overlap-save block convolution, incremental Welch/STFT accumulation and
// a rolling Goertzel band tracker. They process audio in fixed-size hops
// with bounded per-session state and, after warm-up, zero allocations per
// hop — the substrate of internal/stream's always-on guard. The FFT work
// goes through pre-resolved RFFTPlan handles (batch.go) over the shared
// plan cache (plan.go), bit-identical to the zero-alloc
// RFFTInto/IRFFTInto entry points, so streaming and batch paths share the
// exact same transform kernels without per-column plan lookups.

// StreamFIR applies an FIR filter to an unbounded sample stream by
// overlap-save block convolution: each power-of-two segment is one RFFT,
// a spectrum product against the cached filter spectrum, and one IRFFT,
// reusing the FFT plan cache across segments and sessions. Outputs are
// delay-compensated exactly like FIR.Apply: after Flush, the total output
// stream equals Apply on the concatenated input up to FFT segmentation
// rounding (~1e-12 for unit-scale signals).
//
// A StreamFIR is single-session state and not safe for concurrent use;
// concurrent sessions each own one (or Reset and reuse via a pool).
type StreamFIR struct {
	taps  int // filter length
	delay int // group delay (taps-1)/2, dropped from the head
	block int // fresh input samples consumed per segment (L)
	n     int // FFT length = block + taps - 1, a power of two

	plan  *RFFTPlan    // pre-resolved transform handle for length n
	hspec []complex128 // RFFT of the zero-padded taps

	seg     []float64    // [overlap (taps-1) | fresh (block)] window, length n
	fill    int          // staged fresh samples
	skip    int          // head samples still to drop (delay compensation)
	spec    []complex128 // segment spectrum scratch, n/2+1
	scratch []complex128 // half-length FFT workspace, n/2
	conv    []float64    // IRFFT output scratch, n
	out     []float64    // returned output staging, reused across calls
	zeros   []float64    // flush padding, length delay
	flushed bool

	// liveNZ tracks whether any sample of the current window (overlap or
	// fresh) is nonzero; an all-zero window short-circuits to the
	// memoized zeroConv instead of two FFTs. Long silent stretches are
	// the common case for duty-cycled sessions.
	liveNZ   bool
	zeroConv []float64 // kernel output of the all-zero window, length n
}

// NewStreamFIR wraps f for streaming application. blockHint is the
// preferred number of fresh samples per FFT segment; <= 0 picks a size
// that amortises the transform well (~7x the filter length). The actual
// block is sized so the segment length is a power of two.
func NewStreamFIR(f *FIR, blockHint int) *StreamFIR {
	taps := len(f.Taps)
	if taps < 1 {
		panic("dsp: NewStreamFIR needs a non-empty filter")
	}
	if blockHint <= 0 {
		blockHint = 8 * taps
	}
	n := NextPowerOfTwo(blockHint + taps - 1)
	if n < 4 {
		n = 4
	}
	s := &StreamFIR{
		taps:    taps,
		delay:   (taps - 1) / 2,
		block:   n - taps + 1,
		n:       n,
		plan:    NewRFFTPlan(n),
		seg:     make([]float64, n),
		spec:    make([]complex128, n/2+1),
		scratch: make([]complex128, n/2),
		conv:    make([]float64, n),
	}
	s.skip = s.delay
	s.zeros = make([]float64, s.delay)
	padded := make([]float64, n)
	copy(padded, f.Taps)
	s.hspec = RFFT(padded)
	// Memoize the kernel's output for an all-zero window (seg is all
	// zero here) so silent segments are a copy, not two FFTs. Built
	// eagerly so the streaming path stays allocation-free.
	s.plan.Transform(s.spec, s.seg, s.scratch)
	for i := range s.spec {
		s.spec[i] *= s.hspec[i]
	}
	s.plan.Inverse(s.conv, s.spec, s.scratch)
	s.zeroConv = append([]float64(nil), s.conv...)
	return s
}

// Delay returns the compensated group delay in samples: output sample i
// (counting across all Push/Flush returns) aligns with input sample i.
func (s *StreamFIR) Delay() int { return s.delay }

// Block returns the number of fresh input samples consumed per FFT
// segment — the worst-case buffering latency of the filter.
func (s *StreamFIR) Block() int { return s.block }

// Push consumes x and returns the filtered samples that became available.
// The returned slice is reused by the next Push/Flush call — consume or
// copy it before pushing again. After warm-up (steady frame sizes) Push
// does not allocate.
func (s *StreamFIR) Push(x []float64) []float64 {
	if s.flushed {
		panic("dsp: StreamFIR.Push after Flush (Reset first)")
	}
	s.out = s.out[:0]
	for len(x) > 0 {
		take := s.block - s.fill
		if take > len(x) {
			take = len(x)
		}
		if !s.liveNZ {
			for i := take - 1; i >= 0; i-- {
				if x[i] != 0 {
					s.liveNZ = true
					break
				}
			}
		}
		copy(s.seg[s.taps-1+s.fill:], x[:take])
		s.fill += take
		x = x[take:]
		if s.fill == s.block {
			s.runSegment(s.block)
		}
	}
	return s.out
}

// Flush drains the filter: it pushes the group delay's worth of zeros and
// the final partial segment, so the total output length equals the total
// input length (exactly Apply's "same" alignment). The returned slice is
// reused like Push's. After Flush only Reset may be called.
func (s *StreamFIR) Flush() []float64 {
	if s.flushed {
		panic("dsp: StreamFIR.Flush called twice")
	}
	s.Push(s.zeros)
	if s.fill > 0 {
		want := s.fill
		for i := s.taps - 1 + s.fill; i < s.n; i++ {
			s.seg[i] = 0
		}
		s.runSegment(want)
	}
	s.flushed = true
	return s.out
}

// Reset returns the filter to its initial state for a new session,
// keeping the cached spectra and scratch buffers.
func (s *StreamFIR) Reset() {
	for i := range s.seg {
		s.seg[i] = 0
	}
	s.fill = 0
	s.skip = s.delay
	s.out = s.out[:0]
	s.flushed = false
	s.liveNZ = false
}

// runSegment convolves the current window and appends the first want
// valid outputs (want == block except for the final partial flush).
func (s *StreamFIR) runSegment(want int) {
	if !s.liveNZ {
		s.runZeroSegment(want)
		return
	}
	s.plan.Transform(s.spec, s.seg, s.scratch)
	for i := range s.spec {
		s.spec[i] *= s.hspec[i]
	}
	s.plan.Inverse(s.conv, s.spec, s.scratch)
	// Positions [taps-1, n) of the circular result are the valid linear
	// convolution outputs; the head absorbed the wraparound.
	v := s.conv[s.taps-1 : s.taps-1+want]
	if s.skip > 0 {
		drop := s.skip
		if drop > len(v) {
			drop = len(v)
		}
		v = v[drop:]
		s.skip -= drop
	}
	s.out = append(s.out, v...)
	// The last taps-1 input samples become the next segment's overlap.
	copy(s.seg[:s.taps-1], s.seg[s.n-s.taps+1:])
	s.fill = 0
	// The carried overlap is the only state the next window inherits;
	// if it is all zero the next silence-only window can fast-path.
	s.liveNZ = false
	for i := s.taps - 2; i >= 0; i-- {
		if s.seg[i] != 0 {
			s.liveNZ = true
			break
		}
	}
}

// runZeroSegment emits the memoized kernel output for an all-zero
// window. The values and the state evolution (skip accounting, overlap
// carry) are exactly the normal path's, so interleaving fast and slow
// segments stays bit-identical to running the kernel every time.
func (s *StreamFIR) runZeroSegment(want int) {
	v := s.zeroConv[s.taps-1 : s.taps-1+want]
	if s.skip > 0 {
		drop := s.skip
		if drop > len(v) {
			drop = len(v)
		}
		v = v[drop:]
		s.skip -= drop
	}
	s.out = append(s.out, v...)
	copy(s.seg[:s.taps-1], s.seg[s.n-s.taps+1:])
	s.fill = 0
}

// HilbertFIR designs an odd-length (type III) FIR approximation of the
// Hilbert transformer, Blackman-windowed: h[m] = 2/(pi*m) for odd m
// around the centre, 0 elsewhere. Pairing a signal delayed by Delay()
// samples with the filter output yields a streaming amplitude envelope
// hypot(x, H{x}) — the causal stand-in for the batch AnalyticSignal
// envelope, accurate for components a few bins above rate/taps.
func HilbertFIR(taps int) *FIR {
	if taps < 3 {
		panic(fmt.Sprintf("dsp: HilbertFIR needs >= 3 taps, got %d", taps))
	}
	if taps%2 == 0 {
		taps++
	}
	h := make([]float64, taps)
	w := Blackman(taps)
	mid := (taps - 1) / 2
	for i := range h {
		m := i - mid
		if m%2 != 0 {
			h[i] = 2 / (math.Pi * float64(m)) * w[i]
		}
	}
	return &FIR{Taps: h}
}

// STFTAccumulator slides a Hann-windowed power-spectrum frame over a
// pushed sample stream — the streaming twin of STFT for consumers that
// fold rows as they appear instead of retaining a spectrogram. Rows are
// computed with the exact arithmetic of the batch STFT (same window, same
// calibration, same RFFT kernel), so folding the streamed rows reproduces
// batch spectrogram statistics bit-for-bit. State is one frame of
// buffered samples; Push does not allocate after construction.
type STFTAccumulator struct {
	fftSize, hop int
	win          []float64
	gain         float64
	plan         *RFFTPlan

	buf      []float64 // last < fftSize pending samples, contiguous at [0, buffered)
	buffered int
	frame    []float64    // windowed frame scratch
	spec     []complex128 // fftSize/2+1
	scratch  []complex128 // fftSize/2
	row      []float64    // one-sided power row scratch, fftSize/2+1
	frames   int

	// Zero-frame fast path: absBase is the absolute stream index of
	// buf[0] and lastNZ the absolute index of the last nonzero sample
	// seen (-1 if none), so "frame is entirely zero" is one compare.
	// zeroRow is the kernel's row for the all-zero frame, computed once
	// at construction — bit-identical to transforming the zeros.
	absBase int
	lastNZ  int
	zeroRow []float64

	// pending queues deferred row emissions for the staged (batched
	// transform) path: -1 marks an all-zero frame, any other value is a
	// BatchedRFFT column index. Rows are emitted strictly in order by
	// FlushStaged, so folding consumers see the same sequence as Push.
	pending []int32

	// OnRow receives each completed power row (len fftSize/2+1). The
	// slice is reused for the next frame (or aliases the shared
	// zero-frame row) — fold it, don't retain or mutate it.
	OnRow func(row []float64)
}

// NewSTFTAccumulator prepares a streaming analyser with the given
// transform length (power of two) and hop.
func NewSTFTAccumulator(fftSize, hop int, onRow func([]float64)) *STFTAccumulator {
	if !IsPowerOfTwo(fftSize) {
		panic(fmt.Sprintf("dsp: STFTAccumulator fftSize %d not a power of two", fftSize))
	}
	if hop <= 0 || hop > fftSize {
		panic("dsp: STFTAccumulator hop must be in [1, fftSize]")
	}
	win := Hann(fftSize)
	a := &STFTAccumulator{
		fftSize: fftSize,
		hop:     hop,
		win:     win,
		gain:    WindowPowerGain(win) * float64(fftSize) * float64(fftSize),
		plan:    NewRFFTPlan(fftSize),
		buf:     make([]float64, fftSize),
		frame:   make([]float64, fftSize),
		spec:    make([]complex128, fftSize/2+1),
		scratch: make([]complex128, fftSize/2),
		row:     make([]float64, fftSize/2+1),
		lastNZ:  -1,
		OnRow:   onRow,
	}
	// Run the real kernel once on the all-zero frame and keep its row:
	// silent frames then emit the memoized row without an FFT, and the
	// result is the kernel's own output bit-for-bit.
	a.plan.Transform(a.spec, a.frame, a.scratch)
	a.zeroRow = make([]float64, fftSize/2+1)
	a.convertRow(a.spec, a.zeroRow)
	return a
}

// convertRow turns a one-sided spectrum into the calibrated power row
// with the batch STFT's exact arithmetic.
func (a *STFTAccumulator) convertRow(spec []complex128, row []float64) {
	for k := range row {
		re, im := real(spec[k]), imag(spec[k])
		p := (re*re + im*im) / a.gain
		if k != 0 && k != a.fftSize/2 {
			p *= 2 // one-sided spectrum: fold negative frequencies in
		}
		row[k] = p
	}
}

// Push appends samples, emitting a row to OnRow for every completed hop.
func (a *STFTAccumulator) Push(x []float64) {
	for len(x) > 0 {
		take := a.fftSize - a.buffered
		if take > len(x) {
			take = len(x)
		}
		a.noteNonzero(x[:take])
		copy(a.buf[a.buffered:], x[:take])
		a.buffered += take
		x = x[take:]
		if a.buffered == a.fftSize {
			a.emitRow()
			a.slide()
		}
	}
}

// PushStaged advances the accumulator like Push but defers each
// completed frame's FFT to a shard-owned batched engine: the windowed
// frame is staged as one engine column and the row emission is queued.
// After eng.Transform(), FlushStaged emits the queued rows in order.
// Interleaving Push and PushStaged is allowed at any granularity as
// long as queued rows are flushed before the next direct emission.
func (a *STFTAccumulator) PushStaged(x []float64, eng *BatchedRFFT) {
	if eng.Size() != a.fftSize {
		panic("dsp: STFTAccumulator.PushStaged engine size mismatch")
	}
	for len(x) > 0 {
		take := a.fftSize - a.buffered
		if take > len(x) {
			take = len(x)
		}
		a.noteNonzero(x[:take])
		copy(a.buf[a.buffered:], x[:take])
		a.buffered += take
		x = x[take:]
		if a.buffered == a.fftSize {
			a.stageRow(eng)
			a.slide()
		}
	}
}

// FlushStaged emits every row queued by PushStaged, strictly in queue
// order, converting the engine's transformed spectra with emitRow's
// exact arithmetic. Call after eng.Transform() and before the engine's
// arena is reused. No-op when nothing is queued.
func (a *STFTAccumulator) FlushStaged(eng *BatchedRFFT) {
	for _, idx := range a.pending {
		row := a.row
		if idx < 0 {
			row = a.zeroRow
		} else {
			a.convertRow(eng.Spectrum(int(idx)), a.row)
		}
		a.frames++
		if a.OnRow != nil {
			a.OnRow(row)
		}
	}
	a.pending = a.pending[:0]
}

// noteNonzero records the last nonzero sample of a chunk about to be
// appended at buf[buffered]. Scans backwards: for live audio the last
// sample is almost always nonzero, so this is O(1) per chunk.
func (a *STFTAccumulator) noteNonzero(x []float64) {
	for i := len(x) - 1; i >= 0; i-- {
		if x[i] != 0 {
			a.lastNZ = a.absBase + a.buffered + i
			return
		}
	}
}

// slide advances the frame window by one hop.
func (a *STFTAccumulator) slide() {
	copy(a.buf, a.buf[a.hop:])
	a.buffered -= a.hop
	a.absBase += a.hop
}

// emitRow computes the calibrated one-sided power row of the current full
// frame with the batch STFT's exact arithmetic. All-zero frames reuse
// the memoized zero row (same bits, no FFT).
func (a *STFTAccumulator) emitRow() {
	row := a.row
	if a.lastNZ < a.absBase {
		row = a.zeroRow
	} else {
		for i := 0; i < a.fftSize; i++ {
			a.frame[i] = a.buf[i] * a.win[i]
		}
		a.plan.Transform(a.spec, a.frame, a.scratch)
		a.convertRow(a.spec, a.row)
	}
	a.frames++
	if a.OnRow != nil {
		a.OnRow(row)
	}
}

// stageRow queues the current full frame: all-zero frames queue the
// memoized row marker, others stage a windowed column on the engine.
func (a *STFTAccumulator) stageRow(eng *BatchedRFFT) {
	if a.lastNZ < a.absBase {
		a.pending = append(a.pending, -1)
		return
	}
	idx, col := eng.Stage()
	for i := 0; i < a.fftSize; i++ {
		col[i] = a.buf[i] * a.win[i]
	}
	a.pending = append(a.pending, int32(idx))
}

// Frames returns the number of completed frames.
func (a *STFTAccumulator) Frames() int { return a.frames }

// Pending returns the buffered samples not yet part of a completed frame
// (the zero-pad source for WelchAccumulator's short-signal path).
func (a *STFTAccumulator) Pending() []float64 { return a.buf[:a.buffered] }

// Reset clears the sample buffer and frame count for a new session.
func (a *STFTAccumulator) Reset() {
	a.buffered = 0
	a.frames = 0
	a.absBase = 0
	a.lastNZ = -1
	a.pending = a.pending[:0]
}

// WelchAccumulator estimates a one-sided power spectral density
// incrementally: push samples in any chunking and PSD() returns, at every
// point, exactly what dsp.Welch would return on the concatenation of all
// samples pushed so far (bit-identical, including the zero-padded
// single-frame path for streams shorter than one frame). Memory is one
// analysis frame regardless of stream length.
type WelchAccumulator struct {
	stft *STFTAccumulator
	sum  []float64 // running per-bin sum over completed frames
}

// NewWelchAccumulator prepares an accumulator with the given transform
// length (power of two; hop is fftSize/2 to match dsp.Welch).
func NewWelchAccumulator(fftSize int) *WelchAccumulator {
	w := &WelchAccumulator{sum: make([]float64, fftSize/2+1)}
	w.stft = NewSTFTAccumulator(fftSize, fftSize/2, func(row []float64) {
		for k, p := range row {
			w.sum[k] += p
		}
	})
	return w
}

// Push appends samples to the stream. It does not allocate.
func (w *WelchAccumulator) Push(x []float64) { w.stft.Push(x) }

// PushStaged is Push with the frame FFTs deferred to a shard-owned
// batched engine; see STFTAccumulator.PushStaged.
func (w *WelchAccumulator) PushStaged(x []float64, eng *BatchedRFFT) { w.stft.PushStaged(x, eng) }

// FlushStaged folds the queued rows from the engine's transformed
// spectra, in order. PSD and Frames reflect only flushed rows.
func (w *WelchAccumulator) FlushStaged(eng *BatchedRFFT) { w.stft.FlushStaged(eng) }

// Frames returns the number of completed Welch frames.
func (w *WelchAccumulator) Frames() int { return w.stft.Frames() }

// PSD returns the current Welch estimate (a fresh slice; the accumulator
// keeps running). It matches dsp.Welch(all samples so far, fftSize)
// bit-for-bit.
func (w *WelchAccumulator) PSD() []float64 {
	out := make([]float64, len(w.sum))
	if w.stft.frames == 0 {
		// Signal shorter than one frame: zero-pad a single frame, exactly
		// like the batch fallback, without disturbing accumulator state.
		a := w.stft
		pending := a.Pending()
		for i := 0; i < a.fftSize; i++ {
			v := 0.0
			if i < len(pending) {
				v = pending[i] * a.win[i]
			}
			a.frame[i] = v
		}
		a.plan.Transform(a.spec, a.frame, a.scratch)
		for k := range out {
			re, im := real(a.spec[k]), imag(a.spec[k])
			p := (re*re + im*im) / a.gain
			if k != 0 && k != a.fftSize/2 {
				p *= 2
			}
			out[k] = p
		}
		return out
	}
	inv := float64(w.stft.frames)
	for k, s := range w.sum {
		out[k] = s / inv
	}
	return out
}

// Reset clears the accumulator for a new session.
func (w *WelchAccumulator) Reset() {
	w.stft.Reset()
	for i := range w.sum {
		w.sum[i] = 0
	}
}

// BandTracker runs a bank of Goertzel filters over fixed frames of a
// pushed stream, tracking per-probe power frame by frame plus an
// exponentially-decayed rolling estimate — O(probes) per sample with no
// FFT and no allocation, for cheap always-on band monitoring (e.g. the
// defense's 16-60 Hz trace band) between full feature extractions. Frame
// powers are normalised like dsp.Goertzel (|X|^2/N^2).
type BandTracker struct {
	coeff  []float64
	s1, s2 []float64
	frame  int
	pos    int
	alpha  float64
	last   []float64
	roll   []float64
	frames int
}

// NewBandTracker probes the given frequencies (Hz) over frames of the
// given sample count. alpha in (0, 1] is the rolling-average weight of
// the newest frame; 1 tracks only the latest frame.
func NewBandTracker(rate float64, freqs []float64, frame int, alpha float64) *BandTracker {
	if frame <= 0 {
		panic("dsp: BandTracker frame must be positive")
	}
	if alpha <= 0 || alpha > 1 {
		panic("dsp: BandTracker alpha must be in (0, 1]")
	}
	t := &BandTracker{
		coeff: make([]float64, len(freqs)),
		s1:    make([]float64, len(freqs)),
		s2:    make([]float64, len(freqs)),
		frame: frame,
		alpha: alpha,
		last:  make([]float64, len(freqs)),
		roll:  make([]float64, len(freqs)),
	}
	for i, f := range freqs {
		t.coeff[i] = 2 * math.Cos(2*math.Pi*f/rate)
	}
	return t
}

// Push advances the filter bank over x, completing frames as they fill.
func (t *BandTracker) Push(x []float64) {
	for _, v := range x {
		for i, c := range t.coeff {
			s0 := v + c*t.s1[i] - t.s2[i]
			t.s2[i] = t.s1[i]
			t.s1[i] = s0
		}
		t.pos++
		if t.pos == t.frame {
			t.completeFrame()
		}
	}
}

func (t *BandTracker) completeFrame() {
	n2 := float64(t.frame) * float64(t.frame)
	for i, c := range t.coeff {
		p := (t.s1[i]*t.s1[i] + t.s2[i]*t.s2[i] - c*t.s1[i]*t.s2[i]) / n2
		t.last[i] = p
		if t.frames == 0 {
			t.roll[i] = p
		} else {
			t.roll[i] = t.alpha*p + (1-t.alpha)*t.roll[i]
		}
		t.s1[i] = 0
		t.s2[i] = 0
	}
	t.frames++
	t.pos = 0
}

// Frames returns the number of completed frames.
func (t *BandTracker) Frames() int { return t.frames }

// Last returns probe i's power in the most recent completed frame.
func (t *BandTracker) Last(i int) float64 { return t.last[i] }

// Rolling returns probe i's exponentially-decayed rolling power.
func (t *BandTracker) Rolling(i int) float64 { return t.roll[i] }

// RollingTotal sums the rolling power across all probes — a scalar
// "energy present in the tracked band" signal.
func (t *BandTracker) RollingTotal() float64 {
	var s float64
	for _, v := range t.roll {
		s += v
	}
	return s
}

// Reset clears all filter state for a new session.
func (t *BandTracker) Reset() {
	for i := range t.s1 {
		t.s1[i], t.s2[i] = 0, 0
		t.last[i], t.roll[i] = 0, 0
	}
	t.pos = 0
	t.frames = 0
}
