package dsp

import (
	"math"
	"math/cmplx"
	"sync"
	"testing"
)

// refDFT is the O(n^2) textbook transform — the uncached reference the
// plan-backed kernels are checked against. (fft_test.go has a
// forward-only twin; this one covers both directions.)
func refDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var acc complex128
		for t := 0; t < n; t++ {
			phase := sign * 2 * math.Pi * float64(k) * float64(t) / float64(n)
			acc += x[t] * cmplx.Exp(complex(0, phase))
		}
		if inverse {
			acc /= complex(float64(n), 0)
		}
		out[k] = acc
	}
	return out
}

func testSignal(n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		// Deterministic, broadband, non-symmetric content.
		x[i] = complex(math.Sin(0.7*float64(i))+0.25*math.Cos(3.1*float64(i)),
			0.5*math.Sin(1.3*float64(i)+0.2))
	}
	return x
}

// maxRelErr returns the largest |a-b| normalised by the peak magnitude
// of b, so the tolerance is scale-free.
func maxRelErr(a, b []complex128) float64 {
	var peak float64
	for _, v := range b {
		if m := cmplx.Abs(v); m > peak {
			peak = m
		}
	}
	if peak == 0 {
		peak = 1
	}
	var worst float64
	for i := range a {
		if d := cmplx.Abs(a[i]-b[i]) / peak; d > worst {
			worst = d
		}
	}
	return worst
}

// TestPlanCacheMatchesReference checks that the cached-plan transforms
// agree with the uncached naive DFT to 1e-12 for power-of-two and
// Bluestein (non-power-of-two, including prime) lengths, both directions.
func TestPlanCacheMatchesReference(t *testing.T) {
	for _, n := range []int{4, 16, 256, 1024, 6, 100, 360, 997, 1000} {
		ref := refDFT(testSignal(n), false)
		got := FFT(testSignal(n))
		if err := maxRelErr(got, ref); err > 1e-12 {
			t.Errorf("FFT n=%d: max relative error %.3g > 1e-12", n, err)
		}
		refInv := refDFT(testSignal(n), true)
		gotInv := IFFT(testSignal(n))
		if err := maxRelErr(gotInv, refInv); err > 1e-12 {
			t.Errorf("IFFT n=%d: max relative error %.3g > 1e-12", n, err)
		}
	}
}

// TestPlanCacheRepeatable checks that the first (cache-building) call and
// later (cache-hitting) calls produce bit-identical spectra.
func TestPlanCacheRepeatable(t *testing.T) {
	for _, n := range []int{2048, 1000} {
		first := FFT(testSignal(n))
		second := FFT(testSignal(n))
		for k := range first {
			if first[k] != second[k] {
				t.Fatalf("n=%d bin %d: cache miss %v != cache hit %v", n, k, first[k], second[k])
			}
		}
	}
}

// TestPlanCacheConcurrent hammers one length from many goroutines so the
// race detector can see the cache locking, and checks every goroutine
// gets the same answer.
func TestPlanCacheConcurrent(t *testing.T) {
	const n = 768 // non-power-of-two: exercises the Bluestein tables too
	want := FFT(testSignal(n))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 16; iter++ {
				got := FFT(testSignal(n))
				for k := range got {
					if got[k] != want[k] {
						t.Errorf("bin %d: %v != %v", k, got[k], want[k])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestRFFTMatchesFullTransform checks the real-input fast path against
// the full complex transform for even, odd and Bluestein lengths.
func TestRFFTMatchesFullTransform(t *testing.T) {
	for _, n := range []int{8, 64, 4096, 100, 360, 97, 33} {
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Sin(0.37*float64(i)) + 0.4*math.Cos(2.9*float64(i)+1)
		}
		full := FFTReal(x)
		got := RFFT(x)
		if len(got) != n/2+1 {
			t.Fatalf("n=%d: RFFT returned %d bins, want %d", n, len(got), n/2+1)
		}
		if err := maxRelErr(got, full[:n/2+1]); err > 1e-12 {
			t.Errorf("RFFT n=%d: max relative error %.3g > 1e-12", n, err)
		}
		back := IRFFT(got, n)
		var worst float64
		for i := range x {
			if d := math.Abs(back[i] - x[i]); d > worst {
				worst = d
			}
		}
		if worst > 1e-12 {
			t.Errorf("IRFFT n=%d: max roundtrip error %.3g > 1e-12", n, worst)
		}
	}
}

// BenchmarkFFT4096Cached measures the steady-state cost of a cached
// transform. Allocations should be zero once the plan exists — compare
// with BenchmarkFFT4096ColdCache below, which pays plan construction
// every iteration.
func BenchmarkFFT4096Cached(b *testing.B) {
	x := testSignal(4096)
	buf := make([]complex128, len(x))
	FFT(append([]complex128(nil), x...)) // warm the plan
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		FFT(buf)
	}
}

// BenchmarkFFT4096ColdCache rebuilds the plan every iteration (by
// clearing the cache), quantifying what the cache saves.
func BenchmarkFFT4096ColdCache(b *testing.B) {
	x := testSignal(4096)
	buf := make([]complex128, len(x))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		planMu.Lock()
		planCache = make(map[int]*fftPlan)
		planMu.Unlock()
		copy(buf, x)
		FFT(buf)
	}
}

// BenchmarkRFFT4096 measures the real-input fast path on the same length
// for comparison with BenchmarkFFT4096Cached.
func BenchmarkRFFT4096(b *testing.B) {
	x := make([]float64, 4096)
	for i := range x {
		x[i] = math.Sin(0.37 * float64(i))
	}
	RFFT(x) // warm the plan
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RFFT(x)
	}
}
