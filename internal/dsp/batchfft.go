package dsp

import "math/cmplx"

// BatchedRFFT transforms N same-size real columns in one pass over a
// caller-owned scratch arena. The shard worker stages the pending
// Welch/STFT frames of every co-resident session, then runs a single
// Transform: the bit-reversal swap table, each stage's twiddle slice and
// the split-twiddle unpack table are walked once per stage across all
// columns (stage-outer, column-inner) instead of once per session, so
// the plan tables stay in cache across the whole batch.
//
// Per column the floating-point operation sequence is exactly the one
// RFFTPlan.Transform performs — only work on *other* columns is
// interleaved between stages — so every output column is bit-identical
// to a standalone Transform of the same input. batchfft_test.go pins
// this for every column count.
//
// The arena grows to the high-water column count and is then reused;
// steady-state staging and transforming allocate nothing. A BatchedRFFT
// is single-goroutine (shard-owned); the plan it wraps stays shareable.
type BatchedRFFT struct {
	p    *RFFTPlan
	cols int
	done bool // Transform run since the last Reset

	data []float64    // staged real columns, column c at [c*n, (c+1)*n)
	z    []complex128 // packed half-length workspace, column c at [c*h, (c+1)*h)
	spec []complex128 // one-sided outputs, column c at [c*(h+1), (c+1)*(h+1))
}

// NewBatchedRFFT builds an empty batch engine over an existing plan.
func NewBatchedRFFT(p *RFFTPlan) *BatchedRFFT {
	return &BatchedRFFT{p: p}
}

// Size returns the real input length of each column.
func (e *BatchedRFFT) Size() int { return e.p.n }

// Columns returns the number of columns staged since the last Reset.
func (e *BatchedRFFT) Columns() int { return e.cols }

// Stage reserves the next column and returns its index plus the backing
// slice for the caller to fill (all Size() samples must be written).
// Panics if called after Transform without an intervening Reset.
func (e *BatchedRFFT) Stage() (int, []float64) {
	if e.done {
		panic("dsp: BatchedRFFT.Stage after Transform (Reset first)")
	}
	n := e.p.n
	idx := e.cols
	need := (idx + 1) * n
	if cap(e.data) < need {
		// Double on growth: a shard draining a ring backlog stages many
		// columns in one round, and column-at-a-time reallocation would
		// cost O(columns^2) bytes before the high-water mark settles.
		newCap := 2 * cap(e.data)
		if newCap < need {
			newCap = need
		}
		grown := make([]float64, need, newCap)
		copy(grown, e.data[:idx*n])
		e.data = grown
	}
	e.data = e.data[:need]
	e.cols = idx + 1
	return idx, e.data[idx*n : need]
}

// StageColumn copies x into the next column and returns its index.
// len(x) must equal Size(); mismatched columns are rejected with a
// panic rather than silently mixing transform sizes.
func (e *BatchedRFFT) StageColumn(x []float64) int {
	if len(x) != e.p.n {
		panic("dsp: BatchedRFFT.StageColumn input length mismatch")
	}
	idx, col := e.Stage()
	copy(col, x)
	return idx
}

// Transform runs the batched forward transform over every staged
// column. A no-op when nothing is staged; panics if run twice without a
// Reset (the staged inputs have already been consumed).
func (e *BatchedRFFT) Transform() {
	if e.done {
		panic("dsp: BatchedRFFT.Transform run twice (Reset first)")
	}
	e.done = true
	cols := e.cols
	if cols == 0 {
		return
	}
	n := e.p.n
	h := n / 2
	e.z = growComplex(e.z, cols*h)
	e.spec = growComplex(e.spec, cols*(h+1))

	hp := e.p.half
	if hp.pad != nil || cols < 4 {
		// Per-column plan transforms (arena-staged, bit-identical by
		// construction) when there is no shared-stage structure to
		// exploit: Bluestein half-length kernels have none, and below a
		// few columns the interleave costs more in loop overhead and
		// split working sets than the twiddle-table reuse returns — the
		// cross-column win only pays once the plan tables are walked
		// many times per round.
		for c := 0; c < cols; c++ {
			e.p.Transform(e.spec[c*(h+1):(c+1)*(h+1)], e.data[c*n:(c+1)*n], e.z[c*h:(c+1)*h])
		}
		return
	}

	// Pack + bit-reversal per column (cheap linear walks).
	for c := 0; c < cols; c++ {
		x := e.data[c*n : (c+1)*n]
		z := e.z[c*h : (c+1)*h]
		for j := 0; j < h; j++ {
			z[j] = complex(x[2*j], x[2*j+1])
		}
		for s := 0; s < len(hp.swaps); s += 2 {
			i, j := hp.swaps[s], hp.swaps[s+1]
			z[i], z[j] = z[j], z[i]
		}
	}
	// Butterflies stage-outer, column-inner: one twiddle slice serves
	// the whole batch before the next stage's slice is touched. The
	// per-column operation order matches fftPlan.radix2 exactly.
	for size := 2; size <= h; size <<= 1 {
		half := size >> 1
		stage := hp.twF[half-1 : half-1+half]
		for c := 0; c < cols; c++ {
			zc := e.z[c*h : (c+1)*h]
			for start := 0; start < h; start += size {
				lo := zc[start : start+half : start+half]
				hi := zc[start+half : start+size : start+size]
				for k := 0; k < half; k++ {
					a := lo[k]
					b := hi[k] * stage[k]
					lo[k] = a + b
					hi[k] = a - b
				}
			}
		}
	}
	// Unpack to one-sided spectra with the shared split-twiddle table.
	w := e.p.rp.w
	for c := 0; c < cols; c++ {
		z := e.z[c*h : (c+1)*h]
		dst := e.spec[c*(h+1) : (c+1)*(h+1)]
		for k := 0; k <= h; k++ {
			zk := z[k%h]
			zc := cmplx.Conj(z[(h-k)%h])
			even := (zk + zc) * 0.5
			odd := (zk - zc) * 0.5
			dst[k] = even + complex(0, -1)*w[k]*odd
		}
	}
}

// Spectrum returns column idx's one-sided spectrum (Size()/2+1 bins).
// Valid after Transform and until the next Transform reuses the arena.
func (e *BatchedRFFT) Spectrum(idx int) []complex128 {
	if idx < 0 || idx >= e.cols {
		panic("dsp: BatchedRFFT.Spectrum column out of range")
	}
	h1 := e.p.n/2 + 1
	return e.spec[idx*h1 : (idx+1)*h1]
}

// growComplex resizes s to n entries, doubling capacity on growth so
// rising column counts reallocate O(log) times, not once per round.
func growComplex(s []complex128, n int) []complex128 {
	if cap(s) < n {
		newCap := 2 * cap(s)
		if newCap < n {
			newCap = n
		}
		s = append(make([]complex128, 0, newCap), s...)
	}
	return s[:n]
}

// Reset forgets the staged columns, keeping the arena capacity for the
// next round.
func (e *BatchedRFFT) Reset() {
	e.cols = 0
	e.done = false
	e.data = e.data[:0]
}
