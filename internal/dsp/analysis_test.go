package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestSTFTTonePlacement(t *testing.T) {
	const rate = 48000.0
	x := makeTone(6000, rate, 48000)
	sg := STFT(x, rate, 1024, 512)
	if sg.Frames() == 0 {
		t.Fatal("no frames")
	}
	// The strongest bin of every frame must sit at ~6 kHz.
	for f, row := range sg.Power {
		best := 0
		for k := range row {
			if row[k] > row[best] {
				best = k
			}
		}
		if got := sg.BinHz(best); math.Abs(got-6000) > rate/1024 {
			t.Fatalf("frame %d peak at %v Hz", f, got)
		}
	}
}

func TestSTFTBandEnergySeparation(t *testing.T) {
	const rate = 48000.0
	x := makeTone(2000, rate, 48000)
	sg := STFT(x, rate, 2048, 1024)
	in := sg.BandEnergy(1500, 2500)
	out := sg.BandEnergy(8000, 20000)
	if in <= 0 {
		t.Fatal("no in-band energy")
	}
	if out/in > 1e-6 {
		t.Fatalf("out-of-band/in-band energy ratio %v too high", out/in)
	}
}

func TestWelchToneLevel(t *testing.T) {
	// A unit-amplitude tone has power 0.5; the integrated PSD around the
	// tone must recover that.
	const rate = 48000.0
	x := makeTone(3000, rate, 96000)
	psd := Welch(x, 4096)
	p := BandPower(psd, rate, 4096, 2800, 3200)
	if math.Abs(p-0.5)/0.5 > 0.05 {
		t.Fatalf("tone band power %v, want ~0.5", p)
	}
}

func TestWelchShortSignal(t *testing.T) {
	// Shorter than one frame: must still return a usable estimate.
	x := makeTone(1000, 48000, 1000)
	psd := Welch(x, 4096)
	if len(psd) != 2049 {
		t.Fatalf("psd length %d", len(psd))
	}
	var total float64
	for _, v := range psd {
		total += v
	}
	if total <= 0 {
		t.Fatal("empty PSD for short signal")
	}
}

func TestEnvelopeOfAMTone(t *testing.T) {
	// envelope of (1 + 0.5 cos(2π·5t)) · cos(2π·1000t) ≈ 1 + 0.5 cos(2π·5t).
	const rate = 8000.0
	n := 8000
	x := make([]float64, n)
	for i := range x {
		tt := float64(i) / rate
		x[i] = (1 + 0.5*math.Cos(2*math.Pi*5*tt)) * math.Cos(2*math.Pi*1000*tt)
	}
	env := Envelope(x)
	for i := n / 4; i < 3*n/4; i++ {
		tt := float64(i) / rate
		want := 1 + 0.5*math.Cos(2*math.Pi*5*tt)
		if math.Abs(env[i]-want) > 0.03 {
			t.Fatalf("envelope[%d]=%v want %v", i, env[i], want)
		}
	}
}

func TestEnvelopeConstantTone(t *testing.T) {
	x := makeTone(440, 48000, 9600)
	env := Envelope(x)
	for i := len(env) / 4; i < 3*len(env)/4; i++ {
		if math.Abs(env[i]-1) > 0.02 {
			t.Fatalf("envelope of pure tone deviates: %v at %d", env[i], i)
		}
	}
}

func TestSmoothedEnvelopeRejectsPitchRipple(t *testing.T) {
	const rate = 48000.0
	n := 48000
	x := make([]float64, n)
	for i := range x {
		tt := float64(i) / rate
		// 3 Hz syllabic modulation on a 150 Hz "pitch" carrier.
		x[i] = (1 + 0.8*math.Sin(2*math.Pi*3*tt)) * math.Sin(2*math.Pi*150*tt)
	}
	env := SmoothedEnvelope(x, rate, 20)
	// The smoothed envelope should vary at 3 Hz: check it correlates with
	// the known modulator.
	mod := make([]float64, n)
	for i := range mod {
		tt := float64(i) / rate
		mod[i] = 1 + 0.8*math.Sin(2*math.Pi*3*tt)
	}
	if c := PearsonCorrelation(env[n/8:7*n/8], mod[n/8:7*n/8]); c < 0.98 {
		t.Fatalf("smoothed envelope correlation %v, want > 0.98", c)
	}
}

func TestPearsonCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if c := PearsonCorrelation(x, y); math.Abs(c-1) > eps {
		t.Errorf("perfect positive: got %v", c)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if c := PearsonCorrelation(x, neg); math.Abs(c+1) > eps {
		t.Errorf("perfect negative: got %v", c)
	}
	flat := []float64{3, 3, 3, 3, 3}
	if c := PearsonCorrelation(x, flat); c != 0 {
		t.Errorf("zero-variance input: got %v, want 0", c)
	}
	if c := PearsonCorrelation(nil, nil); c != 0 {
		t.Errorf("empty input: got %v", c)
	}
}

func TestMaxCorrelationLagFindsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 2000
	base := make([]float64, n)
	for i := range base {
		base[i] = rng.NormFloat64()
	}
	shift := 37
	shifted := make([]float64, n)
	copy(shifted[shift:], base[:n-shift])
	c, lag := MaxCorrelationLag(base, shifted, 100)
	if lag != shift {
		t.Fatalf("found lag %d, want %d", lag, shift)
	}
	if c < 0.95 {
		t.Fatalf("correlation at best lag %v, want > 0.95", c)
	}
}

func TestGoertzelMatchesFFT(t *testing.T) {
	const rate = 48000.0
	x := makeTone(1234.5, rate, 9600)
	amp := ToneAmplitude(x, 1234.5, rate)
	if math.Abs(amp-1) > 0.02 {
		t.Fatalf("tone amplitude estimate %v, want 1", amp)
	}
	// Energy probe away from the tone must be tiny.
	if off := ToneAmplitude(x, 7000, rate); off > 0.02 {
		t.Fatalf("off-tone amplitude %v", off)
	}
}

func TestCrossCorrelatePeak(t *testing.T) {
	x := []float64{0, 0, 1, 0, 0}
	y := []float64{0, 0, 0, 1, 0}
	r := CrossCorrelate(x, y, 2)
	// Peak should occur at lag +1 (y shifted right by one).
	best := 0
	for i, v := range r {
		if v > r[best] {
			best = i
		}
	}
	if best-2 != 1 {
		t.Fatalf("peak at lag %d, want 1", best-2)
	}
}

func TestStatsHelpers(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if m := Mean(x); m != 2.5 {
		t.Errorf("Mean=%v", m)
	}
	if v := Variance(x); math.Abs(v-1.25) > eps {
		t.Errorf("Variance=%v", v)
	}
	if s := StdDev(x); math.Abs(s-math.Sqrt(1.25)) > eps {
		t.Errorf("StdDev=%v", s)
	}
	if RMS(nil) != 0 || Mean(nil) != 0 {
		t.Error("empty-slice stats should be 0")
	}
}

func TestUtilHelpers(t *testing.T) {
	if DB(100) != 20 {
		t.Errorf("DB(100)=%v", DB(100))
	}
	if !math.IsInf(DB(0), -1) {
		t.Error("DB(0) should be -Inf")
	}
	if AmplitudeDB(10) != 20 {
		t.Errorf("AmplitudeDB(10)=%v", AmplitudeDB(10))
	}
	if math.Abs(FromDB(3)-1.9952623149688795) > 1e-12 {
		t.Errorf("FromDB(3)=%v", FromDB(3))
	}
	if math.Abs(AmplitudeFromDB(6)-1.9952623149688795) > 1e-12 {
		t.Errorf("AmplitudeFromDB(6)=%v", AmplitudeFromDB(6))
	}
	if MaxAbs([]float64{1, -3, 2}) != 3 {
		t.Error("MaxAbs")
	}
	x := Normalize([]float64{0.5, -0.25}, 1)
	if x[0] != 1 || x[1] != -0.5 {
		t.Errorf("Normalize got %v", x)
	}
	z := Normalize([]float64{0, 0}, 1)
	if z[0] != 0 {
		t.Error("Normalize of silence must be a no-op")
	}
	s := Add([]float64{1, 2, 3}, []float64{10, 20})
	if s[0] != 11 || s[1] != 22 || s[2] != 3 {
		t.Errorf("Add got %v", s)
	}
	ls := Linspace(0, 1, 5)
	if len(ls) != 5 || ls[0] != 0 || ls[4] != 1 || ls[2] != 0.5 {
		t.Errorf("Linspace got %v", ls)
	}
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp")
	}
	if Energy([]float64{3, 4}) != 25 {
		t.Error("Energy")
	}
}

func TestWindows(t *testing.T) {
	for name, fn := range map[string]WindowFunc{
		"rect": Rectangular, "hann": Hann, "hannSym": HannSymmetric,
		"hamming": Hamming, "blackman": Blackman, "bh": BlackmanHarris,
	} {
		w := fn(64)
		if len(w) != 64 {
			t.Errorf("%s: wrong length", name)
		}
		for i, v := range w {
			if v < -1e-12 || v > 1+1e-12 {
				t.Errorf("%s[%d]=%v outside [0,1]", name, i, v)
			}
		}
		one := fn(1)
		if len(one) != 1 || one[0] != 1 {
			t.Errorf("%s: n=1 should be [1]", name)
		}
	}
	// Symmetric windows must be symmetric.
	w := HannSymmetric(65)
	for i := 0; i < len(w)/2; i++ {
		if math.Abs(w[i]-w[len(w)-1-i]) > 1e-12 {
			t.Fatalf("HannSymmetric asymmetry at %d", i)
		}
	}
	k := Kaiser(65, 8.6)
	if math.Abs(k[32]-1) > 1e-12 {
		t.Errorf("Kaiser centre %v, want 1", k[32])
	}
	if k[0] > 0.01 {
		t.Errorf("Kaiser edge %v, want near 0", k[0])
	}
}

func TestApplyWindowPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ApplyWindow(make([]float64, 3), make([]float64, 4))
}
