package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func approxEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFFTImpulse(t *testing.T) {
	// DFT of a unit impulse is flat: X[k] = 1 for all k.
	for _, n := range []int{4, 8, 16, 12, 15, 100} {
		x := make([]complex128, n)
		x[0] = 1
		FFT(x)
		for k, v := range x {
			if !approxEqual(real(v), 1, 1e-9) || !approxEqual(imag(v), 0, 1e-9) {
				t.Fatalf("n=%d bin %d: got %v want 1", n, k, v)
			}
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// A complex exponential at bin 5 must concentrate all energy in bin 5.
	n := 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*5*float64(i)/float64(n)))
	}
	FFT(x)
	for k, v := range x {
		want := 0.0
		if k == 5 {
			want = float64(n)
		}
		if !approxEqual(cmplx.Abs(v), want, 1e-8) {
			t.Fatalf("bin %d: |X|=%v want %v", k, cmplx.Abs(v), want)
		}
	}
}

func TestFFTRealCosineTwoBins(t *testing.T) {
	// A real cosine at bin k splits into bins k and n-k with magnitude n/2.
	n := 128
	k := 17
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * float64(k) * float64(i) / float64(n))
	}
	spec := FFTReal(x)
	if got := cmplx.Abs(spec[k]); !approxEqual(got, float64(n)/2, 1e-7) {
		t.Fatalf("bin %d magnitude %v, want %v", k, got, float64(n)/2)
	}
	if got := cmplx.Abs(spec[n-k]); !approxEqual(got, float64(n)/2, 1e-7) {
		t.Fatalf("bin %d magnitude %v, want %v", n-k, got, float64(n)/2)
	}
}

func TestFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 8, 12, 64, 100, 255, 256, 257} {
		orig := make([]complex128, n)
		for i := range orig {
			orig[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		x := make([]complex128, n)
		copy(x, orig)
		FFT(x)
		IFFT(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-8 {
				t.Fatalf("n=%d sample %d: round trip %v vs %v", n, i, x[i], orig[i])
			}
		}
	}
}

func TestFFTParseval(t *testing.T) {
	// Energy in time equals energy in frequency divided by N.
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{16, 61, 128, 1000} {
		x := make([]float64, n)
		var et float64
		for i := range x {
			x[i] = rng.NormFloat64()
			et += x[i] * x[i]
		}
		spec := FFTReal(x)
		var ef float64
		for _, v := range spec {
			re, im := real(v), imag(v)
			ef += re*re + im*im
		}
		ef /= float64(n)
		if math.Abs(et-ef)/et > 1e-9 {
			t.Fatalf("n=%d Parseval mismatch: time %v freq %v", n, et, ef)
		}
	}
}

func TestBluesteinMatchesRadix2(t *testing.T) {
	// Zero-padding a signal to a non-power-of-two and transforming via
	// Bluestein must agree with a reference O(n^2) DFT.
	rng := rand.New(rand.NewSource(3))
	n := 48 // not a power of two -> Bluestein path
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	ref := naiveDFT(x)
	got := make([]complex128, n)
	copy(got, x)
	FFT(got)
	for k := range ref {
		if cmplx.Abs(got[k]-ref[k]) > 1e-8 {
			t.Fatalf("bin %d: bluestein %v naive %v", k, got[k], ref[k])
		}
	}
}

func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var acc complex128
		for i := 0; i < n; i++ {
			acc += x[i] * cmplx.Exp(complex(0, -2*math.Pi*float64(k)*float64(i)/float64(n)))
		}
		out[k] = acc
	}
	return out
}

func TestFFTLinearityProperty(t *testing.T) {
	// FFT(a*x + b*y) == a*FFT(x) + b*FFT(y), via testing/quick.
	f := func(seed int64, a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		a = math.Mod(a, 10)
		b = math.Mod(b, 10)
		rng := rand.New(rand.NewSource(seed))
		n := 32
		x := make([]complex128, n)
		y := make([]complex128, n)
		mix := make([]complex128, n)
		for i := 0; i < n; i++ {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			y[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			mix[i] = complex(a, 0)*x[i] + complex(b, 0)*y[i]
		}
		FFT(x)
		FFT(y)
		FFT(mix)
		for i := 0; i < n; i++ {
			want := complex(a, 0)*x[i] + complex(b, 0)*y[i]
			if cmplx.Abs(mix[i]-want) > 1e-7*(1+cmplx.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNextPowerOfTwo(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPowerOfTwo(in); got != want {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestNextPowerOfTwoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	NextPowerOfTwo(0)
}

func TestFrequencyBinRoundTrip(t *testing.T) {
	n, rate := 4096, 192000.0
	for _, f := range []float64{0, 100, 5000, 30000, 96000} {
		k := FrequencyBin(f, n, rate)
		back := BinFrequency(k, n, rate)
		if math.Abs(back-f) > rate/float64(n) {
			t.Errorf("f=%v: bin %d maps back to %v", f, k, back)
		}
	}
}

func TestIFFTRealRecoversSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, 200)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	spec := FFTReal(x)
	back := IFFTReal(spec)
	for i := range x {
		if math.Abs(back[i]-x[i]) > 1e-9 {
			t.Fatalf("sample %d: %v vs %v", i, back[i], x[i])
		}
	}
}

func TestMagnitudesAndPowerSpectrum(t *testing.T) {
	spec := []complex128{3 + 4i, 0, -5}
	mags := Magnitudes(spec)
	pows := PowerSpectrum(spec)
	wantM := []float64{5, 0, 5}
	wantP := []float64{25, 0, 25}
	for i := range spec {
		if !approxEqual(mags[i], wantM[i], eps) {
			t.Errorf("mag[%d]=%v want %v", i, mags[i], wantM[i])
		}
		if !approxEqual(pows[i], wantP[i], eps) {
			t.Errorf("pow[%d]=%v want %v", i, pows[i], wantP[i])
		}
	}
}
