package dsp

import "math"

// DB converts a linear power ratio to decibels. Non-positive ratios map to
// -Inf.
func DB(powerRatio float64) float64 {
	if powerRatio <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(powerRatio)
}

// AmplitudeDB converts a linear amplitude ratio to decibels.
func AmplitudeDB(ampRatio float64) float64 {
	if ampRatio <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(ampRatio)
}

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 { return math.Pow(10, db/10) }

// AmplitudeFromDB converts decibels to a linear amplitude ratio.
func AmplitudeFromDB(db float64) float64 { return math.Pow(10, db/20) }

// RMS returns the root-mean-square value of x, or 0 for an empty slice.
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s / float64(len(x)))
}

// Energy returns the total energy sum(x[i]^2).
func Energy(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

// MaxAbs returns the largest absolute sample value in x.
func MaxAbs(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Scale multiplies every sample by g in place and returns x.
func Scale(x []float64, g float64) []float64 {
	for i := range x {
		x[i] *= g
	}
	return x
}

// Normalize rescales x in place so MaxAbs(x) == peak (no-op on silence)
// and returns x.
func Normalize(x []float64, peak float64) []float64 {
	m := MaxAbs(x)
	if m == 0 {
		return x
	}
	return Scale(x, peak/m)
}

// Add accumulates src into dst element-wise over the common length and
// returns dst.
func Add(dst, src []float64) []float64 {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	for i := 0; i < n; i++ {
		dst[i] += src[i]
	}
	return dst
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	if n == 1 {
		out[0] = lo
		return out
	}
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
