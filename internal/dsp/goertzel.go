package dsp

import "math"

// Goertzel computes the power of a single frequency component of x using
// the Goertzel algorithm — cheaper than a full FFT when only a handful of
// bins are needed (e.g. probing for a carrier or an intermodulation
// product). freq is in Hz and rate is the sample rate. The result is
// normalised so that a unit-amplitude sinusoid at freq yields ~0.25
// (|X|^2/N^2, matching a two-sided DFT bin).
func Goertzel(x []float64, freq, rate float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	w := 2 * math.Pi * freq / rate
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, v := range x {
		s0 = v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	power := s1*s1 + s2*s2 - coeff*s1*s2
	return power / (float64(n) * float64(n))
}

// ToneAmplitude estimates the amplitude of a sinusoid at freq Hz present in
// x, assuming the tone spans the full window.
func ToneAmplitude(x []float64, freq, rate float64) float64 {
	p := Goertzel(x, freq, rate)
	// For a unit-amplitude tone the two-sided bin power is (1/2)^2 = 0.25.
	return 2 * math.Sqrt(p)
}
