package dsp

import (
	"math"
	"testing"
)

func TestKlattResonatorPeaksAtCenter(t *testing.T) {
	const rate = 48000.0
	res := NewKlattResonator(1000, 80, rate)
	// Drive with white-ish impulse and inspect the impulse response
	// spectrum: the peak must sit near 1 kHz.
	n := 8192
	x := make([]float64, n)
	x[0] = 1
	res.Process(x)
	spec := FFTReal(x)
	best, bestK := 0.0, 0
	for k := 1; k < n/2; k++ {
		p := real(spec[k])*real(spec[k]) + imag(spec[k])*imag(spec[k])
		if p > best {
			best, bestK = p, k
		}
	}
	got := BinFrequency(bestK, n, rate)
	if math.Abs(got-1000) > 30 {
		t.Fatalf("resonance at %v Hz, want 1000", got)
	}
}

func TestKlattResonatorUnityDCGain(t *testing.T) {
	res := NewKlattResonator(2000, 100, 48000)
	// Step response settles to 1 (unity DC gain).
	var y float64
	for i := 0; i < 48000; i++ {
		y = res.ProcessSample(1)
	}
	if math.Abs(y-1) > 1e-6 {
		t.Fatalf("DC gain %v", y)
	}
}

func TestKlattResonatorBandwidth(t *testing.T) {
	// Wider bandwidth decays faster: compare envelope decay of impulse
	// responses.
	const rate = 48000.0
	narrow := NewKlattResonator(1000, 50, rate)
	wide := NewKlattResonator(1000, 400, rate)
	n := 4800
	xn := make([]float64, n)
	xw := make([]float64, n)
	xn[0], xw[0] = 1, 1
	narrow.Process(xn)
	wide.Process(xw)
	tailN := RMS(xn[n/2:])
	tailW := RMS(xw[n/2:])
	if tailW >= tailN {
		t.Fatalf("wide resonator should decay faster: %v vs %v", tailW, tailN)
	}
}

func TestAntiResonatorNotches(t *testing.T) {
	const rate = 48000.0
	anti := NewKlattAntiResonator(1500, 100, rate)
	tone := makeTone(1500, rate, 9600)
	out := make([]float64, len(tone))
	copy(out, tone)
	anti.Process(out)
	// Steady-state at the notch frequency must be strongly attenuated.
	if RMS(out[4800:]) > 0.05 {
		t.Fatalf("notch leaves RMS %v", RMS(out[4800:]))
	}
	// A far-away tone passes at non-trivial level.
	tone2 := makeTone(300, rate, 9600)
	out2 := make([]float64, len(tone2))
	copy(out2, tone2)
	anti2 := NewKlattAntiResonator(1500, 100, rate)
	anti2.Process(out2)
	if RMS(out2[4800:]) < 0.2 {
		t.Fatalf("far tone over-attenuated: %v", RMS(out2[4800:]))
	}
}

func TestBiquadReset(t *testing.T) {
	res := NewKlattResonator(800, 60, 48000)
	res.ProcessSample(1)
	res.ProcessSample(0.5)
	res.Reset()
	if res.ProcessSample(0) != 0 {
		t.Fatal("state not cleared")
	}
}

func TestOnePoleLowPass(t *testing.T) {
	const rate = 48000.0
	lp := NewOnePoleLP(500, rate)
	hi := makeTone(8000, rate, 9600)
	out := make([]float64, len(hi))
	copy(out, hi)
	lp.Process(out)
	if RMS(out[4800:]) > 0.1 {
		t.Fatalf("8 kHz through 500 Hz one-pole: RMS %v", RMS(out[4800:]))
	}
	lp.Reset()
	// DC passes with unity gain.
	var y float64
	for i := 0; i < 48000; i++ {
		y = lp.ProcessSample(1)
	}
	if math.Abs(y-1) > 1e-6 {
		t.Fatalf("DC gain %v", y)
	}
}

func TestDifferentiate(t *testing.T) {
	x := []float64{1, 3, 6, 10}
	Differentiate(x)
	want := []float64{1, 2, 3, 4}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("diff[%d]=%v want %v", i, x[i], want[i])
		}
	}
}
