package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// batchInput builds a deterministic pseudo-random column.
func batchInput(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// TestBatchedRFFTBitIdentical pins the core contract: every column of a
// batched transform is bit-identical to a standalone RFFTPlan.Transform
// of the same input, for one through many columns, power-of-two and
// Bluestein-half sizes, across reuse rounds with ragged column counts.
func TestBatchedRFFTBitIdentical(t *testing.T) {
	for _, n := range []int{8, 64, 4096, 16384, 12, 360} { // 12, 360: Bluestein half
		rng := rand.New(rand.NewSource(int64(n)))
		p := NewRFFTPlan(n)
		e := NewBatchedRFFT(p)
		if e.Size() != n {
			t.Fatalf("n=%d: Size() = %d", n, e.Size())
		}
		scratch := make([]complex128, n/2)
		want := make([]complex128, n/2+1)
		// Two rounds with different column counts exercise arena reuse
		// (round 2 is smaller: a ragged last batch over warm buffers).
		for round, cols := range []int{5, 3} {
			inputs := make([][]float64, cols)
			for c := range inputs {
				inputs[c] = batchInput(rng, n)
				var idx int
				if c%2 == 0 {
					idx = e.StageColumn(inputs[c])
				} else {
					var col []float64
					idx, col = e.Stage()
					copy(col, inputs[c])
				}
				if idx != c {
					t.Fatalf("n=%d round=%d: column %d staged at %d", n, round, c, idx)
				}
			}
			if e.Columns() != cols {
				t.Fatalf("n=%d round=%d: Columns() = %d, want %d", n, round, e.Columns(), cols)
			}
			e.Transform()
			for c := range inputs {
				p.Transform(want, inputs[c], scratch)
				got := e.Spectrum(c)
				for k := range want {
					if math.Float64bits(real(got[k])) != math.Float64bits(real(want[k])) ||
						math.Float64bits(imag(got[k])) != math.Float64bits(imag(want[k])) {
						t.Fatalf("n=%d round=%d col=%d bin=%d: got %v, want %v",
							n, round, c, k, got[k], want[k])
					}
				}
			}
			e.Reset()
		}
	}
}

// TestBatchedRFFTEmptyAndMisuse covers the edge contracts: an empty
// Transform is a no-op, mismatched column lengths are rejected, and
// staging past a Transform without Reset panics.
func TestBatchedRFFTEmptyAndMisuse(t *testing.T) {
	e := NewBatchedRFFT(NewRFFTPlan(64))
	e.Transform() // zero columns: must not panic
	e.Reset()

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("size mismatch", func() { e.StageColumn(make([]float64, 63)) })
	e.StageColumn(make([]float64, 64))
	e.Transform()
	mustPanic("stage after transform", func() { e.Stage() })
	mustPanic("double transform", func() { e.Transform() })
	e.Reset()
	if e.Columns() != 0 {
		t.Fatalf("Columns() after Reset = %d", e.Columns())
	}
}

// TestSTFTStagedParity drives the same stream through Push and
// PushStaged+FlushStaged (round boundaries at every chunk) and pins
// byte-identical row sequences, including all-zero frames hitting the
// memoized zero-row path.
func TestSTFTStagedParity(t *testing.T) {
	const fftSize, hop = 256, 128
	rng := rand.New(rand.NewSource(7))
	// Bursty input: noise, exact silence, noise again.
	stream := make([]float64, 0, 6000)
	stream = append(stream, batchInput(rng, 2000)...)
	stream = append(stream, make([]float64, 2100)...)
	stream = append(stream, batchInput(rng, 1900)...)

	var direct, staged [][]float64
	a1 := NewSTFTAccumulator(fftSize, hop, func(row []float64) {
		direct = append(direct, append([]float64(nil), row...))
	})
	a2 := NewSTFTAccumulator(fftSize, hop, func(row []float64) {
		staged = append(staged, append([]float64(nil), row...))
	})
	eng := NewBatchedRFFT(NewRFFTPlan(fftSize))

	for off := 0; off < len(stream); {
		take := 1 + rng.Intn(700)
		if off+take > len(stream) {
			take = len(stream) - off
		}
		chunk := stream[off : off+take]
		off += take
		a1.Push(chunk)
		a2.PushStaged(chunk, eng)
		eng.Transform()
		a2.FlushStaged(eng)
		eng.Reset()
	}
	if a1.Frames() != a2.Frames() || len(direct) != len(staged) {
		t.Fatalf("frame counts diverge: %d/%d rows %d/%d", a1.Frames(), a2.Frames(), len(direct), len(staged))
	}
	for r := range direct {
		for k := range direct[r] {
			if math.Float64bits(direct[r][k]) != math.Float64bits(staged[r][k]) {
				t.Fatalf("row %d bin %d: direct %v staged %v", r, k, direct[r][k], staged[r][k])
			}
		}
	}
}

// FuzzBatchedRFFT fuzzes column count/size handling: derived sizes
// (power-of-two and even non-power-of-two for the Bluestein half),
// ragged reuse rounds, single columns, and plan-size mismatch
// rejection, always pinning bit-identity against RFFTPlan.Transform.
func FuzzBatchedRFFT(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(2), uint8(1))
	f.Add(int64(2), uint8(0), uint8(1), uint8(0))
	f.Add(int64(3), uint8(7), uint8(9), uint8(4))
	f.Fuzz(func(t *testing.T, seed int64, sizeSel, cols1, cols2 uint8) {
		sizes := []int{4, 8, 16, 64, 256, 1024, 6, 12, 20, 360}
		n := sizes[int(sizeSel)%len(sizes)]
		rng := rand.New(rand.NewSource(seed))
		p := NewRFFTPlan(n)
		e := NewBatchedRFFT(p)

		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("n=%d: mismatched column accepted", n)
				}
			}()
			e.StageColumn(make([]float64, n+1))
		}()

		scratch := make([]complex128, n/2)
		want := make([]complex128, n/2+1)
		for _, cols := range []int{int(cols1)%9 + 1, int(cols2) % 9} {
			inputs := make([][]float64, cols)
			for c := range inputs {
				inputs[c] = batchInput(rng, n)
				e.StageColumn(inputs[c])
			}
			e.Transform()
			for c := range inputs {
				p.Transform(want, inputs[c], scratch)
				got := e.Spectrum(c)
				for k := range want {
					if math.Float64bits(real(got[k])) != math.Float64bits(real(want[k])) ||
						math.Float64bits(imag(got[k])) != math.Float64bits(imag(want[k])) {
						t.Fatalf("n=%d cols=%d col=%d bin=%d: got %v want %v", n, cols, c, k, got[k], want[k])
					}
				}
			}
			e.Reset()
		}
	})
}

// BenchmarkBatchedRFFT4096x8 measures the batched kernel against eight
// sequential plan transforms of the same columns.
func BenchmarkBatchedRFFT4096x8(b *testing.B) {
	const n, cols = 4096, 8
	rng := rand.New(rand.NewSource(1))
	p := NewRFFTPlan(n)
	e := NewBatchedRFFT(p)
	inputs := make([][]float64, cols)
	for c := range inputs {
		inputs[c] = batchInput(rng, n)
	}
	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, in := range inputs {
				e.StageColumn(in)
			}
			e.Transform()
			e.Reset()
		}
	})
	b.Run("sequential", func(b *testing.B) {
		dst := make([]complex128, n/2+1)
		scratch := make([]complex128, n/2)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, in := range inputs {
				p.Transform(dst, in, scratch)
			}
		}
	})
}
