package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// TestRFFTPlanBitIdentical pins the plan handle against the map-lookup
// path: same bits out, both directions, across radix-2 and Bluestein
// sizes.
func TestRFFTPlanBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, n := range []int{4, 8, 64, 480, 960, 1024, 4096} {
		p := NewRFFTPlan(n)
		if p.Size() != n {
			t.Fatalf("n=%d: Size() = %d", n, p.Size())
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		h := n / 2
		scratch := make([]complex128, h)
		got := p.Transform(make([]complex128, h+1), x, scratch)
		want := RFFTInto(make([]complex128, h+1), x, make([]complex128, h))
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("n=%d bin %d: plan %v != RFFTInto %v", n, k, got[k], want[k])
			}
		}
		gotInv := p.Inverse(make([]float64, n), got, scratch)
		wantInv := IRFFTInto(make([]float64, n), want, make([]complex128, h))
		for i := range wantInv {
			if gotInv[i] != wantInv[i] {
				t.Fatalf("n=%d sample %d: plan %v != IRFFTInto %v", n, i, gotInv[i], wantInv[i])
			}
		}
		// And the round trip itself stays a faithful inverse.
		for i := range x {
			if math.Abs(gotInv[i]-x[i]) > 1e-9 {
				t.Fatalf("n=%d sample %d: round trip %v != input %v", n, i, gotInv[i], x[i])
			}
		}
	}
}

func TestRFFTPlanRejectsOddOrTiny(t *testing.T) {
	for _, n := range []int{0, 2, 3, 5, 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRFFTPlan(%d) did not panic", n)
				}
			}()
			NewRFFTPlan(n)
		}()
	}
}

func TestRFFTPlanNoAlloc(t *testing.T) {
	const n = 1024
	p := NewRFFTPlan(n)
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i) * 0.01)
	}
	dst := make([]complex128, n/2+1)
	out := make([]float64, n)
	scratch := make([]complex128, n/2)
	allocs := testing.AllocsPerRun(100, func() {
		p.Transform(dst, x, scratch)
		p.Inverse(out, dst, scratch)
	})
	if allocs != 0 {
		t.Fatalf("plan transforms allocated %v times per run, want 0", allocs)
	}
}
