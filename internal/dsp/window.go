package dsp

import "math"

// WindowFunc generates an n-point analysis window.
type WindowFunc func(n int) []float64

// Rectangular returns an n-point rectangular (boxcar) window.
func Rectangular(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// Hann returns an n-point periodic Hann window.
func Hann(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 - 0.5*math.Cos(2*math.Pi*float64(i)/float64(n))
	}
	return w
}

// HannSymmetric returns an n-point symmetric Hann window, suitable for FIR
// design (endpoints at zero, peak centred).
func HannSymmetric(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 - 0.5*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return w
}

// Hamming returns an n-point symmetric Hamming window.
func Hamming(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return w
}

// Blackman returns an n-point symmetric Blackman window.
func Blackman(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		x := 2 * math.Pi * float64(i) / float64(n-1)
		w[i] = 0.42 - 0.5*math.Cos(x) + 0.08*math.Cos(2*x)
	}
	return w
}

// BlackmanHarris returns an n-point 4-term Blackman–Harris window, with
// ~92 dB sidelobe suppression. Used where spectral leakage must not mask
// weak intermodulation products.
func BlackmanHarris(n int) []float64 {
	const (
		a0 = 0.35875
		a1 = 0.48829
		a2 = 0.14128
		a3 = 0.01168
	)
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		x := 2 * math.Pi * float64(i) / float64(n-1)
		w[i] = a0 - a1*math.Cos(x) + a2*math.Cos(2*x) - a3*math.Cos(3*x)
	}
	return w
}

// Kaiser returns an n-point Kaiser window with shape parameter beta.
func Kaiser(n int, beta float64) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	den := besselI0(beta)
	half := float64(n-1) / 2
	for i := range w {
		x := (float64(i) - half) / half
		w[i] = besselI0(beta*math.Sqrt(1-x*x)) / den
	}
	return w
}

// besselI0 evaluates the zeroth-order modified Bessel function of the first
// kind via its power series, which converges quickly for the argument range
// used in window design.
func besselI0(x float64) float64 {
	sum := 1.0
	term := 1.0
	half := x / 2
	for k := 1; k < 64; k++ {
		term *= (half / float64(k)) * (half / float64(k))
		sum += term
		if term < 1e-16*sum {
			break
		}
	}
	return sum
}

// ApplyWindow multiplies x element-wise by window w, in place, and returns x.
// It panics if the lengths differ.
func ApplyWindow(x, w []float64) []float64 {
	if len(x) != len(w) {
		panic("dsp: ApplyWindow length mismatch")
	}
	for i := range x {
		x[i] *= w[i]
	}
	return x
}

// WindowPowerGain returns sum(w[i]^2)/n, the incoherent power gain of a
// window — needed to convert windowed periodograms into calibrated power
// spectral densities.
func WindowPowerGain(w []float64) float64 {
	var s float64
	for _, v := range w {
		s += v * v
	}
	return s / float64(len(w))
}
