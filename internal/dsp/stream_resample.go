package dsp

import (
	"fmt"
	"math"
)

// StreamResampler is the streaming twin of the windowed-sinc Resample
// path: it converts an unbounded sample stream between rates with bounded
// state (one kernel-width history window) and, after Flush, produces a
// stream bit-identical to Resample on the concatenated input — same
// kernel, same accumulation order, same edge handling. It covers the
// arbitrary-ratio sinc path (including all downsampling, e.g. the mic
// model's 192 kHz -> 48 kHz ADC); rate-preserving construction is a
// pass-through.
//
// A StreamResampler is single-session state and not safe for concurrent
// use.
type StreamResampler struct {
	ratio, cutoff float64
	identity      bool

	buf      []float64 // retained input tail, buf[0] is absolute index bufStart
	bufStart int
	inTotal  int // input samples consumed so far
	nextOut  int // next output index to produce
	out      []float64
	flushed  bool
}

// streamResampleHalfTaps mirrors resampleSinc's kernel half-width.
const streamResampleHalfTaps = 32

// streamResampleBeta mirrors resampleSinc's Kaiser shape parameter.
const streamResampleBeta = 8.6

// NewStreamResampler prepares a converter from rate from to rate to.
// Integer upsampling ratios >= 2 take the batch path's polyphase design,
// which this streaming mirror does not reproduce; the simulation chain
// never upsamples mid-stream, so they are rejected.
func NewStreamResampler(from, to float64) *StreamResampler {
	if from <= 0 || to <= 0 {
		panic(fmt.Sprintf("dsp: StreamResampler rates must be positive (from=%v to=%v)", from, to))
	}
	if from == to {
		return &StreamResampler{identity: true, ratio: 1}
	}
	ratio := to / from
	if f := math.Round(ratio); f >= 2 && math.Abs(ratio-f) < 1e-12 {
		panic(fmt.Sprintf("dsp: StreamResampler does not mirror the integer upsample path (ratio %v)", ratio))
	}
	return &StreamResampler{ratio: ratio, cutoff: math.Min(1, ratio)}
}

// Ratio returns the output/input rate ratio.
func (s *StreamResampler) Ratio() float64 { return s.ratio }

// Push consumes x and returns the converted samples that became
// available. The returned slice is reused by the next Push/Flush call.
// After warm-up Push does not allocate for steady block sizes.
func (s *StreamResampler) Push(x []float64) []float64 {
	if s.flushed {
		panic("dsp: StreamResampler.Push after Flush (Reset first)")
	}
	if s.identity {
		return x
	}
	s.buf = append(s.buf, x...)
	s.inTotal += len(x)
	s.out = s.out[:0]
	// Output n needs input through index floor(n/ratio)+halfTaps; emit
	// every output whose full kernel window has arrived.
	for {
		i1 := int(math.Floor(float64(s.nextOut)/s.ratio)) + streamResampleHalfTaps
		if i1 >= s.inTotal {
			break
		}
		s.out = append(s.out, s.kernel(s.nextOut, s.inTotal))
		s.nextOut++
	}
	// Drop history below the next output's lowest kernel index.
	keepFrom := int(math.Floor(float64(s.nextOut)/s.ratio)) - streamResampleHalfTaps + 1
	if keepFrom > s.inTotal {
		keepFrom = s.inTotal
	}
	if keepFrom > s.bufStart {
		n := copy(s.buf, s.buf[keepFrom-s.bufStart:])
		s.buf = s.buf[:n]
		s.bufStart = keepFrom
	}
	return s.out
}

// Flush emits the tail outputs whose kernel windows run past the end of
// the stream, exactly as the batch path clips them, bringing the total
// output length to round(total input * ratio). After Flush only Reset may
// be called.
func (s *StreamResampler) Flush() []float64 {
	if s.flushed {
		panic("dsp: StreamResampler.Flush called twice")
	}
	s.flushed = true
	if s.identity {
		return nil
	}
	s.out = s.out[:0]
	outLen := int(math.Round(float64(s.inTotal) * s.ratio))
	for ; s.nextOut < outLen; s.nextOut++ {
		s.out = append(s.out, s.kernel(s.nextOut, s.inTotal))
	}
	return s.out
}

// Reset returns the converter to its initial state, keeping buffers.
func (s *StreamResampler) Reset() {
	s.buf = s.buf[:0]
	s.bufStart = 0
	s.inTotal = 0
	s.nextOut = 0
	s.out = s.out[:0]
	s.flushed = false
}

// kernel computes output sample n with resampleSinc's exact arithmetic:
// same window, same skip rules, same accumulation order.
func (s *StreamResampler) kernel(n, totalLen int) float64 {
	center := float64(n) / s.ratio
	i0 := int(math.Floor(center)) - streamResampleHalfTaps + 1
	i1 := int(math.Floor(center)) + streamResampleHalfTaps
	var acc float64
	for i := i0; i <= i1; i++ {
		if i < 0 || i >= totalLen {
			continue
		}
		t := (float64(i) - center) * s.cutoff
		u := (float64(i) - center) / float64(streamResampleHalfTaps)
		if u < -1 || u > 1 {
			continue
		}
		w := besselI0(streamResampleBeta*math.Sqrt(1-u*u)) / besselI0(streamResampleBeta)
		k := s.cutoff * sinc(t) * w
		acc += k * s.buf[i-s.bufStart]
	}
	return acc
}
